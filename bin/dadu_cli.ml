(* dadu — command-line interface to the Dadu IK suite.

   Subcommands:
     solve   solve one IK problem with a chosen method
     sweep   run a method across the paper's DOF sweep
     accel   run the IKAcc accelerator model on one problem
     serve-batch  run the batched serving layer on a problem file
     robots  list the built-in robot factories *)

open Cmdliner
open Dadu_kinematics
open Dadu_core
module Vec3 = Dadu_linalg.Vec3

(* ---- shared argument parsing ---- *)

let robot_of_string s =
  let fail () =
    Error
      (`Msg
        (Printf.sprintf
           "unknown robot %S (expected arm6 | arm7 | scara | snake:<dof> | \
            eval:<dof> | planar:<dof>)"
           s))
  in
  match String.split_on_char ':' (String.lowercase_ascii s) with
  | [ "arm6" ] -> Ok (Robots.arm_6dof ())
  | [ "arm7" ] -> Ok (Robots.arm_7dof ())
  | [ "scara" ] -> Ok (Robots.scara ())
  | [ kind; dof ] ->
    (match (kind, int_of_string_opt dof) with
    | _, None -> fail ()
    | _, Some d when d <= 0 -> fail ()
    | "snake", Some d -> Ok (Robots.snake ~dof:d)
    | "eval", Some d -> Ok (Robots.eval_chain ~dof:d)
    | "planar", Some d -> Ok (Robots.planar ~dof:d ~reach:(float_of_int d) ())
    | _, Some _ -> fail ())
  | [ _ ] | [] | _ :: _ :: _ -> fail ()

let robot_conv =
  Arg.conv
    ( robot_of_string,
      fun ppf chain -> Format.fprintf ppf "%s" (Chain.name chain) )

let robot_builtin =
  let doc =
    "Robot to solve for: arm6, arm7, scara, snake:<dof>, eval:<dof> (the \
     paper's evaluation chain), or planar:<dof>."
  in
  Arg.(value & opt robot_conv (Robots.arm_7dof ()) & info [ "r"; "robot" ] ~doc)

let robot_file =
  let doc =
    "Load the robot from a description file instead (see \
     Dadu_kinematics.Chain_format for the format); overrides --robot."
  in
  Arg.(value & opt (some file) None & info [ "f"; "robot-file" ] ~doc)

(* combined robot term: file wins over builtin *)
let robot =
  let combine builtin file =
    match file with
    | None -> Ok builtin
    | Some path ->
      (match Chain_format.parse_file path with
      | Ok chain -> Ok chain
      | Error msg -> Error (`Msg (Printf.sprintf "%s: %s" path msg)))
  in
  Term.(term_result (const combine $ robot_builtin $ robot_file))

type method_name =
  | Quick_ik_m
  | Jt_serial_m
  | Jt_buss_m
  | Jt_linesearch_m
  | Pinv_m
  | Dls_m
  | Sdls_m
  | Ccd_m

let method_enum =
  [
    ("quick-ik", Quick_ik_m);
    ("jt-serial", Jt_serial_m);
    ("jt-buss", Jt_buss_m);
    ("jt-linesearch", Jt_linesearch_m);
    ("pinv", Pinv_m);
    ("dls", Dls_m);
    ("sdls", Sdls_m);
    ("ccd", Ccd_m);
  ]

let method_arg =
  let doc =
    Printf.sprintf "IK method: %s."
      (String.concat ", " (List.map fst method_enum))
  in
  Arg.(value & opt (enum method_enum) Quick_ik_m & info [ "m"; "method" ] ~doc)

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed (targets and starts).")

let speculations =
  Arg.(
    value & opt int 64
    & info [ "s"; "speculations" ] ~doc:"Quick-IK speculation count (paper: 64).")

let max_iters =
  Arg.(
    value & opt int 10_000
    & info [ "max-iters" ] ~doc:"Iteration cap (paper: 10000).")

let accuracy =
  Arg.(
    value & opt float 1e-2
    & info [ "accuracy" ] ~doc:"Position tolerance in meters (paper: 0.01).")

let vec3_conv =
  let parse s =
    match String.split_on_char ',' s |> List.map float_of_string_opt with
    | [ Some x; Some y; Some z ] -> Ok (Vec3.make x y z)
    | _ -> Error (`Msg (Printf.sprintf "expected x,y,z (got %S)" s))
  in
  Arg.conv (parse, fun ppf v -> Vec3.pp ppf v)

let target =
  let doc = "Target position x,y,z (default: a random reachable position)." in
  Arg.(value & opt (some vec3_conv) None & info [ "t"; "target" ] ~doc)

let ik_config ~max_iters ~accuracy =
  { Ik.default_config with max_iterations = max_iters; accuracy }

let solver_of_method m ~speculations ~config =
  match m with
  | Quick_ik_m -> fun p -> Quick_ik.solve ~speculations ~config p
  | Jt_serial_m -> fun p -> Jt_serial.solve ~config p
  | Jt_buss_m -> fun p -> Jt_buss.solve ~config p
  | Jt_linesearch_m -> fun p -> Jt_linesearch.solve ~config p
  | Pinv_m -> fun p -> Pinv_svd.solve ~config p
  | Dls_m -> fun p -> Dls.solve ~config p
  | Sdls_m -> fun p -> Sdls.solve ~config p
  | Ccd_m -> fun p -> Ccd.solve ~config p

let problem_for ~chain ~seed ~target =
  let rng = Dadu_util.Rng.create seed in
  let target =
    match target with Some t -> t | None -> Target.reachable rng chain
  in
  Ik.problem ~chain ~target ~theta0:(Target.random_config rng chain)

(* ---- solve ---- *)

let run_solve chain m speculations seed target max_iters accuracy verbose svg =
  let config = ik_config ~max_iters ~accuracy in
  let problem = problem_for ~chain ~seed ~target in
  Format.printf "Robot : %s (%d DOF)@." (Chain.name chain) (Chain.dof chain);
  Format.printf "Target: %a@." Vec3.pp problem.Ik.target;
  let solve = solver_of_method m ~speculations ~config in
  let t0 = Sys.time () in
  let r = solve problem in
  let elapsed = Sys.time () -. t0 in
  Format.printf "Result: %a (host %.1f ms)@." Ik.pp_result r (elapsed *. 1e3);
  let reached = Fk.position chain r.Ik.theta in
  Format.printf "FK    : %a (%.2f mm off)@." Vec3.pp reached
    (1e3 *. Vec3.dist reached problem.Ik.target);
  if verbose then
    Format.printf "Angles: %a@." Dadu_linalg.Vec.pp r.Ik.theta;
  (match svg with
  | None -> ()
  | Some path ->
    Viz.write ~path ~targets:[ problem.Ik.target ] chain
      [
        Viz.posture ~label:"start" ~color:"#999999" problem.Ik.theta0;
        Viz.posture ~label:"solution" ~color:"#1f77b4" r.Ik.theta;
      ];
    Format.printf "SVG   : %s@." path);
  match r.Ik.status with
  | Ik.Converged -> 0
  | Ik.Max_iterations | Ik.Stalled | Ik.Diverged -> 1

let verbose =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the joint-angle solution.")

let svg_out =
  let doc = "Write an SVG of the start and solution postures to this file." in
  Arg.(value & opt (some string) None & info [ "svg" ] ~doc)

let solve_cmd =
  let doc = "Solve one inverse-kinematics problem." in
  Cmd.v
    (Cmd.info "solve" ~doc)
    Term.(
      const run_solve $ robot $ method_arg $ speculations $ seed $ target
      $ max_iters $ accuracy $ verbose $ svg_out)

(* ---- sweep ---- *)

let run_sweep m speculations seed targets max_iters =
  let scale =
    { Dadu_experiments.Runner.targets; max_iterations = max_iters; speculations; seed }
  in
  let name = fst (List.find (fun (_, v) -> v = m) method_enum) in
  let table =
    Dadu_util.Table.create
      ~title:(Printf.sprintf "%s across the paper's DOF sweep" name)
      [
        ("DOF", Dadu_util.Table.Right);
        ("mean iters", Dadu_util.Table.Right);
        ("median", Dadu_util.Table.Right);
        ("converged", Dadu_util.Table.Right);
        ("host time", Dadu_util.Table.Right);
      ]
  in
  List.iter
    (fun dof ->
      let chain = Robots.eval_chain ~dof in
      let solver config p =
        solver_of_method m ~speculations ~config p
      in
      let a = Dadu_experiments.Workload.run scale ~name ~chain ~solver in
      Dadu_util.Table.add_row table
        [
          string_of_int dof;
          Printf.sprintf "%.1f" a.Dadu_experiments.Workload.mean_iterations;
          Printf.sprintf "%.0f" a.Dadu_experiments.Workload.median_iterations;
          Printf.sprintf "%d/%d" a.Dadu_experiments.Workload.converged targets;
          Printf.sprintf "%.1f s" a.Dadu_experiments.Workload.wall_clock_s;
        ])
    Robots.eval_dofs;
  Dadu_util.Table.print table;
  0

let sweep_targets =
  Arg.(value & opt int 25 & info [ "n"; "targets" ] ~doc:"Targets per DOF.")

let sweep_cmd =
  let doc = "Run one method across the paper's 12-100 DOF evaluation sweep." in
  Cmd.v
    (Cmd.info "sweep" ~doc)
    Term.(
      const run_sweep $ method_arg $ speculations $ seed $ sweep_targets $ max_iters)

(* ---- accel ---- *)

let run_accel chain speculations ssus seed target max_iters accuracy =
  let config =
    Dadu_accel.Config.with_ssus ssus Dadu_accel.Config.default
  in
  let ik_config = ik_config ~max_iters ~accuracy in
  let problem = problem_for ~chain ~seed ~target in
  Format.printf "Robot : %s (%d DOF)@." (Chain.name chain) (Chain.dof chain);
  let report = Dadu_accel.Ikacc.solve ~config ~ik_config ~speculations problem in
  Format.printf "%a@." Dadu_accel.Ikacc.pp_report report;
  match report.Dadu_accel.Ikacc.result.Ik.status with
  | Ik.Converged -> 0
  | Ik.Max_iterations | Ik.Stalled | Ik.Diverged -> 1

let ssus =
  Arg.(value & opt int 32 & info [ "ssus" ] ~doc:"Speculative Search Units (paper: 32).")

let accel_cmd =
  let doc = "Run the IKAcc accelerator model (cycles, time, energy) on one problem." in
  Cmd.v
    (Cmd.info "accel" ~doc)
    Term.(
      const run_accel $ robot $ speculations $ ssus $ seed $ target $ max_iters
      $ accuracy)

(* ---- batch ---- *)

let run_batch chain m speculations seed count max_iters accuracy =
  let config = ik_config ~max_iters ~accuracy in
  let rng = Dadu_util.Rng.create seed in
  let problems = Array.init count (fun _ -> Ik.random_problem rng chain) in
  let solver = solver_of_method m ~speculations ~config in
  let pool = Dadu_util.Domain_pool.create (Dadu_util.Domain_pool.recommended_size ()) in
  let summary = Batch.solve ~pool ~solver problems in
  Dadu_util.Domain_pool.shutdown pool;
  Format.printf "Robot    : %s (%d DOF)@." (Chain.name chain) (Chain.dof chain);
  Format.printf "Solved   : %d/%d targets@." summary.Batch.converged count;
  Format.printf "Iterations: %.1f mean@." summary.Batch.mean_iterations;
  Format.printf "Error    : %.3g m mean@." summary.Batch.mean_error;
  Format.printf "Wall time: %.2f s (%d domains)@." summary.Batch.wall_clock_s
    (Dadu_util.Domain_pool.recommended_size ());
  if summary.Batch.converged = count then 0 else 1

let batch_count =
  Arg.(value & opt int 100 & info [ "n"; "count" ] ~doc:"Number of random targets.")

let batch_cmd =
  let doc = "Solve a batch of random targets (domain-parallel)." in
  Cmd.v
    (Cmd.info "batch" ~doc)
    Term.(
      const run_batch $ robot $ method_arg $ speculations $ seed $ batch_count
      $ max_iters $ accuracy)

(* ---- serve-batch ---- *)

module Svc = Dadu_service.Service
module Fallback = Dadu_service.Fallback

let solvers_conv =
  Arg.conv
    ( (fun s ->
        match Fallback.chain_of_string s with
        | Ok chain -> Ok chain
        | Error msg -> Error (`Msg msg)),
      fun ppf chain -> Format.pp_print_string ppf (Fallback.chain_to_string chain) )

let solvers_arg =
  let doc =
    "Fallback chain: comma-separated solver names tried in order until one \
     converges (e.g. quick-ik,dls,sdls)."
  in
  Arg.(
    value
    & opt solvers_conv Svc.default_config.Svc.solvers
    & info [ "solvers" ] ~doc)

let problems_file =
  let doc =
    "Problem file: robot/target/random declarations (see \
     Dadu_service.Problem_file for the format)."
  in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc)

let jobs =
  let doc = "Domain-pool size (1 = no pool)." in
  Arg.(
    value & opt int (Dadu_util.Domain_pool.recommended_size ()) & info [ "j"; "jobs" ] ~doc)

let chunk =
  let doc = "Scheduler wave size (cache warm-starts cross wave boundaries)." in
  Arg.(value & opt int Svc.default_config.Svc.chunk & info [ "chunk" ] ~doc)

let cache_cell =
  let doc = "Warm-start cache grid cell side in meters." in
  Arg.(value & opt float Svc.default_config.Svc.cache_cell_m & info [ "cache-cell" ] ~doc)

let cache_capacity =
  let doc = "Warm-start cache capacity in cells (LRU beyond this)." in
  Arg.(
    value & opt int Svc.default_config.Svc.cache_capacity & info [ "cache-capacity" ] ~doc)

let no_warm_start =
  Arg.(value & flag & info [ "no-warm-start" ] ~doc:"Disable the warm-start seed cache.")

let time_budget =
  let doc =
    "Per-problem wall-clock budget in seconds, checked between fallback \
     attempts (makes results timing-dependent)."
  in
  Arg.(value & opt (some float) None & info [ "time-budget" ] ~doc)

let batch_budget =
  let doc =
    "Batch-level time budget in seconds: once the batch has run this long, \
     remaining requests short-circuit to the cheapest solver tier and are \
     tagged deadline-exceeded."
  in
  Arg.(value & opt (some float) None & info [ "budget" ] ~doc)

let default_deadline =
  let doc =
    "Default per-request deadline in seconds from the batch's start, for \
     requests without an explicit deadline= in the problem file."
  in
  Arg.(value & opt (some float) None & info [ "deadline" ] ~doc)

let trace_out =
  let doc =
    "Write per-request spans (prepare, fallback-tier, solve, commit, retry) \
     as JSON lines to this file."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let retries =
  let doc =
    "Perturbed-seed retries: after the chain is exhausted without \
     convergence, re-enter it up to N times from a jittered initial \
     configuration (deterministically seeded per request)."
  in
  Arg.(value & opt int Svc.default_config.Svc.retries & info [ "retries" ] ~doc)

let retry_scale =
  let doc = "Std-dev in radians of the retry jitter applied to theta0." in
  Arg.(
    value & opt float Svc.default_config.Svc.retry_scale
    & info [ "retry-scale" ] ~doc)

let breaker_threshold =
  let doc =
    "Enable per-solver circuit breakers: a tier is skipped after N \
     consecutive malfunctions (divergence or crash) until its cooldown \
     elapses."
  in
  Arg.(value & opt (some int) None & info [ "breaker" ] ~docv:"N" ~doc)

let breaker_cooldown =
  let doc = "Circuit-breaker cooldown, in committed requests." in
  Arg.(
    value
    & opt int Dadu_service.Breaker.default_settings.Dadu_service.Breaker.cooldown
    & info [ "breaker-cooldown" ] ~doc)

let fault_plan =
  let doc =
    "Chaos fault plan, e.g. 'solver-nan,prob=0.1;solver-raise,every=50'. \
     Sites: solver-raise, solver-nan, solver-lie; triggers: iter=, from=, \
     every=, first=, prob= (default always)."
  in
  Arg.(value & opt (some string) None & info [ "fault-plan" ] ~docv:"PLAN" ~doc)

let fault_seed =
  let doc = "Seed for the fault plan's probabilistic triggers." in
  Arg.(value & opt int 0 & info [ "fault-seed" ] ~doc)

let guard_flag =
  let doc =
    "Enable the divergence guard: solver attempts abort with status \
     'diverged' on non-finite state or a sustained error explosion."
  in
  Arg.(value & flag & info [ "guard" ] ~doc)

let lockstep_flag =
  let doc =
    "Lockstep execution: solve each scheduler wave's Quick-IK head tier as \
     one mega-batch sweep (bit-identical replies to per-request mode, \
     higher throughput)."
  in
  Arg.(value & flag & info [ "lockstep" ] ~doc)

let snapshot_prepare_flag =
  let doc =
    "Snapshot-prepare execution: freeze each scheduler wave's serial state \
     reads into an immutable snapshot, then run seed-candidate assembly and \
     scoring as wave-fused SoA sweeps on the worker pool (byte-identical \
     replies to the per-request prepare, faster seed-heavy prepare phases)."
  in
  Arg.(value & flag & info [ "snapshot-prepare" ] ~doc)

let seed_library_arg =
  let doc =
    "Posture library file (written by 'dadu posture-build') consulted for \
     nearest-neighbour seed candidates; only chains matching the library's \
     fingerprint are seeded from it."
  in
  Arg.(value & opt (some string) None & info [ "seed-library" ] ~docv:"FILE" ~doc)

let seed_candidates_arg =
  let doc =
    "Speculative seed starts scored per request (argmin of first-iteration \
     FK error wins).  1 (the default) keeps the classic warm-start path."
  in
  Arg.(
    value
    & opt int Svc.default_config.Svc.seed_candidates
    & info [ "seed-candidates" ] ~docv:"S" ~doc)

let replies_out =
  let doc =
    "Write one deterministic JSON line per reply (index, status, solver, \
     iterations, error, theta, flags; no timing) to this file — byte-\
     comparable across runs and execution modes."
  in
  Arg.(value & opt (some string) None & info [ "replies" ] ~docv:"FILE" ~doc)

(* One reply, one JSON line, nothing clock-dependent: %.17g round-trips
   doubles exactly, so two runs producing bit-identical results produce
   byte-identical files. *)
let write_replies path replies =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
  Array.iteri
    (fun i reply ->
      match reply with
      | Svc.Rejected invalid ->
        Printf.fprintf oc "{\"index\":%d,\"reply\":\"rejected\",\"reason\":%S}\n" i
          (Format.asprintf "%a" Ik.pp_invalid invalid)
      | Svc.Faulted msg ->
        Printf.fprintf oc "{\"index\":%d,\"reply\":\"faulted\",\"reason\":%S}\n" i msg
      | Svc.Solved
          {
            result;
            solver;
            fallbacks;
            cache_hit;
            deadline_exceeded;
            retries;
            _;
          } ->
        let theta =
          String.concat ","
            (List.map (Printf.sprintf "%.17g") (Array.to_list result.Ik.theta))
        in
        Printf.fprintf oc
          "{\"index\":%d,\"reply\":\"solved\",\"status\":%S,\"solver\":%S,\"iterations\":%d,\"error\":%.17g,\"fallbacks\":%d,\"retries\":%d,\"cache_hit\":%b,\"deadline_exceeded\":%b,\"theta\":[%s]}\n"
          i
          (Format.asprintf "%a" Ik.pp_status result.Ik.status)
          (Fallback.name solver) result.Ik.iterations result.Ik.error fallbacks
          retries cache_hit deadline_exceeded theta)
    replies

let run_serve_batch file solvers speculations max_iters accuracy jobs chunk
    cache_cell cache_capacity no_warm_start time_budget batch_budget
    default_deadline trace_out retries retry_scale breaker_threshold
    breaker_cooldown fault_plan fault_seed guard_flag lockstep
    snapshot_prepare seed_library seed_candidates replies_out =
  match Dadu_service.Problem_file.parse_requests_file file with
  | Error msg ->
    Format.eprintf "dadu: %s: %s@." file msg;
    3
  | Ok entries ->
    let requests =
      Array.map
        (fun (e : Dadu_service.Problem_file.entry) ->
          {
            Svc.problem = e.Dadu_service.Problem_file.problem;
            deadline_s =
              (match e.Dadu_service.Problem_file.deadline_s with
              | Some _ as d -> d
              | None -> default_deadline);
            session = None;
            ordinal = None;
          })
        entries
    in
    let fault =
      match fault_plan with
      | None -> Ok Dadu_util.Fault.disabled
      | Some s ->
        Result.map
          (Dadu_util.Fault.arm ~seed:fault_seed)
          (Dadu_util.Fault.parse_plan s)
    in
    let library =
      match seed_library with
      | _ when seed_candidates < 1 ->
        Error "--seed-candidates must be at least 1"
      | None -> Ok None
      | Some path ->
        (match Dadu_service.Posture_library.load path with
        | Ok lib -> Ok (Some lib)
        (* the Sys_error text already names the path *)
        | Error (Dadu_service.Posture_library.Io msg) -> Error msg
        | Error e ->
          Error
            (Format.asprintf "%s: %a" path
               Dadu_service.Posture_library.pp_load_error e))
    in
    (match (fault, library) with
    | Error msg, _ ->
      Format.eprintf "dadu: bad --fault-plan: %s@." msg;
      3
    | _, Error msg ->
      Format.eprintf "dadu: %s@." msg;
      3
    | Ok fault, Ok seed_library ->
    let config =
      {
        Svc.solvers;
        speculations;
        accuracy;
        max_iterations = max_iters;
        time_budget_s = time_budget;
        warm_start = not no_warm_start;
        cache_cell_m = cache_cell;
        cache_capacity;
        chunk;
        lockstep;
        guard = (if guard_flag then Some Ik.default_guard else None);
        fault;
        breaker =
          Option.map
            (fun threshold ->
              {
                Dadu_service.Breaker.threshold;
                cooldown = breaker_cooldown;
              })
            breaker_threshold;
        retries;
        retry_scale;
        seed_library;
        seed_candidates;
        snapshot_prepare;
      }
    in
    let trace = Option.map (fun _ -> Dadu_util.Trace.create ()) trace_out in
    let pool =
      if jobs > 1 then Some (Dadu_util.Domain_pool.create jobs) else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Dadu_util.Domain_pool.shutdown pool)
      (fun () ->
        let service = Svc.create ?pool ~config () in
        let t0 = Unix.gettimeofday () in
        let replies =
          Svc.solve_requests ?budget_s:batch_budget ?trace service requests
        in
        let wall = Unix.gettimeofday () -. t0 in
        (match replies_out with
        | None -> ()
        | Some path -> write_replies path replies);
        let n = Array.length requests in
        Format.printf "Problems : %d (%s)@." n file;
        Format.printf "Solvers  : %s@." (Fallback.chain_to_string solvers);
        Format.printf "Pool     : %d domain%s, chunk %d%s@." jobs
          (if jobs = 1 then "" else "s")
          chunk
          ((if lockstep then ", lockstep" else "")
          ^ if snapshot_prepare then ", snapshot-prepare" else "");
        Format.printf "Wall time: %.3f s (%.0f problems/s)@." wall
          (if wall > 0. then float_of_int n /. wall else 0.);
        print_string (Svc.render_metrics service);
        print_newline ();
        match (trace_out, trace) with
        | Some path, Some tr ->
          (match Dadu_util.Trace.write_jsonl tr path with
          | () ->
            Format.printf "Trace    : %s (%d spans)@." path
              (Dadu_util.Trace.length tr);
            let m = Svc.metrics service in
            if m.Dadu_service.Metrics.failed = 0
               && m.Dadu_service.Metrics.rejected = 0
               && m.Dadu_service.Metrics.faulted = 0
            then 0
            else 1
          | exception Sys_error msg ->
            Format.eprintf "dadu: cannot write trace: %s@." msg;
            3)
        | _ ->
          let m = Svc.metrics service in
          if m.Dadu_service.Metrics.failed = 0
             && m.Dadu_service.Metrics.rejected = 0
             && m.Dadu_service.Metrics.faulted = 0
          then 0
          else 1))

let serve_batch_cmd =
  let doc =
    "Serve a batch of IK problems from a file: scheduler, warm-start cache, \
     solver fallback chain, circuit breakers, perturbed-seed retries, \
     per-request deadlines, fault injection, tracing, metrics table."
  in
  Cmd.v
    (Cmd.info "serve-batch" ~doc)
    Term.(
      const run_serve_batch $ problems_file $ solvers_arg $ speculations
      $ max_iters $ accuracy $ jobs $ chunk $ cache_cell $ cache_capacity
      $ no_warm_start $ time_budget $ batch_budget $ default_deadline
      $ trace_out $ retries $ retry_scale $ breaker_threshold
      $ breaker_cooldown $ fault_plan $ fault_seed $ guard_flag
      $ lockstep_flag $ snapshot_prepare_flag $ seed_library_arg
      $ seed_candidates_arg $ replies_out)

(* ---- serve (persistent streaming server) ---- *)

module Server = Dadu_service.Server

let listen_conv =
  Arg.conv
    ( (fun s ->
        match Server.listen_of_string s with
        | Ok l -> Ok l
        | Error msg -> Error (`Msg msg)),
      fun ppf l ->
        Format.pp_print_string ppf
          (match l with
          | Server.Unix_sock p -> "unix:" ^ p
          | Server.Tcp (h, p) -> Printf.sprintf "tcp:%s:%d" h p) )

let listen_arg =
  let doc =
    "Listen address: unix:<path>, tcp:<host>:<port>, or a bare path (a \
     Unix socket)."
  in
  Arg.(
    required
    & opt (some listen_conv) None
    & info [ "listen" ] ~docv:"ADDR" ~doc)

let queue_arg =
  let doc =
    "Admission bound: solve/waypoint requests beyond this many queued jobs \
     are shed with a typed 'overloaded' reply (0 sheds everything)."
  in
  Arg.(
    value
    & opt int Server.default_config.Server.queue_capacity
    & info [ "queue" ] ~doc)

let max_batch_arg =
  let doc = "Most queued jobs dispatched as one service batch." in
  Arg.(
    value
    & opt int Server.default_config.Server.max_batch
    & info [ "max-batch" ] ~doc)

let journal_arg =
  let doc =
    "Append every session open/commit/close to this checksummed journal \
     before the reply is written, and replay its valid prefix on startup: \
     clients that re-open after a crash resume warm with byte-identical \
     replies."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let max_conns_arg =
  let doc =
    "Live-connection cap: excess connections get one typed 'busy' frame \
     with a retry_after_ms hint and are closed."
  in
  Arg.(
    value
    & opt int Server.default_config.Server.max_connections
    & info [ "max-conns" ] ~doc)

let idle_timeout_arg =
  let doc =
    "Drop a connection idle (no frame started) this many seconds; 0 waits \
     forever."
  in
  Arg.(value & opt float 0. & info [ "idle-timeout" ] ~docv:"SECONDS" ~doc)

let frame_timeout_arg =
  let doc =
    "Drop a connection whose started frame is still incomplete after this \
     many seconds (slow-loris defense); 0 waits forever."
  in
  Arg.(value & opt float 30. & info [ "frame-timeout" ] ~docv:"SECONDS" ~doc)

let retry_after_arg =
  let doc = "Back-off hint (ms) attached to busy refusals and shed replies." in
  Arg.(
    value
    & opt int Server.default_config.Server.retry_after_ms
    & info [ "retry-after" ] ~docv:"MS" ~doc)

let est_job_ms_arg =
  let doc =
    "Estimated per-job service time (ms) for deadline-aware shedding: a \
     queued job whose estimated wait already exceeds its deadline is shed \
     up-front with the retry_after hint; 0 disables."
  in
  Arg.(value & opt float 0. & info [ "est-job-ms" ] ~docv:"MS" ~doc)

let net_fault_plan_arg =
  let doc =
    "Wire-level chaos plan applied to this server's connections, e.g. \
     'net-cut,prob=0.05;net-stall,prob=0.1,arg=0.2'. Sites: net-cut, \
     net-stall, net-garble, net-short-frame; triggers as in --fault-plan."
  in
  Arg.(value & opt (some string) None & info [ "net-fault" ] ~docv:"PLAN" ~doc)

let net_fault_seed_arg =
  let doc = "Seed for the wire-fault plan's probabilistic triggers." in
  Arg.(value & opt int 0 & info [ "net-fault-seed" ] ~doc)

let run_serve listen queue max_batch journal max_conns idle_timeout
    frame_timeout retry_after est_job_ms net_fault_plan net_fault_seed solvers
    speculations max_iters accuracy jobs chunk cache_cell cache_capacity
    no_warm_start retries retry_scale guard_flag lockstep snapshot_prepare
    seed_library seed_candidates =
  let library =
    match seed_library with
    | _ when seed_candidates < 1 -> Error "--seed-candidates must be at least 1"
    | None -> Ok None
    | Some path ->
      (match Dadu_service.Posture_library.load path with
      | Ok lib -> Ok (Some lib)
      | Error (Dadu_service.Posture_library.Io msg) -> Error msg
      | Error e ->
        Error
          (Format.asprintf "%s: %a" path
             Dadu_service.Posture_library.pp_load_error e))
  in
  let net_fault =
    match net_fault_plan with
    | None -> Ok Dadu_util.Fault.disabled
    | Some s ->
      Result.map
        (Dadu_util.Fault.arm ~seed:net_fault_seed)
        (Dadu_util.Fault.parse_plan s)
  in
  match (library, net_fault) with
  | Error msg, _ | _, Error msg ->
    Format.eprintf "dadu: %s@." msg;
    3
  | Ok seed_library, Ok net_fault ->
    let service_config =
      {
        Svc.solvers;
        speculations;
        accuracy;
        max_iterations = max_iters;
        time_budget_s = None;
        warm_start = not no_warm_start;
        cache_cell_m = cache_cell;
        cache_capacity;
        chunk;
        lockstep;
        guard = (if guard_flag then Some Ik.default_guard else None);
        fault = Dadu_util.Fault.disabled;
        breaker = None;
        retries;
        retry_scale;
        seed_library;
        seed_candidates;
        snapshot_prepare;
      }
    in
    let config =
      {
        Server.service = service_config;
        queue_capacity = queue;
        max_batch;
        max_connections = max_conns;
        idle_timeout_s = (if idle_timeout > 0. then Some idle_timeout else None);
        frame_timeout_s =
          (if frame_timeout > 0. then Some frame_timeout else None);
        retry_after_ms = retry_after;
        est_job_ms;
        net_fault;
        journal;
      }
    in
    let pool =
      if jobs > 1 then Some (Dadu_util.Domain_pool.create jobs) else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Dadu_util.Domain_pool.shutdown pool)
      (fun () ->
        match Server.create ?pool ~config () with
        | exception Invalid_argument msg ->
          Format.eprintf "dadu: %s@." msg;
          3
        | server ->
        (match Server.journal_recovery server with
        | Some defect ->
          Format.eprintf
            "dadu: journal %s: %a — replayed the valid prefix, tail truncated@."
            (Option.value ~default:"?" journal)
            Dadu_service.Journal.pp_load_error defect
        | None -> ());
        let handler = Sys.Signal_handle (fun _ -> Server.stop server) in
        (try Sys.set_signal Sys.sigterm handler with Invalid_argument _ -> ());
        (try Sys.set_signal Sys.sigint handler with Invalid_argument _ -> ());
        Format.eprintf "dadu: serving on %a@."
          (fun ppf -> function
            | Server.Unix_sock p -> Format.fprintf ppf "unix:%s" p
            | Server.Tcp (h, p) -> Format.fprintf ppf "tcp:%s:%d" h p)
          listen;
        Server.run server ~listen;
        print_string (Server.render_tenants server);
        0)

let serve_cmd =
  let doc =
    "Persistent concurrent IK server: length-prefixed JSON frames over a \
     Unix or TCP socket, trajectory-tracking sessions with temporal \
     warm-starting, bounded-queue load shedding, per-tenant metrics, \
     graceful drain on SIGTERM."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ listen_arg $ queue_arg $ max_batch_arg $ journal_arg
      $ max_conns_arg $ idle_timeout_arg $ frame_timeout_arg $ retry_after_arg
      $ est_job_ms_arg $ net_fault_plan_arg $ net_fault_seed_arg $ solvers_arg
      $ speculations $ max_iters $ accuracy $ jobs $ chunk $ cache_cell
      $ cache_capacity $ no_warm_start $ retries $ retry_scale $ guard_flag
      $ lockstep_flag $ snapshot_prepare_flag $ seed_library_arg
      $ seed_candidates_arg)

(* ---- client (script-driven frame stream) ---- *)

module Json = Dadu_util.Json
module Pf = Dadu_service.Problem_file

let sockaddr_of_listen = function
  | Server.Unix_sock path -> Unix.ADDR_UNIX path
  | Server.Tcp (host, port) ->
    let ip =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    Unix.ADDR_INET (ip, port)

(* retry until the server's socket exists and accepts: the CI job starts
   the server in the background and races the client against its bind *)
let connect_with_retry addr ~timeout_s =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let domain =
      match addr with Unix.ADDR_UNIX _ -> Unix.PF_UNIX | _ -> Unix.PF_INET
    in
    let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
    match Unix.connect fd addr with
    | () -> Ok fd
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
      when Unix.gettimeofday () < deadline ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Unix.sleepf 0.05;
      go ()
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Unix.error_message e)
  in
  go ()

module Client = Dadu_service.Client

let run_client connect script dump timeout_s retries backoff_ms read_timeout
    net_fault_plan net_fault_seed =
  match Pf.parse_script_file script with
  | Error msg ->
    Format.eprintf "dadu: %s: %s@." script msg;
    3
  | Ok ops ->
    let fault =
      match net_fault_plan with
      | None -> Ok Dadu_util.Fault.disabled
      | Some s ->
        Result.map
          (Dadu_util.Fault.arm ~seed:net_fault_seed)
          (Dadu_util.Fault.parse_plan s)
    in
    (match fault with
    | Error msg ->
      Format.eprintf "dadu: %s@." msg;
      3
    | Ok fault ->
      let addr = sockaddr_of_listen connect in
      let connect () = connect_with_retry addr ~timeout_s in
      let read_timeout_s = if read_timeout > 0. then Some read_timeout else None in
      (match
         Client.run ~retries ~backoff_ms ~seed:net_fault_seed ?read_timeout_s
           ~fault ~on_event:print_endline
           ~on_reconnect:(fun k ->
             Format.eprintf "dadu: connection lost, reconnecting (attempt %d)@."
               k)
           ~connect ops
       with
      | Error (Client.Connect msg) ->
        Format.eprintf "dadu: cannot connect: %s@." msg;
        4
      | Error (Client.Unrecovered msg) ->
        Format.eprintf "dadu: stream failed: %s@." msg;
        6
      | Ok o ->
        (match dump with
        | None -> ()
        | Some path ->
          let out = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out out)
            (fun () ->
              List.iter
                (fun (_, payload) ->
                  output_string out payload;
                  output_char out '\n')
                o.Client.solves));
        Format.printf "solve replies: %d@." (List.length o.Client.solves);
        if o.Client.overloaded > 0 then 5 else 0))

let connect_arg =
  let doc = "Server address (same forms as serve --listen)." in
  Arg.(
    required
    & opt (some listen_conv) None
    & info [ "connect" ] ~docv:"ADDR" ~doc)

let script_arg =
  let doc =
    "Op script: hello/open/waypoint/solve/ping/close/stats/raw lines (see \
     Dadu_service.Problem_file for the format)."
  in
  Arg.(required & pos 0 (some file) None & info [] ~docv:"SCRIPT" ~doc)

let dump_arg =
  let doc =
    "Write solve-type replies (solved/rejected/faulted/overloaded), one \
     JSON line each sorted by request id, to this file — byte-comparable \
     across server pool sizes and execution modes."
  in
  Arg.(value & opt (some string) None & info [ "dump" ] ~docv:"FILE" ~doc)

let timeout_arg =
  let doc = "Seconds to keep retrying the initial connection." in
  Arg.(value & opt float 10.0 & info [ "timeout" ] ~doc)

let client_retries_arg =
  let doc =
    "Reconnection budget: when the stream dies mid-script, back off, \
     reconnect (re-sending the session prelude), and resend every \
     unanswered op — resent waypoints carry their seq so a journal-backed \
     server replays committed replies instead of re-solving."
  in
  Arg.(value & opt int 0 & info [ "retries" ] ~docv:"N" ~doc)

let client_backoff_arg =
  let doc =
    "Base reconnect back-off in milliseconds (exponential in consecutive \
     failures, jittered, capped at 10s)."
  in
  Arg.(value & opt int 100 & info [ "backoff" ] ~docv:"MS" ~doc)

let client_read_timeout_arg =
  let doc =
    "Treat this many seconds without a reply (or with a reply frame stuck \
     incomplete) as a dead connection; 0 waits forever."
  in
  Arg.(value & opt float 0. & info [ "read-timeout" ] ~docv:"SECONDS" ~doc)

let client_cmd =
  let doc =
    "Stream a script of ops at a running dadu serve instance: control \
     replies print in arrival order, solve-type replies are dumped sorted \
     by id for byte-exact comparison. Exit status: 0 all ops answered, 4 \
     could not connect, 5 answered but some replies were overloaded sheds, \
     6 stream failed with the retry budget exhausted."
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run_client $ connect_arg $ script_arg $ dump_arg $ timeout_arg
      $ client_retries_arg $ client_backoff_arg $ client_read_timeout_arg
      $ net_fault_plan_arg $ net_fault_seed_arg)

(* ---- posture-build ---- *)

let run_posture_build chain count seed cell out =
  match
    Dadu_service.Posture_library.build ?cell_size:cell ~seed ~chain ~count ()
  with
  | exception Invalid_argument msg ->
    Format.eprintf "dadu: %s@." msg;
    3
  | lib ->
    (match Dadu_service.Posture_library.save lib out with
    | Error e ->
      Format.eprintf "dadu: %s: %a@." out
        Dadu_service.Posture_library.pp_load_error e;
      3
    | Ok () ->
      Format.printf "Posture library: %s, %d postures (%d DOF), cell %.3f m -> %s@."
        (Dadu_service.Posture_library.chain_name lib)
        (Dadu_service.Posture_library.size lib)
        (Dadu_service.Posture_library.dof lib)
        (Dadu_service.Posture_library.cell_size lib)
        out;
      0)

let pb_count =
  let doc = "Number of postures to sample." in
  Arg.(value & opt int 256 & info [ "k"; "postures" ] ~doc)

let pb_cell =
  let doc = "Workspace grid cell side in meters (default: reach/8)." in
  Arg.(value & opt (some float) None & info [ "cell" ] ~docv:"M" ~doc)

let pb_out =
  let doc = "Output library file." in
  Arg.(required & opt (some string) None & info [ "o"; "out" ] ~docv:"FILE" ~doc)

let posture_build_cmd =
  let doc =
    "Sample a per-chain posture library (FK-indexed joint configurations) \
     for speculative seed starts; load it with serve-batch --seed-library."
  in
  Cmd.v
    (Cmd.info "posture-build" ~doc)
    Term.(const run_posture_build $ robot $ pb_count $ seed $ pb_cell $ pb_out)

(* ---- fault-tolerance ---- *)

let run_fault_tolerance seed targets max_iters speculations prob bit json =
  let scale =
    { Dadu_experiments.Runner.targets; max_iterations = max_iters; speculations; seed }
  in
  let cells = Dadu_experiments.Fault_tolerance.run ~prob ~bit scale in
  Dadu_util.Table.print (Dadu_experiments.Fault_tolerance.to_table cells);
  (match json with
  | None -> ()
  | Some path ->
    Dadu_util.Json.write_file path
      (Dadu_experiments.Fault_tolerance.to_json cells);
    Format.printf "JSON  : %s@." path);
  0

let ft_targets =
  Arg.(value & opt int 25 & info [ "n"; "targets" ] ~doc:"Targets per DOF.")

let ft_prob =
  let doc = "Per-candidate probability of an SSU bit-flip." in
  Arg.(value & opt float 0.02 & info [ "prob" ] ~doc)

let ft_bit =
  let doc = "Which bit of the squared-error register to flip (0-63)." in
  Arg.(value & opt int 40 & info [ "bit" ] ~doc)

let ft_json =
  let doc = "Also write the cells as a JSON report to this file." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let fault_tolerance_cmd =
  let doc =
    "Inject SSU bit-flips into the accelerator simulator and measure flips \
     absorbed vs. runs corrupted, with and without selector re-verification."
  in
  Cmd.v
    (Cmd.info "fault-tolerance" ~doc)
    Term.(
      const run_fault_tolerance $ seed $ ft_targets $ max_iters $ speculations
      $ ft_prob $ ft_bit $ ft_json)

(* ---- describe ---- *)

let run_describe chain =
  print_string (Chain_format.to_string chain);
  0

let describe_cmd =
  let doc =
    "Print a robot as a description file (round-trips through --robot-file)."
  in
  Cmd.v (Cmd.info "describe" ~doc) Term.(const run_describe $ robot)

(* ---- plan ---- *)

let sphere_conv =
  let parse s =
    match String.split_on_char ',' s |> List.map float_of_string_opt with
    | [ Some x; Some y; Some z; Some r ] when r > 0. ->
      Ok (Obstacles.sphere ~center:(Vec3.make x y z) ~radius:r)
    | _ -> Error (`Msg (Printf.sprintf "expected x,y,z,radius (got %S)" s))
  in
  Arg.conv
    ( parse,
      fun ppf { Obstacles.center; radius } ->
        Format.fprintf ppf "%a r=%g" Vec3.pp center radius )

let obstacles_arg =
  let doc = "Sphere obstacle as x,y,z,radius (repeatable)." in
  Arg.(value & opt_all sphere_conv [] & info [ "o"; "obstacle" ] ~doc)

let run_plan chain seed target obstacles svg =
  let rng = Dadu_util.Rng.create seed in
  let target =
    match target with Some t -> t | None -> Target.reachable rng chain
  in
  let start = Target.random_config rng chain in
  if Obstacles.penetrates obstacles chain start then begin
    Format.eprintf "start posture collides; try another --seed@.";
    1
  end
  else begin
    (* IK for a collision-free goal, then plan *)
    let rec find_goal attempts =
      if attempts = 0 then None
      else begin
        let theta0 = Target.random_config rng chain in
        let r = Quick_ik.solve ~speculations:32 (Ik.problem ~chain ~target ~theta0) in
        if r.Ik.status = Ik.Converged
           && Obstacles.clearance obstacles chain r.Ik.theta > 0.
        then Some r.Ik.theta
        else find_goal (attempts - 1)
      end
    in
    match find_goal 20 with
    | None ->
      Format.eprintf "no collision-free IK solution found for %a@." Vec3.pp target;
      1
    | Some goal ->
      let result = Rrt.plan rng ~scene:obstacles ~chain ~start ~goal in
      if result.Rrt.path = [] then begin
        Format.printf "planning failed (%d nodes expanded)@." result.Rrt.nodes_expanded;
        1
      end
      else begin
        let short = Rrt.shortcut rng obstacles chain result.Rrt.path in
        Format.printf
          "Planned %d waypoints (%.2f rad), shortcut to %d (%.2f rad); %d nodes, %d collision checks@."
          (List.length result.Rrt.path)
          (Rrt.path_length result.Rrt.path)
          (List.length short) (Rrt.path_length short) result.Rrt.nodes_expanded
          result.Rrt.collision_checks;
        (match svg with
        | None -> ()
        | Some path ->
          Viz.write ~path ~targets:[ target ] ~obstacles chain
            [
              Viz.posture ~label:"start" ~color:"#999999" start;
              Viz.posture ~label:"goal" ~color:"#2ca02c" goal;
            ];
          Format.printf "SVG   : %s@." path);
        0
      end
  end

let plan_cmd =
  let doc = "Plan a collision-free joint path to a target (IK + RRT-Connect)." in
  Cmd.v
    (Cmd.info "plan" ~doc)
    Term.(const run_plan $ robot $ seed $ target $ obstacles_arg $ svg_out)

(* ---- robots ---- *)

let run_robots verbose =
  let entries =
    [
      ("arm6", Robots.arm_6dof ());
      ("arm7", Robots.arm_7dof ());
      ("scara", Robots.scara ());
      ("snake:30", Robots.snake ~dof:30);
      ("eval:12", Robots.eval_chain ~dof:12);
      ("eval:100", Robots.eval_chain ~dof:100);
      ("planar:6", Robots.planar ~dof:6 ~reach:6. ());
    ]
  in
  List.iter
    (fun (key, chain) ->
      Format.printf "%-10s %s: %d DOF, reach %.2f m@." key (Chain.name chain)
        (Chain.dof chain) (Chain.reach chain);
      if verbose then Format.printf "  %a@." Chain.pp chain)
    entries;
  0

let robots_cmd =
  let doc = "List built-in robot factories." in
  Cmd.v (Cmd.info "robots" ~doc) Term.(const run_robots $ verbose)

(* ---- main ---- *)

let () =
  let doc = "Quick-IK and IKAcc: inverse kinematics for high-DOF robots (DAC'17)" in
  let info = Cmd.info "dadu" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            solve_cmd;
            sweep_cmd;
            accel_cmd;
            batch_cmd;
            serve_batch_cmd;
            serve_cmd;
            client_cmd;
            posture_build_cmd;
            fault_tolerance_cmd;
            plan_cmd;
            describe_cmd;
            robots_cmd;
          ]))
