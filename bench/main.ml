(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Figure 4, Figure 5a/5b, Tables 1-3), runs the ablations from
   DESIGN.md, and times the actual OCaml kernels with Bechamel.

   Usage:  dune exec bench/main.exe [-- section ...]
   Sections: table1 fig4 fig5 table2 table3 ablation convergence dse
   robustness scorecard serve serve-parallel serve-live micro all
   (default all).
   Scale knobs: DADU_TARGETS, DADU_MAX_ITERS, DADU_SPECS, DADU_SEED. *)

module Table = Dadu_util.Table
module Csv = Dadu_util.Csv
module E = Dadu_experiments

let results_dir = "results"

let ensure_results_dir () =
  if not (Sys.file_exists results_dir) then Sys.mkdir results_dir 0o755

let write_csv name ~header rows =
  ensure_results_dir ();
  let path = Filename.concat results_dir name in
  Csv.write path ~header rows;
  Printf.printf "  [csv] %s\n%!" path

let heading title =
  Printf.printf "\n==== %s ====\n\n%!" title

(* The Figure 5 / Table 2 / Table 3 views share one measurement grid; it is
   collected lazily so `-- fig4` alone does not pay for it. *)
let grid = lazy (E.Measurements.collect (E.Runner.default_scale ()))

let run_table1 () =
  heading "Table 1: methods under evaluation";
  Table.print (E.Table1.to_table ())

let run_fig4 () =
  heading "Figure 4: iterations vs number of speculations";
  let rows = E.Fig4.run (E.Runner.default_scale ()) in
  Table.print (E.Fig4.to_table rows);
  print_newline ();
  print_string (E.Fig4.to_chart rows);
  write_csv "fig4.csv" ~header:E.Fig4.csv_header (E.Fig4.to_csv_rows rows)

let run_fig5 () =
  let m = Lazy.force grid in
  heading "Figure 5(a): iterations under various DOF manipulators";
  Table.print (E.Fig5.table_iterations m);
  print_newline ();
  print_string (E.Fig5.chart_iterations m);
  heading "Figure 5(b): computation load under various DOF manipulators";
  Table.print (E.Fig5.table_work m);
  print_newline ();
  print_string (E.Fig5.chart_work m);
  write_csv "fig5.csv" ~header:E.Fig5.csv_header (E.Fig5.to_csv_rows m)

let table2_rows = lazy (E.Table2.compute (Lazy.force grid))

let run_table2 () =
  let rows = Lazy.force table2_rows in
  heading "Table 2: performance under various IK methods and architectures";
  Table.print (E.Table2.to_table rows);
  Table.print (E.Table2.speedup_table rows);
  write_csv "table2.csv" ~header:E.Table2.csv_header (E.Table2.to_csv_rows rows)

let run_table3 () =
  let m = Lazy.force grid in
  let rows = E.Table3.compute m (Lazy.force table2_rows) in
  heading "Table 3: hardware platforms and energy per solve";
  Table.print (E.Table3.platform_table ());
  Table.print (E.Table3.to_table rows);
  Printf.printf "Energy efficiency vs TX1 (geomean): %.0fx (paper: ~776x)\n"
    (E.Table3.efficiency_vs_tx1 rows);
  write_csv "table3.csv" ~header:E.Table3.csv_header (E.Table3.to_csv_rows rows)

let run_ablation () =
  let scale = E.Runner.default_scale () in
  heading "Ablation A1: speculation strategy";
  Table.print (E.Ablation.strategy_table (E.Ablation.run_strategies scale));
  heading "Ablation A2: SSU count";
  let m = Lazy.force grid in
  Table.print (E.Ablation.ssu_table ~dof:100 (E.Ablation.run_ssus ~dof:100 m));
  heading "Ablation A3: fixed-point FKU datapath width";
  Table.print (E.Ablation.fixed_table (E.Ablation.run_fixed scale))

(* ---- serving layer ---- *)

let run_serve () =
  heading "Service: batched serving (scheduler + warm-start cache + fallback)";
  let open Dadu_kinematics in
  let chain = Robots.eval_chain ~dof:25 in
  let rng = Dadu_util.Rng.create 2017 in
  let fresh = Array.init 120 (fun _ -> Dadu_core.Ik.random_problem rng chain) in
  (* a serving workload revisits targets: duplicate every fresh problem with
     a new random start, so the second visit can warm-start from the cache *)
  let revisit =
    Array.map
      (fun (p : Dadu_core.Ik.problem) ->
        { p with Dadu_core.Ik.theta0 = Target.random_config rng chain })
      fresh
  in
  let problems = Array.append fresh revisit in
  let pool =
    Dadu_util.Domain_pool.create (Dadu_util.Domain_pool.recommended_size ())
  in
  let service = Dadu_service.Service.create ~pool () in
  let t0 = Unix.gettimeofday () in
  let _replies = Dadu_service.Service.solve_batch service problems in
  let wall = Unix.gettimeofday () -. t0 in
  Dadu_util.Domain_pool.shutdown pool;
  print_string (Dadu_service.Service.render_metrics service);
  Printf.printf "\n%d problems (each target visited twice) in %.2f s — %.0f problems/s\n"
    (Array.length problems) wall
    (float_of_int (Array.length problems) /. wall)

(* A serving workload for the parallel-scheduler benchmarks: every fresh
   problem is revisited with a new random start, so the second visit can
   warm-start from the cache.  Rebuilt from the same seed per run so each
   pool size sees byte-identical input. *)
let serve_workload ~dof ~fresh_count =
  let open Dadu_kinematics in
  let chain = Robots.eval_chain ~dof in
  let rng = Dadu_util.Rng.create 2017 in
  let fresh =
    Array.init fresh_count (fun _ -> Dadu_core.Ik.random_problem rng chain)
  in
  let revisit =
    Array.map
      (fun (p : Dadu_core.Ik.problem) ->
        { p with Dadu_core.Ik.theta0 = Target.random_config rng chain })
      fresh
  in
  Array.append fresh revisit

let run_serve_parallel () =
  heading
    "Service: parallel batch execution (serial prepare/commit, parallel solve)";
  let module Svc = Dadu_service.Service in
  let module Ws = Dadu_core.Workspace in
  let statuses replies =
    Array.map
      (function
        | Svc.Solved { result; solver; cache_hit; _ } ->
          (result.Dadu_core.Ik.status, solver, cache_hit)
        | Svc.Rejected _ | Svc.Faulted _ -> assert false)
      replies
  in
  let run_one pool_size =
    let problems = serve_workload ~dof:25 ~fresh_count:120 in
    let pool =
      if pool_size > 1 then Some (Dadu_util.Domain_pool.create pool_size)
      else None
    in
    let service =
      match pool with
      | Some p -> Svc.create ~pool:p ()
      | None -> Svc.create ()
    in
    let s0 = Ws.local_stats () in
    let t0 = Unix.gettimeofday () in
    let replies = Svc.solve_batch service problems in
    let wall = Unix.gettimeofday () -. t0 in
    let s1 = Ws.local_stats () in
    let m = Svc.metrics service in
    Option.iter Dadu_util.Domain_pool.shutdown pool;
    let created = s1.Ws.created - s0.Ws.created in
    let reused = s1.Ws.reused - s0.Ws.reused in
    (wall, m, statuses replies, created, reused, Array.length problems)
  in
  let pool_sizes = [ 1; 2; 4 ] in
  let runs = List.map (fun p -> (p, run_one p)) pool_sizes in
  let serial_wall, _, serial_statuses, _, _, _ = List.assoc 1 runs in
  let table =
    Table.create ~title:"240 requests at 25 DOF, each target visited twice"
      [ ("pool", Table.Right); ("wall s", Table.Right); ("req/s", Table.Right);
        ("p50 ms", Table.Right); ("p95 ms", Table.Right);
        ("p99 ms", Table.Right); ("speedup", Table.Right);
        ("prep/work/commit ms", Table.Right); ("serial %", Table.Right);
        ("ws new/reused", Table.Right) ]
  in
  List.iter
    (fun (pool_size, (wall, m, statuses, created, reused, n)) ->
      let lat proj =
        match m.Dadu_service.Metrics.latency with
        | Some s -> Printf.sprintf "%.2f" (1e3 *. proj s)
        | None -> "n/a"
      in
      Table.add_row table
        [ string_of_int pool_size; Printf.sprintf "%.3f" wall;
          Printf.sprintf "%.0f" (float_of_int n /. wall);
          lat (fun s -> s.Dadu_util.Histogram.p50);
          lat (fun s -> s.Dadu_util.Histogram.p95);
          lat (fun s -> s.Dadu_util.Histogram.p99);
          Printf.sprintf "%.2fx" (serial_wall /. wall);
          Printf.sprintf "%.1f/%.1f/%.1f"
            (1e3 *. m.Dadu_service.Metrics.prepare_s)
            (1e3 *. m.Dadu_service.Metrics.work_s)
            (1e3 *. m.Dadu_service.Metrics.commit_s);
          (match Dadu_service.Metrics.serial_fraction m with
          | Some f -> Printf.sprintf "%.1f" (100. *. f)
          | None -> "n/a");
          Printf.sprintf "%d/%d" created reused ];
      if statuses <> serial_statuses then
        Printf.printf
          "  WARNING: pool size %d produced different replies than serial!\n"
          pool_size)
    runs;
  Table.print table;
  Printf.printf
    "\n(replies checked byte-identical across pool sizes; ws new/reused are\n\
    \ Workspace.local pool deltas — parallel runs build one workspace per\n\
    \ domain, then reuse; prep/work/commit are the scheduler wave-phase\n\
    \ wall-time totals from the metrics registry)\n";
  (* seed-heavy snapshot-prepare comparison: at 100 DOF with 5 speculative
     candidates per request, candidate scoring dominates the serial
     prepare phase — the wave-fused snapshot path moves it onto the pool *)
  heading
    "Service: snapshot-prepare (100 DOF, 5 seed candidates, pool 4) — \
     prepare phase serial vs wave-fused";
  let chain100 = Dadu_kinematics.Robots.eval_chain ~dof:100 in
  let library100 =
    Dadu_service.Posture_library.build ~chain:chain100 ~count:256 ~seed:42 ()
  in
  let snap_workload () =
    let rng = Dadu_util.Rng.create 2017 in
    Array.init 96 (fun _ -> Dadu_core.Ik.random_problem rng chain100)
  in
  let run_snap snapshot_prepare =
    let problems = snap_workload () in
    let pool = Dadu_util.Domain_pool.create 4 in
    let config =
      {
        Svc.default_config with
        Svc.seed_candidates = 5;
        seed_library = Some library100;
        snapshot_prepare;
      }
    in
    let service = Svc.create ~pool ~config () in
    let p0 = Ws.phase_stats Ws.Prepare in
    (* min over warm batches: a single batch's phase split is at the
       mercy of scheduler noise on a loaded host *)
    let best_wall = ref infinity and best_prep = ref infinity in
    let replies = ref [||] in
    for rep = 0 to 5 do
      Svc.reset_metrics service;
      let t0 = Unix.gettimeofday () in
      let r = Svc.solve_batch service problems in
      let wall = Unix.gettimeofday () -. t0 in
      let m = Svc.metrics service in
      if rep > 0 then begin
        (* rep 0 warms workspaces and the seed cache *)
        if wall < !best_wall then best_wall := wall;
        let p = m.Dadu_service.Metrics.prepare_s in
        if p < !best_prep then best_prep := p
      end;
      replies := r
    done;
    let p1 = Ws.phase_stats Ws.Prepare in
    Dadu_util.Domain_pool.shutdown pool;
    ( !best_wall,
      !best_prep,
      statuses !replies,
      p1.Ws.created - p0.Ws.created,
      p1.Ws.reused - p0.Ws.reused )
  in
  let wall_off, prep_off, st_off, _, _ = run_snap false in
  let wall_on, prep_on, st_on, pc, pr = run_snap true in
  let snap_table =
    Table.create ~title:"96 requests at 100 DOF, seed-candidates 5"
      [ ("prepare path", Table.Left); ("wall s", Table.Right);
        ("prepare ms", Table.Right); ("prepare speedup", Table.Right);
        ("prepare-phase ws new/reused", Table.Right) ]
  in
  Table.add_row snap_table
    [ "serial (per-request)"; Printf.sprintf "%.3f" wall_off;
      Printf.sprintf "%.1f" (1e3 *. prep_off); "1.00x"; "0/0" ];
  Table.add_row snap_table
    [ "snapshot (wave-fused)"; Printf.sprintf "%.3f" wall_on;
      Printf.sprintf "%.1f" (1e3 *. prep_on);
      Printf.sprintf "%.2fx" (prep_off /. prep_on);
      Printf.sprintf "%d/%d" pc pr ];
  (if st_off <> st_on then
     print_string "  WARNING: snapshot-prepare changed the replies!\n");
  Table.print snap_table;
  Printf.printf
    "\n(replies checked byte-identical between prepare paths; wall and\n\
    \ prepare ms are minima over 5 warm batches — the metrics registry's\n\
    \ prepare-phase wall-time total per batch; ws new/reused are\n\
    \ Workspace.phase_stats Prepare deltas — the fused sweeps borrow\n\
    \ each pool domain's workspace FK scratch)\n"

(* ---- open-loop load benchmark: per-request vs lockstep serving ----

   Closed-loop numbers (above) hide queueing: the next request only
   arrives when the previous one finished.  Here a seeded Poisson
   process generates arrivals at a target offered load — multiples of
   the per-request path's measured closed-loop capacity — and both
   execution modes drain the same arrival schedule.  Sojourn = queue
   wait + service, measured per request from its arrival time. *)

let run_serve_open_loop () =
  heading "Service: open-loop Poisson arrivals, 100 DOF (per-request vs lockstep)";
  let module Svc = Dadu_service.Service in
  let dof = 100 in
  let n = 96 in
  let pool_size = Dadu_util.Domain_pool.recommended_size () in
  let chain = Dadu_kinematics.Robots.eval_chain ~dof in
  let problems seed =
    let rng = Dadu_util.Rng.create seed in
    Array.init n (fun _ -> Dadu_core.Ik.random_problem rng chain)
  in
  let with_service ~lockstep f =
    let pool =
      if pool_size > 1 then Some (Dadu_util.Domain_pool.create pool_size)
      else None
    in
    Fun.protect
      ~finally:(fun () -> Option.iter Dadu_util.Domain_pool.shutdown pool)
      (fun () ->
        let svc =
          Svc.create ?pool ~config:{ Svc.default_config with Svc.lockstep } ()
        in
        (* warm per-domain workspaces and the lane bank *)
        ignore (Svc.solve_batch svc (problems 11));
        f svc)
  in
  (* the per-request path's closed-loop capacity calibrates offered load *)
  let capacity_rps =
    with_service ~lockstep:false (fun svc ->
        let ps = problems 13 in
        let t0 = Unix.gettimeofday () in
        ignore (Svc.solve_batch svc ps);
        float_of_int n /. (Unix.gettimeofday () -. t0))
  in
  (* seeded exponential inter-arrivals: both modes at a given load drain
     the byte-identical schedule *)
  let arrivals ~rate ~seed =
    let rng = Dadu_util.Rng.create seed in
    let t = ref 0. in
    Array.init n (fun _ ->
        t := !t -. (log (1. -. Dadu_util.Rng.float rng 1.) /. rate);
        !t)
  in
  let run_mode ~lockstep ~mult =
    with_service ~lockstep (fun svc ->
        let rate = mult *. capacity_rps in
        let ps = problems 17 in
        let arr = arrivals ~rate ~seed:23 in
        let done_t = Array.make n 0. in
        let t0 = Unix.gettimeofday () in
        let idx = ref 0 in
        while !idx < n do
          let elapsed = Unix.gettimeofday () -. t0 in
          if arr.(!idx) > elapsed then Unix.sleepf (arr.(!idx) -. elapsed)
          else begin
            (* batch every request that has arrived by now *)
            let hi = ref !idx in
            while !hi < n && arr.(!hi) <= elapsed do
              incr hi
            done;
            ignore (Svc.solve_batch svc (Array.sub ps !idx (!hi - !idx)));
            let t_done = Unix.gettimeofday () -. t0 in
            for j = !idx to !hi - 1 do
              done_t.(j) <- t_done
            done;
            idx := !hi
          end
        done;
        let achieved = float_of_int n /. done_t.(n - 1) in
        let sojourn = Array.init n (fun i -> done_t.(i) -. arr.(i)) in
        Array.sort compare sojourn;
        (rate, achieved, sojourn.(n / 2), sojourn.(95 * n / 100)))
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%d requests at %d DOF, pool %d; offered load relative to the \
            per-request closed-loop capacity (%.0f req/s)"
           n dof pool_size capacity_rps)
      [ ("mode", Table.Left); ("offered", Table.Right);
        ("offered req/s", Table.Right); ("achieved req/s", Table.Right);
        ("sojourn p50 ms", Table.Right); ("sojourn p95 ms", Table.Right) ]
  in
  let rows = ref [] in
  List.iter
    (fun (label, lockstep) ->
      List.iter
        (fun mult ->
          let rate, achieved, p50, p95 = run_mode ~lockstep ~mult in
          Table.add_row table
            [ label; Printf.sprintf "%.0fx" mult; Printf.sprintf "%.0f" rate;
              Printf.sprintf "%.0f" achieved;
              Printf.sprintf "%.1f" (1e3 *. p50);
              Printf.sprintf "%.1f" (1e3 *. p95) ];
          rows :=
            [ label; Printf.sprintf "%.0f" mult; Printf.sprintf "%.1f" rate;
              Printf.sprintf "%.1f" achieved; Printf.sprintf "%.4f" p50;
              Printf.sprintf "%.4f" p95 ]
            :: !rows)
        [ 1.; 4.; 16. ])
    [ ("per-request", false); ("lockstep", true) ];
  Table.print table;
  write_csv "openloop.csv"
    ~header:
      [ "mode"; "offered_x"; "offered_rps"; "achieved_rps"; "sojourn_p50_s";
        "sojourn_p95_s" ]
    (List.rev !rows);
  Printf.printf
    "\n(same seeded arrival schedule per offered load in both modes;\n\
    \ sojourn = queue wait + service, from each request's arrival)\n"

(* ---- live-server load test: open-loop Poisson over a Unix socket ----

   The open-loop section above drives the Service in process; this one
   drives the whole server — framing, reader threads, the bounded
   admission queue, the dispatcher — through a real Unix socket, the
   deployment shape of `dadu serve`.  A seeded Poisson process offers
   load at multiples of the measured closed-loop capacity; sojourn is
   measured per request from its scheduled arrival to its reply frame,
   and the shed rate counts typed [overloaded] replies.  The CI
   serve-live job uploads results/serve_live.csv as an artifact. *)

let run_serve_live () =
  heading "Live server: open-loop Poisson arrivals over a Unix socket (12 DOF)";
  let module Server = Dadu_service.Server in
  let module Svc = Dadu_service.Service in
  let module Pf = Dadu_service.Problem_file in
  let module Json = Dadu_util.Json in
  let dof = 12 in
  let n = 240 in
  let queue_capacity = 64 in
  let pool_size = Dadu_util.Domain_pool.recommended_size () in
  let chain = Dadu_kinematics.Robots.eval_chain ~dof in
  let rng = Dadu_util.Rng.create 2026 in
  let mk_targets count =
    Array.init count (fun _ ->
        (Dadu_core.Ik.random_problem rng chain).Dadu_core.Ik.target)
  in
  let path = Filename.temp_file "dadu_live" ".sock" in
  Sys.remove path;
  let pool =
    if pool_size > 1 then Some (Dadu_util.Domain_pool.create pool_size)
    else None
  in
  let config =
    {
      Server.default_config with
      Server.service = { Svc.default_config with Svc.chunk = 16 };
      queue_capacity;
      max_batch = 64;
    }
  in
  let server = Server.create ?pool ~config () in
  let runner =
    Thread.create (fun () -> Server.run server ~listen:(Server.Unix_sock path)) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join runner;
      Option.iter Dadu_util.Domain_pool.shutdown pool;
      try Sys.remove path with Sys_error _ -> ())
  @@ fun () ->
  let fd =
    let rec go tries =
      let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> fd
      | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _)
        when tries < 200 ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Thread.delay 0.01;
        go (tries + 1)
    in
    go 0
  in
  let ic = Unix.in_channel_of_descr fd in
  let oc = Unix.out_channel_of_descr fd in
  (* reply ledger, filled by the reader thread; ids are globally unique
     across every mode of the run *)
  let total = 8 * n in
  let reply_t = Array.make total 0. in
  let reply_shed = Array.make total false in
  let replied = ref 0 in
  let rlock = Mutex.create () in
  let reader () =
    let running = ref true in
    while !running do
      match Pf.read_frame ic with
      | Ok None | Error _ -> running := false
      | exception (Sys_error _ | End_of_file) -> running := false
      | Ok (Some payload) ->
        (match Json.of_string payload with
        | Error _ -> ()
        | Ok json ->
          let id =
            Option.bind (Json.member "id" json) (fun j ->
                Option.map int_of_float (Json.to_float j))
          in
          let kind = Option.bind (Json.member "reply" json) Json.to_str in
          (match (id, kind) with
          | Some id, Some ("solved" | "overloaded" | "rejected" | "faulted")
            when id >= 0 && id < total ->
            Mutex.lock rlock;
            reply_t.(id) <- Unix.gettimeofday ();
            reply_shed.(id) <- kind = Some "overloaded";
            incr replied;
            Mutex.unlock rlock
          | _ -> ()))
    done
  in
  let rd = Thread.create reader () in
  let next_id = ref 0 in
  let send_solve target =
    let id = !next_id in
    incr next_id;
    let open Dadu_linalg.Vec3 in
    Pf.write_frame oc
      (Printf.sprintf
         "{\"op\":\"solve\",\"id\":%d,\"robot\":\"eval:%d\",\"target\":[%.17g,%.17g,%.17g]}"
         id dof target.x target.y target.z);
    flush oc;
    id
  in
  let await upto =
    while
      Mutex.lock rlock;
      let done_ = !replied >= upto in
      Mutex.unlock rlock;
      not done_
    do
      Thread.delay 0.002
    done
  in
  (* closed-loop capacity: wall-clock a windowed burst.  Two ways to
     overstate it and report bogus shed rates at "1x": replaying the
     warm-up's targets (the timed burst would ride the seed cache), and
     full pipelining (the dispatcher would see max_batch-sized waves,
     measuring the large-batch service rate that paced single arrivals
     never reach).  Fresh targets and a small constant window of
     outstanding requests approximate the wave sizes open-loop traffic
     actually produces *)
  let capacity_rps =
    let warm = mk_targets n in
    (* warm: caches, workspaces, the dispatcher *)
    Array.iter (fun t -> ignore (send_solve t)) warm;
    await !next_id;
    let timed = mk_targets n in
    let window = 8 in
    let base =
      Mutex.lock rlock;
      let b = !replied in
      Mutex.unlock rlock;
      b
    in
    let t0 = Unix.gettimeofday () in
    let sent = ref 0 in
    while !sent < n do
      let done_ =
        Mutex.lock rlock;
        let d = !replied - base in
        Mutex.unlock rlock;
        d
      in
      if !sent - done_ < window then begin
        ignore (send_solve timed.(!sent));
        incr sent
      end
      else Thread.delay 0.0005
    done;
    await !next_id;
    float_of_int n /. (Unix.gettimeofday () -. t0)
  in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "%d one-shot solves per mode at %d DOF over unix:%s; queue %d, \
            pool %d; offered load relative to closed-loop capacity (%.0f \
            req/s)"
           n dof path queue_capacity pool_size capacity_rps)
      [ ("offered", Table.Right); ("offered req/s", Table.Right);
        ("achieved req/s", Table.Right); ("sojourn p50 ms", Table.Right);
        ("sojourn p95 ms", Table.Right); ("sojourn p99 ms", Table.Right);
        ("shed", Table.Right) ]
  in
  let rows = ref [] in
  List.iter
    (fun mult ->
      let rate = mult *. capacity_rps in
      let targets = mk_targets n in
      let arrivals =
        let arr_rng = Dadu_util.Rng.create (1000 + int_of_float mult) in
        let t = ref 0. in
        Array.init n (fun _ ->
            t := !t -. (log (1. -. Dadu_util.Rng.float arr_rng 1.) /. rate);
            !t)
      in
      let base = !next_id in
      let sent_t = Array.make n 0. in
      let t0 = Unix.gettimeofday () in
      Array.iteri
        (fun i target ->
          let now = Unix.gettimeofday () -. t0 in
          if arrivals.(i) > now then Unix.sleepf (arrivals.(i) -. now);
          sent_t.(i) <- Unix.gettimeofday ();
          ignore (send_solve target))
        targets;
      await !next_id;
      let t_last = Array.fold_left Float.max 0. (Array.sub reply_t base n) in
      let achieved = float_of_int n /. (t_last -. (t0 +. arrivals.(0))) in
      let shed = ref 0 in
      let sojourns = ref [] in
      for i = 0 to n - 1 do
        if reply_shed.(base + i) then incr shed
        else sojourns := (reply_t.(base + i) -. sent_t.(i)) :: !sojourns
      done;
      let sj = Array.of_list !sojourns in
      Array.sort compare sj;
      let pct p =
        if Array.length sj = 0 then 0.
        else sj.(int_of_float (Float.round (p *. float_of_int (Array.length sj - 1))))
      in
      let p50 = pct 0.5 and p95 = pct 0.95 and p99 = pct 0.99 in
      let shed_rate = float_of_int !shed /. float_of_int n in
      Table.add_row table
        [ Printf.sprintf "%.0fx" mult; Printf.sprintf "%.0f" rate;
          Printf.sprintf "%.0f" achieved; Printf.sprintf "%.1f" (1e3 *. p50);
          Printf.sprintf "%.1f" (1e3 *. p95); Printf.sprintf "%.1f" (1e3 *. p99);
          Printf.sprintf "%.1f%%" (100. *. shed_rate) ];
      rows :=
        [ Printf.sprintf "%.0f" mult; Printf.sprintf "%.1f" rate;
          Printf.sprintf "%.1f" achieved; Printf.sprintf "%.5f" p50;
          Printf.sprintf "%.5f" p95; Printf.sprintf "%.5f" p99;
          Printf.sprintf "%.4f" shed_rate ]
        :: !rows)
    [ 1.; 4.; 16. ];
  (try Unix.shutdown fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  Thread.join rd;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Table.print table;
  write_csv "serve_live.csv"
    ~header:
      [ "offered_x"; "offered_rps"; "achieved_rps"; "sojourn_p50_s";
        "sojourn_p95_s"; "sojourn_p99_s"; "shed_rate" ]
    (List.rev !rows);
  Printf.printf
    "\n(sojourn = scheduled arrival to reply frame, through framing, the\n\
    \ admission queue and the dispatcher; shed = typed overloaded replies\n\
    \ from the %d-deep bounded queue)\n"
    queue_capacity

(* ---- Bechamel micro-benchmarks of the real OCaml kernels ---- *)

let micro_tests () =
  let open Bechamel in
  let open Dadu_kinematics in
  let rng = Dadu_util.Rng.create 2024 in
  let chain100 = Robots.eval_chain ~dof:100 in
  let chain12 = Robots.eval_chain ~dof:12 in
  let q100 = Target.random_config rng chain100 in
  let q12 = Target.random_config rng chain12 in
  let scratch = Fk.make_scratch () in
  let j100 = Jacobian.position_jacobian chain100 q100 in
  let problem12 = Dadu_core.Ik.random_problem rng chain12 in
  let problem100 = Dadu_core.Ik.random_problem rng chain100 in
  let short = { Dadu_core.Ik.default_config with max_iterations = 25 } in
  let pool = Dadu_util.Domain_pool.create (Dadu_util.Domain_pool.recommended_size ()) in
  let tests =
    [
      Test.make ~name:"fk-position-12dof"
        (Staged.stage (fun () -> ignore (Fk.position ~scratch chain12 q12)));
      Test.make ~name:"fk-position-100dof"
        (Staged.stage (fun () -> ignore (Fk.position ~scratch chain100 q100)));
      Test.make ~name:"jacobian-100dof"
        (Staged.stage (fun () -> ignore (Jacobian.position_jacobian chain100 q100)));
      Test.make ~name:"svd-3x100"
        (Staged.stage (fun () -> ignore (Dadu_linalg.Svd.decompose j100)));
      Test.make ~name:"jt-serial-25iter-100dof"
        (Staged.stage (fun () ->
             ignore (Dadu_core.Jt_serial.solve ~config:short problem100)));
      Test.make ~name:"quick-ik64-25iter-100dof-seq"
        (Staged.stage (fun () ->
             ignore (Dadu_core.Quick_ik.solve ~speculations:64 ~config:short problem100)));
      Test.make ~name:"quick-ik64-25iter-100dof-par"
        (Staged.stage (fun () ->
             ignore
               (Dadu_core.Quick_ik.solve ~speculations:64
                  ~mode:(Dadu_core.Quick_ik.Parallel pool) ~config:short problem100)));
      Test.make ~name:"pinv-solve-12dof"
        (Staged.stage (fun () -> ignore (Dadu_core.Pinv_svd.solve problem12)));
    ]
  in
  (tests, fun () -> Dadu_util.Domain_pool.shutdown pool)

let run_micro () =
  let open Bechamel in
  heading "Bechamel micro-benchmarks (actual OCaml kernels on this host)";
  let tests, cleanup = micro_tests () in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg
      Toolkit.Instance.[ monotonic_clock ]
      (Test.make_grouped ~name:"dadu" ~fmt:"%s/%s" tests)
  in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Bechamel.Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let table =
    Table.create ~title:"nanoseconds per run (OLS estimate)"
      [ ("kernel", Table.Left); ("ns/run", Table.Right) ]
  in
  let rows =
    Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let add_row (name, ols) =
    let estimate =
      match Analyze.OLS.estimates ols with
      | Some (x :: _) -> Printf.sprintf "%.0f" x
      | Some [] | None -> "n/a"
    in
    Table.add_row table [ name; estimate ]
  in
  List.iter add_row rows;
  Table.print table;
  cleanup ()

(* ---- steady-state Quick-IK kernel benchmark (JSON, regression-gated) ----

   Unlike the Bechamel micro section (whole solves, allocating entry path),
   this measures the steady-state inner loop the zero-allocation workspace
   work targets: one shared workspace, an unreachable target so the solver
   runs exactly [max_iterations], and per-iteration cost derived from the
   difference of two run lengths so per-solve constants cancel. *)

module Json = Dadu_util.Json

let bench_json_path = "BENCH_quickik.json"

let quickik_steady_state ~dof =
  let open Dadu_kinematics in
  let chain = Robots.eval_chain ~dof in
  let theta0 = Array.make dof 0.1 in
  let target = Dadu_linalg.Vec3.make 1e6 1e6 1e6 in
  let problem = Dadu_core.Ik.problem ~chain ~target ~theta0 in
  let ws = Dadu_core.Workspace.create ~dof in
  let solve iters =
    let config =
      { Dadu_core.Ik.default_config with max_iterations = iters; accuracy = 1e-9 }
    in
    ignore (Dadu_core.Quick_ik.solve ~speculations:64 ~workspace:ws ~config problem)
  in
  (* warm: candidate pools, FK scratches and the compiled chain *)
  solve 10;
  let w0 = Gc.minor_words () in
  solve 50;
  let w1 = Gc.minor_words () in
  solve 150;
  let w2 = Gc.minor_words () in
  let words_per_iter = ((w2 -. w1) -. (w1 -. w0)) /. 100. in
  let samples = 31 and iters = 40 in
  let ns = Array.make samples 0. in
  for s = 0 to samples - 1 do
    let t0 = Unix.gettimeofday () in
    solve iters;
    ns.(s) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int iters
  done;
  Array.sort compare ns;
  let pct p =
    ns.(int_of_float (Float.round (p *. float_of_int (samples - 1))))
  in
  let mean = Array.fold_left ( +. ) 0. ns /. float_of_int samples in
  (mean, pct 0.5, pct 0.95, words_per_iter)

(* The raw link-major speculation kernel, measured without the solver
   driver around it: one sweep = 64 candidates through the whole chain
   plus the fused squared errors.  This isolates the kernel the tentpole
   optimization introduced from Jacobian/driver costs. *)
let speckernel_steady_state ~dof =
  let open Dadu_kinematics in
  let chain = Robots.eval_chain ~dof in
  let scratch = Fk.make_scratch () in
  Fk.precompile scratch chain;
  let count = 64 in
  let theta = Array.make dof 0.1 in
  let dtheta = Array.make dof 0.02 in
  let coeffs = Array.init count (fun k -> float_of_int (k + 1) /. 64.) in
  let pos = Array.make (3 * count) 0. in
  let err2 = Array.make count 0. in
  let sweep () =
    Fk.speculate_range_into ~scratch ~pos ~err2 ~tx:1e6 ~ty:1e6 ~tz:1e6 chain
      ~theta ~dtheta ~coeffs ~stride:count ~lo:0 ~hi:count
  in
  sweep ();
  (* warm *)
  let w0 = Gc.minor_words () in
  for _ = 1 to 100 do
    sweep ()
  done;
  let w1 = Gc.minor_words () in
  let words_per_sweep = (w1 -. w0) /. 100. in
  let samples = 31 and reps = 500 in
  let ns = Array.make samples 0. in
  for s = 0 to samples - 1 do
    let t0 = Unix.gettimeofday () in
    for _ = 1 to reps do
      sweep ()
    done;
    ns.(s) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
  done;
  Array.sort compare ns;
  let pct p =
    ns.(int_of_float (Float.round (p *. float_of_int (samples - 1))))
  in
  let mean = Array.fold_left ( +. ) 0. ns /. float_of_int samples in
  (mean, pct 0.5, pct 0.95, words_per_sweep)

(* Steady-state cost of one request through the serving path (scheduler +
   cache + fallback chain + metrics), serial, warm cache: the number
   bench_diff gates so scheduler/tracing overhead cannot creep into the
   per-request allocation budget unnoticed. *)
let serve_steady_state ~dof =
  let module Svc = Dadu_service.Service in
  let problems = serve_workload ~dof ~fresh_count:32 in
  let n = Array.length problems in
  let service = Svc.create () in
  (* warm: seed cache populated, per-domain workspaces built *)
  ignore (Svc.solve_batch service problems);
  ignore (Svc.solve_batch service problems);
  let batch () = ignore (Svc.solve_batch service problems) in
  let w0 = Gc.minor_words () in
  for _ = 1 to 5 do
    batch ()
  done;
  let w1 = Gc.minor_words () in
  let words_per_request = (w1 -. w0) /. float_of_int (5 * n) in
  let samples = 31 in
  let ns = Array.make samples 0. in
  for s = 0 to samples - 1 do
    let t0 = Unix.gettimeofday () in
    batch ();
    ns.(s) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n
  done;
  Array.sort compare ns;
  let pct p =
    ns.(int_of_float (Float.round (p *. float_of_int (samples - 1))))
  in
  let mean = Array.fold_left ( +. ) 0. ns /. float_of_int samples in
  (mean, pct 0.5, pct 0.95, words_per_request)

(* Steady-state cost of one lockstep lane-iteration: the same
   unreachable-target bracket as [quickik_steady_state], but the
   iterations run through [Megabatch.solve_all] over a full lane bank.
   Two pre-warmed lane banks with different iteration caps make the
   per-call and per-lane constants cancel, leaving the pure per
   lane-iteration cost — which must stay allocation-free, like the
   serial path it is bit-identical to. *)
let megabatch_steady_state ~dof =
  let open Dadu_kinematics in
  let chain = Robots.eval_chain ~dof in
  let lanes = 16 in
  let target = Dadu_linalg.Vec3.make 1e6 1e6 1e6 in
  let theta0 = Array.make dof 0.1 in
  let problems =
    Array.make lanes (Dadu_core.Ik.problem ~chain ~target ~theta0)
  in
  let mk iters =
    Dadu_core.Megabatch.create ~capacity:lanes ~speculations:64
      ~config:
        { Dadu_core.Ik.default_config with max_iterations = iters; accuracy = 1e-9 }
      ()
  in
  let solve mb = ignore (Dadu_core.Megabatch.solve_all mb problems) in
  let mb50 = mk 50 and mb150 = mk 150 in
  (* warm: planes sized, per-lane workspaces and candidate pools built *)
  solve mb50;
  solve mb150;
  let w0 = Gc.minor_words () in
  solve mb50;
  let w1 = Gc.minor_words () in
  solve mb150;
  let w2 = Gc.minor_words () in
  let words_per_iter =
    ((w2 -. w1) -. (w1 -. w0)) /. float_of_int (100 * lanes)
  in
  let mb40 = mk 40 in
  solve mb40;
  let samples = 31 in
  let ns = Array.make samples 0. in
  for s = 0 to samples - 1 do
    let t0 = Unix.gettimeofday () in
    solve mb40;
    ns.(s) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int (40 * lanes)
  done;
  Array.sort compare ns;
  let pct p =
    ns.(int_of_float (Float.round (p *. float_of_int (samples - 1))))
  in
  let mean = Array.fold_left ( +. ) 0. ns /. float_of_int samples in
  (mean, pct 0.5, pct 0.95, words_per_iter)

(* Cold-start vs library-seeded Quick-IK over a fixed reachable workload:
   the informational fields pin the acceptance criterion (seeded mean
   iterations to the paper accuracy strictly below cold), while the gated
   metrics price the seed selection itself — one perturbation-free
   4-candidate choose (theta0 / cache / library NN / zero) on warm
   scratch, which steady-state allocates nothing. *)
let seeded_steady_state ~dof =
  let open Dadu_kinematics in
  let module Sel = Dadu_service.Seed_select in
  let chain = Robots.eval_chain ~dof in
  let library =
    Some (Dadu_service.Posture_library.build ~chain ~count:256 ~seed:42 ())
  in
  let rng = Dadu_util.Rng.create 17 in
  let problems =
    Array.init 40 (fun _ -> Dadu_core.Ik.random_problem rng chain)
  in
  let ws = Dadu_core.Workspace.create ~dof in
  let config = { Dadu_core.Ik.default_config with max_iterations = 2000 } in
  let solve p =
    Dadu_core.Quick_ik.solve ~speculations:64 ~workspace:ws ~config p
  in
  let sel = Sel.create () in
  let choose ~cache_seed ~ordinal p dst =
    let t = p.Dadu_core.Ik.target in
    ignore
      (Sel.choose sel ~session_seed:None ~library ~cache_seed ~candidates:4
         ~ordinal ~scale:0.1 ~chain ~tx:t.Dadu_linalg.Vec3.x
         ~ty:t.Dadu_linalg.Vec3.y ~tz:t.Dadu_linalg.Vec3.z
         ~theta0:p.Dadu_core.Ik.theta0 ~dst)
  in
  let mean_iters seeded =
    let total = ref 0 in
    Array.iteri
      (fun i p ->
        let p =
          if not seeded then p
          else begin
            let dst = Array.make dof 0. in
            choose ~cache_seed:None ~ordinal:i p dst;
            { p with Dadu_core.Ik.theta0 = dst }
          end
        in
        total := !total + (solve p).Dadu_core.Ik.iterations)
      problems;
    float_of_int !total /. float_of_int (Array.length problems)
  in
  let iters_cold = mean_iters false in
  let iters_seeded = mean_iters true in
  (* selection cost: warm cache seed present, so no Perturbed slot (whose
     fresh Rng would allocate) — this is the serial-prepare steady state *)
  let cache_seed = Some (Array.make dof 0.1) in
  let dst = Array.make dof 0. in
  let reps = 100 in
  let sweep ordinal0 =
    for i = 0 to reps - 1 do
      choose ~cache_seed ~ordinal:(ordinal0 + i)
        problems.(i mod Array.length problems)
        dst
    done
  in
  sweep 0;
  (* warm *)
  let w0 = Gc.minor_words () in
  sweep 100;
  let w1 = Gc.minor_words () in
  sweep 200;
  sweep 300;
  let w2 = Gc.minor_words () in
  let words_per_iter = ((w2 -. w1) -. (w1 -. w0)) /. float_of_int reps in
  let samples = 31 in
  let ns = Array.make samples 0. in
  for s = 0 to samples - 1 do
    let t0 = Unix.gettimeofday () in
    sweep (1000 * s);
    ns.(s) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps
  done;
  Array.sort compare ns;
  let pct p =
    ns.(int_of_float (Float.round (p *. float_of_int (samples - 1))))
  in
  let mean = Array.fold_left ( +. ) 0. ns /. float_of_int samples in
  (mean, pct 0.5, pct 0.95, words_per_iter, iters_cold, iters_seeded)

(* Steady-state cost of one candidate scoring through the wave-fused
   prepare path: one [Seed_select.choose_wave] over a 16-request wave at
   5 candidates each, run sequentially (no pool) so the gated number
   prices the SoA kernel and wave bookkeeping, not domain scheduling.
   The informational fields compare against the same wave prepared by 16
   per-request [choose] calls — the serial-vs-fused ratio the
   snapshot-prepare path banks on before any parallelism. *)
let prepare_steady_state ~dof =
  let open Dadu_kinematics in
  let module Sel = Dadu_service.Seed_select in
  let chain = Robots.eval_chain ~dof in
  let library =
    Dadu_service.Posture_library.build ~chain ~count:256 ~seed:42 ()
  in
  let rng = Dadu_util.Rng.create 23 in
  let waves = 16 and candidates = 5 in
  let problems =
    Array.init waves (fun _ -> Dadu_core.Ik.random_problem rng chain)
  in
  let cache_seed = Some (Array.make dof 0.1) in
  let specs =
    Array.mapi
      (fun i (p : Dadu_core.Ik.problem) ->
        let t = p.Dadu_core.Ik.target in
        {
          Sel.ordinal = i;
          chain;
          tx = t.Dadu_linalg.Vec3.x;
          ty = t.Dadu_linalg.Vec3.y;
          tz = t.Dadu_linalg.Vec3.z;
          theta0 = p.Dadu_core.Ik.theta0;
          session_seed = None;
          cache_seed;
          library = Some library;
          library_index =
            Dadu_service.Posture_library.nearest_index library
              ~x:t.Dadu_linalg.Vec3.x ~y:t.Dadu_linalg.Vec3.y
              ~z:t.Dadu_linalg.Vec3.z;
          candidates;
          scale = 0.1;
          dst = Array.make dof 0.;
        })
      problems
  in
  let sel = Sel.create () in
  let wave () = ignore (Sel.choose_wave sel specs) in
  let serial_wave () =
    Array.iter
      (fun (s : Sel.spec) ->
        ignore
          (Sel.choose sel ~session_seed:s.Sel.session_seed
             ~library:s.Sel.library ~cache_seed:s.Sel.cache_seed ~candidates
             ~ordinal:s.Sel.ordinal ~scale:s.Sel.scale ~chain ~tx:s.Sel.tx
             ~ty:s.Sel.ty ~tz:s.Sel.tz ~theta0:s.Sel.theta0 ~dst:s.Sel.dst))
      specs
  in
  let cands = float_of_int (waves * candidates) in
  wave ();
  serial_wave ();
  (* warm *)
  let reps = 50 in
  let w0 = Gc.minor_words () in
  for _ = 1 to reps do
    wave ()
  done;
  let w1 = Gc.minor_words () in
  for _ = 1 to 2 * reps do
    wave ()
  done;
  let w2 = Gc.minor_words () in
  let words_per_cand = ((w2 -. w1) -. (w1 -. w0)) /. float_of_int reps /. cands in
  let samples = 31 in
  let time f =
    let ns = Array.make samples 0. in
    for s = 0 to samples - 1 do
      let t0 = Unix.gettimeofday () in
      for _ = 1 to reps do
        f ()
      done;
      ns.(s) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int reps /. cands
    done;
    Array.sort compare ns;
    let pct p =
      ns.(int_of_float (Float.round (p *. float_of_int (samples - 1))))
    in
    (Array.fold_left ( +. ) 0. ns /. float_of_int samples, pct 0.5, pct 0.95)
  in
  let mean, p50, p95 = time wave in
  let serial_mean, _, _ = time serial_wave in
  (mean, p50, p95, words_per_cand, serial_mean)

(* Temporal warm-starting along a Cartesian trajectory: the session
   workload at kernel level.  Waypoint targets are generated by FK along
   a joint-space sine sweep around a well-conditioned base posture
   (guaranteed reachable at every DOF, and cyclic so the path never
   drifts toward a workspace boundary the way a straight joint-space
   line does), with amplitude scaled so consecutive targets sit ~1.5 cm
   apart.  Each Quick-IK solve starts from the previous waypoint's
   solution — the seed chain a trajectory session maintains.
   [iters_per_waypoint] (warm mean) is a gated, machine-independent
   metric: the temporal-coherence win the session subsystem exists for
   must not silently erode. *)
let session_steady_state ~dof =
  let open Dadu_kinematics in
  let chain = Robots.eval_chain ~dof in
  let scratch = Fk.make_scratch () in
  let base = Array.make dof 0.1 in
  let dir = Array.init dof (fun i -> if i land 1 = 0 then 1.0 else -0.7) in
  (* probe the local Cartesian gain of the joint-space direction, then
     pick a sine amplitude whose worst-case per-waypoint Cartesian step
     (gain * amp * omega) is ~1.5 cm *)
  let dist a b =
    let open Dadu_linalg.Vec3 in
    sqrt (((a.x -. b.x) ** 2.) +. ((a.y -. b.y) ** 2.) +. ((a.z -. b.z) ** 2.))
  in
  let p0 = Fk.position ~scratch chain base in
  let p1 =
    Fk.position ~scratch chain
      (Array.mapi (fun i b -> b +. (0.01 *. dir.(i))) base)
  in
  let gain = dist p0 p1 /. 0.01 in
  let omega = 0.35 in
  let amp = 0.015 /. Float.max 1e-9 (gain *. omega) in
  let at k =
    Array.mapi
      (fun i b -> b +. (amp *. sin (omega *. float_of_int k) *. dir.(i)))
      base
  in
  let waypoints = 40 in
  let targets = Array.init waypoints (fun k -> Fk.position ~scratch chain (at k)) in
  let ws = Dadu_core.Workspace.create ~dof in
  let config = { Dadu_core.Ik.default_config with max_iterations = 2_000 } in
  let seed = Array.make dof 0. in
  let cold_start = Chain.clamp_config chain (Array.make dof 0.) in
  let iters_cold = ref 0. and warm_total = ref 0 in
  let trajectory record =
    Array.blit cold_start 0 seed 0 dof;
    Array.iteri
      (fun k target ->
        let problem =
          Dadu_core.Ik.problem ~chain ~target ~theta0:(Array.copy seed)
        in
        let r = Dadu_core.Quick_ik.solve ~speculations:64 ~workspace:ws ~config problem in
        if record then
          if k = 0 then iters_cold := float_of_int r.Dadu_core.Ik.iterations
          else warm_total := !warm_total + r.Dadu_core.Ik.iterations;
        Array.blit r.Dadu_core.Ik.theta 0 seed 0 dof)
      targets
  in
  trajectory true;
  let iters_per_waypoint =
    float_of_int !warm_total /. float_of_int (waypoints - 1)
  in
  let w0 = Gc.minor_words () in
  for _ = 1 to 5 do
    trajectory false
  done;
  let w1 = Gc.minor_words () in
  let words_per_waypoint = (w1 -. w0) /. float_of_int (5 * waypoints) in
  let samples = 31 in
  let ns = Array.make samples 0. in
  for s = 0 to samples - 1 do
    let t0 = Unix.gettimeofday () in
    trajectory false;
    ns.(s) <- (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int waypoints
  done;
  Array.sort compare ns;
  let pct p =
    ns.(int_of_float (Float.round (p *. float_of_int (samples - 1))))
  in
  let mean = Array.fold_left ( +. ) 0. ns /. float_of_int samples in
  (mean, pct 0.5, pct 0.95, words_per_waypoint, !iters_cold, iters_per_waypoint)

let run_micro_json () =
  heading "Quick-IK steady-state kernel benchmark (JSON)";
  let table =
    Table.create
      ~title:
        "steady state: quickik = solver iteration (64 spec, Sequential), \
         speckernel = one raw 64-candidate sweep, megabatch = one lockstep \
         lane-iteration over a 16-lane bank, serve-request = one warm-cache \
         request through the serial serving path, prepare = one candidate \
         scoring through the wave-fused choose_wave (16 requests x 5 \
         candidates, sequential), session = one temporally warm-started \
         waypoint along a 40-point ~1.5 cm cyclic trajectory"
      [ ("benchmark", Table.Left); ("ns/iter", Table.Right);
        ("p50 ns", Table.Right); ("p95 ns", Table.Right);
        ("words/iter", Table.Right) ]
  in
  let entry name dof (mean, p50, p95, words) =
    Table.add_row table
      [ name; Printf.sprintf "%.0f" mean; Printf.sprintf "%.0f" p50;
        Printf.sprintf "%.0f" p95; Printf.sprintf "%.2f" words ];
    (* Json.num, not Num: one poisoned statistic (a NaN mean from a
       zero-iteration run) must cost a null field, not the whole export *)
    Json.Obj
      [ ("name", Json.Str name);
        ("dof", Json.num (float_of_int dof));
        ("ns_per_iter", Json.num mean);
        ("p50_ns", Json.num p50);
        ("p95_ns", Json.num p95);
        ("words_per_iter", Json.num words) ]
  in
  let dofs = [ 12; 30; 100 ] in
  let benchmarks =
    List.map
      (fun dof ->
        entry (Printf.sprintf "quickik-seq-dof%d" dof) dof
          (quickik_steady_state ~dof))
      dofs
    @ List.map
        (fun dof ->
          entry (Printf.sprintf "speckernel64-dof%d" dof) dof
            (speckernel_steady_state ~dof))
        dofs
    @ List.map
        (fun dof ->
          entry (Printf.sprintf "megabatch-dof%d" dof) dof
            (megabatch_steady_state ~dof))
        dofs
    @ [ entry "serve-request-dof12" 12 (serve_steady_state ~dof:12) ]
    @ List.map
        (fun dof ->
          let mean, p50, p95, words, cold, seeded = seeded_steady_state ~dof in
          let json = entry (Printf.sprintf "seeded-dof%d" dof) dof (mean, p50, p95, words) in
          match json with
          | Json.Obj fields ->
            Json.Obj
              (fields
              @ [ ("iters_cold", Json.num cold);
                  ("iters_seeded", Json.num seeded) ])
          | other -> other)
        dofs
    @ List.map
        (fun dof ->
          let mean, p50, p95, words, cold, per_wp = session_steady_state ~dof in
          let json =
            entry (Printf.sprintf "session-dof%d" dof) dof (mean, p50, p95, words)
          in
          match json with
          | Json.Obj fields ->
            Json.Obj
              (fields
              @ [ ("iters_per_waypoint", Json.num per_wp);
                  ("iters_cold", Json.num cold) ])
          | other -> other)
        dofs
    @ List.map
        (fun dof ->
          let mean, p50, p95, words, serial_mean = prepare_steady_state ~dof in
          let json =
            entry (Printf.sprintf "prepare-dof%d" dof) dof (mean, p50, p95, words)
          in
          match json with
          | Json.Obj fields ->
            Json.Obj
              (fields
              @ [ ("serial_ns_per_iter", Json.num serial_mean);
                  ( "fused_speedup",
                    Json.num (if mean > 0. then serial_mean /. mean else 0.) ) ])
          | other -> other)
        dofs
  in
  Table.print table;
  Json.write_file bench_json_path
    (Json.Obj [ ("schema", Json.Num 1.); ("benchmarks", Json.List benchmarks) ]);
  Printf.printf "  [json] %s\n%!" bench_json_path

let run_scorecard () =
  heading "Reproduction scorecard";
  let claims = E.Scorecard.evaluate (Lazy.force grid) in
  Table.print (E.Scorecard.to_table claims);
  Printf.printf "overall: %s\n"
    (if E.Scorecard.all_pass claims then "reproduction holds"
     else "some claims FAILED — see rows above")

let run_robustness () =
  heading "Seed robustness (reduction across 5 independent workloads)";
  let rows = E.Robustness.run (E.Runner.default_scale ()) in
  Table.print (E.Robustness.to_table rows);
  List.iter
    (fun dof ->
      let lo, hi = E.Robustness.reduction_range rows ~dof in
      Printf.printf "reduction at %d DOF across seeds: %.1f%% .. %.1f%%\n" dof
        (100. *. lo) (100. *. hi))
    [ 12; 100 ]

let run_dse () =
  heading "Design-space exploration (100 DOF, measured Quick-IK iterations)";
  let m = Lazy.force grid in
  let iterations =
    match
      List.find_opt
        (fun (p : E.Measurements.per_dof) -> p.E.Measurements.dof = 100)
        m.E.Measurements.per_dof
    with
    | Some p ->
      Stdlib.max 1
        (int_of_float
           (Float.round p.E.Measurements.quick_ik.E.Workload.mean_iterations))
    | None -> 100
  in
  let evaluations =
    Dadu_accel.Design_space.sweep ~dof:100 ~speculations:64 ~iterations ()
  in
  Table.print (Dadu_accel.Design_space.to_table evaluations);
  Printf.printf
    "(the paper's 32 SSU / 1 GHz point sits on the Pareto front; * = non-dominated)\n"

let run_convergence () =
  heading "Convergence profiles (error vs iteration, 25 DOF)";
  let profiles = E.Convergence.run (E.Runner.default_scale ()) in
  Table.print (E.Convergence.to_table profiles);
  print_newline ();
  print_string (E.Convergence.to_chart profiles)

let sections =
  [
    ("table1", run_table1);
    ("fig4", run_fig4);
    ("fig5", run_fig5);
    ("table2", run_table2);
    ("table3", run_table3);
    ("ablation", run_ablation);
    ("convergence", run_convergence);
    ("dse", run_dse);
    ("robustness", run_robustness);
    ("scorecard", run_scorecard);
    ("serve", run_serve);
    ("serve-parallel", run_serve_parallel);
    ("serve-live", run_serve_live);
    ("micro", run_micro);
  ]

let () =
  (* `micro --json` switches the micro section to the steady-state kernel
     benchmark and writes BENCH_quickik.json for tools/bench_diff *)
  let argv = List.tl (Array.to_list Sys.argv) in
  let json_mode = List.mem "--json" argv in
  let open_loop = List.mem "--open-loop" argv in
  let args =
    List.filter (fun a -> a <> "--json" && a <> "--open-loop") argv
  in
  let requested =
    match args with
    | _ :: _ when not (List.mem "all" args) -> args
    | _ -> List.map fst sections
  in
  let sections =
    if json_mode then
      List.map
        (fun (name, f) -> if name = "micro" then (name, run_micro_json) else (name, f))
        sections
    else sections
  in
  (* `serve-parallel --open-loop` swaps the closed-loop scaling table for
     the Poisson arrival generator (per-request vs lockstep) *)
  let sections =
    if open_loop then
      List.map
        (fun (name, f) ->
          if name = "serve-parallel" then (name, run_serve_open_loop)
          else (name, f))
        sections
    else sections
  in
  let scale = E.Runner.default_scale () in
  Format.printf "Dadu benchmark suite — %a@." E.Runner.pp_scale scale;
  Printf.printf "(paper fidelity: DADU_TARGETS=1000; see DESIGN.md section 4)\n";
  List.iter
    (fun name ->
      match List.assoc_opt name sections with
      | Some f -> f ()
      | None ->
        Printf.eprintf "unknown section %S; available: %s all\n" name
          (String.concat " " (List.map fst sections));
        exit 2)
    requested
