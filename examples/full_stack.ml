(* The full stack in one run: IK -> motion planning -> trajectory ->
   simulated tracking.

     dune exec examples/full_stack.exe

   A 4-DOF planar arm must move its hand from one side of a pillar to the
   other.  Pipeline:
     1. Quick-IK finds the goal configuration for the target position,
        retrying starts until the goal posture itself is collision-free;
     2. RRT-Connect plans a collision-free joint path around the pillar
        (the straight joint-space line sweeps through it);
     3. randomized shortcutting tightens the path, a via-point cubic
        spline time-parameterizes it;
     4. a computed-torque PD controller tracks the spline on the simulated
        Newton-Euler plant, and we verify clearance and accuracy along the
        executed motion. *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core
module Rng = Dadu_util.Rng

let () =
  let chain = Robots.planar ~dof:4 ~reach:2. () in
  let scene = [ Obstacles.sphere ~center:(Vec3.make 1.55 0.35 0.) ~radius:0.4 ] in
  let start = [| 0.9; 0.3; 0.2; 0.1 |] in
  let rng = Rng.create 2025 in
  let target = Vec3.make 1.55 (-0.9) 0. in
  Format.printf "Pillar at (1.55, 0.35), hand from %a to %a@.@." Vec3.pp
    (Fk.position chain start) Vec3.pp target;

  (* 1. IK with collision-aware restarts *)
  let rec find_goal attempts =
    if attempts = 0 then failwith "no collision-free IK solution found";
    let theta0 = Target.random_config rng chain in
    let r = Quick_ik.solve ~speculations:32 (Ik.problem ~chain ~target ~theta0) in
    if r.Ik.status = Ik.Converged && Obstacles.clearance scene chain r.Ik.theta > 0.02
    then r.Ik.theta
    else find_goal (attempts - 1)
  in
  let goal = find_goal 20 in
  Format.printf "1. IK goal posture found (clearance %.0f mm)@."
    (Obstacles.clearance scene chain goal *. 1e3);

  (* 2. plan around the pillar *)
  Format.printf "   straight joint-space line collision-free? %b@."
    (Rrt.path_collision_free scene chain [ start; goal ]);
  let plan = Rrt.plan rng ~scene ~chain ~start ~goal in
  if plan.Rrt.path = [] then failwith "planning failed";
  Format.printf "2. RRT-Connect: %d waypoints, %.2f rad path (%d nodes, %d checks)@."
    (List.length plan.Rrt.path) (Rrt.path_length plan.Rrt.path)
    plan.Rrt.nodes_expanded plan.Rrt.collision_checks;

  (* 3. shortcut + time-parameterize *)
  let short = Rrt.shortcut rng scene chain plan.Rrt.path in
  Format.printf "3. shortcut to %d waypoints, %.2f rad@." (List.length short)
    (Rrt.path_length short);
  let speed = 0.8 (* rad/s along the path *) in
  let timed =
    let time = ref 0. and prev = ref (List.hd short) in
    List.map
      (fun q ->
        time := !time +. (Vec.dist !prev q /. speed);
        prev := q;
        (!time, q))
      short
  in
  let timed = (0., List.hd short) :: List.tl timed in
  let traj = Spline.via_points timed in
  Format.printf "   spline duration %.2f s, max joint speed %.2f rad/s@."
    traj.Spline.duration (Spline.max_speed traj);

  (* 4. track on the simulated plant *)
  let model =
    Dynamics.model ~gravity:(Vec3.make 0. (-9.81) 0.) chain
      (Array.init 4 (fun _ -> Dynamics.rod ~mass:1. ~length:0.5))
  in
  (* gains sized for the light distal link: too-stiff damping under a
     zero-order-hold torque at this step size goes unstable *)
  let controller =
    Simulation.pd ~gravity_compensation:model ~kp:60. ~kd:10.
      ~target:(fun t -> (traj.Spline.at t).Spline.q)
      ()
  in
  let initial = { Simulation.time = 0.; q = Array.copy start; qd = Array.make 4 0. } in
  let states =
    Simulation.simulate model controller ~dt:5e-4 ~duration:(traj.Spline.duration +. 2.0)
      initial
  in
  let worst_clearance = ref infinity and worst_tracking = ref 0. in
  Array.iter
    (fun s ->
      worst_clearance := Float.min !worst_clearance (Obstacles.clearance scene chain s.Simulation.q);
      let reference = (traj.Spline.at s.Simulation.time).Spline.q in
      worst_tracking := Float.max !worst_tracking (Vec.dist s.Simulation.q reference))
    states;
  let final = states.(Array.length states - 1) in
  let hand_error = Vec3.dist target (Fk.position chain final.Simulation.q) in
  Format.printf
    "4. executed on the simulated plant: worst tracking error %.3f rad, worst \
     clearance %+.0f mm@."
    !worst_tracking (!worst_clearance *. 1e3);
  Format.printf "   final hand position %.1f mm from target (penetrated: %b)@."
    (hand_error *. 1e3) (!worst_clearance < 0.);

  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  Viz.write ~path:"results/full_stack.svg" ~targets:[ target ] ~obstacles:scene chain
    [
      Viz.posture ~label:"start" ~color:"#1f77b4" start;
      Viz.posture ~label:"goal (IK)" ~color:"#2ca02c" goal;
      Viz.posture ~label:"executed final" ~color:"#d62728" final.Simulation.q;
    ];
  Format.printf "@.Wrote results/full_stack.svg@."
