(* A walk through the IKAcc cycle and energy model (paper section 5).

     dune exec examples/accelerator_sim.exe

   Shows how one Quick-IK iteration maps onto the accelerator's units —
   SPU pipeline, SSU array, scheduler rounds, selector — and how the
   hardware size trades against latency and power. *)

open Dadu_accel
module Table = Dadu_util.Table

let dof = 50
let speculations = 64

let () =
  let cfg = Config.default in
  Format.printf "Configuration: %a@.@." Config.pp cfg;

  (* Unit-by-unit cycle budget for one iteration. *)
  let spu = Spu.iteration_cycles cfg ~dof in
  let ssu = Ssu.candidate_cycles cfg ~dof in
  let plan = Scheduler.plan cfg ~speculations in
  let iter = Scheduler.iteration_cycles cfg ~dof ~speculations in
  Format.printf "One Quick-IK iteration at %d DOF, %d speculations:@." dof speculations;
  Format.printf "  SPU serial pass (4-stage pipeline)  : %5d cycles@." spu;
  Format.printf "  one SSU speculative search          : %5d cycles@." ssu;
  Format.printf "  schedules (%d specs / %d SSUs)      : %5d rounds@." speculations
    cfg.Config.num_ssus plan.Scheduler.schedules;
  Format.printf "  full iteration                      : %5d cycles (%.2f us)@.@." iter
    (float_of_int iter /. cfg.Config.frequency_hz *. 1e6);

  (* How the scheduler assigns candidates to SSUs. *)
  let rounds = Scheduler.assignments cfg ~speculations in
  List.iteri
    (fun i round ->
      Format.printf "  round %d: candidates %d..%d on %d SSUs@." i (List.hd round)
        (List.nth round (List.length round - 1))
        (List.length round))
    rounds;

  (* Hardware size sweep: the paper's 32-SSU choice in context. *)
  let table =
    Table.create ~title:"\nSSU count vs one-iteration latency and power"
      [
        ("SSUs", Table.Right);
        ("rounds", Table.Right);
        ("cycles/iter", Table.Right);
        ("avg power", Table.Right);
      ]
  in
  List.iter
    (fun n ->
      let c = Config.with_ssus n cfg in
      let cycles = Scheduler.iteration_cycles c ~dof ~speculations in
      let busy = Scheduler.ssu_busy_cycles c ~dof ~speculations in
      let spu_busy = Spu.iteration_cycles c ~dof in
      let e =
        Energy.of_activity c ~total_cycles:cycles ~spu_busy_cycles:spu_busy
          ~ssu_busy_cycles:busy
      in
      Table.add_row table
        [
          string_of_int n;
          string_of_int (Scheduler.plan c ~speculations).Scheduler.schedules;
          string_of_int cycles;
          Printf.sprintf "%.1f mW" (e.Energy.avg_power_w *. 1e3);
        ])
    [ 4; 8; 16; 32; 64 ];
  Table.print table;

  (* The same iteration as a unit-occupancy trace (small sizes so the
     Gantt chart stays readable). *)
  let small = Config.with_ssus 4 cfg in
  Format.printf "@.One iteration at 8 DOF with 8 speculations on 4 SSUs:@.%s@."
    (Trace.render (Trace.iteration small ~dof:8 ~speculations:8));

  (* End-to-end: a real solve with the full report. *)
  let rng = Dadu_util.Rng.create 7 in
  let chain = Dadu_kinematics.Robots.eval_chain ~dof in
  let problem = Dadu_core.Ik.random_problem rng chain in
  let report = Ikacc.solve ~speculations problem in
  Format.printf "@.End-to-end solve on the %d-DOF evaluation chain:@.%a@." dof
    Ikacc.pp_report report
