(* Reaching around an obstacle: redundancy as clearance.

     dune exec examples/obstacle_avoidance.exe

   A 20-DOF snake reaches a target with a sphere parked next to its body.
   Plain IK happily leaves the body grazing the obstacle; projecting a
   clearance-ascent objective into the task nullspace bends the spare
   joints away while the tip stays locked on target. *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core

let () =
  let chain = Robots.snake ~dof:20 in
  let rng = Dadu_util.Rng.create 55 in
  let q_goal = Target.random_config rng chain in
  let target = Fk.position chain q_goal in

  (* solve the reach first, then park an obstacle right next to the
     resulting body *)
  let reached = Dls.solve (Ik.problem ~chain ~target ~theta0:(Target.random_config rng chain)) in
  let frames = Fk.frames chain reached.Ik.theta in
  let body_point = Mat4.position frames.(10) in
  let scene =
    [
      Obstacles.sphere
        ~center:(Vec3.add body_point (Vec3.make 0.015 0.015 0.))
        ~radius:0.03;
    ]
  in
  Format.printf "%s reaching %a; sphere (r = 3 cm) parked beside link 10@.@."
    (Chain.name chain) Vec3.pp target;
  Format.printf "Plain DLS posture : clearance %+.1f mm%s@."
    (Obstacles.clearance scene chain reached.Ik.theta *. 1e3)
    (if Obstacles.penetrates scene chain reached.Ik.theta then "  << PENETRATING" else "");

  let avoiding =
    Nullspace.optimize ~iterations:300 ~gain:0.05
      ~objective:(Nullspace.Custom (Obstacles.avoidance_objective ~margin:0.08 scene chain))
      chain ~target ~theta:reached.Ik.theta
  in
  Format.printf "Avoidance posture : clearance %+.1f mm, tip still %.2f mm from target@."
    (Obstacles.clearance scene chain avoiding *. 1e3)
    (Ik.error_of chain target avoiding *. 1e3);

  (* the avoidance objective composes with servoing: track a short line
     while staying clear *)
  let path =
    Traj.line ~from:target ~to_:(Vec3.add target (Vec3.make 0.04 (-0.03) 0.02)) ~samples:8
  in
  let solver p =
    let r = Dls.solve p in
    let improved =
      Nullspace.optimize ~iterations:40 ~gain:0.05
        ~objective:(Nullspace.Custom (Obstacles.avoidance_objective ~margin:0.08 scene chain))
        chain ~target:p.Ik.target ~theta:r.Ik.theta
    in
    { r with Ik.theta = improved; error = Ik.error_of chain p.Ik.target improved }
  in
  let report = Servo.track ~solver ~chain ~theta0:avoiding path in
  let worst_clearance =
    Array.fold_left
      (fun acc (w : Servo.waypoint) ->
        Float.min acc (Obstacles.clearance scene chain w.Servo.result.Ik.theta))
      infinity report.Servo.waypoints
  in
  Format.printf "@.Tracking 8 waypoints with avoidance in the loop:@.";
  Format.printf "  worst waypoint error    : %.2f mm@." (report.Servo.max_error *. 1e3);
  Format.printf "  worst body clearance    : %+.1f mm (never penetrates: %b)@."
    (worst_clearance *. 1e3) (worst_clearance > 0.);

  (* render the before/after postures *)
  if not (Sys.file_exists "results") then Sys.mkdir "results" 0o755;
  let path = "results/obstacle_avoidance.svg" in
  Viz.write ~path ~targets:[ target ] ~obstacles:scene chain
    [
      Viz.posture ~label:"plain DLS (penetrating)" ~color:"#d62728" reached.Ik.theta;
      Viz.posture ~label:"with avoidance" ~color:"#2ca02c" avoiding;
    ];
  Format.printf "@.Wrote %s (before/after postures, XY projection)@." path
