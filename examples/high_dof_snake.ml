(* The paper's headline scenario: a 100-DOF hyper-redundant manipulator.

     dune exec examples/high_dof_snake.exe

   Solves a batch of reachable targets with a 100-DOF snake robot and
   reports what the paper's Table 2 row reports: mean iterations, and the
   modeled solve time on IKAcc vs the mobile CPU/GPU baselines. *)

open Dadu_kinematics
open Dadu_core
module Stats = Dadu_util.Stats

let dof = 100
let targets = 10

let () =
  let chain = Robots.snake ~dof in
  Format.printf "%s: %d joints, +/-120 deg limits, total length %.1f m@."
    (Chain.name chain) dof (Chain.reach chain);
  let rng = Dadu_util.Rng.create 44 in
  let problems = Array.init targets (fun _ -> Ik.random_problem rng chain) in

  Format.printf "@.Solving %d targets with Quick-IK (64 speculations):@." targets;
  let results = Array.map (fun p -> Quick_ik.solve ~speculations:64 p) problems in
  let iters = Array.map (fun r -> float_of_int r.Ik.iterations) results in
  let converged =
    Array.fold_left
      (fun acc r -> if r.Ik.status = Ik.Converged then acc + 1 else acc)
      0 results
  in
  Format.printf "  converged %d/%d; iterations: %a@." converged targets
    Stats.pp_summary (Stats.summarize iters);

  (* The same iteration counts priced on each platform (Table 2 models). *)
  let mean_iters = Stats.mean iters in
  let cost = Cost.quick_ik ~dof ~speculations:64 in
  let atom_ms = Dadu_platforms.Atom.time_s ~cost ~iterations:mean_iters () *. 1e3 in
  let tx1_ms = Dadu_platforms.Tx1.time_s ~cost ~iterations:mean_iters () *. 1e3 in
  let ikacc_s =
    Dadu_accel.Ikacc.time_for_iterations ~dof ~speculations:64
      ~iterations:(int_of_float (Float.round mean_iters))
      ()
  in
  Format.printf "@.Modeled mean solve time at %.0f iterations:@." mean_iters;
  Format.printf "  Atom CPU (serial Quick-IK) : %8.2f ms@." atom_ms;
  Format.printf "  TX1 GPU  (parallel spec.)  : %8.2f ms@." tx1_ms;
  Format.printf "  IKAcc    (32 SSUs, 1 GHz)   : %8.3f ms  (%.0fx vs CPU, %.0fx vs GPU)@."
    (ikacc_s *. 1e3) (atom_ms /. (ikacc_s *. 1e3)) (tx1_ms /. (ikacc_s *. 1e3));

  (* Run one solve through the full accelerator report for the energy
     story. *)
  let report = Dadu_accel.Ikacc.solve ~speculations:64 problems.(0) in
  Format.printf "@.One full IKAcc run:@.%a@." Dadu_accel.Ikacc.pp_report report
