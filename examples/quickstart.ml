(* Quickstart: solve inverse kinematics for a 7-DOF arm with Quick-IK.

     dune exec examples/quickstart.exe

   Walks the shortest useful path through the API: build a robot, pick a
   reachable target, solve, verify with forward kinematics. *)

open Dadu_kinematics
open Dadu_core

let () =
  (* 1. A robot: a 7-DOF redundant arm with realistic joint limits. *)
  let chain = Robots.arm_7dof () in
  Format.printf "Robot: %s (%d DOF, reach %.2f m)@." (Chain.name chain)
    (Chain.dof chain) (Chain.reach chain);

  (* 2. A task: a reachable end-effector position.  Sampling it as the FK
     image of a random configuration guarantees a solution exists. *)
  let rng = Dadu_util.Rng.create 2017 in
  let target = Target.reachable rng chain in
  Format.printf "Target position: %a@." Dadu_linalg.Vec3.pp target;

  (* 3. An initial guess (here: a random one, as in the paper's Algorithm 1
     line 1). *)
  let theta0 = Target.random_config rng chain in
  let problem = Ik.problem ~chain ~target ~theta0 in

  (* 4. Solve with Quick-IK, 64 speculations (the paper's operating
     point). *)
  let result = Quick_ik.solve ~speculations:64 problem in
  Format.printf "Quick-IK: %a@." Ik.pp_result result;

  (* 5. Verify through forward kinematics. *)
  let reached = Fk.position chain result.Ik.theta in
  Format.printf "FK check: reached %a, %.2f mm from target@."
    Dadu_linalg.Vec3.pp reached
    (1e3 *. Dadu_linalg.Vec3.dist reached target);

  (* 6. Compare with the baselines the paper measures. *)
  let show name (r : Ik.result) =
    Format.printf "  %-22s %4d iterations, final error %.2e m@." name
      r.Ik.iterations r.Ik.error
  in
  Format.printf "Baselines on the same problem:@.";
  show "JT-Serial (original)" (Jt_serial.solve problem);
  show "JT + Buss alpha" (Jt_buss.solve problem);
  show "Pseudoinverse (SVD)" (Pinv_svd.solve problem);
  show "Damped least squares" (Dls.solve problem)
