(* Every solver in the library on one problem batch: the library's
   method-comparison table in miniature.

     dune exec examples/solver_shootout.exe [DOF]

   For each method: iteration count, computation load (speculations x
   iterations — the paper's Figure 5b metric), convergence rate, and host
   wall-clock. *)

open Dadu_kinematics
open Dadu_core
module Table = Dadu_util.Table
module Stats = Dadu_util.Stats

let () =
  let dof =
    if Array.length Sys.argv > 1 then
      match int_of_string_opt Sys.argv.(1) with
      | Some d when d > 1 -> d
      | Some _ | None ->
        prerr_endline "usage: solver_shootout [DOF>1]";
        exit 2
    else 25
  in
  let targets = 15 in
  let chain = Robots.eval_chain ~dof in
  let rng = Dadu_util.Rng.create 31 in
  let problems = Array.init targets (fun _ -> Ik.random_problem rng chain) in
  let config = Ik.default_config in
  let solvers =
    [
      ("JT-Serial (fixed alpha)", fun p -> Jt_serial.solve ~config p);
      ("JT + Buss alpha", fun p -> Jt_buss.solve ~config p);
      ("Quick-IK (16 specs)", fun p -> Quick_ik.solve ~speculations:16 ~config p);
      ("Quick-IK (64 specs)", fun p -> Quick_ik.solve ~speculations:64 ~config p);
      ("Pseudoinverse (SVD)", fun p -> Pinv_svd.solve ~config p);
      ("Damped least squares", fun p -> Dls.solve ~config p);
      ("Selectively damped LS", fun p -> Sdls.solve ~config p);
      ( "CCD",
        fun p -> Ccd.solve ~config:{ config with Ik.max_iterations = 1_000 } p );
    ]
  in
  Format.printf "Solver shootout: %s, %d reachable targets, accuracy %.0e m@.@."
    (Chain.name chain) targets config.Ik.accuracy;
  let table =
    Table.create
      [
        ("method", Table.Left);
        ("mean iters", Table.Right);
        ("median", Table.Right);
        ("work (Fig 5b)", Table.Right);
        ("converged", Table.Right);
        ("host time", Table.Right);
      ]
  in
  List.iter
    (fun (name, solve) ->
      let t0 = Sys.time () in
      let results = Array.map solve problems in
      let elapsed = Sys.time () -. t0 in
      let iters = Array.map (fun r -> float_of_int r.Ik.iterations) results in
      let work = Array.map (fun r -> float_of_int (Ik.work r)) results in
      let converged =
        Array.fold_left
          (fun acc r -> if r.Ik.status = Ik.Converged then acc + 1 else acc)
          0 results
      in
      Table.add_row table
        [
          name;
          Table.fmt_float ~decimals:1 (Stats.mean iters);
          Table.fmt_float ~decimals:0 (Stats.median iters);
          Table.fmt_sig ~digits:4 (Stats.mean work);
          Printf.sprintf "%d/%d" converged targets;
          Printf.sprintf "%.0f ms" (elapsed *. 1e3);
        ])
    solvers;
  Table.print table;
  print_newline ();
  print_endline
    "Reading guide: Quick-IK needs ~2 orders of magnitude fewer iterations than";
  print_endline
    "JT-Serial at similar total work (the win is parallelizability, Fig 5b), while";
  print_endline
    "the pseudoinverse needs the fewest iterations but each one hides a serial SVD."
