(* Dynamics in the loop: simulate the arm the IK solvers steer.

     dune exec examples/dynamics_sim.exe

   Three vignettes on a 3-link planar arm with uniform-rod links:
   1. passive swing — RK4 integration conserving mechanical energy,
   2. PD setpoint control sagging under gravity,
   3. the same PD with exact gravity feed-forward from the Newton-Euler
      model (computed-torque's static part) holding the setpoint tight. *)

open Dadu_linalg
open Dadu_kinematics

let () =
  let chain = Robots.planar ~dof:3 ~reach:1.5 () in
  let model =
    Dynamics.model ~gravity:(Vec3.make 0. (-9.81) 0.) chain
      (Array.init 3 (fun _ -> Dynamics.rod ~mass:1.5 ~length:0.5))
  in

  (* 1. passive swing from a raised pose *)
  let initial = { Simulation.time = 0.; q = [| 0.9; -0.4; 0.3 |]; qd = [| 0.; 0.; 0. |] } in
  let states = Simulation.simulate model Simulation.zero_torque ~dt:1e-3 ~duration:3.0 initial in
  let e0 = Simulation.total_energy model initial in
  let drift =
    Array.fold_left
      (fun acc s -> Float.max acc (Float.abs (Simulation.total_energy model s -. e0)))
      0. states
  in
  Format.printf "Passive swing, 3 s at 1 kHz RK4: energy %.6f J, max drift %.2e J@." e0 drift;

  (* 2 & 3. hold a setpoint against gravity *)
  let setpoint = [| 0.5; -0.6; 0.4 |] in
  let hold = { Simulation.time = 0.; q = Array.copy setpoint; qd = [| 0.; 0.; 0. |] } in
  let final controller =
    let states = Simulation.simulate model controller ~dt:1e-3 ~duration:2.0 hold in
    states.(Array.length states - 1)
  in
  let sagged = final (Simulation.pd ~kp:80. ~kd:15. ~target:(fun _ -> setpoint) ()) in
  let held =
    final
      (Simulation.pd ~gravity_compensation:model ~kp:80. ~kd:15.
         ~target:(fun _ -> setpoint) ())
  in
  let deg x = x *. 180. /. Float.pi in
  Format.printf "@.Holding [%.1f, %.1f, %.1f] deg against gravity for 2 s:@."
    (deg setpoint.(0)) (deg setpoint.(1)) (deg setpoint.(2));
  Format.printf "  plain PD           : sags %.2f deg from the setpoint@."
    (deg (Vec.dist sagged.Simulation.q setpoint));
  Format.printf "  PD + gravity model : off by %.2e deg@."
    (deg (Vec.dist held.Simulation.q setpoint));
  let tau = Dynamics.gravity_torques model setpoint in
  Format.printf "  (feed-forward torques: %a N·m)@." Vec.pp tau
