(* Trajectory tracking: a 7-DOF arm traces a circle with its end effector,
   solving IK at every waypoint and warm-starting from the previous
   solution — the control-loop usage the paper's "real-time IK" claim is
   about.

     dune exec examples/trajectory.exe *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core

let waypoints = 60

let () =
  let chain = Robots.arm_7dof () in
  let center = Vec3.make 0.45 0. 0.35 in
  let path =
    Traj.circle ~center ~radius:0.12 ~normal:(Vec3.make 0. 1. 0.2) ~samples:waypoints
  in
  Format.printf "Tracking a %.0f mm circle with %s: %d waypoints, %.2f m path@." 240.
    (Chain.name chain) waypoints (Traj.arc_length path);

  let config = { Ik.default_config with max_iterations = 2_000 } in
  let report =
    Servo.track
      ~solver:(fun p -> Quick_ik.solve ~speculations:64 ~config p)
      ~chain
      ~theta0:(Array.make (Chain.dof chain) 0.3)
      path
  in
  Format.printf "  converged waypoints : %d/%d@." report.Servo.converged waypoints;
  Format.printf "  cold start          : %d iterations@." report.Servo.cold_start_iterations;
  Format.printf "  warm-started mean   : %.1f iterations@." report.Servo.warm_mean_iterations;
  Format.printf "  worst waypoint error: %.2f mm@." (report.Servo.max_error *. 1e3);

  (* What would this cost on the accelerator?  A control loop at 100 Hz
     needs each waypoint under 10 ms. *)
  let per_waypoint_s =
    Dadu_accel.Ikacc.time_for_iterations ~dof:(Chain.dof chain) ~speculations:64
      ~iterations:(int_of_float (Float.ceil report.Servo.warm_mean_iterations))
      ()
  in
  Format.printf "IKAcc cycle model: %.3f ms per warm waypoint -> %.0f Hz control rate@."
    (per_waypoint_s *. 1e3) (1. /. per_waypoint_s)
