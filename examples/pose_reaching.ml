(* Full-pose IK: reach a position *and* an orientation.

     dune exec examples/pose_reaching.exe

   The paper solves position-only IK; grasping needs the 6-DOF pose task.
   This example reaches randomly drawn feasible poses with a 7-DOF arm
   using the pose-task extension, comparing damped least squares against
   the speculative transpose method on the same problems. *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core
module Table = Dadu_util.Table

let () =
  let chain = Robots.arm_7dof () in
  let rng = Dadu_util.Rng.create 88 in
  let problems = Array.init 6 (fun _ -> Pose.random_problem rng chain) in
  Format.printf "Pose task on %s: position within %.0f mm AND orientation within %.2f rad@.@."
    (Chain.name chain)
    (Pose.default_config.Pose.position_accuracy *. 1e3)
    Pose.default_config.Pose.orientation_accuracy;

  let table =
    Table.create
      [
        ("pose", Table.Right);
        ("method", Table.Left);
        ("iters", Table.Right);
        ("pos err (mm)", Table.Right);
        ("rot err (mrad)", Table.Right);
        ("status", Table.Left);
      ]
  in
  Array.iteri
    (fun i p ->
      List.iter
        (fun (name, solve) ->
          let r : Pose.result = solve p in
          Table.add_row table
            [
              string_of_int (i + 1);
              name;
              string_of_int r.Pose.iterations;
              Table.fmt_float ~decimals:2 (r.Pose.position_error *. 1e3);
              Table.fmt_float ~decimals:2 (r.Pose.orientation_error *. 1e3);
              (match r.Pose.status with
              | Pose.Converged -> "ok"
              | Pose.Max_iterations -> "capped");
            ])
        [
          ("pose-DLS", fun p -> Pose.solve_dls p);
          ("pose-Quick-IK", fun p -> Pose.solve_quick ~speculations:64 p);
        ])
    problems;
  Table.print table;

  (* show one solved pose in full *)
  let p = problems.(0) in
  let r = Pose.solve_dls p in
  let reached = Fk.pose chain r.Pose.theta in
  Format.printf "@.Pose 1 detail:@.";
  Format.printf "  wanted position %a@." Vec3.pp p.Pose.target.Pose.position;
  Format.printf "  reached         %a@." Vec3.pp (Mat4.position reached);
  Format.printf "  orientation off by %.2f mrad about its residual axis@."
    (1e3 *. Rot.angle_between p.Pose.target.Pose.orientation (Mat4.rotation reached))
