(* Gravity-aware redundancy resolution: same hand position, lighter arm.

     dune exec examples/low_torque.exe

   A redundant chain holding a position has infinitely many postures; they
   differ enormously in the static torques the motors must hold against
   gravity.  This example reaches a target with plain DLS, then re-resolves
   the redundancy with a nullspace objective descending the gravity-effort
   ‖τ(θ)‖² computed by the Newton-Euler dynamics — the posture "leans on
   its own geometry" instead of its motors. *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core

let dof = 16

(* finite-difference gradient of the gravity effort, projected by the
   nullspace solver so it cannot disturb the task *)
let effort_gradient model theta =
  let eps = 1e-5 in
  let raw =
    Array.init (Array.length theta) (fun i ->
        let plus = Vec.copy theta and minus = Vec.copy theta in
        plus.(i) <- plus.(i) +. eps;
        minus.(i) <- minus.(i) -. eps;
        -.(Dynamics.gravity_effort model plus -. Dynamics.gravity_effort model minus)
        /. (2. *. eps))
  in
  (* torque-squared gradients are huge (N²m²/rad); normalize so the
     nullspace step stays within the solver's linearization *)
  let norm = Vec.norm raw in
  if norm > 1. then Vec.scale (1. /. norm) raw else raw

let () =
  let chain = Robots.spatial ~dof ~reach:(float_of_int dof /. 10.) () in
  let model = Dynamics.uniform_rods ~total_mass:8. chain in
  let rng = Dadu_util.Rng.create 321 in
  let target = Target.reachable rng chain in
  let theta0 = Target.random_config rng chain in
  let problem = Ik.problem ~chain ~target ~theta0 in
  Format.printf "%s (%.1f m reach, 8 kg) holding %a@.@." (Chain.name chain)
    (Chain.reach chain) Vec3.pp target;

  let plain = Dls.solve problem in
  let plain_tau = Dynamics.gravity_torques model plain.Ik.theta in
  Format.printf "Plain DLS posture:      holding torques |tau| = %.2f N·m (worst joint %.2f)@."
    (Vec.norm plain_tau) (Vec.max_abs plain_tau);

  let light_theta =
    Nullspace.optimize ~iterations:400 ~gain:0.05
      ~objective:(Nullspace.Custom (fun theta -> effort_gradient model theta))
      chain ~target ~theta:plain.Ik.theta
  in
  let light_tau = Dynamics.gravity_torques model light_theta in
  Format.printf "Gravity-aware posture:  holding torques |tau| = %.2f N·m (worst joint %.2f)@."
    (Vec.norm light_tau) (Vec.max_abs light_tau);
  Format.printf "Task error kept at %.2f mm; effort reduced %.0f%%@."
    (Ik.error_of chain target light_theta *. 1e3)
    (100. *. (1. -. (Vec.norm_sq light_tau /. Vec.norm_sq plain_tau)))
