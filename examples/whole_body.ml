(* Whole-body control in miniature: a snake robot threading a window.

     dune exec examples/whole_body.exe

   Two simultaneous position tasks on one 24-DOF chain: the tip must reach
   a goal while the mid-chain control point holds at a "window" the body
   must pass through — the multi-control-point IK that single-end-effector
   methods like CCD cannot express (paper §2). *)

open Dadu_linalg
open Dadu_kinematics
open Dadu_core

let dof = 24

let () =
  let chain = Robots.snake ~dof in
  let rng = Dadu_util.Rng.create 123 in

  (* Build a feasible scenario: pick a random posture, read off where its
     tip and midpoint are, then ask IK to reproduce both from a different
     start. *)
  let q_secret = Target.random_config rng chain in
  let frames = Fk.frames chain q_secret in
  let tip_goal = Mat4.position frames.(dof) in
  let window = Mat4.position frames.(dof / 2) in
  Format.printf "%s: tip -> %a while link %d holds %a@.@." (Chain.name chain)
    Vec3.pp tip_goal (dof / 2) Vec3.pp window;

  let theta0 = Target.random_config rng chain in

  (* First, the naive approach: solve only the tip task. *)
  let tip_only = Ik.problem ~chain ~target:tip_goal ~theta0 in
  let naive = Dls.solve tip_only in
  let naive_window_err =
    Vec3.dist window (Multitask.point_position chain naive.Ik.theta ~link:(dof / 2))
  in
  Format.printf "Tip-only DLS: tip error %.2f mm, but the midpoint misses the window by %.0f mm@."
    (naive.Ik.error *. 1e3) (naive_window_err *. 1e3);

  (* Now both tasks stacked. *)
  let tasks =
    [
      { Multitask.link = dof; target = tip_goal; weight = 1.0 };
      { Multitask.link = dof / 2; target = window; weight = 1.0 };
    ]
  in
  let mp = Multitask.problem ~chain ~tasks ~theta0 in
  let r = Multitask.solve mp in
  (match r.Multitask.errors with
  | [ tip_err; window_err ] ->
    Format.printf
      "Stacked-task DLS: tip error %.2f mm, window error %.2f mm, %d iterations (%s)@."
      (tip_err *. 1e3) (window_err *. 1e3) r.Multitask.iterations
      (if r.Multitask.converged then "converged" else "capped")
  | _ -> assert false);

  (* And with a comfort objective in what is left of the nullspace: the
     stacked task uses 6 of 24 DOF; joint-centering can spend the rest. *)
  let centered =
    (* a tighter accuracy keeps the solver iterating so the projected
       centering objective has iterations to act in *)
    Nullspace.solve ~objective:Nullspace.Joint_centering ~nullspace_gain:0.3
      ~config:{ Ik.default_config with accuracy = 1e-3; max_iterations = 200 }
      (Ik.problem ~chain ~target:tip_goal ~theta0:r.Multitask.theta)
  in
  Format.printf
    "@.After re-centering the spare joints: comfort %.3f -> %.3f (tip still %.2f mm off)@."
    (Nullspace.comfort chain r.Multitask.theta)
    (Nullspace.comfort chain centered.Ik.theta)
    (centered.Ik.error *. 1e3)
