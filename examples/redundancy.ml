(* Redundancy resolution: what to do with 17 spare degrees of freedom.

     dune exec examples/redundancy.exe

   A 20-DOF snake reaches the same targets twice — once with plain damped
   least squares, once with a nullspace joint-centering objective — and we
   compare the resulting postures.  The task error is identical; the
   nullspace version keeps the arm away from its joint limits, which is
   what keeps the *next* target solvable in a real controller. *)

open Dadu_kinematics
open Dadu_core
module Table = Dadu_util.Table

let () =
  let chain = Robots.snake ~dof:20 in
  let rng = Dadu_util.Rng.create 77 in
  let problems = Array.init 8 (fun _ -> Ik.random_problem rng chain) in
  Format.printf
    "%s: 3-D position task leaves a %d-dimensional self-motion manifold@.@."
    (Chain.name chain) (Chain.dof chain - 3);

  let table =
    Table.create
      [
        ("target", Table.Right);
        ("DLS err (mm)", Table.Right);
        ("DLS comfort", Table.Right);
        ("nullspace err (mm)", Table.Right);
        ("nullspace comfort", Table.Right);
      ]
  in
  let totals = ref (0., 0.) in
  Array.iteri
    (fun i p ->
      let plain = Dls.solve p in
      let centered = Nullspace.solve ~objective:Nullspace.Joint_centering p in
      let c_plain = Nullspace.comfort chain plain.Ik.theta in
      let c_centered = Nullspace.comfort chain centered.Ik.theta in
      let a, b = !totals in
      totals := (a +. c_plain, b +. c_centered);
      Table.add_row table
        [
          string_of_int (i + 1);
          Table.fmt_float ~decimals:2 (plain.Ik.error *. 1e3);
          Table.fmt_float ~decimals:3 c_plain;
          Table.fmt_float ~decimals:2 (centered.Ik.error *. 1e3);
          Table.fmt_float ~decimals:3 c_centered;
        ])
    problems;
  Table.print table;
  let a, b = !totals in
  Format.printf
    "@.comfort = mean squared normalized distance from joint centers (0 = centered).@.";
  Format.printf "mean comfort: DLS %.3f vs nullspace %.3f (%.0f%% closer to center)@."
    (a /. 8.) (b /. 8.)
    (100. *. (1. -. (b /. a)));

  (* the same machinery with a preferred reference posture *)
  let reference = Array.make 20 0.4 in
  let p = problems.(0) in
  let r = Nullspace.solve ~objective:(Nullspace.Reference reference) p in
  Format.printf
    "@.Reference-posture objective on target 1: %a, mean |theta - ref| %.3f rad@."
    Ik.pp_result r
    (Array.fold_left ( +. ) 0.
       (Array.mapi (fun i qi -> Float.abs (qi -. reference.(i))) r.Ik.theta)
    /. 20.)
