# A 3-DOF demo arm for the CLI cram tests and --robot-file examples.
chain demo-arm
base translate 0 0 0.2
joint shoulder revolute a=0.5 alpha=90deg limits=-170deg,170deg
joint elbow revolute a=0.4 limits=-150deg,150deg
joint wrist revolute a=0.25 alpha=-90deg limits=-170deg,170deg
tool translate 0 0 0.05
