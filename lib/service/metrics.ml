open Dadu_util
open Dadu_core

type t = {
  requests : int Atomic.t;
  converged : int Atomic.t;
  failed : int Atomic.t;
  rejected : int Atomic.t;
  faulted : int Atomic.t;
  fallback_used : int Atomic.t;
  deadline_exceeded : int Atomic.t;
  cache_hits : int Atomic.t;
  cache_misses : int Atomic.t;
  diverged : int Atomic.t;
  breaker_skips : int Atomic.t;
  retries : int Atomic.t;
  retry_converged : int Atomic.t;
  lockstep_lanes : int Atomic.t;
  session_requests : int Atomic.t;
  session_warm : int Atomic.t;
  library_hits : int Atomic.t;
  seed_theta0_wins : int Atomic.t;
  seed_session_wins : int Atomic.t;
  seed_cache_wins : int Atomic.t;
  seed_library_wins : int Atomic.t;
  seed_zero_wins : int Atomic.t;
  seed_perturbed_wins : int Atomic.t;
  (* connection-hygiene and crash-safety failure modes, bumped from the
     server's reader/delivery paths *)
  timeouts : int Atomic.t;
  disconnects : int Atomic.t;
  journal_appends : int Atomic.t;
  journal_replays : int Atomic.t;
  retry_after_sheds : int Atomic.t;
  busy_refusals : int Atomic.t;
  lock : Mutex.t; (* guards the histograms and the phase accumulators *)
  latency : Histogram.t;
  iterations : Histogram.t;
  (* wall time per scheduler phase, accumulated once per wave from the
     orchestrating domain — the serial-fraction observability the
     snapshot-prepare work is judged by *)
  mutable prepare_s : float;
  mutable work_s : float;
  mutable commit_s : float;
}

let create () =
  {
    requests = Atomic.make 0;
    converged = Atomic.make 0;
    failed = Atomic.make 0;
    rejected = Atomic.make 0;
    faulted = Atomic.make 0;
    fallback_used = Atomic.make 0;
    deadline_exceeded = Atomic.make 0;
    cache_hits = Atomic.make 0;
    cache_misses = Atomic.make 0;
    diverged = Atomic.make 0;
    breaker_skips = Atomic.make 0;
    retries = Atomic.make 0;
    retry_converged = Atomic.make 0;
    lockstep_lanes = Atomic.make 0;
    session_requests = Atomic.make 0;
    session_warm = Atomic.make 0;
    library_hits = Atomic.make 0;
    seed_theta0_wins = Atomic.make 0;
    seed_session_wins = Atomic.make 0;
    seed_cache_wins = Atomic.make 0;
    seed_library_wins = Atomic.make 0;
    seed_zero_wins = Atomic.make 0;
    seed_perturbed_wins = Atomic.make 0;
    timeouts = Atomic.make 0;
    disconnects = Atomic.make 0;
    journal_appends = Atomic.make 0;
    journal_replays = Atomic.make 0;
    retry_after_sheds = Atomic.make 0;
    busy_refusals = Atomic.make 0;
    lock = Mutex.create ();
    latency = Histogram.create ();
    iterations = Histogram.create ();
    prepare_s = 0.;
    work_s = 0.;
    commit_s = 0.;
  }

type phase = Prepare | Work | Commit

let phase_name = function
  | Prepare -> "prepare"
  | Work -> "work"
  | Commit -> "commit"

let record_phase t phase dur_s =
  Mutex.lock t.lock;
  (match phase with
  | Prepare -> t.prepare_s <- t.prepare_s +. dur_s
  | Work -> t.work_s <- t.work_s +. dur_s
  | Commit -> t.commit_s <- t.commit_s +. dur_s);
  Mutex.unlock t.lock

type event =
  | Rejected of Ik.invalid
  | Faulted of string
  | Solved of {
      converged : bool;
      diverged : bool;
      fallbacks : int;
      cache_hit : bool;
      session : bool;
      session_hit : bool;
      deadline_exceeded : bool;
      breaker_skips : int;
      retries : int;
      retry_converged : bool;
      latency_s : float;
      iterations : int;
    }

let bump c = Atomic.incr c

let add c n = if n > 0 then ignore (Atomic.fetch_and_add c n)

(* lanes solved through the lockstep mega-batch head tier; bumped from
   the scheduler's serial work phase, once per wave *)
let record_lockstep t n = add t.lockstep_lanes n

(* speculative seed selection outcome for one request; bumped from the
   scheduler's serial prepare phase, so counts are pool-size independent *)
let record_seed t ~library_hit (source : Seed_select.source) =
  if library_hit then bump t.library_hits;
  bump
    (match source with
    | Seed_select.Theta0 -> t.seed_theta0_wins
    | Seed_select.Session -> t.seed_session_wins
    | Seed_select.Cache -> t.seed_cache_wins
    | Seed_select.Library -> t.seed_library_wins
    | Seed_select.Zero -> t.seed_zero_wins
    | Seed_select.Perturbed -> t.seed_perturbed_wins)

(* server-side failure modes outside the solve pipeline; each bumps one
   counter, none count as a request *)
type net_event =
  | Timeout  (** a connection hit its idle or frame read deadline *)
  | Disconnect  (** a connection dropped uncleanly (desync, reset, cut) *)
  | Journal_append  (** one record written to the session journal *)
  | Journal_replay  (** one record applied from the journal at startup *)
  | Retry_after_shed  (** a shed that attached a retry_after hint *)
  | Busy_refusal  (** a connection refused at the connection cap *)

let record_net t = function
  | Timeout -> bump t.timeouts
  | Disconnect -> bump t.disconnects
  | Journal_append -> bump t.journal_appends
  | Journal_replay -> bump t.journal_replays
  | Retry_after_shed -> bump t.retry_after_sheds
  | Busy_refusal -> bump t.busy_refusals

let record t event =
  bump t.requests;
  match event with
  | Rejected _ -> bump t.rejected
  | Faulted _ -> bump t.faulted
  | Solved
      {
        converged;
        diverged;
        fallbacks;
        cache_hit;
        session;
        session_hit;
        deadline_exceeded;
        breaker_skips;
        retries;
        retry_converged;
        latency_s;
        iterations;
      } ->
    bump (if converged then t.converged else t.failed);
    if diverged then bump t.diverged;
    if fallbacks > 0 then bump t.fallback_used;
    if deadline_exceeded then bump t.deadline_exceeded;
    add t.breaker_skips breaker_skips;
    add t.retries retries;
    if retry_converged then bump t.retry_converged;
    (* session requests bypass the shared seed cache entirely (the slot
       is the cache), so they count in their own lookup universe *)
    if session then begin
      bump t.session_requests;
      if session_hit then bump t.session_warm
    end
    else bump (if cache_hit then t.cache_hits else t.cache_misses);
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        Histogram.add t.latency latency_s;
        Histogram.add t.iterations (float_of_int iterations))

let reset t =
  List.iter
    (fun c -> Atomic.set c 0)
    [
      t.requests;
      t.converged;
      t.failed;
      t.rejected;
      t.faulted;
      t.fallback_used;
      t.deadline_exceeded;
      t.cache_hits;
      t.cache_misses;
      t.diverged;
      t.breaker_skips;
      t.retries;
      t.retry_converged;
      t.lockstep_lanes;
      t.session_requests;
      t.session_warm;
      t.library_hits;
      t.seed_theta0_wins;
      t.seed_session_wins;
      t.seed_cache_wins;
      t.seed_library_wins;
      t.seed_zero_wins;
      t.seed_perturbed_wins;
      t.timeouts;
      t.disconnects;
      t.journal_appends;
      t.journal_replays;
      t.retry_after_sheds;
      t.busy_refusals;
    ];
  Mutex.lock t.lock;
  Histogram.clear t.latency;
  Histogram.clear t.iterations;
  t.prepare_s <- 0.;
  t.work_s <- 0.;
  t.commit_s <- 0.;
  Mutex.unlock t.lock

type snapshot = {
  requests : int;
  converged : int;
  failed : int;
  rejected : int;
  faulted : int;
  fallback_used : int;
  deadline_exceeded : int;
  cache_hits : int;
  cache_misses : int;
  diverged : int;
  breaker_skips : int;
  retries : int;
  retry_converged : int;
  lockstep_lanes : int;
  session_requests : int;
  session_warm : int;
  library_hits : int;
  seed_theta0_wins : int;
  seed_session_wins : int;
  seed_cache_wins : int;
  seed_library_wins : int;
  seed_zero_wins : int;
  seed_perturbed_wins : int;
  timeouts : int;
  disconnects : int;
  journal_appends : int;
  journal_replays : int;
  retry_after_sheds : int;
  busy_refusals : int;
  prepare_s : float;
  work_s : float;
  commit_s : float;
  latency : Histogram.summary option;
  iterations : Histogram.summary option;
}

let snapshot t =
  Mutex.lock t.lock;
  let latency = Histogram.summarize t.latency in
  let iterations = Histogram.summarize t.iterations in
  let prepare_s = t.prepare_s in
  let work_s = t.work_s in
  let commit_s = t.commit_s in
  Mutex.unlock t.lock;
  {
    requests = Atomic.get t.requests;
    converged = Atomic.get t.converged;
    failed = Atomic.get t.failed;
    rejected = Atomic.get t.rejected;
    faulted = Atomic.get t.faulted;
    fallback_used = Atomic.get t.fallback_used;
    deadline_exceeded = Atomic.get t.deadline_exceeded;
    cache_hits = Atomic.get t.cache_hits;
    cache_misses = Atomic.get t.cache_misses;
    diverged = Atomic.get t.diverged;
    breaker_skips = Atomic.get t.breaker_skips;
    retries = Atomic.get t.retries;
    retry_converged = Atomic.get t.retry_converged;
    lockstep_lanes = Atomic.get t.lockstep_lanes;
    session_requests = Atomic.get t.session_requests;
    session_warm = Atomic.get t.session_warm;
    library_hits = Atomic.get t.library_hits;
    seed_theta0_wins = Atomic.get t.seed_theta0_wins;
    seed_session_wins = Atomic.get t.seed_session_wins;
    seed_cache_wins = Atomic.get t.seed_cache_wins;
    seed_library_wins = Atomic.get t.seed_library_wins;
    seed_zero_wins = Atomic.get t.seed_zero_wins;
    seed_perturbed_wins = Atomic.get t.seed_perturbed_wins;
    timeouts = Atomic.get t.timeouts;
    disconnects = Atomic.get t.disconnects;
    journal_appends = Atomic.get t.journal_appends;
    journal_replays = Atomic.get t.journal_replays;
    retry_after_sheds = Atomic.get t.retry_after_sheds;
    busy_refusals = Atomic.get t.busy_refusals;
    prepare_s;
    work_s;
    commit_s;
    latency;
    iterations;
  }

(* serial fraction of the wave pipeline: prepare and commit run on the
   orchestrating domain, work is the pool phase *)
let serial_fraction s =
  let total = s.prepare_s +. s.work_s +. s.commit_s in
  if total > 0. then Some ((s.prepare_s +. s.commit_s) /. total) else None

let render s =
  let table =
    Table.create ~title:"service metrics" [ ("metric", Table.Left); ("value", Table.Right) ]
  in
  let int_row name v = Table.add_row table [ name; string_of_int v ] in
  int_row "requests" s.requests;
  int_row "converged" s.converged;
  int_row "failed" s.failed;
  int_row "rejected" s.rejected;
  int_row "faulted" s.faulted;
  int_row "fallback used" s.fallback_used;
  int_row "deadline exceeded" s.deadline_exceeded;
  let lookups = s.cache_hits + s.cache_misses in
  Table.add_row table
    [
      "cache hits";
      (if lookups = 0 then "0"
       else
         Printf.sprintf "%d (%.1f%%)" s.cache_hits
           (100. *. float_of_int s.cache_hits /. float_of_int lookups));
    ];
  int_row "cache misses" s.cache_misses;
  int_row "diverged" s.diverged;
  int_row "breaker skips" s.breaker_skips;
  int_row "retries" s.retries;
  int_row "retry converged" s.retry_converged;
  int_row "lockstep lanes" s.lockstep_lanes;
  let warm_lookups = s.session_requests in
  Table.add_row table
    [
      "session warm";
      (if warm_lookups = 0 then "0"
       else
         Printf.sprintf "%d/%d (%.1f%%)" s.session_warm warm_lookups
           (100. *. float_of_int s.session_warm /. float_of_int warm_lookups));
    ];
  int_row "library hits" s.library_hits;
  int_row "seed wins (theta0)" s.seed_theta0_wins;
  int_row "seed wins (session)" s.seed_session_wins;
  int_row "seed wins (cache)" s.seed_cache_wins;
  int_row "seed wins (library)" s.seed_library_wins;
  int_row "seed wins (zero)" s.seed_zero_wins;
  int_row "seed wins (perturbed)" s.seed_perturbed_wins;
  int_row "timeouts" s.timeouts;
  int_row "disconnects" s.disconnects;
  int_row "journal appends" s.journal_appends;
  int_row "journal replays" s.journal_replays;
  int_row "retry-after sheds" s.retry_after_sheds;
  int_row "busy refusals" s.busy_refusals;
  Table.add_sep table;
  let phase_ms name v =
    Table.add_row table [ name; Printf.sprintf "%.3f ms" (1e3 *. v) ]
  in
  phase_ms "phase prepare" s.prepare_s;
  phase_ms "phase work" s.work_s;
  phase_ms "phase commit" s.commit_s;
  Table.add_row table
    [
      "serial fraction";
      (match serial_fraction s with
      | None -> "n/a"
      | Some f -> Printf.sprintf "%.1f%%" (100. *. f));
    ];
  Table.add_sep table;
  (match s.latency with
  | None -> Table.add_row table [ "latency"; "no samples" ]
  | Some l ->
    let ms name v = Table.add_row table [ name; Printf.sprintf "%.3f ms" (1e3 *. v) ] in
    ms "latency mean" l.Histogram.mean;
    ms "latency p50" l.Histogram.p50;
    ms "latency p95" l.Histogram.p95;
    ms "latency p99" l.Histogram.p99;
    ms "latency max" l.Histogram.max);
  (match s.iterations with
  | None -> Table.add_row table [ "iterations"; "no samples" ]
  | Some i ->
    let it name v = Table.add_row table [ name; Printf.sprintf "%.1f" v ] in
    it "iterations mean" i.Histogram.mean;
    it "iterations p50" i.Histogram.p50;
    it "iterations p95" i.Histogram.p95;
    it "iterations p99" i.Histogram.p99);
  Table.render table
