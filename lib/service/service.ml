open Dadu_core
open Dadu_kinematics
module Trace = Dadu_util.Trace

type config = {
  solvers : Fallback.kind list;
  speculations : int;
  accuracy : float;
  max_iterations : int;
  time_budget_s : float option;
  warm_start : bool;
  cache_cell_m : float;
  cache_capacity : int;
  chunk : int;
}

let default_config =
  {
    solvers = [ Fallback.Quick_ik; Fallback.Dls; Fallback.Sdls ];
    speculations = 64;
    accuracy = 1e-2;
    max_iterations = 2_000;
    time_budget_s = None;
    warm_start = true;
    cache_cell_m = 0.05;
    cache_capacity = 4096;
    chunk = 64;
  }

type t = {
  config : config;
  ik_config : Ik.config;
  scheduler : Scheduler.t;
  cache : Seed_cache.t;
  metrics : Metrics.t;
}

let create ?pool ?(config = default_config) () =
  if config.solvers = [] then invalid_arg "Service.create: empty solver chain";
  if config.speculations <= 0 then
    invalid_arg "Service.create: speculations must be positive";
  if config.max_iterations <= 0 then
    invalid_arg "Service.create: max_iterations must be positive";
  if not (config.accuracy > 0.) then
    invalid_arg "Service.create: accuracy must be positive";
  {
    config;
    ik_config =
      {
        Ik.accuracy = config.accuracy;
        max_iterations = config.max_iterations;
        stall_iterations = None;
      };
    scheduler = Scheduler.create ?pool ~chunk:config.chunk ();
    (* Seed_cache.create and Scheduler.create validate their own fields *)
    cache = Seed_cache.create ~capacity:config.cache_capacity ~cell_size:config.cache_cell_m ();
    metrics = Metrics.create ();
  }

let config t = t.config

type request = { problem : Ik.problem; deadline_s : float option }

let request ?deadline_s problem =
  (match deadline_s with
  | Some d when not (d >= 0.) ->
    invalid_arg "Service.request: deadline_s must be non-negative"
  | Some _ | None -> ());
  { problem; deadline_s }

type reply =
  | Solved of {
      result : Ik.result;
      solver : Fallback.kind;
      fallbacks : int;
      cache_hit : bool;
      deadline_exceeded : bool;
      latency_s : float;
    }
  | Rejected of Ik.invalid
  | Faulted of string

(* what the serial prepare phase hands to the parallel wave *)
type prepared =
  | Dispatch of {
      index : int;
      problem : Ik.problem;
      cache_hit : bool;
      expired : bool;
      solve_budget_s : float option;
    }
  | Skip of Ik.invalid

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Float.min a b)

let prepare t ?budget_s ?trace (d : Scheduler.dispatch) (rq : request) =
  Trace.span trace ~request:d.Scheduler.index ~phase:"prepare" @@ fun () ->
  let p = rq.problem in
  match Ik.validate p with
  | Error invalid -> Skip invalid
  | Ok () ->
    let lookup problem cache_hit =
      (* time left before this request's deadline or the batch budget, at
         prepare time; the solve phase hands it to the fallback chain so a
         straggler stops falling back once its deadline passes.  All
         [None] (the default) keeps the batch deterministic. *)
      let remaining limit =
        match limit with
        | None -> None
        | Some l -> Some (Float.max 0. (l -. d.Scheduler.elapsed_s))
      in
      let solve_budget_s =
        min_opt t.config.time_budget_s
          (min_opt (remaining rq.deadline_s) (remaining budget_s))
      in
      Dispatch
        {
          index = d.Scheduler.index;
          problem;
          cache_hit;
          expired = d.Scheduler.expired;
          solve_budget_s;
        }
    in
    if not t.config.warm_start then lookup p false
    else begin
      let dof = Chain.dof p.Ik.chain in
      match Seed_cache.find t.cache ~dof p.Ik.target with
      | None -> lookup p false
      | Some seed ->
        (* a neighbour solved on a *different* chain with the same DOF is
           still a legal warm start once clamped to this chain's limits *)
        let theta0 = Chain.clamp_config p.Ik.chain seed in
        lookup { p with Ik.theta0 } true
    end

let work t ?trace prep =
  match prep with
  | Skip invalid -> Rejected invalid
  | Dispatch { index; problem; cache_hit; expired; solve_budget_s } ->
    let t0 = Trace.now_s () in
    let attempt_hook =
      match trace with
      | None -> None
      | Some tr ->
        Some
          (fun kind ~start_s ~dur_s (r : Ik.result) ->
            Trace.record tr ~request:index ~phase:"fallback-tier"
              ~attrs:
                [
                  ("solver", Fallback.name kind);
                  ( "status",
                    Format.asprintf "%a" Ik.pp_status r.Ik.status );
                ]
              ~start_s ~dur_s ())
    in
    (* past-deadline requests short-circuit to the cheapest tier: the
       chain's first solver (chains are ordered cheap-first), alone, so
       the reply still carries a best-effort answer at minimum cost *)
    let chain =
      if expired then [ List.hd t.config.solvers ] else t.config.solvers
    in
    let outcome =
      Fallback.run ~speculations:t.config.speculations
        ?time_budget_s:solve_budget_s ?attempt_hook ~chain
        ~config:t.ik_config problem
    in
    let latency_s = Trace.now_s () -. t0 in
    (match trace with
    | None -> ()
    | Some tr ->
      Trace.record tr ~request:index ~phase:"solve"
        ~attrs:
          [
            ("solver", Fallback.name outcome.Fallback.solver);
            ("fallbacks", string_of_int outcome.Fallback.fallbacks);
            ("cache_hit", string_of_bool cache_hit);
            ("deadline_exceeded", string_of_bool expired);
          ]
        ~start_s:t0 ~dur_s:latency_s ());
    Solved
      {
        result = outcome.Fallback.result;
        solver = outcome.Fallback.solver;
        fallbacks = outcome.Fallback.fallbacks;
        cache_hit;
        deadline_exceeded = expired;
        latency_s;
      }

let commit t ?trace requests i result =
  Trace.span trace ~request:i ~phase:"commit" @@ fun () ->
  match result with
  | Error exn ->
    Metrics.record t.metrics (Metrics.Faulted (Printexc.to_string exn))
  | Ok (Rejected invalid) -> Metrics.record t.metrics (Metrics.Rejected invalid)
  | Ok (Faulted msg) -> Metrics.record t.metrics (Metrics.Faulted msg)
  | Ok (Solved { result; fallbacks; cache_hit; deadline_exceeded; latency_s; _ })
    ->
    let converged = result.Ik.status = Ik.Converged in
    if converged then begin
      let p = requests.(i).problem in
      Seed_cache.store t.cache
        ~dof:(Chain.dof p.Ik.chain)
        ~target:p.Ik.target result.Ik.theta
    end;
    Metrics.record t.metrics
      (Metrics.Solved
         {
           converged;
           fallbacks;
           cache_hit;
           deadline_exceeded;
           latency_s;
           iterations = result.Ik.iterations;
         })

let solve_requests ?budget_s ?trace t requests =
  Scheduler.map_deadlined t.scheduler ?budget_s
    ~deadline_s:(fun i -> requests.(i).deadline_s)
    ~prepare:(prepare t ?budget_s ?trace)
    ~work:(work t ?trace)
    ~commit:(commit t ?trace requests)
    requests
  |> Array.map (function
       | Ok reply -> reply
       | Error exn -> Faulted (Printexc.to_string exn))

let solve_batch t problems =
  solve_requests t (Array.map (fun problem -> { problem; deadline_s = None }) problems)

let metrics t = Metrics.snapshot t.metrics

let render_metrics t = Metrics.render (metrics t)

let reset_metrics t = Metrics.reset t.metrics

let cache_length t = Seed_cache.length t.cache
