open Dadu_core
open Dadu_kinematics
module Trace = Dadu_util.Trace
module Fault = Dadu_util.Fault
module Rng = Dadu_util.Rng

type config = {
  solvers : Fallback.kind list;
  speculations : int;
  accuracy : float;
  max_iterations : int;
  time_budget_s : float option;
  warm_start : bool;
  cache_cell_m : float;
  cache_capacity : int;
  chunk : int;
  lockstep : bool;
  guard : Ik.guard option;
  fault : Fault.t;
  breaker : Breaker.settings option;
  retries : int;
  retry_scale : float;
  seed_library : Posture_library.t option;
  seed_candidates : int;
  snapshot_prepare : bool;
}

let default_config =
  {
    solvers = [ Fallback.Quick_ik; Fallback.Dls; Fallback.Sdls ];
    speculations = 64;
    accuracy = 1e-2;
    max_iterations = 2_000;
    time_budget_s = None;
    warm_start = true;
    cache_cell_m = 0.05;
    cache_capacity = 4096;
    chunk = 64;
    lockstep = false;
    guard = None;
    fault = Fault.disabled;
    breaker = None;
    retries = 0;
    retry_scale = 0.1;
    seed_library = None;
    seed_candidates = 1;
    snapshot_prepare = false;
  }

type t = {
  config : config;
  ik_config : Ik.config;
  scheduler : Scheduler.t;
  pool : Dadu_util.Domain_pool.t option;
      (* the scheduler's pool, kept for the lockstep sweep and its
         per-lane continuation wave *)
  cache : Seed_cache.t;
  metrics : Metrics.t;
  breakers : Breaker.t array option;
      (* one per chain tier, same order as [config.solvers]; mutated only
         in the scheduler's serial phases *)
  megabatch : Megabatch.t option;
      (* the lockstep lane bank, capacity = chunk so one scheduler wave
         fills it exactly; [Some] iff [config.lockstep] *)
  seed_select : Seed_select.t;
      (* speculative seed-selection scratch; touched only in the serial
         prepare phase *)
  mutable fp_memo : (Chain.t * int) option;
      (* last chain fingerprinted (physical identity): batches reuse one
         chain value, so prepare/commit rarely rehash.  Serial phases
         only. *)
}

let create ?pool ?(config = default_config) () =
  if config.solvers = [] then invalid_arg "Service.create: empty solver chain";
  if config.speculations <= 0 then
    invalid_arg "Service.create: speculations must be positive";
  if config.max_iterations <= 0 then
    invalid_arg "Service.create: max_iterations must be positive";
  if not (config.accuracy > 0.) then
    invalid_arg "Service.create: accuracy must be positive";
  if config.retries < 0 then
    invalid_arg "Service.create: retries must be non-negative";
  if not (config.retry_scale >= 0. && Float.is_finite config.retry_scale) then
    invalid_arg "Service.create: retry_scale must be finite and non-negative";
  if config.seed_candidates < 1 then
    invalid_arg "Service.create: seed_candidates must be at least 1";
  let ik_config =
    {
      Ik.accuracy = config.accuracy;
      max_iterations = config.max_iterations;
      stall_iterations = None;
      guard = config.guard;
    }
  in
  {
    config;
    ik_config;
    scheduler = Scheduler.create ?pool ~chunk:config.chunk ();
    pool;
    (* Seed_cache.create and Scheduler.create validate their own fields *)
    cache = Seed_cache.create ~capacity:config.cache_capacity ~cell_size:config.cache_cell_m ();
    metrics = Metrics.create ();
    breakers =
      Option.map
        (fun settings ->
          Array.of_list (List.map (fun _ -> Breaker.create settings) config.solvers))
        config.breaker;
    megabatch =
      (if config.lockstep then
         (* the lane bank is deliberately smaller than the wave: lanes
            refill from the wave's queue as they retire, so a compact
            bank keeps the per-sweep working set (one workspace per
            lane) cache-resident while still load-balancing at lane
            granularity.  ~4 lanes per domain; capacity only affects
            throughput, never results (capacity-independence is pinned
            by test). *)
         let domains =
           match pool with Some p -> Dadu_util.Domain_pool.size p | None -> 1
         in
         Some
           (Megabatch.create
              ~capacity:(Stdlib.min config.chunk (Stdlib.max 8 (4 * domains)))
              ~speculations:config.speculations ~config:ik_config ())
       else None);
    seed_select = Seed_select.create ();
    fp_memo = None;
  }

(* fingerprints are O(dof) to compute; the memo collapses that to a
   pointer compare for the common one-chain-per-batch case *)
let chain_fingerprint t chain =
  match t.fp_memo with
  | Some (c, fp) when c == chain -> fp
  | Some _ | None ->
    let fp = Chain.fingerprint chain in
    t.fp_memo <- Some (chain, fp);
    fp

let config t = t.config

let breaker_states t =
  match t.breakers with
  | None -> []
  | Some bs ->
    List.mapi (fun j kind -> (kind, Breaker.state bs.(j))) t.config.solvers

type request = {
  problem : Ik.problem;
  deadline_s : float option;
  session : Session.t option;
  ordinal : int option;
}

let request ?deadline_s ?session ?ordinal problem =
  (match deadline_s with
  | Some d when not (d >= 0.) ->
    invalid_arg "Service.request: deadline_s must be non-negative"
  | Some _ | None -> ());
  (match ordinal with
  | Some o when o < 0 ->
    invalid_arg "Service.request: ordinal must be non-negative"
  | Some _ | None -> ());
  { problem; deadline_s; session; ordinal }

(* The stable ordinal: the session waypoint sequence number when the
   caller assigned one, else the batch index.  It keys every per-request
   noise stream (speculative perturbations, retry jitter), so a session
   waypoint's reply is independent of where it lands in a batch. *)
let req_ordinal (d : Scheduler.dispatch) rq =
  match rq.ordinal with Some o -> o | None -> d.Scheduler.index

type reply =
  | Solved of {
      result : Ik.result;
      solver : Fallback.kind;
      fallbacks : int;
      cache_hit : bool;
      session_hit : bool;
      deadline_exceeded : bool;
      breaker_skips : int;
      retries : int;
      retry_converged : bool;
      trail : (Fallback.kind * Ik.status) list;
      latency_s : float;
    }
  | Rejected of Ik.invalid
  | Faulted of string

(* what the serial prepare phase hands to the parallel wave *)
type prepared =
  | Dispatch of {
      index : int;
      ordinal : int; (* stable noise key, see [req_ordinal] *)
      problem : Ik.problem;
      cache_hit : bool;
      session_hit : bool;
      expired : bool;
      solve_budget_s : float option;
      chain : Fallback.kind list;
      breaker_skips : int;
      fault : Fault.t;
          (* the request's fault fork, derived at prepare time so the
             whole dispatch — fault stream included — is part of the
             frozen wave snapshot *)
    }
  | Skip of Ik.invalid

let min_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (Float.min a b)

(* Breaker reads happen in the serial phase, keyed on the request
   ordinal — the open/half-open decisions are a pure function of the
   committed request sequence, never of the pool size.  If every tier is
   open the full chain runs anyway: serving must answer and an all-open
   chain means the problem is the traffic, not one solver. *)
let breaker_chain t (d : Scheduler.dispatch) =
  match t.breakers with
  | None -> (t.config.solvers, 0)
  | Some bs ->
    let allowed =
      List.filteri
        (fun j _ -> Breaker.allow bs.(j) ~now:d.Scheduler.index)
        t.config.solvers
    in
    if allowed = [] then (t.config.solvers, 0)
    else (allowed, List.length t.config.solvers - List.length allowed)

(* Time left before this request's deadline or the batch budget, at
   prepare time; the solve phase hands it to the fallback chain so a
   straggler stops falling back once its deadline passes.  All [None]
   (the default) keeps the batch deterministic. *)
let solve_budget t ?budget_s (d : Scheduler.dispatch) (rq : request) =
  let remaining limit =
    match limit with
    | None -> None
    | Some l -> Some (Float.max 0. (l -. d.Scheduler.elapsed_s))
  in
  min_opt t.config.time_budget_s
    (min_opt (remaining rq.deadline_s) (remaining budget_s))

let mk_dispatch t ?budget_s (d : Scheduler.dispatch) (rq : request)
    ~chain ~breaker_skips ?(session_hit = false) problem cache_hit =
  Dispatch
    {
      index = d.Scheduler.index;
      ordinal = req_ordinal d rq;
      problem;
      cache_hit;
      session_hit;
      expired = d.Scheduler.expired;
      solve_budget_s = solve_budget t ?budget_s d rq;
      chain;
      breaker_skips;
      fault = Fault.fork t.config.fault d.Scheduler.index;
    }

let prepare t ?budget_s ?trace (d : Scheduler.dispatch) (rq : request) =
  Trace.span trace ~request:d.Scheduler.index ~phase:"prepare" @@ fun () ->
  let p = rq.problem in
  match Ik.validate p with
  | Error invalid -> Skip invalid
  | Ok () ->
    let chain, breaker_skips = breaker_chain t d in
    let lookup = mk_dispatch t ?budget_s d rq ~chain ~breaker_skips in
    let is_session = rq.session <> None in
    if (not t.config.warm_start) && t.config.seed_candidates = 1
       && not is_session
    then lookup p false
    else begin
      let dof = Chain.dof p.Ik.chain in
      let chain_id = chain_fingerprint t p.Ik.chain in
      (* the temporal warm start: the session's previous converged
         solution.  Session requests bypass the shared seed cache
         entirely — the slot is the cache, scoped to the trajectory, so
         a session's replies never depend on other traffic (DESIGN.md
         §15). *)
      let session_seed =
        match rq.session with
        | None -> None
        | Some sess -> Session.seed sess ~chain_fp:chain_id
      in
      let session_hit = session_seed <> None in
      let cache_seed =
        if t.config.warm_start && not is_session then
          Seed_cache.find t.cache ~chain_id ~dof p.Ik.target
        else None
      in
      if t.config.seed_candidates = 1 then
        (* non-speculative path, exactly as before the seed selector *)
        match (session_seed, cache_seed) with
        | Some seed, _ ->
          let theta0 = Chain.clamp_config p.Ik.chain seed in
          lookup ~session_hit:true { p with Ik.theta0 } false
        | None, Some seed ->
          (* a cached neighbour is a legal warm start once clamped to
             this chain's limits *)
          let theta0 = Chain.clamp_config p.Ik.chain seed in
          lookup { p with Ik.theta0 } true
        | None, None -> lookup p false
      else begin
        (* multi-seed speculative start: assemble up to seed_candidates
           starts (θ₀, session slot, cache hit, library neighbour, zero,
           perturbed best), score each by first-iteration FK error,
           dispatch only the winner.  Runs here in the serial phase, so
           the winner is a pure function of the request ordinal and the
           committed history — independent of pool size and lockstep
           mode. *)
        let library =
          match t.config.seed_library with
          | Some lib when Posture_library.matches lib p.Ik.chain -> Some lib
          | Some _ | None -> None
        in
        let start_s = Trace.now_s () in
        let theta0 = Array.make dof 0. in
        let target = p.Ik.target in
        let source =
          Seed_select.choose t.seed_select ~session_seed ~library ~cache_seed
            ~candidates:t.config.seed_candidates ~ordinal:(req_ordinal d rq)
            ~scale:t.config.retry_scale ~chain:p.Ik.chain
            ~tx:target.Dadu_linalg.Vec3.x ~ty:target.Dadu_linalg.Vec3.y
            ~tz:target.Dadu_linalg.Vec3.z ~theta0:p.Ik.theta0 ~dst:theta0
        in
        let library_hit =
          match library with
          | Some lib -> Posture_library.size lib > 0
          | None -> false
        in
        Metrics.record_seed t.metrics ~library_hit source;
        (match trace with
        | None -> ()
        | Some tr ->
          Trace.record tr ~request:d.Scheduler.index ~phase:"seed-select"
            ~attrs:[ ("winner", Seed_select.source_name source) ]
            ~start_s
            ~dur_s:(Trace.now_s () -. start_s)
            ());
        lookup ~session_hit { p with Ik.theta0 } (cache_seed <> None)
      end
    end

(* ---- snapshot prepare -------------------------------------------------

   The wave-grained prepare path: instead of interleaving stateful reads
   with per-request FK scoring, the wave runs three passes.

   Pass A (serial, ordinal order) snapshots every read of mutable serial
   state — validation, breaker gating, the seed-cache probe (its LRU and
   counters mutate), the posture-library NN query (its ring scratch
   mutates), the fault fork, and the dispatch's frozen clock/expiry —
   into an immutable per-request record.  Because serial prepare commits
   nothing mid-wave, these frozen values are exactly what the per-request
   serial path would have read.

   Pass B hands the frozen specs to {!Seed_select.choose_wave}: candidate
   assembly fans out per request and the R×S candidate scorings collapse
   into chunked sweeps of the wave-fused SoA kernel on the pool (which is
   idle during prepare).  Replies stay byte-identical across pool sizes —
   and to the per-request path — by the selector's bit-parity contract.

   Pass C (serial, ordinal order) seals the wave: seed metrics and trace
   spans in the same order the serial path would emit them, then the
   dispatch records. *)

type snap =
  | Snap_done of prepared (* resolved without speculative selection *)
  | Snap_spec of {
      d : Scheduler.dispatch;
      rq : request;
      spec : Seed_select.spec;
      library_hit : bool;
      cache_hit : bool;
      session_hit : bool;
      chain : Fallback.kind list;
      breaker_skips : int;
    }

let prepare_wave t ?budget_s ?trace requests (ds : Scheduler.dispatch array) =
  let wave_start = Trace.now_s () in
  (* pass A: serial snapshot *)
  let snaps =
    Array.map
      (fun (d : Scheduler.dispatch) ->
        let rq = requests.(d.Scheduler.index) in
        let p = rq.problem in
        match Ik.validate p with
        | Error invalid -> Snap_done (Skip invalid)
        | Ok () ->
          let chain, breaker_skips = breaker_chain t d in
          let lookup = mk_dispatch t ?budget_s d rq ~chain ~breaker_skips in
          let is_session = rq.session <> None in
          if (not t.config.warm_start) && t.config.seed_candidates = 1
             && not is_session
          then Snap_done (lookup p false)
          else begin
            let dof = Chain.dof p.Ik.chain in
            let chain_id = chain_fingerprint t p.Ik.chain in
            (* session slot reads are safe here: the wave cut guarantees
               no earlier request of this wave writes the slot *)
            let session_seed =
              match rq.session with
              | None -> None
              | Some sess -> Session.seed sess ~chain_fp:chain_id
            in
            let session_hit = session_seed <> None in
            let cache_seed =
              if t.config.warm_start && not is_session then
                Seed_cache.find t.cache ~chain_id ~dof p.Ik.target
              else None
            in
            if t.config.seed_candidates = 1 then
              match (session_seed, cache_seed) with
              | Some seed, _ ->
                let theta0 = Chain.clamp_config p.Ik.chain seed in
                Snap_done (lookup ~session_hit:true { p with Ik.theta0 } false)
              | None, Some seed ->
                let theta0 = Chain.clamp_config p.Ik.chain seed in
                Snap_done (lookup { p with Ik.theta0 } true)
              | None, None -> Snap_done (lookup p false)
            else begin
              let library =
                match t.config.seed_library with
                | Some lib when Posture_library.matches lib p.Ik.chain ->
                  Some lib
                | Some _ | None -> None
              in
              (* the NN query runs here, serially: its scratch mutates.
                 Querying even when the candidate budget is already full
                 is harmless — the plan simply won't use the row. *)
              let library_index =
                match library with
                | Some lib ->
                  Posture_library.nearest_index lib
                    ~x:p.Ik.target.Dadu_linalg.Vec3.x
                    ~y:p.Ik.target.Dadu_linalg.Vec3.y
                    ~z:p.Ik.target.Dadu_linalg.Vec3.z
                | None -> -1
              in
              let library_hit =
                match library with
                | Some lib -> Posture_library.size lib > 0
                | None -> false
              in
              Snap_spec
                {
                  d;
                  rq;
                  spec =
                    {
                      Seed_select.ordinal = req_ordinal d rq;
                      chain = p.Ik.chain;
                      tx = p.Ik.target.Dadu_linalg.Vec3.x;
                      ty = p.Ik.target.Dadu_linalg.Vec3.y;
                      tz = p.Ik.target.Dadu_linalg.Vec3.z;
                      theta0 = p.Ik.theta0;
                      session_seed;
                      cache_seed;
                      library;
                      library_index;
                      candidates = t.config.seed_candidates;
                      scale = t.config.retry_scale;
                      dst = Array.make dof 0.;
                    };
                  library_hit;
                  cache_hit = cache_seed <> None;
                  session_hit;
                  chain;
                  breaker_skips;
                }
            end
          end)
      ds
  in
  (* pass B: parallel assembly + wave-fused scoring over the frozen specs *)
  let specs =
    Array.of_seq
      (Seq.filter_map
         (function Snap_spec { spec; _ } -> Some spec | Snap_done _ -> None)
         (Array.to_seq snaps))
  in
  let select_start = Trace.now_s () in
  let sources = Seed_select.choose_wave t.seed_select ?pool:t.pool specs in
  let select_dur = Trace.now_s () -. select_start in
  (* pass C: serial seal in ordinal order *)
  let spec_at = ref 0 in
  let out =
    Array.map
      (function
        | Snap_done prepared -> prepared
        | Snap_spec
            {
              d;
              rq;
              spec;
              library_hit;
              cache_hit;
              session_hit;
              chain;
              breaker_skips;
            } ->
          let source = sources.(!spec_at) in
          incr spec_at;
          Metrics.record_seed t.metrics ~library_hit source;
          (match trace with
          | None -> ()
          | Some tr ->
            (* the per-request selection is not individually timed in
               wave mode: the span carries the wave's fused-selection
               bracket, the winner attr stays per request *)
            Trace.record tr ~request:d.Scheduler.index ~phase:"seed-select"
              ~attrs:[ ("winner", Seed_select.source_name source) ]
              ~start_s:select_start ~dur_s:select_dur ());
          let p = rq.problem in
          mk_dispatch t ?budget_s d rq ~chain ~breaker_skips ~session_hit
            { p with Ik.theta0 = spec.Seed_select.dst }
            cache_hit)
      snaps
  in
  (match trace with
  | None -> ()
  | Some tr ->
    let dur_s = Trace.now_s () -. wave_start in
    Array.iter
      (fun (d : Scheduler.dispatch) ->
        Trace.record tr ~request:d.Scheduler.index ~phase:"prepare"
          ~start_s:wave_start ~dur_s ())
      ds);
  out

(* Perturbed-seed retry (the IKSel observation: a failed chain often
   succeeds from a jittered start).  The noise is seeded from the
   request's stable ordinal and retry number only, so retry [r] of
   ordinal [o] perturbs identically whatever the pool size, which domain
   runs it, or — for session waypoints — which batch it lands in. *)
let perturbed (p : Ik.problem) ~ordinal ~retry ~scale =
  let rng = Rng.create (Hashtbl.hash (0x7e72, ordinal, retry)) in
  let theta0 =
    Chain.clamp_config p.Ik.chain
      (Array.map (fun th -> th +. (scale *. Rng.gaussian rng)) p.Ik.theta0)
  in
  { p with Ik.theta0 }

let work t ?trace ?head prep =
  match prep with
  | Skip invalid -> Rejected invalid
  | Dispatch
      {
        index;
        ordinal;
        problem;
        cache_hit;
        session_hit;
        expired;
        solve_budget_s;
        chain;
        breaker_skips;
        fault;
      } ->
    let t0 = Trace.now_s () in
    let attempt_hook =
      match trace with
      | None -> None
      | Some tr ->
        Some
          (fun kind ~start_s ~dur_s (r : Ik.result) ->
            Trace.record tr ~request:index ~phase:"fallback-tier"
              ~attrs:
                [
                  ("solver", Fallback.name kind);
                  ( "status",
                    Format.asprintf "%a" Ik.pp_status r.Ik.status );
                ]
              ~start_s ~dur_s ())
    in
    (* past-deadline requests short-circuit to the cheapest tier: the
       chain's first solver (chains are ordered cheap-first), alone, so
       the reply still carries a best-effort answer at minimum cost *)
    let chain = if expired then [ List.hd chain ] else chain in
    let solve ?head p =
      Fallback.run ~speculations:t.config.speculations
        ?time_budget_s:solve_budget_s ?attempt_hook ~fault ?head ~chain
        ~config:t.ik_config p
    in
    (* [head] only covers the initial pass over the original problem;
       retries perturb θ₀, so they re-enter the chain head included *)
    let first = solve ?head problem in
    (* retry tier: re-enter the exhausted chain from perturbed seeds,
       keeping the best outcome; expired requests never retry (the whole
       point was minimum cost) *)
    let rec retry_loop best retry =
      if
        best.Fallback.result.Ik.status = Ik.Converged
        || retry > t.config.retries || expired
      then (best, retry - 1)
      else begin
        let rp = perturbed problem ~ordinal ~retry ~scale:t.config.retry_scale in
        let start_s = Trace.now_s () in
        let o = solve rp in
        (match trace with
        | None -> ()
        | Some tr ->
          Trace.record tr ~request:index ~phase:"retry"
            ~attrs:
              [
                ("attempt", string_of_int retry);
                ( "status",
                  Format.asprintf "%a" Ik.pp_status o.Fallback.result.Ik.status
                );
              ]
            ~start_s ~dur_s:(Trace.now_s () -. start_s) ());
        (* keep the converged (else lowest-error) outcome; the merged
           trail and attempt count cover every pass so breakers and
           metrics see all the evidence *)
        let keep =
          if
            o.Fallback.result.Ik.status = Ik.Converged
            || o.Fallback.result.Ik.error < best.Fallback.result.Ik.error
          then o
          else best
        in
        let attempts = best.Fallback.attempts + o.Fallback.attempts in
        let best =
          {
            keep with
            Fallback.trail = best.Fallback.trail @ o.Fallback.trail;
            attempts;
            fallbacks = attempts - 1;
          }
        in
        retry_loop best (retry + 1)
      end
    in
    let outcome, retries_used =
      if t.config.retries = 0 then (first, 0) else retry_loop first 1
    in
    let retries_used = Stdlib.max 0 retries_used in
    let retry_converged =
      retries_used > 0 && outcome.Fallback.result.Ik.status = Ik.Converged
      && first.Fallback.result.Ik.status <> Ik.Converged
    in
    let latency_s = Trace.now_s () -. t0 in
    (match trace with
    | None -> ()
    | Some tr ->
      Trace.record tr ~request:index ~phase:"solve"
        ~attrs:
          [
            ("solver", Fallback.name outcome.Fallback.solver);
            ("fallbacks", string_of_int outcome.Fallback.fallbacks);
            ("cache_hit", string_of_bool cache_hit);
            ("deadline_exceeded", string_of_bool expired);
          ]
        ~start_s:t0 ~dur_s:latency_s ());
    Solved
      {
        result = outcome.Fallback.result;
        solver = outcome.Fallback.solver;
        fallbacks = outcome.Fallback.fallbacks;
        cache_hit;
        session_hit;
        deadline_exceeded = expired;
        breaker_skips;
        retries = retries_used;
        retry_converged;
        trail = outcome.Fallback.trail;
        latency_s;
      }

let commit t ?trace requests i result =
  Trace.span trace ~request:i ~phase:"commit" @@ fun () ->
  (* breaker writes happen here, serially and in input order: the
     evidence stream feeding the state machines is the committed trail
     sequence, identical across pool sizes.  Convergence closes; a
     Diverged attempt (guard trip, crash containment, poisoned θ) counts
     toward the trip threshold; an honest Max_iterations/Stalled miss is
     neutral — a hard workload must not amputate the chain. *)
  (match (t.breakers, result) with
  | Some bs, Ok (Solved { trail; _ }) ->
    List.iter
      (fun (kind, status) ->
        List.iteri
          (fun j k ->
            if k = kind then
              match status with
              | Ik.Converged -> Breaker.success bs.(j)
              | Ik.Diverged -> Breaker.failure bs.(j) ~now:i
              | Ik.Max_iterations | Ik.Stalled -> ())
          t.config.solvers)
      trail
  | _ -> ());
  match result with
  | Error exn ->
    Metrics.record t.metrics (Metrics.Faulted (Printexc.to_string exn))
  | Ok (Rejected invalid) -> Metrics.record t.metrics (Metrics.Rejected invalid)
  | Ok (Faulted msg) -> Metrics.record t.metrics (Metrics.Faulted msg)
  | Ok
      (Solved
        {
          result;
          fallbacks;
          cache_hit;
          session_hit;
          deadline_exceeded;
          breaker_skips;
          retries;
          retry_converged;
          latency_s;
          _;
        }) ->
    let converged = result.Ik.status = Ik.Converged in
    let rq = requests.(i) in
    let p = rq.problem in
    (match rq.session with
    | Some sess ->
      (* the session slot replaces the shared cache for this request:
         the converged solution feeds the next waypoint of the same
         trajectory and nothing else, keeping session replies
         independent of other traffic (DESIGN.md §15) *)
      if converged then
        Session.store sess
          ~chain_fp:(chain_fingerprint t p.Ik.chain)
          result.Ik.theta;
      Session.record sess ~warm:session_hit
    | None ->
      if converged then
        Seed_cache.store t.cache
          ~chain_id:(chain_fingerprint t p.Ik.chain)
          ~dof:(Chain.dof p.Ik.chain)
          ~target:p.Ik.target result.Ik.theta);
    Metrics.record t.metrics
      (Metrics.Solved
         {
           converged;
           diverged = result.Ik.status = Ik.Diverged;
           fallbacks;
           cache_hit;
           session = rq.session <> None;
           session_hit;
           deadline_exceeded;
           breaker_skips;
           retries;
           retry_converged;
           latency_s;
           iterations = result.Ik.iterations;
         })

let guarded f x = try Ok (f x) with exn -> Error exn

(* The lockstep work phase for one prepared scheduler wave.  Lanes whose
   effective chain head is Quick-IK (including expired requests, whose
   chain is cut to its head) solve that head tier in one mega-batch
   sweep — bit-identical to the in-chain call by lane identity — and the
   remaining tiers, retries, and verification run per lane in the usual
   parallel wave with the head result injected.  Ineligible items (head
   tier filtered to something else by a breaker, or rejected) take the
   ordinary per-request path inside the same wave. *)
let lockstep_work t ?trace mb prepared =
  let n = Array.length prepared in
  let eligible j =
    match prepared.(j) with
    | Dispatch { chain; _ } -> List.hd chain = Fallback.Quick_ik
    | Skip _ -> false
  in
  let lanes =
    Array.of_seq (Seq.filter eligible (Seq.init n (fun j -> j)))
  in
  let heads = Array.make n None in
  if Array.length lanes > 0 then begin
    let problems =
      Array.map
        (fun j ->
          match prepared.(j) with
          | Dispatch { problem; _ } -> problem
          | Skip _ -> assert false)
        lanes
    in
    (* a 1-domain pool buys no parallelism but pays a dispatch per
       lockstep sweep — run those sweeps inline (bit-identical either
       way; pinned by the pool-vs-sequential differential test) *)
    let mode =
      match t.pool with
      | Some pool when Dadu_util.Domain_pool.size pool > 1 ->
        Megabatch.Parallel pool
      | Some _ | None -> Megabatch.Sequential
    in
    let results = Megabatch.solve_all ~mode mb problems in
    Array.iteri (fun k j -> heads.(j) <- Some results.(k)) lanes;
    Metrics.record_lockstep t.metrics (Array.length lanes)
  end;
  let one j = work t ?trace ?head:heads.(j) prepared.(j) in
  match t.pool with
  | Some pool when Dadu_util.Domain_pool.size pool > 1 ->
    Dadu_util.Domain_pool.map pool (guarded one) n
  | Some _ | None -> Array.init n (guarded one)

let solve_requests ?budget_s ?trace t requests =
  (* snapshot-prepare swaps the per-request serial prepare for the
     three-pass wave prepare; replies are pinned byte-identical either
     way, so the flag is purely a throughput knob *)
  let prepare_wave =
    if t.config.snapshot_prepare then
      Some (prepare_wave t ?budget_s ?trace requests)
    else None
  in
  (* Two waypoints of one session must never share a wave: the later
     one's prepare has to observe the earlier one's serial commit (the
     warm-start slot).  The cut is queried serially in input order and
     depends only on the request array, so wave shapes — and replies —
     stay a pure function of the batch.  Skipped entirely for
     session-free batches: wave shapes there are exactly the classic
     fixed chunks. *)
  let cut =
    if Array.exists (fun rq -> rq.session <> None) requests then
      Some
        (fun ~base i ->
          match requests.(i).session with
          | None -> false
          | Some s ->
            let dup = ref false in
            let j = ref base in
            while (not !dup) && !j < i do
              (match requests.(!j).session with
              | Some s' when s' == s -> dup := true
              | Some _ | None -> ());
              incr j
            done;
            !dup)
    else None
  in
  (* phase hooks: workspace accounting attribution plus the wave-phase
     wall-time breakdown (metrics always; trace spans under a sentinel
     request -1 so per-request span pins stay closed over request ids) *)
  let phase_enter phase =
    Dadu_core.Workspace.set_phase
      (match phase with
      | Scheduler.Prepare -> Dadu_core.Workspace.Prepare
      | Scheduler.Work | Scheduler.Commit -> Dadu_core.Workspace.Work)
  in
  let phase_done phase ~base ~len ~start_s ~dur_s =
    let mphase =
      match phase with
      | Scheduler.Prepare -> Metrics.Prepare
      | Scheduler.Work -> Metrics.Work
      | Scheduler.Commit -> Metrics.Commit
    in
    Metrics.record_phase t.metrics mphase dur_s;
    match trace with
    | None -> ()
    | Some tr ->
      Trace.record tr ~request:(-1)
        ~phase:("phase:" ^ Metrics.phase_name mphase)
        ~attrs:
          [ ("base", string_of_int base); ("len", string_of_int len) ]
        ~start_s ~dur_s ()
  in
  let dispatch =
    (* lockstep is bypassed under fault injection: an injected head
       result would skip the head tier's fault sites and desynchronize
       the per-request fault streams the chaos tests pin *)
    match t.megabatch with
    | Some mb when not (Fault.enabled t.config.fault) ->
      Scheduler.map_lockstep t.scheduler ?budget_s
        ~deadline_s:(fun i -> requests.(i).deadline_s)
        ?cut
        ~prepare:(prepare t ?budget_s ?trace)
        ?prepare_wave ~phase_enter ~phase_done
        ~work_batch:(lockstep_work t ?trace mb)
        ~commit:(commit t ?trace requests)
    | Some _ | None ->
      Scheduler.map_deadlined t.scheduler ?budget_s
        ~deadline_s:(fun i -> requests.(i).deadline_s)
        ?cut
        ~prepare:(prepare t ?budget_s ?trace)
        ?prepare_wave ~phase_enter ~phase_done
        ~work:(work t ?trace)
        ~commit:(commit t ?trace requests)
  in
  dispatch requests
  |> Array.map (function
       | Ok reply -> reply
       | Error exn -> Faulted (Printexc.to_string exn))

let solve_batch t problems =
  solve_requests t
    (Array.map
       (fun problem ->
         { problem; deadline_s = None; session = None; ordinal = None })
       problems)

let seed_cache t = t.cache

let metrics t = Metrics.snapshot t.metrics

let render_metrics t = Metrics.render (metrics t)

let reset_metrics t = Metrics.reset t.metrics

let cache_length t = Seed_cache.length t.cache
