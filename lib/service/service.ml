open Dadu_core
open Dadu_kinematics

type config = {
  solvers : Fallback.kind list;
  speculations : int;
  accuracy : float;
  max_iterations : int;
  time_budget_s : float option;
  warm_start : bool;
  cache_cell_m : float;
  cache_capacity : int;
  chunk : int;
}

let default_config =
  {
    solvers = [ Fallback.Quick_ik; Fallback.Dls; Fallback.Sdls ];
    speculations = 64;
    accuracy = 1e-2;
    max_iterations = 2_000;
    time_budget_s = None;
    warm_start = true;
    cache_cell_m = 0.05;
    cache_capacity = 4096;
    chunk = 64;
  }

type t = {
  config : config;
  ik_config : Ik.config;
  scheduler : Scheduler.t;
  cache : Seed_cache.t;
  metrics : Metrics.t;
}

let create ?pool ?(config = default_config) () =
  if config.solvers = [] then invalid_arg "Service.create: empty solver chain";
  if config.speculations <= 0 then
    invalid_arg "Service.create: speculations must be positive";
  if config.max_iterations <= 0 then
    invalid_arg "Service.create: max_iterations must be positive";
  if not (config.accuracy > 0.) then
    invalid_arg "Service.create: accuracy must be positive";
  {
    config;
    ik_config =
      {
        Ik.accuracy = config.accuracy;
        max_iterations = config.max_iterations;
        stall_iterations = None;
      };
    scheduler = Scheduler.create ?pool ~chunk:config.chunk ();
    (* Seed_cache.create and Scheduler.create validate their own fields *)
    cache = Seed_cache.create ~capacity:config.cache_capacity ~cell_size:config.cache_cell_m ();
    metrics = Metrics.create ();
  }

let config t = t.config

type reply =
  | Solved of {
      result : Ik.result;
      solver : Fallback.kind;
      fallbacks : int;
      cache_hit : bool;
      latency_s : float;
    }
  | Rejected of Ik.invalid
  | Faulted of string

(* what the serial prepare phase hands to the parallel wave *)
type prepared =
  | Dispatch of { problem : Ik.problem; cache_hit : bool }
  | Skip of Ik.invalid

let prepare t _i p =
  match Ik.validate p with
  | Error invalid -> Skip invalid
  | Ok () ->
    if not t.config.warm_start then Dispatch { problem = p; cache_hit = false }
    else begin
      let dof = Chain.dof p.Ik.chain in
      match Seed_cache.find t.cache ~dof p.Ik.target with
      | None -> Dispatch { problem = p; cache_hit = false }
      | Some seed ->
        (* a neighbour solved on a *different* chain with the same DOF is
           still a legal warm start once clamped to this chain's limits *)
        let theta0 = Chain.clamp_config p.Ik.chain seed in
        Dispatch { problem = { p with Ik.theta0 }; cache_hit = true }
    end

let work t prep =
  match prep with
  | Skip invalid -> Rejected invalid
  | Dispatch { problem; cache_hit } ->
    let t0 = Unix.gettimeofday () in
    let outcome =
      Fallback.run ~speculations:t.config.speculations
        ?time_budget_s:t.config.time_budget_s ~chain:t.config.solvers
        ~config:t.ik_config problem
    in
    Solved
      {
        result = outcome.Fallback.result;
        solver = outcome.Fallback.solver;
        fallbacks = outcome.Fallback.fallbacks;
        cache_hit;
        latency_s = Unix.gettimeofday () -. t0;
      }

let commit t problems i = function
  | Error exn ->
    Metrics.record t.metrics (Metrics.Faulted (Printexc.to_string exn))
  | Ok (Rejected invalid) -> Metrics.record t.metrics (Metrics.Rejected invalid)
  | Ok (Faulted msg) -> Metrics.record t.metrics (Metrics.Faulted msg)
  | Ok (Solved { result; fallbacks; cache_hit; latency_s; _ }) ->
    let converged = result.Ik.status = Ik.Converged in
    if converged then begin
      let p = problems.(i) in
      Seed_cache.store t.cache
        ~dof:(Chain.dof p.Ik.chain)
        ~target:p.Ik.target result.Ik.theta
    end;
    Metrics.record t.metrics
      (Metrics.Solved
         {
           converged;
           fallbacks;
           cache_hit;
           latency_s;
           iterations = result.Ik.iterations;
         })

let solve_batch t problems =
  Scheduler.map_chunked t.scheduler ~prepare:(prepare t) ~work:(work t)
    ~commit:(commit t problems) problems
  |> Array.map (function
       | Ok reply -> reply
       | Error exn -> Faulted (Printexc.to_string exn))

let metrics t = Metrics.snapshot t.metrics

let render_metrics t = Metrics.render (metrics t)

let reset_metrics t = Metrics.reset t.metrics

let cache_length t = Seed_cache.length t.cache
