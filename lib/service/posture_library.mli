open Dadu_linalg
open Dadu_kinematics

(** Per-chain posture bank for speculative seed starts.

    IKSel's observation is that the seed joint vector dominates numerical
    IK iteration counts; the FABRIK-hybrid line shows geometric
    initialization beats cold starts.  A posture library turns both into a
    lookup: [count] joint configurations sampled deterministically from a
    seeded RNG (uniform within joint limits, the same distribution the
    bench targets are drawn from), their end-effector positions indexed on
    a uniform grid over the reachable workspace.  At serve time the
    nearest-neighbour posture of the request target becomes one of the
    speculative seed candidates ({!Seed_select}).

    Lookup is exact nearest-neighbour: cells are scanned in expanding
    Chebyshev rings around the query cell and the scan stops once no
    unvisited ring can beat the best distance found, so the result is the
    true argmin — identical to a brute-force scan (pinned by differential
    test) — while touching O(1) cells for dense libraries.  Ties break to
    the lowest posture index, matching the brute-force oracle exactly.

    The grid is CSR over the bounding box of the sampled positions
    (cell-start offsets into one flat index array), so steady-state
    lookups allocate nothing.

    Libraries persist as flat binary files with a versioned header and a
    trailing FNV-1a checksum; {!load} rejects corrupted, truncated or
    version-mismatched files with typed errors and round-trips bit
    identically ({!save} followed by {!load} reproduces every float's
    IEEE-754 bits). *)

type t

val build :
  ?cell_size:float -> ?seed:int -> chain:Chain.t -> count:int -> unit -> t
(** [build ~chain ~count ()] samples [count] postures with
    {!Dadu_kinematics.Target.random_config} from [Rng.create seed]
    (default seed 42) and indexes their FK positions.  [cell_size]
    defaults to [reach/8] (1 m when the reach is unbounded).  The result
    is a pure function of (chain, count, seed, cell_size).  Raises
    [Invalid_argument] on a non-positive count, a non-positive or
    non-finite cell size, or a cell size so small the position bounding
    box exceeds the grid budget. *)

val chain_name : t -> string
(** Name of the chain the library was built for (informational). *)

val fingerprint : t -> int
(** {!Chain.fingerprint} of the chain the library was built for. *)

val dof : t -> int

val size : t -> int
(** Number of postures. *)

val cell_size : t -> float

val matches : t -> Chain.t -> bool
(** Structural identity: the library seeds only chains whose
    [Chain.fingerprint] (and DOF) equal the one it was built from. *)

val posture : t -> int -> Vec.t
(** Posture [i] (fresh copy).  Raises [Invalid_argument] out of range. *)

val blit_posture : t -> int -> Vec.t -> unit
(** Copy posture [i] into a caller buffer of length [dof].
    Allocation-free.  Raises [Invalid_argument] out of range or on a
    wrong-length destination. *)

val blit_posture_into : t -> int -> Vec.t -> pos:int -> unit
(** Copy posture [i] into [dst.(pos .. pos+dof-1)] — the row-offset form
    {!blit_posture} for callers packing postures into a flat candidate
    plane.  Allocation-free.  Raises [Invalid_argument] out of range or
    when the row does not fit. *)

val position : t -> int -> Vec3.t
(** End-effector position of posture [i] (allocates the record). *)

val nearest_index : t -> x:float -> y:float -> z:float -> int
(** Index of the posture whose end-effector position is closest
    (Euclidean) to the query, ties to the lowest index; [-1] when the
    query is non-finite.  Exact (differentially pinned against the
    brute-force scan).  Allocation-free. *)

val nearest : t -> Vec3.t -> (Vec.t * float) option
(** Nearest posture (fresh copy) and its end-effector distance to the
    query; [None] when the query is non-finite. *)

(** {1 Persistence} *)

type load_error =
  | Io of string  (** file unreadable/unwritable *)
  | Bad_magic  (** not a posture-library file *)
  | Unsupported_version of int  (** header version this build cannot read *)
  | Truncated  (** shorter than its header promises *)
  | Checksum_mismatch  (** payload bytes corrupted *)
  | Malformed of string  (** header fields inconsistent *)

val pp_load_error : Format.formatter -> load_error -> unit

val save : t -> string -> (unit, load_error) result
(** Write the library (flat binary, little-endian, versioned header,
    trailing FNV-1a checksum).  Only [Io] errors are possible. *)

val load : string -> (t, load_error) result
(** Read a library written by {!save}.  The grid is rebuilt from the
    stored positions (deterministically), so [load] after [save] is
    bit-identical to the original in every posture and position. *)
