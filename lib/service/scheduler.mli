(** Request scheduler: positionally deterministic, deadline-aware batch
    dispatch.

    Shards heterogeneous work arrays across a {!Dadu_util.Domain_pool},
    in fixed-size chunks, with three guarantees the serving layer builds
    on:

    - {b positional}: result [i] always corresponds to input [i];
    - {b deterministic}: serial [prepare]/[commit] phases run in input
      order between parallel waves, so stateful per-batch logic (the seed
      cache, metrics) observes the same interleaving whatever the pool
      size — including no pool at all;
    - {b contained}: an exception thrown by a work item is captured as
      that item's [Error], never escaping a worker domain or poisoning
      the rest of the batch.

    Deadlines ride on the same structure: expiry against per-request
    deadlines and the batch time budget is decided in the {e serial}
    prepare phase, so which requests are short-circuited never depends on
    worker scheduling — only on the clock. *)

type t

val create : ?pool:Dadu_util.Domain_pool.t -> ?chunk:int -> unit -> t
(** [chunk] (default 64, positive) is the wave size: each wave is
    prepared serially, solved in parallel, committed serially.  Without
    [pool] everything runs on the caller. *)

val chunk_size : t -> int

val parallelism : t -> int
(** Pool size, or 1 without a pool. *)

val map : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Plain positional parallel map with per-item exception capture (a
    single wave; chunking irrelevant). *)

type dispatch = {
  index : int;  (** position of the request in the batch *)
  elapsed_s : float;  (** since the batch started, at prepare time *)
  expired : bool;
      (** the batch budget is exhausted or this request's deadline has
          passed; the caller's [prepare] should route it to its cheapest
          handling *)
}

type wave_phase = Prepare | Work | Commit
(** The three phases of one scheduler wave, in order.  [Prepare] and
    [Commit] run on the orchestrating domain (though a wave-grained
    prepare may fan work out itself); [Work] is the pool phase. *)

val map_deadlined :
  t ->
  ?now:(unit -> float) ->
  ?budget_s:float ->
  ?deadline_s:(int -> float option) ->
  ?cut:(base:int -> int -> bool) ->
  ?prepare_wave:(dispatch array -> 'p array) ->
  ?phase_enter:(wave_phase -> unit) ->
  ?phase_done:
    (wave_phase -> base:int -> len:int -> start_s:float -> dur_s:float -> unit) ->
  prepare:(dispatch -> 'a -> 'p) ->
  work:('p -> 'b) ->
  commit:(int -> ('b, exn) result -> unit) ->
  'a array ->
  ('b, exn) result array
(** For each chunk, in input order: [prepare] serially for each item,
    then [work] over the prepared chunk (in parallel when a pool is
    present), then [commit i result] serially for each item.  [prepare]
    for chunk [k+1] therefore observes every [commit] of chunk [k] — the
    warm-start window of the serving layer.  Exceptions from [prepare] or
    [commit] propagate to the caller (they run on the caller's domain);
    exceptions from [work] are captured per item.

    [dispatch.expired] is true once [elapsed_s] reaches [budget_s] or the
    item's own [deadline_s index] (both measured from the first prepare,
    inclusive: a 0-second deadline expires immediately, whatever the
    clock's resolution).  With neither given, [expired] is always false
    and results cannot depend on the clock.  [now] (default
    {!Dadu_util.Trace.now_s}) exists so tests can drive expiry
    deterministically.

    [cut], when given, can end a wave early: a wave starting at [base]
    stops before the first item [i] (with [base < i < base + chunk])
    for which [cut ~base i] is true, so that item starts the next wave
    and its prepare observes the commits of everything before it.  The
    serving layer uses this to order a trajectory session's waypoints:
    a waypoint landing in the same wave as an earlier waypoint of the
    same session must see its committed solution (the session seed
    slot).  [cut] is queried serially in input order, so wave shapes —
    and therefore results — are a pure function of the input array,
    never of the pool size or the clock.

    [prepare_wave], when given, replaces the per-item [prepare] calls:
    the wave's dispatches are still built serially in input order — one
    clock read each, {e before} any prepare work runs, so expiry
    decisions are the wave-start snapshot of the clock — and handed to
    the caller whole ([dispatch.index] addresses the caller's own input
    array).  It must return one prepared value per dispatch,
    positionally; a wrong arity raises.  With no deadlines or budget the
    dispatch values are clock-independent, so the two prepare shapes are
    interchangeable; the serving layer pins its replies byte-identical
    across both.

    [phase_enter]/[phase_done] observe each wave's phases from the
    orchestrating domain: [phase_enter p] immediately before phase [p],
    [phase_done p ~base ~len ~start_s ~dur_s] immediately after, with
    wall times from the real monotonic clock (never [now], so a fake
    clock's reading budget is unaffected).  Both must not raise; they
    exist for phase accounting (metrics, workspace attribution, trace
    spans). *)

val map_lockstep :
  t ->
  ?now:(unit -> float) ->
  ?budget_s:float ->
  ?deadline_s:(int -> float option) ->
  ?cut:(base:int -> int -> bool) ->
  ?prepare_wave:(dispatch array -> 'p array) ->
  ?phase_enter:(wave_phase -> unit) ->
  ?phase_done:
    (wave_phase -> base:int -> len:int -> start_s:float -> dur_s:float -> unit) ->
  prepare:(dispatch -> 'a -> 'p) ->
  work_batch:('p array -> ('b, exn) result array) ->
  commit:(int -> ('b, exn) result -> unit) ->
  'a array ->
  ('b, exn) result array
(** {!map_deadlined} with batch-grained work: each prepared chunk is
    handed {e whole} to [work_batch], which owns its parallelism (the
    lockstep mega-batch sweeps the chunk as lanes; see
    {!Dadu_core.Megabatch}).  Serial prepare/commit phases, chunk
    boundaries, deadline expiry, and positional guarantees are identical
    to {!map_deadlined} — only the work phase changes shape.
    [work_batch] must return one result per prepared item, positionally;
    a wrong arity or a raised exception marks {e every} item of the
    chunk as [Error] (per-item containment is [work_batch]'s job). *)

val map_chunked :
  t ->
  prepare:(int -> 'a -> 'p) ->
  work:('p -> 'b) ->
  commit:(int -> ('b, exn) result -> unit) ->
  'a array ->
  ('b, exn) result array
(** {!map_deadlined} without deadlines: [prepare] receives only the
    index. *)
