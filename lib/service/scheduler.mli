(** Request scheduler: positionally deterministic batch dispatch.

    Shards heterogeneous work arrays across a {!Dadu_util.Domain_pool},
    in fixed-size chunks, with three guarantees the serving layer builds
    on:

    - {b positional}: result [i] always corresponds to input [i];
    - {b deterministic}: serial [prepare]/[commit] phases run in input
      order between parallel waves, so stateful per-batch logic (the seed
      cache, metrics) observes the same interleaving whatever the pool
      size — including no pool at all;
    - {b contained}: an exception thrown by a work item is captured as
      that item's [Error], never escaping a worker domain or poisoning
      the rest of the batch. *)

type t

val create : ?pool:Dadu_util.Domain_pool.t -> ?chunk:int -> unit -> t
(** [chunk] (default 64, positive) is the wave size: each wave is
    prepared serially, solved in parallel, committed serially.  Without
    [pool] everything runs on the caller. *)

val chunk_size : t -> int

val parallelism : t -> int
(** Pool size, or 1 without a pool. *)

val map : t -> ('a -> 'b) -> 'a array -> ('b, exn) result array
(** Plain positional parallel map with per-item exception capture (a
    single wave; chunking irrelevant). *)

val map_chunked :
  t ->
  prepare:(int -> 'a -> 'p) ->
  work:('p -> 'b) ->
  commit:(int -> ('b, exn) result -> unit) ->
  'a array ->
  ('b, exn) result array
(** For each chunk, in input order: [prepare i x] serially for each item,
    then [work] over the prepared chunk (in parallel when a pool is
    present), then [commit i result] serially for each item.  [prepare]
    for chunk [k+1] therefore observes every [commit] of chunk [k] — the
    warm-start window of the serving layer.  Exceptions from [prepare] or
    [commit] propagate to the caller (they run on the caller's domain);
    exceptions from [work] are captured per item. *)
