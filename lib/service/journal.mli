(** Crash-safe session journal: the `dadu serve --journal` write-ahead
    log.

    An append-only stream of length-prefixed, FNV-1a-checksummed records
    behind a [DADUJRNL] magic+version header — {!Posture_library}'s
    format discipline, record-oriented so a SIGKILL can only tear the
    tail.  The server appends one record per session lifecycle event
    (open / waypoint commit / close) and flushes {e before} writing the
    reply frame; replaying the journal at startup therefore rebuilds
    the {!Session} registry (ordinal counter, warm-start slot, recent
    reply ring) exactly as an uninterrupted server would hold it, which
    is what makes post-restart replies byte-identical (DESIGN.md §16).

    Recovery never trusts the tail: {!load} stops at the first defect,
    reports it as a typed {!load_error}, and returns the longest valid
    prefix; {!open_} additionally truncates the file back to that
    prefix so subsequent appends extend a well-formed log. *)

type record =
  | Opened of { session : string; robot : string; chain_fp : int; dof : int }
      (** a session was created: the robot spec is stored so replay can
          rebuild the chain, the fingerprint guards against the spec
          resolving differently (e.g. an edited robot file) *)
  | Committed of {
      session : string;
      ordinal : int;  (** the waypoint's stable ordinal *)
      theta : float array option;
          (** the converged joint vector stored in the session slot;
              [None] when the solve did not converge (slot untouched) *)
      reply : string;
          (** the exact reply frame payload, byte-for-byte — replayed
              verbatim when a reconnecting client resends an
              already-committed waypoint *)
    }
  | Closed of { session : string }

type load_error =
  | Io of string
  | Bad_magic
  | Unsupported_version of int
  | Truncated  (** the file ends inside a record (torn tail) *)
  | Checksum_mismatch
  | Malformed of string

val pp_load_error : Format.formatter -> load_error -> unit

val load : string -> (record list * load_error option, load_error) result
(** [load path] decodes the longest valid record prefix.  [Error] only
    for file-level defects (unreadable, bad magic, bad version, file
    shorter than the header); a damaged record stream yields
    [Ok (prefix, Some defect)] with the first defect typed.  An intact
    journal is [Ok (records, None)]. *)

type t
(** An open journal positioned for appending.  Appends are serialized
    internally — safe to call from any thread. *)

val open_ : string -> (t * record list * load_error option, load_error) result
(** [open_ path] creates the journal (with header) if missing, else
    loads it as {!load} does, {b truncates} any damaged tail back to
    the valid prefix, and returns the handle positioned at the end
    together with the recovered records. *)

val append : t -> record -> unit
(** Encode, write, and flush one record (the WAL barrier: callers write
    the reply frame only after [append] returns). *)

val appended : t -> int
(** Records appended through this handle (not counting replayed ones). *)

val close : t -> unit
