open Dadu_linalg
open Dadu_kinematics

(** Trajectory-tracking session state: the temporal warm-start slot.

    A session follows one client streaming Cartesian waypoints for one
    robot (the forward-dynamics tracking workload of Scherzinger et al.).
    Its heart is a single seed slot holding the {e previous waypoint's}
    converged joint vector: successive waypoints are close in workspace,
    so warm-starting each solve from the last solution drops Quick-IK
    from tens of iterations to a handful (pinned by the session bench
    entries and the serving tests).

    Determinism contract: the slot is read only in the scheduler's serial
    prepare phase and written only in its serial commit phase, in request
    ordinal order ({!Service} enforces a wave cut so two waypoints of the
    same session never share a wave).  A session's replies are therefore
    a pure function of its own waypoint sequence — independent of pool
    size, lockstep/snapshot execution modes, and of how other sessions'
    requests interleave with it (DESIGN.md §15).  Session requests bypass
    the shared {!Seed_cache} entirely: the slot {e is} the cache, scoped
    to the trajectory, which is what makes the independence argument
    hold.

    Not thread-safe: mutate only from the scheduler's serial phases (the
    slot) or from a single enqueue thread ({!next_ordinal}). *)

type t

val create : name:string -> chain:Chain.t -> t
(** A fresh, cold session for [chain].  [name] is only a label. *)

val restore :
  name:string ->
  chain:Chain.t ->
  committed:int ->
  warm:int ->
  slot:Vec.t option ->
  t
(** Rebuild a session from journal replay: the ordinal counter resumes
    at [committed] (ordinals handed out but never committed before the
    crash are reissued to the resending client), the waypoint counter
    matches it, and [slot] (copied) is the last converged configuration
    — exactly the state an uninterrupted server would hold with
    in-flight work excluded, which is what makes post-restart replies
    byte-identical (DESIGN.md §16). *)

val name : t -> string

val chain : t -> Chain.t

val waypoints : t -> int
(** Waypoints committed so far. *)

val warm_hits : t -> int
(** Waypoints that were offered the slot (i.e. all but the cold ones). *)

val next_ordinal : t -> int
(** The next waypoint's stable ordinal: 0, 1, 2, … — the enqueue-side
    counter the server assigns so replies are keyed to the session's own
    sequence, not to arrival interleaving. *)

val accepted : t -> int
(** Waypoints accepted (ordinals handed out) so far — unlike
    {!waypoints} this is an enqueue-side count, so it is deterministic
    for a fixed client stream even while solves are in flight. *)

val seed : t -> chain_fp:int -> Vec.t option
(** The slot, if filled by a chain with this fingerprint (else [None]:
    a mismatched robot is served cold rather than risking a wrong-DOF
    seed).  The returned vector is the live slot — callers must copy or
    clamp into their own buffer before the next commit. *)

val store : t -> chain_fp:int -> Vec.t -> unit
(** Overwrite the slot with a converged configuration (copied).  Ignored
    on a fingerprint mismatch.  Call only from the serial commit phase. *)

val record : t -> warm:bool -> unit
(** Count one committed waypoint ([warm] when the slot was offered). *)

val remember_reply : t -> ordinal:int -> string -> unit
(** Retain the committed reply bytes for [ordinal] in a bounded ring
    (the last 128 commits) so a reconnecting client resending an
    already-committed waypoint can be answered verbatim instead of
    solved twice.  Call from the server's serial delivery path, under
    the same lock as {!recall_reply}. *)

val recall_reply : t -> ordinal:int -> string option
(** The retained reply for [ordinal], if still within the ring. *)

val clear : t -> unit
(** Drop the slot (the session goes cold; counters are kept). *)
