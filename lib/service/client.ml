module Pf = Problem_file
module Json = Dadu_util.Json
module Fault = Dadu_util.Fault
module Rng = Dadu_util.Rng

type error = Connect of string | Unrecovered of string

type outcome = {
  solves : (int * string) list;
  overloaded : int;
  reconnects : int;
}

(* ---- payload encoding ------------------------------------------------- *)

let payload_of_op ?seq id = function
  | Pf.Hello { tenant } ->
    Printf.sprintf "{\"op\":\"hello\",\"tenant\":%S}" tenant
  | Pf.Ping -> "{\"op\":\"ping\"}"
  | Pf.Stats -> "{\"op\":\"stats\"}"
  | Pf.Raw body -> body
  | Pf.Open { session; robot } ->
    Printf.sprintf "{\"op\":\"open\",\"id\":%d,\"session\":%S,\"robot\":%S}" id
      session robot
  | Pf.Close { session } ->
    Printf.sprintf "{\"op\":\"close\",\"id\":%d,\"session\":%S}" id session
  | Pf.Waypoint { session; x; y; z } ->
    let seqpart =
      match seq with
      | None -> ""
      | Some k -> Printf.sprintf ",\"seq\":%d" k
    in
    Printf.sprintf
      "{\"op\":\"waypoint\",\"id\":%d,\"session\":%S,\"target\":[%.17g,%.17g,%.17g]%s}"
      id session x y z seqpart
  | Pf.Solve { robot; x; y; z; theta0; deadline_s } ->
    let theta0 =
      match theta0 with
      | None -> ""
      | Some ts ->
        Printf.sprintf ",\"theta0\":[%s]"
          (String.concat "," (List.map (Printf.sprintf "%.17g") ts))
    in
    let deadline =
      match deadline_s with
      | None -> ""
      | Some d -> Printf.sprintf ",\"deadline\":%.17g" d
    in
    Printf.sprintf
      "{\"op\":\"solve\",\"id\":%d,\"robot\":%S,\"target\":[%.17g,%.17g,%.17g]%s%s}"
      id robot x y z theta0 deadline

(* solve-type replies are keyed by id and dumped sorted; everything else
   (control replies, typed errors) is surfaced in arrival order — which
   is request order, because the server answers control ops from the
   connection's own reader thread *)
let reply_is_solve_type payload =
  match Json.of_string payload with
  | Error _ -> None
  | Ok json ->
    (match Option.bind (Json.member "reply" json) Json.to_str with
    | Some ("solved" | "rejected" | "faulted" | "overloaded") ->
      Option.bind (Json.member "id" json) (fun j ->
          Option.map int_of_float (Json.to_float j))
    | Some _ | None -> None)

(* ---- resilient op-stream driver --------------------------------------- *)

(* prelude re-opens after a reconnect use ids far above any script index
   so their replies are recognized and swallowed, never confused with a
   script op's reply *)
let prelude_id_base = 1_000_000

let op_session = function
  | Pf.Open { session; _ } | Pf.Waypoint { session; _ } | Pf.Close { session }
    ->
    Some session
  | Pf.Hello _ | Pf.Ping | Pf.Stats | Pf.Raw _ | Pf.Solve _ -> None

let op_idless = function
  | Pf.Hello _ | Pf.Ping | Pf.Stats | Pf.Raw _ -> true
  | Pf.Open _ | Pf.Waypoint _ | Pf.Close _ | Pf.Solve _ -> false

let run ?(retries = 0) ?(backoff_ms = 100) ?(seed = 0) ?read_timeout_s
    ?(fault = Fault.disabled) ?(on_event = fun (_ : string) -> ())
    ?(on_reconnect = fun (_ : int) -> ()) ~connect (ops : Pf.op array) =
  (* A server-side cut can land between our write and the kernel noticing
     the peer is gone; without this the second write raises SIGPIPE and
     kills the process before the Sys_error handler in [send] runs. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let n = Array.length ops in
  let op_done = Array.make n false in
  let solves = Hashtbl.create 64 in
  (* per-session waypoint index within the script: the client-side seq
     that makes resends idempotent (DESIGN.md §16).  A close starts a
     fresh "epoch" for its session name — the server-side counter
     restarts at zero when the name is re-opened, so the client's must
     too, and the seq base learned from one epoch's opened reply never
     leaks into the next. *)
  let wseq = Array.make n 0 in
  let epochs = Array.make n 0 in
  let counts = Hashtbl.create 4 in
  let closes = Hashtbl.create 4 in
  Array.iteri
    (fun i op ->
      (match op_session op with
      | Some s ->
        epochs.(i) <-
          (match Hashtbl.find_opt closes s with Some e -> e | None -> 0)
      | None -> ());
      match op with
      | Pf.Waypoint { session; _ } ->
        let k =
          match Hashtbl.find_opt counts session with Some k -> k | None -> 0
        in
        wseq.(i) <- k;
        Hashtbl.replace counts session (k + 1)
      | Pf.Close { session } ->
        Hashtbl.replace counts session 0;
        Hashtbl.replace closes session
          (1
          + match Hashtbl.find_opt closes session with Some e -> e | None -> 0)
      | _ -> ())
    ops;
  (* the script index of the open op governing each session epoch: a
     waypoint is held back until its open is answered (one round-trip
     per session), so the seq base below is always known before any
     waypoint leaves — without it, a lost opened reply would make
     resent waypoints unnumberable and they would re-solve under fresh
     ordinals *)
  let open_idx = Hashtbl.create 4 in
  Array.iteri
    (fun i op ->
      match op with
      | Pf.Open { session; _ }
        when not (Hashtbl.mem open_idx (session, epochs.(i))) ->
        Hashtbl.replace open_idx (session, epochs.(i)) i
      | _ -> ())
    ops;
  (* seq base per session epoch: the "waypoints" count of that epoch's
     FIRST opened reply — never rebased on a prelude re-open, so the
     client's own numbering stays aligned with the server's committed
     ordinals even across a server restart.  An open answered with a
     typed error records base 0 so its epoch's waypoints are not held
     back forever (the server answers them with unknown-session). *)
  let base = Hashtbl.create 4 in
  let record_base idx payload =
    match ops.(idx) with
    | Pf.Open { session; _ } when not (Hashtbl.mem base (session, epochs.(idx)))
      ->
      let w =
        match Json.of_string payload with
        | Error _ -> 0
        | Ok json ->
          (match Option.bind (Json.member "waypoints" json) Json.to_float with
          | Some w -> int_of_float w
          | None -> 0)
      in
      Hashtbl.replace base (session, epochs.(idx)) w
    | _ -> ()
  in
  let seq_of i =
    match ops.(i) with
    | Pf.Waypoint { session; _ } ->
      (match Hashtbl.find_opt base (session, epochs.(i)) with
      | Some b -> Some (b + wseq.(i))
      | None -> None)
    | _ -> None
  in
  let all_done () = Array.for_all Fun.id op_done in
  let rng = Rng.create seed in
  let reconnects = ref 0 in
  let consecutive_failures = ref 0 in
  let backoff () =
    if backoff_ms > 0 then begin
      let shift = min !consecutive_failures 6 in
      let base_ms = backoff_ms * (1 lsl shift) in
      let jitter = Rng.int rng (backoff_ms + 1) in
      Unix.sleepf (float_of_int (min (base_ms + jitter) 10_000) /. 1000.)
    end
  in
  (* one connection attempt: send the prelude (when resuming) plus every
     unanswered op, then read until all ops are answered or the wire
     fails.  Returns [`Finished] or [`Conn_failed msg]. *)
  let attempt_no = ref 0 in
  let attempt () =
    match connect () with
    | Error msg -> `Connect_failed msg
    | Ok fd ->
      let k = !attempt_no in
      incr attempt_no;
      let rfault = Fault.fork fault (2 * k) in
      let wfault = Fault.fork fault ((2 * k) + 1) in
      let oc = Unix.out_channel_of_descr fd in
      let reader = Pf.frame_reader fd in
      let resuming = Array.exists Fun.id op_done in
      (* idless replies (hello/pong/stats and raw-payload errors) carry
         no id; the server answers them in request order, so a FIFO of
         outstanding idless script ops attributes them.  Prelude replies
         are counted separately and swallowed. *)
      let idless_fifo = Queue.create () in
      let prelude_idless = ref 0 in
      let wrote_ok = ref true in
      let send payload =
        if !wrote_ok then
          match Pf.write_frame_injected ~fault:wfault oc payload with
          | true -> ()
          | false -> wrote_ok := false
          | exception (Sys_error _ | Unix.Unix_error _) -> wrote_ok := false
      in
      if resuming then begin
        (* replay the connection prelude: the last acknowledged hello
           (tenant is per-connection state) and a re-open for every
           session that still has unanswered waypoints — idempotent
           against a journal-replayed server, which answers
           resumed=true.  A session whose only pending op is its close
           is NOT re-opened: the close either still reaches the live
           session or gets a typed unknown-session error. *)
        let last_hello = ref None in
        Array.iteri
          (fun i op ->
            match op with
            | Pf.Hello _ when op_done.(i) -> last_hello := Some i
            | _ -> ())
          ops;
        (match !last_hello with
        | Some i ->
          incr prelude_idless;
          send (payload_of_op i ops.(i))
        | None -> ());
        let reopened = Hashtbl.create 4 in
        Array.iteri
          (fun i op ->
            match op with
            | Pf.Open { session; _ } when op_done.(i) ->
              let pending_waypoints =
                let found = ref false in
                Array.iteri
                  (fun j o ->
                    match o with
                    | Pf.Waypoint _
                      when (not op_done.(j))
                           && op_session o = Some session
                           && epochs.(j) = epochs.(i) ->
                      found := true
                    | _ -> ())
                  ops;
                !found
              in
              if
                pending_waypoints
                && not (Hashtbl.mem reopened (session, epochs.(i)))
              then begin
                Hashtbl.replace reopened (session, epochs.(i)) ();
                send (payload_of_op (prelude_id_base + i) op)
              end
            | _ -> ())
          ops;
        (try flush oc with Sys_error _ -> wrote_ok := false)
      end;
      (* a close is a barrier: it is written only once every earlier op
         of its session epoch is answered, so a committed close can
         never leave waypoint replies in limbo behind it — the wire
         failure modes then all reduce to "resend, server replays" *)
      let cursor = ref 0 in
      let sendable i =
        match ops.(i) with
        | Pf.Close { session } ->
          let ok = ref true in
          for j = 0 to i - 1 do
            if
              (not op_done.(j))
              && op_session ops.(j) = Some session
              && epochs.(j) = epochs.(i)
            then ok := false
          done;
          !ok
        | Pf.Waypoint { session; _ } ->
          (* held until the epoch's open is answered and the seq base
             recorded; a waypoint with no preceding open is sent as-is
             (the server answers it with a typed unknown-session) *)
          (match Hashtbl.find_opt open_idx (session, epochs.(i)) with
          | Some j when j < i -> op_done.(j)
          | Some _ | None -> true)
        | _ -> true
      in
      let pump () =
        let wrote = ref false in
        let blocked = ref false in
        while (not !blocked) && !cursor < n do
          let i = !cursor in
          if op_done.(i) then incr cursor
          else if sendable i then begin
            if op_idless ops.(i) then Queue.add i idless_fifo;
            send (payload_of_op ?seq:(seq_of i) i ops.(i));
            wrote := true;
            incr cursor
          end
          else blocked := true
        done;
        if !wrote then try flush oc with Sys_error _ -> wrote_ok := false
      in
      pump ();
      let failed = ref None in
      let finished = ref (all_done ()) in
      while Option.is_none !failed && not !finished do
        if Fault.fires rfault ~site:Fault.net_cut () <> None then
          failed := Some "injected net-cut"
        else
          match
            Pf.read_frame_fd ?idle_timeout_s:read_timeout_s
              ?frame_timeout_s:read_timeout_s reader
          with
          | exception (Sys_error _ | Unix.Unix_error _) ->
            failed := Some "read failed"
          | Pf.Eof -> failed := Some "connection closed"
          | Pf.Timed_out _ -> failed := Some "read timeout"
          | Pf.Frame_error msg -> failed := Some msg
          | Pf.Frame payload ->
            consecutive_failures := 0;
            let json = Json.of_string payload in
            let reply_type =
              match json with
              | Error _ -> None
              | Ok j -> Option.bind (Json.member "reply" j) Json.to_str
            in
            let id =
              match json with
              | Error _ -> None
              | Ok j ->
                Option.bind (Json.member "id" j) (fun v ->
                    Option.map int_of_float (Json.to_float v))
            in
            (match (reply_type, id) with
            | Some "busy", _ ->
              (* typed refusal at the server's connection cap: back off
                 and retry the whole connection *)
              failed := Some "server busy"
            | _, Some id when id >= prelude_id_base ->
              (* prelude re-open acknowledged; nothing to surface *)
              record_base (id - prelude_id_base) payload
            | _, Some id when id >= 0 && id < n ->
              if not op_done.(id) then begin
                op_done.(id) <- true;
                record_base id payload;
                match reply_is_solve_type payload with
                | Some sid -> Hashtbl.replace solves sid payload
                | None -> on_event payload
              end
            | _ ->
              (* no usable id: a prelude hello reply, or the oldest
                 outstanding idless script op's answer *)
              if !prelude_idless > 0 then decr prelude_idless
              else (
                match Queue.take_opt idless_fifo with
                | Some i ->
                  op_done.(i) <- true;
                  on_event payload
                | None -> on_event payload));
            pump ();
            if all_done () then finished := true
      done;
      (try Unix.close fd with Unix.Unix_error _ -> ());
      if !finished then `Finished
      else `Conn_failed (Option.value ~default:"connection lost" !failed)
  in
  let rec drive budget =
    match attempt () with
    | `Finished ->
      let ids =
        List.sort compare (Hashtbl.fold (fun k _ a -> k :: a) solves [])
      in
      let pairs = List.map (fun id -> (id, Hashtbl.find solves id)) ids in
      let overloaded =
        List.fold_left
          (fun acc (_, p) ->
            match Json.of_string p with
            | Ok j
              when Option.bind (Json.member "reply" j) Json.to_str
                   = Some "overloaded" ->
              acc + 1
            | _ -> acc)
          0 pairs
      in
      Ok { solves = pairs; overloaded; reconnects = !reconnects }
    | `Connect_failed msg ->
      if !reconnects = 0 && not (Array.exists Fun.id op_done) then
        Error (Connect msg)
      else if budget > 0 then begin
        incr consecutive_failures;
        incr reconnects;
        on_reconnect !reconnects;
        backoff ();
        drive (budget - 1)
      end
      else Error (Unrecovered msg)
    | `Conn_failed msg ->
      if budget > 0 then begin
        incr consecutive_failures;
        incr reconnects;
        on_reconnect !reconnects;
        backoff ();
        drive (budget - 1)
      end
      else Error (Unrecovered msg)
  in
  if n = 0 then Ok { solves = []; overloaded = 0; reconnects = 0 }
  else drive retries
