open Dadu_core

(** The batched IK serving layer: scheduler → seed cache → solver chain →
    metrics, with per-request deadlines and tracing.

    One {!t} is a long-lived server object: it owns a warm-start
    {!Seed_cache}, a {!Metrics} registry accumulating across batches, and
    a {!Scheduler} over an optional caller-owned domain pool.  Each
    {!solve_requests} call:

    + validates every problem ({!Ik.validate}) — malformed requests
      become typed {!reply} values, they are never dispatched and no
      exception crosses a domain boundary;
    + looks up warm-start seeds for valid problems and decides deadline
      expiry (serially, in input order) from targets solved in earlier
      batches or earlier chunks of this one;
    + solves each chunk in parallel through the {!Fallback} chain with
      per-attempt iteration budgets — each worker domain reusing its own
      {!Dadu_core.Workspace.local} pool — while requests past their
      deadline or the batch budget short-circuit to the chain's first
      (cheapest) solver alone;
    + stores converged configurations back into the cache and records
      metrics (serially, in input order).

    Results are positionally deterministic: with no deadlines, no batch
    budget and [time_budget_s = None], replies (statuses, joint vectors,
    solver choices, cache hits) are byte-identical whatever the pool
    size, because every cache and metrics mutation happens in the
    scheduler's serial phases and expiry cannot trigger (DESIGN.md §10).

    When a {!Dadu_util.Trace.t} is supplied, every request contributes
    monotonic-clock spans — [prepare], one [fallback-tier] per solver
    attempt, [solve], [commit] — exportable as JSON lines
    ([dadu serve-batch --trace out.jsonl]).  Each scheduler wave
    additionally emits one [phase:prepare] / [phase:work] /
    [phase:commit] span under the sentinel request [-1] (with [base] and
    [len] attrs), and the same durations accumulate into
    {!Metrics.record_phase} whether or not a trace is attached. *)

type config = {
  solvers : Fallback.kind list;
      (** fallback chain, first = primary; keep it ordered cheapest
          first — past-deadline requests run only the head *)
  speculations : int;  (** Quick-IK speculation count *)
  accuracy : float;  (** position tolerance, meters *)
  max_iterations : int;  (** per solver attempt *)
  time_budget_s : float option;
      (** per-problem wall-clock budget checked between attempts; breaks
          determinism — leave [None] unless serving live traffic *)
  warm_start : bool;  (** consult the seed cache *)
  cache_cell_m : float;  (** seed-cache grid cell side, meters *)
  cache_capacity : int;  (** seed-cache cells before LRU eviction *)
  chunk : int;  (** scheduler wave size *)
  lockstep : bool;
      (** solve each wave's Quick-IK head tier as one lockstep mega-batch
          sweep ({!Dadu_core.Megabatch}) instead of per-request solves.
          Replies are bit-identical to the per-request path (lane
          identity; pinned by test) — only throughput changes.  Waves
          whose head tier is not Quick-IK (breaker-filtered) and batches
          under fault injection fall back to per-request dispatch. *)
  guard : Ik.guard option;
      (** divergence guard threaded into every solver attempt; [None]
          (the default) keeps solver traces bit-identical to the
          unguarded library *)
  fault : Dadu_util.Fault.t;
      (** chaos-testing registry; each request consults its own
          {!Dadu_util.Fault.fork} keyed by the request index, so
          injection is independent of pool size.  Default disabled. *)
  breaker : Breaker.settings option;  (** per-solver circuit breakers *)
  retries : int;
      (** perturbed-seed re-entries of the chain after it is exhausted
          without convergence (0 = off) *)
  retry_scale : float;
      (** std-dev (radians) of the Gaussian jitter applied to [θ₀] per
          retry; jitter is seeded by (request index, retry ordinal) so
          retries replay identically across pool sizes *)
  seed_library : Posture_library.t option;
      (** posture bank consulted for nearest-neighbour seed candidates;
          only offered to chains it {!Posture_library.matches} *)
  seed_candidates : int;
      (** speculative seed starts per request ({!Seed_select}): with the
          default 1 the seeding path is exactly the classic warm-start
          lookup; with [S >= 2] up to [S] candidate starts (θ₀, cache
          hit, library neighbour, zero, perturbed best) are scored by
          first-iteration FK error in the serial prepare phase and only
          the winner is dispatched — replies stay byte-identical across
          pool sizes and lockstep modes *)
  snapshot_prepare : bool;
      (** run each wave's prepare as a frozen snapshot plus a wave-fused
          scoring pass: every read of mutable serial state (seed-cache
          probe, posture-library NN query, breaker gates, fault forks,
          deadline clock) is taken serially in ordinal order into
          immutable per-request records, then candidate assembly and the
          R×S candidate scorings run on the pool as chunked sweeps of the
          SoA row kernel ({!Seed_select.choose_wave}), and winners are
          sealed serially.  Replies are byte-identical to the per-request
          prepare across pool sizes (pinned by test); the flag is purely
          a throughput knob for seed-heavy traffic (DESIGN.md §14).
          Default off. *)
}

val default_config : config
(** [Quick_ik → Dls → Sdls], 64 speculations, 1e-2 m accuracy, 2 000
    iterations per attempt, no time budget, warm starts on a 5 cm grid,
    4096 cells, chunk 64; resilience extras all off (no guard, no
    faults, no breakers, no retries, jitter 0.1 rad). *)

type t

val create : ?pool:Dadu_util.Domain_pool.t -> ?config:config -> unit -> t
(** The pool, when given, is borrowed — the caller shuts it down.
    Raises [Invalid_argument] on a nonsensical config (empty chain,
    non-positive speculations/iterations/chunk/cell/capacity). *)

val config : t -> config

val breaker_states : t -> (Fallback.kind * Breaker.state) list
(** Current breaker per chain tier, in chain order; [[]] when breakers
    are off.  Read between batches (the states mutate during serving). *)

type request = {
  problem : Ik.problem;
  deadline_s : float option;
      (** seconds from the batch's start by which this request should be
          dispatched; once passed it is served by the cheapest tier and
          tagged [deadline_exceeded] *)
  session : Session.t option;
      (** the trajectory session this request belongs to.  Session
          requests warm-start from the session's slot (the previous
          waypoint's converged solution) and bypass the shared seed
          cache in both directions; the scheduler wave is cut so two
          requests of one session never share a wave, making the later
          one's prepare observe the earlier one's commit even inside a
          single batch (DESIGN.md §15) *)
  ordinal : int option;
      (** stable per-request ordinal overriding the batch index as the
          noise key for speculative perturbations and retry jitter —
          the server assigns the session's waypoint sequence number, so
          a waypoint's reply is independent of how requests were batched *)
}

val request :
  ?deadline_s:float -> ?session:Session.t -> ?ordinal:int -> Ik.problem -> request
(** Raises [Invalid_argument] on a negative deadline or ordinal. *)

type reply =
  | Solved of {
      result : Ik.result;
      solver : Fallback.kind;  (** chain member that produced [result] *)
      fallbacks : int;  (** solvers tried after the first *)
      cache_hit : bool;  (** warm-started from a cached neighbour *)
      session_hit : bool;
          (** the session's warm-start slot was filled and offered
              (always false for session-free requests; [cache_hit] is
              always false for session requests — the two lookup paths
              are disjoint) *)
      deadline_exceeded : bool;
          (** short-circuited: only the cheapest solver ran *)
      breaker_skips : int;  (** tiers skipped by open breakers *)
      retries : int;  (** perturbed-seed re-entries that ran *)
      retry_converged : bool;
          (** the first pass failed and a retry converged *)
      trail : (Fallback.kind * Ik.status) list;
          (** every attempt across all passes with its FK-verified
              status, in execution order *)
      latency_s : float;
    }
      (** dispatched; [result.status] says whether it converged *)
  | Rejected of Ik.invalid  (** failed validation, never dispatched *)
  | Faulted of string  (** a solver raised; the exception, printed *)

val solve_requests :
  ?budget_s:float -> ?trace:Dadu_util.Trace.t -> t -> request array -> reply array
(** [reply.(i)] answers [requests.(i)].  [budget_s] is a batch-level time
    budget: once the batch has run that long, every not-yet-prepared
    request expires (cheapest tier, tagged), so tail requests degrade
    instead of queueing unboundedly.  Expiry is decided in the serial
    prepare phase — which requests expire depends on the clock, never on
    the pool size. *)

val solve_batch : t -> Ik.problem array -> reply array
(** {!solve_requests} with no deadlines, no budget, no trace — the fully
    deterministic path. *)

val seed_cache : t -> Seed_cache.t
(** The shared warm-start cache — exposed for tests that pre-load or
    poison cells (sessions must never read it). *)

val metrics : t -> Metrics.snapshot
(** Cumulative across every batch served so far. *)

val render_metrics : t -> string

val reset_metrics : t -> unit

val cache_length : t -> int
(** Live seed-cache cells (for tests and capacity tuning). *)
