open Dadu_core

(** The batched IK serving layer: scheduler → seed cache → solver chain →
    metrics.

    One {!t} is a long-lived server object: it owns a warm-start
    {!Seed_cache}, a {!Metrics} registry accumulating across batches, and
    a {!Scheduler} over an optional caller-owned domain pool.  Each
    {!solve_batch} call:

    + validates every problem ({!Ik.validate}) — malformed requests
      become typed {!reply} values, they are never dispatched and no
      exception crosses a domain boundary;
    + looks up warm-start seeds for valid problems (serially, in input
      order) from targets solved in earlier batches or earlier chunks of
      this one;
    + solves each chunk in parallel through the {!Fallback} chain with
      per-attempt iteration budgets (and an optional per-problem wall
      clock budget);
    + stores converged configurations back into the cache and records
      metrics (serially, in input order).

    Results are positionally deterministic: with [time_budget_s = None],
    replies (statuses, joint vectors, solver choices, cache hits) are
    byte-identical whatever the pool size, because every cache and
    metrics mutation happens in the scheduler's serial phases. *)

type config = {
  solvers : Fallback.kind list;  (** fallback chain, first = primary *)
  speculations : int;  (** Quick-IK speculation count *)
  accuracy : float;  (** position tolerance, meters *)
  max_iterations : int;  (** per solver attempt *)
  time_budget_s : float option;
      (** per-problem wall-clock budget checked between attempts; breaks
          determinism — leave [None] unless serving live traffic *)
  warm_start : bool;  (** consult the seed cache *)
  cache_cell_m : float;  (** seed-cache grid cell side, meters *)
  cache_capacity : int;  (** seed-cache cells before LRU eviction *)
  chunk : int;  (** scheduler wave size *)
}

val default_config : config
(** [Quick_ik → Dls → Sdls], 64 speculations, 1e-2 m accuracy, 2 000
    iterations per attempt, no time budget, warm starts on a 5 cm grid,
    4096 cells, chunk 64. *)

type t

val create : ?pool:Dadu_util.Domain_pool.t -> ?config:config -> unit -> t
(** The pool, when given, is borrowed — the caller shuts it down.
    Raises [Invalid_argument] on a nonsensical config (empty chain,
    non-positive speculations/iterations/chunk/cell/capacity). *)

val config : t -> config

type reply =
  | Solved of {
      result : Ik.result;
      solver : Fallback.kind;  (** chain member that produced [result] *)
      fallbacks : int;  (** solvers tried after the first *)
      cache_hit : bool;  (** warm-started from a cached neighbour *)
      latency_s : float;
    }
      (** dispatched; [result.status] says whether it converged *)
  | Rejected of Ik.invalid  (** failed validation, never dispatched *)
  | Faulted of string  (** a solver raised; the exception, printed *)

val solve_batch : t -> Ik.problem array -> reply array
(** [reply.(i)] answers [problems.(i)]. *)

val metrics : t -> Metrics.snapshot
(** Cumulative across every batch served so far. *)

val render_metrics : t -> string

val reset_metrics : t -> unit

val cache_length : t -> int
(** Live seed-cache cells (for tests and capacity tuning). *)
