open Dadu_linalg
open Dadu_kinematics
module Rng = Dadu_util.Rng
module Pool = Dadu_util.Domain_pool
module Ws = Dadu_core.Workspace

type source = Theta0 | Session | Cache | Library | Zero | Perturbed

let source_name = function
  | Theta0 -> "theta0"
  | Session -> "session"
  | Cache -> "cache"
  | Library -> "library"
  | Zero -> "zero"
  | Perturbed -> "perturbed"

(* Every buffer the selection needs, grown on demand and reused across
   requests and waves.  Candidates live as rows of one flat lane-major θ
   plane ([plane.(k·tstride + i)], Megabatch layout) so a whole wave's
   candidates can be scored by chunked {!Fk.score_rows_into} sweeps; the
   per-row target planes ([txs]/[tys]/[tzs]) are what let one sweep span
   candidates belonging to different requests.  Steady state over one
   chain shape and one candidate count allocates nothing. *)
type t = {
  fk : Fk.scratch;
  mutable tstride : int; (* row width the plane is currently shaped for *)
  mutable plane : Vec.t; (* capacity × tstride candidate rows, lane-major *)
  mutable txs : Vec.t; (* capacity: per-row target x *)
  mutable tys : Vec.t;
  mutable tzs : Vec.t;
  mutable pos : Vec.t; (* 3 × capacity SoA position planes *)
  mutable err2 : Vec.t; (* capacity *)
  mutable srcs : source array; (* capacity *)
  mutable n : int; (* candidates assembled so far (scan state, not a ref:
                      the whole selection is pinned allocation-free) *)
  mutable best : int; (* argmin scratch *)
  (* wave bookkeeping: per-row owner and per-request row ranges *)
  mutable row_req : int array; (* capacity: spec index owning each row *)
  mutable base_lo : int array; (* per spec: first base row *)
  mutable base_n : int array; (* per spec: base row count *)
  mutable pert_lo : int array; (* per spec: first perturbed row *)
  mutable best_base : int array; (* per spec: winning base row *)
}

let create () =
  {
    fk = Fk.make_scratch ();
    tstride = 0;
    plane = [||];
    txs = [||];
    tys = [||];
    tzs = [||];
    pos = [||];
    err2 = [||];
    srcs = [||];
    n = 0;
    best = 0;
    row_req = [||];
    base_lo = [||];
    base_n = [||];
    pert_lo = [||];
    best_base = [||];
  }

let ensure t ~tstride ~rows =
  let cap = Stdlib.max rows (Array.length t.err2) in
  if Array.length t.err2 < cap then begin
    t.txs <- Array.make cap 0.;
    t.tys <- Array.make cap 0.;
    t.tzs <- Array.make cap 0.;
    t.pos <- Array.make (3 * cap) 0.;
    t.err2 <- Array.make cap 0.;
    t.srcs <- Array.make cap Theta0;
    t.row_req <- Array.make cap 0
  end;
  if t.tstride <> tstride || Array.length t.plane < cap * tstride then begin
    t.tstride <- tstride;
    t.plane <- Array.make (cap * tstride) 0.
  end

let ensure_specs t n =
  if Array.length t.base_lo < n then begin
    t.base_lo <- Array.make n 0;
    t.base_n <- Array.make n 0;
    t.pert_lo <- Array.make n 0;
    t.best_base <- Array.make n 0
  end

(* open-coded Joint.clamp over one plane row: the cross-module float
   return would box on every element, and this loop sits on the
   allocation-free prepare path *)
let clamp_row chain (plane : Vec.t) ~off =
  let links = Chain.links chain in
  for i = 0 to Array.length links - 1 do
    let j = links.(i).Chain.joint in
    let q = plane.(off + i) in
    let q = if q < j.Joint.lower then j.Joint.lower else q in
    plane.(off + i) <- (if q > j.Joint.upper then j.Joint.upper else q)
  done

(* First-iteration FK error of row [k]: one fused position fold plus the
   squared-distance write into err2.(k). *)
let score t chain k =
  let stride = Array.length t.err2 in
  Fk.score_rows_into ~scratch:t.fk ~pos:t.pos ~err2:t.err2 ~txs:t.txs
    ~tys:t.tys ~tzs:t.tzs chain ~thetas:t.plane ~tstride:t.tstride ~stride
    ~lo:k ~hi:(k + 1)

(* Candidate [k]'s row has been filled: clamp it, tag its provenance and
   target, and score it.  Top-level rather than a local closure — [choose]
   runs once per request on the serial prepare path and must not
   allocate. *)
let commit t chain ~tx ~ty ~tz k src =
  clamp_row chain t.plane ~off:(k * t.tstride);
  t.srcs.(k) <- src;
  t.txs.(k) <- tx;
  t.tys.(k) <- ty;
  t.tzs.(k) <- tz;
  score t chain k

let argmin_err2 t =
  t.best <- 0;
  for k = 1 to t.n - 1 do
    if t.err2.(k) < t.err2.(t.best) then t.best <- k
  done;
  t.best

let choose t ~session_seed ~library ~cache_seed ~candidates ~ordinal ~scale
    ~chain ~tx ~ty ~tz ~theta0 ~dst =
  let dof = Chain.dof chain in
  if candidates < 1 then
    invalid_arg "Seed_select.choose: candidates must be at least 1";
  if Array.length theta0 <> dof then
    invalid_arg "Seed_select.choose: theta0 length <> dof";
  if Array.length dst <> dof then
    invalid_arg "Seed_select.choose: dst length <> dof";
  if candidates = 1 then begin
    Array.blit theta0 0 dst 0 dof;
    clamp_row chain dst ~off:0;
    Theta0
  end
  else begin
    ensure t ~tstride:dof ~rows:candidates;
    (* fixed priority order; the argmin's tie-break (strict <) therefore
       favours the earlier, higher-trust source *)
    Array.blit theta0 0 t.plane 0 dof;
    commit t chain ~tx ~ty ~tz 0 Theta0;
    t.n <- 1;
    (* the temporal warm start outranks the spatial ones: a trajectory's
       previous waypoint is almost always the closest known posture *)
    (match session_seed with
    | Some s when Array.length s = dof && t.n < candidates ->
      Array.blit s 0 t.plane (t.n * t.tstride) dof;
      commit t chain ~tx ~ty ~tz t.n Session;
      t.n <- t.n + 1
    | Some _ | None -> ());
    (match cache_seed with
    | Some s when Array.length s = dof && t.n < candidates ->
      Array.blit s 0 t.plane (t.n * t.tstride) dof;
      commit t chain ~tx ~ty ~tz t.n Cache;
      t.n <- t.n + 1
    | Some _ | None -> ());
    (match library with
    | Some lib when t.n < candidates && Posture_library.matches lib chain ->
      let i = Posture_library.nearest_index lib ~x:tx ~y:ty ~z:tz in
      if i >= 0 then begin
        Posture_library.blit_posture_into lib i t.plane ~pos:(t.n * t.tstride);
        commit t chain ~tx ~ty ~tz t.n Library;
        t.n <- t.n + 1
      end
    | Some _ | None -> ());
    if t.n < candidates then begin
      Array.fill t.plane (t.n * t.tstride) dof 0.;
      commit t chain ~tx ~ty ~tz t.n Zero;
      t.n <- t.n + 1
    end;
    (* remaining slots: Gaussian jitter around the best-scoring base, each
       perturbation's noise a pure function of (request ordinal, slot) *)
    let first_perturbed = t.n in
    let base_off = argmin_err2 t * t.tstride in
    while t.n < candidates do
      let k = t.n in
      let j = k - first_perturbed in
      let rng = Rng.create (Hashtbl.hash (0x5eed, ordinal, j)) in
      let off = k * t.tstride in
      for i = 0 to dof - 1 do
        t.plane.(off + i) <- t.plane.(base_off + i) +. (scale *. Rng.gaussian rng)
      done;
      commit t chain ~tx ~ty ~tz k Perturbed;
      t.n <- t.n + 1
    done;
    let best = argmin_err2 t in
    Array.blit t.plane (best * t.tstride) dst 0 dof;
    t.srcs.(best)
  end

(* ---- wave-fused selection --------------------------------------------

   One scheduler wave's worth of requests selected together: all base
   candidates of all requests are packed into contiguous rows of the
   plane and scored in chunked sweeps (parallel across the pool when one
   is given), then per-request base argmins run serially, perturbed rows
   are assembled from each winner and scored the same way, and the final
   winners are committed serially in ordinal order.

   Bit-parity with per-request [choose] holds by construction: rows are
   assembled by the same code in the same per-request order, rows are
   scored independently (so any chunking equals the one-row-at-a-time
   serial scoring), and the split argmin (best base, then perturbed rows
   in order, strict <) selects the same winner as the serial full-range
   scan because the serial tie-break already favours the earliest row. *)

type spec = {
  ordinal : int;
  chain : Chain.t;
  tx : float;
  ty : float;
  tz : float;
  theta0 : Vec.t;
  session_seed : Vec.t option;
  cache_seed : Vec.t option;
  library : Posture_library.t option;
  library_index : int;
  candidates : int;
  scale : float;
  dst : Vec.t;
}

(* Which base sources request [s] assembles, mirroring the conditions of
   [choose] exactly (assembly is deterministic given the frozen spec, so
   counting and filling can run as separate passes). *)
let base_plan (s : spec) =
  let dof = Chain.dof s.chain in
  let nb = ref 1 in
  let use_session =
    match s.session_seed with
    | Some ss when Array.length ss = dof && !nb < s.candidates ->
      incr nb;
      true
    | Some _ | None -> false
  in
  let use_cache =
    match s.cache_seed with
    | Some cs when Array.length cs = dof && !nb < s.candidates ->
      incr nb;
      true
    | Some _ | None -> false
  in
  let use_library =
    if s.library <> None && s.library_index >= 0 && !nb < s.candidates then begin
      incr nb;
      true
    end
    else false
  in
  let use_zero =
    if !nb < s.candidates then begin
      incr nb;
      true
    end
    else false
  in
  (use_session, use_cache, use_library, use_zero, !nb)

let fill_row t (s : spec) r row src fill =
  let off = row * t.tstride in
  fill off;
  clamp_row s.chain t.plane ~off;
  t.srcs.(row) <- src;
  t.row_req.(row) <- r;
  t.txs.(row) <- s.tx;
  t.tys.(row) <- s.ty;
  t.tzs.(row) <- s.tz

let assemble_base t (specs : spec array) r =
  let s = specs.(r) in
  if s.candidates > 1 then begin
    let dof = Chain.dof s.chain in
    let use_session, use_cache, use_library, use_zero, _ = base_plan s in
    let k = ref t.base_lo.(r) in
    let put src fill =
      fill_row t s r !k src fill;
      incr k
    in
    put Theta0 (fun off -> Array.blit s.theta0 0 t.plane off dof);
    if use_session then (
      match s.session_seed with
      | Some ss -> put Session (fun off -> Array.blit ss 0 t.plane off dof)
      | None -> assert false);
    if use_cache then (
      match s.cache_seed with
      | Some cs -> put Cache (fun off -> Array.blit cs 0 t.plane off dof)
      | None -> assert false);
    if use_library then (
      match s.library with
      | Some lib ->
        put Library (fun off ->
            Posture_library.blit_posture_into lib s.library_index t.plane
              ~pos:off)
      | None -> assert false);
    if use_zero then put Zero (fun off -> Array.fill t.plane off dof 0.)
  end

let assemble_perturbed t (specs : spec array) r =
  let s = specs.(r) in
  if s.candidates > 1 then begin
    let dof = Chain.dof s.chain in
    let np = s.candidates - t.base_n.(r) in
    let boff = t.best_base.(r) * t.tstride in
    for j = 0 to np - 1 do
      let row = t.pert_lo.(r) + j in
      let off = row * t.tstride in
      let rng = Rng.create (Hashtbl.hash (0x5eed, s.ordinal, j)) in
      for i = 0 to dof - 1 do
        t.plane.(off + i) <- t.plane.(boff + i) +. (s.scale *. Rng.gaussian rng)
      done;
      fill_row t s r row Perturbed (fun _ -> ())
    done
  end

(* Score rows [a, b), splitting the range into runs of rows that share a
   chain so each kernel call streams one compiled constant set.  Worker
   domains score through their domain-local workspace's FK scratch
   ([Fk.compile] mutates the scratch per chain, so a shared one would
   race); the sequential path reuses the selector's own scratch.  Scratch
   identity never affects the computed values. *)
let score_rows t (specs : spec array) a b ~local =
  let i = ref a in
  while !i < b do
    let chain = specs.(t.row_req.(!i)).chain in
    let j = ref (!i + 1) in
    while !j < b && specs.(t.row_req.(!j)).chain == chain do
      incr j
    done;
    let scratch =
      if local then (Ws.local ~dof:(Chain.dof chain)).Ws.fk else t.fk
    in
    Fk.score_rows_into ~scratch ~pos:t.pos ~err2:t.err2 ~txs:t.txs ~tys:t.tys
      ~tzs:t.tzs chain ~thetas:t.plane ~tstride:t.tstride
      ~stride:(Array.length t.err2) ~lo:!i ~hi:!j;
    i := !j
  done

(* Candidate rows are trig-heavy (2 trig + 15 flops per link per row), so
   a small grain load-balances mixed-DOF waves without drowning in task
   dispatch. *)
let sweep_grain = 4

let sweep_region t ?pool specs lo hi =
  if hi > lo then
    match pool with
    | None -> score_rows t specs lo hi ~local:false
    | Some pool ->
      Pool.parallel_for_chunks pool ~grain:sweep_grain (hi - lo)
        (fun a b -> score_rows t specs (lo + a) (lo + b) ~local:true)

let for_each_spec ?pool n f =
  match pool with
  | None ->
    for r = 0 to n - 1 do
      f r
    done
  | Some pool -> Pool.parallel_for pool n f

let choose_wave t ?pool (specs : spec array) =
  (* On a machine with no available parallelism (one online core), pool
     dispatch can only add scheduling overhead — run the same sweeps
     sequentially.  Purely a scheduling decision: the computed bits are
     identical either way (pinned by the pool-vs-sequential tests). *)
  let pool =
    match pool with
    | Some p when Pool.size p > 1 && Domain.recommended_domain_count () > 1 ->
      Some p
    | Some _ | None -> None
  in
  let n = Array.length specs in
  if n = 0 then [||]
  else begin
    let tstride = ref 1 and total = ref 0 in
    Array.iter
      (fun s ->
        let dof = Chain.dof s.chain in
        if s.candidates < 1 then
          invalid_arg "Seed_select.choose_wave: candidates must be at least 1";
        if Array.length s.theta0 <> dof then
          invalid_arg "Seed_select.choose_wave: theta0 length <> dof";
        if Array.length s.dst <> dof then
          invalid_arg "Seed_select.choose_wave: dst length <> dof";
        if s.candidates > 1 then begin
          tstride := Stdlib.max !tstride dof;
          total := !total + s.candidates
        end)
      specs;
    let out = Array.make n Theta0 in
    (* non-speculative requests short-circuit exactly as [choose] does *)
    let classic r =
      let s = specs.(r) in
      Array.blit s.theta0 0 s.dst 0 (Chain.dof s.chain);
      clamp_row s.chain s.dst ~off:0
    in
    if !total = 0 then begin
      for r = 0 to n - 1 do
        classic r
      done;
      out
    end
    else begin
      ensure t ~tstride:!tstride ~rows:!total;
      ensure_specs t n;
      (* serial row allocation in ordinal order: base rows pack the region
         [0, nbase) so one chunked sweep covers every request's bases *)
      let next = ref 0 in
      for r = 0 to n - 1 do
        let s = specs.(r) in
        if s.candidates > 1 then begin
          let _, _, _, _, nb = base_plan s in
          t.base_lo.(r) <- !next;
          t.base_n.(r) <- nb;
          next := !next + nb
        end
        else begin
          t.base_lo.(r) <- !next;
          t.base_n.(r) <- 0
        end
      done;
      let nbase = !next in
      (* parallel assembly: disjoint row ranges, frozen inputs only *)
      for_each_spec ?pool n (fun r ->
          if specs.(r).candidates > 1 then assemble_base t specs r
          else classic r);
      sweep_region t ?pool specs 0 nbase;
      (* serial base argmins + perturbed row allocation, ordinal order *)
      for r = 0 to n - 1 do
        let s = specs.(r) in
        if s.candidates > 1 then begin
          let lo = t.base_lo.(r) in
          let best = ref lo in
          for k = lo + 1 to lo + t.base_n.(r) - 1 do
            if t.err2.(k) < t.err2.(!best) then best := k
          done;
          t.best_base.(r) <- !best;
          t.pert_lo.(r) <- !next;
          next := !next + (s.candidates - t.base_n.(r))
        end
      done;
      let npert_hi = !next in
      if npert_hi > nbase then begin
        for_each_spec ?pool n (fun r -> assemble_perturbed t specs r);
        sweep_region t ?pool specs nbase npert_hi
      end;
      (* serial seal: final argmin per request (best base, then that
         request's perturbed rows in slot order, strict <) and winner
         blit, in ordinal order *)
      for r = 0 to n - 1 do
        let s = specs.(r) in
        if s.candidates > 1 then begin
          let best = ref t.best_base.(r) in
          let plo = t.pert_lo.(r) in
          for k = plo to plo + (s.candidates - t.base_n.(r)) - 1 do
            if t.err2.(k) < t.err2.(!best) then best := k
          done;
          Array.blit t.plane (!best * t.tstride) s.dst 0 (Chain.dof s.chain);
          out.(r) <- t.srcs.(!best)
        end
      done;
      out
    end
  end
