open Dadu_linalg
open Dadu_kinematics
module Rng = Dadu_util.Rng

type source = Theta0 | Cache | Library | Zero | Perturbed

let source_name = function
  | Theta0 -> "theta0"
  | Cache -> "cache"
  | Library -> "library"
  | Zero -> "zero"
  | Perturbed -> "perturbed"

(* Every buffer the selection needs, grown on demand and reused across
   requests: candidate θ vectors (exact chain dof — the FK kernel insists),
   the shared zero Δθ and zero coefficient vectors, and the SoA
   position/error planes of the speculation kernel.  Steady state over one
   chain and one candidate count allocates nothing. *)
type t = {
  fk : Fk.scratch;
  mutable dzero : Vec.t; (* zeros, length = dof *)
  mutable coeffs : Vec.t; (* zeros, length = capacity *)
  mutable pos : Vec.t; (* 3 * capacity *)
  mutable err2 : Vec.t; (* capacity *)
  mutable bufs : Vec.t array; (* capacity buffers, each length = dof *)
  mutable srcs : source array; (* capacity *)
  mutable n : int; (* candidates assembled so far (scan state, not a ref:
                      the whole selection is pinned allocation-free) *)
  mutable best : int; (* argmin scratch *)
}

let create () =
  {
    fk = Fk.make_scratch ();
    dzero = [||];
    coeffs = [||];
    pos = [||];
    err2 = [||];
    bufs = [||];
    srcs = [||];
    n = 0;
    best = 0;
  }

let ensure t ~dof ~cap =
  if Array.length t.dzero <> dof then t.dzero <- Array.make dof 0.;
  if Array.length t.err2 < cap then begin
    t.coeffs <- Array.make cap 0.;
    t.pos <- Array.make (3 * cap) 0.;
    t.err2 <- Array.make cap 0.;
    t.srcs <- Array.make cap Theta0;
    t.bufs <- Array.init cap (fun _ -> Array.make dof 0.)
  end;
  for k = 0 to Array.length t.bufs - 1 do
    if Array.length t.bufs.(k) <> dof then t.bufs.(k) <- Array.make dof 0.
  done

(* open-coded Joint.clamp: the cross-module float return would box on
   every element, and this loop sits on the allocation-free prepare path *)
let clamp_inplace chain (b : Vec.t) =
  let links = Chain.links chain in
  for i = 0 to Array.length b - 1 do
    let j = links.(i).Chain.joint in
    let q = b.(i) in
    let q = if q < j.Joint.lower then j.Joint.lower else q in
    b.(i) <- (if q > j.Joint.upper then j.Joint.upper else q)
  done

(* First-iteration FK error of candidate [k]: the speculation kernel with a
   zero direction and zero coefficient degenerates to one position fold plus
   the fused squared-distance write into err2.(k). *)
let score t chain ~tx ~ty ~tz k =
  let stride = Array.length t.err2 in
  Fk.speculate_range_into ~scratch:t.fk ~pos:t.pos ~err2:t.err2 ~tx ~ty ~tz
    chain ~theta:t.bufs.(k) ~dtheta:t.dzero ~coeffs:t.coeffs ~stride ~lo:k
    ~hi:(k + 1)

(* Candidate [k]'s buffer has been filled: clamp it, tag its provenance
   and score it.  Top-level rather than a local closure — [choose] runs
   once per request on the serial prepare path and must not allocate. *)
let commit t chain ~tx ~ty ~tz k src =
  clamp_inplace chain t.bufs.(k);
  t.srcs.(k) <- src;
  score t chain ~tx ~ty ~tz k

let argmin_err2 t =
  t.best <- 0;
  for k = 1 to t.n - 1 do
    if t.err2.(k) < t.err2.(t.best) then t.best <- k
  done;
  t.best

let choose t ~library ~cache_seed ~candidates ~ordinal ~scale ~chain ~tx ~ty
    ~tz ~theta0 ~dst =
  let dof = Chain.dof chain in
  if candidates < 1 then
    invalid_arg "Seed_select.choose: candidates must be at least 1";
  if Array.length theta0 <> dof then
    invalid_arg "Seed_select.choose: theta0 length <> dof";
  if Array.length dst <> dof then
    invalid_arg "Seed_select.choose: dst length <> dof";
  if candidates = 1 then begin
    Array.blit theta0 0 dst 0 dof;
    clamp_inplace chain dst;
    Theta0
  end
  else begin
    ensure t ~dof ~cap:candidates;
    (* fixed priority order; the argmin's tie-break (strict <) therefore
       favours the earlier, higher-trust source *)
    Array.blit theta0 0 t.bufs.(0) 0 dof;
    commit t chain ~tx ~ty ~tz 0 Theta0;
    t.n <- 1;
    (match cache_seed with
    | Some s when Array.length s = dof && t.n < candidates ->
      Array.blit s 0 t.bufs.(t.n) 0 dof;
      commit t chain ~tx ~ty ~tz t.n Cache;
      t.n <- t.n + 1
    | Some _ | None -> ());
    (match library with
    | Some lib when t.n < candidates && Posture_library.matches lib chain ->
      let i = Posture_library.nearest_index lib ~x:tx ~y:ty ~z:tz in
      if i >= 0 then begin
        Posture_library.blit_posture lib i t.bufs.(t.n);
        commit t chain ~tx ~ty ~tz t.n Library;
        t.n <- t.n + 1
      end
    | Some _ | None -> ());
    if t.n < candidates then begin
      Array.fill t.bufs.(t.n) 0 dof 0.;
      commit t chain ~tx ~ty ~tz t.n Zero;
      t.n <- t.n + 1
    end;
    (* remaining slots: Gaussian jitter around the best-scoring base, each
       perturbation's noise a pure function of (request ordinal, slot) *)
    let first_perturbed = t.n in
    let base_buf = t.bufs.(argmin_err2 t) in
    while t.n < candidates do
      let k = t.n in
      let j = k - first_perturbed in
      let rng = Rng.create (Hashtbl.hash (0x5eed, ordinal, j)) in
      let b = t.bufs.(k) in
      for i = 0 to dof - 1 do
        b.(i) <- base_buf.(i) +. (scale *. Rng.gaussian rng)
      done;
      commit t chain ~tx ~ty ~tz k Perturbed;
      t.n <- t.n + 1
    done;
    let best = argmin_err2 t in
    Array.blit t.bufs.(best) 0 dst 0 dof;
    t.srcs.(best)
  end
