open Dadu_linalg
open Dadu_kinematics
module Rng = Dadu_util.Rng

(* The grid is CSR over the bounding box of the sampled end-effector
   positions: [starts] has one offset per cell (row-major x,y,z) plus a
   terminator, [items] holds posture indices sorted by (cell, index).
   Bounded by [max_cells] so a pathological cell size cannot demand
   gigabytes. *)

type grid = {
  min_cx : int;
  min_cy : int;
  min_cz : int;
  nx : int;
  ny : int;
  nz : int;
  starts : int array; (* length nx*ny*nz + 1 *)
  items : int array; (* length count, ascending within each cell *)
}

type t = {
  chain_name : string;
  fingerprint : int;
  dof : int;
  cell_size : float;
  postures : Vec.t array;
  positions : float array; (* flat, positions.(3i..3i+2) = x,y,z of posture i *)
  grid : grid;
  mutable match_memo : (Chain.t * bool) option;
      (* last [matches] verdict, keyed by physical chain identity: the
         service asks about the same chain value request after request,
         and refingerprinting it each time would put O(dof) boxed-int64
         churn on the steady-state path (pinned allocation-free) *)
  mutable nn_best : int;
      (* nearest-neighbour scan state lives on the record, not in refs or
         closures: lookups are pinned allocation-free, and a mutable float
         field of this mixed record would box on every write — hence the
         one-element array for the running distance *)
  nn_d2 : float array; (* length 1 *)
}

let max_cells = 1 lsl 22

let bucket cell x = int_of_float (Float.floor (x /. cell))

let make_grid ~cell ~positions ~count =
  if count = 0 then failwith "empty library";
  let min_cx = ref max_int and max_cx = ref min_int in
  let min_cy = ref max_int and max_cy = ref min_int in
  let min_cz = ref max_int and max_cz = ref min_int in
  for i = 0 to count - 1 do
    for k = 0 to 2 do
      if not (Float.is_finite positions.((3 * i) + k)) then
        failwith "non-finite end-effector position"
    done;
    let cx = bucket cell positions.((3 * i) + 0) in
    let cy = bucket cell positions.((3 * i) + 1) in
    let cz = bucket cell positions.((3 * i) + 2) in
    if cx < !min_cx then min_cx := cx;
    if cx > !max_cx then max_cx := cx;
    if cy < !min_cy then min_cy := cy;
    if cy > !max_cy then max_cy := cy;
    if cz < !min_cz then min_cz := cz;
    if cz > !max_cz then max_cz := cz
  done;
  let nx = !max_cx - !min_cx + 1 in
  let ny = !max_cy - !min_cy + 1 in
  let nz = !max_cz - !min_cz + 1 in
  if nx <= 0 || ny <= 0 || nz <= 0 then failwith "non-finite positions";
  (* overflow-safe budget check before multiplying out *)
  if nx > max_cells || ny > max_cells || nz > max_cells
     || nx * ny > max_cells / nz
  then
    failwith
      (Printf.sprintf "cell size %g makes a %dx%dx%d grid (budget %d cells)"
         cell nx ny nz max_cells);
  let ncells = nx * ny * nz in
  let cell_of i =
    let cx = bucket cell positions.((3 * i) + 0) - !min_cx in
    let cy = bucket cell positions.((3 * i) + 1) - !min_cy in
    let cz = bucket cell positions.((3 * i) + 2) - !min_cz in
    ((cx * ny) + cy) * nz + cz
  in
  let starts = Array.make (ncells + 1) 0 in
  for i = 0 to count - 1 do
    let c = cell_of i in
    starts.(c + 1) <- starts.(c + 1) + 1
  done;
  for c = 1 to ncells do
    starts.(c) <- starts.(c) + starts.(c - 1)
  done;
  let fill = Array.copy starts in
  let items = Array.make count 0 in
  (* ascending i keeps each cell's slice ascending, which is what makes
     the ring scan's tie-break agree with the brute-force argmin *)
  for i = 0 to count - 1 do
    let c = cell_of i in
    items.(fill.(c)) <- i;
    fill.(c) <- fill.(c) + 1
  done;
  {
    min_cx = !min_cx;
    min_cy = !min_cy;
    min_cz = !min_cz;
    nx;
    ny;
    nz;
    starts;
    items;
  }

let default_cell chain =
  let reach = Chain.reach chain in
  if Float.is_finite reach && reach > 0. then reach /. 8. else 1.0

let build ?cell_size ?(seed = 42) ~chain ~count () =
  if count <= 0 then
    invalid_arg "Posture_library.build: count must be positive";
  let cell_size =
    match cell_size with
    | None -> default_cell chain
    | Some c ->
      if not (c > 0. && Float.is_finite c) then
        invalid_arg "Posture_library.build: cell_size must be positive and finite";
      c
  in
  let dof = Chain.dof chain in
  let rng = Rng.create seed in
  let scratch = Fk.make_scratch ~dof () in
  let postures = Array.make count [||] in
  let positions = Array.make (3 * count) 0. in
  let dst = Array.make 3 0. in
  (* explicit loop: the sampling order (hence the library contents) must
     not depend on Array.init's evaluation order *)
  for i = 0 to count - 1 do
    let q = Target.random_config rng chain in
    postures.(i) <- q;
    Fk.position_into ~scratch ~dst chain q;
    positions.((3 * i) + 0) <- dst.(0);
    positions.((3 * i) + 1) <- dst.(1);
    positions.((3 * i) + 2) <- dst.(2)
  done;
  let grid =
    try make_grid ~cell:cell_size ~positions ~count
    with Failure msg -> invalid_arg ("Posture_library.build: " ^ msg)
  in
  {
    chain_name = Chain.name chain;
    fingerprint = Chain.fingerprint chain;
    dof;
    cell_size;
    postures;
    positions;
    grid;
    match_memo = None;
    nn_best = -1;
    nn_d2 = [| infinity |];
  }

let chain_name t = t.chain_name
let fingerprint t = t.fingerprint
let dof t = t.dof
let size t = Array.length t.postures
let cell_size t = t.cell_size

let matches t chain =
  match t.match_memo with
  | Some (c, verdict) when c == chain -> verdict
  | _ ->
    let verdict =
      t.dof = Chain.dof chain && t.fingerprint = Chain.fingerprint chain
    in
    t.match_memo <- Some (chain, verdict);
    verdict

let check_index t i =
  if i < 0 || i >= size t then invalid_arg "Posture_library: index out of range"

let posture t i =
  check_index t i;
  Vec.copy t.postures.(i)

let blit_posture t i dst =
  check_index t i;
  if Array.length dst <> t.dof then
    invalid_arg "Posture_library.blit_posture: dst length <> dof";
  Array.blit t.postures.(i) 0 dst 0 t.dof

(* offset variant for callers assembling postures into rows of a flat
   candidate plane (Seed_select's wave-fused scoring) *)
let blit_posture_into t i dst ~pos =
  check_index t i;
  if pos < 0 || pos + t.dof > Array.length dst then
    invalid_arg "Posture_library.blit_posture_into: row out of bounds";
  Array.blit t.postures.(i) 0 dst pos t.dof

let position t i =
  check_index t i;
  Vec3.make
    t.positions.((3 * i) + 0)
    t.positions.((3 * i) + 1)
    t.positions.((3 * i) + 2)

(* Exact nearest neighbour by expanding Chebyshev rings.  A cell at ring
   distance r from the query cell cannot hold a point closer than
   (r-1)·cell (the query sits somewhere inside its own cell), so once a
   best candidate is in hand the scan stops at the first ring whose lower
   bound exceeds it.  Within the cube [-r, r]³ only the shell
   max(|dx|,|dy|,|dz|) = r is scanned each round, clipped to the grid's
   bounding box.  Ties in distance go to the lowest posture index, which
   is exactly the brute-force argmin's behaviour whatever the cell scan
   order. *)
(* The scan helpers are top-level (not nested) on purpose: nested
   functions capturing the query would allocate a closure per lookup, and
   loop state lives in [nn_best]/[nn_d2] instead of refs for the same
   reason. *)
let scan_cell t ~x ~y ~z cx cy cz =
  let g = t.grid in
  let c = (((cx * g.ny) + cy) * g.nz) + cz in
  let stop = g.starts.(c + 1) in
  for s = g.starts.(c) to stop - 1 do
    let i = g.items.(s) in
    let dx = t.positions.((3 * i) + 0) -. x in
    let dy = t.positions.((3 * i) + 1) -. y in
    let dz = t.positions.((3 * i) + 2) -. z in
    let d2 = (dx *. dx) +. (dy *. dy) +. (dz *. dz) in
    if d2 < t.nn_d2.(0) || (d2 = t.nn_d2.(0) && i < t.nn_best) then begin
      t.nn_best <- i;
      t.nn_d2.(0) <- d2
    end
  done

let scan_shell t ~x ~y ~z ~qx ~qy ~qz rr =
  let g = t.grid in
  let x0 = Stdlib.max 0 (qx - rr) and x1 = Stdlib.min (g.nx - 1) (qx + rr) in
  let y0 = Stdlib.max 0 (qy - rr) and y1 = Stdlib.min (g.ny - 1) (qy + rr) in
  let z0 = Stdlib.max 0 (qz - rr) and z1 = Stdlib.min (g.nz - 1) (qz + rr) in
  for cx = x0 to x1 do
    for cy = y0 to y1 do
      for cz = z0 to z1 do
        let cheb =
          Stdlib.max (abs (cx - qx)) (Stdlib.max (abs (cy - qy)) (abs (cz - qz)))
        in
        if cheb = rr then scan_cell t ~x ~y ~z cx cy cz
      done
    done
  done

let rec scan_rings t ~x ~y ~z ~qx ~qy ~qz ~max_ring r =
  if r <= max_ring then begin
    let lb = float_of_int (r - 1) *. t.cell_size in
    if not (t.nn_best >= 0 && r >= 1 && lb *. lb > t.nn_d2.(0)) then begin
      scan_shell t ~x ~y ~z ~qx ~qy ~qz r;
      scan_rings t ~x ~y ~z ~qx ~qy ~qz ~max_ring (r + 1)
    end
  end

let far a lo hi = Stdlib.max (abs (a - lo)) (abs (hi - a))

let nearest_index t ~x ~y ~z =
  if
    not (Float.is_finite x && Float.is_finite y && Float.is_finite z)
  then -1
  else begin
    let g = t.grid in
    let cell = t.cell_size in
    let qx = bucket cell x - g.min_cx in
    let qy = bucket cell y - g.min_cy in
    let qz = bucket cell z - g.min_cz in
    let max_ring =
      Stdlib.max
        (far qx 0 (g.nx - 1))
        (Stdlib.max (far qy 0 (g.ny - 1)) (far qz 0 (g.nz - 1)))
    in
    t.nn_best <- -1;
    t.nn_d2.(0) <- infinity;
    scan_rings t ~x ~y ~z ~qx ~qy ~qz ~max_ring 0;
    t.nn_best
  end

let nearest t (v : Vec3.t) =
  let i = nearest_index t ~x:v.Vec3.x ~y:v.Vec3.y ~z:v.Vec3.z in
  if i < 0 then None
  else begin
    let dx = t.positions.((3 * i) + 0) -. v.Vec3.x in
    let dy = t.positions.((3 * i) + 1) -. v.Vec3.y in
    let dz = t.positions.((3 * i) + 2) -. v.Vec3.z in
    Some (Vec.copy t.postures.(i), sqrt ((dx *. dx) +. (dy *. dy) +. (dz *. dz)))
  end

(* ---- persistence ----

   Flat binary, little-endian:

     magic "DADUPLIB" | u32 version | u32 name_len | name bytes
     | i64 fingerprint | u32 dof | u32 count | f64 cell_size
     | count x dof f64 (postures) | count x 3 f64 (positions)
     | u64 FNV-1a checksum of every preceding byte

   Positions are stored rather than recomputed on load so a round trip
   is bit-identical by construction, independent of the FK kernel. *)

type load_error =
  | Io of string
  | Bad_magic
  | Unsupported_version of int
  | Truncated
  | Checksum_mismatch
  | Malformed of string

let pp_load_error ppf = function
  | Io msg -> Format.fprintf ppf "%s" msg
  | Bad_magic -> Format.fprintf ppf "not a posture library (bad magic)"
  | Unsupported_version v ->
    Format.fprintf ppf "unsupported posture library version %d" v
  | Truncated -> Format.fprintf ppf "truncated posture library"
  | Checksum_mismatch ->
    Format.fprintf ppf "posture library checksum mismatch (corrupted)"
  | Malformed msg -> Format.fprintf ppf "malformed posture library: %s" msg

let magic = "DADUPLIB"
let version = 1
let max_name_len = 4096

let fnv1a bytes len =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  for i = 0 to len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get bytes i))))
        prime
  done;
  !h

let encoded_size t =
  8 + 4 + 4
  + String.length t.chain_name
  + 8 + 4 + 4 + 8
  + (8 * size t * (t.dof + 3))
  + 8

let encode t =
  let n = encoded_size t in
  let b = Bytes.create n in
  let off = ref 0 in
  let put_bytes s =
    Bytes.blit_string s 0 b !off (String.length s);
    off := !off + String.length s
  in
  let put_u32 v =
    Bytes.set_int32_le b !off (Int32.of_int v);
    off := !off + 4
  in
  let put_i64 v =
    Bytes.set_int64_le b !off v;
    off := !off + 8
  in
  let put_f64 v = put_i64 (Int64.bits_of_float v) in
  put_bytes magic;
  put_u32 version;
  put_u32 (String.length t.chain_name);
  put_bytes t.chain_name;
  put_i64 (Int64.of_int t.fingerprint);
  put_u32 t.dof;
  put_u32 (size t);
  put_f64 t.cell_size;
  Array.iter (fun q -> Array.iter put_f64 q) t.postures;
  Array.iter put_f64 t.positions;
  put_i64 (fnv1a b (n - 8));
  assert (!off = n);
  b

let save t path =
  match
    let oc = open_out_bin path in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () -> output_bytes oc (encode t))
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error (Io msg)

let decode b =
  let len = Bytes.length b in
  let ( let* ) r f = Result.bind r f in
  let* () = if len < 8 then Error Truncated else Ok () in
  let* () =
    if Bytes.sub_string b 0 8 <> magic then Error Bad_magic else Ok ()
  in
  let u32 off = Int32.to_int (Bytes.get_int32_le b off) in
  let* () = if len < 16 then Error Truncated else Ok () in
  let v = u32 8 in
  let* () = if v <> version then Error (Unsupported_version v) else Ok () in
  let name_len = u32 12 in
  let* () =
    if name_len < 0 || name_len > max_name_len then
      Error (Malformed "chain name length out of range")
    else Ok ()
  in
  (* fixed fields after the name: fingerprint, dof, count, cell_size *)
  let* () = if len < 16 + name_len + 24 then Error Truncated else Ok () in
  let chain_name = Bytes.sub_string b 16 name_len in
  let off = 16 + name_len in
  let fingerprint = Int64.to_int (Bytes.get_int64_le b off) in
  let dof = u32 (off + 8) in
  let count = u32 (off + 12) in
  let* () =
    if dof <= 0 || dof > 1_000_000 then Error (Malformed "dof out of range")
    else if count <= 0 || count > 100_000_000 then
      Error (Malformed "posture count out of range")
    else Ok ()
  in
  let cell_size = Int64.float_of_bits (Bytes.get_int64_le b (off + 16)) in
  let* () =
    if not (cell_size > 0. && Float.is_finite cell_size) then
      Error (Malformed "cell size must be positive and finite")
    else Ok ()
  in
  let payload = off + 24 in
  let expected = payload + (8 * count * (dof + 3)) + 8 in
  let* () = if len < expected then Error Truncated else Ok () in
  let* () =
    if len > expected then Error (Malformed "trailing bytes") else Ok ()
  in
  let stored = Bytes.get_int64_le b (len - 8) in
  let* () =
    if not (Int64.equal (fnv1a b (len - 8)) stored) then
      Error Checksum_mismatch
    else Ok ()
  in
  let f64 k = Int64.float_of_bits (Bytes.get_int64_le b (payload + (8 * k))) in
  let postures =
    Array.init count (fun i -> Array.init dof (fun j -> f64 ((i * dof) + j)))
  in
  let positions = Array.init (3 * count) (fun k -> f64 ((count * dof) + k)) in
  let* grid =
    match make_grid ~cell:cell_size ~positions ~count with
    | g -> Ok g
    | exception Failure msg -> Error (Malformed msg)
  in
  Ok
    { chain_name; fingerprint; dof; cell_size; postures; positions; grid;
      match_memo = None; nn_best = -1; nn_d2 = [| infinity |] }

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let n = in_channel_length ic in
        let b = Bytes.create n in
        really_input ic b 0 n;
        b)
  with
  | b -> decode b
  | exception Sys_error msg -> Error (Io msg)
