open Dadu_linalg

(* LRU over (chain, dof, cell) keys: a hash table into an intrusive
   doubly-linked recency list, most-recent at the head. *)

type key = int * int * int * int * int (* chain_id, dof, ix, iy, iz *)

type node = {
  key : key;
  mutable theta : Vec.t;
  mutable prev : node option;
  mutable next : node option;
}

type t = {
  cell_size : float;
  capacity : int;
  table : (key, node) Hashtbl.t;
  mutable head : node option; (* most recently used *)
  mutable tail : node option; (* least recently used *)
  mutable hits : int;
  mutable misses : int;
}

let create ?(capacity = 4096) ~cell_size () =
  if capacity <= 0 then invalid_arg "Seed_cache.create: capacity must be positive";
  if not (cell_size > 0. && Float.is_finite cell_size) then
    invalid_arg "Seed_cache.create: cell_size must be positive and finite";
  {
    cell_size;
    capacity;
    table = Hashtbl.create 64;
    head = None;
    tail = None;
    hits = 0;
    misses = 0;
  }

let cell_size t = t.cell_size
let capacity t = t.capacity
let length t = Hashtbl.length t.table
let hits t = t.hits
let misses t = t.misses

let finite3 (v : Vec3.t) =
  Float.is_finite v.Vec3.x && Float.is_finite v.Vec3.y && Float.is_finite v.Vec3.z

let key_of t ~chain_id ~dof (v : Vec3.t) =
  let bucket x = int_of_float (Float.floor (x /. t.cell_size)) in
  (chain_id, dof, bucket v.Vec3.x, bucket v.Vec3.y, bucket v.Vec3.z)

(* ---- recency list plumbing ---- *)

let unlink t node =
  (match node.prev with Some p -> p.next <- node.next | None -> t.head <- node.next);
  (match node.next with Some n -> n.prev <- node.prev | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.prev <- None;
  node.next <- t.head;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  if t.head != Some node then begin
    unlink t node;
    push_front t node
  end

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some node ->
    unlink t node;
    Hashtbl.remove t.table node.key

(* ---- public operations ---- *)

let find t ~chain_id ~dof target =
  if not (finite3 target) then begin
    t.misses <- t.misses + 1;
    None
  end
  else
    match Hashtbl.find_opt t.table (key_of t ~chain_id ~dof target) with
    | Some node ->
      t.hits <- t.hits + 1;
      touch t node;
      Some (Vec.copy node.theta)
    | None ->
      t.misses <- t.misses + 1;
      None

let store t ~chain_id ~dof ~target theta =
  if Vec.dim theta <> dof then invalid_arg "Seed_cache.store: theta length <> dof";
  if finite3 target then begin
    let key = key_of t ~chain_id ~dof target in
    match Hashtbl.find_opt t.table key with
    | Some node ->
      node.theta <- Vec.copy theta;
      touch t node
    | None ->
      if Hashtbl.length t.table >= t.capacity then evict_lru t;
      let node = { key; theta = Vec.copy theta; prev = None; next = None } in
      Hashtbl.add t.table key node;
      push_front t node
  end

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.hits <- 0;
  t.misses <- 0
