open Dadu_linalg

(** Warm-start seed cache keyed by discretized workspace cells.

    IKSel-style observation: a good initial configuration slashes iteration
    counts, and for IK "good" is well-approximated by "solved a nearby
    target before".  Targets are bucketed on a uniform grid of side
    [cell_size] meters; each (DOF, cell) holds the most recently stored
    solution for a target in that cell.  Lookups for a target in an
    occupied cell return that configuration as the seed.

    Eviction is LRU over cells (both lookups and stores refresh recency),
    bounded by [capacity].  Keys include the problem's DOF {e and} the
    chain's structural identity ([Chain.fingerprint]): two different robots
    that happen to share a DOF count occupy disjoint key spaces, so
    heterogeneous batches cannot cross-pollinate seeds.

    Not thread-safe: the service consults it only from the scheduler's
    serial prepare/commit phases, which is also what makes batch results
    independent of the domain-pool size. *)

type t

val create : ?capacity:int -> cell_size:float -> unit -> t
(** [capacity] (default 4096) is the maximum number of live cells;
    [cell_size] must be positive.  Raises [Invalid_argument] otherwise. *)

val cell_size : t -> float

val capacity : t -> int

val length : t -> int
(** Live cells. *)

val find : t -> chain_id:int -> dof:int -> Vec3.t -> Vec.t option
(** Seed for a target, if its (chain, DOF, cell) bucket is occupied.
    [chain_id] is the requesting chain's [Chain.fingerprint].  Returns a
    fresh copy (callers clamp it to their chain's joint limits).  Counts
    one hit or one miss.  A non-finite target is a miss. *)

val store : t -> chain_id:int -> dof:int -> target:Vec3.t -> Vec.t -> unit
(** Record a solved configuration for [target], replacing the cell's
    previous occupant.  The vector is copied.  Non-finite targets are
    ignored.  Raises [Invalid_argument] if the vector length is not
    [dof]. *)

val hits : t -> int

val misses : t -> int

val clear : t -> unit
(** Drops every entry and zeroes the hit/miss counters. *)
