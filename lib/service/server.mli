(** Persistent concurrent IK server: the `dadu serve --listen` engine.

    Thread-per-connection readers parse length-prefixed JSON frames
    ({!Problem_file.read_frame}) and answer control ops (hello / ping /
    open / close / stats) synchronously; solve and waypoint ops are
    enqueued into a bounded FIFO that a single dispatcher thread drains
    in batches through {!Service.solve_requests}.  A full queue sheds
    the request with a typed [overloaded] reply — backpressure, not
    unbounded queueing.

    {2 Determinism}

    Solve-type reply payloads are built from reply values only (no
    clocks, no addresses), with [%.17g] doubles — the bytes a client
    dumps are compared with [cmp] across pool sizes and the lockstep /
    snapshot-prepare execution modes in CI.  Session waypoints carry
    stable ordinals from the session's own enqueue counter and
    warm-start from the session slot, bypassing the shared seed cache,
    so their replies are a pure function of the session's waypoint
    sequence — independent of how other connections interleave
    (DESIGN.md §15).  One-shot solves use the client-assigned [id] as
    their stable ordinal; with warm-starting enabled their cache
    visibility can still depend on dispatcher batch boundaries, so
    full-stream byte determinism additionally needs the shared cache
    off.  Shedding consumes nothing for one-shot solves but a shed
    waypoint still consumed its ordinal — determinism is forfeited for
    a session that sheds.

    {2 Crash safety}

    With [config.journal] set, every session [open], committed waypoint
    (ordinal, θ, and the exact reply bytes) and [close] is appended to a
    checksummed {!Journal} {e before} the reply frame is written — the
    write-ahead barrier.  On startup the journal's valid prefix is
    replayed into the session registry, so a client that re-[open]s
    after a [kill -9] resumes with the same warm-start slot and ordinal
    counter and its remaining waypoints solve byte-identically to an
    uninterrupted run.  Waypoint ops may carry a client-side ["seq"]
    index: a resent waypoint whose [seq] already committed is answered
    with the original reply bytes from a bounded per-session ring
    (at most one solve and exactly one well-formed reply per waypoint,
    whatever the wire did in between — DESIGN.md §16).

    {2 Connection hygiene}

    Readers enforce an optional idle timeout (slow-loris defense) and a
    frame-completion timeout via {!Problem_file.read_frame_fd}; both
    drop the connection after a final typed error reply.  Connections
    beyond [max_connections] get one [busy] frame with a
    [retry_after_ms] hint and are closed.  When [est_job_ms] is
    positive, a queued job whose estimated wait exceeds its request
    deadline is shed up-front with [retry_after_ms] attached to the
    [overloaded] reply.

    {2 Shutdown}

    {!stop} is async-signal-safe (an atomic flag plus a self-pipe
    write): install it as the SIGTERM/SIGINT handler.  {!run} then
    stops accepting, pushes EOF at every connection, lets the
    dispatcher finish everything already admitted, flushes the replies,
    and returns — the graceful-drain contract the CI serve-live job
    asserts by [kill -TERM] and checking exit 0 with all in-flight
    replies present. *)

type listen = Unix_sock of string | Tcp of string * int

val listen_of_string : string -> (listen, string) result
(** ["unix:<path>"], ["tcp:<host>:<port>"] (empty host means
    127.0.0.1), or a bare path (treated as a Unix socket). *)

type config = {
  service : Service.config;
  queue_capacity : int;
      (** admission bound: solve/waypoint ops beyond this many queued
          jobs are shed with an [overloaded] reply.  [0] sheds
          everything — the load-shedding test hook. *)
  max_batch : int;  (** most jobs handed to one {!Service} batch *)
  max_connections : int;
      (** live-connection cap; excess connections are refused with one
          [busy] frame carrying [retry_after_ms] *)
  idle_timeout_s : float option;
      (** drop a connection idle (no frame started) this long;
          [None] waits forever *)
  frame_timeout_s : float option;
      (** drop a connection whose started frame is incomplete after
          this long; [None] restores the legacy block-forever read *)
  retry_after_ms : int;
      (** back-off hint attached to [busy] refusals and shed replies *)
  est_job_ms : float;
      (** estimated per-job service time used for deadline-aware
          shedding; [0.] disables the estimate (queue-full is then the
          only shed trigger) *)
  net_fault : Dadu_util.Fault.t;
      (** wire-fault registry for the [net-*] sites; each accepted
          connection gets deterministic forks (reader [2i], writer
          [2i+1]).  {!Dadu_util.Fault.disabled} for production. *)
  journal : string option;  (** session journal path; [None] disables *)
}

val default_config : config

type t

val create : ?pool:Dadu_util.Domain_pool.t -> ?config:config -> unit -> t
(** Raises [Invalid_argument] on a negative queue capacity, a
    non-positive batch size or connection cap, a negative
    [retry_after_ms], or an unopenable/corrupt journal file. *)

val journal_recovery : t -> Journal.load_error option
(** The defect (if any) found at the journal's tail when {!create}
    opened it; the valid prefix was replayed and the tail truncated. *)

val stop : t -> unit
(** Begin a graceful drain.  Async-signal-safe and idempotent. *)

val run : t -> listen:listen -> unit
(** Bind, accept, and serve until {!stop}; returns after the drain
    completes.  Ignores SIGPIPE.  An existing Unix socket file at the
    path is replaced, and removed again on shutdown. *)

val render_tenants : t -> string
(** Per-tenant metrics tables (sorted by tenant name) with shed
    counts — the summary the CLI prints after {!run} returns. *)

val service : t -> Service.t
(** The underlying service (cumulative metrics across all tenants). *)
