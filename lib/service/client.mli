(** Resilient script-driven client for the `dadu serve` protocol: the
    engine behind `dadu client`.

    Ops are written pipelined (one frame each, ids are script indices)
    and replies collected until every op has exactly one answer.
    Solve-type replies (solved / rejected / faulted / overloaded) are
    keyed by id for the byte-comparable dump; everything else is
    surfaced through [on_event] in arrival order — request order,
    because the server answers control ops from the connection's own
    reader thread.

    {2 Reconnect and resume}

    When the connection dies mid-stream (EOF, reset, desync, read
    timeout, injected [net-*] fault) and [retries] remain, the client
    backs off (exponential in the consecutive-failure count, jittered
    from [seed], capped at 10 s), reconnects, replays a {e prelude} —
    the last acknowledged [hello] plus a re-[open] for every session
    with unanswered ops — and resends every unanswered op.  Resent
    waypoints carry a per-session ["seq"] index (offset by the
    [waypoints] count of that session epoch's first [opened] reply,
    reset at each scripted [close], and attached only once that reply
    has been seen — first-pass waypoints take the server's legacy
    counter path), so a journal-backed server answers a resent,
    already-committed waypoint with the original reply bytes instead of
    solving twice: the dump is byte-identical to an uninterrupted run
    even across a server [kill -9] and restart (DESIGN.md §16).

    A server [busy] refusal counts as a connection failure and consumes
    a retry.  [read_timeout_s] bounds both the idle wait for the next
    reply and the completion of a started reply frame — without it, a
    dead-but-open connection (e.g. an injected [net-cut] that dropped a
    request) would block forever. *)

type error =
  | Connect of string
      (** the initial connection could not be established at all *)
  | Unrecovered of string
      (** the stream failed and the retry budget is exhausted *)

type outcome = {
  solves : (int * string) list;  (** solve-type replies, sorted by id *)
  overloaded : int;  (** how many of those are [overloaded] sheds *)
  reconnects : int;  (** connection attempts beyond the first *)
}

val payload_of_op : ?seq:int -> int -> Problem_file.op -> string
(** The wire payload for a script op with client id (script index)
    [id]; [seq] is attached to waypoint ops only. *)

val reply_is_solve_type : string -> int option
(** [Some id] when the payload is a solve-type reply carrying an id. *)

val run :
  ?retries:int ->
  ?backoff_ms:int ->
  ?seed:int ->
  ?read_timeout_s:float ->
  ?fault:Dadu_util.Fault.t ->
  ?on_event:(string -> unit) ->
  ?on_reconnect:(int -> unit) ->
  connect:(unit -> (Unix.file_descr, string) result) ->
  Problem_file.op array ->
  (outcome, error) result
(** [retries] (default 0) is the reconnection budget; [backoff_ms]
    (default 100) the base back-off; [fault] a client-side wire-fault
    registry for the [net-*] sites, forked per connection attempt
    (reader fork [2k], writer fork [2k+1]); [on_reconnect] is called
    with the attempt count before each back-off.  [connect] is invoked
    once per attempt and may itself retry (e.g. while a killed server
    restarts). *)
