open Dadu_util
open Dadu_core

(** Service observability: counters and latency/iteration histograms.

    Counters are [Atomic.t]-backed, so concurrent [record] calls cannot
    lose increments; histograms are mutex-guarded.  The service records
    from the scheduler's serial commit phase, which additionally makes
    the recorded stream deterministic.

    Invariants (tested):
    [converged + failed + rejected + faulted = requests] and
    [cache_hits + cache_misses = requests - rejected - faulted -
    session_requests] (seed-cache lookups happen only for problems that
    pass validation, complete their solve, and do not belong to a
    trajectory session — session requests bypass the shared cache, their
    warm-start slot is counted by [session_warm] instead). *)

type t

val create : unit -> t

type event =
  | Rejected of Ik.invalid  (** failed validation; never dispatched *)
  | Faulted of string  (** a solver raised; captured, problem dropped *)
  | Solved of {
      converged : bool;
      diverged : bool;  (** reported attempt ended [Diverged] *)
      fallbacks : int;  (** extra solvers tried after the first *)
      cache_hit : bool;  (** warm-started from the seed cache *)
      session : bool;  (** belongs to a trajectory session *)
      session_hit : bool;
          (** the session's warm-start slot was filled and offered
              (meaningful only when [session] is true) *)
      deadline_exceeded : bool;
          (** dispatched past its deadline or the batch budget:
              short-circuited to the cheapest solver tier *)
      breaker_skips : int;  (** solver tiers skipped by open breakers *)
      retries : int;  (** perturbed-seed re-entries of the chain *)
      retry_converged : bool;  (** a retry (not the first pass) converged *)
      latency_s : float;  (** end-to-end solve wall clock *)
      iterations : int;  (** iterations of the reported attempt *)
    }

val record : t -> event -> unit

type net_event =
  | Timeout  (** a connection hit its idle or frame read deadline *)
  | Disconnect  (** a connection dropped uncleanly (desync, reset, cut) *)
  | Journal_append  (** one record written to the session journal *)
  | Journal_replay  (** one record applied from the journal at startup *)
  | Retry_after_shed  (** a shed that attached a retry_after hint *)
  | Busy_refusal  (** a connection refused at the connection cap *)

val record_net : t -> net_event -> unit
(** Server-side failure modes outside the solve pipeline (connection
    hygiene and crash safety); each bumps its own counter and none
    count as a request. *)

val record_lockstep : t -> int -> unit
(** [record_lockstep t n] counts [n] lanes whose head tier was solved by
    the lockstep mega-batch sweep (Service [lockstep] mode); bumped once
    per scheduler wave, from the serial phase. *)

val record_seed : t -> library_hit:bool -> Seed_select.source -> unit
(** One speculative seed selection: [library_hit] when the posture
    library contributed a nearest-neighbour candidate, and the winning
    candidate's provenance.  Recorded from the scheduler's serial
    prepare phase, once per request with [seed_candidates >= 2]. *)

type phase = Prepare | Work | Commit
(** One scheduler wave phase (mirrors [Scheduler.wave_phase]; kept
    separate so this module stays scheduler-independent). *)

val phase_name : phase -> string
(** ["prepare"], ["work"], ["commit"]. *)

val record_phase : t -> phase -> float -> unit
(** [record_phase t p dur_s] accumulates [dur_s] seconds of wall time
    into phase [p]'s total.  Called once per wave per phase from the
    scheduler's orchestrating domain (via its [phase_done] hook), so the
    totals decompose batch wall time into the serial prepare/commit
    phases versus the parallel work phase — the Amdahl breakdown the
    snapshot-prepare path is judged by. *)

val reset : t -> unit

type snapshot = {
  requests : int;
  converged : int;
  failed : int;  (** dispatched but no solver in the chain converged *)
  rejected : int;
  faulted : int;
  fallback_used : int;  (** problems needing at least one fallback *)
  deadline_exceeded : int;  (** requests short-circuited past deadline *)
  cache_hits : int;
  cache_misses : int;
  diverged : int;  (** replies whose reported attempt diverged *)
  breaker_skips : int;  (** total tiers skipped by open breakers *)
  retries : int;  (** total perturbed-seed retries *)
  retry_converged : int;  (** requests rescued by a retry *)
  lockstep_lanes : int;  (** lanes solved via the lockstep mega-batch *)
  session_requests : int;  (** requests served under a trajectory session *)
  session_warm : int;  (** session requests offered the warm-start slot *)
  library_hits : int;  (** posture-library NN candidates offered *)
  seed_theta0_wins : int;  (** speculative selections won by θ₀ *)
  seed_session_wins : int;  (** … by the session warm-start slot *)
  seed_cache_wins : int;  (** … by the seed-cache hit *)
  seed_library_wins : int;  (** … by the posture-library neighbour *)
  seed_zero_wins : int;  (** … by the clamped zero posture *)
  seed_perturbed_wins : int;  (** … by a perturbed base *)
  timeouts : int;  (** connections dropped at a read deadline *)
  disconnects : int;  (** connections dropped uncleanly *)
  journal_appends : int;  (** session journal records written *)
  journal_replays : int;  (** session journal records applied at startup *)
  retry_after_sheds : int;  (** sheds that attached a retry_after hint *)
  busy_refusals : int;  (** connections refused at the connection cap *)
  prepare_s : float;  (** wall seconds in serial/snapshot prepare phases *)
  work_s : float;  (** wall seconds in parallel work phases *)
  commit_s : float;  (** wall seconds in serial commit phases *)
  latency : Histogram.summary option;  (** seconds; [None] before traffic *)
  iterations : Histogram.summary option;
}

val snapshot : t -> snapshot

val serial_fraction : snapshot -> float option
(** [(prepare_s + commit_s) / total phase time]: the Amdahl serial
    fraction of the wave pipeline.  [None] before any phase has been
    recorded. *)

val render : snapshot -> string
(** The metrics table `dadu serve-batch` prints: counters, cache hit
    rate, the per-phase wall-time breakdown with its serial fraction,
    latency p50/p95/p99 in milliseconds, iteration percentiles. *)
