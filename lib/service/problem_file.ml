open Dadu_core
open Dadu_kinematics
module Vec = Dadu_linalg.Vec
module Vec3 = Dadu_linalg.Vec3
module Rng = Dadu_util.Rng

let robot_of_spec spec =
  let spec = String.trim spec in
  match String.index_opt spec ':' with
  | Some i when String.lowercase_ascii (String.sub spec 0 i) = "file" ->
    let path = String.sub spec (i + 1) (String.length spec - i - 1) in
    (match Chain_format.parse_file path with
    | Ok chain -> Ok chain
    | Error msg -> Error (Printf.sprintf "%s: %s" path msg))
  | _ ->
    let fail () =
      Error
        (Printf.sprintf
           "unknown robot %S (expected arm6 | arm7 | scara | snake:<dof> | \
            eval:<dof> | planar:<dof> | file:<path>)"
           spec)
    in
    (match String.split_on_char ':' (String.lowercase_ascii spec) with
    | [ "arm6" ] -> Ok (Robots.arm_6dof ())
    | [ "arm7" ] -> Ok (Robots.arm_7dof ())
    | [ "scara" ] -> Ok (Robots.scara ())
    | [ kind; dof ] ->
      (match (kind, int_of_string_opt dof) with
      | _, None -> fail ()
      | _, Some d when d <= 0 -> fail ()
      | "snake", Some d -> Ok (Robots.snake ~dof:d)
      | "eval", Some d -> Ok (Robots.eval_chain ~dof:d)
      | "planar", Some d -> Ok (Robots.planar ~dof:d ~reach:(float_of_int d) ())
      | _, Some _ -> fail ())
    | _ -> fail ())

let floats_of_csv s =
  let parts = String.split_on_char ',' s in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest ->
      (match float_of_string_opt (String.trim p) with
      | Some f -> go (f :: acc) rest
      | None -> None)
  in
  go [] parts

let vec3_of_string s =
  match floats_of_csv s with
  | Some [ x; y; z ] -> Some (Vec3.make x y z)
  | Some _ | None -> None

(* "key=value" → value, when the token carries that key *)
let keyed key token =
  match String.index_opt token '=' with
  | Some i when String.sub token 0 i = key ->
    Some (String.sub token (i + 1) (String.length token - i - 1))
  | Some _ | None -> None

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens line =
  String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

type entry = { problem : Ik.problem; deadline_s : float option }

(* "deadline=<s>" on a target/random line -> per-request deadline.  [Ok
   None] when the token list has no deadline; [Error] mentions the bad
   value. *)
let deadline_of_tokens tokens =
  let rec go = function
    | [] -> Ok None
    | token :: rest ->
      (match keyed "deadline" token with
      | None -> go rest
      | Some v ->
        (match float_of_string_opt v with
        | Some d when d >= 0. && Float.is_finite d -> Ok (Some d)
        | Some _ | None ->
          Error (Printf.sprintf "deadline must be a non-negative number (got %S)" v)))
  in
  go tokens

let without_deadline tokens =
  List.filter (fun t -> keyed "deadline" t = None) tokens

let parse_requests text =
  let lines = String.split_on_char '\n' text in
  let problems = ref [] in
  let robot = ref None in
  let error = ref None in
  let fail lineno fmt =
    Printf.ksprintf
      (fun msg -> if !error = None then error := Some (Printf.sprintf "line %d: %s" lineno msg))
      fmt
  in
  let require_robot lineno =
    match !robot with
    | Some chain -> Some chain
    | None ->
      fail lineno "target before any robot declaration";
      None
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if !error = None then
        let line_tokens = tokens (strip_comment line) in
        let deadline_s =
          match deadline_of_tokens line_tokens with
          | Ok d -> d
          | Error msg ->
            fail lineno "%s" msg;
            None
        in
        let add problem = problems := { problem; deadline_s } :: !problems in
        match without_deadline line_tokens with
        | [] -> ()
        | "robot" :: rest ->
          (match robot_of_spec (String.concat " " rest) with
          | Ok chain -> robot := Some chain
          | Error msg -> fail lineno "%s" msg)
        | [ "target"; coords ] ->
          (match require_robot lineno with
          | None -> ()
          | Some chain ->
            (match vec3_of_string coords with
            | None -> fail lineno "expected target x,y,z (got %S)" coords
            | Some target ->
              let theta0 = Chain.clamp_config chain (Vec.create (Chain.dof chain)) in
              add (Ik.problem ~chain ~target ~theta0)))
        | [ "target"; coords; extra ] ->
          (match require_robot lineno with
          | None -> ()
          | Some chain ->
            (match (vec3_of_string coords, keyed "theta0" extra) with
            | None, _ -> fail lineno "expected target x,y,z (got %S)" coords
            | _, None -> fail lineno "expected theta0=a,b,... (got %S)" extra
            | Some target, Some thetas ->
              (match floats_of_csv thetas with
              | None -> fail lineno "expected theta0=a,b,... (got %S)" extra
              | Some vals when List.length vals <> Chain.dof chain ->
                fail lineno "theta0 has %d entries but %s has %d DOF"
                  (List.length vals) (Chain.name chain) (Chain.dof chain)
              | Some vals ->
                add (Ik.problem ~chain ~target ~theta0:(Vec.of_list vals)))))
        | "random" :: count :: rest ->
          (match require_robot lineno with
          | None -> ()
          | Some chain ->
            let seed =
              match rest with
              | [] -> Some 42
              | [ token ] -> Option.bind (keyed "seed" token) int_of_string_opt
              | _ -> None
            in
            (match (int_of_string_opt count, seed) with
            | Some n, Some seed when n > 0 ->
              let rng = Rng.create seed in
              for _ = 1 to n do
                add (Ik.random_problem rng chain)
              done
            | Some n, Some _ -> fail lineno "random count must be positive (got %d)" n
            | None, _ -> fail lineno "expected random <count> [seed=<n>] (got %S)" count
            | _, None -> fail lineno "expected random <count> [seed=<n>]"))
        | keyword :: _ ->
          fail lineno "unknown declaration %S (robot | target | random)" keyword)
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> Ok (Array.of_list (List.rev !problems))

(* ---- wire framing -----------------------------------------------------

   One frame of the `dadu serve` protocol: the payload byte length in
   ASCII decimal, a newline, the payload bytes, a newline.  Both sides of
   the socket speak only frames; payloads are JSON documents but the
   framing layer never looks inside them, so a malformed JSON payload
   costs a typed error reply while the stream stays synchronized.  A
   malformed length line is different: the reader no longer knows where
   the next frame starts, so the connection must be dropped (the server
   sends a final error reply first). *)

(* a garbage length line must not convince us to allocate gigabytes *)
let max_frame_bytes = 1 lsl 24

let write_frame oc payload =
  Out_channel.output_string oc (string_of_int (String.length payload));
  Out_channel.output_char oc '\n';
  Out_channel.output_string oc payload;
  Out_channel.output_char oc '\n'

let read_frame ic =
  match In_channel.input_line ic with
  | None -> Ok None
  | Some line ->
    (match int_of_string_opt (String.trim line) with
    | Some n when n >= 0 && n <= max_frame_bytes ->
      (match In_channel.really_input_string ic n with
      | None -> Error "truncated frame payload"
      | Some payload ->
        (match In_channel.input_char ic with
        | Some '\n' -> Ok (Some payload)
        | Some _ -> Error "missing frame terminator"
        | None -> Error "truncated frame (missing terminator)"))
    | Some n -> Error (Printf.sprintf "frame length out of range (%d)" n)
    | None ->
      Error (Printf.sprintf "malformed frame length line (got %S)" line))

(* ---- deadline-aware framing over a raw descriptor ----------------------

   [read_frame] above blocks on a stdlib channel, so a peer that stops
   mid-frame pins the reading thread forever — the slow-loris hole the
   server's connection hygiene closes.  This reader works on the raw
   descriptor with [Unix.select], enforcing two distinct deadlines: an
   *idle* timeout while waiting for the first byte of the next frame,
   and a *frame* timeout for completing a frame once its first byte has
   arrived.  Either [None] means wait forever (the legacy behavior). *)

type frame_reader = {
  rfd : Unix.file_descr;
  mutable rbuf : Bytes.t;
  mutable rlo : int; (* first unconsumed byte *)
  mutable rhi : int; (* first unfilled byte *)
}

let frame_reader fd = { rfd = fd; rbuf = Bytes.create 8192; rlo = 0; rhi = 0 }

type framed =
  | Frame of string
  | Eof  (** clean EOF before a length line *)
  | Timed_out of [ `Idle | `Frame ]
  | Frame_error of string  (** stream desynchronized: drop the connection *)

(* make room to read at least [need] more bytes past rhi *)
let reserve r need =
  let cap = Bytes.length r.rbuf in
  if cap - r.rhi < need then begin
    let live = r.rhi - r.rlo in
    if cap - live >= need && r.rlo > 0 then begin
      Bytes.blit r.rbuf r.rlo r.rbuf 0 live;
      r.rlo <- 0;
      r.rhi <- live
    end
    else begin
      let cap' = max (live + need) (2 * cap) in
      let b = Bytes.create cap' in
      Bytes.blit r.rbuf r.rlo b 0 live;
      r.rbuf <- b;
      r.rlo <- 0;
      r.rhi <- live
    end
  end

(* one refill bounded by [deadline] (absolute seconds, None = forever) *)
let refill r ~deadline =
  reserve r 1;
  let rec wait () =
    let timeout =
      match deadline with
      | None -> -1.
      | Some d -> d -. Unix.gettimeofday ()
    in
    if timeout <= 0. && deadline <> None then `Timeout
    else
      match Unix.select [ r.rfd ] [] [] timeout with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      | [], _, _ -> if deadline = None then wait () else `Timeout
      | _ -> (
        match Unix.read r.rfd r.rbuf r.rhi (Bytes.length r.rbuf - r.rhi) with
        | 0 -> `Eof
        | n ->
          r.rhi <- r.rhi + n;
          `Ok
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
        | exception
            Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.EBADF), _, _)
          ->
          `Eof
        | exception Unix.Unix_error (e, _, _) ->
          `Error (Unix.error_message e))
  in
  wait ()

let max_length_line = 32

let read_frame_fd ?idle_timeout_s ?frame_timeout_s r =
  let deadline_of now = function
    | None -> None
    | Some t -> Some (now +. t)
  in
  (* phase 1: wait (idle-bounded) for the first byte of the frame *)
  let rec first_byte () =
    if r.rhi > r.rlo then Ok ()
    else
      match
        refill r ~deadline:(deadline_of (Unix.gettimeofday ()) idle_timeout_s)
      with
      | `Ok -> first_byte ()
      | `Eof -> Error Eof
      | `Timeout -> Error (Timed_out `Idle)
      | `Error msg -> Error (Frame_error msg)
  in
  match first_byte () with
  | Error e -> e
  | Ok () ->
    (* phase 2: a frame has started; it must complete within the frame
       deadline *)
    let deadline = deadline_of (Unix.gettimeofday ()) frame_timeout_s in
    let rec fill_until have =
      if r.rhi - r.rlo >= have then Ok ()
      else
        match refill r ~deadline with
        | `Ok -> fill_until have
        | `Eof -> Error (Frame_error "truncated frame (eof)")
        | `Timeout -> Error (Timed_out `Frame)
        | `Error msg -> Error (Frame_error msg)
    in
    (* scan offsets are relative to rlo: refills may compact the buffer
       and move the live region *)
    let rec find_nl off =
      if r.rlo + off < r.rhi then
        if Bytes.get r.rbuf (r.rlo + off) = '\n' then Ok off
        else if off >= max_length_line then
          Error (Frame_error "malformed frame length line (too long)")
        else find_nl (off + 1)
      else
        match refill r ~deadline with
        | `Ok -> find_nl off
        | `Eof -> Error (Frame_error "truncated frame (eof in length line)")
        | `Timeout -> Error (Timed_out `Frame)
        | `Error msg -> Error (Frame_error msg)
    in
    (match find_nl 0 with
    | Error e -> e
    | Ok nl ->
      let line = Bytes.sub_string r.rbuf r.rlo nl in
      (match int_of_string_opt (String.trim line) with
      | Some n when n >= 0 && n <= max_frame_bytes ->
        let line_len = nl + 1 in
        (match fill_until (line_len + n + 1) with
        | Error e -> e
        | Ok () ->
          let payload = Bytes.sub_string r.rbuf (r.rlo + line_len) n in
          let term = Bytes.get r.rbuf (r.rlo + line_len + n) in
          r.rlo <- r.rlo + line_len + n + 1;
          if r.rlo = r.rhi then begin
            r.rlo <- 0;
            r.rhi <- 0
          end;
          if term = '\n' then Frame payload
          else Frame_error "missing frame terminator")
      | Some n -> Frame_error (Printf.sprintf "frame length out of range (%d)" n)
      | None ->
        Frame_error (Printf.sprintf "malformed frame length line (got %S)" line)))

(* ---- wire-level fault injection ----------------------------------------

   The four network sites of Dadu_util.Fault, consulted on the sender
   side of every frame.  Faults act on the *framing layer*: cut and
   short-frame abandon the stream (the caller marks the connection dead
   and shuts it down), garble corrupts the length line (payloads carry
   no checksum, so only header corruption is reliably detectable by the
   peer), stall pauses mid-frame — long enough stalls trip the peer's
   frame deadline.  Consultation order is fixed (cut, short, garble,
   stall) so a registry's firing sequence depends only on its seed and
   the frame sequence written through it. *)

let write_frame_injected ~fault oc payload =
  if not (Dadu_util.Fault.enabled fault) then begin
    write_frame oc payload;
    flush oc;
    true
  end
  else begin
    let fires site = Dadu_util.Fault.fires fault ~site () in
    match fires Dadu_util.Fault.net_cut with
    | Some _ -> false
    | None ->
      let frame =
        Printf.sprintf "%d\n%s\n" (String.length payload) payload
      in
      (match fires Dadu_util.Fault.net_short_frame with
      | Some _ ->
        let keep = max 1 (String.length frame / 2) in
        (try
           output_string oc (String.sub frame 0 keep);
           flush oc
         with Sys_error _ -> ());
        false
      | None ->
        let frame =
          match fires Dadu_util.Fault.net_garble with
          | None -> frame
          | Some _ ->
            let b = Bytes.of_string frame in
            Bytes.set b 0 '#';
            Bytes.unsafe_to_string b
        in
        let stall = fires Dadu_util.Fault.net_stall in
        (try
           (match stall with
           | Some arg when arg > 0. ->
             let cut = String.index frame '\n' + 1 in
             output_string oc (String.sub frame 0 cut);
             flush oc;
             Thread.delay arg;
             output_string oc
               (String.sub frame cut (String.length frame - cut))
           | _ -> output_string oc frame);
           flush oc;
           true
         with Sys_error _ -> false))
  end

(* ---- client scripts ---------------------------------------------------

   The `dadu client` op stream: one op per line, same comment/token
   rules as problem files.  Robot specs stay strings — the server
   resolves them, so a bad spec is an exercised error path rather than a
   client-side crash. *)

type op =
  | Hello of { tenant : string }
  | Open of { session : string; robot : string }
  | Waypoint of { session : string; x : float; y : float; z : float }
  | Solve of {
      robot : string;
      x : float;
      y : float;
      z : float;
      theta0 : float list option;
      deadline_s : float option;
    }
  | Ping
  | Close of { session : string }
  | Stats
  | Raw of string

let parse_script text =
  let lines = String.split_on_char '\n' text in
  let ops = ref [] in
  let robot = ref None in
  let error = ref None in
  let fail lineno fmt =
    Printf.ksprintf
      (fun msg ->
        if !error = None then
          error := Some (Printf.sprintf "line %d: %s" lineno msg))
      fmt
  in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if !error = None then begin
        let stripped = strip_comment line in
        let line_tokens = tokens stripped in
        let add op = ops := op :: !ops in
        match line_tokens with
        | [] -> ()
        | "raw" :: _ ->
          (* verbatim payload after "raw ": the malformed-frame test
             hook, so no token/comment processing beyond the keyword *)
          let body =
            let s = String.trim stripped in
            String.trim (String.sub s 3 (String.length s - 3))
          in
          add (Raw body)
        | [ "hello"; tenant ] -> add (Hello { tenant })
        | "robot" :: rest when rest <> [] ->
          robot := Some (String.concat " " rest)
        | [ "open"; session; robot ] -> add (Open { session; robot })
        | [ "waypoint"; session; coords ] ->
          (match vec3_of_string coords with
          | None -> fail lineno "expected waypoint <session> x,y,z (got %S)" coords
          | Some t -> add (Waypoint { session; x = t.Vec3.x; y = t.Vec3.y; z = t.Vec3.z }))
        | "solve" :: coords :: rest ->
          (match !robot with
          | None -> fail lineno "solve before any robot declaration"
          | Some robot ->
            (match (vec3_of_string coords, deadline_of_tokens rest) with
            | None, _ -> fail lineno "expected solve x,y,z (got %S)" coords
            | _, Error msg -> fail lineno "%s" msg
            | Some t, Ok deadline_s ->
              let theta0 =
                List.find_map (fun tok -> keyed "theta0" tok) rest
              in
              (match (theta0, Option.map floats_of_csv theta0) with
              | Some raw, Some None ->
                fail lineno "expected theta0=a,b,... (got %S)" raw
              | _, theta0 ->
                add
                  (Solve
                     {
                       robot;
                       x = t.Vec3.x;
                       y = t.Vec3.y;
                       z = t.Vec3.z;
                       theta0 = Option.join theta0;
                       deadline_s;
                     }))))
        | [ "ping" ] -> add Ping
        | [ "close"; session ] -> add (Close { session })
        | [ "stats" ] -> add Stats
        | keyword :: _ ->
          fail lineno
            "unknown op %S (hello | robot | open | waypoint | solve | ping | \
             close | stats | raw)"
            keyword
      end)
    lines;
  match !error with
  | Some msg -> Error msg
  | None -> Ok (Array.of_list (List.rev !ops))

let parse_script_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_script text
  | exception Sys_error msg -> Error msg

let parse text =
  Result.map
    (Array.map (fun e -> e.problem))
    (parse_requests text)

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse text
  | exception Sys_error msg -> Error msg

let parse_requests_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_requests text
  | exception Sys_error msg -> Error msg
