(** Per-solver circuit breaker.

    A solver tier that keeps misbehaving (guard-tripped divergence,
    injected or real crashes) is taken out of the fallback chain instead
    of burning its full iteration budget on every request:

    - [Closed]: requests flow; [threshold] {e consecutive} failures trip
      the breaker.
    - [Open]: the tier is skipped until [cooldown] more requests have
      been committed.
    - [Half_open]: after the cooldown, probes flow again — one success
      re-closes the breaker, one failure reopens it for another
      cooldown.

    Time is the {e request ordinal}, not the wall clock: the service
    reads breakers in the scheduler's serial prepare phase and records
    outcomes in the serial commit phase, so every state transition is a
    pure function of the committed request sequence and batches replay
    identically across pool sizes.  The structure itself is
    single-writer and does no locking. *)

type settings = { threshold : int; cooldown : int }

val default_settings : settings
(** 3 consecutive failures to trip; 16 requests of cooldown. *)

type state = Closed | Open | Half_open

type t

val create : settings -> t
(** Raises [Invalid_argument] on non-positive settings. *)

val state : t -> state

val trips : t -> int
(** How many times this breaker has opened (monitoring). *)

val allow : t -> now:int -> bool
(** [allow t ~now] decides whether the tier may serve the request with
    ordinal [now]; flips [Open → Half_open] when the cooldown has
    elapsed.  Call from a serial phase. *)

val success : t -> unit
(** Record a confirmed convergence: closes the breaker. *)

val failure : t -> now:int -> unit
(** Record a malfunction (divergence or crash, {e not} an honest
    miss-accuracy): counts toward the trip threshold, reopens a
    half-open breaker. *)
