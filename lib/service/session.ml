open Dadu_linalg
open Dadu_kinematics

type t = {
  name : string;
  chain : Chain.t;
  chain_fp : int;
  mutable slot : Vec.t option;
      (* last converged joint vector; the temporal warm start *)
  mutable waypoints : int;
  mutable warm : int;
  mutable seq : int; (* next waypoint ordinal (enqueue-side counter) *)
}

let create ~name ~chain =
  {
    name;
    chain;
    chain_fp = Chain.fingerprint chain;
    slot = None;
    waypoints = 0;
    warm = 0;
    seq = 0;
  }

let name t = t.name

let chain t = t.chain

let waypoints t = t.waypoints

let warm_hits t = t.warm

let next_ordinal t =
  let o = t.seq in
  t.seq <- t.seq + 1;
  o

let accepted t = t.seq

(* The slot is only offered to the chain that filled it: a mismatched
   fingerprint (different robot under the same session object) is treated
   as cold rather than risking a wrong-DOF blit. *)
let seed t ~chain_fp = if chain_fp = t.chain_fp then t.slot else None

let store t ~chain_fp theta =
  if chain_fp = t.chain_fp then begin
    let dst =
      match t.slot with
      | Some dst when Array.length dst = Array.length theta -> dst
      | Some _ | None ->
        let dst = Array.make (Array.length theta) 0. in
        t.slot <- Some dst;
        dst
    in
    Array.blit theta 0 dst 0 (Array.length theta)
  end

let record t ~warm =
  t.waypoints <- t.waypoints + 1;
  if warm then t.warm <- t.warm + 1

let clear t = t.slot <- None
