open Dadu_linalg
open Dadu_kinematics

(* Recent committed replies, kept verbatim for duplicate replay: a
   reconnecting client that resends an already-committed waypoint gets
   the original bytes back instead of a second solve — the at-most-once
   half of the reconnect contract (DESIGN.md §16).  Bounded: entries
   older than [ring_capacity] commits are evicted; a resend that far
   behind is answered with a typed [stale] error by the server. *)
let ring_capacity = 128

type t = {
  name : string;
  chain : Chain.t;
  chain_fp : int;
  mutable slot : Vec.t option;
      (* last converged joint vector; the temporal warm start *)
  mutable waypoints : int;
  mutable warm : int;
  mutable seq : int; (* next waypoint ordinal (enqueue-side counter) *)
  replies : (int, string) Hashtbl.t; (* ordinal -> committed reply bytes *)
}

let create ~name ~chain =
  {
    name;
    chain;
    chain_fp = Chain.fingerprint chain;
    slot = None;
    waypoints = 0;
    warm = 0;
    seq = 0;
    replies = Hashtbl.create 16;
  }

(* Rebuild a session from journal replay: [committed] waypoints are
   already durable, so the ordinal counter resumes right after them and
   the slot holds the last converged configuration — the state an
   uninterrupted server would hold with all in-flight work excluded. *)
let restore ~name ~chain ~committed ~warm ~slot =
  let t = create ~name ~chain in
  t.seq <- committed;
  t.waypoints <- committed;
  t.warm <- warm;
  (match slot with
  | None -> ()
  | Some theta ->
    let dst = Array.make (Array.length theta) 0. in
    Array.blit theta 0 dst 0 (Array.length theta);
    t.slot <- Some dst);
  t

let name t = t.name

let chain t = t.chain

let waypoints t = t.waypoints

let warm_hits t = t.warm

let next_ordinal t =
  let o = t.seq in
  t.seq <- t.seq + 1;
  o

let accepted t = t.seq

(* The slot is only offered to the chain that filled it: a mismatched
   fingerprint (different robot under the same session object) is treated
   as cold rather than risking a wrong-DOF blit. *)
let seed t ~chain_fp = if chain_fp = t.chain_fp then t.slot else None

let store t ~chain_fp theta =
  if chain_fp = t.chain_fp then begin
    let dst =
      match t.slot with
      | Some dst when Array.length dst = Array.length theta -> dst
      | Some _ | None ->
        let dst = Array.make (Array.length theta) 0. in
        t.slot <- Some dst;
        dst
    in
    Array.blit theta 0 dst 0 (Array.length theta)
  end

let record t ~warm =
  t.waypoints <- t.waypoints + 1;
  if warm then t.warm <- t.warm + 1

let remember_reply t ~ordinal payload =
  Hashtbl.replace t.replies ordinal payload;
  let evict = ordinal - ring_capacity in
  if evict >= 0 then Hashtbl.remove t.replies evict

let recall_reply t ~ordinal = Hashtbl.find_opt t.replies ordinal

let clear t = t.slot <- None
