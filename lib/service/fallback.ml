open Dadu_core

type kind =
  | Quick_ik
  | Jt_serial
  | Jt_buss
  | Jt_linesearch
  | Pinv
  | Dls
  | Sdls
  | Ccd

let all =
  [
    ("quick-ik", Quick_ik);
    ("jt-serial", Jt_serial);
    ("jt-buss", Jt_buss);
    ("jt-linesearch", Jt_linesearch);
    ("pinv", Pinv);
    ("dls", Dls);
    ("sdls", Sdls);
    ("ccd", Ccd);
  ]

let name kind = fst (List.find (fun (_, k) -> k = kind) all)

let of_string s =
  match List.assoc_opt (String.lowercase_ascii (String.trim s)) all with
  | Some k -> Ok k
  | None ->
    Error
      (Printf.sprintf "unknown solver %S (expected %s)" s
         (String.concat " | " (List.map fst all)))

let chain_of_string s =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest ->
      (match of_string part with
      | Ok k -> parse (k :: acc) rest
      | Error _ as e -> e)
  in
  match List.filter (fun p -> String.trim p <> "") (String.split_on_char ',' s) with
  | [] -> Error "empty solver chain"
  | parts -> parse [] parts

let chain_to_string chain = String.concat "," (List.map name chain)

(* Every dispatch reuses the calling domain's cached workspace for the
   problem's DOF, so service traffic (which fans problems out across
   scheduler domains) runs the solvers' zero-allocation paths instead of
   rebuilding scratch buffers per request.  Safe because each domain runs
   one solve at a time. *)
let solver ?(speculations = 64) kind ~config p =
  let workspace = Workspace.local ~dof:(Dadu_kinematics.Chain.dof p.Ik.chain) in
  match kind with
  | Quick_ik -> Dadu_core.Quick_ik.solve ~speculations ~workspace ~config p
  | Jt_serial -> Dadu_core.Jt_serial.solve ~workspace ~config p
  | Jt_buss -> Dadu_core.Jt_buss.solve ~workspace ~config p
  | Jt_linesearch -> Dadu_core.Jt_linesearch.solve ~workspace ~config p
  | Pinv -> Dadu_core.Pinv_svd.solve ~workspace ~config p
  | Dls -> Dadu_core.Dls.solve ~workspace ~config p
  | Sdls -> Dadu_core.Sdls.solve ~workspace ~config p
  | Ccd -> Dadu_core.Ccd.solve ~workspace ~config p

type outcome = {
  result : Ik.result;
  solver : kind;
  attempts : int;
  fallbacks : int;
  trail : (kind * Ik.status) list;
  elapsed_s : float;
}

(* Demote a claimed convergence that FK does not confirm; keeps the
   never-Converged-above-accuracy invariant independent of any individual
   solver's bookkeeping.  A non-finite true error (poisoned θ) is a
   malfunction, not a miss: demote to [Diverged] so the breaker sees it. *)
let verify ~config p (r : Ik.result) =
  match r.Ik.status with
  | Ik.Converged ->
    let actual = Ik.error_of p.Ik.chain p.Ik.target r.Ik.theta in
    if actual <= config.Ik.accuracy then r
    else if Float.is_finite actual then
      { r with Ik.status = Ik.Stalled; error = actual }
    else { r with Ik.status = Ik.Diverged; error = actual }
  | Ik.Max_iterations | Ik.Stalled | Ik.Diverged -> r

(* A crashed tier must not take the whole request down: stand in a
   best-effort result (the clamped initial pose, honestly scored) marked
   [Diverged] so the chain moves on and the breaker counts the crash. *)
let crashed ?(speculations = 64) (p : Ik.problem) =
  let theta = Dadu_kinematics.Chain.clamp_config p.Ik.chain p.Ik.theta0 in
  {
    Ik.theta;
    error = Ik.error_of p.Ik.chain p.Ik.target theta;
    iterations = 0;
    speculations;
    status = Ik.Diverged;
    svd_sweeps = 0;
  }

let run ?speculations ?time_budget_s ?attempt_hook
    ?(fault = Dadu_util.Fault.disabled) ?head ~chain ~config p =
  if chain = [] then invalid_arg "Fallback.run: empty solver chain";
  let module Fault = Dadu_util.Fault in
  let now = Dadu_util.Trace.now_s in
  let t0 = now () in
  let elapsed () = now () -. t0 in
  let out_of_time () =
    match time_budget_s with None -> false | Some b -> elapsed () > b
  in
  let attempt kind =
    match Fault.fires fault ~site:"solver-raise" () with
    | Some _ -> failwith ("injected fault: " ^ name kind ^ " crashed")
    | None ->
      let r = solver ?speculations kind ~config p in
      let r =
        (* corrupt θ after the solve, like a scribbled result buffer *)
        match Fault.fires fault ~site:"solver-nan" () with
        | Some _ ->
          let theta = Dadu_linalg.Vec.copy r.Ik.theta in
          theta.(0) <- Float.nan;
          { r with Ik.theta }
        | None -> r
      in
      (* a lying tier claims success regardless of where θ landed; only
         the FK re-verification below catches it *)
      (match Fault.fires fault ~site:"solver-lie" () with
      | Some _ -> { r with Ik.status = Ik.Converged; error = 0. }
      | None -> r)
  in
  (* [head], when given, is the head tier's raw result computed outside
     the chain (the lockstep mega-batch sweep) — bit-identical to what
     [attempt] would produce, since both run the one Quick-IK iteration
     path.  It still goes through [verify] and the attempt hook, so the
     chain's invariants and trail are untouched; only the head solver
     call is skipped.  Callers must not combine [head] with enabled
     fault injection: the injected result would bypass the head tier's
     fault sites. *)
  let rec go ~head best attempts trail = function
    | kind :: rest ->
      let start_s = now () in
      let r =
        match (match head with Some raw -> raw | None -> attempt kind) with
        | raw -> verify ~config p raw
        | exception _ -> crashed ?speculations p
      in
      (match attempt_hook with
      | None -> ()
      | Some hook -> hook kind ~start_s ~dur_s:(now () -. start_s) r);
      let attempts = attempts + 1 in
      let trail = (kind, r.Ik.status) :: trail in
      if r.Ik.status = Ik.Converged then (r, kind, attempts, trail)
      else begin
        (* keep the lowest-error attempt; ties go to the earlier solver,
           and a NaN-error attempt never displaces a finite one *)
        let best =
          match best with
          | None -> (r, kind)
          | Some (b, _) when r.Ik.error < b.Ik.error -> (r, kind)
          | Some _ as kept -> Option.get kept
        in
        if rest = [] || out_of_time () then
          let b, k = best in
          (b, k, attempts, trail)
        else go ~head:None (Some best) attempts trail rest
      end
    | [] -> assert false (* chain checked non-empty; recursion stops above *)
  in
  let result, solver, attempts, trail = go ~head None 0 [] chain in
  {
    result;
    solver;
    attempts;
    fallbacks = attempts - 1;
    trail = List.rev trail;
    elapsed_s = elapsed ();
  }
