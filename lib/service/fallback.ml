open Dadu_core

type kind =
  | Quick_ik
  | Jt_serial
  | Jt_buss
  | Jt_linesearch
  | Pinv
  | Dls
  | Sdls
  | Ccd

let all =
  [
    ("quick-ik", Quick_ik);
    ("jt-serial", Jt_serial);
    ("jt-buss", Jt_buss);
    ("jt-linesearch", Jt_linesearch);
    ("pinv", Pinv);
    ("dls", Dls);
    ("sdls", Sdls);
    ("ccd", Ccd);
  ]

let name kind = fst (List.find (fun (_, k) -> k = kind) all)

let of_string s =
  match List.assoc_opt (String.lowercase_ascii (String.trim s)) all with
  | Some k -> Ok k
  | None ->
    Error
      (Printf.sprintf "unknown solver %S (expected %s)" s
         (String.concat " | " (List.map fst all)))

let chain_of_string s =
  let rec parse acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest ->
      (match of_string part with
      | Ok k -> parse (k :: acc) rest
      | Error _ as e -> e)
  in
  match List.filter (fun p -> String.trim p <> "") (String.split_on_char ',' s) with
  | [] -> Error "empty solver chain"
  | parts -> parse [] parts

let chain_to_string chain = String.concat "," (List.map name chain)

(* Every dispatch reuses the calling domain's cached workspace for the
   problem's DOF, so service traffic (which fans problems out across
   scheduler domains) runs the solvers' zero-allocation paths instead of
   rebuilding scratch buffers per request.  Safe because each domain runs
   one solve at a time. *)
let solver ?(speculations = 64) kind ~config p =
  let workspace = Workspace.local ~dof:(Dadu_kinematics.Chain.dof p.Ik.chain) in
  match kind with
  | Quick_ik -> Dadu_core.Quick_ik.solve ~speculations ~workspace ~config p
  | Jt_serial -> Dadu_core.Jt_serial.solve ~workspace ~config p
  | Jt_buss -> Dadu_core.Jt_buss.solve ~workspace ~config p
  | Jt_linesearch -> Dadu_core.Jt_linesearch.solve ~workspace ~config p
  | Pinv -> Dadu_core.Pinv_svd.solve ~workspace ~config p
  | Dls -> Dadu_core.Dls.solve ~workspace ~config p
  | Sdls -> Dadu_core.Sdls.solve ~workspace ~config p
  | Ccd -> Dadu_core.Ccd.solve ~workspace ~config p

type outcome = {
  result : Ik.result;
  solver : kind;
  attempts : int;
  fallbacks : int;
  elapsed_s : float;
}

(* Demote a claimed convergence that FK does not confirm; keeps the
   never-Converged-above-accuracy invariant independent of any individual
   solver's bookkeeping. *)
let verify ~config p (r : Ik.result) =
  match r.Ik.status with
  | Ik.Converged ->
    let actual = Ik.error_of p.Ik.chain p.Ik.target r.Ik.theta in
    if actual <= config.Ik.accuracy then r
    else { r with Ik.status = Ik.Stalled; error = actual }
  | Ik.Max_iterations | Ik.Stalled -> r

let run ?speculations ?time_budget_s ?attempt_hook ~chain ~config p =
  if chain = [] then invalid_arg "Fallback.run: empty solver chain";
  let now = Dadu_util.Trace.now_s in
  let t0 = now () in
  let elapsed () = now () -. t0 in
  let out_of_time () =
    match time_budget_s with None -> false | Some b -> elapsed () > b
  in
  let rec go best attempts = function
    | kind :: rest ->
      let start_s = now () in
      let r = verify ~config p (solver ?speculations kind ~config p) in
      (match attempt_hook with
      | None -> ()
      | Some hook -> hook kind ~start_s ~dur_s:(now () -. start_s) r);
      let attempts = attempts + 1 in
      if r.Ik.status = Ik.Converged then (r, kind, attempts)
      else begin
        (* keep the lowest-error attempt; ties go to the earlier solver *)
        let best =
          match best with
          | None -> (r, kind)
          | Some (b, _) when r.Ik.error < b.Ik.error -> (r, kind)
          | Some _ as kept -> Option.get kept
        in
        if rest = [] || out_of_time () then
          let b, k = best in
          (b, k, attempts)
        else go (Some best) attempts rest
      end
    | [] -> assert false (* chain checked non-empty; recursion stops above *)
  in
  let result, solver, attempts = go None 0 chain in
  { result; solver; attempts; fallbacks = attempts - 1; elapsed_s = elapsed () }
