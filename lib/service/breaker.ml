type settings = { threshold : int; cooldown : int }

let default_settings = { threshold = 3; cooldown = 16 }

type state = Closed | Open | Half_open

type t = {
  settings : settings;
  mutable state : state;
  mutable consecutive_failures : int;
  mutable open_until : int;
  mutable trips : int;
}

let create settings =
  if settings.threshold <= 0 then
    invalid_arg "Breaker.create: threshold must be positive";
  if settings.cooldown <= 0 then
    invalid_arg "Breaker.create: cooldown must be positive";
  {
    settings;
    state = Closed;
    consecutive_failures = 0;
    open_until = 0;
    trips = 0;
  }

let state t = t.state

let trips t = t.trips

let allow t ~now =
  match t.state with
  | Closed | Half_open -> true
  | Open ->
    if now >= t.open_until then begin
      (* cooldown elapsed: let one wave probe the solver again *)
      t.state <- Half_open;
      true
    end
    else false

let trip t ~now =
  t.state <- Open;
  t.open_until <- now + t.settings.cooldown;
  t.consecutive_failures <- 0;
  t.trips <- t.trips + 1

let success t =
  (* any confirmed convergence — including a late commit from a request
     dispatched before a trip — is evidence the solver works again *)
  t.state <- Closed;
  t.consecutive_failures <- 0

let failure t ~now =
  match t.state with
  | Half_open -> trip t ~now (* failed probe: reopen immediately *)
  | Open -> () (* late commit from a pre-trip dispatch; stays open *)
  | Closed ->
    t.consecutive_failures <- t.consecutive_failures + 1;
    if t.consecutive_failures >= t.settings.threshold then trip t ~now
