open Dadu_core
open Dadu_kinematics
module Json = Dadu_util.Json
module Pf = Problem_file

(* ---- listen addresses ------------------------------------------------ *)

type listen = Unix_sock of string | Tcp of string * int

let listen_of_string s =
  let s = String.trim s in
  let prefix p =
    if String.length s > String.length p && String.sub s 0 (String.length p) = p
    then Some (String.sub s (String.length p) (String.length s - String.length p))
    else None
  in
  match prefix "unix:" with
  | Some path when path <> "" -> Ok (Unix_sock path)
  | Some _ -> Error "empty unix socket path"
  | None ->
    (match prefix "tcp:" with
    | Some rest ->
      (match String.rindex_opt rest ':' with
      | None -> Error (Printf.sprintf "expected tcp:host:port (got %S)" s)
      | Some i ->
        let host = String.sub rest 0 i in
        let port = String.sub rest (i + 1) (String.length rest - i - 1) in
        (match int_of_string_opt port with
        | Some p when p > 0 && p < 65536 ->
          Ok (Tcp ((if host = "" then "127.0.0.1" else host), p))
        | Some _ | None ->
          Error (Printf.sprintf "bad tcp port %S" port)))
    | None ->
      if s = "" then Error "empty listen address" else Ok (Unix_sock s))

(* ---- configuration --------------------------------------------------- *)

type config = {
  service : Service.config;
  queue_capacity : int;
  max_batch : int;
  max_connections : int;
  idle_timeout_s : float option;
  frame_timeout_s : float option;
  retry_after_ms : int;
  est_job_ms : float;
  net_fault : Dadu_util.Fault.t;
  journal : string option;
}

let default_config =
  {
    service = Service.default_config;
    queue_capacity = 1024;
    max_batch = 256;
    max_connections = 1024;
    idle_timeout_s = None;
    (* a half-written frame may pin a reader for at most this long by
       default; None restores the legacy block-forever behavior *)
    frame_timeout_s = Some 30.;
    retry_after_ms = 50;
    est_job_ms = 0.;
    net_fault = Dadu_util.Fault.disabled;
    journal = None;
  }

(* ---- per-tenant accounting ------------------------------------------- *)

type tenant = { metrics : Metrics.t; overloaded : int Atomic.t }

(* ---- connections ------------------------------------------------------

   One reader thread per connection.  [wlock] serializes frame writes
   (the reader answers control ops; the dispatcher answers solve ops)
   and guards the pending/eof/dead lifecycle fields, so the socket is
   closed exactly once: by the reader at EOF when no replies are in
   flight, else by whichever reply delivery drains [pending] last. *)

type conn = {
  fd : Unix.file_descr;
  oc : out_channel;
  wlock : Mutex.t;
  (* wire-fault forks: reads and writes get separate registries (fork
     indices 2i / 2i+1 for the i-th accepted connection) so each side's
     counter-based triggers see a deterministic consultation sequence *)
  rfault : Dadu_util.Fault.t;
  wfault : Dadu_util.Fault.t;
  mutable tenant : string;
  mutable pending : int; (* solve jobs queued, reply not yet written *)
  mutable eof : bool; (* reader finished *)
  mutable dead : bool; (* write failed or fatal framing error: stop writing *)
  mutable closed : bool;
}

type job = {
  jconn : conn;
  jid : int; (* client-assigned id, echoed in the reply *)
  jtenant : string; (* tenant at enqueue time *)
  jsession : string option;
  jordinal : int;
  jrequest : Service.request;
}

type t = {
  config : config;
  service : Service.t;
  sessions : (string, Session.t) Hashtbl.t;
  slock : Mutex.t;
  tenants : (string, tenant) Hashtbl.t;
  tlock : Mutex.t;
  queue : job Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  mutable stopping : bool; (* written under qlock by [begin_drain] *)
  stop_flag : bool Atomic.t; (* set by [stop]; signal-safe *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable conns : conn list; (* guarded by clock *)
  clock : Mutex.t;
  nconns : int Atomic.t; (* live connections (reader threads running) *)
  journal : Journal.t option;
  mutable journal_recovery : Journal.load_error option;
      (* the defect (if any) found and cut off while opening the journal *)
}

let tenant_of t name =
  Mutex.lock t.tlock;
  let tn =
    match Hashtbl.find_opt t.tenants name with
    | Some tn -> tn
    | None ->
      let tn = { metrics = Metrics.create (); overloaded = Atomic.make 0 } in
      Hashtbl.add t.tenants name tn;
      tn
  in
  Mutex.unlock t.tlock;
  tn

(* Rebuild the session registry from journal records: fold the per
   session lifecycle (open / commit / close) into the final state, then
   restore each surviving session with its ordinal counter, warm-start
   slot, and recent-reply ring — the state an uninterrupted server
   would hold with in-flight work excluded (DESIGN.md §16). *)
let replay_journal t records =
  let open struct
    type rstate = {
      rchain : Chain.t;
      mutable rcommitted : int;
      mutable rwarm : int;
      mutable rslot : float array option;
      mutable rring : (int * string) list; (* newest first *)
    }
  end in
  let live : (string, rstate) Hashtbl.t = Hashtbl.create 16 in
  let applied = ref 0 in
  List.iter
    (fun record ->
      let ok =
        match record with
        | Journal.Opened { session; robot; chain_fp; dof = _ } ->
          (match Pf.robot_of_spec robot with
          | Error _ -> false (* spec no longer resolves: drop the session *)
          | Ok chain ->
            if Chain.fingerprint chain = chain_fp && not (Hashtbl.mem live session)
            then begin
              Hashtbl.replace live session
                { rchain = chain; rcommitted = 0; rwarm = 0; rslot = None; rring = [] };
              true
            end
            else false)
        | Journal.Committed { session; ordinal; theta; reply } ->
          (match Hashtbl.find_opt live session with
          | None -> false
          | Some st ->
            if st.rslot <> None then st.rwarm <- st.rwarm + 1;
            st.rcommitted <- ordinal + 1;
            (match theta with Some th -> st.rslot <- Some th | None -> ());
            st.rring <- (ordinal, reply) :: st.rring;
            true)
        | Journal.Closed { session } ->
          if Hashtbl.mem live session then begin
            Hashtbl.remove live session;
            true
          end
          else false
      in
      if ok then incr applied)
    records;
  Hashtbl.iter
    (fun name st ->
      let sess =
        Session.restore ~name ~chain:st.rchain ~committed:st.rcommitted
          ~warm:st.rwarm ~slot:st.rslot
      in
      List.iter
        (fun (ordinal, reply) -> Session.remember_reply sess ~ordinal reply)
        (List.rev st.rring);
      Hashtbl.replace t.sessions name sess)
    live;
  !applied

let create ?pool ?(config = default_config) () =
  if config.queue_capacity < 0 then
    invalid_arg "Server.create: queue_capacity must be non-negative";
  if config.max_batch < 1 then
    invalid_arg "Server.create: max_batch must be positive";
  if config.max_connections < 1 then
    invalid_arg "Server.create: max_connections must be positive";
  if config.retry_after_ms < 0 then
    invalid_arg "Server.create: retry_after_ms must be non-negative";
  let journal, records, recovery =
    match config.journal with
    | None -> (None, [], None)
    | Some path ->
      (match Journal.open_ path with
      | Ok (j, records, defect) -> (Some j, records, defect)
      | Error e ->
        invalid_arg
          (Format.asprintf "Server.create: journal %s: %a" path
             Journal.pp_load_error e))
  in
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      config;
      service = Service.create ?pool ~config:config.service ();
      sessions = Hashtbl.create 16;
      slock = Mutex.create ();
      tenants = Hashtbl.create 4;
      tlock = Mutex.create ();
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = false;
      stop_flag = Atomic.make false;
      wake_r;
      wake_w;
      conns = [];
      clock = Mutex.create ();
      nconns = Atomic.make 0;
      journal;
      journal_recovery = recovery;
    }
  in
  if records <> [] then begin
    let applied = replay_journal t records in
    let metrics = (tenant_of t "default").metrics in
    for _ = 1 to applied do
      Metrics.record_net metrics Metrics.Journal_replay
    done
  end;
  t

let journal_recovery t = t.journal_recovery

(* Signal-safe: one atomic store and one pipe write; the accept loop does
   the lock-taking part of the shutdown from ordinary context. *)
let stop t =
  if not (Atomic.exchange t.stop_flag true) then
    ignore (try Unix.write t.wake_w (Bytes.make 1 '!') 0 1 with Unix.Unix_error _ -> 0)

(* ---- reply serialization ----------------------------------------------

   Reply payloads are built with Printf (%.17g doubles, %S strings), not
   a JSON pretty-printer, so their bytes are a pure function of the reply
   values — the `cmp` determinism gates compare these bytes across pool
   sizes and execution modes.  Nothing clock-derived is ever included. *)

let json_floats xs =
  String.concat "," (List.map (Printf.sprintf "%.17g") (Array.to_list xs))

(* mark the connection unusable and force the peer to notice: a planned
   cut or short frame must unblock a peer blocked on replies, so the
   descriptor is shut down in both directions (closed later, once, by
   the normal lifecycle).  Called with wlock held. *)
let kill_conn_locked conn =
  conn.dead <- true;
  if not conn.closed then
    try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ()

let send conn payload =
  Mutex.lock conn.wlock;
  (if not (conn.dead || conn.closed) then
     try
       if not (Pf.write_frame_injected ~fault:conn.wfault conn.oc payload)
       then kill_conn_locked conn
     with Sys_error _ | Unix.Unix_error _ -> conn.dead <- true);
  Mutex.unlock conn.wlock

let close_conn conn =
  if not conn.closed then begin
    conn.closed <- true;
    (try close_out_noerr conn.oc with _ -> ());
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* called with wlock held *)
let maybe_close_locked conn =
  if conn.eof && conn.pending = 0 then close_conn conn

let reply_error conn ~id msg =
  let idpart = if id >= 0 then Printf.sprintf "\"id\":%d," id else "" in
  send conn (Printf.sprintf "{\"reply\":\"error\",%s\"message\":%S}" idpart msg)

let reply_of job (reply : Service.reply) =
  match reply with
  | Service.Rejected invalid ->
    Printf.sprintf "{\"reply\":\"rejected\",\"id\":%d,\"reason\":%S}" job.jid
      (Format.asprintf "%a" Ik.pp_invalid invalid)
  | Service.Faulted msg ->
    Printf.sprintf "{\"reply\":\"faulted\",\"id\":%d,\"reason\":%S}" job.jid msg
  | Service.Solved
      {
        result;
        solver;
        fallbacks;
        cache_hit;
        session_hit;
        deadline_exceeded;
        retries;
        _;
      } ->
    let spart =
      match job.jsession with
      | None -> ""
      | Some s -> Printf.sprintf "\"session\":%S,\"ordinal\":%d," s job.jordinal
    in
    Printf.sprintf
      "{\"reply\":\"solved\",\"id\":%d,%s\"status\":%S,\"solver\":%S,\"iterations\":%d,\"error\":%.17g,\"fallbacks\":%d,\"retries\":%d,\"cache_hit\":%b,\"session_hit\":%b,\"deadline_exceeded\":%b,\"theta\":[%s]}"
      job.jid spart
      (Format.asprintf "%a" Ik.pp_status result.Ik.status)
      (Fallback.name solver) result.Ik.iterations result.Ik.error fallbacks
      retries cache_hit session_hit deadline_exceeded
      (json_floats result.Ik.theta)

(* mirror the Service's own commit-phase accounting into the tenant's
   registry; replies carry everything the event needs *)
let record_tenant t job (reply : Service.reply) =
  let tn = tenant_of t job.jtenant in
  match reply with
  | Service.Rejected invalid -> Metrics.record tn.metrics (Metrics.Rejected invalid)
  | Service.Faulted msg -> Metrics.record tn.metrics (Metrics.Faulted msg)
  | Service.Solved
      {
        result;
        fallbacks;
        cache_hit;
        session_hit;
        deadline_exceeded;
        breaker_skips;
        retries;
        retry_converged;
        latency_s;
        _;
      } ->
    Metrics.record tn.metrics
      (Metrics.Solved
         {
           converged = result.Ik.status = Ik.Converged;
           diverged = result.Ik.status = Ik.Diverged;
           fallbacks;
           cache_hit;
           session = job.jsession <> None;
           session_hit;
           deadline_exceeded;
           breaker_skips;
           retries;
           retry_converged;
           latency_s;
           iterations = result.Ik.iterations;
         })

let deliver t job reply =
  record_tenant t job reply;
  let payload = reply_of job reply in
  (match job.jsession with
  | Some sname ->
    (* write-ahead: journal and remember the committed reply before the
       frame goes out.  A crash after the append replays these exact
       bytes to a resending client; a crash before it re-solves the
       waypoint from the journalled predecessor state — byte-identical
       either way (DESIGN.md §16). *)
    let theta =
      match reply with
      | Service.Solved { result; _ } when result.Ik.status = Ik.Converged ->
        Some (Array.copy result.Ik.theta)
      | _ -> None
    in
    (match t.journal with
    | Some j ->
      Journal.append j
        (Journal.Committed
           { session = sname; ordinal = job.jordinal; theta; reply = payload });
      Metrics.record_net (tenant_of t job.jtenant).metrics Metrics.Journal_append
    | None -> ());
    Mutex.lock t.slock;
    (match Hashtbl.find_opt t.sessions sname with
    | Some sess -> Session.remember_reply sess ~ordinal:job.jordinal payload
    | None -> () (* closed while the waypoint was in flight *));
    Mutex.unlock t.slock
  | None -> ());
  let conn = job.jconn in
  Mutex.lock conn.wlock;
  (if not (conn.dead || conn.closed) then
     try
       if not (Pf.write_frame_injected ~fault:conn.wfault conn.oc payload)
       then kill_conn_locked conn
     with Sys_error _ | Unix.Unix_error _ -> conn.dead <- true);
  conn.pending <- conn.pending - 1;
  maybe_close_locked conn;
  Mutex.unlock conn.wlock

(* ---- admission --------------------------------------------------------

   The bounded queue is the backpressure point: a full queue sheds the
   request with a typed [overloaded] reply instead of queueing without
   bound.  [queue_capacity = 0] sheds everything — the load-test and
   cram hook.  Shedding is inherently timing-dependent; the determinism
   contract covers unshed traffic. *)

let enqueue t job =
  Mutex.lock t.qlock;
  let qlen = Queue.length t.queue in
  (* deadline-aware shed: with an estimated per-job cost configured, a
     request whose deadline the queue already cannot meet is refused up
     front — the retry_after hint tells the client when trying again
     might actually succeed *)
  let deadline_shed =
    t.config.est_job_ms > 0.
    &&
    match job.jrequest.Service.deadline_s with
    | Some d -> float_of_int (qlen + 1) *. t.config.est_job_ms /. 1000. > d
    | None -> false
  in
  let admitted =
    (not t.stopping) && (not deadline_shed) && qlen < t.config.queue_capacity
  in
  if admitted then begin
    let conn = job.jconn in
    Mutex.lock conn.wlock;
    conn.pending <- conn.pending + 1;
    Mutex.unlock conn.wlock;
    Queue.add job t.queue;
    Condition.signal t.qcond
  end;
  Mutex.unlock t.qlock;
  if not admitted then begin
    let tn = tenant_of t job.jtenant in
    Atomic.incr tn.overloaded;
    if deadline_shed then Metrics.record_net tn.metrics Metrics.Retry_after_shed;
    let spart =
      match job.jsession with
      | None -> ""
      | Some s -> Printf.sprintf ",\"session\":%S" s
    in
    send job.jconn
      (Printf.sprintf "{\"reply\":\"overloaded\",\"id\":%d%s,\"retry_after_ms\":%d}"
         job.jid spart t.config.retry_after_ms)
  end

(* ---- dispatcher --------------------------------------------------------

   A single thread drains the queue into batches and runs them through
   the Service.  Batch composition is FIFO in arrival order; session
   determinism never depends on where batch (or wave) boundaries fall —
   the session slot chain plus stable ordinals carry it (DESIGN.md §15). *)

let dispatcher t () =
  let running = ref true in
  while !running do
    Mutex.lock t.qlock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.qcond t.qlock
    done;
    if Queue.is_empty t.queue then begin
      (* stopping and drained *)
      running := false;
      Mutex.unlock t.qlock
    end
    else begin
      let jobs = ref [] in
      let n = ref 0 in
      while (not (Queue.is_empty t.queue)) && !n < t.config.max_batch do
        jobs := Queue.pop t.queue :: !jobs;
        incr n
      done;
      Mutex.unlock t.qlock;
      let jobs = Array.of_list (List.rev !jobs) in
      let requests = Array.map (fun j -> j.jrequest) jobs in
      let replies = Service.solve_requests t.service requests in
      Array.iteri (fun i job -> deliver t job replies.(i)) jobs
    end
  done

(* ---- ops ------------------------------------------------------------- *)

let json_int_member key json =
  match Json.member key json with
  | Some j -> Option.map int_of_float (Json.to_float j)
  | None -> None

let json_target json =
  match Option.bind (Json.member "target" json) Json.to_list with
  | Some [ x; y; z ] ->
    (match (Json.to_float x, Json.to_float y, Json.to_float z) with
    | Some x, Some y, Some z -> Some (Dadu_linalg.Vec3.make x y z)
    | _ -> None)
  | Some _ | None -> None

let json_theta0 json =
  match Json.member "theta0" json with
  | None -> Ok None
  | Some j ->
    (match Json.to_list j with
    | None -> Error "theta0 must be an array of numbers"
    | Some xs ->
      let floats = List.filter_map Json.to_float xs in
      if List.length floats <> List.length xs then
        Error "theta0 must be an array of numbers"
      else Ok (Some (Array.of_list floats)))

let json_deadline json =
  match Json.member "deadline" json with
  | None -> Ok None
  | Some j ->
    (match Json.to_float j with
    | Some d when d >= 0. && Float.is_finite d -> Ok (Some d)
    | Some _ | None -> Error "deadline must be a non-negative number")

let clamped_zero chain =
  Chain.clamp_config chain (Dadu_linalg.Vec.create (Chain.dof chain))

let handle_open t conn ~id ~session ~robot =
  match Pf.robot_of_spec robot with
  | Error msg -> reply_error conn ~id msg
  | Ok chain ->
    Mutex.lock t.slock;
    let outcome =
      match Hashtbl.find_opt t.sessions session with
      | Some sess ->
        if Chain.fingerprint (Session.chain sess) = Chain.fingerprint chain
        then Ok (sess, true)
        else Error "session exists with a different robot"
      | None ->
        let sess = Session.create ~name:session ~chain in
        Hashtbl.add t.sessions session sess;
        (match t.journal with
        | Some j ->
          Journal.append j
            (Journal.Opened
               {
                 session;
                 robot;
                 chain_fp = Chain.fingerprint chain;
                 dof = Chain.dof chain;
               });
          Metrics.record_net (tenant_of t conn.tenant).metrics
            Metrics.Journal_append
        | None -> ());
        Ok (sess, false)
    in
    Mutex.unlock t.slock;
    (match outcome with
    | Error msg -> reply_error conn ~id msg
    | Ok (sess, resumed) ->
      send conn
        (Printf.sprintf
           "{\"reply\":\"opened\",\"id\":%d,\"session\":%S,\"dof\":%d,\"resumed\":%b,\"waypoints\":%d}"
           id session
           (Chain.dof (Session.chain sess))
           resumed (Session.accepted sess)))

let handle_waypoint t conn ~id ~session json =
  match json_target json with
  | None -> reply_error conn ~id "waypoint needs target:[x,y,z]"
  | Some target ->
    (* one reader thread per connection keeps a session's waypoints in
       client-stream order; the slock-guarded counter then hands out
       ordinals in that order, so for a fixed per-session waypoint
       sequence the ordinals — and therefore replies — are fixed
       whatever interleaving delivers other connections' frames.

       An optional "seq" member carries the client's own per-session
       waypoint index and makes resends idempotent: a seq behind the
       session's counter is a waypoint that already committed, answered
       with the original reply bytes from the ring (at most one solve,
       exactly one well-formed reply per waypoint, whatever the wire
       did in between — DESIGN.md §16). *)
    let seq = json_int_member "seq" json in
    Mutex.lock t.slock;
    let found = Hashtbl.find_opt t.sessions session in
    let outcome =
      match found with
      | None -> `Unknown
      | Some sess ->
        let accepted = Session.accepted sess in
        (match seq with
        | Some k when k < accepted ->
          (match Session.recall_reply sess ~ordinal:k with
          | Some payload -> `Replay payload
          | None -> `Stale (k, accepted))
        | Some k when k > accepted -> `Gap (k, accepted)
        | _ ->
          let chain = Session.chain sess in
          let ordinal = Session.next_ordinal sess in
          let problem =
            Ik.problem ~chain ~target ~theta0:(clamped_zero chain)
          in
          `Job
            {
              jconn = conn;
              jid = id;
              jtenant = conn.tenant;
              jsession = Some session;
              jordinal = ordinal;
              jrequest = Service.request ~session:sess ~ordinal problem;
            })
    in
    Mutex.unlock t.slock;
    (match outcome with
    | `Unknown ->
      reply_error conn ~id (Printf.sprintf "unknown session %S" session)
    | `Replay payload -> send conn payload
    | `Stale (k, accepted) ->
      reply_error conn ~id
        (Printf.sprintf
           "stale waypoint seq %d (session %S at %d, replay window exhausted)"
           k session accepted)
    | `Gap (k, accepted) ->
      reply_error conn ~id
        (Printf.sprintf "waypoint seq %d ahead of session %S (at %d)" k
           session accepted)
    | `Job job -> enqueue t job)

let handle_solve t conn ~id json =
  match Option.bind (Json.member "robot" json) Json.to_str with
  | None -> reply_error conn ~id "solve needs robot:\"<spec>\""
  | Some spec ->
    (match Pf.robot_of_spec spec with
    | Error msg -> reply_error conn ~id msg
    | Ok chain ->
      (match (json_target json, json_theta0 json, json_deadline json) with
      | None, _, _ -> reply_error conn ~id "solve needs target:[x,y,z]"
      | _, Error msg, _ | _, _, Error msg -> reply_error conn ~id msg
      | Some target, Ok theta0, Ok deadline_s ->
        let dof = Chain.dof chain in
        (match theta0 with
        | Some th when Array.length th <> dof ->
          reply_error conn ~id
            (Printf.sprintf "theta0 has %d entries but %s has %d DOF"
               (Array.length th) (Chain.name chain) dof)
        | _ ->
          let theta0 =
            match theta0 with
            | Some th -> th
            | None -> clamped_zero chain
          in
          let problem = Ik.problem ~chain ~target ~theta0 in
          (* a one-shot solve's stable ordinal is its client id: the
             noise key is then chosen by the client stream, not by how
             the dispatcher happened to batch *)
          enqueue t
            {
              jconn = conn;
              jid = id;
              jtenant = conn.tenant;
              jsession = None;
              jordinal = id;
              jrequest = Service.request ?deadline_s ~ordinal:id problem;
            })))

let handle_close t conn ~id ~session =
  Mutex.lock t.slock;
  let found = Hashtbl.find_opt t.sessions session in
  (match found with
  | Some _ ->
    Hashtbl.remove t.sessions session;
    (match t.journal with
    | Some j ->
      Journal.append j (Journal.Closed { session });
      Metrics.record_net (tenant_of t conn.tenant).metrics
        Metrics.Journal_append
    | None -> ())
  | None -> ());
  Mutex.unlock t.slock;
  match found with
  | None -> reply_error conn ~id (Printf.sprintf "unknown session %S" session)
  | Some sess ->
    send conn
      (Printf.sprintf
         "{\"reply\":\"closed\",\"id\":%d,\"session\":%S,\"waypoints\":%d}" id
         session (Session.accepted sess))

let handle_stats t conn =
  let tn = tenant_of t conn.tenant in
  let s = Metrics.snapshot tn.metrics in
  send conn
    (Printf.sprintf
       "{\"reply\":\"stats\",\"tenant\":%S,\"requests\":%d,\"converged\":%d,\"failed\":%d,\"rejected\":%d,\"faulted\":%d,\"cache_hits\":%d,\"cache_misses\":%d,\"session_requests\":%d,\"session_warm\":%d,\"overloaded\":%d,\"timeouts\":%d,\"disconnects\":%d,\"journal_appends\":%d,\"journal_replays\":%d,\"retry_after_sheds\":%d,\"busy\":%d}"
       conn.tenant s.Metrics.requests s.Metrics.converged s.Metrics.failed
       s.Metrics.rejected s.Metrics.faulted s.Metrics.cache_hits
       s.Metrics.cache_misses s.Metrics.session_requests s.Metrics.session_warm
       (Atomic.get tn.overloaded) s.Metrics.timeouts s.Metrics.disconnects
       s.Metrics.journal_appends s.Metrics.journal_replays
       s.Metrics.retry_after_sheds s.Metrics.busy_refusals)

let handle_payload t conn payload =
  match Json.of_string payload with
  | Error msg ->
    (* malformed JSON in a well-framed payload: typed error reply, the
       connection stays up (pinned by the serve_live cram test) *)
    reply_error conn ~id:(-1) (Printf.sprintf "malformed payload: %s" msg)
  | Ok json ->
    let id = Option.value ~default:(-1) (json_int_member "id" json) in
    (match Option.bind (Json.member "op" json) Json.to_str with
    | None -> reply_error conn ~id "missing op"
    | Some "hello" ->
      (match Option.bind (Json.member "tenant" json) Json.to_str with
      | None -> reply_error conn ~id "hello needs tenant:\"<name>\""
      | Some tenant ->
        conn.tenant <- tenant;
        ignore (tenant_of t tenant);
        send conn (Printf.sprintf "{\"reply\":\"hello\",\"tenant\":%S}" tenant))
    | Some "ping" -> send conn "{\"reply\":\"pong\"}"
    | Some "stats" -> handle_stats t conn
    | Some (("open" | "waypoint" | "solve" | "close") as op) ->
      if id < 0 then
        reply_error conn ~id
          (Printf.sprintf "%s needs a non-negative id" op)
      else begin
        let session () =
          Option.bind (Json.member "session" json) Json.to_str
        in
        match op with
        | "open" ->
          (match
             (session (), Option.bind (Json.member "robot" json) Json.to_str)
           with
          | None, _ -> reply_error conn ~id "open needs session:\"<name>\""
          | _, None -> reply_error conn ~id "open needs robot:\"<spec>\""
          | Some session, Some robot -> handle_open t conn ~id ~session ~robot)
        | "waypoint" ->
          (match session () with
          | None -> reply_error conn ~id "waypoint needs session:\"<name>\""
          | Some session -> handle_waypoint t conn ~id ~session json)
        | "solve" -> handle_solve t conn ~id json
        | _ ->
          (match session () with
          | None -> reply_error conn ~id "close needs session:\"<name>\""
          | Some session -> handle_close t conn ~id ~session)
      end
    | Some op -> reply_error conn ~id (Printf.sprintf "unknown op %S" op))

(* ---- connection reader ------------------------------------------------ *)

let reader t conn () =
  let module Fault = Dadu_util.Fault in
  let r = Pf.frame_reader conn.fd in
  let net_metrics ev = Metrics.record_net (tenant_of t conn.tenant).metrics ev in
  let running = ref true in
  let unclean = ref false in
  while !running do
    (* receiver-side net-cut: the wire drops before the next frame is
       read — the connection dies as if the peer reset it *)
    if Fault.fires conn.rfault ~site:Fault.net_cut () <> None then begin
      unclean := true;
      running := false
    end
    else
      match
        Pf.read_frame_fd ?idle_timeout_s:t.config.idle_timeout_s
          ?frame_timeout_s:t.config.frame_timeout_s r
      with
      | Pf.Frame payload -> handle_payload t conn payload
      | Pf.Eof -> running := false
      | Pf.Timed_out which ->
        net_metrics Metrics.Timeout;
        reply_error conn ~id:(-1)
          (match which with
          | `Idle -> "idle timeout"
          | `Frame -> "read timeout: frame incomplete");
        running := false
      | Pf.Frame_error msg ->
        (* the frame stream is desynchronized: a final error reply, then
           drop the connection *)
        unclean := true;
        reply_error conn ~id:(-1) msg;
        running := false
      | exception (Sys_error _ | End_of_file | Unix.Unix_error _) ->
        unclean := true;
        running := false
  done;
  if !unclean then net_metrics Metrics.Disconnect;
  Mutex.lock conn.wlock;
  conn.eof <- true;
  if !unclean then kill_conn_locked conn;
  maybe_close_locked conn;
  Mutex.unlock conn.wlock;
  Atomic.decr t.nconns

(* ---- accept loop and drain -------------------------------------------- *)

let begin_drain t =
  Mutex.lock t.qlock;
  t.stopping <- true;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qlock

let run t ~listen =
  if Atomic.get t.stop_flag then invalid_arg "Server.run: already stopped";
  (* a client vanishing mid-write must not kill the server *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let domain, addr, cleanup =
    match listen with
    | Unix_sock path ->
      (try Unix.unlink path with Unix.Unix_error _ -> ());
      (Unix.PF_UNIX, Unix.ADDR_UNIX path, fun () -> try Unix.unlink path with Unix.Unix_error _ -> ())
    | Tcp (host, port) ->
      let ip =
        try (Unix.gethostbyname host).Unix.h_addr_list.(0)
        with Not_found -> Unix.inet_addr_of_string host
      in
      (Unix.PF_INET, Unix.ADDR_INET (ip, port), fun () -> ())
  in
  let lfd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd addr;
  Unix.listen lfd 64;
  let disp = Thread.create (dispatcher t) () in
  let readers = ref [] in
  let accepted = ref 0 in
  let accepting = ref true in
  while !accepting do
    match Unix.select [ lfd; t.wake_r ] [] [] (-1.) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      if Atomic.get t.stop_flag then accepting := false
    | ready, _, _ ->
      if List.mem t.wake_r ready || Atomic.get t.stop_flag then
        accepting := false
      else if List.mem lfd ready then begin
        match Unix.accept ~cloexec:true lfd with
        | exception Unix.Unix_error _ -> ()
        | fd, _ ->
          if Atomic.get t.nconns >= t.config.max_connections then begin
            (* typed refusal at the cap: one busy frame, then close —
               never a silent drop, never an unbounded reader thread *)
            Metrics.record_net (tenant_of t "default").metrics
              Metrics.Busy_refusal;
            let oc = Unix.out_channel_of_descr fd in
            (try
               Pf.write_frame oc
                 (Printf.sprintf "{\"reply\":\"busy\",\"retry_after_ms\":%d}"
                    t.config.retry_after_ms);
               flush oc
             with Sys_error _ | Unix.Unix_error _ -> ());
            close_out_noerr oc
          end
          else begin
            let idx = !accepted in
            incr accepted;
            let conn =
              {
                fd;
                oc = Unix.out_channel_of_descr fd;
                wlock = Mutex.create ();
                rfault = Dadu_util.Fault.fork t.config.net_fault (2 * idx);
                wfault =
                  Dadu_util.Fault.fork t.config.net_fault ((2 * idx) + 1);
                tenant = "default";
                pending = 0;
                eof = false;
                dead = false;
                closed = false;
              }
            in
            Atomic.incr t.nconns;
            Mutex.lock t.clock;
            t.conns <- conn :: t.conns;
            Mutex.unlock t.clock;
            readers := Thread.create (reader t conn) () :: !readers
          end
      end
  done;
  (* graceful drain: stop accepting, push EOF at every reader, let the
     dispatcher finish everything already admitted, flush, then close *)
  (try Unix.close lfd with Unix.Unix_error _ -> ());
  cleanup ();
  Mutex.lock t.clock;
  let conns = t.conns in
  Mutex.unlock t.clock;
  List.iter
    (fun c ->
      Mutex.lock c.wlock;
      (if not c.closed then
         try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE
         with Unix.Unix_error _ -> ());
      Mutex.unlock c.wlock)
    conns;
  List.iter Thread.join !readers;
  begin_drain t;
  Thread.join disp;
  List.iter
    (fun c ->
      Mutex.lock c.wlock;
      close_conn c;
      Mutex.unlock c.wlock)
    conns

let render_tenants t =
  Mutex.lock t.tlock;
  let names =
    List.sort compare (Hashtbl.fold (fun k _ acc -> k :: acc) t.tenants [])
  in
  let out =
    String.concat "\n"
      (List.map
         (fun name ->
           let tn = Hashtbl.find t.tenants name in
           Printf.sprintf "tenant %s (overloaded %d)\n%s" name
             (Atomic.get tn.overloaded)
             (Metrics.render (Metrics.snapshot tn.metrics)))
         names)
  in
  Mutex.unlock t.tlock;
  out

let service t = t.service
