(* Crash-safe session journal: the write-ahead log behind `dadu serve
   --journal`.

   An append-only stream of length-prefixed records, each carrying its
   own FNV-1a checksum, after a fixed magic+version header — the same
   format discipline as Posture_library, but record-oriented so a
   SIGKILL can only ever tear the *tail*.  The server appends one
   record per session lifecycle event (open / waypoint commit / close)
   from the dispatcher's serial commit path, flushing before the reply
   frame is written: a record present in the journal is a commitment
   the reply it stores was (or could have been) sent, and a crash
   between solve and append simply re-solves the waypoint from the
   journalled predecessor state — byte-identical either way, which is
   what makes the replay determinism argument of DESIGN.md §16 go
   through.

   Recovery never trusts the tail: [load] decodes records until the
   first defect, reports it as a typed [load_error], and returns the
   longest valid prefix; [open_] additionally truncates the file back
   to that prefix so subsequent appends extend a well-formed log. *)

type record =
  | Opened of { session : string; robot : string; chain_fp : int; dof : int }
  | Committed of {
      session : string;
      ordinal : int;
      theta : float array option; (* converged joint vector, if any *)
      reply : string; (* exact reply frame payload, for duplicate replay *)
    }
  | Closed of { session : string }

type load_error =
  | Io of string
  | Bad_magic
  | Unsupported_version of int
  | Truncated
  | Checksum_mismatch
  | Malformed of string

let pp_load_error ppf = function
  | Io msg -> Format.fprintf ppf "%s" msg
  | Bad_magic -> Format.fprintf ppf "not a session journal (bad magic)"
  | Unsupported_version v ->
    Format.fprintf ppf "unsupported session journal version %d" v
  | Truncated -> Format.fprintf ppf "truncated session journal"
  | Checksum_mismatch ->
    Format.fprintf ppf "session journal record checksum mismatch (corrupted)"
  | Malformed msg -> Format.fprintf ppf "malformed session journal: %s" msg

let magic = "DADUJRNL"
let version = 1
let header_len = String.length magic + 4
let max_string_len = 1 lsl 16
let max_dof = 1 lsl 16
let max_reply_len = 1 lsl 24
let max_record_bytes = 4 + max_reply_len + (8 * max_dof) + (3 * max_string_len)

let fnv1a bytes off len =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  for i = off to off + len - 1 do
    h :=
      Int64.mul
        (Int64.logxor !h (Int64.of_int (Char.code (Bytes.get bytes i))))
        prime
  done;
  !h

(* ---- encoding -------------------------------------------------------- *)

let encode_record r =
  let buf = Buffer.create 128 in
  let put_u8 v = Buffer.add_char buf (Char.chr (v land 0xff)) in
  let put_u32 v =
    let b = Bytes.create 4 in
    Bytes.set_int32_le b 0 (Int32.of_int v);
    Buffer.add_bytes buf b
  in
  let put_i64 v =
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 v;
    Buffer.add_bytes buf b
  in
  let put_str s =
    put_u32 (String.length s);
    Buffer.add_string buf s
  in
  (match r with
  | Opened { session; robot; chain_fp; dof } ->
    put_u8 1;
    put_str session;
    put_str robot;
    put_i64 (Int64.of_int chain_fp);
    put_u32 dof
  | Committed { session; ordinal; theta; reply } ->
    put_u8 2;
    put_str session;
    put_u32 ordinal;
    (match theta with
    | None -> put_u8 0
    | Some th ->
      put_u8 1;
      put_u32 (Array.length th);
      Array.iter (fun v -> put_i64 (Int64.bits_of_float v)) th);
    put_str reply
  | Closed { session } ->
    put_u8 3;
    put_str session);
  let payload = Buffer.contents buf in
  let n = String.length payload in
  let out = Bytes.create (4 + n + 8) in
  Bytes.set_int32_le out 0 (Int32.of_int n);
  Bytes.blit_string payload 0 out 4 n;
  Bytes.set_int64_le out (4 + n) (fnv1a out 4 n);
  out

(* ---- decoding -------------------------------------------------------- *)

exception Defect of load_error

let decode_payload b off len =
  let pos = ref off in
  let stop = off + len in
  let need n = if !pos + n > stop then raise (Defect (Malformed "short field")) in
  let get_u8 () =
    need 1;
    let v = Char.code (Bytes.get b !pos) in
    incr pos;
    v
  in
  let get_u32 () =
    need 4;
    let v = Int32.to_int (Bytes.get_int32_le b !pos) in
    pos := !pos + 4;
    if v < 0 then raise (Defect (Malformed "negative length field"));
    v
  in
  let get_i64 () =
    need 8;
    let v = Bytes.get_int64_le b !pos in
    pos := !pos + 8;
    v
  in
  let get_str ~what ~cap () =
    let n = get_u32 () in
    if n > cap then
      raise (Defect (Malformed (Printf.sprintf "%s too long (%d)" what n)));
    need n;
    let s = Bytes.sub_string b !pos n in
    pos := !pos + n;
    s
  in
  let r =
    match get_u8 () with
    | 1 ->
      let session = get_str ~what:"session name" ~cap:max_string_len () in
      let robot = get_str ~what:"robot spec" ~cap:max_string_len () in
      let chain_fp = Int64.to_int (get_i64 ()) in
      let dof = get_u32 () in
      if dof > max_dof then raise (Defect (Malformed "dof out of range"));
      Opened { session; robot; chain_fp; dof }
    | 2 ->
      let session = get_str ~what:"session name" ~cap:max_string_len () in
      let ordinal = get_u32 () in
      let theta =
        match get_u8 () with
        | 0 -> None
        | 1 ->
          let dof = get_u32 () in
          if dof > max_dof then raise (Defect (Malformed "dof out of range"));
          Some
            (Array.init dof (fun _ -> Int64.float_of_bits (get_i64 ())))
        | _ -> raise (Defect (Malformed "bad theta presence flag"))
      in
      let reply = get_str ~what:"reply payload" ~cap:max_reply_len () in
      Committed { session; ordinal; theta; reply }
    | 3 ->
      let session = get_str ~what:"session name" ~cap:max_string_len () in
      Closed { session }
    | tag -> raise (Defect (Malformed (Printf.sprintf "unknown record tag %d" tag)))
  in
  if !pos <> stop then raise (Defect (Malformed "trailing record bytes"));
  r

(* Decodes records from [b] starting after the header; returns the valid
   prefix, the byte offset just past its last record, and the first
   defect if the tail is damaged. *)
let decode_records b total =
  let records = ref [] in
  let pos = ref header_len in
  let defect = ref None in
  (try
     while !pos < total do
       let start = !pos in
       if start + 4 > total then raise (Defect Truncated);
       let n = Int32.to_int (Bytes.get_int32_le b start) in
       if n <= 0 || n > max_record_bytes then
         raise (Defect (Malformed (Printf.sprintf "record length %d" n)));
       if start + 4 + n + 8 > total then raise (Defect Truncated);
       let stored = Bytes.get_int64_le b (start + 4 + n) in
       if not (Int64.equal (fnv1a b (start + 4) n) stored) then
         raise (Defect Checksum_mismatch);
       let r = decode_payload b (start + 4) n in
       records := r :: !records;
       pos := start + 4 + n + 8
     done
   with Defect e -> defect := Some e);
  (List.rev !records, !pos, !defect)

let load_bytes path =
  match
    In_channel.with_open_bin path (fun ic ->
        In_channel.input_all ic)
  with
  | s -> Ok (Bytes.unsafe_of_string s)
  | exception Sys_error msg -> Error (Io msg)

let check_header b total =
  if total < header_len then Error Truncated
  else if Bytes.sub_string b 0 (String.length magic) <> magic then
    Error Bad_magic
  else
    let v = Int32.to_int (Bytes.get_int32_le b (String.length magic)) in
    if v <> version then Error (Unsupported_version v) else Ok ()

let load path =
  match load_bytes path with
  | Error e -> Error e
  | Ok b ->
    let total = Bytes.length b in
    (match check_header b total with
    | Error e -> Error e
    | Ok () ->
      let records, _, defect = decode_records b total in
      Ok (records, defect))

(* ---- append handle ---------------------------------------------------- *)

type t = { oc : out_channel; lock : Mutex.t; mutable appended : int }

let open_ path =
  let fresh () =
    match open_out_bin path with
    | oc ->
      output_string oc magic;
      let b = Bytes.create 4 in
      Bytes.set_int32_le b 0 (Int32.of_int version);
      output_bytes oc b;
      flush oc;
      Ok ({ oc; lock = Mutex.create (); appended = 0 }, [], None)
    | exception Sys_error msg -> Error (Io msg)
  in
  if not (Sys.file_exists path) then fresh ()
  else
    match load_bytes path with
    | Error e -> Error e
    | Ok b ->
      let total = Bytes.length b in
      if total = 0 then fresh ()
      else (
        match check_header b total with
        | Error e -> Error e
        | Ok () ->
          let records, valid_len, defect = decode_records b total in
          (* a torn or corrupt tail is cut off so every future append
             extends a well-formed log *)
          (match
             let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
             (match
                if valid_len < total then Unix.ftruncate fd valid_len
              with
             | () -> ()
             | exception e ->
               (try Unix.close fd with Unix.Unix_error _ -> ());
               raise e);
             ignore (Unix.lseek fd valid_len Unix.SEEK_SET);
             Unix.out_channel_of_descr fd
           with
          | oc ->
            Ok ({ oc; lock = Mutex.create (); appended = 0 }, records, defect)
          | exception Unix.Unix_error (e, _, _) ->
            Error (Io (Unix.error_message e))))

let append t r =
  let b = encode_record r in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      output_bytes t.oc b;
      flush t.oc;
      t.appended <- t.appended + 1)

let appended t = t.appended

let close t =
  Mutex.lock t.lock;
  close_out_noerr t.oc;
  Mutex.unlock t.lock
