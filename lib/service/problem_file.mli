open Dadu_core
open Dadu_kinematics

(** Plain-text batch problem files for `dadu serve-batch`.

    One declaration per line; [#] starts a comment, blank lines are
    ignored.  Example:

    {v
    # a mixed batch against two robots
    robot eval:12
    random 100 seed=7        # 100 reachable targets, random starts
    target 6.0,2.0,1.0       # explicit target, zero start (clamped)
    target 6.0,2.0,1.0 theta0=0.1,0.2,0,0,0,0,0,0,0,0,0,0
    robot arm7
    target 0.4,0.3,0.5
    v}

    [robot] selects the chain for the following lines: a builtin spec
    (arm6 | arm7 | scara | snake:<dof> | eval:<dof> | planar:<dof>) or
    [file:<path>] for a {!Chain_format} description file.  [target]
    coordinates are comma-separated meters; without [theta0=] the start
    is the zero configuration clamped to the joint limits.  [random n]
    draws [n] reachable problems from seed [seed] (default 42) — the
    {!Ik.random_problem} setup.  Problems appear in file order.

    [target] and [random] lines additionally accept [deadline=<s>] — a
    non-negative per-request deadline in seconds from the batch's start
    (see {!Service.request}); on a [random] line it applies to every
    problem the line draws. *)

val robot_of_spec : string -> (Chain.t, string) result
(** The [robot] line's spec parser, usable on its own. *)

type entry = { problem : Ik.problem; deadline_s : float option }

val parse_requests : string -> (entry array, string) result
(** Errors carry the 1-based line number and what was expected. *)

val parse_requests_file : string -> (entry array, string) result
(** Reads and parses a file; I/O failures are reported in the error. *)

val parse : string -> (Ik.problem array, string) result
(** {!parse_requests} with the deadlines dropped. *)

val parse_file : string -> (Ik.problem array, string) result
(** Reads and parses a file; I/O failures are reported in the error. *)
