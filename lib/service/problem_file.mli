open Dadu_core
open Dadu_kinematics

(** Plain-text batch problem files for `dadu serve-batch`.

    One declaration per line; [#] starts a comment, blank lines are
    ignored.  Example:

    {v
    # a mixed batch against two robots
    robot eval:12
    random 100 seed=7        # 100 reachable targets, random starts
    target 6.0,2.0,1.0       # explicit target, zero start (clamped)
    target 6.0,2.0,1.0 theta0=0.1,0.2,0,0,0,0,0,0,0,0,0,0
    robot arm7
    target 0.4,0.3,0.5
    v}

    [robot] selects the chain for the following lines: a builtin spec
    (arm6 | arm7 | scara | snake:<dof> | eval:<dof> | planar:<dof>) or
    [file:<path>] for a {!Chain_format} description file.  [target]
    coordinates are comma-separated meters; without [theta0=] the start
    is the zero configuration clamped to the joint limits.  [random n]
    draws [n] reachable problems from seed [seed] (default 42) — the
    {!Ik.random_problem} setup.  Problems appear in file order.

    [target] and [random] lines additionally accept [deadline=<s>] — a
    non-negative per-request deadline in seconds from the batch's start
    (see {!Service.request}); on a [random] line it applies to every
    problem the line draws. *)

val robot_of_spec : string -> (Chain.t, string) result
(** The [robot] line's spec parser, usable on its own. *)

type entry = { problem : Ik.problem; deadline_s : float option }

val parse_requests : string -> (entry array, string) result
(** Errors carry the 1-based line number and what was expected. *)

val parse_requests_file : string -> (entry array, string) result
(** Reads and parses a file; I/O failures are reported in the error. *)

val parse : string -> (Ik.problem array, string) result
(** {!parse_requests} with the deadlines dropped. *)

val parse_file : string -> (Ik.problem array, string) result
(** Reads and parses a file; I/O failures are reported in the error. *)

(** {1 Wire framing}

    One frame of the `dadu serve` protocol: the payload byte length in
    ASCII decimal, [\n], the payload bytes, [\n].  Payloads are JSON
    documents, but the framing layer never inspects them — a malformed
    JSON payload costs a typed error reply while the stream stays
    synchronized; a malformed {e length line} desynchronizes the stream
    and the connection must be dropped. *)

val max_frame_bytes : int
(** Upper bound on a frame payload (16 MiB): a garbage length line must
    not turn into a gigabyte allocation. *)

val write_frame : out_channel -> string -> unit
(** Writes one frame.  The caller flushes. *)

val read_frame : in_channel -> (string option, string) result
(** Reads one frame: [Ok None] on clean EOF before a length line,
    [Ok (Some payload)] on success, [Error] on a malformed length line
    or a truncated/unterminated frame (the stream is desynchronized —
    close the connection). *)

(** {2 Deadline-aware framing}

    {!read_frame} blocks on a stdlib channel, so a peer that stops
    mid-frame pins the reading thread forever.  {!read_frame_fd} works
    on the raw descriptor with [Unix.select] and enforces two distinct
    deadlines: an {e idle} timeout while waiting for the first byte of
    the next frame (slow-loris defense) and a {e frame} timeout for
    completing a frame once started (a half-written frame cannot pin a
    reader past it).  Either [None] waits forever. *)

type frame_reader
(** Buffered reader state for one descriptor; not thread-safe. *)

val frame_reader : Unix.file_descr -> frame_reader

type framed =
  | Frame of string
  | Eof  (** clean EOF before a length line *)
  | Timed_out of [ `Idle | `Frame ]
  | Frame_error of string
      (** stream desynchronized or read failure: drop the connection *)

val read_frame_fd :
  ?idle_timeout_s:float -> ?frame_timeout_s:float -> frame_reader -> framed

val write_frame_injected :
  fault:Dadu_util.Fault.t -> out_channel -> string -> bool
(** Write one frame (flushed) through a wire-fault registry consulting
    the [net-*] sites of {!Dadu_util.Fault} in fixed order (cut, short
    frame, garble, stall).  Returns [false] when the plan abandoned the
    stream ([net-cut] writes nothing, [net-short-frame] writes a bare
    prefix) — the caller must stop using the connection and shut it
    down.  [net-garble] corrupts the length line (only header
    corruption is reliably detectable — payloads carry no checksum);
    [net-stall] sleeps [arg] seconds between length line and payload.
    With a disabled registry this is exactly [write_frame] + flush. *)

(** {1 Client scripts}

    The `dadu client` op stream: one op per line, [#] comments and blank
    lines as in problem files.

    {v
    hello acme                    # name this connection's tenant
    open s1 eval:30               # open (or resume) a trajectory session
    waypoint s1 4.0,1.0,2.0       # stream Cartesian waypoints
    waypoint s1 4.0,1.1,2.0
    close s1
    robot eval:12                 # robot for subsequent one-shot solves
    solve 3.0,1.0,1.0 deadline=0.5
    solve 3.0,1.0,1.0 theta0=0.1,0,0,0,0,0,0,0,0,0,0,0
    ping
    stats
    raw {"op":"nonsense"          # verbatim payload (malformed-frame tests)
    v}

    Robot specs stay strings — the server resolves them, so a bad spec
    exercises the server's typed error reply rather than failing
    client-side. *)

type op =
  | Hello of { tenant : string }
  | Open of { session : string; robot : string }
  | Waypoint of { session : string; x : float; y : float; z : float }
  | Solve of {
      robot : string;
      x : float;
      y : float;
      z : float;
      theta0 : float list option;
      deadline_s : float option;
    }
  | Ping
  | Close of { session : string }
  | Stats
  | Raw of string  (** payload sent verbatim in one frame *)

val parse_script : string -> (op array, string) result
(** Errors carry the 1-based line number and what was expected. *)

val parse_script_file : string -> (op array, string) result
(** Reads and parses a file; I/O failures are reported in the error. *)
