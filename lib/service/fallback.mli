open Dadu_core

(** Solver fallback chains: robustness through heterogeneous ensembles.

    HJCD-IK-style batched serving wins throughput with a cheap first-line
    solver and recovers stragglers with heavier methods; this module runs
    a configurable chain (e.g. [Quick_ik → Dls → Sdls]) on one problem,
    stopping at the first solver that converges and keeping the
    best-error attempt when none do.

    Every claimed convergence is re-verified against forward kinematics
    before being reported: a solver whose bookkeeping disagrees with FK
    is demoted to [Stalled] and the chain continues.  The outcome
    therefore never carries [Ik.Converged] with a true end-effector error
    above [config.accuracy]. *)

type kind =
  | Quick_ik
  | Jt_serial
  | Jt_buss
  | Jt_linesearch
  | Pinv
  | Dls
  | Sdls
  | Ccd

val all : (string * kind) list
(** CLI-facing names, e.g. [("quick-ik", Quick_ik)]. *)

val name : kind -> string

val of_string : string -> (kind, string) result

val chain_of_string : string -> (kind list, string) result
(** Comma-separated chain, e.g. ["quick-ik,dls,sdls"].  Rejects empty
    chains and unknown names. *)

val chain_to_string : kind list -> string

val solver : ?speculations:int -> kind -> config:Ik.config -> Ik.problem -> Ik.result
(** One attempt with one solver.  [speculations] (default 64) applies to
    [Quick_ik] only. *)

type outcome = {
  result : Ik.result;  (** the converged attempt, or the best-error one *)
  solver : kind;  (** solver that produced [result] *)
  attempts : int;  (** solvers actually run (≥ 1) *)
  fallbacks : int;  (** [attempts - 1] *)
  trail : (kind * Ik.status) list;
      (** every attempt with its FK-verified status, in chain order — the
          circuit breakers' evidence stream *)
  elapsed_s : float;  (** wall clock across all attempts *)
}

val run :
  ?speculations:int ->
  ?time_budget_s:float ->
  ?attempt_hook:(kind -> start_s:float -> dur_s:float -> Ik.result -> unit) ->
  ?fault:Dadu_util.Fault.t ->
  ?head:Ik.result ->
  chain:kind list ->
  config:Ik.config ->
  Ik.problem ->
  outcome
(** Runs the chain in order.  [config.max_iterations] is the per-attempt
    iteration budget.  [time_budget_s], when given, is checked between
    attempts: once the elapsed wall clock exceeds it no further solver is
    tried (an attempt in flight is never preempted, and results become
    timing-dependent — leave it unset where determinism matters).
    [attempt_hook] is called after each attempt with the FK-verified
    result and {!Dadu_util.Trace.now_s} timings — the service's
    fallback-tier trace spans; it must not raise.  Raises
    [Invalid_argument] on an empty chain.

    [head], when given, stands in for the head tier's raw solver call:
    the result a lockstep mega-batch sweep already computed for this
    problem (bit-identical to the in-chain call — one iteration path,
    see {!Dadu_core.Megabatch}).  FK re-verification, the attempt hook,
    the trail, and every later tier behave exactly as if the head tier
    had run in-chain; its hook duration only reflects verification, the
    sweep time being amortized outside.  Do not combine with enabled
    fault injection — an injected head would skip the head tier's fault
    sites and desynchronize the per-request fault stream.

    A raising tier — real bug or injected fault — is contained: the
    attempt becomes a [Diverged] best-effort result (clamped [θ₀],
    honestly scored) and the chain continues, so one crashed solver
    degrades the reply instead of faulting the request.

    [fault] (default disabled) consults three sites once per attempt:
    ["solver-raise"] makes the tier crash, ["solver-nan"] poisons the
    returned [θ], ["solver-lie"] forges a [Converged]/zero-error claim.
    All three are caught by the crash containment, the FK
    re-verification, or the divergence demotion above — they exist to
    exercise exactly those defenses. *)
