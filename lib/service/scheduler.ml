module Pool = Dadu_util.Domain_pool

type t = { pool : Pool.t option; chunk : int }

let create ?pool ?(chunk = 64) () =
  if chunk <= 0 then invalid_arg "Scheduler.create: chunk must be positive";
  { pool; chunk }

let chunk_size t = t.chunk

let parallelism t = match t.pool with None -> 1 | Some p -> Pool.size p

let guarded f x = try Ok (f x) with exn -> Error exn

let run_wave t f n =
  match t.pool with
  | None -> Array.init n f
  | Some pool -> Pool.map pool f n

let map t f xs =
  let n = Array.length xs in
  run_wave t (fun i -> guarded f xs.(i)) n

let map_chunked t ~prepare ~work ~commit xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    (* placeholder is overwritten for every index before the array is
       returned *)
    let out = Array.make n (Error Exit) in
    let off = ref 0 in
    while !off < n do
      let base = !off in
      let len = Stdlib.min t.chunk (n - base) in
      let prepared = Array.init len (fun j -> prepare (base + j) xs.(base + j)) in
      let results = run_wave t (fun j -> guarded work prepared.(j)) len in
      for j = 0 to len - 1 do
        out.(base + j) <- results.(j);
        commit (base + j) results.(j)
      done;
      off := base + len
    done;
    out
  end
