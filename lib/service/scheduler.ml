module Pool = Dadu_util.Domain_pool
module Trace = Dadu_util.Trace

type t = { pool : Pool.t option; chunk : int }

let create ?pool ?(chunk = 64) () =
  if chunk <= 0 then invalid_arg "Scheduler.create: chunk must be positive";
  { pool; chunk }

let chunk_size t = t.chunk

let parallelism t = match t.pool with None -> 1 | Some p -> Pool.size p

let guarded f x = try Ok (f x) with exn -> Error exn

let run_wave t f n =
  match t.pool with
  | None -> Array.init n f
  | Some pool -> Pool.map pool f n

let map t f xs =
  let n = Array.length xs in
  run_wave t (fun i -> guarded f xs.(i)) n

type dispatch = { index : int; elapsed_s : float; expired : bool }

(* The chunked serial-prepare / work / serial-commit skeleton shared by
   [map_deadlined] (per-item work on the pool) and [map_lockstep] (whole
   prepared chunks handed to the caller).  [run] must return exactly one
   result per prepared item. *)
let map_waves t ~now ?budget_s ?deadline_s ~prepare ~run ~commit xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let t0 = now () in
    (* inclusive, so a 0-second deadline (or budget) expires immediately
       even when the clock has not visibly advanced since [t0] *)
    let past limit elapsed =
      match limit with None -> false | Some l -> elapsed >= l
    in
    let deadline_of i =
      match deadline_s with None -> None | Some f -> f i
    in
    (* placeholder is overwritten for every index before the array is
       returned *)
    let out = Array.make n (Error Exit) in
    let off = ref 0 in
    while !off < n do
      let base = !off in
      let len = Stdlib.min t.chunk (n - base) in
      let prepared =
        Array.init len (fun j ->
            let index = base + j in
            (* expiry is decided here, in the serial phase, so every pool
               size observes the same prepared values for the same clock
               readings — and, with no deadlines or budget at all, no
               clock reading can change the outcome *)
            let elapsed_s = now () -. t0 in
            let expired =
              past budget_s elapsed_s || past (deadline_of index) elapsed_s
            in
            prepare { index; elapsed_s; expired } xs.(index))
      in
      let results = run prepared in
      for j = 0 to len - 1 do
        out.(base + j) <- results.(j);
        commit (base + j) results.(j)
      done;
      off := base + len
    done;
    out
  end

let map_deadlined t ?(now = Trace.now_s) ?budget_s ?deadline_s ~prepare ~work
    ~commit xs =
  map_waves t ~now ?budget_s ?deadline_s ~prepare
    ~run:(fun prepared ->
      run_wave t (fun j -> guarded work prepared.(j)) (Array.length prepared))
    ~commit xs

let map_lockstep t ?(now = Trace.now_s) ?budget_s ?deadline_s ~prepare
    ~work_batch ~commit xs =
  map_waves t ~now ?budget_s ?deadline_s ~prepare
    ~run:(fun prepared ->
      let len = Array.length prepared in
      match guarded work_batch prepared with
      | Ok results when Array.length results = len -> results
      | Ok _ ->
        Array.make len
          (Error
             (Invalid_argument
                "Scheduler.map_lockstep: work_batch returned wrong arity"))
      | Error exn -> Array.make len (Error exn))
    ~commit xs

let map_chunked t ~prepare ~work ~commit xs =
  map_deadlined t ~prepare:(fun d x -> prepare d.index x) ~work ~commit xs
