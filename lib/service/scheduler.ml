module Pool = Dadu_util.Domain_pool
module Trace = Dadu_util.Trace

type t = { pool : Pool.t option; chunk : int }

let create ?pool ?(chunk = 64) () =
  if chunk <= 0 then invalid_arg "Scheduler.create: chunk must be positive";
  { pool; chunk }

let chunk_size t = t.chunk

let parallelism t = match t.pool with None -> 1 | Some p -> Pool.size p

let guarded f x = try Ok (f x) with exn -> Error exn

let run_wave t f n =
  match t.pool with
  | None -> Array.init n f
  | Some pool -> Pool.map pool f n

let map t f xs =
  let n = Array.length xs in
  run_wave t (fun i -> guarded f xs.(i)) n

type dispatch = { index : int; elapsed_s : float; expired : bool }

type wave_phase = Prepare | Work | Commit

(* The chunked serial-prepare / work / serial-commit skeleton shared by
   [map_deadlined] (per-item work on the pool) and [map_lockstep] (whole
   prepared chunks handed to the caller).  [run] must return exactly one
   result per prepared item.

   With [prepare_wave], dispatches for the whole wave are still built
   serially in input order — one clock read each, before any prepare work
   runs — and handed to the caller as an array: the wave-start snapshot
   of the clock.  Without deadlines or a budget the dispatch values are
   clock-independent either way, so the two prepare shapes see identical
   inputs.

   Phase hooks: [phase_enter] fires on the orchestrating domain
   immediately before each phase of each wave, [phase_done] immediately
   after with the phase's wall time.  Both default to no-ops and never
   affect scheduling; timing reads use the real monotonic clock, not the
   (injectable) [now], so fake-clock tests keep their reading budget. *)
let map_waves t ~now ?budget_s ?deadline_s ?cut ?prepare_wave ?phase_enter
    ?phase_done ~prepare ~run ~commit xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else begin
    let t0 = now () in
    (* inclusive, so a 0-second deadline (or budget) expires immediately
       even when the clock has not visibly advanced since [t0] *)
    let past limit elapsed =
      match limit with None -> false | Some l -> elapsed >= l
    in
    let deadline_of i =
      match deadline_s with None -> None | Some f -> f i
    in
    (* placeholder is overwritten for every index before the array is
       returned *)
    let out = Array.make n (Error Exit) in
    let off = ref 0 in
    while !off < n do
      let base = !off in
      let len = Stdlib.min t.chunk (n - base) in
      (* [cut ~base i] ends the wave before item [i]: the caller needs the
         serial commit of an earlier item to run before [i]'s prepare (the
         session warm-start chain).  Queried in input order, so wave shapes
         are a pure function of the input array — never of the pool. *)
      let len =
        match cut with
        | None -> len
        | Some cut ->
          let stop = ref len in
          (let i = ref 1 in
           while !i < !stop do
             if cut ~base (base + !i) then stop := !i else incr i
           done);
          !stop
      in
      let timed phase f =
        (match phase_enter with None -> () | Some e -> e phase);
        match phase_done with
        | None -> f ()
        | Some d ->
          let start_s = Trace.now_s () in
          let r = f () in
          d phase ~base ~len ~start_s ~dur_s:(Trace.now_s () -. start_s);
          r
      in
      let dispatch_at index =
        (* expiry is decided here, in the serial phase, so every pool
           size observes the same prepared values for the same clock
           readings — and, with no deadlines or budget at all, no
           clock reading can change the outcome *)
        let elapsed_s = now () -. t0 in
        let expired =
          past budget_s elapsed_s || past (deadline_of index) elapsed_s
        in
        { index; elapsed_s; expired }
      in
      let prepared =
        timed Prepare (fun () ->
            match prepare_wave with
            | Some pw -> pw (Array.init len (fun j -> dispatch_at (base + j)))
            | None ->
              Array.init len (fun j ->
                  let d = dispatch_at (base + j) in
                  prepare d xs.(d.index)))
      in
      if Array.length prepared <> len then
        invalid_arg "Scheduler: prepare_wave returned wrong arity";
      let results = timed Work (fun () -> run prepared) in
      timed Commit (fun () ->
          for j = 0 to len - 1 do
            out.(base + j) <- results.(j);
            commit (base + j) results.(j)
          done);
      off := base + len
    done;
    out
  end

let map_deadlined t ?(now = Trace.now_s) ?budget_s ?deadline_s ?cut
    ?prepare_wave ?phase_enter ?phase_done ~prepare ~work ~commit xs =
  map_waves t ~now ?budget_s ?deadline_s ?cut ?prepare_wave ?phase_enter
    ?phase_done ~prepare
    ~run:(fun prepared ->
      run_wave t (fun j -> guarded work prepared.(j)) (Array.length prepared))
    ~commit xs

let map_lockstep t ?(now = Trace.now_s) ?budget_s ?deadline_s ?cut
    ?prepare_wave ?phase_enter ?phase_done ~prepare ~work_batch ~commit xs =
  map_waves t ~now ?budget_s ?deadline_s ?cut ?prepare_wave ?phase_enter
    ?phase_done ~prepare
    ~run:(fun prepared ->
      let len = Array.length prepared in
      match guarded work_batch prepared with
      | Ok results when Array.length results = len -> results
      | Ok _ ->
        Array.make len
          (Error
             (Invalid_argument
                "Scheduler.map_lockstep: work_batch returned wrong arity"))
      | Error exn -> Array.make len (Error exn))
    ~commit xs

let map_chunked t ~prepare ~work ~commit xs =
  map_deadlined t ~prepare:(fun d x -> prepare d.index x) ~work ~commit xs
