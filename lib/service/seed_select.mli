open Dadu_linalg
open Dadu_kinematics

(** Multi-seed speculative starts: the paper's speculate-then-select,
    lifted from step sizes to seed joint vectors.

    Given a request, up to [candidates] starting configurations are
    assembled in a fixed priority order — the request's own [θ₀], the
    trajectory session's previous-waypoint solution (the temporal warm
    start, see {!Session}), the seed-cache hit, the posture-library
    nearest neighbour, the clamped zero posture, then Gaussian
    perturbations of the best-scoring base —
    each scored by its first-iteration FK error (squared end-effector
    distance to the target, computed with the {!Dadu_kinematics.Fk}
    speculation kernel), and only the argmin winner is committed as the
    start the solver chain sees.

    Determinism contract: the winner is a pure function of (request
    ordinal, chain, target, θ₀, cache seed, library).  Perturbation noise
    is seeded from the request ordinal and the perturbation index alone,
    scoring is serial over candidates, and ties break to the earliest
    (highest-priority) candidate — so replies are byte-identical across
    pool sizes and lockstep modes (the selection runs in the scheduler's
    serial prepare phase; pinned by test).

    Steady state allocates nothing: the scratch owns every buffer and the
    winner is written into a caller-supplied vector (pinned by the alloc
    suite for the perturbation-free candidate set). *)

type source = Theta0 | Session | Cache | Library | Zero | Perturbed
(** Where the winning seed came from, in assembly priority order. *)

val source_name : source -> string
(** ["theta0"], ["session"], ["cache"], ["library"], ["zero"],
    ["perturbed"]. *)

type t
(** Reusable scratch: a flat lane-major candidate θ plane (rows of
    [tstride] floats, Megabatch layout), per-row target planes, and the
    SoA position/error planes of the row-scoring kernel
    ({!Dadu_kinematics.Fk.score_rows_into}).  The orchestration is not
    thread-safe — the service owns one and calls it only between the
    scheduler's parallel phases — but {!choose_wave} internally fans its
    scoring sweeps out over a pool (disjoint plane rows; per-domain FK
    scratches via {!Dadu_core.Workspace.local}). *)

val create : unit -> t

val choose :
  t ->
  session_seed:Vec.t option ->
  library:Posture_library.t option ->
  cache_seed:Vec.t option ->
  candidates:int ->
  ordinal:int ->
  scale:float ->
  chain:Chain.t ->
  tx:float ->
  ty:float ->
  tz:float ->
  theta0:Vec.t ->
  dst:Vec.t ->
  source
(** Writes the winning start (clamped to the chain's joint limits) into
    [dst] (length [Chain.dof chain]) and returns its provenance.
    [candidates] must be at least 1; [ordinal] is the request's stable
    ordinal (batch index, or the session waypoint sequence number);
    [scale] is the perturbation std-dev (radians).  [session_seed] — the
    trajectory session's previous converged solution — ranks just below
    the request's own [θ₀]; it, [cache_seed] and the library posture are
    used only when present ([library] only when it
    {!Posture_library.matches} the chain).  With [candidates = 1]
    the request's own [θ₀] is returned unscored (clamped), preserving the
    non-speculative path exactly. *)

type spec = {
  ordinal : int;  (** request's stable ordinal (perturbation noise key) *)
  chain : Chain.t;
  tx : float;
  ty : float;
  tz : float;  (** target position *)
  theta0 : Vec.t;  (** the request's own start (borrowed, not mutated) *)
  session_seed : Vec.t option;
      (** frozen session warm-start slot (the previous waypoint's
          solution), resolved in the serial snapshot pass *)
  cache_seed : Vec.t option;
      (** frozen seed-cache hit, resolved in the serial snapshot pass *)
  library : Posture_library.t option;
      (** the library, only when it {!Posture_library.matches} the chain *)
  library_index : int;
      (** frozen nearest-neighbour posture row, [-1] for none; resolved
          in the serial snapshot pass (the NN scratch is not
          thread-safe) *)
  candidates : int;
  scale : float;  (** perturbation std-dev (radians) *)
  dst : Vec.t;  (** the winning start is written here (length dof) *)
}
(** One request's frozen selection inputs: everything {!choose} would
    have read from mutable serial state ({!Seed_cache},
    {!Posture_library} NN), captured by the snapshot pass so the
    assembly and scoring passes touch no shared state. *)

val choose_wave :
  t -> ?pool:Dadu_util.Domain_pool.t -> spec array -> source array
(** Wave-fused {!choose} over one scheduler wave: every spec's base
    candidates are packed into contiguous rows of the shared θ plane and
    scored in chunked {!Dadu_kinematics.Fk.score_rows_into} sweeps
    (parallel across [pool] when given, with a grain of a few rows);
    per-request base argmins, perturbed-row assembly from each winner,
    a second fused sweep, and the final winner commits run serially in
    ordinal order.  Returns each spec's winning source and writes the
    winning start into its [dst].

    Bit-parity contract (pinned by test): for every pool size — including
    none — results are byte-identical to calling {!choose} per spec in
    ordinal order, because rows are assembled by the same code in the
    same order, rows are scored independently (any chunking equals serial
    scoring), and the split argmin preserves the serial earliest-row
    tie-break.  Specs with [candidates = 1] take the clamped-[θ₀] path
    exactly as {!choose} does. *)
