open Dadu_linalg
open Dadu_kinematics

(** Multi-seed speculative starts: the paper's speculate-then-select,
    lifted from step sizes to seed joint vectors.

    Given a request, up to [candidates] starting configurations are
    assembled in a fixed priority order — the request's own [θ₀], the
    seed-cache hit, the posture-library nearest neighbour, the clamped
    zero posture, then Gaussian perturbations of the best-scoring base —
    each scored by its first-iteration FK error (squared end-effector
    distance to the target, computed with the {!Dadu_kinematics.Fk}
    speculation kernel), and only the argmin winner is committed as the
    start the solver chain sees.

    Determinism contract: the winner is a pure function of (request
    ordinal, chain, target, θ₀, cache seed, library).  Perturbation noise
    is seeded from the request ordinal and the perturbation index alone,
    scoring is serial over candidates, and ties break to the earliest
    (highest-priority) candidate — so replies are byte-identical across
    pool sizes and lockstep modes (the selection runs in the scheduler's
    serial prepare phase; pinned by test).

    Steady state allocates nothing: the scratch owns every buffer and the
    winner is written into a caller-supplied vector (pinned by the alloc
    suite for the perturbation-free candidate set). *)

type source = Theta0 | Cache | Library | Zero | Perturbed
(** Where the winning seed came from, in assembly priority order. *)

val source_name : source -> string
(** ["theta0"], ["cache"], ["library"], ["zero"], ["perturbed"]. *)

type t
(** Reusable scratch (FK workspace, candidate and score buffers).  Not
    thread-safe; the service owns one and calls it only from the serial
    prepare phase. *)

val create : unit -> t

val choose :
  t ->
  library:Posture_library.t option ->
  cache_seed:Vec.t option ->
  candidates:int ->
  ordinal:int ->
  scale:float ->
  chain:Chain.t ->
  tx:float ->
  ty:float ->
  tz:float ->
  theta0:Vec.t ->
  dst:Vec.t ->
  source
(** Writes the winning start (clamped to the chain's joint limits) into
    [dst] (length [Chain.dof chain]) and returns its provenance.
    [candidates] must be at least 1; [ordinal] is the request's batch
    index; [scale] is the perturbation std-dev (radians).  [cache_seed]
    and the library posture are used only when present ([library] only
    when it {!Posture_library.matches} the chain).  With [candidates = 1]
    the request's own [θ₀] is returned unscored (clamped), preserving the
    non-speculative path exactly. *)
