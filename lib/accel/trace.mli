(** Cycle-level event trace of one IKAcc iteration.

    Expands the analytic cycle model into explicit unit-occupancy
    intervals — what a waveform viewer would show — for inspection,
    schedule debugging, and as an independent cross-check of
    {!Scheduler.iteration_cycles} (the tests assert the trace's makespan
    equals the analytic count). *)

type event = {
  unit_name : string;  (** "SPU", "broadcast", "SSU-3", "select", ... *)
  start_cycle : int;  (** inclusive *)
  end_cycle : int;  (** exclusive; [end_cycle > start_cycle] *)
  candidate : int option;  (** speculation index for SSU events *)
}

val iteration : Config.t -> dof:int -> speculations:int -> event list
(** Events of one full Quick-IK iteration, in start order: the SPU serial
    pass, then per scheduling round a broadcast, the parallel SSU searches,
    and the selector fold. *)

val makespan : event list -> int
(** Largest [end_cycle] (0 for the empty trace). *)

val busy_cycles : prefix:string -> event list -> int
(** Total occupancy of units whose name starts with [prefix] (e.g. "SSU"). *)

val render : ?width:int -> event list -> string
(** ASCII Gantt chart, one row per unit, time left-to-right scaled into
    [width] columns (default 72). *)
