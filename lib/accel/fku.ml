let chain_cycles (cfg : Config.t) ~dof =
  if dof <= 0 then invalid_arg "Fku.chain_cycles: dof must be positive";
  let fill = cfg.Config.dh_cycles + cfg.Config.matmul_cycles in
  let steady = Stdlib.max cfg.Config.dh_cycles cfg.Config.matmul_cycles in
  fill + ((dof - 1) * steady)

let matmul_count ~dof = dof
