type plan = { schedules : int; full_rounds : int; last_round_ssus : int }

let plan (cfg : Config.t) ~speculations =
  if speculations <= 0 then invalid_arg "Scheduler.plan: speculations must be positive";
  let n = cfg.Config.num_ssus in
  let schedules = (speculations + n - 1) / n in
  let remainder = speculations mod n in
  if remainder = 0 then { schedules; full_rounds = schedules; last_round_ssus = n }
  else { schedules; full_rounds = schedules - 1; last_round_ssus = remainder }

let assignments cfg ~speculations =
  let { schedules; _ } = plan cfg ~speculations in
  let n = cfg.Config.num_ssus in
  List.init schedules (fun r ->
      let lo = r * n in
      let hi = Stdlib.min speculations ((r + 1) * n) in
      List.init (hi - lo) (fun k -> lo + k))

let iteration_cycles cfg ~dof ~speculations =
  let { schedules; _ } = plan cfg ~speculations in
  let per_round =
    cfg.Config.broadcast_cycles + Ssu.candidate_cycles cfg ~dof + cfg.Config.select_cycles
  in
  Spu.iteration_cycles cfg ~dof + (schedules * per_round)

let ssu_busy_cycles cfg ~dof ~speculations =
  (* Every candidate occupies exactly one SSU for one round, so the busy
     SSU-rounds equal the speculation count. *)
  speculations * Ssu.candidate_cycles cfg ~dof
