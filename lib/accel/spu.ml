let stage_latencies (cfg : Config.t) =
  [|
    cfg.Config.dh_cycles;
    cfg.Config.matmul_cycles;
    cfg.Config.jacobian_stage_cycles;
    cfg.Config.jjte_stage_cycles;
  |]

let initiation_interval cfg = Array.fold_left Stdlib.max 1 (stage_latencies cfg)

let iteration_cycles cfg ~dof =
  if dof <= 0 then invalid_arg "Spu.iteration_cycles: dof must be positive";
  let fill = Array.fold_left ( + ) 0 (stage_latencies cfg) in
  fill + ((dof - 1) * initiation_interval cfg) + cfg.Config.alpha_cycles
