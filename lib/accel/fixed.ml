open Dadu_linalg
open Dadu_kinematics

type format = { integer_bits : int; frac_bits : int }

let q8_8 = { integer_bits = 8; frac_bits = 8 }
let q8_16 = { integer_bits = 8; frac_bits = 16 }
let q8_24 = { integer_bits = 8; frac_bits = 24 }

let word_width f = 1 + f.integer_bits + f.frac_bits

let resolution f = Float.ldexp 1. (-f.frac_bits)

let max_value f = Float.ldexp 1. f.integer_bits -. resolution f

let quantize f x =
  if Float.is_nan x then invalid_arg "Fixed.quantize: nan";
  let hi = max_value f in
  let clamped = Float.min hi (Float.max (-.hi) x) in
  let scale = Float.ldexp 1. f.frac_bits in
  Float.round (clamped *. scale) /. scale

(* 4×4 product with quantization after every multiply-accumulate, as a
   fixed-point MAC array produces it. *)
let mul_into_quantized fmt ~dst a b =
  let q = quantize fmt in
  for i = 0 to 3 do
    let base = i * 4 in
    for j = 0 to 3 do
      let acc = ref 0. in
      for k = 0 to 3 do
        acc := q (!acc +. q (a.(base + k) *. b.((k * 4) + j)))
      done;
      dst.(base + j) <- !acc
    done
  done

let fk_position fmt chain theta =
  Chain.check_config chain theta;
  let q = quantize fmt in
  let quantize_mat m = Array.map q m in
  let links = Chain.links chain in
  let acc = ref (quantize_mat (Chain.base chain)) in
  let local = Mat4.identity () in
  let product = Mat4.identity () in
  for i = 0 to Array.length links - 1 do
    let { Chain.joint; dh; _ } = links.(i) in
    Dh.transform_into ~dst:local dh joint.Joint.kind theta.(i);
    (* the CORDIC/table trig outputs are themselves fixed-point *)
    for k = 0 to 15 do
      local.(k) <- q local.(k)
    done;
    mul_into_quantized fmt ~dst:product !acc local;
    Array.blit product 0 !acc 0 16
  done;
  mul_into_quantized fmt ~dst:product !acc (quantize_mat (Chain.tool chain));
  Mat4.position product

type report = {
  format : format;
  samples : int;
  max_error : float;
  mean_error : float;
}

let evaluate ?(samples = 100) rng fmt chain =
  if samples <= 0 then invalid_arg "Fixed.evaluate: samples must be positive";
  let total = ref 0. in
  let worst = ref 0. in
  for _ = 1 to samples do
    let theta = Target.random_config rng chain in
    let exact = Fk.position chain theta in
    let fixed = fk_position fmt chain theta in
    let err = Vec3.dist exact fixed in
    total := !total +. err;
    worst := Float.max !worst err
  done;
  { format = fmt; samples; max_error = !worst; mean_error = !total /. float_of_int samples }

let sufficient report ~accuracy = report.max_error < accuracy /. 4.
