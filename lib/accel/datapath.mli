open Dadu_linalg
open Dadu_kinematics

(** The accelerator's functional datapaths, implemented exactly as the
    hardware computes them.

    {b Serial pass} (paper §5.3, Figure 3): the four loops of the original
    process flow are fused into one pipeline over the joints.  For joint
    [i] the pass computes [ⁱ⁻¹Tᵢ], extends the running product [¹Tᵢ],
    forms the Jacobian column [Jᵢ] from it, and folds [Jᵢ·(Jᵢ·e)] into the
    running [JJᵀe] accumulator (Eq. 11) — so neither the frame list nor
    the 3×N Jacobian is ever materialized, which is the point of the
    optimization.  The end-effector transform is {e not} recomputed: the
    hardware reuses [¹T_N] from the winning speculation of the previous
    iteration ("the ¹T_N.P is from the speculative search at the last
    iteration", §5.3).

    {b Candidate pass} (the FKU): the plain left-to-right chain product.

    Both paths perform the same float operations in the same order as the
    software solver, so the simulator built on them ({!Sim}) is
    bit-identical to {!Dadu_core.Quick_ik} — the tests assert it. *)

type serial_out = {
  e : Vec3.t;  (** position error [X_t − ¹T_N.P] *)
  err : float;  (** [‖e‖] *)
  dtheta_base : Vec.t;  (** [Jᵀe], accumulated column by column *)
  alpha_base : float;  (** Eq. 8, from the accumulated [JJᵀe] *)
}

type out_scalars = { mutable err : float; mutable alpha_base : float }
(** All-float (flat) output channel, so no scalar boxes on the way out. *)

type scratch = {
  mutable acc : Mat4.t;  (** running product ¹Tᵢ (ping-pong) *)
  mutable tmp : Mat4.t;  (** ping-pong partner *)
  local : Mat4.t;  (** per-joint DH transform *)
  dtheta_base : Vec.t;  (** [Jᵀe], accumulated column by column *)
  e : Vec.t;  (** length-3 position error *)
  jjte : Vec.t;  (** length-3 [JJᵀe] accumulator *)
  col : Vec.t;  (** length-3 current Jacobian column *)
  out : out_scalars;
}

val make_scratch : dof:int -> scratch

val serial_pass_into :
  scratch ->
  Chain.t ->
  theta:Vec.t ->
  end_transform:Mat4.t ->
  target:Vec3.t ->
  unit
(** Allocation-free serial pass: results land in the scratch's
    [dtheta_base], [e], and [out] fields.  [end_transform] must be the FK
    pose of [theta] (the previous winner's [¹T_N]); the pass reads only
    its position column, and does so before touching any buffer, so it may
    alias an FK scratch that is rewritten later in the iteration. *)

val serial_pass :
  Chain.t -> theta:Vec.t -> end_transform:Mat4.t -> target:Vec3.t -> serial_out
(** Convenience wrapper over {!serial_pass_into} with a fresh scratch. *)

val candidate_pass : Chain.t -> Vec.t -> Mat4.t
(** Full FK transform of a speculative candidate (base, links, tool) —
    what one SSU's FKU produces and hands back for the next serial pass. *)

val candidate_pass_into : Fk.scratch -> Chain.t -> Vec.t -> Mat4.t
(** Same, reusing an FK scratch; the returned matrix is the scratch's
    accumulator (valid until its next run). *)
