(** Activity-based power/energy model for IKAcc.

    Energy = leakage over the whole run plus per-unit dynamic energy
    proportional to busy cycles.  Constants in {!Config.default} are
    calibrated so a 100-DOF / 64-speculation run averages the paper's
    158.6 mW @ 1 GHz (Table 3). *)

type breakdown = {
  leakage_j : float;
  spu_j : float;
  ssu_j : float;
  total_j : float;
  avg_power_w : float;  (** [total_j / elapsed] *)
}

val of_activity :
  Config.t -> total_cycles:int -> spu_busy_cycles:int -> ssu_busy_cycles:int -> breakdown
(** [ssu_busy_cycles] is summed over all SSUs. *)

val pp : Format.formatter -> breakdown -> unit
