open Dadu_linalg
open Dadu_kinematics

(** Fixed-point datapath study for the FKU.

    The paper synthesizes IKAcc with HLS but does not discuss datapath
    width — the first question an implementer asks, since the FKU chains
    up to 100 dependent 4×4 products and quantization error compounds
    multiplicatively.  This module evaluates FK in simulated Q(m.f)
    fixed-point arithmetic (quantize after every arithmetic result,
    saturate on overflow) and measures the end-effector error against the
    float reference, driving ablation A3. *)

type format = {
  integer_bits : int;  (** magnitude bits (excluding sign) *)
  frac_bits : int;  (** fractional bits *)
}

val q8_8 : format
val q8_16 : format
val q8_24 : format

val word_width : format -> int
(** [1 + integer_bits + frac_bits] (sign included). *)

val quantize : format -> float -> float
(** Round-to-nearest onto the grid [2^-frac_bits], saturating at the
    format's range. *)

val resolution : format -> float
(** [2^-frac_bits]. *)

val max_value : format -> float

val fk_position : format -> Chain.t -> Vec.t -> Vec3.t
(** Forward kinematics with every intermediate (trig results, each product
    term, each accumulated matrix entry) quantized — what a fixed-point
    FKU computes. *)

type report = {
  format : format;
  samples : int;
  max_error : float;  (** worst end-effector deviation vs float FK, meters *)
  mean_error : float;
}

val evaluate : ?samples:int -> Dadu_util.Rng.t -> format -> Chain.t -> report
(** Monte-Carlo over random configurations (default 100 samples). *)

val sufficient : report -> accuracy:float -> bool
(** True when the worst-case FK error is below a safety fraction (1/4) of
    the IK accuracy target, i.e. quantization cannot flip candidate
    selection at the convergence threshold. *)
