let candidate_cycles (cfg : Config.t) ~dof =
  if dof <= 0 then invalid_arg "Ssu.candidate_cycles: dof must be positive";
  let generate = 1 in
  let update = (dof + cfg.Config.update_lanes - 1) / cfg.Config.update_lanes in
  generate + update + Fku.chain_cycles cfg ~dof + cfg.Config.error_cycles
