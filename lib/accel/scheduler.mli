(** Parallel Search Scheduler (paper §5.1).

    Maps [Max] software speculations onto [MaxSSUs] hardware units:
    [⌈Max/MaxSSUs⌉] schedules, each broadcasting [θ, Δθ_base, α_base] and
    running the assigned SSUs in lockstep; the selector folds each
    schedule's results as they complete. *)

type plan = {
  schedules : int;  (** number of scheduling rounds per iteration *)
  full_rounds : int;  (** rounds with every SSU busy *)
  last_round_ssus : int;  (** SSUs busy in the final round ([num_ssus] if it is full) *)
}

val plan : Config.t -> speculations:int -> plan

val assignments : Config.t -> speculations:int -> int list list
(** Candidate indices grouped by round, in dispatch order:
    round [r] handles candidates [r·MaxSSUs .. min((r+1)·MaxSSUs, Max)-1].
    Concatenated, this is [0 .. Max-1] exactly once. *)

val iteration_cycles : Config.t -> dof:int -> speculations:int -> int
(** Cycles for one full Quick-IK iteration on the accelerator: the SPU
    serial pass, then per round broadcast + SSU search + selection. *)

val ssu_busy_cycles : Config.t -> dof:int -> speculations:int -> int
(** Sum over SSUs of their busy cycles in one iteration (for the
    activity-based energy model). *)
