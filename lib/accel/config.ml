type t = {
  num_ssus : int;
  frequency_hz : float;
  dh_cycles : int;
  matmul_cycles : int;
  jacobian_stage_cycles : int;
  jjte_stage_cycles : int;
  alpha_cycles : int;
  update_lanes : int;
  error_cycles : int;
  broadcast_cycles : int;
  select_cycles : int;
  leakage_w : float;
  spu_active_w : float;
  ssu_active_w : float;
  area_mm2 : float;
}

let default =
  {
    num_ssus = 32;
    frequency_hz = 1e9;
    dh_cycles = 24;
    matmul_cycles = 64;
    jacobian_stage_cycles = 6;
    jjte_stage_cycles = 4;
    alpha_cycles = 20;
    update_lanes = 4;
    error_cycles = 8;
    broadcast_cycles = 4;
    select_cycles = 6;
    leakage_w = 0.020;
    spu_active_w = 0.030;
    ssu_active_w = 0.006;
    area_mm2 = 2.27;
  }

let with_ssus num_ssus t = { t with num_ssus }

let validate t =
  let positive name x = if x <= 0 then invalid_arg ("Accel config: " ^ name ^ " must be positive") in
  positive "num_ssus" t.num_ssus;
  positive "dh_cycles" t.dh_cycles;
  positive "matmul_cycles" t.matmul_cycles;
  positive "jacobian_stage_cycles" t.jacobian_stage_cycles;
  positive "jjte_stage_cycles" t.jjte_stage_cycles;
  positive "alpha_cycles" t.alpha_cycles;
  positive "update_lanes" t.update_lanes;
  positive "error_cycles" t.error_cycles;
  if t.frequency_hz <= 0. then invalid_arg "Accel config: frequency must be positive"

let pp ppf t =
  Format.fprintf ppf
    "IKAcc{%d SSUs at %.2g GHz; matmul %dcy; dh %dcy; area %.2f mm2}" t.num_ssus
    (t.frequency_hz /. 1e9) t.matmul_cycles t.dh_cycles t.area_mm2
