open Dadu_linalg
open Dadu_kinematics
module Ik = Dadu_core.Ik

type step = {
  iteration : int;
  err_before : float;
  winner : int;
  winner_err : float;
  cycles : int;
}

type report = {
  theta : Vec.t;
  err : float;
  iterations : int;
  converged : bool;
  total_cycles : int;
  spu_busy_cycles : int;
  ssu_busy_cycles : int;
  steps : step list;
}

let run ?(config = Config.default) ?(ik_config = Ik.default_config)
    ?(speculations = 64) (problem : Ik.problem) =
  Config.validate config;
  if speculations <= 0 then invalid_arg "Sim.run: speculations must be positive";
  let { Ik.chain; target; theta0 } = problem in
  let dof = Chain.dof chain in
  let cycles_per_iteration = Scheduler.iteration_cycles config ~dof ~speculations in
  let spu_per_iteration = Spu.iteration_cycles config ~dof in
  let ssu_per_iteration = Scheduler.ssu_busy_cycles config ~dof ~speculations in
  let rounds = Scheduler.assignments config ~speculations in
  (* Scratch memory reused across iterations: the SPU's fused-pass
     scratch, one compiled-constants FK scratch shared (read-only) by
     every SSU's position sweep, SoA candidate planes + squared errors
     (the SSU register files), and a pose scratch for the winner's ¹T_N
     register. *)
  let serial_scratch = Datapath.make_scratch ~dof in
  let spec_fk = Fk.make_scratch () in
  Fk.precompile spec_fk chain;
  let pose_fk = Fk.make_scratch () in
  let pos = Array.make (3 * speculations) 0. in
  let err2 = Array.make speculations 0. in
  let coeffs = Array.make speculations 0. in
  let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
  (* register state carried between iterations: θ and the winning ¹T_N *)
  let rec go theta end_transform iteration steps =
    let finish ~err ~converged =
      {
        theta;
        err;
        iterations = iteration;
        converged;
        total_cycles = iteration * cycles_per_iteration;
        spu_busy_cycles = iteration * spu_per_iteration;
        ssu_busy_cycles = iteration * ssu_per_iteration;
        steps = List.rev steps;
      }
    in
    Datapath.serial_pass_into serial_scratch chain ~theta ~end_transform
      ~target;
    let serial_err = serial_scratch.Datapath.out.Datapath.err in
    let alpha_base = serial_scratch.Datapath.out.Datapath.alpha_base in
    let dtheta_base = serial_scratch.Datapath.dtheta_base in
    if serial_err < ik_config.Ik.accuracy then
      finish ~err:serial_err ~converged:true
    else if iteration >= ik_config.Ik.max_iterations then
      finish ~err:serial_err ~converged:false
    else if alpha_base = 0. then
      (* degenerate pose: the hardware would spin without progress; stop
         as the software's cap eventually would *)
      finish ~err:serial_err ~converged:false
    else begin
      (* speculative rounds: each SSU slot evaluates its candidate's
         position-only FK and squared target error with the same
         link-major kernel — and therefore the same bits — as the
         software solver's sweep; the selector folds winners across
         rounds on the squared errors (sqrt-free, order-preserving) *)
      let round_errors =
        List.map
          (fun round ->
            let errors =
              List.map
                (fun k ->
                  coeffs.(k) <-
                    float_of_int (k + 1)
                    /. float_of_int speculations
                    *. alpha_base;
                  Fk.speculate_range_into ~scratch:spec_fk ~pos ~err2 ~tx
                    ~ty ~tz chain ~theta ~dtheta:dtheta_base ~coeffs
                    ~stride:speculations ~lo:k ~hi:(k + 1);
                  err2.(k))
                round
            in
            Array.of_list errors)
          rounds
      in
      let winner = Selector.fold_rounds round_errors in
      let winner_err2 = (List.nth round_errors (winner / config.Config.num_ssus)).(winner mod config.Config.num_ssus) in
      let alpha =
        float_of_int (winner + 1)
        /. float_of_int speculations
        *. alpha_base
      in
      let theta' = Vec.axpy alpha dtheta_base theta in
      let step =
        {
          iteration;
          err_before = serial_err;
          winner;
          winner_err = sqrt winner_err2;
          cycles = cycles_per_iteration;
        }
      in
      (* the winner's full ¹T_N register is refilled by the pose FK — the
         serial pass consumes its position column, which must match the
         software driver's forward-order frames bit for bit *)
      go theta' (Datapath.candidate_pass_into pose_fk chain theta') (iteration + 1) (step :: steps)
    end
  in
  go (Vec.copy theta0) (Fk.pose chain theta0) 0 []
