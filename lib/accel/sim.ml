open Dadu_linalg
open Dadu_kinematics
module Ik = Dadu_core.Ik
module Fault = Dadu_util.Fault

type step = {
  iteration : int;
  err_before : float;
  winner : int;
  winner_err : float;
  cycles : int;
}

type report = {
  theta : Vec.t;
  err : float;
  iterations : int;
  converged : bool;
  total_cycles : int;
  spu_busy_cycles : int;
  ssu_busy_cycles : int;
  faults_injected : int;
  recoveries : int;
  recovery_cycles : int;
  steps : step list;
}

(* flip one mantissa/exponent/sign bit of an IEEE-754 double, the way a
   particle strike corrupts an SSU error register *)
let flip_bit bit e =
  let b = int_of_float bit land 63 in
  Int64.float_of_bits (Int64.logxor (Int64.bits_of_float e) (Int64.shift_left 1L b))

let run ?(config = Config.default) ?(ik_config = Ik.default_config)
    ?(speculations = 64) ?(fault = Fault.disabled) ?(reverify = false)
    ?(max_recovery = 2) (problem : Ik.problem) =
  Config.validate config;
  if speculations <= 0 then invalid_arg "Sim.run: speculations must be positive";
  if max_recovery < 0 then invalid_arg "Sim.run: max_recovery must be non-negative";
  let { Ik.chain; target; theta0 } = problem in
  let dof = Chain.dof chain in
  let cycles_per_iteration = Scheduler.iteration_cycles config ~dof ~speculations in
  let spu_per_iteration = Spu.iteration_cycles config ~dof in
  let ssu_per_iteration = Scheduler.ssu_busy_cycles config ~dof ~speculations in
  (* recovery cost model: a recheck is one SPU-driven candidate FK; a
     re-execution repeats the speculative part of the iteration (all
     broadcasts, searches and selects, but not the serial pass, whose
     registers still hold); the terminal honest sweep walks every
     candidate serially *)
  let recheck_cycles = Ssu.candidate_cycles config ~dof in
  let reexec_cycles = cycles_per_iteration - spu_per_iteration in
  let sweep_cycles = speculations * recheck_cycles in
  let rounds = Scheduler.assignments config ~speculations in
  (* Scratch memory reused across iterations: the SPU's fused-pass
     scratch, one compiled-constants FK scratch shared (read-only) by
     every SSU's position sweep, SoA candidate planes + squared errors
     (the SSU register files), and a pose scratch for the winner's ¹T_N
     register. *)
  let serial_scratch = Datapath.make_scratch ~dof in
  let spec_fk = Fk.make_scratch () in
  Fk.precompile spec_fk chain;
  let pose_fk = Fk.make_scratch () in
  let pos = Array.make (3 * speculations) 0. in
  let err2 = Array.make speculations 0. in
  let coeffs = Array.make speculations 0. in
  let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
  let faults = ref 0 in
  let recoveries = ref 0 in
  (* register state carried between iterations: θ and the winning ¹T_N *)
  let rec go theta end_transform iteration recovery_total steps =
    let finish ~err ~converged =
      {
        theta;
        err;
        iterations = iteration;
        converged;
        total_cycles = (iteration * cycles_per_iteration) + recovery_total;
        spu_busy_cycles = iteration * spu_per_iteration;
        ssu_busy_cycles = iteration * ssu_per_iteration;
        faults_injected = !faults;
        recoveries = !recoveries;
        recovery_cycles = recovery_total;
        steps = List.rev steps;
      }
    in
    Datapath.serial_pass_into serial_scratch chain ~theta ~end_transform
      ~target;
    let serial_err = serial_scratch.Datapath.out.Datapath.err in
    let alpha_base = serial_scratch.Datapath.out.Datapath.alpha_base in
    let dtheta_base = serial_scratch.Datapath.dtheta_base in
    if serial_err < ik_config.Ik.accuracy then
      finish ~err:serial_err ~converged:true
    else if iteration >= ik_config.Ik.max_iterations then
      finish ~err:serial_err ~converged:false
    else if alpha_base = 0. then
      (* degenerate pose: the hardware would spin without progress; stop
         as the software's cap eventually would *)
      finish ~err:serial_err ~converged:false
    else begin
      (* speculative rounds: each SSU slot evaluates its candidate's
         position-only FK and squared target error with the same
         link-major kernel — and therefore the same bits — as the
         software solver's sweep; the selector folds winners across
         rounds on the squared errors (sqrt-free, order-preserving).
         [honest] models the fault-free SPU serial sweep used as the last
         recovery resort: no injection sites are consulted. *)
      let eval_candidate k =
        coeffs.(k) <-
          float_of_int (k + 1) /. float_of_int speculations *. alpha_base;
        Fk.speculate_range_into ~scratch:spec_fk ~pos ~err2 ~tx ~ty ~tz chain
          ~theta ~dtheta:dtheta_base ~coeffs ~stride:speculations ~lo:k
          ~hi:(k + 1);
        err2.(k)
      in
      let eval_rounds ~honest () =
        List.map
          (fun round ->
            let dropped =
              (not honest)
              && Fault.fires fault ~site:"sched-drop" ~iteration () <> None
            in
            if dropped then begin
              (* the broadcast never reached these SSUs: their error
                 registers hold the reset pattern, which loses every
                 compare *)
              incr faults;
              Array.make (List.length round) infinity
            end
            else
              let errors =
                List.map
                  (fun k ->
                    let e = eval_candidate k in
                    if honest then e
                    else begin
                      (* both sites are consulted on every candidate so
                         their streams advance independently of which
                         (if either) fires *)
                      let stuck = Fault.fires fault ~site:"ssu-stuck" ~iteration () in
                      let flipped = Fault.fires fault ~site:"ssu-flip" ~iteration () in
                      match (stuck, flipped) with
                      | Some v, _ ->
                        incr faults;
                        v
                      | None, Some bit ->
                        incr faults;
                        flip_bit bit e
                      | None, None -> e
                    end)
                  round
              in
              Array.of_list errors)
          rounds
      in
      let claimed_of round_errors winner =
        (List.nth round_errors (winner / config.Config.num_ssus)).(winner
                                                                   mod config
                                                                         .Config
                                                                         .num_ssus)
      in
      (* re-verification (paper-style): the SPU recomputes the claimed
         winner's error; a bitwise mismatch re-executes the speculative
         schedules up to [max_recovery] times, after which an honest
         serial sweep of all candidates guarantees a trusted winner *)
      let rec select tries round_errors rcycles =
        let winner = Selector.fold_rounds round_errors in
        let claimed = claimed_of round_errors winner in
        if not reverify then (winner, claimed, rcycles)
        else
          let truth = eval_candidate winner in
          match Selector.verify ~claimed ~recheck:truth with
          | Selector.Confirmed -> (winner, truth, rcycles + recheck_cycles)
          | Selector.Mismatch ->
            incr recoveries;
            if tries < max_recovery then
              select (tries + 1)
                (eval_rounds ~honest:false ())
                (rcycles + recheck_cycles + reexec_cycles)
            else begin
              let honest_rounds = eval_rounds ~honest:true () in
              let w = Selector.fold_rounds honest_rounds in
              (w, claimed_of honest_rounds w, rcycles + recheck_cycles + sweep_cycles)
            end
      in
      let winner, winner_err2, rcycles =
        select 0 (eval_rounds ~honest:false ()) 0
      in
      let alpha =
        float_of_int (winner + 1) /. float_of_int speculations *. alpha_base
      in
      let theta' = Vec.axpy alpha dtheta_base theta in
      let step =
        {
          iteration;
          err_before = serial_err;
          winner;
          winner_err = sqrt winner_err2;
          cycles = cycles_per_iteration + rcycles;
        }
      in
      (* the winner's full ¹T_N register is refilled by the pose FK — the
         serial pass consumes its position column, which must match the
         software driver's forward-order frames bit for bit *)
      go theta'
        (Datapath.candidate_pass_into pose_fk chain theta')
        (iteration + 1)
        (recovery_total + rcycles) (step :: steps)
    end
  in
  go (Vec.copy theta0) (Fk.pose chain theta0) 0 0 []
