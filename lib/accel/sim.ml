open Dadu_linalg
open Dadu_kinematics
module Ik = Dadu_core.Ik

type step = {
  iteration : int;
  err_before : float;
  winner : int;
  winner_err : float;
  cycles : int;
}

type report = {
  theta : Vec.t;
  err : float;
  iterations : int;
  converged : bool;
  total_cycles : int;
  spu_busy_cycles : int;
  ssu_busy_cycles : int;
  steps : step list;
}

let run ?(config = Config.default) ?(ik_config = Ik.default_config)
    ?(speculations = 64) (problem : Ik.problem) =
  Config.validate config;
  if speculations <= 0 then invalid_arg "Sim.run: speculations must be positive";
  let { Ik.chain; target; theta0 } = problem in
  let dof = Chain.dof chain in
  let cycles_per_iteration = Scheduler.iteration_cycles config ~dof ~speculations in
  let spu_per_iteration = Spu.iteration_cycles config ~dof in
  let ssu_per_iteration = Scheduler.ssu_busy_cycles config ~dof ~speculations in
  let rounds = Scheduler.assignments config ~speculations in
  (* Scratch memory reused across iterations: the SPU's fused-pass scratch
     and one FK scratch per speculation slot (per-SSU state, like the
     hardware's register files). *)
  let serial_scratch = Datapath.make_scratch ~dof in
  let cand_fk = Array.init speculations (fun _ -> Fk.make_scratch ()) in
  (* register state carried between iterations: θ and the winning ¹T_N *)
  let rec go theta end_transform iteration steps =
    let finish ~err ~converged =
      {
        theta;
        err;
        iterations = iteration;
        converged;
        total_cycles = iteration * cycles_per_iteration;
        spu_busy_cycles = iteration * spu_per_iteration;
        ssu_busy_cycles = iteration * ssu_per_iteration;
        steps = List.rev steps;
      }
    in
    Datapath.serial_pass_into serial_scratch chain ~theta ~end_transform
      ~target;
    let serial_err = serial_scratch.Datapath.out.Datapath.err in
    let alpha_base = serial_scratch.Datapath.out.Datapath.alpha_base in
    let dtheta_base = serial_scratch.Datapath.dtheta_base in
    if serial_err < ik_config.Ik.accuracy then
      finish ~err:serial_err ~converged:true
    else if iteration >= ik_config.Ik.max_iterations then
      finish ~err:serial_err ~converged:false
    else if alpha_base = 0. then
      (* degenerate pose: the hardware would spin without progress; stop
         as the software's cap eventually would *)
      finish ~err:serial_err ~converged:false
    else begin
      (* speculative rounds: each SSU computes θ_k, its FK transform, and
         the candidate error; the selector folds winners across rounds *)
      let transforms = Array.make speculations (Mat4.identity ()) in
      let round_errors =
        List.map
          (fun round ->
            let errors =
              List.map
                (fun k ->
                  let alpha =
                    float_of_int (k + 1)
                    /. float_of_int speculations
                    *. alpha_base
                  in
                  let theta_k = Vec.axpy alpha dtheta_base theta in
                  let t_k = Datapath.candidate_pass_into cand_fk.(k) chain theta_k in
                  transforms.(k) <- t_k;
                  Vec3.dist target (Mat4.position t_k))
                round
            in
            Array.of_list errors)
          rounds
      in
      let winner = Selector.fold_rounds round_errors in
      let winner_err = (List.nth round_errors (winner / config.Config.num_ssus)).(winner mod config.Config.num_ssus) in
      let alpha =
        float_of_int (winner + 1)
        /. float_of_int speculations
        *. alpha_base
      in
      let theta' = Vec.axpy alpha dtheta_base theta in
      let step =
        {
          iteration;
          err_before = serial_err;
          winner;
          winner_err;
          cycles = cycles_per_iteration;
        }
      in
      go theta' transforms.(winner) (iteration + 1) (step :: steps)
    end
  in
  go (Vec.copy theta0) (Fk.pose chain theta0) 0 []
