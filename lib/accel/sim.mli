open Dadu_linalg

(** Execution-based IKAcc simulator.

    Unlike {!Ikacc} — which runs the software solver and prices the
    measured iteration count through the analytic cycle model — this
    simulator *executes* the accelerator's own dataflow step by step:
    each iteration runs the fused SPU pass ({!Datapath.serial_pass}),
    dispatches candidates to SSUs round by round through the
    {!Scheduler}, folds winners through the {!Selector}, and carries the
    winning candidate's [¹T_N] into the next serial pass exactly as the
    hardware registers do.  Cycle accounting accrues from the same unit
    models, so the tests can assert both functional bit-equality with
    {!Dadu_core.Quick_ik} and cycle-count equality with {!Ikacc}.

    {2 Fault ports}

    An optional {!Dadu_util.Fault} registry injects hardware faults at
    three sites, all scoped to the speculative datapath (the SPU serial
    pass is the trusted unit — its honest error drives the convergence
    check, so injected faults corrupt {e step selection}, never the
    termination decision):

    - ["ssu-flip"] — XOR one bit (the rule payload, 0–63) into an SSU's
      squared-error register after the candidate FK completes;
    - ["ssu-stuck"] — an SSU's error register is stuck at the payload
      value;
    - ["sched-drop"] — a whole schedule's broadcast is lost: every SSU in
      the round reports the reset pattern (+∞), losing all compares.

    With [reverify] on, the selector's claimed winner is rechecked by the
    SPU (one extra candidate FK); on a bitwise mismatch the speculative
    schedules re-execute up to [max_recovery] times, after which an
    honest serial sweep of every candidate produces a trusted winner.
    All recovery work is accounted in [recovery_cycles] (included in
    [total_cycles]).  With the default [fault]/[reverify] the report is
    byte-identical to the unfaulted simulator. *)

type step = {
  iteration : int;
  err_before : float;  (** error at the top of the iteration *)
  winner : int;  (** selected candidate index (the speculative [k]) *)
  winner_err : float;
  cycles : int;  (** cycles consumed by this iteration *)
}

type report = {
  theta : Vec.t;
  err : float;
  iterations : int;
  converged : bool;
  total_cycles : int;  (** iteration cycles plus [recovery_cycles] *)
  spu_busy_cycles : int;
  ssu_busy_cycles : int;
  faults_injected : int;  (** corruptions actually applied *)
  recoveries : int;  (** re-verification mismatches detected *)
  recovery_cycles : int;  (** rechecks + re-executions + honest sweeps *)
  steps : step list;  (** per-iteration log, in execution order *)
}

val run :
  ?config:Config.t ->
  ?ik_config:Dadu_core.Ik.config ->
  ?speculations:int ->
  ?fault:Dadu_util.Fault.t ->
  ?reverify:bool ->
  ?max_recovery:int ->
  Dadu_core.Ik.problem ->
  report
(** Defaults: paper configuration, paper termination contract, 64
    speculations, no faults, no re-verification, 2 re-executions before
    the honest sweep. *)
