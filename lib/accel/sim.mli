open Dadu_linalg

(** Execution-based IKAcc simulator.

    Unlike {!Ikacc} — which runs the software solver and prices the
    measured iteration count through the analytic cycle model — this
    simulator *executes* the accelerator's own dataflow step by step:
    each iteration runs the fused SPU pass ({!Datapath.serial_pass}),
    dispatches candidates to SSUs round by round through the
    {!Scheduler}, folds winners through the {!Selector}, and carries the
    winning candidate's [¹T_N] into the next serial pass exactly as the
    hardware registers do.  Cycle accounting accrues from the same unit
    models, so the tests can assert both functional bit-equality with
    {!Dadu_core.Quick_ik} and cycle-count equality with {!Ikacc}. *)

type step = {
  iteration : int;
  err_before : float;  (** error at the top of the iteration *)
  winner : int;  (** selected candidate index (the speculative [k]) *)
  winner_err : float;
  cycles : int;  (** cycles consumed by this iteration *)
}

type report = {
  theta : Vec.t;
  err : float;
  iterations : int;
  converged : bool;
  total_cycles : int;
  spu_busy_cycles : int;
  ssu_busy_cycles : int;
  steps : step list;  (** per-iteration log, in execution order *)
}

val run :
  ?config:Config.t ->
  ?ik_config:Dadu_core.Ik.config ->
  ?speculations:int ->
  Dadu_core.Ik.problem ->
  report
(** Defaults: paper configuration, paper termination contract, 64
    speculations. *)
