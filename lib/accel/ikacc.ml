open Dadu_core

type report = {
  result : Ik.result;
  config : Config.t;
  speculations : int;
  schedules_per_iteration : int;
  cycles_per_iteration : int;
  total_cycles : int;
  time_s : float;
  energy : Energy.breakdown;
  ssu_utilization : float;
}

let accounting config ~dof ~speculations ~iterations =
  let cycles_per_iteration = Scheduler.iteration_cycles config ~dof ~speculations in
  let total_cycles = iterations * cycles_per_iteration in
  let spu_busy = iterations * Spu.iteration_cycles config ~dof in
  let ssu_busy = iterations * Scheduler.ssu_busy_cycles config ~dof ~speculations in
  let energy =
    Energy.of_activity config ~total_cycles ~spu_busy_cycles:spu_busy
      ~ssu_busy_cycles:ssu_busy
  in
  let capacity = config.Config.num_ssus * total_cycles in
  let utilization = if capacity = 0 then 0. else float_of_int ssu_busy /. float_of_int capacity in
  (cycles_per_iteration, total_cycles, energy, utilization)

let time_for_iterations ?(config = Config.default) ~dof ~speculations ~iterations () =
  let cycles = iterations * Scheduler.iteration_cycles config ~dof ~speculations in
  float_of_int cycles /. config.Config.frequency_hz

let solve ?(config = Config.default) ?ik_config ?(speculations = 64) problem =
  Config.validate config;
  let result =
    Quick_ik.solve ~speculations ~strategy:Quick_ik.Uniform ~mode:Quick_ik.Sequential
      ?config:ik_config problem
  in
  let dof = Dadu_kinematics.Chain.dof problem.Ik.chain in
  let cycles_per_iteration, total_cycles, energy, ssu_utilization =
    accounting config ~dof ~speculations ~iterations:result.Ik.iterations
  in
  {
    result;
    config;
    speculations;
    schedules_per_iteration = (Scheduler.plan config ~speculations).Scheduler.schedules;
    cycles_per_iteration;
    total_cycles;
    time_s = float_of_int total_cycles /. config.Config.frequency_hz;
    energy;
    ssu_utilization;
  }

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>IKAcc: %a@,%d speculations, %d schedules/iter, %d cycles/iter@,%.4g ms, %a, SSU util %.0f%%@]"
    Ik.pp_result r.result r.speculations r.schedules_per_iteration
    r.cycles_per_iteration (r.time_s *. 1e3) Energy.pp r.energy
    (100. *. r.ssu_utilization)
