(** Parameter Selector (Figure 2, bottom): folds candidate errors to the
    winning [θ_o], keeping the best across schedules. *)

val best : float array -> int
(** Index of the minimum error; ties go to the smaller index (the smaller
    speculative [k]), matching Algorithm 1 line 16 and the software
    {!Dadu_core.Quick_ik} selection exactly.  Raises [Invalid_argument] on
    an empty array. *)

val fold_rounds : float array list -> int
(** Selection across scheduling rounds: equivalent to {!best} of the
    concatenation — the selector stores only the running winner between
    rounds (constant state, §5.1 "the overhead is negligible"). *)

type verdict = Confirmed | Mismatch

val verify : claimed:float -> recheck:float -> verdict
(** Re-verification compare: [Confirmed] iff the claimed winner error and
    the trusted recheck are bit-identical ([Int64.bits_of_float], so NaN
    confirms against NaN and a corrupted exponent never slips through as
    an approximate match).  Honest SSUs rerun the same FK kernel on the
    same inputs, so any discrepancy is a fault, not roundoff. *)
