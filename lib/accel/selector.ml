let best errors =
  if Array.length errors = 0 then invalid_arg "Selector.best: no candidates";
  let best = ref 0 in
  for k = 1 to Array.length errors - 1 do
    if errors.(k) < errors.(!best) then best := k
  done;
  !best

type verdict = Confirmed | Mismatch

let verify ~claimed ~recheck =
  (* bitwise, not [=]: the recheck runs the same kernel on the same
     inputs, so an honest claim reproduces exactly — and NaN must compare
     equal to itself, infinities to themselves *)
  if Int64.bits_of_float claimed = Int64.bits_of_float recheck then Confirmed
  else Mismatch

let fold_rounds rounds =
  let winner = ref None in
  let offset = ref 0 in
  List.iter
    (fun errors ->
      Array.iteri
        (fun k err ->
          match !winner with
          | Some (_, best_err) when err >= best_err -> ()
          | Some _ | None -> winner := Some (!offset + k, err))
        errors;
      offset := !offset + Array.length errors)
    rounds;
  match !winner with
  | Some (idx, _) -> idx
  | None -> invalid_arg "Selector.fold_rounds: no candidates"
