(** Forward Kinematics Unit cycle model (Figure 2, right).

    The FKU walks the chain [f(θ) = ∏ ⁱ⁻¹Tᵢ] with one 4×4-matmul logic
    block: while the multiplier consumes [ⁱ⁻¹Tᵢ], the transform generator
    computes [ⁱTᵢ₊₁], so successive joints overlap at the slower of the two
    latencies. *)

val chain_cycles : Config.t -> dof:int -> int
(** Cycles for one full FK evaluation of a [dof]-joint chain. *)

val matmul_count : dof:int -> int
(** 4×4 products issued per FK evaluation (activity accounting). *)
