(** IKAcc hardware configuration.

    Latency constants are in cycles at [frequency_hz]; they model the units
    of Figure 2 as synthesized by HLS ("a few multipliers and adders …
    result in tens of cycles", §5.2).  Power constants are activity-based
    and calibrated so that a 100-DOF Quick-IK solve averages the paper's
    reported 158.6 mW @ 1 GHz (Table 3); see DESIGN.md §6. *)

type t = {
  num_ssus : int;  (** Speculative Search Units; paper: 32 *)
  frequency_hz : float;  (** paper: 1 GHz *)
  dh_cycles : int;
      (** compute one [ⁱ⁻¹Tᵢ(θ)]: CORDIC sin/cos plus matrix assembly *)
  matmul_cycles : int;  (** one 4×4 matrix product in the FKU logic block *)
  jacobian_stage_cycles : int;  (** SPU [JᵢC] stage: one cross product *)
  jjte_stage_cycles : int;  (** SPU [JJᵀEC] stage: rank-1 accumulate *)
  alpha_cycles : int;  (** ε-dots and division producing [α_base] *)
  update_lanes : int;  (** parallel MACs computing [θ_k = θ + α_k·Δθ_base] *)
  error_cycles : int;  (** [‖X_t − X_k‖] *)
  broadcast_cycles : int;  (** scheduler broadcast, per schedule *)
  select_cycles : int;  (** selector compare tree, per schedule *)
  leakage_w : float;  (** static power, whole chip *)
  spu_active_w : float;  (** SPU dynamic power while busy *)
  ssu_active_w : float;  (** per-SSU dynamic power while busy *)
  area_mm2 : float;  (** reported synthesis area (Table 3): 2.27 mm² *)
}

val default : t
(** The paper's configuration: 32 SSUs @ 1 GHz. *)

val with_ssus : int -> t -> t
(** Copy with a different SSU count (ablation A2). *)

val validate : t -> unit
(** Raises [Invalid_argument] on non-positive counts/frequencies. *)

val pp : Format.formatter -> t -> unit
