(** IKAcc top level: functionally exact Quick-IK plus cycle and energy
    accounting.

    The functional solve is {!Dadu_core.Quick_ik} with the paper's uniform
    speculation strategy — the accelerator computes the same arithmetic, so
    the returned joint angles, errors, and iteration counts are identical
    to the software solver.  Timing and energy come from the unit cycle
    models ({!Spu}, {!Ssu}, {!Scheduler}) driven by the measured iteration
    count. *)

type report = {
  result : Dadu_core.Ik.result;  (** identical to the software Quick-IK result *)
  config : Config.t;
  speculations : int;
  schedules_per_iteration : int;
  cycles_per_iteration : int;
  total_cycles : int;
  time_s : float;
  energy : Energy.breakdown;
  ssu_utilization : float;
      (** busy SSU-cycles / (num_ssus × total cycles); 1.0 = all SSUs always
          busy *)
}

val solve :
  ?config:Config.t ->
  ?ik_config:Dadu_core.Ik.config ->
  ?speculations:int ->
  Dadu_core.Ik.problem ->
  report
(** [speculations] defaults to 64 (the paper's software setting; with the
    default 32 SSUs it takes 2 schedules per iteration). *)

val time_for_iterations :
  ?config:Config.t -> dof:int -> speculations:int -> iterations:int -> unit -> float
(** Seconds the accelerator needs for a given iteration count — the
    Table 2 model without re-running the solver. *)

val pp_report : Format.formatter -> report -> unit
