type breakdown = {
  leakage_j : float;
  spu_j : float;
  ssu_j : float;
  total_j : float;
  avg_power_w : float;
}

let of_activity (cfg : Config.t) ~total_cycles ~spu_busy_cycles ~ssu_busy_cycles =
  if total_cycles < 0 || spu_busy_cycles < 0 || ssu_busy_cycles < 0 then
    invalid_arg "Energy.of_activity: negative cycle count";
  let seconds cycles = float_of_int cycles /. cfg.Config.frequency_hz in
  let elapsed = seconds total_cycles in
  let leakage_j = cfg.Config.leakage_w *. elapsed in
  let spu_j = cfg.Config.spu_active_w *. seconds spu_busy_cycles in
  let ssu_j = cfg.Config.ssu_active_w *. seconds ssu_busy_cycles in
  let total_j = leakage_j +. spu_j +. ssu_j in
  let avg_power_w = if elapsed > 0. then total_j /. elapsed else 0. in
  { leakage_j; spu_j; ssu_j; total_j; avg_power_w }

let pp ppf b =
  Format.fprintf ppf "%.3g J total (leak %.3g, SPU %.3g, SSU %.3g); avg %.1f mW"
    b.total_j b.leakage_j b.spu_j b.ssu_j (b.avg_power_w *. 1e3)
