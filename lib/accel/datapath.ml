open Dadu_linalg
open Dadu_kinematics

type serial_out = {
  e : Vec3.t;
  err : float;
  dtheta_base : Vec.t;
  alpha_base : float;
}

let serial_pass chain ~theta ~end_transform ~target =
  Chain.check_config chain theta;
  let n = Chain.dof chain in
  let p_end = Mat4.position end_transform in
  let e = Vec3.sub target p_end in
  let err = Vec3.norm e in
  let dtheta_base = Vec.create n in
  let jjte = ref Vec3.zero in
  (* Fused pipeline: the accumulator [acc] is ¹Tᵢ₋₁ when joint i is
     processed (its z-axis and origin define column Jᵢ), then advances by
     ⁱ⁻¹Tᵢ in the same stage round. *)
  let acc = Mat4.copy (Chain.base chain) in
  let tmp = Mat4.identity () in
  let local = Mat4.identity () in
  for i = 0 to n - 1 do
    let { Chain.joint; dh; _ } = Chain.link chain i in
    let z = Mat4.z_axis acc in
    let column =
      match joint.Joint.kind with
      | Joint.Revolute -> Vec3.cross z (Vec3.sub p_end (Mat4.position acc))
      | Joint.Prismatic -> z
    in
    let je = Vec3.dot column e in
    dtheta_base.(i) <- je;
    jjte := Vec3.add !jjte (Vec3.scale je column);
    Dh.transform_into ~dst:local dh joint.Joint.kind theta.(i);
    Mat4.mul_into ~dst:tmp acc local;
    Array.blit tmp 0 acc 0 16
  done;
  let denom = Vec3.norm_sq !jjte in
  let alpha_base = if denom < 1e-30 then 0. else Vec3.dot e !jjte /. denom in
  { e; err; dtheta_base; alpha_base }

let candidate_pass chain theta = Fk.pose chain theta
