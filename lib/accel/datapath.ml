open Dadu_linalg
open Dadu_kinematics

type serial_out = {
  e : Vec3.t;
  err : float;
  dtheta_base : Vec.t;
  alpha_base : float;
}

(* All-float record: flat, so the pass can publish its scalars without
   boxing them across a call boundary. *)
type out_scalars = { mutable err : float; mutable alpha_base : float }

type scratch = {
  mutable acc : Mat4.t;
  mutable tmp : Mat4.t;
  local : Mat4.t;
  dtheta_base : Vec.t;
  e : Vec.t;
  jjte : Vec.t;
  col : Vec.t;
  out : out_scalars;
}

let make_scratch ~dof =
  if dof <= 0 then invalid_arg "Datapath.make_scratch: dof must be positive";
  {
    acc = Mat4.identity ();
    tmp = Mat4.identity ();
    local = Mat4.identity ();
    dtheta_base = Vec.create dof;
    e = Vec.create 3;
    jjte = Vec.create 3;
    col = Vec.create 3;
    out = { err = 0.; alpha_base = 0. };
  }

(* Fused pipeline: the accumulator [acc] is ¹Tᵢ₋₁ when joint i is
   processed (its z-axis and origin define column Jᵢ), then advances by
   ⁱ⁻¹Tᵢ in the same stage round.  Allocation-free: every float lives in
   an unboxed local or a scratch buffer, and the association order matches
   the historical Vec3 formulation bit for bit. *)
let serial_pass_into s chain ~theta ~end_transform ~target =
  Chain.check_config chain theta;
  let n = Chain.dof chain in
  if Vec.dim s.dtheta_base <> n then
    invalid_arg "Datapath.serial_pass_into: scratch dof mismatch";
  let px = end_transform.(3) and py = end_transform.(7) and pz = end_transform.(11) in
  let ex = target.Vec3.x -. px
  and ey = target.Vec3.y -. py
  and ez = target.Vec3.z -. pz in
  s.e.(0) <- ex;
  s.e.(1) <- ey;
  s.e.(2) <- ez;
  s.out.err <- sqrt (((ex *. ex) +. (ey *. ey)) +. (ez *. ez));
  s.jjte.(0) <- 0.;
  s.jjte.(1) <- 0.;
  s.jjte.(2) <- 0.;
  Mat4.blit (Chain.base chain) s.acc;
  for i = 0 to n - 1 do
    let { Chain.joint; dh; _ } = Chain.link chain i in
    let a = s.acc in
    let zx = a.(2) and zy = a.(6) and zz = a.(10) in
    (match joint.Joint.kind with
    | Joint.Revolute ->
      let dx = px -. a.(3) and dy = py -. a.(7) and dz = pz -. a.(11) in
      s.col.(0) <- (zy *. dz) -. (zz *. dy);
      s.col.(1) <- (zz *. dx) -. (zx *. dz);
      s.col.(2) <- (zx *. dy) -. (zy *. dx)
    | Joint.Prismatic ->
      s.col.(0) <- zx;
      s.col.(1) <- zy;
      s.col.(2) <- zz);
    let cx = s.col.(0) and cy = s.col.(1) and cz = s.col.(2) in
    let je = (cx *. ex) +. (cy *. ey) +. (cz *. ez) in
    s.dtheta_base.(i) <- je;
    s.jjte.(0) <- s.jjte.(0) +. (je *. cx);
    s.jjte.(1) <- s.jjte.(1) +. (je *. cy);
    s.jjte.(2) <- s.jjte.(2) +. (je *. cz);
    Dh.transform_at ~dst:s.local dh joint.Joint.kind theta i;
    Mat4.mul_affine_into ~dst:s.tmp s.acc s.local;
    let swap = s.acc in
    s.acc <- s.tmp;
    s.tmp <- swap
  done;
  let jx = s.jjte.(0) and jy = s.jjte.(1) and jz = s.jjte.(2) in
  let denom = (jx *. jx) +. (jy *. jy) +. (jz *. jz) in
  s.out.alpha_base <-
    (if denom < 1e-30 then 0.
     else ((ex *. jx) +. (ey *. jy) +. (ez *. jz)) /. denom)

let serial_pass chain ~theta ~end_transform ~target =
  let s = make_scratch ~dof:(Chain.dof chain) in
  serial_pass_into s chain ~theta ~end_transform ~target;
  {
    e = Vec3.make s.e.(0) s.e.(1) s.e.(2);
    err = s.out.err;
    dtheta_base = s.dtheta_base;
    alpha_base = s.out.alpha_base;
  }

let candidate_pass chain theta = Fk.pose chain theta

let candidate_pass_into scratch chain theta =
  Fk.run ~scratch chain theta;
  Fk.end_transform scratch
