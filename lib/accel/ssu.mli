(** Speculative Search Unit cycle model (Figure 2, center).

    One SSU processes one candidate [α_k] per schedule: generate [α_k],
    compute [θ_k = θ + α_k·Δθ_base] on [update_lanes] parallel MACs, run
    the FKU over the chain, and compute the candidate error. *)

val candidate_cycles : Config.t -> dof:int -> int
(** Cycles for one speculative search on a [dof]-joint chain. *)
