(** Serial Process Unit cycle model (paper §5.3, Figure 3).

    The serial prologue of every Quick-IK iteration — [ⁱ⁻¹TᵢC → ¹TᵢC →
    JᵢC → JJᵀEC] — is fused into one loop and pipelined across joints:
    joint [i]'s transform computes while joint [i−1]'s Jacobian column is
    folded into [JJᵀe].  After the pipeline drains, a short epilogue
    produces [α_base] (Eq. 8). *)

val iteration_cycles : Config.t -> dof:int -> int
(** Cycles for one serial pass over a [dof]-joint chain, including the
    [α_base] epilogue. *)

val stage_latencies : Config.t -> int array
(** The four stage latencies, in pipeline order (introspection/tests). *)

val initiation_interval : Config.t -> int
(** Steady-state cycles per joint = the slowest stage. *)
