type event = {
  unit_name : string;
  start_cycle : int;
  end_cycle : int;
  candidate : int option;
}

let iteration (cfg : Config.t) ~dof ~speculations =
  let spu_cycles = Spu.iteration_cycles cfg ~dof in
  let ssu_cycles = Ssu.candidate_cycles cfg ~dof in
  let rounds = Scheduler.assignments cfg ~speculations in
  let events = ref [ { unit_name = "SPU"; start_cycle = 0; end_cycle = spu_cycles; candidate = None } ] in
  let clock = ref spu_cycles in
  List.iter
    (fun round ->
      let broadcast_end = !clock + cfg.Config.broadcast_cycles in
      events :=
        { unit_name = "broadcast"; start_cycle = !clock; end_cycle = broadcast_end; candidate = None }
        :: !events;
      List.iteri
        (fun slot candidate ->
          events :=
            {
              unit_name = Printf.sprintf "SSU-%d" slot;
              start_cycle = broadcast_end;
              end_cycle = broadcast_end + ssu_cycles;
              candidate = Some candidate;
            }
            :: !events)
        round;
      let search_end = broadcast_end + ssu_cycles in
      events :=
        {
          unit_name = "select";
          start_cycle = search_end;
          end_cycle = search_end + cfg.Config.select_cycles;
          candidate = None;
        }
        :: !events;
      clock := search_end + cfg.Config.select_cycles)
    rounds;
  List.rev !events

let makespan events = List.fold_left (fun acc e -> Stdlib.max acc e.end_cycle) 0 events

let busy_cycles ~prefix events =
  List.fold_left
    (fun acc e ->
      if String.length e.unit_name >= String.length prefix
         && String.sub e.unit_name 0 (String.length prefix) = prefix
      then acc + (e.end_cycle - e.start_cycle)
      else acc)
    0 events

let render ?(width = 72) events =
  let total = makespan events in
  if total = 0 then ""
  else begin
    let units =
      List.fold_left
        (fun acc e -> if List.mem e.unit_name acc then acc else e.unit_name :: acc)
        [] events
      |> List.rev
    in
    let scale cycle = cycle * width / total in
    let buf = Buffer.create 1024 in
    let label_width =
      List.fold_left (fun acc u -> Stdlib.max acc (String.length u)) 0 units
    in
    List.iter
      (fun unit_name ->
        let row = Bytes.make width '.' in
        List.iter
          (fun e ->
            if e.unit_name = unit_name then begin
              let a = scale e.start_cycle in
              let b = Stdlib.max (a + 1) (scale e.end_cycle) in
              for i = a to Stdlib.min (width - 1) (b - 1) do
                Bytes.set row i '#'
              done
            end)
          events;
        Buffer.add_string buf
          (Printf.sprintf "%-*s |%s|\n" label_width unit_name (Bytes.to_string row)))
      units;
    Buffer.add_string buf
      (Printf.sprintf "%-*s  0 .. %d cycles\n" label_width "" total);
    Buffer.contents buf
  end
