type design = { num_ssus : int; frequency_hz : float }

type evaluation = {
  design : design;
  area_mm2 : float;
  time_s : float;
  energy_j : float;
  power_w : float;
  edp : float;
}

let fixed_area_mm2 = 0.67

let ssu_area_mm2 = 0.05

let area ~num_ssus = fixed_area_mm2 +. (float_of_int num_ssus *. ssu_area_mm2)

let evaluate ?(base = Config.default) design ~dof ~speculations ~iterations =
  if design.num_ssus <= 0 then invalid_arg "Design_space.evaluate: ssus must be positive";
  if design.frequency_hz <= 0. then
    invalid_arg "Design_space.evaluate: frequency must be positive";
  let f_ratio = design.frequency_hz /. base.Config.frequency_hz in
  let config =
    {
      base with
      Config.num_ssus = design.num_ssus;
      frequency_hz = design.frequency_hz;
      (* higher clocks need proportionally higher voltage:
         P_dyn ∝ f·V² with V ∝ f gives f³; leakage ∝ V gives f *)
      spu_active_w = base.Config.spu_active_w *. (f_ratio ** 3.);
      ssu_active_w = base.Config.ssu_active_w *. (f_ratio ** 3.);
      leakage_w = base.Config.leakage_w *. f_ratio;
    }
  in
  let cycles_per_iter = Scheduler.iteration_cycles config ~dof ~speculations in
  let total_cycles = iterations * cycles_per_iter in
  let spu_busy = iterations * Spu.iteration_cycles config ~dof in
  let ssu_busy = iterations * Scheduler.ssu_busy_cycles config ~dof ~speculations in
  let energy =
    Energy.of_activity config ~total_cycles ~spu_busy_cycles:spu_busy
      ~ssu_busy_cycles:ssu_busy
  in
  let time_s = float_of_int total_cycles /. design.frequency_hz in
  {
    design;
    area_mm2 = area ~num_ssus:design.num_ssus;
    time_s;
    energy_j = energy.Energy.total_j;
    power_w = energy.Energy.avg_power_w;
    edp = energy.Energy.total_j *. time_s;
  }

let default_designs =
  List.concat_map
    (fun num_ssus ->
      List.map (fun ghz -> { num_ssus; frequency_hz = ghz *. 1e9 }) [ 0.5; 1.; 2. ])
    [ 8; 16; 32; 64; 128 ]

let sweep ?base ?(designs = default_designs) ~dof ~speculations ~iterations () =
  List.map (fun d -> evaluate ?base d ~dof ~speculations ~iterations) designs

let dominates a b =
  a.time_s <= b.time_s && a.energy_j <= b.energy_j && a.area_mm2 <= b.area_mm2
  && (a.time_s < b.time_s || a.energy_j < b.energy_j || a.area_mm2 < b.area_mm2)

let pareto evaluations =
  List.filter
    (fun e -> not (List.exists (fun other -> dominates other e) evaluations))
    evaluations

let to_table ?(pareto_marks = true) evaluations =
  let front = if pareto_marks then pareto evaluations else [] in
  let table =
    Dadu_util.Table.create
      ~title:"IKAcc design space (time/energy at the measured iteration count)"
      [
        ("SSUs", Dadu_util.Table.Right);
        ("freq", Dadu_util.Table.Right);
        ("area", Dadu_util.Table.Right);
        ("time/solve", Dadu_util.Table.Right);
        ("energy/solve", Dadu_util.Table.Right);
        ("avg power", Dadu_util.Table.Right);
        ("EDP", Dadu_util.Table.Right);
        ("Pareto", Dadu_util.Table.Left);
      ]
  in
  List.iter
    (fun e ->
      Dadu_util.Table.add_row table
        [
          string_of_int e.design.num_ssus;
          Printf.sprintf "%.1f GHz" (e.design.frequency_hz /. 1e9);
          Printf.sprintf "%.2f mm2" e.area_mm2;
          Printf.sprintf "%.3f ms" (e.time_s *. 1e3);
          Printf.sprintf "%.3g mJ" (e.energy_j *. 1e3);
          Printf.sprintf "%.0f mW" (e.power_w *. 1e3);
          Printf.sprintf "%.3g uJ.s" (e.edp *. 1e9);
          (if List.memq e front then "*" else "");
        ])
    evaluations;
  table
