(** Design-space exploration around the paper's 32-SSU / 1 GHz point.

    Area model: the paper reports 2.27 mm² (Nangate 65 nm) for 32 SSUs;
    we apportion it as a fixed part (SPU + scheduler + selector) plus a
    per-SSU increment, so alternative sizes get first-order area numbers.
    Frequency scaling: cycle counts are frequency-independent and delay
    scales as [1/f]; reaching a higher clock takes proportionally higher
    voltage, so dynamic power scales as [f·V² ∝ f³] (dynamic energy per
    solve as [f²]) and leakage as [V ∝ f].  That makes frequency a true
    latency-vs-energy trade — the regime DVFS lives in.  First-order,
    documented, and good enough to rank designs. *)

type design = { num_ssus : int; frequency_hz : float }

type evaluation = {
  design : design;
  area_mm2 : float;
  time_s : float;  (** per solve, at the given iteration count *)
  energy_j : float;
  power_w : float;
  edp : float;  (** energy × delay *)
}

val fixed_area_mm2 : float
(** SPU + scheduler + selector: 0.67 mm². *)

val ssu_area_mm2 : float
(** 0.05 mm² per SSU (32 × 0.05 + 0.67 = the paper's 2.27). *)

val area : num_ssus:int -> float

val evaluate :
  ?base:Config.t -> design -> dof:int -> speculations:int -> iterations:int -> evaluation

val default_designs : design list
(** SSUs {8, 16, 32, 64, 128} × frequencies {0.5, 1, 2} GHz. *)

val sweep :
  ?base:Config.t ->
  ?designs:design list ->
  dof:int ->
  speculations:int ->
  iterations:int ->
  unit ->
  evaluation list

val pareto : evaluation list -> evaluation list
(** Non-dominated subset under (time, energy, area), input order
    preserved. *)

val to_table : ?pareto_marks:bool -> evaluation list -> Dadu_util.Table.t
(** With [pareto_marks] (default true), Pareto-optimal rows get a [*]. *)
