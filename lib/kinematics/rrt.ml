open Dadu_linalg
module Rng = Dadu_util.Rng

type params = {
  step : float;
  goal_bias : float;
  max_nodes : int;
  collision_resolution : float;
  margin : float;
}

let default_params =
  {
    step = 0.2;
    goal_bias = 0.1;
    max_nodes = 2000;
    collision_resolution = 0.05;
    margin = 0.;
  }

type result = { path : Vec.t list; nodes_expanded : int; collision_checks : int }

(* a tree is a growable array of (configuration, parent index) *)
type tree = { mutable nodes : (Vec.t * int) array; mutable size : int }

let tree_create root = { nodes = Array.make 64 (root, -1); size = 1 }

let tree_add tree q parent =
  if tree.size = Array.length tree.nodes then begin
    let bigger = Array.make (2 * tree.size) tree.nodes.(0) in
    Array.blit tree.nodes 0 bigger 0 tree.size;
    tree.nodes <- bigger
  end;
  tree.nodes.(tree.size) <- (q, parent);
  tree.size <- tree.size + 1;
  tree.size - 1

let tree_nearest tree q =
  let best = ref 0 and best_d = ref infinity in
  for i = 0 to tree.size - 1 do
    let d = Vec.dist (fst tree.nodes.(i)) q in
    if d < !best_d then begin
      best_d := d;
      best := i
    end
  done;
  !best

let tree_path tree idx =
  let rec up idx acc =
    if idx < 0 then acc
    else begin
      let q, parent = tree.nodes.(idx) in
      up parent (q :: acc)
    end
  in
  up idx []

let interpolate a b t = Vec.init (Vec.dim a) (fun i -> a.(i) +. (t *. (b.(i) -. a.(i))))

let config_free checks ~margin scene chain q =
  incr checks;
  Obstacles.clearance scene chain q > margin

(* checks the open segment (a, b]; assumes a is already known free *)
let segment_free checks ~margin ~resolution scene chain a b =
  let d = Vec.dist a b in
  let steps = Stdlib.max 1 (int_of_float (Float.ceil (d /. resolution))) in
  let rec ok i =
    i > steps
    ||
    let t = float_of_int i /. float_of_int steps in
    config_free checks ~margin scene chain (interpolate a b t) && ok (i + 1)
  in
  ok 1

let steer ~step from target =
  let d = Vec.dist from target in
  if d <= step then target else interpolate from target (step /. d)

let random_config rng chain =
  Target.random_config rng chain

let plan ?(params = default_params) rng ~scene ~chain ~start ~goal =
  Chain.check_config chain start;
  Chain.check_config chain goal;
  let checks = ref 0 in
  let margin = params.margin in
  if not (config_free checks ~margin scene chain start) then
    invalid_arg "Rrt.plan: start configuration collides";
  if not (config_free checks ~margin scene chain goal) then
    invalid_arg "Rrt.plan: goal configuration collides";
  let resolution = params.collision_resolution in
  let tree_a = tree_create (Vec.copy start) in
  let tree_b = tree_create (Vec.copy goal) in
  (* grow [tree] toward [q]; return the index of the new node, or -1 *)
  let extend tree q =
    let near_idx = tree_nearest tree q in
    let near = fst tree.nodes.(near_idx) in
    let next = steer ~step:params.step near q in
    if Vec.dist near next < 1e-12 then -1
    else if segment_free checks ~margin ~resolution scene chain near next then
      tree_add tree next near_idx
    else -1
  in
  let rec grow from_tree to_tree swapped iterations =
    if from_tree.size + to_tree.size >= params.max_nodes then
      { path = []; nodes_expanded = from_tree.size + to_tree.size; collision_checks = !checks }
    else begin
      let sample =
        if Rng.float rng 1. < params.goal_bias then Vec.copy (fst to_tree.nodes.(0))
        else random_config rng chain
      in
      let new_idx = extend from_tree sample in
      if new_idx < 0 then grow to_tree from_tree (not swapped) (iterations + 1)
      else begin
        let new_q = fst from_tree.nodes.(new_idx) in
        (* try to connect the other tree straight to the new node *)
        let other_idx = tree_nearest to_tree new_q in
        let other_q = fst to_tree.nodes.(other_idx) in
        if
          Vec.dist new_q other_q <= params.step
          && segment_free checks ~margin ~resolution scene chain other_q new_q
        then begin
          let from_path = tree_path from_tree new_idx in
          let to_path = List.rev (tree_path to_tree other_idx) in
          let joined = from_path @ to_path in
          let path = if swapped then List.rev joined else joined in
          {
            path;
            nodes_expanded = from_tree.size + to_tree.size;
            collision_checks = !checks;
          }
        end
        else grow to_tree from_tree (not swapped) (iterations + 1)
      end
    end
  in
  grow tree_a tree_b false 0

let path_collision_free ?(margin = 0.) ?(resolution = 0.05) scene chain path =
  let checks = ref 0 in
  match path with
  | [] -> false
  | first :: rest ->
    config_free checks ~margin scene chain first
    &&
    let rec ok prev = function
      | [] -> true
      | q :: rest ->
        segment_free checks ~margin ~resolution scene chain prev q && ok q rest
    in
    ok first rest

let path_length path =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (acc +. Vec.dist a b) rest
    | [ _ ] | [] -> acc
  in
  go 0. path

let shortcut ?(attempts = 100) ?(margin = 0.) ?(resolution = 0.05) rng scene chain
    path =
  let checks = ref 0 in
  let current = ref (Array.of_list path) in
  let n () = Array.length !current in
  if n () > 2 then
    for _ = 1 to attempts do
      let len = n () in
      if len > 2 then begin
        let i = Rng.int rng (len - 2) in
        let j = i + 2 + Rng.int rng (len - i - 2) in
        let a = !current.(i) and b = !current.(j) in
        if segment_free checks ~margin ~resolution scene chain a b then begin
          let replaced =
            Array.concat
              [ Array.sub !current 0 (i + 1); Array.sub !current j (len - j) ]
          in
          current := replaced
        end
      end
    done;
  Array.to_list !current
