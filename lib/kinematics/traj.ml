open Dadu_linalg

let line ~from ~to_ ~samples =
  if samples < 2 then invalid_arg "Traj.line: need at least 2 samples";
  Array.init samples (fun i ->
      Vec3.lerp from to_ (float_of_int i /. float_of_int (samples - 1)))

(* Build an orthonormal frame (u, v) spanning the plane normal to n. *)
let plane_basis normal =
  let n = Vec3.normalize normal in
  let seed = if Float.abs n.Vec3.x < 0.9 then Vec3.ex else Vec3.ey in
  let u = Vec3.normalize (Vec3.cross n seed) in
  let v = Vec3.cross n u in
  (u, v)

let circle ~center ~radius ~normal ~samples =
  if samples < 2 then invalid_arg "Traj.circle: need at least 2 samples";
  if radius <= 0. then invalid_arg "Traj.circle: radius must be positive";
  let u, v = plane_basis normal in
  Array.init samples (fun i ->
      let t = 2. *. Float.pi *. float_of_int i /. float_of_int samples in
      Vec3.add center
        (Vec3.add
           (Vec3.scale (radius *. cos t) u)
           (Vec3.scale (radius *. sin t) v)))

let lissajous ~center ~amplitude ~freq:(fx, fy, fz) ~samples =
  if samples < 2 then invalid_arg "Traj.lissajous: need at least 2 samples";
  Array.init samples (fun i ->
      let t = 2. *. Float.pi *. float_of_int i /. float_of_int samples in
      Vec3.make
        (center.Vec3.x +. (amplitude.Vec3.x *. sin (float_of_int fx *. t)))
        (center.Vec3.y +. (amplitude.Vec3.y *. sin (float_of_int fy *. t)))
        (center.Vec3.z +. (amplitude.Vec3.z *. sin (float_of_int fz *. t))))

let arc_length points =
  let total = ref 0. in
  for i = 1 to Array.length points - 1 do
    total := !total +. Vec3.dist points.(i - 1) points.(i)
  done;
  !total
