open Dadu_linalg

(** Target sampling for IK workloads.

    The paper evaluates "1K target positions" per configuration.  Sampling
    a target as the FK image of a random joint configuration guarantees it
    is reachable, which the convergence statistics assume. *)

val random_config : Dadu_util.Rng.t -> Chain.t -> Vec.t
(** Uniform within joint limits; unbounded revolute joints draw from
    [\[−π, π\]], unbounded prismatic joints from [\[−1, 1\]]. *)

val reachable : Dadu_util.Rng.t -> Chain.t -> Vec3.t
(** FK of {!random_config}. *)

val batch : Dadu_util.Rng.t -> Chain.t -> int -> Vec3.t array
(** [batch rng chain k] draws [k] reachable targets. *)

val unreachable : Dadu_util.Rng.t -> Chain.t -> Vec3.t
(** A point strictly outside the workspace sphere (at 1.5× reach in a
    random direction); for no-solution behaviour tests.  Requires a finite
    {!Chain.reach}. *)
