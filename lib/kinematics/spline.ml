open Dadu_linalg

type sample = { q : Vec.t; qd : Vec.t; qdd : Vec.t }

type trajectory = { duration : float; at : float -> sample }

(* Quintic with zero boundary velocity/acceleration reduces to the
   classic smoothstep-like profile s(u) = 10u³ − 15u⁴ + 6u⁵. *)
let quintic ~q0 ~q1 ~duration =
  if duration <= 0. then invalid_arg "Spline.quintic: duration must be positive";
  if Vec.dim q0 <> Vec.dim q1 then invalid_arg "Spline.quintic: dimension mismatch";
  let q0 = Vec.copy q0 and q1 = Vec.copy q1 in
  let at t =
    let u = Float.min 1. (Float.max 0. (t /. duration)) in
    let s = ((10. +. (((6. *. u) -. 15.) *. u)) *. u *. u *. u) in
    let sd = 30. *. u *. u *. ((u -. 1.) ** 2.) /. duration in
    let sdd = (60. *. u *. (1. -. (3. *. u) +. (2. *. u *. u))) /. (duration *. duration) in
    let n = Vec.dim q0 in
    {
      q = Vec.init n (fun i -> q0.(i) +. (s *. (q1.(i) -. q0.(i))));
      qd = Vec.init n (fun i -> sd *. (q1.(i) -. q0.(i)));
      qdd = Vec.init n (fun i -> sdd *. (q1.(i) -. q0.(i)));
    }
  in
  { duration; at }

(* Cubic Hermite segment on [0, h] with endpoint values/velocities. *)
let hermite ~h ~p0 ~p1 ~v0 ~v1 tau =
  let u = tau /. h in
  let u2 = u *. u and u3 = u *. u *. u in
  let h00 = (2. *. u3) -. (3. *. u2) +. 1. in
  let h10 = u3 -. (2. *. u2) +. u in
  let h01 = (-2. *. u3) +. (3. *. u2) in
  let h11 = u3 -. u2 in
  let pos = (h00 *. p0) +. (h10 *. h *. v0) +. (h01 *. p1) +. (h11 *. h *. v1) in
  let d00 = ((6. *. u2) -. (6. *. u)) /. h in
  let d10 = (3. *. u2) -. (4. *. u) +. 1. in
  let d01 = ((-6. *. u2) +. (6. *. u)) /. h in
  let d11 = (3. *. u2) -. (2. *. u) in
  let velocity = (d00 *. p0) +. (d10 *. v0) +. (d01 *. p1) +. (d11 *. v1) in
  let a00 = ((12. *. u) -. 6.) /. (h *. h) in
  let a10 = ((6. *. u) -. 4.) /. h in
  let a01 = ((-12. *. u) +. 6.) /. (h *. h) in
  let a11 = ((6. *. u) -. 2.) /. h in
  let accel = (a00 *. p0) +. (a10 *. v0) +. (a01 *. p1) +. (a11 *. v1) in
  (pos, velocity, accel)

let via_points points =
  (match points with
  | [] | [ _ ] -> invalid_arg "Spline.via_points: need at least two points"
  | (t0, _) :: _ when Float.abs t0 > 1e-12 ->
    invalid_arg "Spline.via_points: first time must be 0"
  | _ -> ());
  let pts = Array.of_list points in
  let k = Array.length pts in
  let dim = Vec.dim (snd pts.(0)) in
  Array.iter
    (fun (_, q) ->
      if Vec.dim q <> dim then invalid_arg "Spline.via_points: dimension mismatch")
    pts;
  for i = 1 to k - 1 do
    if fst pts.(i) <= fst pts.(i - 1) then
      invalid_arg "Spline.via_points: times must be strictly increasing"
  done;
  (* knot velocities: central differences inside, rest at the ends *)
  let velocities =
    Array.init k (fun i ->
        if i = 0 || i = k - 1 then Vec.create dim
        else begin
          let tm, qm = pts.(i - 1) and tp, qp = pts.(i + 1) in
          Vec.init dim (fun j -> (qp.(j) -. qm.(j)) /. (tp -. tm))
        end)
  in
  let duration = fst pts.(k - 1) in
  let at t =
    let t = Float.min duration (Float.max 0. t) in
    (* find the segment containing t *)
    let seg = ref 0 in
    for i = 0 to k - 2 do
      if t >= fst pts.(i) then seg := i
    done;
    let i = !seg in
    let t_lo, q_lo = pts.(i) and t_hi, q_hi = pts.(i + 1) in
    let h = t_hi -. t_lo in
    let tau = t -. t_lo in
    let q = Vec.create dim and qd = Vec.create dim and qdd = Vec.create dim in
    for j = 0 to dim - 1 do
      let pos, vel, acc =
        hermite ~h ~p0:q_lo.(j) ~p1:q_hi.(j) ~v0:velocities.(i).(j)
          ~v1:velocities.(i + 1).(j) tau
      in
      q.(j) <- pos;
      qd.(j) <- vel;
      qdd.(j) <- acc
    done;
    { q; qd; qdd }
  in
  { duration; at }

let max_speed ?(samples = 200) trajectory =
  let worst = ref 0. in
  for i = 0 to samples do
    let t = trajectory.duration *. float_of_int i /. float_of_int samples in
    worst := Float.max !worst (Vec.max_abs (trajectory.at t).qd)
  done;
  !worst
