open Dadu_linalg

(** Geometric Jacobians.

    For a revolute joint [i] with axis [z_{i-1}] and origin [p_{i-1}] (both
    in the base frame), the position Jacobian column is
    [z_{i-1} × (p_end − p_{i-1})]; for a prismatic joint it is [z_{i-1}].
    The full Jacobian stacks an angular block ([z_{i-1}] for revolute,
    [0] for prismatic) under the linear block. *)

val position_jacobian : Chain.t -> Vec.t -> Mat.t
(** 3×dof Jacobian of the end-effector position at configuration [q]. *)

val position_jacobian_of_frames : Chain.t -> Mat4.t array -> Mat.t
(** Same, reusing cumulative frames from {!Fk.frames} (avoids recomputing
    FK when the caller already has the frames). *)

val position_jacobian_into : dst:Mat.t -> Chain.t -> Mat4.t array -> unit
(** [position_jacobian_into ~dst chain frames] fills the 3×dof matrix
    [dst] from cumulative [frames] without allocating; bit-identical to
    {!position_jacobian_of_frames}. *)

val full_jacobian : Chain.t -> Vec.t -> Mat.t
(** 6×dof Jacobian: rows 0–2 linear velocity, rows 3–5 angular velocity. *)

val numerical_position_jacobian : ?eps:float -> Chain.t -> Vec.t -> Mat.t
(** Central finite differences of {!Fk.position}; the test oracle for the
    analytic Jacobian.  [eps] defaults to 1e-6. *)

val flops : int -> int
(** Flop count of one [position_jacobian] evaluation (including the FK
    frames pass) for a [dof]-link chain; used by the cost models. *)
