open Dadu_linalg

(** Rigid-body dynamics for serial chains: recursive Newton–Euler.

    The paper frames kinematics as "the basis of robotic control, which
    manages the robots' movement, walking and balancing"; the torque side
    of that control is dynamics.  This module computes inverse dynamics
    [τ(q, q̇, q̈)] — and its [gravity_torques] special case — which the
    examples use to pick low-effort postures among the many IK solutions
    of a redundant chain.

    Every body [i] is rigidly attached to frame [i+1] (it moves with
    joint [i]); its inertial parameters are expressed in that frame. *)

type body = {
  mass : float;  (** kg; non-negative *)
  com : Vec3.t;  (** center of mass, in the link's own frame *)
  inertia : Mat.t;  (** 3×3 rotational inertia about the COM, link frame *)
}

val point_mass : float -> Vec3.t -> body
(** Zero rotational inertia. *)

val rod : mass:float -> length:float -> body
(** Uniform thin rod spanning the link: in standard DH the link frame's
    origin sits at the link's far end with the rod behind it along its
    x-axis, so the COM is at [−length/2]; [I = m·l²/12] about the
    transverse axes. *)

type model = {
  chain : Chain.t;
  bodies : body array;  (** one per link *)
  gravity : Vec3.t;  (** gravitational acceleration, base frame *)
}

val model : ?gravity:Vec3.t -> Chain.t -> body array -> model
(** [gravity] defaults to [(0, 0, −9.81)].  Raises [Invalid_argument] on a
    body-count mismatch or a negative mass. *)

val uniform_rods : ?gravity:Vec3.t -> ?total_mass:float -> Chain.t -> model
(** Every link a uniform rod of its DH [a]-length (links with [a = 0] get
    a point mass at their origin), masses proportional to length and
    summing to [total_mass] (default 10 kg). *)

val inverse_dynamics : model -> q:Vec.t -> qd:Vec.t -> qdd:Vec.t -> Vec.t
(** Joint torques (N·m; forces for prismatic joints, N) realizing the
    acceleration [qdd] at state [(q, qd)] under gravity. *)

val gravity_torques : model -> Vec.t -> Vec.t
(** [inverse_dynamics] with zero velocity and acceleration: the static
    holding torques at configuration [q]. *)

val kinetic_energy : model -> q:Vec.t -> qd:Vec.t -> float

val potential_energy : model -> Vec.t -> float
(** Gravitational potential, zero level at the base origin. *)

val gravity_effort : model -> Vec.t -> float
(** [‖gravity_torques‖²] — the scalar the low-torque-posture example
    descends. *)

val bias_torques : model -> q:Vec.t -> qd:Vec.t -> Vec.t
(** [C(q,q̇)·q̇ + G(q)]: the torques with zero acceleration —
    [inverse_dynamics] at [q̈ = 0]. *)

val mass_matrix : model -> Vec.t -> Mat.t
(** The joint-space inertia matrix [M(q)] (symmetric positive definite),
    assembled column by column from [inverse_dynamics] with unit
    accelerations. *)

val forward_dynamics : model -> q:Vec.t -> qd:Vec.t -> tau:Vec.t -> Vec.t
(** [q̈ = M(q)⁻¹·(τ − C·q̇ − G)] — the exact inverse of
    {!inverse_dynamics} (the tests assert the round trip). *)
