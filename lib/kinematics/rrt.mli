open Dadu_linalg

(** Joint-space motion planning: RRT-Connect over the obstacle scene.

    IK produces a goal configuration; getting there without sweeping the
    body through an obstacle is a planning problem.  This is the standard
    bidirectional RRT: grow one tree from the start and one from the goal,
    steering each new sample toward its nearest neighbour in bounded
    steps, keeping only collision-free edges, and connecting the trees
    when they meet.  Collision checking densely samples each edge against
    {!Obstacles.clearance}. *)

type params = {
  step : float;  (** maximum joint-space extension per edge, rad (0.2) *)
  goal_bias : float;  (** probability of sampling the other tree's root (0.1) *)
  max_nodes : int;  (** total node budget across both trees (2000) *)
  collision_resolution : float;
      (** joint-space distance between collision checks along an edge
          (0.05) *)
  margin : float;  (** required clearance around obstacles, m (0.0) *)
}

val default_params : params

type result = {
  path : Vec.t list;  (** start .. goal inclusive; [] when planning failed *)
  nodes_expanded : int;
  collision_checks : int;
}

val plan :
  ?params:params ->
  Dadu_util.Rng.t ->
  scene:Obstacles.scene ->
  chain:Chain.t ->
  start:Vec.t ->
  goal:Vec.t ->
  result
(** Plans between two collision-free configurations; raises
    [Invalid_argument] if either endpoint collides (within [margin]) or is
    outside joint limits.  Deterministic in the generator. *)

val path_collision_free :
  ?margin:float ->
  ?resolution:float ->
  Obstacles.scene ->
  Chain.t ->
  Vec.t list ->
  bool
(** Validates a path by dense interpolation ([resolution] defaults to
    0.05 rad) — the test oracle for {!plan}. *)

val path_length : Vec.t list -> float
(** Total joint-space (Euclidean) length. *)

val shortcut :
  ?attempts:int ->
  ?margin:float ->
  ?resolution:float ->
  Dadu_util.Rng.t ->
  Obstacles.scene ->
  Chain.t ->
  Vec.t list ->
  Vec.t list
(** Randomized shortcutting: repeatedly tries to replace a random
    sub-path with a straight collision-free segment ([attempts] default
    100).  Never lengthens the path; endpoints are preserved. *)
