let deg x = x *. Float.pi /. 180.

let revolute_link ?(lower = neg_infinity) ?(upper = infinity) name dh =
  { Chain.name; joint = Joint.revolute ~lower ~upper (); dh }

let planar ?name ~dof ~reach () =
  if dof <= 0 then invalid_arg "Robots.planar: dof must be positive";
  let a = reach /. float_of_int dof in
  let links =
    Array.init dof (fun i ->
        revolute_link (Printf.sprintf "j%d" (i + 1)) (Dh.make ~a ()))
  in
  let name = Option.value name ~default:(Printf.sprintf "planar-%ddof" dof) in
  Chain.make ~name links

let spatial ?name ?(twist_deg = 90.) ~dof ~reach () =
  if dof <= 0 then invalid_arg "Robots.spatial: dof must be positive";
  let a = reach /. float_of_int dof in
  let links =
    Array.init dof (fun i ->
        let alpha = if i mod 2 = 0 then deg twist_deg else deg (-.twist_deg) in
        revolute_link (Printf.sprintf "j%d" (i + 1)) (Dh.make ~a ~alpha ()))
  in
  let name = Option.value name ~default:(Printf.sprintf "spatial-%ddof" dof) in
  Chain.make ~name links

let random rng ?name ~dof ~reach () =
  if dof <= 0 then invalid_arg "Robots.random: dof must be positive";
  let twists = [| 0.; deg 90.; deg (-90.); deg 45.; deg (-45.) |] in
  let raw = Array.init dof (fun _ -> 0.2 +. Dadu_util.Rng.float rng 0.8) in
  let total = Array.fold_left ( +. ) 0. raw in
  let links =
    Array.init dof (fun i ->
        let a = raw.(i) /. total *. reach in
        let alpha = twists.(Dadu_util.Rng.int rng (Array.length twists)) in
        revolute_link (Printf.sprintf "j%d" (i + 1)) (Dh.make ~a ~alpha ()))
  in
  let name = Option.value name ~default:(Printf.sprintf "random-%ddof" dof) in
  Chain.make ~name links

let eval_chain ~dof =
  spatial
    ~name:(Printf.sprintf "eval-%ddof" dof)
    ~twist_deg:10. ~dof ~reach:(float_of_int dof) ()

let eval_dofs = [ 12; 25; 50; 75; 100 ]

let arm_6dof () =
  (* Elbow manipulator with a spherical wrist; dimensions in meters are in
     the KUKA KR AGILUS class. *)
  let lim d = (-.deg d, deg d) in
  let link name (lower, upper) dh = revolute_link ~lower ~upper name dh in
  Chain.make ~name:"arm-6dof"
    [|
      link "base" (lim 170.) (Dh.make ~d:0.4 ~a:0.025 ~alpha:(deg (-90.)) ());
      link "shoulder" (lim 120.) (Dh.make ~a:0.455 ());
      link "elbow" (lim 155.) (Dh.make ~a:0.035 ~alpha:(deg (-90.)) ());
      link "wrist-roll" (lim 185.) (Dh.make ~d:0.42 ~alpha:(deg 90.) ());
      link "wrist-pitch" (lim 120.) (Dh.make ~alpha:(deg (-90.)) ());
      link "flange" (lim 350.) (Dh.make ~d:0.08 ());
    |]

let arm_7dof () =
  (* Redundant humanoid-class arm: shoulder 3R, elbow 1R, wrist 3R. *)
  let lim d = (-.deg d, deg d) in
  let link name (lower, upper) dh = revolute_link ~lower ~upper name dh in
  Chain.make ~name:"arm-7dof"
    [|
      link "shoulder-yaw" (lim 170.) (Dh.make ~d:0.32 ~alpha:(deg (-90.)) ());
      link "shoulder-pitch" (lim 120.) (Dh.make ~alpha:(deg 90.) ());
      link "shoulder-roll" (lim 170.) (Dh.make ~d:0.33 ~alpha:(deg (-90.)) ());
      link "elbow" (lim 135.) (Dh.make ~alpha:(deg 90.) ());
      link "wrist-roll" (lim 170.) (Dh.make ~d:0.27 ~alpha:(deg (-90.)) ());
      link "wrist-pitch" (lim 115.) (Dh.make ~alpha:(deg 90.) ());
      link "wrist-yaw" (lim 170.) (Dh.make ~d:0.1 ());
    |]

let snake ~dof =
  if dof <= 0 then invalid_arg "Robots.snake: dof must be positive";
  let a = 1.0 /. float_of_int dof in
  let lower = -.deg 120. and upper = deg 120. in
  let links =
    Array.init dof (fun i ->
        let alpha = if i mod 2 = 0 then deg 90. else deg (-90.) in
        revolute_link ~lower ~upper
          (Printf.sprintf "seg%d" (i + 1))
          (Dh.make ~a ~alpha ()))
  in
  Chain.make ~name:(Printf.sprintf "snake-%ddof" dof) links

let scara () =
  Chain.make ~name:"scara"
    [|
      revolute_link ~lower:(-.deg 130.) ~upper:(deg 130.) "shoulder"
        (Dh.make ~a:0.25 ());
      revolute_link ~lower:(-.deg 145.) ~upper:(deg 145.) "elbow"
        (Dh.make ~a:0.21 ~alpha:Float.pi ());
      {
        Chain.name = "quill";
        joint = Joint.prismatic ~lower:0. ~upper:0.18 ();
        dh = Dh.make ();
      };
      revolute_link ~lower:(-.Float.pi) ~upper:Float.pi "wrist" (Dh.make ());
    |]
