open Dadu_linalg

type sphere = { center : Vec3.t; radius : float }

let sphere ~center ~radius =
  if radius <= 0. then invalid_arg "Obstacles.sphere: radius must be positive";
  { center; radius }

type scene = sphere list

let point_segment_distance p a b =
  let ab = Vec3.sub b a in
  let len_sq = Vec3.norm_sq ab in
  if len_sq < 1e-24 then Vec3.dist p a
  else begin
    let t = Vec3.dot (Vec3.sub p a) ab /. len_sq in
    let t = Float.min 1. (Float.max 0. t) in
    Vec3.dist p (Vec3.add a (Vec3.scale t ab))
  end

let segment_clearance a b { center; radius } =
  point_segment_distance center a b -. radius

let clearance scene chain q =
  if scene = [] then infinity
  else begin
    let frames = Fk.frames chain q in
    let best = ref infinity in
    for i = 0 to Chain.dof chain - 1 do
      let a = Mat4.position frames.(i) in
      let b = Mat4.position frames.(i + 1) in
      List.iter
        (fun s -> best := Float.min !best (segment_clearance a b s))
        scene
    done;
    !best
  end

let penetrates scene chain q = clearance scene chain q < 0.

let clearance_gradient ?(eps = 1e-5) scene chain q =
  Array.init (Vec.dim q) (fun i ->
      let plus = Vec.copy q and minus = Vec.copy q in
      plus.(i) <- plus.(i) +. eps;
      minus.(i) <- minus.(i) -. eps;
      (clearance scene chain plus -. clearance scene chain minus) /. (2. *. eps))

let avoidance_objective ?(margin = 0.1) scene chain q =
  let c = clearance scene chain q in
  if c >= margin then Vec.create (Vec.dim q)
  else begin
    let gradient = clearance_gradient scene chain q in
    let norm = Vec.norm gradient in
    if norm < 1e-12 then gradient else Vec.scale (1. /. norm) gradient
  end
