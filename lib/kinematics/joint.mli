(** Joint descriptions: kind and travel limits. *)

type kind =
  | Revolute  (** joint variable is an angle (radians) *)
  | Prismatic  (** joint variable is a displacement (meters) *)

type t = {
  kind : kind;
  lower : float;  (** lower travel limit; [neg_infinity] if unbounded *)
  upper : float;  (** upper travel limit; [infinity] if unbounded *)
}

val revolute : ?lower:float -> ?upper:float -> unit -> t
(** Unbounded by default. *)

val prismatic : ?lower:float -> ?upper:float -> unit -> t

val unbounded : t -> bool

val clamp : t -> float -> float
(** Clamps a joint value into the travel range. *)

val inside : t -> float -> bool

val span : t -> float
(** [upper − lower]; [infinity] when unbounded. *)

val pp : Format.formatter -> t -> unit
