type t = { a : float; alpha : float; d : float; theta : float }

let make ?(a = 0.) ?(alpha = 0.) ?(d = 0.) ?(theta = 0.) () = { a; alpha; d; theta }

(* Standard DH matrix:
   | cθ  −sθ·cα   sθ·sα   a·cθ |
   | sθ   cθ·cα  −cθ·sα   a·sθ |
   | 0    sα      cα      d    |
   | 0    0       0       1    |  *)
let transform_into ~dst dh kind q =
  let theta, d =
    match (kind : Joint.kind) with
    | Revolute -> (dh.theta +. q, dh.d)
    | Prismatic -> (dh.theta, dh.d +. q)
  in
  let ct = cos theta and st = sin theta in
  let ca = cos dh.alpha and sa = sin dh.alpha in
  dst.(0) <- ct;
  dst.(1) <- -.st *. ca;
  dst.(2) <- st *. sa;
  dst.(3) <- dh.a *. ct;
  dst.(4) <- st;
  dst.(5) <- ct *. ca;
  dst.(6) <- -.ct *. sa;
  dst.(7) <- dh.a *. st;
  dst.(8) <- 0.;
  dst.(9) <- sa;
  dst.(10) <- ca;
  dst.(11) <- d;
  dst.(12) <- 0.;
  dst.(13) <- 0.;
  dst.(14) <- 0.;
  dst.(15) <- 1.

(* Same as [transform_into] with the joint variable read from [q.(i)]
   inside the callee: passing a dynamic float across a call boundary boxes
   it (2 minor words), so the FK hot loop hands over the whole config
   array and an index instead. *)
let transform_at ~dst dh kind (q : float array) i =
  let qi = q.(i) in
  let theta, d =
    match (kind : Joint.kind) with
    | Revolute -> (dh.theta +. qi, dh.d)
    | Prismatic -> (dh.theta, dh.d +. qi)
  in
  let ct = cos theta and st = sin theta in
  let ca = cos dh.alpha and sa = sin dh.alpha in
  dst.(0) <- ct;
  dst.(1) <- -.st *. ca;
  dst.(2) <- st *. sa;
  dst.(3) <- dh.a *. ct;
  dst.(4) <- st;
  dst.(5) <- ct *. ca;
  dst.(6) <- -.ct *. sa;
  dst.(7) <- dh.a *. st;
  dst.(8) <- 0.;
  dst.(9) <- sa;
  dst.(10) <- ca;
  dst.(11) <- d;
  dst.(12) <- 0.;
  dst.(13) <- 0.;
  dst.(14) <- 0.;
  dst.(15) <- 1.

let transform dh kind q =
  let dst = Array.make 16 0. in
  transform_into ~dst dh kind q;
  dst

let pp ppf t =
  Format.fprintf ppf "{a=%g; alpha=%g; d=%g; theta=%g}" t.a t.alpha t.d t.theta
