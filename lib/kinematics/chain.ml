open Dadu_linalg

type link = { name : string; joint : Joint.t; dh : Dh.t }

type t = {
  chain_name : string;
  links : link array;
  base : Mat4.t;
  tool : Mat4.t;
}

(* The FK kernels compose with the affine fast path (Mat4.mul_affine_into),
   which is only valid when every factor has bottom row [0 0 0 1].  DH link
   transforms have it by construction; base and tool are user input, so
   enforce it here once instead of per multiply. *)
let check_affine what m =
  if Array.length m <> 16 then
    invalid_arg (Printf.sprintf "Chain.make: %s is not a 4x4 matrix" what);
  if not (Mat4.is_affine m) then
    invalid_arg
      (Printf.sprintf "Chain.make: %s must be affine (bottom row [0 0 0 1])" what)

let make ?(name = "chain") ?base ?tool links =
  if Array.length links = 0 then invalid_arg "Chain.make: no links";
  let base = match base with Some b -> check_affine "base" b; Mat4.copy b | None -> Mat4.identity () in
  let tool = match tool with Some t -> check_affine "tool" t; Mat4.copy t | None -> Mat4.identity () in
  { chain_name = name; links = Array.copy links; base; tool }

let name t = t.chain_name

let dof t = Array.length t.links

let links t = t.links

let link t i = t.links.(i)

let base t = t.base

let tool t = t.tool

let reach t =
  Array.fold_left
    (fun acc { joint; dh; _ } ->
      let travel =
        match joint.Joint.kind with
        | Joint.Revolute -> 0.
        | Joint.Prismatic ->
          if Joint.unbounded joint then infinity
          else Float.max (Float.abs joint.Joint.lower) (Float.abs joint.Joint.upper)
      in
      acc +. Float.abs dh.Dh.a +. Float.abs dh.Dh.d +. travel)
    0. t.links

let check_config t q =
  if Array.length q <> dof t then
    invalid_arg
      (Printf.sprintf "Chain %s: config has %d entries, expected %d" t.chain_name
         (Array.length q) (dof t))

let clamp_config t q =
  check_config t q;
  Array.mapi (fun i qi -> Joint.clamp t.links.(i).joint qi) q

let config_inside t q =
  check_config t q;
  let rec loop i =
    i >= dof t || (Joint.inside t.links.(i).joint q.(i) && loop (i + 1))
  in
  loop 0

(* FNV-1a over the raw IEEE-754 bits of everything that affects kinematics:
   DH parameters, joint kind and limits, base and tool transforms.  The name
   is deliberately excluded — two chains with identical geometry are the same
   robot for seeding purposes, whatever they are called. *)
let fingerprint t =
  let h = ref 0xcbf29ce484222325L in
  let prime = 0x100000001b3L in
  let mix_int64 x =
    for shift = 0 to 7 do
      let byte = Int64.to_int (Int64.shift_right_logical x (shift * 8)) land 0xff in
      h := Int64.mul (Int64.logxor !h (Int64.of_int byte)) prime
    done
  in
  let mix_float x = mix_int64 (Int64.bits_of_float x) in
  let mix_int i = mix_int64 (Int64.of_int i) in
  mix_int (dof t);
  Array.iter
    (fun { joint; dh; _ } ->
      (match joint.Joint.kind with
      | Joint.Revolute -> mix_int 1
      | Joint.Prismatic -> mix_int 2);
      mix_float joint.Joint.lower;
      mix_float joint.Joint.upper;
      mix_float dh.Dh.a;
      mix_float dh.Dh.alpha;
      mix_float dh.Dh.d;
      mix_float dh.Dh.theta)
    t.links;
  Array.iter mix_float t.base;
  Array.iter mix_float t.tool;
  Int64.to_int !h land max_int

let pp ppf t =
  Format.fprintf ppf "@[<v>chain %s (%d DOF)" t.chain_name (dof t);
  Array.iter
    (fun { name; joint; dh } ->
      Format.fprintf ppf "@,  %s: %a %a" name Joint.pp joint Dh.pp dh)
    t.links;
  Format.fprintf ppf "@]"
