open Dadu_linalg

(** Forward kinematics: Eq. 10 of the paper, [f(θ) = ∏ ⁱ⁻¹Tᵢ].

    The speculative search evaluates FK once per candidate per iteration,
    so this is the hottest code in the library.  {!scratch} lets callers
    amortize the two ping-pong accumulators and the per-link local
    transform across calls. *)

type scratch

val make_scratch : unit -> scratch

val position : ?scratch:scratch -> Chain.t -> Vec.t -> Vec3.t
(** End-effector position [f(θ)] in the base frame.  Without [scratch] a
    fresh workspace is allocated, so concurrent calls from different
    domains are safe; hot loops should pass their own scratch. *)

val pose : Chain.t -> Vec.t -> Mat4.t
(** Full end-effector transform (base and tool included). *)

val frames : Chain.t -> Vec.t -> Mat4.t array
(** Cumulative transforms: [frames.(i)] is [⁰Tᵢ] (base through link [i-1]),
    so the array has [dof+1] entries; the last includes the tool.
    [frames.(0)] is the base transform.  This is the [¹Tᵢ] set the paper's
    Jacobian stage consumes. *)

val flops_per_position : int -> int
(** Floating-point operation count of one {!position} call for a [dof]-link
    chain; used by the platform cost models.  Counts the 4×4 matrix product
    chain exactly as the accelerator's FKU executes it. *)
