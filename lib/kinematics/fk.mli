open Dadu_linalg

(** Forward kinematics: Eq. 10 of the paper, [f(θ) = ∏ ⁱ⁻¹Tᵢ].

    The speculative search evaluates FK once per candidate per iteration,
    so this is the hottest code in the library.  {!scratch} owns every
    buffer the kernels need — the two ping-pong accumulators, the
    per-link local transform, and (lazily) a frame array — so the
    steady-state paths ({!run}, {!position_into}, {!frames_into}) perform
    zero minor-heap allocation. *)

type scratch

val make_scratch : ?dof:int -> unit -> scratch
(** [make_scratch ~dof ()] preallocates the frame buffer for a [dof]-link
    chain; without [dof] the frame buffer is grown on first use. *)

val run : scratch:scratch -> Chain.t -> Vec.t -> unit
(** Runs the full chain product (base, links, tool) into the scratch
    accumulator.  Allocation-free.  Read the result with
    {!end_transform} or {!position_into}. *)

val end_transform : scratch -> Mat4.t
(** The accumulator holding the end-effector transform of the most recent
    {!run}.  Returned by pointer: the contents are overwritten by the next
    {!run} or {!frames_into} on the same scratch. *)

val position_into : scratch:scratch -> dst:Vec.t -> Chain.t -> Vec.t -> unit
(** [position_into ~scratch ~dst chain q] writes the end-effector position
    [f(θ)] into [dst] (length 3).  Allocation-free. *)

val position : ?scratch:scratch -> Chain.t -> Vec.t -> Vec3.t
(** End-effector position [f(θ)] in the base frame.  Without [scratch] a
    fresh workspace is allocated, so concurrent calls from different
    domains are safe; hot loops should pass their own scratch (the
    returned {!Vec3.t} record still allocates — use {!position_into} in
    allocation-free code). *)

val pose : Chain.t -> Vec.t -> Mat4.t
(** Full end-effector transform (base and tool included). *)

val frames_into : scratch:scratch -> dst:Mat4.t array -> Chain.t -> Vec.t -> unit
(** [frames_into ~scratch ~dst chain q] fills [dst.(0..dof)] with the
    cumulative transforms: [dst.(i)] is [⁰Tᵢ] (base through link [i-1]),
    and [dst.(dof)] includes the tool.  [dst] must have at least [dof+1]
    entries of distinct 4×4 buffers.  Allocation-free. *)

val frames : ?scratch:scratch -> Chain.t -> Vec.t -> Mat4.t array
(** Cumulative transforms: [frames.(i)] is [⁰Tᵢ] (base through link [i-1]),
    so the array has [dof+1] entries; the last includes the tool.
    [frames.(0)] is the base transform.  This is the [¹Tᵢ] set the paper's
    Jacobian stage consumes.  With [scratch] the scratch-owned frame buffer
    is returned (valid until the next [frames] call on the same scratch);
    without it a fresh array is allocated per call. *)

val precompile : scratch -> Chain.t -> unit
(** Compiles the chain's per-link constants into the scratch (no-op when
    already compiled for this chain).  Call once before sharing a scratch
    between concurrent {!speculate_range_into} sweeps over disjoint
    candidate ranges: compilation mutates the scratch, the sweeps only
    read it. *)

val positions_many_into :
  scratch:scratch ->
  dst:Vec.t ->
  Chain.t ->
  theta:Vec.t ->
  dtheta:Vec.t ->
  coeffs:Vec.t ->
  count:int ->
  unit
(** [positions_many_into ~scratch ~dst chain ~theta ~dtheta ~coeffs ~count]
    computes the end-effector positions of the [count] candidate
    configurations [θ + coeffs.(k)·Δθ], [k ∈ \[0, count)], in one
    link-major backward (tool→base) sweep: per link the compiled DH
    constants are loaded once and only the position column is folded
    ([p ← R·p + t], ~15 flops/link/candidate vs ~39 for the pose product).
    [dst] is a flat SoA buffer of at least [3·count] floats: x-coordinates
    at [\[0, count)], y at [\[count, 2·count)], z at [\[2·count, 3·count)].
    Association order differs from {!run} (right-to-left vs left-to-right),
    so positions agree with the pose kernels up to reassociation rounding,
    not bitwise.  Allocation-free in steady state. *)

val speculate_range_into :
  scratch:scratch ->
  pos:Vec.t ->
  err2:Vec.t ->
  tx:float ->
  ty:float ->
  tz:float ->
  Chain.t ->
  theta:Vec.t ->
  dtheta:Vec.t ->
  coeffs:Vec.t ->
  stride:int ->
  lo:int ->
  hi:int ->
  unit
(** The Quick-IK speculation engine: like {!positions_many_into} restricted
    to candidates [k ∈ \[lo, hi)] of a buffer laid out with plane stride
    [stride] ([pos] has [3·stride] floats), and additionally writes each
    candidate's *squared* distance to the target [(tx, ty, tz)] into
    [err2.(k)] in the same pass — the argmin scan needs no per-candidate
    [sqrt].  Candidates are evaluated independently, so partitioning
    [\[0, count)] into ranges (one call per range, same buffers) yields
    bit-identical [pos]/[err2] contents to a single full-range call; with
    a {!precompile}d scratch the ranges may run on concurrent domains.
    Allocation-free. *)

val score_rows_into :
  scratch:scratch ->
  pos:Vec.t ->
  err2:Vec.t ->
  txs:Vec.t ->
  tys:Vec.t ->
  tzs:Vec.t ->
  Chain.t ->
  thetas:Vec.t ->
  tstride:int ->
  stride:int ->
  lo:int ->
  hi:int ->
  unit
(** Row-plane candidate scoring, the wave-fused form of
    {!speculate_range_into}: candidate [k ∈ \[lo, hi)] is the full
    configuration stored in row [k] of the flat lane-major plane [thetas]
    ([thetas.(k·tstride + i)] is joint [i]; [tstride ≥ dof], rows may be
    wider than the chain).  Each row's end-effector position lands in the
    SoA planes of [pos] (stride [stride], as in {!speculate_range_into})
    and its *squared* distance to the per-row target
    [(txs.(k), tys.(k), tzs.(k))] is fused into [err2.(k)] — per-row
    targets are what let one sweep score candidates belonging to many
    requests.  Scores are bit-identical to a degenerate
    {!speculate_range_into} call per row (zero Δθ, zero coefficient, the
    row as θ): the only arithmetic difference is the sign of a zero
    angle, which squaring erases.  Rows are evaluated independently, so
    any partition of [\[lo, hi)] into sub-ranges — including ranges run
    on concurrent domains, each with its own scratch (or one
    {!precompile}d shared scratch) — produces bit-identical [err2].
    Allocation-free. *)

val flops_per_position : int -> int
(** Floating-point operation count of one {!position} call for a [dof]-link
    chain; used by the platform cost models.  Counts the 4×4 matrix product
    chain exactly as the accelerator's FKU executes it. *)
