open Dadu_linalg

(** SVG rendering of chain postures.

    Orthographic projection of one or more postures onto a coordinate
    plane, with optional targets and sphere obstacles — enough to *see*
    what a solver did (before/after a nullspace optimization, a tracked
    path, an avoidance maneuver) without any plotting dependency. *)

type plane =
  | Xy
  | Xz
  | Yz

type posture = {
  label : string;
  theta : Vec.t;
  color : string;  (** any SVG color, e.g. "#1f77b4" *)
}

val posture : ?color:string -> ?label:string -> Vec.t -> posture
(** Default color from a small built-in palette keyed by label hash;
    default label "posture". *)

val render :
  ?width:int ->
  ?height:int ->
  ?plane:plane ->
  ?targets:Vec3.t list ->
  ?obstacles:Obstacles.scene ->
  Chain.t ->
  posture list ->
  string
(** A complete standalone SVG document ([width]×[height] px, default
    640×480; [plane] defaults to [Xy]).  The view box auto-fits every
    drawn point with a 10 % margin.  Postures render as polylines with
    joint dots, targets as crosses, obstacles as their projected
    circles.  Raises [Invalid_argument] on an empty posture list. *)

val write :
  ?width:int ->
  ?height:int ->
  ?plane:plane ->
  ?targets:Vec3.t list ->
  ?obstacles:Obstacles.scene ->
  path:string ->
  Chain.t ->
  posture list ->
  unit
(** {!render} to a file. *)
