open Dadu_linalg

let ( let* ) = Result.bind

let fail line fmt = Printf.ksprintf (fun msg -> Error (Printf.sprintf "line %d: %s" line msg)) fmt

(* "90deg" -> radians; bare numbers pass through *)
let parse_number line s =
  let deg = Filename.check_suffix s "deg" in
  let body = if deg then String.sub s 0 (String.length s - 3) else s in
  match float_of_string_opt body with
  | Some v -> Ok (if deg then v *. Float.pi /. 180. else v)
  | None -> fail line "expected a number, got %S" s

let parse_assignment line s =
  match String.index_opt s '=' with
  | None -> fail line "expected key=value, got %S" s
  | Some i ->
    Ok (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let parse_limits line s =
  match String.split_on_char ',' s with
  | [ lo; hi ] ->
    let* lo = parse_number line lo in
    let* hi = parse_number line hi in
    if lo > hi then fail line "limits out of order (%g > %g)" lo hi else Ok (lo, hi)
  | [] | [ _ ] | _ :: _ :: _ -> fail line "expected limits=lo,hi, got %S" s

let parse_joint line name kind_str params =
  let* kind =
    match kind_str with
    | "revolute" -> Ok Joint.Revolute
    | "prismatic" -> Ok Joint.Prismatic
    | other -> fail line "unknown joint kind %S (revolute | prismatic)" other
  in
  let rec fold params a alpha d theta limits =
    match params with
    | [] -> Ok (a, alpha, d, theta, limits)
    | p :: rest ->
      let* key, value = parse_assignment line p in
      (match key with
      | "a" ->
        let* v = parse_number line value in
        fold rest v alpha d theta limits
      | "alpha" ->
        let* v = parse_number line value in
        fold rest a v d theta limits
      | "d" ->
        let* v = parse_number line value in
        fold rest a alpha v theta limits
      | "theta" ->
        let* v = parse_number line value in
        fold rest a alpha d v limits
      | "limits" ->
        let* v = parse_limits line value in
        fold rest a alpha d theta (Some v)
      | other -> fail line "unknown joint parameter %S" other)
  in
  let* a, alpha, d, theta, limits = fold params 0. 0. 0. 0. None in
  let lower, upper =
    match limits with Some (lo, hi) -> (lo, hi) | None -> (neg_infinity, infinity)
  in
  let joint =
    match kind with
    | Joint.Revolute -> Joint.revolute ~lower ~upper ()
    | Joint.Prismatic -> Joint.prismatic ~lower ~upper ()
  in
  Ok { Chain.name; joint; dh = Dh.make ~a ~alpha ~d ~theta () }

let parse_transform line words =
  match words with
  | [ "translate"; x; y; z ] ->
    let* x = parse_number line x in
    let* y = parse_number line y in
    let* z = parse_number line z in
    Ok (Mat4.translation (Vec3.make x y z))
  | "rotate" :: axis :: [ angle ] ->
    let* angle = parse_number line angle in
    (match axis with
    | "x" -> Ok (Mat4.rot_x angle)
    | "y" -> Ok (Mat4.rot_y angle)
    | "z" -> Ok (Mat4.rot_z angle)
    | other -> fail line "unknown rotation axis %S (x | y | z)" other)
  | _ -> fail line "expected 'translate x y z' or 'rotate axis angle'"

let strip_comment s = match String.index_opt s '#' with
  | None -> s
  | Some i -> String.sub s 0 i

let words s =
  String.split_on_char ' ' (String.trim s)
  |> List.filter (fun w -> w <> "")

let parse content =
  let lines = String.split_on_char '\n' content in
  let rec go lines line_no name base tool links =
    match lines with
    | [] ->
      if links = [] then Error "no joints declared"
      else begin
        let links = Array.of_list (List.rev links) in
        let name = Option.value name ~default:"chain" in
        Ok (Chain.make ~name ~base ~tool links)
      end
    | line :: rest ->
      (match words (strip_comment line) with
      | [] -> go rest (line_no + 1) name base tool links
      | [ "chain"; chain_name ] -> go rest (line_no + 1) (Some chain_name) base tool links
      | "base" :: transform ->
        let* t = parse_transform line_no transform in
        go rest (line_no + 1) name (Mat4.mul base t) tool links
      | "tool" :: transform ->
        let* t = parse_transform line_no transform in
        go rest (line_no + 1) name base (Mat4.mul tool t) links
      | "joint" :: joint_name :: kind :: params ->
        let* link = parse_joint line_no joint_name kind params in
        go rest (line_no + 1) name base tool (link :: links)
      | [ "joint" ] | [ "joint"; _ ] ->
        fail line_no "joint needs a name and a kind"
      | directive :: _ -> fail line_no "unknown directive %S" directive)
  in
  go lines 1 None (Mat4.identity ()) (Mat4.identity ()) []

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | content -> parse content
  | exception Sys_error msg -> Error msg

let float_str x = Printf.sprintf "%.17g" x

let transform_lines keyword t buf =
  let p = Mat4.position t in
  if not (Rot.approx_equal ~tol:1e-12 (Mat4.rotation t) (Rot.identity ())) then
    Buffer.add_string buf
      (Printf.sprintf "# %s rotation dropped (translations only)\n" keyword);
  if Vec3.norm p > 0. then
    Buffer.add_string buf
      (Printf.sprintf "%s translate %s %s %s\n" keyword (float_str p.Vec3.x)
         (float_str p.Vec3.y) (float_str p.Vec3.z))

let to_string chain =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "chain %s\n" (Chain.name chain));
  transform_lines "base" (Chain.base chain) buf;
  Array.iter
    (fun { Chain.name; joint; dh } ->
      let kind =
        match joint.Joint.kind with
        | Joint.Revolute -> "revolute"
        | Joint.Prismatic -> "prismatic"
      in
      Buffer.add_string buf (Printf.sprintf "joint %s %s" name kind);
      let param key v default =
        if v <> default then Buffer.add_string buf (Printf.sprintf " %s=%s" key (float_str v))
      in
      param "a" dh.Dh.a 0.;
      param "alpha" dh.Dh.alpha 0.;
      param "d" dh.Dh.d 0.;
      param "theta" dh.Dh.theta 0.;
      if not (Joint.unbounded joint) then
        Buffer.add_string buf
          (Printf.sprintf " limits=%s,%s" (float_str joint.Joint.lower)
             (float_str joint.Joint.upper));
      Buffer.add_char buf '\n')
    (Chain.links chain);
  transform_lines "tool" (Chain.tool chain) buf;
  Buffer.contents buf
