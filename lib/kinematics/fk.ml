open Dadu_linalg

type scratch = {
  mutable acc : Mat4.t;
  mutable tmp : Mat4.t;
  local : Mat4.t;
  mutable frames_buf : Mat4.t array;
  (* compiled link constants for the chain last seen by [run]: 5 floats
     per link [cos α; sin α; a; d; θ₀] plus a revolute flag *)
  mutable pre : float array;
  mutable revolute : bool array;
  mutable compiled_for : Chain.t option;
}

let make_scratch ?(dof = 0) () =
  {
    acc = Mat4.identity ();
    tmp = Mat4.identity ();
    local = Mat4.identity ();
    frames_buf =
      (if dof > 0 then Array.init (dof + 1) (fun _ -> Array.make 16 0.)
       else [||]);
    pre = [||];
    revolute = [||];
    compiled_for = None;
  }

(* The link twist never changes, so cos α / sin α (half the trig of a
   naive per-link transform build) are computed once per (scratch, chain)
   pairing instead of once per link per FK evaluation. *)
let compile scratch chain =
  let links = Chain.links chain in
  let n = Array.length links in
  if Array.length scratch.pre < 5 * n then begin
    scratch.pre <- Array.make (5 * n) 0.;
    scratch.revolute <- Array.make n false
  end;
  let pre = scratch.pre and rev = scratch.revolute in
  for i = 0 to n - 1 do
    let { Chain.joint; dh; _ } = links.(i) in
    let b = 5 * i in
    pre.(b) <- cos dh.Dh.alpha;
    pre.(b + 1) <- sin dh.Dh.alpha;
    pre.(b + 2) <- dh.Dh.a;
    pre.(b + 3) <- dh.Dh.d;
    pre.(b + 4) <- dh.Dh.theta;
    rev.(i) <- (match joint.Joint.kind with
      | Joint.Revolute -> true
      | Joint.Prismatic -> false)
  done;
  scratch.compiled_for <- Some chain

let ensure_compiled scratch chain =
  match scratch.compiled_for with
  | Some c when c == chain -> ()
  | Some _ | None -> compile scratch chain

(* Folds the chain product left-to-right, ping-ponging between the two
   accumulator buffers so nothing is allocated.  Each joint's DH transform
   is folded into the running product directly — its matrix is never
   materialized — and terms against the transform's structural zeros are
   skipped (the multiply does 33 flops instead of the general 64 or the
   affine 36).  Product and association order otherwise match
   [Mat4.mul_affine_into] of [Dh.transform_at], so results agree to the
   sign of zero. *)
let run ~scratch chain q =
  Chain.check_config chain q;
  ensure_compiled scratch chain;
  let n = Chain.dof chain in
  let pre = scratch.pre and rev = scratch.revolute in
  Mat4.blit (Chain.base chain) scratch.acc;
  for i = 0 to n - 1 do
    let b = 5 * i in
    let ca = Array.unsafe_get pre b
    and sa = Array.unsafe_get pre (b + 1)
    and a = Array.unsafe_get pre (b + 2)
    and d0 = Array.unsafe_get pre (b + 3)
    and t0 = Array.unsafe_get pre (b + 4) in
    let qi = Array.unsafe_get q i in
    let is_rev = Array.unsafe_get rev i in
    let theta = if is_rev then t0 +. qi else t0 in
    let d = if is_rev then d0 else d0 +. qi in
    let ct = cos theta and st = sin theta in
    (* DH matrix entries that feed more than one row (same products, same
       order as [Dh.transform_into] builds them) *)
    let m01 = -.st *. ca
    and m02 = st *. sa
    and m03 = a *. ct
    and m11 = ct *. ca
    and m12 = -.ct *. sa
    and m13 = a *. st in
    let acc = scratch.acc and dst = scratch.tmp in
    for row = 0 to 2 do
      let base = row * 4 in
      let a0 = Array.unsafe_get acc base
      and a1 = Array.unsafe_get acc (base + 1)
      and a2 = Array.unsafe_get acc (base + 2)
      and a3 = Array.unsafe_get acc (base + 3) in
      Array.unsafe_set dst base ((a0 *. ct) +. (a1 *. st));
      Array.unsafe_set dst (base + 1) ((a0 *. m01) +. (a1 *. m11) +. (a2 *. sa));
      Array.unsafe_set dst (base + 2) ((a0 *. m02) +. (a1 *. m12) +. (a2 *. ca));
      Array.unsafe_set dst (base + 3)
        ((a0 *. m03) +. (a1 *. m13) +. (a2 *. d) +. a3)
    done;
    dst.(12) <- 0.;
    dst.(13) <- 0.;
    dst.(14) <- 0.;
    dst.(15) <- 1.;
    let swap = scratch.acc in
    scratch.acc <- scratch.tmp;
    scratch.tmp <- swap
  done;
  Mat4.mul_affine_into ~dst:scratch.tmp scratch.acc (Chain.tool chain);
  let swap = scratch.acc in
  scratch.acc <- scratch.tmp;
  scratch.tmp <- swap

let end_transform scratch = scratch.acc

let position_into ~scratch ~dst chain q =
  if Array.length dst <> 3 then invalid_arg "Fk.position_into: dst not length 3";
  run ~scratch chain q;
  let m = scratch.acc in
  dst.(0) <- m.(3);
  dst.(1) <- m.(7);
  dst.(2) <- m.(11)

(* Without an explicit scratch a fresh one is allocated: a shared global
   default would race under domain-parallel solving (Batch, Quick_ik's
   Parallel mode). *)
let position ?scratch chain q =
  let scratch = match scratch with Some s -> s | None -> make_scratch () in
  run ~scratch chain q;
  Mat4.position scratch.acc

let pose chain q =
  let scratch = make_scratch () in
  run ~scratch chain q;
  Mat4.copy scratch.acc

let frames_into ~scratch ~dst chain q =
  Chain.check_config chain q;
  let links = Chain.links chain in
  let n = Array.length links in
  if Array.length dst < n + 1 then invalid_arg "Fk.frames_into: dst too short";
  Mat4.blit (Chain.base chain) dst.(0);
  for i = 0 to n - 2 do
    let { Chain.joint; dh; _ } = links.(i) in
    Dh.transform_at ~dst:scratch.local dh joint.Joint.kind q i;
    Mat4.mul_affine_into ~dst:dst.(i + 1) dst.(i) scratch.local
  done;
  (* Last slot folds the tool in, so the final product detours through the
     ping-pong buffer rather than aliasing dst.(n) as source and target. *)
  let { Chain.joint; dh; _ } = links.(n - 1) in
  Dh.transform_at ~dst:scratch.local dh joint.Joint.kind q (n - 1);
  Mat4.mul_affine_into ~dst:scratch.tmp dst.(n - 1) scratch.local;
  Mat4.mul_affine_into ~dst:dst.(n) scratch.tmp (Chain.tool chain)

(* Exact-size check (not >=): Jacobian builders take the frame count from
   the array length, so a buffer left over from a larger chain would lie. *)
let ensure_frames scratch n =
  if Array.length scratch.frames_buf <> n + 1 then
    scratch.frames_buf <- Array.init (n + 1) (fun _ -> Array.make 16 0.);
  scratch.frames_buf

let frames ?scratch chain q =
  let n = Chain.dof chain in
  match scratch with
  | Some s ->
    let dst = ensure_frames s n in
    frames_into ~scratch:s ~dst chain q;
    dst
  | None ->
    let s = make_scratch () in
    let dst = Array.init (n + 1) (fun _ -> Array.make 16 0.) in
    frames_into ~scratch:s ~dst chain q;
    dst

(* ---- link-major multi-candidate position kernel -----------------------

   The speculative search only consumes each candidate's end-effector
   *position* (Algorithm 1 line 16), so evaluating candidates with the full
   pose product wastes over half the arithmetic and re-streams the compiled
   link constants once per candidate.  These kernels invert the loop nest:
   positions are folded tool→base as [p ← R·p + t] (the translation column
   of the DH product, built by right-association), so the outer loop walks
   the links exactly once, holds each link's five compiled constants in
   registers, and the inner loop streams the candidate positions through
   three contiguous planes of a flat SoA buffer ([x] at [0, stride),
   [y] at [stride, 2·stride), [z] at [2·stride, 3·stride)).  Per candidate
   per link this costs 2 trig + 15 flops against the pose fold's
   2 trig + 39, and the candidate configuration θ + α_k·Δθ is formed on
   the fly, so no per-candidate θ buffer exists at all.

   Association order: the pose kernels fold left-to-right from the base;
   these fold right-to-left from the tool.  Results therefore differ from
   [run] by ordinary reassociation rounding — bounded (and documented) in
   the differential suite — not bitwise.  Candidate evaluations are
   mutually independent, so any partition of [0, count) into ranges
   produces bit-identical positions and errors per candidate, which is
   what makes chunked parallel evaluation equal to sequential. *)

let precompile scratch chain = ensure_compiled scratch chain

(* Shared backward sweep: seeds every candidate with the tool translation,
   then folds links n-1..0.  [theta]/[dtheta]/[coeffs] are read-only;
   candidate state in [pos] is touched only inside [lo, hi), so concurrent
   sweeps over disjoint ranges of one buffer (sharing one *precompiled*
   scratch) do not race. *)
let sweep_links scratch chain ~theta ~dtheta ~coeffs ~pos ~stride ~lo ~hi =
  let n = Chain.dof chain in
  let pre = scratch.pre and rev = scratch.revolute in
  let tool = Chain.tool chain in
  let tx = Array.unsafe_get tool 3
  and ty = Array.unsafe_get tool 7
  and tz = Array.unsafe_get tool 11 in
  for k = lo to hi - 1 do
    Array.unsafe_set pos k tx;
    Array.unsafe_set pos (stride + k) ty;
    Array.unsafe_set pos ((2 * stride) + k) tz
  done;
  for i = n - 1 downto 0 do
    let b = 5 * i in
    let ca = Array.unsafe_get pre b
    and sa = Array.unsafe_get pre (b + 1)
    and a = Array.unsafe_get pre (b + 2)
    and d0 = Array.unsafe_get pre (b + 3)
    and t0 = Array.unsafe_get pre (b + 4) in
    let is_rev = Array.unsafe_get rev i in
    let th_i = Array.unsafe_get theta i
    and dt_i = Array.unsafe_get dtheta i in
    for k = lo to hi - 1 do
      (* same expression order as the candidate-θ materialization the pose
         path used: α_k·Δθᵢ + θᵢ *)
      let qk = (Array.unsafe_get coeffs k *. dt_i) +. th_i in
      let tv = if is_rev then t0 +. qk else t0 in
      let d = if is_rev then d0 else d0 +. qk in
      let ct = cos tv and st = sin tv in
      let x = Array.unsafe_get pos k
      and y = Array.unsafe_get pos (stride + k)
      and z = Array.unsafe_get pos ((2 * stride) + k) in
      (* p ← R·p + t for the DH matrix, factored through w = x + a and
         u = cα·y − sα·z (15 flops) *)
      let w = x +. a in
      let u = (ca *. y) -. (sa *. z) in
      Array.unsafe_set pos k ((ct *. w) -. (st *. u));
      Array.unsafe_set pos (stride + k) ((st *. w) +. (ct *. u));
      Array.unsafe_set pos ((2 * stride) + k) ((sa *. y) +. (ca *. z) +. d)
    done
  done

(* Row-plane variant of [sweep_links]: candidate [k]'s configuration is
   read directly from row [k] of a flat lane-major θ plane
   ([thetas.(k·tstride + i)], Megabatch layout) instead of being formed as
   θ + α_k·Δθ.  The per-link fold body is the one [sweep_links] runs; only
   the [qk] load differs.  Reading θ instead of computing [(0·0) + θ] can
   flip the sign of a zero angle, which [sin] preserves — but every
   downstream consumer squares the coordinates (the fused err2 write), so
   scores and argmin winners are bit-identical to the degenerate
   [sweep_links] call with zero Δθ and zero coefficients. *)
let sweep_rows scratch chain ~thetas ~tstride ~pos ~stride ~lo ~hi =
  let n = Chain.dof chain in
  let pre = scratch.pre and rev = scratch.revolute in
  let tool = Chain.tool chain in
  let tx = Array.unsafe_get tool 3
  and ty = Array.unsafe_get tool 7
  and tz = Array.unsafe_get tool 11 in
  for k = lo to hi - 1 do
    Array.unsafe_set pos k tx;
    Array.unsafe_set pos (stride + k) ty;
    Array.unsafe_set pos ((2 * stride) + k) tz
  done;
  for i = n - 1 downto 0 do
    let b = 5 * i in
    let ca = Array.unsafe_get pre b
    and sa = Array.unsafe_get pre (b + 1)
    and a = Array.unsafe_get pre (b + 2)
    and d0 = Array.unsafe_get pre (b + 3)
    and t0 = Array.unsafe_get pre (b + 4) in
    let is_rev = Array.unsafe_get rev i in
    for k = lo to hi - 1 do
      let qk = Array.unsafe_get thetas ((k * tstride) + i) in
      let tv = if is_rev then t0 +. qk else t0 in
      let d = if is_rev then d0 else d0 +. qk in
      let ct = cos tv and st = sin tv in
      let x = Array.unsafe_get pos k
      and y = Array.unsafe_get pos (stride + k)
      and z = Array.unsafe_get pos ((2 * stride) + k) in
      let w = x +. a in
      let u = (ca *. y) -. (sa *. z) in
      Array.unsafe_set pos k ((ct *. w) -. (st *. u));
      Array.unsafe_set pos (stride + k) ((st *. w) +. (ct *. u));
      Array.unsafe_set pos ((2 * stride) + k) ((sa *. y) +. (ca *. z) +. d)
    done
  done

let score_rows_into ~scratch ~pos ~err2 ~txs ~tys ~tzs chain ~thetas ~tstride
    ~stride ~lo ~hi =
  let n = Chain.dof chain in
  if tstride < n then
    invalid_arg "Fk.score_rows_into: tstride smaller than the chain dof";
  if lo < 0 || hi > stride then
    invalid_arg "Fk.score_rows_into: candidate range out of bounds";
  if hi > lo && Array.length thetas < ((hi - 1) * tstride) + n then
    invalid_arg "Fk.score_rows_into: theta plane shorter than the range";
  if Array.length pos < 3 * stride then
    invalid_arg "Fk.score_rows_into: pos shorter than 3*stride";
  if Array.length err2 < stride then
    invalid_arg "Fk.score_rows_into: err2 shorter than stride";
  if Array.length txs < hi || Array.length tys < hi || Array.length tzs < hi
  then invalid_arg "Fk.score_rows_into: target planes shorter than the range";
  ensure_compiled scratch chain;
  sweep_rows scratch chain ~thetas ~tstride ~pos ~stride ~lo ~hi;
  let base = Chain.base chain in
  let b0 = base.(0) and b1 = base.(1) and b2 = base.(2) and b3 = base.(3)
  and b4 = base.(4) and b5 = base.(5) and b6 = base.(6) and b7 = base.(7)
  and b8 = base.(8) and b9 = base.(9) and b10 = base.(10) and b11 = base.(11) in
  for k = lo to hi - 1 do
    let x = Array.unsafe_get pos k
    and y = Array.unsafe_get pos (stride + k)
    and z = Array.unsafe_get pos ((2 * stride) + k) in
    let fx = (b0 *. x) +. (b1 *. y) +. (b2 *. z) +. b3 in
    let fy = (b4 *. x) +. (b5 *. y) +. (b6 *. z) +. b7 in
    let fz = (b8 *. x) +. (b9 *. y) +. (b10 *. z) +. b11 in
    Array.unsafe_set pos k fx;
    Array.unsafe_set pos (stride + k) fy;
    Array.unsafe_set pos ((2 * stride) + k) fz;
    let dx = Array.unsafe_get txs k -. fx
    and dy = Array.unsafe_get tys k -. fy
    and dz = Array.unsafe_get tzs k -. fz in
    Array.unsafe_set err2 k (((dx *. dx) +. (dy *. dy)) +. (dz *. dz))
  done

let check_many_args name chain ~theta ~dtheta ~coeffs ~stride ~lo ~hi =
  let n = Chain.dof chain in
  if Array.length theta <> n then
    invalid_arg (name ^ ": theta does not match the chain dof");
  if Array.length dtheta <> n then
    invalid_arg (name ^ ": dtheta does not match the chain dof");
  if lo < 0 || hi > stride || Array.length coeffs < hi then
    invalid_arg (name ^ ": candidate range out of bounds")

let positions_many_into ~scratch ~dst chain ~theta ~dtheta ~coeffs ~count =
  if count <= 0 then
    invalid_arg "Fk.positions_many_into: count must be positive";
  check_many_args "Fk.positions_many_into" chain ~theta ~dtheta ~coeffs
    ~stride:count ~lo:0 ~hi:count;
  if Array.length dst < 3 * count then
    invalid_arg "Fk.positions_many_into: dst shorter than 3*count";
  ensure_compiled scratch chain;
  sweep_links scratch chain ~theta ~dtheta ~coeffs ~pos:dst ~stride:count
    ~lo:0 ~hi:count;
  let base = Chain.base chain in
  let b0 = base.(0) and b1 = base.(1) and b2 = base.(2) and b3 = base.(3)
  and b4 = base.(4) and b5 = base.(5) and b6 = base.(6) and b7 = base.(7)
  and b8 = base.(8) and b9 = base.(9) and b10 = base.(10) and b11 = base.(11) in
  for k = 0 to count - 1 do
    let x = Array.unsafe_get dst k
    and y = Array.unsafe_get dst (count + k)
    and z = Array.unsafe_get dst ((2 * count) + k) in
    Array.unsafe_set dst k ((b0 *. x) +. (b1 *. y) +. (b2 *. z) +. b3);
    Array.unsafe_set dst (count + k) ((b4 *. x) +. (b5 *. y) +. (b6 *. z) +. b7);
    Array.unsafe_set dst ((2 * count) + k)
      ((b8 *. x) +. (b9 *. y) +. (b10 *. z) +. b11)
  done

let speculate_range_into ~scratch ~pos ~err2 ~tx ~ty ~tz chain ~theta ~dtheta
    ~coeffs ~stride ~lo ~hi =
  check_many_args "Fk.speculate_range_into" chain ~theta ~dtheta ~coeffs
    ~stride ~lo ~hi;
  if Array.length pos < 3 * stride then
    invalid_arg "Fk.speculate_range_into: pos shorter than 3*stride";
  if Array.length err2 < stride then
    invalid_arg "Fk.speculate_range_into: err2 shorter than stride";
  ensure_compiled scratch chain;
  sweep_links scratch chain ~theta ~dtheta ~coeffs ~pos ~stride ~lo ~hi;
  let base = Chain.base chain in
  let b0 = base.(0) and b1 = base.(1) and b2 = base.(2) and b3 = base.(3)
  and b4 = base.(4) and b5 = base.(5) and b6 = base.(6) and b7 = base.(7)
  and b8 = base.(8) and b9 = base.(9) and b10 = base.(10) and b11 = base.(11) in
  for k = lo to hi - 1 do
    let x = Array.unsafe_get pos k
    and y = Array.unsafe_get pos (stride + k)
    and z = Array.unsafe_get pos ((2 * stride) + k) in
    let fx = (b0 *. x) +. (b1 *. y) +. (b2 *. z) +. b3 in
    let fy = (b4 *. x) +. (b5 *. y) +. (b6 *. z) +. b7 in
    let fz = (b8 *. x) +. (b9 *. y) +. (b10 *. z) +. b11 in
    Array.unsafe_set pos k fx;
    Array.unsafe_set pos (stride + k) fy;
    Array.unsafe_set pos ((2 * stride) + k) fz;
    let dx = tx -. fx and dy = ty -. fy and dz = tz -. fz in
    (* squared error straight out of the base fold: the argmin scan needs
       no per-candidate sqrt (sqrt is monotone) *)
    Array.unsafe_set err2 k (((dx *. dx) +. (dy *. dy)) +. (dz *. dz))
  done

(* One 4×4 matrix product is 64 multiplies + 48 adds = 112 flops; building
   a DH local transform costs 4 trigs + 2 multiplies, counted as 10.  The
   chain does [dof] products plus one for the tool.  Kept at full 4×4
   counting deliberately: it models the accelerator's FKU datapath, not the
   host's affine shortcut. *)
let flops_per_position dof = (dof + 1) * 112 + (dof * 10)
