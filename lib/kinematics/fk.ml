open Dadu_linalg

type scratch = { mutable acc : Mat4.t; mutable tmp : Mat4.t; local : Mat4.t }

let make_scratch () =
  { acc = Mat4.identity (); tmp = Mat4.identity (); local = Mat4.identity () }

(* Folds the chain product left-to-right, ping-ponging between the two
   accumulator buffers so nothing is allocated. *)
let run_chain scratch chain q =
  Chain.check_config chain q;
  let links = Chain.links chain in
  Array.blit (Chain.base chain) 0 scratch.acc 0 16;
  for i = 0 to Array.length links - 1 do
    let { Chain.joint; dh; _ } = links.(i) in
    Dh.transform_into ~dst:scratch.local dh joint.Joint.kind q.(i);
    Mat4.mul_into ~dst:scratch.tmp scratch.acc scratch.local;
    let swap = scratch.acc in
    scratch.acc <- scratch.tmp;
    scratch.tmp <- swap
  done;
  Mat4.mul_into ~dst:scratch.tmp scratch.acc (Chain.tool chain);
  let swap = scratch.acc in
  scratch.acc <- scratch.tmp;
  scratch.tmp <- swap

(* Without an explicit scratch a fresh one is allocated: a shared global
   default would race under domain-parallel solving (Batch, Quick_ik's
   Parallel mode). *)
let position ?scratch chain q =
  let scratch = match scratch with Some s -> s | None -> make_scratch () in
  run_chain scratch chain q;
  Mat4.position scratch.acc

let pose chain q =
  let scratch = make_scratch () in
  run_chain scratch chain q;
  Mat4.copy scratch.acc

let frames chain q =
  Chain.check_config chain q;
  let links = Chain.links chain in
  let n = Array.length links in
  let result = Array.make (n + 1) (Mat4.identity ()) in
  result.(0) <- Mat4.copy (Chain.base chain);
  let local = Mat4.identity () in
  for i = 0 to n - 1 do
    let { Chain.joint; dh; _ } = links.(i) in
    Dh.transform_into ~dst:local dh joint.Joint.kind q.(i);
    let next = Array.make 16 0. in
    Mat4.mul_into ~dst:next result.(i) local;
    result.(i + 1) <- next
  done;
  result.(n) <- Mat4.mul result.(n) (Chain.tool chain);
  result

(* One 4×4 matrix product is 64 multiplies + 48 adds = 112 flops; building
   a DH local transform costs 4 trigs + 2 multiplies, counted as 10.  The
   chain does [dof] products plus one for the tool. *)
let flops_per_position dof = (dof + 1) * 112 + (dof * 10)
