open Dadu_linalg

type scratch = {
  mutable acc : Mat4.t;
  mutable tmp : Mat4.t;
  local : Mat4.t;
  mutable frames_buf : Mat4.t array;
  (* compiled link constants for the chain last seen by [run]: 5 floats
     per link [cos α; sin α; a; d; θ₀] plus a revolute flag *)
  mutable pre : float array;
  mutable revolute : bool array;
  mutable compiled_for : Chain.t option;
}

let make_scratch ?(dof = 0) () =
  {
    acc = Mat4.identity ();
    tmp = Mat4.identity ();
    local = Mat4.identity ();
    frames_buf =
      (if dof > 0 then Array.init (dof + 1) (fun _ -> Array.make 16 0.)
       else [||]);
    pre = [||];
    revolute = [||];
    compiled_for = None;
  }

(* The link twist never changes, so cos α / sin α (half the trig of a
   naive per-link transform build) are computed once per (scratch, chain)
   pairing instead of once per link per FK evaluation. *)
let compile scratch chain =
  let links = Chain.links chain in
  let n = Array.length links in
  if Array.length scratch.pre < 5 * n then begin
    scratch.pre <- Array.make (5 * n) 0.;
    scratch.revolute <- Array.make n false
  end;
  let pre = scratch.pre and rev = scratch.revolute in
  for i = 0 to n - 1 do
    let { Chain.joint; dh; _ } = links.(i) in
    let b = 5 * i in
    pre.(b) <- cos dh.Dh.alpha;
    pre.(b + 1) <- sin dh.Dh.alpha;
    pre.(b + 2) <- dh.Dh.a;
    pre.(b + 3) <- dh.Dh.d;
    pre.(b + 4) <- dh.Dh.theta;
    rev.(i) <- (match joint.Joint.kind with
      | Joint.Revolute -> true
      | Joint.Prismatic -> false)
  done;
  scratch.compiled_for <- Some chain

let ensure_compiled scratch chain =
  match scratch.compiled_for with
  | Some c when c == chain -> ()
  | Some _ | None -> compile scratch chain

(* Folds the chain product left-to-right, ping-ponging between the two
   accumulator buffers so nothing is allocated.  Each joint's DH transform
   is folded into the running product directly — its matrix is never
   materialized — and terms against the transform's structural zeros are
   skipped (the multiply does 33 flops instead of the general 64 or the
   affine 36).  Product and association order otherwise match
   [Mat4.mul_affine_into] of [Dh.transform_at], so results agree to the
   sign of zero. *)
let run ~scratch chain q =
  Chain.check_config chain q;
  ensure_compiled scratch chain;
  let n = Chain.dof chain in
  let pre = scratch.pre and rev = scratch.revolute in
  Mat4.blit (Chain.base chain) scratch.acc;
  for i = 0 to n - 1 do
    let b = 5 * i in
    let ca = Array.unsafe_get pre b
    and sa = Array.unsafe_get pre (b + 1)
    and a = Array.unsafe_get pre (b + 2)
    and d0 = Array.unsafe_get pre (b + 3)
    and t0 = Array.unsafe_get pre (b + 4) in
    let qi = Array.unsafe_get q i in
    let is_rev = Array.unsafe_get rev i in
    let theta = if is_rev then t0 +. qi else t0 in
    let d = if is_rev then d0 else d0 +. qi in
    let ct = cos theta and st = sin theta in
    (* DH matrix entries that feed more than one row (same products, same
       order as [Dh.transform_into] builds them) *)
    let m01 = -.st *. ca
    and m02 = st *. sa
    and m03 = a *. ct
    and m11 = ct *. ca
    and m12 = -.ct *. sa
    and m13 = a *. st in
    let acc = scratch.acc and dst = scratch.tmp in
    for row = 0 to 2 do
      let base = row * 4 in
      let a0 = Array.unsafe_get acc base
      and a1 = Array.unsafe_get acc (base + 1)
      and a2 = Array.unsafe_get acc (base + 2)
      and a3 = Array.unsafe_get acc (base + 3) in
      Array.unsafe_set dst base ((a0 *. ct) +. (a1 *. st));
      Array.unsafe_set dst (base + 1) ((a0 *. m01) +. (a1 *. m11) +. (a2 *. sa));
      Array.unsafe_set dst (base + 2) ((a0 *. m02) +. (a1 *. m12) +. (a2 *. ca));
      Array.unsafe_set dst (base + 3)
        ((a0 *. m03) +. (a1 *. m13) +. (a2 *. d) +. a3)
    done;
    dst.(12) <- 0.;
    dst.(13) <- 0.;
    dst.(14) <- 0.;
    dst.(15) <- 1.;
    let swap = scratch.acc in
    scratch.acc <- scratch.tmp;
    scratch.tmp <- swap
  done;
  Mat4.mul_affine_into ~dst:scratch.tmp scratch.acc (Chain.tool chain);
  let swap = scratch.acc in
  scratch.acc <- scratch.tmp;
  scratch.tmp <- swap

let end_transform scratch = scratch.acc

let position_into ~scratch ~dst chain q =
  if Array.length dst <> 3 then invalid_arg "Fk.position_into: dst not length 3";
  run ~scratch chain q;
  let m = scratch.acc in
  dst.(0) <- m.(3);
  dst.(1) <- m.(7);
  dst.(2) <- m.(11)

(* Without an explicit scratch a fresh one is allocated: a shared global
   default would race under domain-parallel solving (Batch, Quick_ik's
   Parallel mode). *)
let position ?scratch chain q =
  let scratch = match scratch with Some s -> s | None -> make_scratch () in
  run ~scratch chain q;
  Mat4.position scratch.acc

let pose chain q =
  let scratch = make_scratch () in
  run ~scratch chain q;
  Mat4.copy scratch.acc

let frames_into ~scratch ~dst chain q =
  Chain.check_config chain q;
  let links = Chain.links chain in
  let n = Array.length links in
  if Array.length dst < n + 1 then invalid_arg "Fk.frames_into: dst too short";
  Mat4.blit (Chain.base chain) dst.(0);
  for i = 0 to n - 2 do
    let { Chain.joint; dh; _ } = links.(i) in
    Dh.transform_at ~dst:scratch.local dh joint.Joint.kind q i;
    Mat4.mul_affine_into ~dst:dst.(i + 1) dst.(i) scratch.local
  done;
  (* Last slot folds the tool in, so the final product detours through the
     ping-pong buffer rather than aliasing dst.(n) as source and target. *)
  let { Chain.joint; dh; _ } = links.(n - 1) in
  Dh.transform_at ~dst:scratch.local dh joint.Joint.kind q (n - 1);
  Mat4.mul_affine_into ~dst:scratch.tmp dst.(n - 1) scratch.local;
  Mat4.mul_affine_into ~dst:dst.(n) scratch.tmp (Chain.tool chain)

(* Exact-size check (not >=): Jacobian builders take the frame count from
   the array length, so a buffer left over from a larger chain would lie. *)
let ensure_frames scratch n =
  if Array.length scratch.frames_buf <> n + 1 then
    scratch.frames_buf <- Array.init (n + 1) (fun _ -> Array.make 16 0.);
  scratch.frames_buf

let frames ?scratch chain q =
  let n = Chain.dof chain in
  match scratch with
  | Some s ->
    let dst = ensure_frames s n in
    frames_into ~scratch:s ~dst chain q;
    dst
  | None ->
    let s = make_scratch () in
    let dst = Array.init (n + 1) (fun _ -> Array.make 16 0.) in
    frames_into ~scratch:s ~dst chain q;
    dst

(* One 4×4 matrix product is 64 multiplies + 48 adds = 112 flops; building
   a DH local transform costs 4 trigs + 2 multiplies, counted as 10.  The
   chain does [dof] products plus one for the tool.  Kept at full 4×4
   counting deliberately: it models the accelerator's FKU datapath, not the
   host's affine shortcut. *)
let flops_per_position dof = (dof + 1) * 112 + (dof * 10)
