(** Manipulator factories.

    Includes the evaluation chains of the paper (12/25/50/75/100 DOF;
    geometry unspecified there, so we use spatial serial revolute chains
    with unit total reach — see DESIGN.md §2) and a few named robots for
    the examples. *)

val planar : ?name:string -> dof:int -> reach:float -> unit -> Chain.t
(** All-revolute chain in the xy-plane, equal link lengths summing to
    [reach]. *)

val spatial :
  ?name:string -> ?twist_deg:float -> dof:int -> reach:float -> unit -> Chain.t
(** All-revolute chain with link twists alternating [+twist_deg]/[−twist_deg]
    (default 90°), equal link lengths summing to [reach]; any non-zero twist
    gives every joint authority over all three coordinates.  Small twists
    make the out-of-plane direction ill-conditioned — which is what makes
    the transpose method slow. *)

val random : Dadu_util.Rng.t -> ?name:string -> dof:int -> reach:float -> unit -> Chain.t
(** Random link lengths (normalized to [reach]) and twists drawn from
    {0, ±90°, ±45°}; all revolute.  Deterministic in the generator. *)

val eval_chain : dof:int -> Chain.t
(** The chain used in all paper-reproduction experiments:
    [spatial ~twist_deg:10.0] with 1 m links ([reach = dof] meters).  The
    paper does not publish its manipulators' geometry; this choice
    reproduces the paper's iteration-count regime — JT-Serial in the
    thousands of iterations (often hitting the 10 k cap), Quick-IK two
    orders of magnitude lower, pseudoinverse lowest — while keeping the
    position task fully 3-D.  See DESIGN.md §2 and EXPERIMENTS.md. *)

val eval_dofs : int list
(** [[12; 25; 50; 75; 100]] — the paper's DOF sweep. *)

val arm_6dof : unit -> Chain.t
(** Elbow manipulator with spherical wrist (KUKA-KR-class geometry),
    realistic joint limits. *)

val arm_7dof : unit -> Chain.t
(** Redundant 7-DOF arm (humanoid-arm-class geometry), realistic joint
    limits. *)

val snake : dof:int -> Chain.t
(** High-DOF snake/hyper-redundant robot: spatial chain with ±120° joint
    limits; the 100-DOF headline case of the paper's abstract. *)

val scara : unit -> Chain.t
(** 4-DOF SCARA (RRPR) — exercises the prismatic-joint code paths. *)
