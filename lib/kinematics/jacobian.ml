open Dadu_linalg

(* Allocation-free build: every float stays in a local accumulator and the
   column goes straight into [dst.data].  The arithmetic (subtraction then
   cross, component order) matches the Vec3-based formulation exactly, so
   the result is bit-identical to the historical allocating path. *)
let position_jacobian_into ~dst chain frames =
  let n = Chain.dof chain in
  if Array.length frames <> n + 1 then
    invalid_arg "Jacobian.position_jacobian_into: wrong frame count";
  (* field reads, not Mat.dims: the tuple it returns would be this
     function's only allocation *)
  if dst.Mat.rows <> 3 || dst.Mat.cols <> n then
    invalid_arg "Jacobian.position_jacobian_into: dst is not 3xdof";
  let data = dst.Mat.data in
  let m_end = frames.(n) in
  let ex = m_end.(3) and ey = m_end.(7) and ez = m_end.(11) in
  for i = 0 to n - 1 do
    let { Chain.joint; _ } = Chain.link chain i in
    let m = frames.(i) in
    let zx = m.(2) and zy = m.(6) and zz = m.(10) in
    match joint.Joint.kind with
    | Joint.Revolute ->
      let dx = ex -. m.(3) and dy = ey -. m.(7) and dz = ez -. m.(11) in
      data.(i) <- (zy *. dz) -. (zz *. dy);
      data.(n + i) <- (zz *. dx) -. (zx *. dz);
      data.((2 * n) + i) <- (zx *. dy) -. (zy *. dx)
    | Joint.Prismatic ->
      data.(i) <- zx;
      data.(n + i) <- zy;
      data.((2 * n) + i) <- zz
  done

let position_jacobian_of_frames chain frames =
  let j = Mat.create 3 (Chain.dof chain) in
  position_jacobian_into ~dst:j chain frames;
  j

let position_jacobian chain q = position_jacobian_of_frames chain (Fk.frames chain q)

let full_jacobian chain q =
  let n = Chain.dof chain in
  let frames = Fk.frames chain q in
  let p_end = Mat4.position frames.(n) in
  let j = Mat.create 6 n in
  for i = 0 to n - 1 do
    let { Chain.joint; _ } = Chain.link chain i in
    let z = Mat4.z_axis frames.(i) in
    let linear, angular =
      match joint.Joint.kind with
      | Joint.Revolute ->
        (Vec3.cross z (Vec3.sub p_end (Mat4.position frames.(i))), z)
      | Joint.Prismatic -> (z, Vec3.zero)
    in
    Mat.set j 0 i linear.Vec3.x;
    Mat.set j 1 i linear.Vec3.y;
    Mat.set j 2 i linear.Vec3.z;
    Mat.set j 3 i angular.Vec3.x;
    Mat.set j 4 i angular.Vec3.y;
    Mat.set j 5 i angular.Vec3.z
  done;
  j

let numerical_position_jacobian ?(eps = 1e-6) chain q =
  let n = Chain.dof chain in
  let j = Mat.create 3 n in
  let scratch = Fk.make_scratch () in
  for i = 0 to n - 1 do
    let qp = Vec.copy q and qm = Vec.copy q in
    qp.(i) <- qp.(i) +. eps;
    qm.(i) <- qm.(i) -. eps;
    let fp = Fk.position ~scratch chain qp in
    let fm = Fk.position ~scratch chain qm in
    let d = Vec3.scale (1. /. (2. *. eps)) (Vec3.sub fp fm) in
    Mat.set j 0 i d.Vec3.x;
    Mat.set j 1 i d.Vec3.y;
    Mat.set j 2 i d.Vec3.z
  done;
  j

(* Frames pass ≈ FK cost; per column: one cross product (9) plus one
   subtraction (3). *)
let flops dof = Fk.flops_per_position dof + (dof * 12)
