open Dadu_linalg

let position_jacobian_of_frames chain frames =
  let n = Chain.dof chain in
  if Array.length frames <> n + 1 then
    invalid_arg "Jacobian.position_jacobian_of_frames: wrong frame count";
  let p_end = Mat4.position frames.(n) in
  let j = Mat.create 3 n in
  for i = 0 to n - 1 do
    let { Chain.joint; _ } = Chain.link chain i in
    let z = Mat4.z_axis frames.(i) in
    let column =
      match joint.Joint.kind with
      | Joint.Revolute -> Vec3.cross z (Vec3.sub p_end (Mat4.position frames.(i)))
      | Joint.Prismatic -> z
    in
    Mat.set j 0 i column.Vec3.x;
    Mat.set j 1 i column.Vec3.y;
    Mat.set j 2 i column.Vec3.z
  done;
  j

let position_jacobian chain q = position_jacobian_of_frames chain (Fk.frames chain q)

let full_jacobian chain q =
  let n = Chain.dof chain in
  let frames = Fk.frames chain q in
  let p_end = Mat4.position frames.(n) in
  let j = Mat.create 6 n in
  for i = 0 to n - 1 do
    let { Chain.joint; _ } = Chain.link chain i in
    let z = Mat4.z_axis frames.(i) in
    let linear, angular =
      match joint.Joint.kind with
      | Joint.Revolute ->
        (Vec3.cross z (Vec3.sub p_end (Mat4.position frames.(i))), z)
      | Joint.Prismatic -> (z, Vec3.zero)
    in
    Mat.set j 0 i linear.Vec3.x;
    Mat.set j 1 i linear.Vec3.y;
    Mat.set j 2 i linear.Vec3.z;
    Mat.set j 3 i angular.Vec3.x;
    Mat.set j 4 i angular.Vec3.y;
    Mat.set j 5 i angular.Vec3.z
  done;
  j

let numerical_position_jacobian ?(eps = 1e-6) chain q =
  let n = Chain.dof chain in
  let j = Mat.create 3 n in
  let scratch = Fk.make_scratch () in
  for i = 0 to n - 1 do
    let qp = Vec.copy q and qm = Vec.copy q in
    qp.(i) <- qp.(i) +. eps;
    qm.(i) <- qm.(i) -. eps;
    let fp = Fk.position ~scratch chain qp in
    let fm = Fk.position ~scratch chain qm in
    let d = Vec3.scale (1. /. (2. *. eps)) (Vec3.sub fp fm) in
    Mat.set j 0 i d.Vec3.x;
    Mat.set j 1 i d.Vec3.y;
    Mat.set j 2 i d.Vec3.z
  done;
  j

(* Frames pass ≈ FK cost; per column: one cross product (9) plus one
   subtraction (3). *)
let flops dof = Fk.flops_per_position dof + (dof * 12)
