open Dadu_linalg

(** Forward simulation of chain dynamics.

    Integrates [q̈ = FD(q, q̇, τ)] with classical Runge–Kutta 4, driving the
    torques from a user controller each step — the plant model a
    computed-torque or PD controller is tested against. *)

type state = { time : float; q : Vec.t; qd : Vec.t }

type controller = state -> Vec.t
(** Maps the current state to joint torques (dimension = DOF). *)

val zero_torque : controller
(** Free (passive) dynamics — useful for energy-conservation checks. *)

val pd :
  ?gravity_compensation:Dynamics.model -> kp:float -> kd:float ->
  target:(float -> Vec.t) -> unit -> controller
(** Joint-space PD tracking of a reference trajectory [target t]:
    [τ = k_p·(q_ref − q) − k_d·q̇ (+ G(q))].  Passing the model as
    [gravity_compensation] adds the exact gravity feed-forward — the
    difference the computed-torque example demonstrates. *)

val step : Dynamics.model -> controller -> dt:float -> state -> state
(** One RK4 step (torque held constant across the substeps, as a
    zero-order-hold controller would). *)

val simulate :
  Dynamics.model -> controller -> dt:float -> duration:float -> state -> state array
(** Trajectory of states at [t = 0, dt, 2·dt, …, duration], the initial
    state included. *)

val total_energy : Dynamics.model -> state -> float
(** Kinetic + potential at a state. *)
