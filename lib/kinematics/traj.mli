open Dadu_linalg

(** Workspace trajectories for the tracking examples.

    A trajectory is a sampled sequence of end-effector positions; the
    trajectory example solves IK for each sample, warm-starting from the
    previous solution. *)

val line : from:Vec3.t -> to_:Vec3.t -> samples:int -> Vec3.t array
(** Inclusive endpoints; [samples >= 2]. *)

val circle :
  center:Vec3.t -> radius:float -> normal:Vec3.t -> samples:int -> Vec3.t array
(** Closed circle (last sample approaches the first); [normal] need not be
    unit length.  Raises [Invalid_argument] on a zero normal or
    non-positive radius. *)

val lissajous :
  center:Vec3.t ->
  amplitude:Vec3.t ->
  freq:int * int * int ->
  samples:int ->
  Vec3.t array
(** 3-D Lissajous figure: component [c] is
    [center.c + amplitude.c * sin(freq_c * t)] for [t] over one period. *)

val arc_length : Vec3.t array -> float
(** Sum of segment lengths. *)
