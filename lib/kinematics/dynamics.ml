open Dadu_linalg

type body = { mass : float; com : Vec3.t; inertia : Mat.t }

let point_mass mass com =
  if mass < 0. then invalid_arg "Dynamics.point_mass: negative mass";
  { mass; com; inertia = Mat.create 3 3 }

let rod ~mass ~length =
  if mass < 0. then invalid_arg "Dynamics.rod: negative mass";
  let i_transverse = mass *. length *. length /. 12. in
  let inertia = Mat.create 3 3 in
  Mat.set inertia 1 1 i_transverse;
  Mat.set inertia 2 2 i_transverse;
  { mass; com = Vec3.make (-.length /. 2.) 0. 0.; inertia }

type model = { chain : Chain.t; bodies : body array; gravity : Vec3.t }

let default_gravity = Vec3.make 0. 0. (-9.81)

let model ?(gravity = default_gravity) chain bodies =
  if Array.length bodies <> Chain.dof chain then
    invalid_arg "Dynamics.model: one body per link required";
  Array.iter
    (fun b -> if b.mass < 0. then invalid_arg "Dynamics.model: negative mass")
    bodies;
  { chain; bodies; gravity }

let uniform_rods ?gravity ?(total_mass = 10.) chain =
  let links = Chain.links chain in
  let lengths = Array.map (fun l -> Float.abs l.Chain.dh.Dh.a) links in
  let total_length = Array.fold_left ( +. ) 0. lengths in
  let bodies =
    Array.map
      (fun length ->
        let mass =
          if total_length > 0. then total_mass *. length /. total_length
          else total_mass /. float_of_int (Array.length links)
        in
        if length > 0. then rod ~mass ~length else point_mass mass Vec3.zero)
      lengths
  in
  model ?gravity chain bodies

(* world-frame inertia: R·I·Rᵀ *)
let world_inertia (r : Rot.t) inertia =
  let rm = Mat.init 3 3 (fun i j -> Rot.get r i j) in
  Mat.mul rm (Mat.mul inertia (Mat.transpose rm))

(* Per-link world-frame state computed by the outward pass. *)
type link_state = {
  omega : Vec3.t;  (** angular velocity of the link *)
  omega_dot : Vec3.t;
  v_origin : Vec3.t;  (** velocity of the link frame origin *)
  a_origin : Vec3.t;  (** acceleration of the link frame origin (gravity folded in) *)
  com_world : Vec3.t;
  v_com : Vec3.t;
  a_com : Vec3.t;
}

let outward_pass { chain; bodies; gravity } ~q ~qd ~qdd =
  Chain.check_config chain q;
  Chain.check_config chain qd;
  Chain.check_config chain qdd;
  let n = Chain.dof chain in
  let frames = Fk.frames chain q in
  let states = Array.make n None in
  (* base: stationary; the −g base acceleration trick folds gravity into
     every inertial force *)
  let omega = ref Vec3.zero in
  let omega_dot = ref Vec3.zero in
  let v = ref Vec3.zero in
  let a = ref (Vec3.neg gravity) in
  for i = 0 to n - 1 do
    let { Chain.joint; _ } = Chain.link chain i in
    let axis = Mat4.z_axis frames.(i) in
    let o_parent = Mat4.position frames.(i) in
    let o_child = Mat4.position frames.(i + 1) in
    let r = Vec3.sub o_child o_parent in
    let omega_parent = !omega and omega_dot_parent = !omega_dot in
    (match joint.Joint.kind with
    | Joint.Revolute ->
      omega := Vec3.add omega_parent (Vec3.scale qd.(i) axis);
      omega_dot :=
        Vec3.add omega_dot_parent
          (Vec3.add (Vec3.scale qdd.(i) axis)
             (Vec3.scale qd.(i) (Vec3.cross omega_parent axis)));
      (* origin of the child frame rides on the parent body extended by r *)
      v := Vec3.add !v (Vec3.cross !omega r);
      a :=
        Vec3.add !a
          (Vec3.add (Vec3.cross !omega_dot r)
             (Vec3.cross !omega (Vec3.cross !omega r)))
    | Joint.Prismatic ->
      (* axis fixed in the parent link; sliding velocity along it *)
      let v_rel = Vec3.scale qd.(i) axis in
      v := Vec3.add !v (Vec3.add (Vec3.cross !omega r) v_rel);
      a :=
        Vec3.add !a
          (Vec3.add
             (Vec3.add (Vec3.cross !omega_dot r)
                (Vec3.cross !omega (Vec3.cross !omega r)))
             (Vec3.add (Vec3.scale qdd.(i) axis)
                (Vec3.scale 2. (Vec3.cross !omega v_rel)))));
    let com_world = Mat4.transform_point frames.(i + 1) bodies.(i).com in
    let rc = Vec3.sub com_world o_child in
    let v_com = Vec3.add !v (Vec3.cross !omega rc) in
    let a_com =
      Vec3.add !a
        (Vec3.add (Vec3.cross !omega_dot rc)
           (Vec3.cross !omega (Vec3.cross !omega rc)))
    in
    states.(i) <-
      Some
        {
          omega = !omega;
          omega_dot = !omega_dot;
          v_origin = !v;
          a_origin = !a;
          com_world;
          v_com;
          a_com;
        }
  done;
  ( frames,
    Array.map
      (function Some s -> s | None -> assert false)
      states )

let inverse_dynamics ({ chain; bodies; _ } as m) ~q ~qd ~qdd =
  let n = Chain.dof chain in
  let frames, states = outward_pass m ~q ~qd ~qdd in
  let tau = Vec.create n in
  (* inward pass: accumulate force/moment from the tip *)
  let f_child = ref Vec3.zero in
  let n_child = ref Vec3.zero in
  let o_child_origin = ref (Mat4.position frames.(n)) in
  for i = n - 1 downto 0 do
    let s = states.(i) in
    let b = bodies.(i) in
    let o_i = Mat4.position frames.(i) in
    let rot = Mat4.rotation frames.(i + 1) in
    let iw = world_inertia rot b.inertia in
    let f_inertial = Vec3.scale b.mass s.a_com in
    let n_inertial =
      Vec3.add
        (Vec3.of_vec (Mat.mul_vec iw (Vec3.to_vec s.omega_dot)))
        (Vec3.cross s.omega (Vec3.of_vec (Mat.mul_vec iw (Vec3.to_vec s.omega))))
    in
    let f = Vec3.add f_inertial !f_child in
    let moment =
      (* moments about the joint origin o_i *)
      Vec3.add
        (Vec3.add n_inertial !n_child)
        (Vec3.add
           (Vec3.cross (Vec3.sub s.com_world o_i) f_inertial)
           (Vec3.cross (Vec3.sub !o_child_origin o_i) !f_child))
    in
    let axis = Mat4.z_axis frames.(i) in
    let { Chain.joint; _ } = Chain.link chain i in
    tau.(i) <-
      (match joint.Joint.kind with
      | Joint.Revolute -> Vec3.dot axis moment
      | Joint.Prismatic -> Vec3.dot axis f);
    f_child := f;
    n_child := moment;
    o_child_origin := o_i
  done;
  tau

let gravity_torques m q =
  let n = Chain.dof m.chain in
  inverse_dynamics m ~q ~qd:(Vec.create n) ~qdd:(Vec.create n)

let kinetic_energy ({ chain; bodies; _ } as m) ~q ~qd =
  let n = Chain.dof chain in
  let frames, states = outward_pass m ~q ~qd ~qdd:(Vec.create n) in
  let total = ref 0. in
  for i = 0 to n - 1 do
    let s = states.(i) in
    let b = bodies.(i) in
    let rot = Mat4.rotation frames.(i + 1) in
    let iw = world_inertia rot b.inertia in
    let rotational =
      Vec3.dot s.omega (Vec3.of_vec (Mat.mul_vec iw (Vec3.to_vec s.omega)))
    in
    total := !total +. (0.5 *. b.mass *. Vec3.norm_sq s.v_com) +. (0.5 *. rotational)
  done;
  !total

let potential_energy { chain; bodies; gravity } q =
  let frames = Fk.frames chain q in
  let total = ref 0. in
  Array.iteri
    (fun i (b : body) ->
      let com_world = Mat4.transform_point frames.(i + 1) b.com in
      total := !total -. (b.mass *. Vec3.dot gravity com_world))
    bodies;
  !total

let gravity_effort m q = Vec.norm_sq (gravity_torques m q)

let bias_torques m ~q ~qd =
  inverse_dynamics m ~q ~qd ~qdd:(Vec.create (Chain.dof m.chain))

let mass_matrix m q =
  let n = Chain.dof m.chain in
  let zero = Vec.create n in
  let gravity_part = inverse_dynamics m ~q ~qd:zero ~qdd:zero in
  let mm = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Vec.create n in
    e.(j) <- 1.;
    let tau = inverse_dynamics m ~q ~qd:zero ~qdd:e in
    Mat.set_col mm j (Vec.sub tau gravity_part)
  done;
  mm

let forward_dynamics m ~q ~qd ~tau =
  Chain.check_config m.chain tau;
  let rhs = Vec.sub tau (bias_torques m ~q ~qd) in
  Cholesky.solve (mass_matrix m q) rhs
