open Dadu_linalg

type plane = Xy | Xz | Yz

type posture = { label : string; theta : Vec.t; color : string }

let palette = [| "#1f77b4"; "#d62728"; "#2ca02c"; "#9467bd"; "#ff7f0e"; "#8c564b" |]

let posture ?color ?(label = "posture") theta =
  let color =
    match color with
    | Some c -> c
    | None -> palette.(Hashtbl.hash label mod Array.length palette)
  in
  { label; theta; color }

let project plane (v : Vec3.t) =
  match plane with
  | Xy -> (v.Vec3.x, v.Vec3.y)
  | Xz -> (v.Vec3.x, v.Vec3.z)
  | Yz -> (v.Vec3.y, v.Vec3.z)

let chain_points chain theta =
  let frames = Fk.frames chain theta in
  Array.to_list (Array.map Mat4.position frames)

let render ?(width = 640) ?(height = 480) ?(plane = Xy) ?(targets = [])
    ?(obstacles = []) chain postures =
  if postures = [] then invalid_arg "Viz.render: no postures";
  let polylines =
    List.map (fun p -> (p, List.map (project plane) (chain_points chain p.theta))) postures
  in
  let target_points = List.map (project plane) targets in
  let obstacle_circles =
    List.map
      (fun { Obstacles.center; radius } -> (project plane center, radius))
      obstacles
  in
  (* view box fitted over everything (obstacle extents included) *)
  let xs =
    List.concat_map (fun (_, pts) -> List.map fst pts) polylines
    @ List.map fst target_points
    @ List.concat_map (fun ((x, _), r) -> [ x -. r; x +. r ]) obstacle_circles
  in
  let ys =
    List.concat_map (fun (_, pts) -> List.map snd pts) polylines
    @ List.map snd target_points
    @ List.concat_map (fun ((_, y), r) -> [ y -. r; y +. r ]) obstacle_circles
  in
  let min_l = List.fold_left Float.min infinity in
  let max_l = List.fold_left Float.max neg_infinity in
  let x0 = min_l xs and x1 = max_l xs and y0 = min_l ys and y1 = max_l ys in
  let span = Float.max 1e-6 (Float.max (x1 -. x0) (y1 -. y0)) in
  let margin = 0.1 *. span in
  let x0 = x0 -. margin and y0 = y0 -. margin in
  let extent = span +. (2. *. margin) in
  let scale = Float.min (float_of_int width) (float_of_int height) /. extent in
  (* SVG's y grows downward; flip it *)
  let px x = (x -. x0) *. scale in
  let py y = float_of_int height -. ((y -. y0) *. scale) in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\">\n"
       width height width height);
  Buffer.add_string buf "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";
  List.iter
    (fun ((x, y), r) ->
      Buffer.add_string buf
        (Printf.sprintf
           "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"%.1f\" fill=\"#cccccc\" \
            stroke=\"#888888\" class=\"obstacle\"/>\n"
           (px x) (py y) (r *. scale)))
    obstacle_circles;
  List.iteri
    (fun idx (p, pts) ->
      let path =
        String.concat " "
          (List.map (fun (x, y) -> Printf.sprintf "%.1f,%.1f" (px x) (py y)) pts)
      in
      Buffer.add_string buf
        (Printf.sprintf
           "<polyline points=\"%s\" fill=\"none\" stroke=\"%s\" stroke-width=\"2\" \
            class=\"posture\"/>\n"
           path p.color);
      List.iter
        (fun (x, y) ->
          Buffer.add_string buf
            (Printf.sprintf
               "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2.5\" fill=\"%s\" class=\"joint\"/>\n"
               (px x) (py y) p.color))
        pts;
      Buffer.add_string buf
        (Printf.sprintf "<text x=\"8\" y=\"%d\" fill=\"%s\" font-size=\"13\">%s</text>\n"
           (16 + (idx * 16))
           p.color p.label))
    polylines;
  List.iter
    (fun (x, y) ->
      let cx = px x and cy = py y in
      Buffer.add_string buf
        (Printf.sprintf
           "<path d=\"M %.1f %.1f L %.1f %.1f M %.1f %.1f L %.1f %.1f\" \
            stroke=\"black\" stroke-width=\"2\" class=\"target\"/>\n"
           (cx -. 5.) (cy -. 5.) (cx +. 5.) (cy +. 5.) (cx -. 5.) (cy +. 5.)
           (cx +. 5.) (cy -. 5.)))
    target_points;
  Buffer.add_string buf "</svg>\n";
  Buffer.contents buf

let write ?width ?height ?plane ?targets ?obstacles ~path chain postures =
  let svg = render ?width ?height ?plane ?targets ?obstacles chain postures in
  Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc svg)
