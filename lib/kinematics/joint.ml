type kind = Revolute | Prismatic

type t = { kind : kind; lower : float; upper : float }

let make kind lower upper =
  if lower > upper then invalid_arg "Joint: lower limit exceeds upper limit";
  { kind; lower; upper }

let revolute ?(lower = neg_infinity) ?(upper = infinity) () = make Revolute lower upper

let prismatic ?(lower = neg_infinity) ?(upper = infinity) () = make Prismatic lower upper

let unbounded t = t.lower = neg_infinity && t.upper = infinity

let clamp t q = Float.min t.upper (Float.max t.lower q)

let inside t q = q >= t.lower && q <= t.upper

let span t = t.upper -. t.lower

let pp ppf t =
  let kind = match t.kind with Revolute -> "revolute" | Prismatic -> "prismatic" in
  Format.fprintf ppf "%s[%g, %g]" kind t.lower t.upper
