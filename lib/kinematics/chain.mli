open Dadu_linalg

(** Serial kinematic chains (open-chain manipulators).

    A chain is an ordered array of links, each a DH description plus joint
    limits, with optional fixed base and tool transforms.  The 12–100-DOF
    manipulators of the paper's evaluation are values of this type. *)

type link = { name : string; joint : Joint.t; dh : Dh.t }

type t

val make : ?name:string -> ?base:Mat4.t -> ?tool:Mat4.t -> link array -> t
(** Raises [Invalid_argument] on an empty link array. *)

val name : t -> string

val dof : t -> int

val links : t -> link array
(** The underlying links (do not mutate). *)

val link : t -> int -> link

val base : t -> Mat4.t

val tool : t -> Mat4.t

val reach : t -> float
(** Conservative workspace radius: sum over links of
    [|a| + |d| + prismatic span], used for sanity checks and target
    scaling.  [infinity] if a prismatic joint is unbounded. *)

val clamp_config : t -> Vec.t -> Vec.t
(** Component-wise joint-limit clamp (fresh vector). *)

val config_inside : t -> Vec.t -> bool

val check_config : t -> Vec.t -> unit
(** Raises [Invalid_argument] if the vector length differs from [dof]. *)

val fingerprint : t -> int
(** Structural identity hash (FNV-1a over the IEEE-754 bits of every DH
    parameter, joint limit, and the base/tool transforms).  Excludes the
    chain name: geometrically identical chains fingerprint equal.  Two
    different robots with the same DOF count get different fingerprints
    with overwhelming probability — used to key seed caches and posture
    libraries per chain. *)

val pp : Format.formatter -> t -> unit
