open Dadu_linalg

type state = { time : float; q : Vec.t; qd : Vec.t }

type controller = state -> Vec.t

let zero_torque state = Vec.create (Vec.dim state.q)

let pd ?gravity_compensation ~kp ~kd ~target () state =
  let reference = target state.time in
  let feedback =
    Vec.init (Vec.dim state.q) (fun i ->
        (kp *. (reference.(i) -. state.q.(i))) -. (kd *. state.qd.(i)))
  in
  match gravity_compensation with
  | None -> feedback
  | Some model -> Vec.add feedback (Dynamics.gravity_torques model state.q)

(* One RK4 step on the first-order system (q, qd)' = (qd, FD(q, qd, τ)),
   with τ sampled once at the step start (zero-order hold). *)
let step model controller ~dt state =
  if dt <= 0. then invalid_arg "Simulation.step: dt must be positive";
  let tau = controller state in
  let deriv q qd = (qd, Dynamics.forward_dynamics model ~q ~qd ~tau) in
  let shift q qd (dq, dqd) h = (Vec.axpy h dq q, Vec.axpy h dqd qd) in
  let k1 = deriv state.q state.qd in
  let q2, qd2 = shift state.q state.qd k1 (dt /. 2.) in
  let k2 = deriv q2 qd2 in
  let q3, qd3 = shift state.q state.qd k2 (dt /. 2.) in
  let k3 = deriv q3 qd3 in
  let q4, qd4 = shift state.q state.qd k3 dt in
  let k4 = deriv q4 qd4 in
  let combine f1 f2 f3 f4 base =
    Vec.init (Vec.dim base) (fun i ->
        base.(i)
        +. (dt /. 6. *. (f1.(i) +. (2. *. f2.(i)) +. (2. *. f3.(i)) +. f4.(i))))
  in
  {
    time = state.time +. dt;
    q = combine (fst k1) (fst k2) (fst k3) (fst k4) state.q;
    qd = combine (snd k1) (snd k2) (snd k3) (snd k4) state.qd;
  }

let simulate model controller ~dt ~duration initial =
  if duration < 0. then invalid_arg "Simulation.simulate: negative duration";
  let ticks = int_of_float (Float.round (duration /. dt)) in
  let states = Array.make (ticks + 1) initial in
  for i = 1 to ticks do
    states.(i) <- step model controller ~dt states.(i - 1)
  done;
  states

let total_energy model state =
  Dynamics.kinetic_energy model ~q:state.q ~qd:state.qd
  +. Dynamics.potential_energy model state.q
