open Dadu_linalg

module Rng = Dadu_util.Rng

let random_joint_value rng (joint : Joint.t) =
  let lo, hi =
    if Joint.unbounded joint then begin
      match joint.Joint.kind with
      | Joint.Revolute -> (-.Float.pi, Float.pi)
      | Joint.Prismatic -> (-1., 1.)
    end
    else (joint.Joint.lower, joint.Joint.upper)
  in
  Rng.uniform rng lo hi

let random_config rng chain =
  Array.init (Chain.dof chain) (fun i ->
      random_joint_value rng (Chain.link chain i).Chain.joint)

let reachable rng chain = Fk.position chain (random_config rng chain)

let batch rng chain k = Array.init k (fun _ -> reachable rng chain)

let unreachable rng chain =
  let reach = Chain.reach chain in
  if not (Float.is_finite reach) then
    invalid_arg "Target.unreachable: chain has unbounded reach";
  let direction =
    Vec3.normalize
      (Vec3.make (Rng.gaussian rng) (Rng.gaussian rng) (Rng.gaussian rng))
  in
  Vec3.scale (1.5 *. Float.max reach 1e-6) direction
