open Dadu_linalg

(** Workspace and conditioning analysis.

    The convergence rate of Jacobian-transpose IK is governed by the
    conditioning of [J·Jᵀ] over the workspace — the very property the
    evaluation chains are chosen to stress (DESIGN.md §2).  This module
    quantifies it: Yoshikawa's manipulability measure, the task-space
    condition number, and Monte-Carlo workspace statistics. *)

val manipulability : Chain.t -> Vec.t -> float
(** Yoshikawa's measure [√det(J·Jᵀ)] for the position Jacobian: 0 at
    singular configurations, larger is better-conditioned. *)

val condition_number : Chain.t -> Vec.t -> float
(** [σ_max/σ_min] of the position Jacobian; [infinity] at singularities. *)

val ellipsoid : Chain.t -> Vec.t -> (Vec3.t * float) list
(** Principal axes of the velocity manipulability ellipsoid at a
    configuration: three (unit direction, semi-axis length) pairs in
    descending length order, from the eigenstructure of [J·Jᵀ] (the
    semi-axes are the singular values of [J]).  Long axes are directions
    the end effector moves easily; a vanishing axis is a singular
    direction. *)

type stats = {
  samples : int;
  reach_max : float;  (** largest end-effector distance observed *)
  reach_p50 : float;
  extent_min : Vec3.t;  (** axis-aligned bounding box of sampled positions *)
  extent_max : Vec3.t;
  manipulability : Dadu_util.Stats.summary;
  condition : Dadu_util.Stats.summary;
      (** condition numbers, capped at [condition_cap] so singular samples
          do not swamp the summary *)
  singular_fraction : float;
      (** fraction of samples with condition number above the cap *)
}

val condition_cap : float
(** 1e6. *)

val sample : ?samples:int -> Dadu_util.Rng.t -> Chain.t -> stats
(** Monte-Carlo over {!Target.random_config} (default 1000 samples). *)

val pp_stats : Format.formatter -> stats -> unit
