open Dadu_linalg

(** Sphere-obstacle scenes and chain clearance.

    Links are treated as line segments between consecutive frame origins;
    clearance is the smallest distance from any link to any obstacle
    surface (negative when penetrating).  The gradient of clearance feeds
    the nullspace machinery, so a redundant chain can keep reaching while
    its body stays clear — see the obstacle-avoidance example. *)

type sphere = { center : Vec3.t; radius : float }

val sphere : center:Vec3.t -> radius:float -> sphere
(** Raises [Invalid_argument] on a non-positive radius. *)

type scene = sphere list

val point_segment_distance : Vec3.t -> Vec3.t -> Vec3.t -> float
(** [point_segment_distance p a b]: distance from [p] to segment [ab]
    (degenerate segments allowed). *)

val segment_clearance : Vec3.t -> Vec3.t -> sphere -> float
(** Distance from segment [ab] to the sphere's surface; negative inside. *)

val clearance : scene -> Chain.t -> Vec.t -> float
(** Minimum surface distance over all links × obstacles; [infinity] for an
    empty scene. *)

val penetrates : scene -> Chain.t -> Vec.t -> bool
(** [clearance < 0]. *)

val clearance_gradient : ?eps:float -> scene -> Chain.t -> Vec.t -> Vec.t
(** Finite-difference gradient of {!clearance} with respect to the joint
    vector ([eps] defaults to 1e-5) — pass it (scaled) as a
    [Nullspace.Custom] objective to push the body away from obstacles. *)

val avoidance_objective : ?margin:float -> scene -> Chain.t -> Vec.t -> Vec.t
(** Gradient ascent on clearance, active only below [margin] (default
    0.1 m): zero once the chain is comfortably clear, unit-capped norm
    otherwise — shaped for use as a [Nullspace.Custom] objective. *)
