open Dadu_linalg

(** Joint-space trajectory generation.

    IK answers *where* the joints should be; a controller also needs a
    smooth *when*.  This module builds time-parameterized joint
    trajectories: quintic point-to-point motions (zero velocity and
    acceleration at both ends — the standard rest-to-rest profile) and
    piecewise-cubic interpolation through via points with
    finite-difference velocities, C¹-continuous.  Outputs plug directly
    into {!Simulation.pd} as reference trajectories. *)

type sample = {
  q : Vec.t;
  qd : Vec.t;
  qdd : Vec.t;
}

type trajectory = {
  duration : float;
  at : float -> sample;
      (** clamped: [at t] for [t < 0] is the start, for [t > duration] the
          end *)
}

val quintic : q0:Vec.t -> q1:Vec.t -> duration:float -> trajectory
(** Rest-to-rest: [q(0) = q0, q(T) = q1], zero velocity and acceleration
    at both ends.  Raises [Invalid_argument] on non-positive duration or
    dimension mismatch. *)

val via_points : (float * Vec.t) list -> trajectory
(** Piecewise cubic through timed waypoints [(t, q)]; times must be
    strictly increasing and start at 0.  Velocities at interior knots are
    central finite differences (Catmull-Rom style); the end knots are at
    rest.  Requires at least two points. *)

val max_speed : ?samples:int -> trajectory -> float
(** Largest [‖q̇‖∞] over a uniform sampling (default 200 samples). *)
