open Dadu_linalg

(** Denavit–Hartenberg link parameters (standard convention).

    Each link's frame-to-frame transform is
    [Rz(θ)·Tz(d)·Tx(a)·Rx(α)].  For a revolute joint the joint variable
    adds to [theta]; for a prismatic joint it adds to [d]. *)

type t = {
  a : float;  (** link length (along x) *)
  alpha : float;  (** link twist (about x) *)
  d : float;  (** link offset (along z); variable part for prismatic *)
  theta : float;  (** joint angle offset (about z); variable part for revolute *)
}

val make : ?a:float -> ?alpha:float -> ?d:float -> ?theta:float -> unit -> t
(** All parameters default to 0. *)

val transform : t -> Joint.kind -> float -> Mat4.t
(** [transform dh kind q] is the link transform with joint value [q]
    applied to the convention-appropriate parameter. *)

val transform_into : dst:Mat4.t -> t -> Joint.kind -> float -> unit
(** In-place version; note the float argument still boxes (2 minor words
    per call) when the joint value is not a compile-time constant. *)

val transform_at : dst:Mat4.t -> t -> Joint.kind -> Vec.t -> int -> unit
(** [transform_at ~dst dh kind q i] is [transform_into] with joint value
    [q.(i)], reading the float inside the callee so nothing boxes: the
    truly allocation-free FK hot-loop entry point. *)

val pp : Format.formatter -> t -> unit
