(** A plain-text robot description format (a minimal URDF stand-in).

    One declaration per line; [#] starts a comment.  Lengths are meters,
    angles are radians unless suffixed [deg].  Example:

    {v
    # a 3-DOF arm with a raised base and a tool offset
    chain demo-arm
    base translate 0 0 0.2
    joint shoulder revolute a=0.5 alpha=90deg limits=-170deg,170deg
    joint elbow revolute a=0.4
    joint quill prismatic limits=0,0.18
    tool translate 0 0 0.05
    v}

    [base] and [tool] lines may repeat; their transforms compose in file
    order.  Supported transforms: [translate x y z] and
    [rotate (x|y|z) angle]. *)

val parse : string -> (Chain.t, string) result
(** Parses a description from a string.  Errors carry the 1-based line
    number and what was expected. *)

val parse_file : string -> (Chain.t, string) result
(** Reads and parses a file; I/O failures are reported in the error. *)

val to_string : Chain.t -> string
(** Serializes a chain; [parse (to_string c)] reconstructs a chain with
    identical kinematics.  Base and tool transforms must be pure
    translations to round-trip exactly (rotation parts are emitted as a
    comment and dropped); all chains built by {!Robots} qualify. *)
