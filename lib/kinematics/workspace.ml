open Dadu_linalg
module Stats = Dadu_util.Stats
module Rng = Dadu_util.Rng

let singular_values chain q =
  let j = Jacobian.position_jacobian chain q in
  (Svd.decompose j).Svd.sigma

let manipulability chain q =
  let sigma = singular_values chain q in
  Array.fold_left (fun acc s -> acc *. s) 1. sigma

let condition_number chain q =
  let sigma = singular_values chain q in
  let n = Array.length sigma in
  if n = 0 then infinity
  else begin
    let smin = sigma.(n - 1) in
    if smin <= 0. then infinity else sigma.(0) /. smin
  end

let ellipsoid chain q =
  let j = Jacobian.position_jacobian chain q in
  let eig = Eigen.decompose (Mat.gram j) in
  List.init 3 (fun k ->
      let axis = Vec3.of_vec (Mat.col eig.Eigen.vectors k) in
      (axis, sqrt (Float.max 0. eig.Eigen.values.(k))))

type stats = {
  samples : int;
  reach_max : float;
  reach_p50 : float;
  extent_min : Vec3.t;
  extent_max : Vec3.t;
  manipulability : Stats.summary;
  condition : Stats.summary;
  singular_fraction : float;
}

let condition_cap = 1e6

let sample ?(samples = 1000) rng chain =
  if samples <= 0 then invalid_arg "Workspace.sample: samples must be positive";
  let distances = Array.make samples 0. in
  let manip = Array.make samples 0. in
  let cond = Array.make samples 0. in
  let singular = ref 0 in
  let lo = ref (Vec3.make infinity infinity infinity) in
  let hi = ref (Vec3.make neg_infinity neg_infinity neg_infinity) in
  for i = 0 to samples - 1 do
    let q = Target.random_config rng chain in
    let p = Fk.position chain q in
    distances.(i) <- Vec3.norm p;
    manip.(i) <- manipulability chain q;
    let c = condition_number chain q in
    if c > condition_cap then begin
      incr singular;
      cond.(i) <- condition_cap
    end
    else cond.(i) <- c;
    lo :=
      Vec3.make (Float.min !lo.Vec3.x p.Vec3.x) (Float.min !lo.Vec3.y p.Vec3.y)
        (Float.min !lo.Vec3.z p.Vec3.z);
    hi :=
      Vec3.make (Float.max !hi.Vec3.x p.Vec3.x) (Float.max !hi.Vec3.y p.Vec3.y)
        (Float.max !hi.Vec3.z p.Vec3.z)
  done;
  {
    samples;
    reach_max = Stats.max distances;
    reach_p50 = Stats.median distances;
    extent_min = !lo;
    extent_max = !hi;
    manipulability = Stats.summarize manip;
    condition = Stats.summarize cond;
    singular_fraction = float_of_int !singular /. float_of_int samples;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>%d samples@,reach: max %.3g, median %.3g@,bbox: %a .. %a@,manipulability: %a@,condition: %a@,singular fraction: %.1f%%@]"
    s.samples s.reach_max s.reach_p50 Vec3.pp s.extent_min Vec3.pp s.extent_max
    Stats.pp_summary s.manipulability Stats.pp_summary s.condition
    (100. *. s.singular_fraction)
