(** Umbrella entry point: every Dadu library under one name.

    [Dadu.Core.Quick_ik.solve], [Dadu.Accel.Ikacc.solve], ... — convenient
    for scripts and the toplevel; the individual [dadu_*] libraries remain
    available for finer-grained dependencies. *)

module Util = Dadu_util
module Linalg = Dadu_linalg
module Kinematics = Dadu_kinematics
module Core = Dadu_core
module Service = Dadu_service
module Accel = Dadu_accel
module Platforms = Dadu_platforms
module Experiments = Dadu_experiments
