(** Pseudoinverse IK via SVD (paper's "J⁻¹-SVD" baseline, §3).

    Newton-style update [Δθ = J⁺·e] with the Moore–Penrose pseudoinverse
    computed through a one-sided-Jacobi SVD each iteration — the method of
    the KDL solver in ROS that the paper benchmarks against.  Converges in
    few iterations but each iteration pays the (serial) SVD.
    [Ik.result.svd_sweeps] accumulates the Jacobi sweeps so the cost models
    can charge them. *)

val solve :
  ?rcond:float ->
  ?max_step:float ->
  ?on_iteration:(iter:int -> err:float -> unit) ->
  ?workspace:Workspace.t ->
  Ik.solver
(** [rcond] (default 1e-6) is the relative singular-value cutoff —
    effectively a numerical-damping knob near singular poses.  [max_step]
    (default [0.5]) caps [‖Δθ‖∞] per iteration; the linearization [Eq. 4]
    only holds locally, and an uncapped Newton step from a random start
    can diverge on deep chains.  Pass [infinity] to disable. *)
