open Dadu_linalg

(** Step-size selection for the Jacobian-transpose family (paper Eq. 8).

    Buss' near-optimal scalar minimizes [‖e − α·J·Jᵀ·e‖] exactly:
    [α = ⟨e, JJᵀe⟩ / ⟨JJᵀe, JJᵀe⟩]. *)

val buss : j:Mat.t -> e:Vec3.t -> dtheta_base:Vec.t -> float
(** [buss ~j ~e ~dtheta_base] with [dtheta_base = Jᵀ·e] already computed
    (every caller needs it anyway).  Returns 0 when [JJᵀe] is numerically
    zero (singular pose with [e] in the null space) — the update then
    leaves [θ] unchanged, exactly as the textbook method would. *)

val flops : int -> int
(** Flop count for a [dof]-column Jacobian (excludes computing
    [dtheta_base]). *)
