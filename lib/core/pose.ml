open Dadu_linalg
open Dadu_kinematics

type target = { position : Vec3.t; orientation : Rot.t }

let target_of_mat4 t = { position = Mat4.position t; orientation = Mat4.rotation t }

type problem = { chain : Chain.t; target : target; theta0 : Vec.t }

let problem ~chain ~target ~theta0 =
  Chain.check_config chain theta0;
  { chain; target; theta0 = Vec.copy theta0 }

let random_problem rng chain =
  let q = Target.random_config rng chain in
  let target = target_of_mat4 (Fk.pose chain q) in
  { chain; target; theta0 = Target.random_config rng chain }

type config = {
  position_accuracy : float;
  orientation_accuracy : float;
  rotation_weight : float;
  max_iterations : int;
}

let default_config =
  {
    position_accuracy = 1e-2;
    orientation_accuracy = 1e-2;
    rotation_weight = 0.5;
    max_iterations = 10_000;
  }

type status = Converged | Max_iterations

type result = {
  theta : Vec.t;
  position_error : float;
  orientation_error : float;
  iterations : int;
  speculations : int;
  status : status;
}

(* Rotation error as a rotation vector: axis·angle of R_target·R(θ)ᵀ, the
   rotation still needed to reach the target orientation. *)
let rotation_error_vec target_r current_r =
  let r_err = Rot.mul target_r (Rot.transpose current_r) in
  let axis, angle = Rot.to_axis_angle r_err in
  Vec3.scale angle axis

let twist_of_pose ~rotation_weight target pose =
  let e_pos = Vec3.sub target.position (Mat4.position pose) in
  let e_rot = rotation_error_vec target.orientation (Mat4.rotation pose) in
  [|
    e_pos.Vec3.x;
    e_pos.Vec3.y;
    e_pos.Vec3.z;
    rotation_weight *. e_rot.Vec3.x;
    rotation_weight *. e_rot.Vec3.y;
    rotation_weight *. e_rot.Vec3.z;
  |]

let error_twist ~rotation_weight chain target theta =
  twist_of_pose ~rotation_weight target (Fk.pose chain theta)

(* Angular rows of the 6×N Jacobian scaled by the rotation weight, so that
   J·Δθ predicts the weighted twist. *)
let weighted_jacobian ~rotation_weight chain theta =
  let j = Jacobian.full_jacobian chain theta in
  let n = Chain.dof chain in
  for row = 3 to 5 do
    for col = 0 to n - 1 do
      Mat.set j row col (rotation_weight *. Mat.get j row col)
    done
  done;
  j

let errors_of_twist ~rotation_weight e =
  let pos = sqrt ((e.(0) *. e.(0)) +. (e.(1) *. e.(1)) +. (e.(2) *. e.(2))) in
  let rot =
    sqrt ((e.(3) *. e.(3)) +. (e.(4) *. e.(4)) +. (e.(5) *. e.(5))) /. rotation_weight
  in
  (pos, rot)

(* Shared driver: [step] maps (theta, weighted jacobian, weighted twist)
   to the next configuration. *)
let run ~config ~speculations ~step problem =
  let { chain; target; theta0 } = problem in
  let w = config.rotation_weight in
  let rec go theta iter =
    let e = error_twist ~rotation_weight:w chain target theta in
    let pos_err, rot_err = errors_of_twist ~rotation_weight:w e in
    if pos_err < config.position_accuracy && rot_err < config.orientation_accuracy
    then
      {
        theta;
        position_error = pos_err;
        orientation_error = rot_err;
        iterations = iter;
        speculations;
        status = Converged;
      }
    else if iter >= config.max_iterations then
      {
        theta;
        position_error = pos_err;
        orientation_error = rot_err;
        iterations = iter;
        speculations;
        status = Max_iterations;
      }
    else begin
      let j = weighted_jacobian ~rotation_weight:w chain theta in
      go (step ~theta ~j ~e) (iter + 1)
    end
  in
  go (Vec.copy theta0) 0

let solve_dls ?(lambda = 0.1) ?(config = default_config) problem =
  let step ~theta ~j ~e =
    let a = Mat.gram j in
    let l2 = lambda *. lambda in
    for i = 0 to 5 do
      Mat.set a i i (Mat.get a i i +. l2)
    done;
    let y = Cholesky.solve a e in
    Vec.add theta (Mat.mul_transpose_vec j y)
  in
  run ~config ~speculations:1 ~step problem

(* Buss' scalar for a general task dimension: α = ⟨e, JJᵀe⟩/⟨JJᵀe, JJᵀe⟩. *)
let buss_alpha ~j ~e ~dtheta_base =
  let jjte = Mat.mul_vec j dtheta_base in
  let denom = Vec.norm_sq jjte in
  if denom < 1e-30 then 0. else Vec.dot e jjte /. denom

let solve_jt ?(config = default_config) problem =
  let step ~theta ~j ~e =
    let dtheta_base = Mat.mul_transpose_vec j e in
    let alpha = buss_alpha ~j ~e ~dtheta_base in
    Vec.axpy alpha dtheta_base theta
  in
  run ~config ~speculations:1 ~step problem

let solve_quick ?(speculations = 64) ?(config = default_config) problem =
  if speculations <= 0 then invalid_arg "Pose.solve_quick: speculations must be positive";
  let { chain; target; _ } = problem in
  let w = config.rotation_weight in
  let step ~theta ~j ~e =
    let dtheta_base = Mat.mul_transpose_vec j e in
    let alpha_base = buss_alpha ~j ~e ~dtheta_base in
    if alpha_base = 0. then theta
    else begin
      let best_theta = ref theta in
      let best_err = ref infinity in
      for k = 1 to speculations do
        let alpha = float_of_int k /. float_of_int speculations *. alpha_base in
        let cand = Vec.axpy alpha dtheta_base theta in
        let cand_e = error_twist ~rotation_weight:w chain target cand in
        let err = Vec.norm cand_e in
        if err < !best_err then begin
          best_err := err;
          best_theta := cand
        end
      done;
      !best_theta
    end
  in
  run ~config ~speculations ~step problem

let pp_result ppf r =
  let status =
    match r.status with Converged -> "converged" | Max_iterations -> "max-iterations"
  in
  Format.fprintf ppf "%s in %d iters (pos %.3g m, rot %.3g rad, %d specs)" status
    r.iterations r.position_error r.orientation_error r.speculations
