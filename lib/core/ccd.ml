module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

(* Best rotation of joint i about its axis: project end-effector and
   target (relative to the joint origin) onto the plane normal to the
   axis; the optimal delta is the signed angle between the projections. *)
let revolute_delta ~axis ~origin ~effector ~target =
  let pe = Vec3.sub effector origin in
  let pt = Vec3.sub target origin in
  let pe_perp = Vec3.sub pe (Vec3.scale (Vec3.dot pe axis) axis) in
  let pt_perp = Vec3.sub pt (Vec3.scale (Vec3.dot pt axis) axis) in
  let ne = Vec3.norm pe_perp and nt = Vec3.norm pt_perp in
  if ne < 1e-12 || nt < 1e-12 then 0.
  else begin
    let cosv = Vec3.dot pe_perp pt_perp /. (ne *. nt) in
    let sinv = Vec3.dot axis (Vec3.cross pe_perp pt_perp) /. (ne *. nt) in
    Float.atan2 sinv cosv
  end

let solve ?workspace ?config (problem : Ik.problem) =
  let { Ik.chain; target; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  let step ws =
    Vec.blit ws.Ws.theta ws.Ws.theta_next;
    let theta = ws.Ws.theta_next in
    (* Sweep from the distal joint toward the base, refreshing frames after
       every joint update (each update moves everything distal to it); the
       per-sweep frames reuse the workspace's FK scratch buffer. *)
    for i = dof - 1 downto 0 do
      let frames = Fk.frames ~scratch:ws.Ws.fk chain theta in
      let effector = Mat4.position frames.(dof) in
      let axis = Mat4.z_axis frames.(i) in
      let origin = Mat4.position frames.(i) in
      let { Chain.joint; _ } = Chain.link chain i in
      let updated =
        match joint.Joint.kind with
        | Joint.Revolute ->
          theta.(i) +. revolute_delta ~axis ~origin ~effector ~target
        | Joint.Prismatic -> theta.(i) +. Vec3.dot axis (Vec3.sub target effector)
      in
      theta.(i) <- Joint.clamp joint updated
    done;
    0
  in
  Loop.run ?config ~workspace:ws ~speculations:1 ~step problem
