open Dadu_linalg
open Dadu_kinematics

let clamp_max_abs limit v =
  let worst = Vec.max_abs v in
  if worst > limit then Vec.scale (limit /. worst) v else v

let solve ?(rcond = 1e-6) ?(max_step = 0.5) ?on_iteration ?config (problem : Ik.problem) =
  let step { Loop.theta; frames; e; _ } =
    let j = Jacobian.position_jacobian_of_frames problem.Ik.chain frames in
    let svd = Svd.decompose j in
    let dtheta = Svd.apply_pinv ~rcond svd (Vec3.to_vec e) in
    let dtheta = if Float.is_finite max_step then clamp_max_abs max_step dtheta else dtheta in
    { Loop.theta' = Vec.add theta dtheta; sweeps = svd.Svd.sweeps }
  in
  Loop.run ?config ?on_iteration ~speculations:1 ~step problem
