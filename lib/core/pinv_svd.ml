module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

let clamp_max_abs limit v =
  let worst = Vec.max_abs v in
  if worst > limit then Vec.scale (limit /. worst) v else v

let solve ?(rcond = 1e-6) ?(max_step = 0.5) ?on_iteration ?workspace ?config
    (problem : Ik.problem) =
  let { Ik.chain; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  (* SVD internals allocate; the workspace only carries the driver state. *)
  let step ws =
    Jacobian.position_jacobian_into ~dst:ws.Ws.jac chain ws.Ws.frames;
    let svd = Svd.decompose ws.Ws.jac in
    let dtheta = Svd.apply_pinv ~rcond svd ws.Ws.e in
    let dtheta = if Float.is_finite max_step then clamp_max_abs max_step dtheta else dtheta in
    Vec.add_into ~dst:ws.Ws.theta_next ws.Ws.theta dtheta;
    svd.Svd.sweeps
  in
  Loop.run ?config ?on_iteration ~workspace:ws ~speculations:1 ~step problem
