(** Damped least squares (Levenberg–Marquardt-style) IK.

    [Δθ = Jᵀ·(J·Jᵀ + λ²I)⁻¹·e]: the 3×3 system is solved by Cholesky, so
    no SVD is needed.  A standard robust baseline between the transpose and
    pseudoinverse methods (the paper's reference [11] discusses it). *)

val solve :
  ?lambda:float ->
  ?on_iteration:(iter:int -> err:float -> unit) ->
  ?workspace:Workspace.t ->
  Ik.solver
(** [lambda] is the damping factor, default 0.1 (in task-space units). *)
