(** Cyclic coordinate descent IK (paper's reference [4]; related work).

    Sweeps the joints from the end effector toward the base; each joint is
    set to the closed-form value that minimizes the end-effector-to-target
    distance with all other joints frozen.  One {!Ik.result.iterations}
    unit is a full sweep, so iteration counts are comparable with the
    Jacobian family.  Joint limits are respected. *)

val solve : ?workspace:Workspace.t -> Ik.solver
