open Dadu_linalg
open Dadu_kinematics

(** Per-solve scratch memory for the iterative solvers.

    One workspace owns every buffer the {!Loop} driver and a solver step
    need — FK scratch, cumulative frames, the 3×dof Jacobian, error and
    update vectors, the 3×3 damped-gram system, and (for speculative
    solvers) per-candidate pools.  Steady-state iterations then run
    without minor-heap allocation.

    Ownership: a workspace must only be used by one solve at a time.
    Reuse across consecutive solves on the same thread is the intended
    pattern (and what {!local} provides); sharing one workspace between
    concurrent solves races.  Quick-IK's [Parallel] mode shares the
    candidate buffers across domains only over disjoint index ranges, and
    the FK scratch only after {!Dadu_kinematics.Fk.precompile} — the only
    cross-domain sharing allowed. *)

type scalars = { mutable err : float; mutable best_err : float }
(** All-float record (flat in memory): scalar channel between driver and
    step, so no float crosses a call boundary. *)

type t = {
  dof : int;
  fk : Fk.scratch;  (** FK ping-pong scratch *)
  frames : Mat4.t array;  (** [dof+1] cumulative transforms *)
  jac : Mat.t;  (** 3×dof position Jacobian *)
  e : Vec.t;  (** length-3 task-space error [X_t − f(θ)] *)
  tmp3 : Vec.t;  (** length-3 scratch (J·Jᵀe, damped-gram solution) *)
  dtheta : Vec.t;  (** length-dof update direction *)
  mutable theta : Vec.t;  (** current configuration (driver-owned) *)
  mutable theta_next : Vec.t;  (** next configuration (step writes here) *)
  a33 : Mat.t;  (** 3×3 damped gram [J·Jᵀ + λ²I] *)
  l33 : Mat.t;  (** 3×3 Cholesky factor scratch *)
  y3 : Vec.t;  (** length-3 forward-substitution scratch *)
  scalars : scalars;
  mutable iter : int;  (** 0-based index of the current iteration *)
  mutable cand_pos : Vec.t;
      (** speculative candidate positions, flat SoA: x at [[0, s)], y at
          [[s, 2s)], z at [[2s, 3s)] where [s = Array.length cand_err2] *)
  mutable cand_err2 : float array;  (** candidate *squared* target errors *)
  mutable coeffs : float array;  (** per-candidate step sizes *)
  mutable ladder : float array;
      (** Log-spaced geometric ladder [ratio^(Max-1-k)], hoisted out of the
          iteration (valid when [ladder_for] matches the solve's [Max]) *)
  mutable ladder_for : int;  (** speculation count [ladder] was built for *)
}

val create : dof:int -> t
(** Fresh workspace for a [dof]-joint chain (candidate pools start empty
    and grow on first speculative use). *)

val dof : t -> int

val ensure_candidates : t -> int -> unit
(** [ensure_candidates t n] grows the candidate pools to hold at least
    [n] candidates; no-op when already large enough. *)

val local : dof:int -> t
(** The calling domain's cached workspace for [dof] (created on first
    request).  Safe for the solve-at-a-time pattern; do not use for
    nested solves within one domain. *)

type pool_stats = {
  created : int;  (** workspaces built by {!local} across all domains *)
  reused : int;  (** {!local} calls served from a domain's cache *)
}

type phase = Prepare | Work
(** Which scheduler phase a {!local} call is attributed to.  The
    orchestrating domain brackets each wave phase with {!set_phase};
    phases never overlap, so one process-global flag attributes every
    domain's calls.  Code running outside a scheduler wave (direct
    solver calls, benches) counts as [Work]. *)

val set_phase : phase -> unit
(** Set the current accounting phase.  Called by the serving scheduler at
    phase boundaries; allocation-free (one atomic store). *)

val phase_stats : phase -> pool_stats
(** Process-global, cumulative accounting for {!local} calls made while
    the given phase was current — the per-phase split of {!local_stats}.
    [phase_stats Prepare] shows the workspaces the parallel
    snapshot-prepare path builds (its fused seed-scoring sweeps borrow
    each domain's workspace FK scratch), which the work phase then
    reuses: a healthy seed-heavy loop shows [created] concentrated in
    whichever phase first touched each (domain, DOF) pair and [reused]
    growing in both.  Use deltas around a workload. *)

val local_stats : unit -> pool_stats
(** Process-global, cumulative accounting for the per-domain pools — the
    sum of {!phase_stats} over both phases; use deltas around a workload.
    A healthy steady-state serving loop shows [reused] growing and
    [created] flat at [domains × distinct DOFs].  Before the per-phase
    split this was a single undifferentiated high-water mark, which hid
    whether prepare or work built the pool. *)

val local_count : unit -> int
(** Workspaces cached on the {e calling} domain. *)
