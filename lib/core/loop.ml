open Dadu_linalg
open Dadu_kinematics

type step_input = {
  iter : int;
  theta : Vec.t;
  frames : Mat4.t array;
  e : Vec3.t;
  err : float;
}

type step_output = { theta' : Vec.t; sweeps : int }

let run ?(config = Ik.default_config) ?(on_iteration = fun ~iter:_ ~err:_ -> ())
    ~speculations ~step (problem : Ik.problem) =
  let { Ik.chain; target; theta0 } = problem in
  let dof = Chain.dof chain in
  let finish status ~theta ~err ~iter ~sweeps =
    { Ik.theta; error = err; iterations = iter; speculations; status; svd_sweeps = sweeps }
  in
  let rec go theta iter sweeps best_err stalled_for =
    let frames = Fk.frames chain theta in
    let x = Mat4.position frames.(dof) in
    let e = Vec3.sub target x in
    let err = Vec3.norm e in
    on_iteration ~iter ~err;
    if err < config.Ik.accuracy then finish Ik.Converged ~theta ~err ~iter ~sweeps
    else if iter >= config.Ik.max_iterations then
      finish Ik.Max_iterations ~theta ~err ~iter ~sweeps
    else begin
      let improving = err < best_err -. 1e-15 in
      let stalled_for = if improving then 0 else stalled_for + 1 in
      match config.Ik.stall_iterations with
      | Some limit when stalled_for >= limit ->
        finish Ik.Stalled ~theta ~err ~iter ~sweeps
      | Some _ | None ->
        let { theta'; sweeps = used } = step { iter; theta; frames; e; err } in
        go theta' (iter + 1) (sweeps + used) (Float.min best_err err) stalled_for
    end
  in
  go (Vec.copy theta0) 0 0 infinity 0
