module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

let run ?(config = Ik.default_config) ?on_iteration ~workspace:ws ~speculations
    ~step (problem : Ik.problem) =
  let { Ik.chain; target; theta0 } = problem in
  let dof = Chain.dof chain in
  if Ws.dof ws <> dof then
    invalid_arg "Loop.run: workspace dof does not match the chain";
  let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
  Vec.blit theta0 ws.Ws.theta;
  ws.Ws.scalars.Ws.best_err <- infinity;
  let finish status iter sweeps =
    {
      Ik.theta = Vec.copy ws.Ws.theta;
      error = ws.Ws.scalars.Ws.err;
      iterations = iter;
      speculations;
      status;
      svd_sweeps = sweeps;
    }
  in
  (* Guard state.  [explode_threshold] is set from the first iteration's
     error once, floored at the accuracy so a near-zero initial error
     cannot make the threshold untrippable by any finite value.  Both
     are dead when [config.guard = None]: the unguarded path executes
     the exact historical instruction sequence, so traces stay
     bit-identical — the paper experiments run unguarded. *)
  let explode_threshold = ref infinity in
  let theta_finite () =
    let t = ws.Ws.theta in
    let ok = ref true in
    for i = 0 to dof - 1 do
      if not (Float.is_finite (Array.unsafe_get t i)) then ok := false
    done;
    !ok
  in
  (* The error norm is computed inline (components straight out of the end
     frame) in the exact association order of [Vec3.norm (Vec3.sub ...)],
     so traces are bit-identical to the historical Vec3-based driver while
     keeping every float in an unboxed local. *)
  let rec go iter sweeps stalled_for exploded_for =
    Fk.frames_into ~scratch:ws.Ws.fk ~dst:ws.Ws.frames chain ws.Ws.theta;
    let m = ws.Ws.frames.(dof) in
    let ex = tx -. m.(3) and ey = ty -. m.(7) and ez = tz -. m.(11) in
    ws.Ws.e.(0) <- ex;
    ws.Ws.e.(1) <- ey;
    ws.Ws.e.(2) <- ez;
    let err = sqrt (((ex *. ex) +. (ey *. ey)) +. (ez *. ez)) in
    ws.Ws.scalars.Ws.err <- err;
    ws.Ws.iter <- iter;
    (match on_iteration with None -> () | Some f -> f ~iter ~err);
    match config.Ik.guard with
    | Some _ when not (Float.is_finite err && theta_finite ()) ->
      (* a NaN error compares false against every threshold below, so
         without this check the loop would spin the full iteration cap *)
      finish Ik.Diverged iter sweeps
    | Some _ | None ->
      if err < config.Ik.accuracy then finish Ik.Converged iter sweeps
      else if iter >= config.Ik.max_iterations then
        finish Ik.Max_iterations iter sweeps
      else begin
        let exploded_for =
          match config.Ik.guard with
          | None -> 0
          | Some g ->
            if iter = 0 then
              explode_threshold :=
                g.Ik.explode_factor *. Float.max err config.Ik.accuracy;
            if err > !explode_threshold then exploded_for + 1 else 0
        in
        match config.Ik.guard with
        | Some g when exploded_for > 0 && exploded_for >= g.Ik.explode_patience
          ->
          finish Ik.Diverged iter sweeps
        | Some _ | None ->
          let best_err = ws.Ws.scalars.Ws.best_err in
          let improving = err < best_err -. 1e-15 in
          let stalled_for = if improving then 0 else stalled_for + 1 in
          (match config.Ik.stall_iterations with
          | Some limit when stalled_for >= limit -> finish Ik.Stalled iter sweeps
          | Some _ | None ->
            if not (best_err <= err) then ws.Ws.scalars.Ws.best_err <- err;
            let used = step ws in
            let t = ws.Ws.theta in
            ws.Ws.theta <- ws.Ws.theta_next;
            ws.Ws.theta_next <- t;
            go (iter + 1) (sweeps + used) stalled_for exploded_for)
      end
  in
  go 0 0 0 0
