module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

(* The iteration driver is a resumable state machine: [start] packs a
   problem into a lane, [advance] executes exactly one iteration of the
   historical recursive loop body, [result] reads the terminal state.
   [run] (below) strings them together, and the lockstep mega-batch
   driver interleaves [advance] calls across many lanes — per-lane
   bit-identity between the two is by construction, because there is
   only one per-iteration code path. *)

type state = {
  ws : Ws.t;
  chain : Chain.t;
  config : Ik.config;
  step : Ws.t -> int;
  speculations : int;
  tx : float;
  ty : float;
  tz : float;
  mutable iter : int;
  mutable sweeps : int;
  mutable stalled_for : int;
  mutable exploded_for : int;
  (* set from the first iteration's error once, floored at the accuracy
     so a near-zero initial error cannot make the threshold untrippable
     by any finite value; dead when [config.guard = None] *)
  mutable explode_threshold : float;
  mutable status : Ik.status option;
}

let start ?(config = Ik.default_config) ~workspace:ws ~speculations ~step
    (problem : Ik.problem) =
  let { Ik.chain; target; theta0 } = problem in
  let dof = Chain.dof chain in
  if Ws.dof ws <> dof then
    invalid_arg "Loop.start: workspace dof does not match the chain";
  Vec.blit theta0 ws.Ws.theta;
  ws.Ws.scalars.Ws.best_err <- infinity;
  {
    ws;
    chain;
    config;
    step;
    speculations;
    tx = target.Vec3.x;
    ty = target.Vec3.y;
    tz = target.Vec3.z;
    iter = 0;
    sweeps = 0;
    stalled_for = 0;
    exploded_for = 0;
    explode_threshold = infinity;
    status = None;
  }

let finished st = st.status <> None

let workspace st = st.ws

let iterations st = st.iter

(* One iteration of the historical loop body.  Guard state and the
   termination checks execute in the exact order of the recursive
   driver, and the error norm keeps the association order of
   [Vec3.norm (Vec3.sub ...)], so traces are bit-identical to the
   pre-refactor driver (pinned by the fresh-vs-reused workspace trace
   tests). *)
let advance ?on_iteration st =
  match st.status with
  | Some _ -> ()
  | None ->
    let ws = st.ws in
    let config = st.config in
    let dof = Ws.dof ws in
    let iter = st.iter in
    Fk.frames_into ~scratch:ws.Ws.fk ~dst:ws.Ws.frames st.chain ws.Ws.theta;
    let m = ws.Ws.frames.(dof) in
    let ex = st.tx -. m.(3) and ey = st.ty -. m.(7) and ez = st.tz -. m.(11) in
    ws.Ws.e.(0) <- ex;
    ws.Ws.e.(1) <- ey;
    ws.Ws.e.(2) <- ez;
    let err = sqrt (((ex *. ex) +. (ey *. ey)) +. (ez *. ez)) in
    ws.Ws.scalars.Ws.err <- err;
    ws.Ws.iter <- iter;
    (match on_iteration with None -> () | Some f -> f ~iter ~err);
    let theta_finite () =
      let t = ws.Ws.theta in
      let ok = ref true in
      for i = 0 to dof - 1 do
        if not (Float.is_finite (Array.unsafe_get t i)) then ok := false
      done;
      !ok
    in
    (match config.Ik.guard with
    | Some _ when not (Float.is_finite err && theta_finite ()) ->
      (* a NaN error compares false against every threshold below, so
         without this check the loop would spin the full iteration cap *)
      st.status <- Some Ik.Diverged
    | Some _ | None ->
      if err < config.Ik.accuracy then st.status <- Some Ik.Converged
      else if iter >= config.Ik.max_iterations then
        st.status <- Some Ik.Max_iterations
      else begin
        let exploded_for =
          match config.Ik.guard with
          | None -> 0
          | Some g ->
            if iter = 0 then
              st.explode_threshold <-
                g.Ik.explode_factor *. Float.max err config.Ik.accuracy;
            if err > st.explode_threshold then st.exploded_for + 1 else 0
        in
        match config.Ik.guard with
        | Some g when exploded_for > 0 && exploded_for >= g.Ik.explode_patience
          ->
          st.status <- Some Ik.Diverged
        | Some _ | None ->
          let best_err = ws.Ws.scalars.Ws.best_err in
          let improving = err < best_err -. 1e-15 in
          let stalled_for = if improving then 0 else st.stalled_for + 1 in
          (match config.Ik.stall_iterations with
          | Some limit when stalled_for >= limit ->
            st.status <- Some Ik.Stalled
          | Some _ | None ->
            if not (best_err <= err) then ws.Ws.scalars.Ws.best_err <- err;
            let used = st.step ws in
            let t = ws.Ws.theta in
            ws.Ws.theta <- ws.Ws.theta_next;
            ws.Ws.theta_next <- t;
            st.iter <- iter + 1;
            st.sweeps <- st.sweeps + used;
            st.stalled_for <- stalled_for;
            st.exploded_for <- exploded_for)
      end)

let result st =
  match st.status with
  | None -> invalid_arg "Loop.result: lane has not finished"
  | Some status ->
    {
      Ik.theta = Vec.copy st.ws.Ws.theta;
      error = st.ws.Ws.scalars.Ws.err;
      iterations = st.iter;
      speculations = st.speculations;
      status;
      svd_sweeps = st.sweeps;
    }

let run ?config ?on_iteration ~workspace ~speculations ~step
    (problem : Ik.problem) =
  let st = start ?config ~workspace ~speculations ~step problem in
  while not (finished st) do
    advance ?on_iteration st
  done;
  result st
