module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

let run ?(config = Ik.default_config) ?on_iteration ~workspace:ws ~speculations
    ~step (problem : Ik.problem) =
  let { Ik.chain; target; theta0 } = problem in
  let dof = Chain.dof chain in
  if Ws.dof ws <> dof then
    invalid_arg "Loop.run: workspace dof does not match the chain";
  let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
  Vec.blit theta0 ws.Ws.theta;
  ws.Ws.scalars.Ws.best_err <- infinity;
  let finish status iter sweeps =
    {
      Ik.theta = Vec.copy ws.Ws.theta;
      error = ws.Ws.scalars.Ws.err;
      iterations = iter;
      speculations;
      status;
      svd_sweeps = sweeps;
    }
  in
  (* The error norm is computed inline (components straight out of the end
     frame) in the exact association order of [Vec3.norm (Vec3.sub ...)],
     so traces are bit-identical to the historical Vec3-based driver while
     keeping every float in an unboxed local. *)
  let rec go iter sweeps stalled_for =
    Fk.frames_into ~scratch:ws.Ws.fk ~dst:ws.Ws.frames chain ws.Ws.theta;
    let m = ws.Ws.frames.(dof) in
    let ex = tx -. m.(3) and ey = ty -. m.(7) and ez = tz -. m.(11) in
    ws.Ws.e.(0) <- ex;
    ws.Ws.e.(1) <- ey;
    ws.Ws.e.(2) <- ez;
    let err = sqrt (((ex *. ex) +. (ey *. ey)) +. (ez *. ez)) in
    ws.Ws.scalars.Ws.err <- err;
    ws.Ws.iter <- iter;
    (match on_iteration with None -> () | Some f -> f ~iter ~err);
    if err < config.Ik.accuracy then finish Ik.Converged iter sweeps
    else if iter >= config.Ik.max_iterations then
      finish Ik.Max_iterations iter sweeps
    else begin
      let best_err = ws.Ws.scalars.Ws.best_err in
      let improving = err < best_err -. 1e-15 in
      let stalled_for = if improving then 0 else stalled_for + 1 in
      match config.Ik.stall_iterations with
      | Some limit when stalled_for >= limit -> finish Ik.Stalled iter sweeps
      | Some _ | None ->
        if not (best_err <= err) then ws.Ws.scalars.Ws.best_err <- err;
        let used = step ws in
        let t = ws.Ws.theta in
        ws.Ws.theta <- ws.Ws.theta_next;
        ws.Ws.theta_next <- t;
        go (iter + 1) (sweeps + used) stalled_for
    end
  in
  go 0 0 0
