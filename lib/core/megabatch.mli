(** Lockstep mega-batch Quick-IK: a batch-major execution mode that packs
    B in-flight problems into lanes over flat SoA batch planes and
    advances every lane one Quick-IK iteration per sweep, retiring
    terminal lanes and refilling them from the input queue (the
    HJCD-IK-style batched execution model, PAPERS.md).

    Why batch-major: the per-request path pays the iteration-driver
    dispatch, FK-scratch warm-up and candidate-pool bookkeeping once per
    request; lockstep amortizes them across the batch and keeps every
    domain of a pool saturated with lane-grained work even when
    individual solves converge at wildly different iteration counts.

    {b Lane identity.}  A lane is a {!Loop.state} over the exact step
    closure {!Quick_ik.prepare_step} builds for the serial solver, so a
    lane's θ trace, iteration count, and terminal status are
    bit-identical to [Quick_ik.solve] on the same problem — there is one
    per-iteration code path, not a reimplementation.  Lanes own disjoint
    workspaces, so the [Parallel] sweep is bit-identical to [Sequential]
    for every pool size; retire-and-refill runs serially in lane order,
    making the lane→problem assignment a pure function of the input
    sequence.  The differential suite (test_megabatch.ml) pins lane ≡
    serial oracle bitwise across DOFs, pool sizes, and refill
    schedules. *)

type t

type mode =
  | Sequential
  | Parallel of Dadu_util.Domain_pool.t
      (** advance the active lanes of each sweep on the pool, one lane
          per task; bit-identical to [Sequential] (disjoint lanes) *)

val create :
  ?capacity:int ->
  ?speculations:int ->
  ?strategy:Quick_ik.strategy ->
  ?config:Ik.config ->
  unit ->
  t
(** [capacity] (default 64, positive) is B, the number of lanes;
    [speculations] (default 64, positive), [strategy] (default
    [Uniform]) and [config] apply to every lane — they must match the
    serial oracle's parameters for lane identity to be meaningful.
    Lanes keep one workspace per DOF they have seen, so repeated
    [solve_all] calls run warm. *)

val capacity : t -> int

val solve_all :
  ?mode:mode ->
  ?on_retire:(lane:int -> problem:int -> Ik.result -> unit) ->
  t ->
  Ik.problem array ->
  Ik.result array
(** [solve_all t problems] packs the first B problems into lanes, sweeps
    all active lanes one iteration at a time, retires each lane as it
    reaches a terminal status (converged / max-iterations / stalled /
    diverged-under-guard) and refills it with the next queued problem,
    until every problem has retired.  [result.(i)] answers
    [problems.(i)] and is bit-identical to
    [Quick_ik.solve ~speculations ~strategy ~config] on that problem.
    [on_retire] observes retirements in lane order within each sweep
    (the serial phase — safe for stateful callers).  Problems must be
    valid ({!Ik.validate}); mixed DOFs are fine, the planes are sized to
    the widest chain of the batch. *)

(** {2 Batch planes}

    Observability views refreshed after every sweep — live arrays, do
    not mutate.  Lane-major layout: lane [l]'s θ occupies
    [[l×stride, l×stride+dof)], valid while [active_mask.(l)]. *)

val stride : t -> int
(** Row width of {!theta_plane}: the widest DOF packed so far. *)

val theta_plane : t -> float array
(** [capacity × stride] flat θ plane. *)

val err2_plane : t -> float array
(** Per-lane squared target error at the top of the last sweep. *)

val iterations_plane : t -> int array
(** Per-lane iterations executed. *)

val problem_plane : t -> int array
(** Per-lane input index, [-1] when the lane is free. *)

val active_mask : t -> bool array
(** Per-lane liveness: false once retired (and not yet refilled). *)
