module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

let solve ?(lambda = 0.1) ?on_iteration ?workspace ?config (problem : Ik.problem) =
  let { Ik.chain; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  let step ws =
    Jacobian.position_jacobian_into ~dst:ws.Ws.jac chain ws.Ws.frames;
    Mat.gram_into ~dst:ws.Ws.a33 ws.Ws.jac;
    let l2 = lambda *. lambda in
    let ad = ws.Ws.a33.Mat.data in
    ad.(0) <- ad.(0) +. l2;
    ad.(4) <- ad.(4) +. l2;
    ad.(8) <- ad.(8) +. l2;
    Cholesky.solve_into ~l:ws.Ws.l33 ~y:ws.Ws.y3 ~dst:ws.Ws.tmp3 ws.Ws.a33
      ws.Ws.e;
    Mat.gemv_t_into ~dst:ws.Ws.dtheta ws.Ws.jac ws.Ws.tmp3;
    Vec.add_into ~dst:ws.Ws.theta_next ws.Ws.theta ws.Ws.dtheta;
    0
  in
  Loop.run ?config ?on_iteration ~workspace:ws ~speculations:1 ~step problem
