open Dadu_linalg
open Dadu_kinematics

let solve ?(lambda = 0.1) ?config (problem : Ik.problem) =
  let step { Loop.theta; frames; e; _ } =
    let j = Jacobian.position_jacobian_of_frames problem.Ik.chain frames in
    let a = Mat.gram j in
    let l2 = lambda *. lambda in
    for i = 0 to 2 do
      Mat.set a i i (Mat.get a i i +. l2)
    done;
    let y = Cholesky.solve a (Vec3.to_vec e) in
    let dtheta = Mat.mul_transpose_vec j y in
    { Loop.theta' = Vec.add theta dtheta; sweeps = 0 }
  in
  Loop.run ?config ~speculations:1 ~step problem
