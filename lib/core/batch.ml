module Pool = Dadu_util.Domain_pool

type summary = {
  results : Ik.result array;
  converged : int;
  mean_iterations : float;
  mean_error : float;
  wall_clock_s : float;
}

let solve ?pool ~solver problems =
  let n = Array.length problems in
  (* monotonic, not gettimeofday: a wall-clock step mid-batch must not
     corrupt the reported wall_clock_s *)
  let t0 = Dadu_util.Trace.now_s () in
  let results =
    match pool with
    | None -> Array.map solver problems
    | Some pool -> Pool.map pool (fun i -> solver problems.(i)) n
  in
  let wall_clock_s = Dadu_util.Trace.now_s () -. t0 in
  let converged =
    Array.fold_left
      (fun acc r ->
        match r.Ik.status with
        | Ik.Converged -> acc + 1
        | Ik.Max_iterations | Ik.Stalled | Ik.Diverged -> acc)
      0 results
  in
  let total f = Array.fold_left (fun acc r -> acc +. f r) 0. results in
  let denom = float_of_int (Stdlib.max 1 n) in
  {
    results;
    converged;
    mean_iterations = total (fun r -> float_of_int r.Ik.iterations) /. denom;
    mean_error = total (fun r -> r.Ik.error) /. denom;
    wall_clock_s;
  }
