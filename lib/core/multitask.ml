open Dadu_linalg
open Dadu_kinematics

type point_task = { link : int; target : Vec3.t; weight : float }

type problem = { chain : Chain.t; tasks : point_task list; theta0 : Vec.t }

let problem ~chain ~tasks ~theta0 =
  Chain.check_config chain theta0;
  if tasks = [] then invalid_arg "Multitask.problem: no tasks";
  List.iter
    (fun { link; weight; _ } ->
      if link < 1 || link > Chain.dof chain then
        invalid_arg
          (Printf.sprintf "Multitask.problem: link %d outside [1, %d]" link
             (Chain.dof chain));
      if weight <= 0. then invalid_arg "Multitask.problem: weight must be positive")
    tasks;
  { chain; tasks; theta0 = Vec.copy theta0 }

type result = {
  theta : Vec.t;
  errors : float list;
  iterations : int;
  converged : bool;
}

let point_position chain theta ~link =
  let frames = Fk.frames chain theta in
  Mat4.position frames.(link)

(* One task block: the position Jacobian of the frame after [link] links —
   joints at or beyond the control point cannot move it. *)
let task_block chain frames ~link =
  let n = Chain.dof chain in
  let p = Mat4.position frames.(link) in
  let block = Mat.create 3 n in
  for i = 0 to link - 1 do
    let { Chain.joint; _ } = Chain.link chain i in
    let z = Mat4.z_axis frames.(i) in
    let column =
      match joint.Joint.kind with
      | Joint.Revolute -> Vec3.cross z (Vec3.sub p (Mat4.position frames.(i)))
      | Joint.Prismatic -> z
    in
    Mat.set block 0 i column.Vec3.x;
    Mat.set block 1 i column.Vec3.y;
    Mat.set block 2 i column.Vec3.z
  done;
  block

let stacked_jacobian chain theta ~tasks =
  let n = Chain.dof chain in
  let frames = Fk.frames chain theta in
  let k = List.length tasks in
  let j = Mat.create (3 * k) n in
  List.iteri
    (fun t { link; weight; _ } ->
      let block = task_block chain frames ~link in
      for row = 0 to 2 do
        for col = 0 to n - 1 do
          Mat.set j ((3 * t) + row) col (weight *. Mat.get block row col)
        done
      done)
    tasks;
  j

let solve ?(accuracy = 1e-2) ?(max_iterations = 10_000) ?(lambda = 0.1)
    ({ chain; tasks; theta0 } : problem) =
  let k = List.length tasks in
  let rec go theta iteration =
    let frames = Fk.frames chain theta in
    let errors =
      List.map
        (fun { link; target; _ } -> Vec3.dist target (Mat4.position frames.(link)))
        tasks
    in
    let converged = List.for_all (fun e -> e < accuracy) errors in
    if converged || iteration >= max_iterations then
      { theta; errors; iterations = iteration; converged }
    else begin
      let e = Vec.create (3 * k) in
      List.iteri
        (fun t { link; target; weight } ->
          let d = Vec3.sub target (Mat4.position frames.(link)) in
          e.((3 * t) + 0) <- weight *. d.Vec3.x;
          e.((3 * t) + 1) <- weight *. d.Vec3.y;
          e.((3 * t) + 2) <- weight *. d.Vec3.z)
        tasks;
      let j = stacked_jacobian chain theta ~tasks in
      let a = Mat.gram j in
      let l2 = lambda *. lambda in
      for i = 0 to (3 * k) - 1 do
        Mat.set a i i (Mat.get a i i +. l2)
      done;
      let y = Cholesky.solve a e in
      let dtheta = Mat.mul_transpose_vec j y in
      go (Vec.add theta dtheta) (iteration + 1)
    end
  in
  go (Vec.copy theta0) 0
