(** Selectively damped least squares — Buss & Kim 2005, the paper's
    reference [20] ("the improvement is limited").

    Damps each singular direction of [J] independently: directions whose
    unit task-space motion would require large joint motion get their step
    clamped harder.  Implemented for the single-end-effector position task
    used throughout the evaluation. *)

val solve :
  ?gamma_max:float ->
  ?on_iteration:(iter:int -> err:float -> unit) ->
  ?workspace:Workspace.t ->
  Ik.solver
(** [gamma_max] bounds the per-direction (and total) joint change per
    iteration, in radians; default π/4 as in the original publication. *)
