(** Jacobian transpose with an exact sequential line search — the software
    competitor to Quick-IK's parallel speculation.

    Quick-IK evaluates [Max] candidate steps in parallel and keeps the
    best; a serial solver would instead run a 1-D minimization of the true
    error [‖X_t − f(θ + α·Δθ_base)‖] over [α].  This solver does exactly
    that with golden-section search.  Per iteration it converges to the
    best step with ~[log(1/precision)] *sequential* FK evaluations — so it
    matches (or beats) Quick-IK's iteration count while being impossible
    to finish in one hardware round: precisely the serial-vs-speculative
    trade the paper's architecture exploits.  [Ik.result.speculations]
    reports the FK evaluations per iteration so Figure-5b-style work
    comparisons remain meaningful. *)

val solve :
  ?evaluations:int ->
  ?range:float ->
  ?on_iteration:(iter:int -> err:float -> unit) ->
  ?workspace:Workspace.t ->
  Ik.solver
(** [evaluations] is the FK-evaluation budget per line search (default 20
    ≈ 1e-4 relative precision); [range] the search interval upper bound as
    a multiple of [α_base] (default 1.0, matching Quick-IK's Eq. 9
    interval). *)
