open Dadu_linalg
open Dadu_kinematics

type problem = { chain : Chain.t; target : Vec3.t; theta0 : Vec.t }

let problem ~chain ~target ~theta0 =
  Chain.check_config chain theta0;
  { chain; target; theta0 = Vec.copy theta0 }

let random_problem rng chain =
  let target = Target.reachable rng chain in
  let theta0 = Target.random_config rng chain in
  { chain; target; theta0 }

type invalid =
  | Dof_mismatch of { expected : int; got : int }
  | Nonfinite_target
  | Nonfinite_theta0

let validate p =
  let expected = Chain.dof p.chain and got = Vec.dim p.theta0 in
  if got <> expected then Error (Dof_mismatch { expected; got })
  else if
    not
      (Float.is_finite p.target.Vec3.x
      && Float.is_finite p.target.Vec3.y
      && Float.is_finite p.target.Vec3.z)
  then Error Nonfinite_target
  else if not (Array.for_all Float.is_finite p.theta0) then
    Error Nonfinite_theta0
  else Ok ()

let pp_invalid ppf = function
  | Dof_mismatch { expected; got } ->
    Format.fprintf ppf "theta0 has %d entries but the chain has %d DOF" got
      expected
  | Nonfinite_target -> Format.pp_print_string ppf "target has a non-finite coordinate"
  | Nonfinite_theta0 -> Format.pp_print_string ppf "theta0 has a non-finite entry"

type guard = { explode_factor : float; explode_patience : int }

let default_guard = { explode_factor = 1e3; explode_patience = 10 }

type config = {
  accuracy : float;
  max_iterations : int;
  stall_iterations : int option;
  guard : guard option;
}

let default_config =
  { accuracy = 1e-2; max_iterations = 10_000; stall_iterations = None; guard = None }

type status = Converged | Max_iterations | Stalled | Diverged

type result = {
  theta : Vec.t;
  error : float;
  iterations : int;
  speculations : int;
  status : status;
  svd_sweeps : int;
}

let work r = r.speculations * r.iterations

let error_of chain target theta = Vec3.dist target (Fk.position chain theta)

let pp_status ppf = function
  | Converged -> Format.pp_print_string ppf "converged"
  | Max_iterations -> Format.pp_print_string ppf "max-iterations"
  | Stalled -> Format.pp_print_string ppf "stalled"
  | Diverged -> Format.pp_print_string ppf "diverged"

let pp_result ppf r =
  Format.fprintf ppf "%a in %d iters (err %.3g, %d specs)" pp_status r.status
    r.iterations r.error r.speculations

type solver = ?config:config -> problem -> result
