module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

(* Clamp every component of v to [-limit, limit], rescaling the whole
   vector if its largest magnitude exceeds the limit (Buss & Kim's
   ClampMaxAbs). *)
let clamp_max_abs limit v =
  let worst = Vec.max_abs v in
  if worst > limit then Vec.scale (limit /. worst) v else v

let solve ?(gamma_max = Float.pi /. 4.) ?on_iteration ?workspace ?config
    (problem : Ik.problem) =
  let { Ik.chain; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  (* The per-iteration SVD dominates and allocates internally, so this
     solver only adopts the workspace for the shared driver state — it is
     not on the zero-allocation roster. *)
  let step ws =
    Jacobian.position_jacobian_into ~dst:ws.Ws.jac chain ws.Ws.frames;
    let j = ws.Ws.jac in
    let svd = Svd.decompose j in
    let r = Svd.rank ~rcond:1e-9 svd in
    (* Column norms ρ_j = ‖∂p/∂θ_j‖ (Buss & Kim §4). *)
    let rho = Array.init dof (fun jcol -> Vec.norm (Mat.col j jcol)) in
    let e_vec = ws.Ws.e in
    let dtheta = Vec.create dof in
    for i = 0 to r - 1 do
      let sigma = svd.Svd.sigma.(i) in
      if sigma > 0. then begin
        let ui = Mat.col svd.Svd.u i in
        let vi = Mat.col svd.Svd.v i in
        let omega = Vec.dot ui e_vec /. sigma in
        (* M_i estimates how much joint motion a unit task-space move in
           direction u_i costs; N_i = ‖u_i‖ = 1 for one end effector. *)
        let m_i =
          let acc = ref 0. in
          for jcol = 0 to dof - 1 do
            acc := !acc +. (Float.abs vi.(jcol) *. rho.(jcol))
          done;
          !acc /. sigma
        in
        let gamma_i = Float.min 1. (1. /. Float.max m_i 1e-12) *. gamma_max in
        let phi = clamp_max_abs gamma_i (Vec.scale omega vi) in
        Vec.add_inplace dtheta phi
      end
    done;
    let dtheta = clamp_max_abs gamma_max dtheta in
    Vec.add_into ~dst:ws.Ws.theta_next ws.Ws.theta dtheta;
    svd.Svd.sweeps
  in
  Loop.run ?config ?on_iteration ~workspace:ws ~speculations:1 ~step problem
