open Dadu_linalg
open Dadu_kinematics

(** Resolved motion rate control — Whitney 1969, the paper's reference [5]
    and the origin of the Jacobian-IK family.

    Velocity-level control: at each tick the joint rates are
    [θ̇ = J⁺_λ·(ẋ_d + k_p·e)] — the damped pseudoinverse maps the desired
    task velocity plus a proportional error correction into joint space —
    and the configuration integrates forward by one time step.  Where the
    position-level solvers answer "what angles reach X", RMRC answers
    "how do I move smoothly as X moves". *)

type sample = {
  time : float;
  theta : Vec.t;
  position : Vec3.t;  (** actual end-effector position at [time] *)
  error : float;  (** distance to the moving target at [time] *)
}

type trace = {
  samples : sample array;  (** one per tick, in time order *)
  max_error_after_settle : float;
      (** worst tracking error in the second half of the run *)
  final_error : float;
}

val follow :
  ?dt:float ->
  ?gain:float ->
  ?lambda:float ->
  ?joint_rate_limit:float ->
  chain:Chain.t ->
  theta0:Vec.t ->
  duration:float ->
  (float -> Vec3.t) ->
  trace
(** [follow ~chain ~theta0 ~duration target] tracks [target t] for
    [t ∈ [0, duration]].  [dt] is the control period (default 10 ms, a
    100 Hz loop); [gain] the proportional error feedback (default 4 /s);
    [lambda] the pseudoinverse damping (default 0.05); [joint_rate_limit]
    clamps each joint's speed in rad/s or m/s (default 10).  The target's
    feed-forward velocity is estimated by finite differences of
    [target]. *)
