open Dadu_linalg
open Dadu_kinematics

type sample = { time : float; theta : Vec.t; position : Vec3.t; error : float }

type trace = {
  samples : sample array;
  max_error_after_settle : float;
  final_error : float;
}

let clamp_rates limit v =
  Array.map (fun x -> Float.min limit (Float.max (-.limit) x)) v

let follow ?(dt = 0.01) ?(gain = 4.0) ?(lambda = 0.05) ?(joint_rate_limit = 10.)
    ~chain ~theta0 ~duration target =
  if dt <= 0. then invalid_arg "Rmrc.follow: dt must be positive";
  if duration < dt then invalid_arg "Rmrc.follow: duration shorter than one tick";
  Chain.check_config chain theta0;
  let ticks = int_of_float (Float.round (duration /. dt)) + 1 in
  let theta = ref (Vec.copy theta0) in
  let samples =
    Array.init ticks (fun i ->
        let time = float_of_int i *. dt in
        let position = Fk.position chain !theta in
        let goal = target time in
        let error = Vec3.dist goal position in
        let sample = { time; theta = Vec.copy !theta; position; error } in
        (* command for the next interval *)
        let feedforward =
          Vec3.scale (1. /. dt) (Vec3.sub (target (time +. dt)) goal)
        in
        let desired =
          Vec3.add feedforward (Vec3.scale gain (Vec3.sub goal position))
        in
        let j = Jacobian.position_jacobian chain !theta in
        let svd = Svd.decompose j in
        let rates = Svd.apply_damped ~lambda svd (Vec3.to_vec desired) in
        let rates = clamp_rates joint_rate_limit rates in
        theta := Vec.axpy dt rates !theta;
        sample)
  in
  let settle_from = Array.length samples / 2 in
  let max_error_after_settle =
    Array.fold_left
      (fun acc s -> if s.time >= float_of_int settle_from *. dt then Float.max acc s.error else acc)
      0. samples
  in
  {
    samples;
    max_error_after_settle;
    final_error = samples.(Array.length samples - 1).error;
  }
