module Ws = Workspace
module Pool = Dadu_util.Domain_pool
open Dadu_kinematics

type mode = Sequential | Parallel of Pool.t

(* One lane: a resumable Loop state plus the per-lane workspace cache.
   Workspaces are keyed by DOF and kept across refills and solve_all
   calls, so a lane that sees the same DOF again runs its steady state
   without allocation. *)
type lane = {
  mutable state : Loop.state option; (* None = free *)
  mutable problem : int; (* input index, -1 when free *)
  workspaces : (int, Ws.t) Hashtbl.t;
}

type t = {
  capacity : int;
  speculations : int;
  strategy : Quick_ik.strategy;
  config : Ik.config;
  lanes : lane array;
  (* flat SoA batch planes, refreshed after every lockstep sweep *)
  mutable stride : int;
  mutable theta : float array; (* capacity × stride, lane-major *)
  err2 : float array; (* capacity: squared error at the sweep top *)
  iters : int array; (* capacity: iterations executed *)
  problem_of : int array; (* capacity: input index, -1 when free *)
  active : bool array; (* capacity *)
}

let create ?(capacity = 64) ?(speculations = 64) ?(strategy = Quick_ik.Uniform)
    ?(config = Ik.default_config) () =
  if capacity <= 0 then invalid_arg "Megabatch.create: capacity must be positive";
  if speculations <= 0 then
    invalid_arg "Megabatch.create: speculations must be positive";
  {
    capacity;
    speculations;
    strategy;
    config;
    lanes =
      Array.init capacity (fun _ ->
          { state = None; problem = -1; workspaces = Hashtbl.create 4 });
    stride = 0;
    theta = [||];
    err2 = Array.make capacity infinity;
    iters = Array.make capacity 0;
    problem_of = Array.make capacity (-1);
    active = Array.make capacity false;
  }

let capacity t = t.capacity

let stride t = t.stride

let theta_plane t = t.theta

let err2_plane t = t.err2

let iterations_plane t = t.iters

let problem_plane t = t.problem_of

let active_mask t = t.active

let ensure_stride t dof =
  if dof > t.stride then begin
    t.stride <- dof;
    t.theta <- Array.make (t.capacity * dof) 0.
  end

let lane_workspace lane ~dof =
  match Hashtbl.find_opt lane.workspaces dof with
  | Some ws -> ws
  | None ->
    let ws = Ws.create ~dof in
    Hashtbl.add lane.workspaces dof ws;
    ws

(* Pack the next pending problem (if any) into lane [l].  Runs only in
   the serial retire/refill phase, in lane order, so the lane→problem
   assignment is a pure function of the input sequence — independent of
   the sweep mode and of any pool size. *)
let pack t ~problems ~next l =
  if !next < Array.length problems then begin
    let pi = !next in
    incr next;
    let p = problems.(pi) in
    let lane = t.lanes.(l) in
    let dof = Chain.dof p.Ik.chain in
    let workspace = lane_workspace lane ~dof in
    let workspace, step =
      Quick_ik.prepare_step ~speculations:t.speculations ~strategy:t.strategy
        ~workspace p
    in
    lane.state <-
      Some
        (Loop.start ~config:t.config ~workspace ~speculations:t.speculations
           ~step p);
    lane.problem <- pi;
    t.problem_of.(l) <- pi;
    t.iters.(l) <- 0;
    t.err2.(l) <- infinity;
    t.active.(l) <- true;
    true
  end
  else false

let advance_lane t l =
  if t.active.(l) then
    match t.lanes.(l).state with
    | Some st -> Loop.advance st
    | None -> ()

(* Refresh the flat planes from lane [l]'s workspace: θ row, squared
   error, iteration count.  Pure stores into preallocated planes. *)
let sync_lane t l (st : Loop.state) =
  let ws = Loop.workspace st in
  let dof = Ws.dof ws in
  Array.blit ws.Ws.theta 0 t.theta (l * t.stride) dof;
  let err = ws.Ws.scalars.Ws.err in
  t.err2.(l) <- err *. err;
  t.iters.(l) <- Loop.iterations st

let solve_all ?(mode = Sequential) ?on_retire t problems =
  let n = Array.length problems in
  if n = 0 then [||]
  else begin
    let max_dof =
      Array.fold_left
        (fun acc (p : Ik.problem) -> Stdlib.max acc (Chain.dof p.Ik.chain))
        1 problems
    in
    ensure_stride t max_dof;
    let out = Array.make n None in
    let next = ref 0 in
    let active_count = ref 0 in
    for l = 0 to t.capacity - 1 do
      t.active.(l) <- false;
      t.problem_of.(l) <- -1;
      if pack t ~problems ~next l then incr active_count
    done;
    while !active_count > 0 do
      (* one lockstep sweep: every active lane advances one Quick-IK
         iteration.  Lanes are independent (disjoint workspaces), so the
         parallel sweep is bit-identical to the sequential one for any
         pool size. *)
      (match mode with
      | Sequential ->
        for l = 0 to t.capacity - 1 do
          advance_lane t l
        done
      | Parallel pool ->
        Pool.parallel_for pool t.capacity (fun l -> advance_lane t l));
      (* serial retire-and-refill phase, in lane order: publish planes,
         collect terminal lanes, repack them from the queue *)
      for l = 0 to t.capacity - 1 do
        if t.active.(l) then begin
          let st = Option.get t.lanes.(l).state in
          sync_lane t l st;
          if Loop.finished st then begin
            let r = Loop.result st in
            let pi = t.lanes.(l).problem in
            out.(pi) <- Some r;
            (match on_retire with
            | None -> ()
            | Some f -> f ~lane:l ~problem:pi r);
            t.lanes.(l).state <- None;
            t.lanes.(l).problem <- -1;
            t.active.(l) <- false;
            t.problem_of.(l) <- -1;
            decr active_count;
            if pack t ~problems ~next l then incr active_count
          end
        end
      done
    done;
    Array.map
      (function Some r -> r | None -> assert false (* every lane retires *))
      out
  end
