module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

(** Redundancy resolution: exploit the extra DOF of high-DOF chains.

    A 100-joint manipulator reaching a 3-D position has a 97-dimensional
    self-motion manifold; this solver spends it on a secondary objective
    by projecting the objective's gradient into the Jacobian's nullspace:
    [Δθ = J⁺e + γ·(I − J⁺J)·z].  The task error converges exactly as in
    plain damped least squares; the secondary objective only reshapes the
    arm within the solution manifold. *)

type objective =
  | Joint_centering
      (** pull every limited joint toward the middle of its travel
          (unbounded joints toward 0) *)
  | Reference of Vec.t
      (** pull toward a preferred configuration (dimension must match) *)
  | Custom of (Vec.t -> Vec.t)
      (** arbitrary gradient [z(θ)]; must return a [dof]-vector *)

val objective_gradient : objective -> Chain.t -> Vec.t -> Vec.t
(** The raw secondary gradient [z(θ)] (before projection). *)

val comfort : Chain.t -> Vec.t -> float
(** Mean squared normalized distance from each limited joint to its travel
    center (0 = all centered, 1 = all at their limits); the metric
    [Joint_centering] descends.  Unbounded joints measure distance from 0
    against a π half-span. *)

val solve :
  ?lambda:float ->
  ?nullspace_gain:float ->
  objective:objective ->
  ?workspace:Ws.t ->
  Ik.solver
(** Damped-least-squares task step plus projected secondary step.
    [lambda] defaults to 0.1, [nullspace_gain] to 0.1 (per-iteration step
    along the projected gradient). *)

val optimize :
  ?iterations:int ->
  ?gain:float ->
  ?lambda:float ->
  objective:objective ->
  Chain.t ->
  target:Vec3.t ->
  theta:Vec.t ->
  Vec.t
(** Pure self-motion: starting from a configuration that already solves
    the task, walk [iterations] (default 100) steps of size [gain]
    (default 0.05) along the objective's nullspace-projected gradient,
    re-correcting the task error after each step so the end effector never
    drifts.  Unlike {!solve} — which stops the moment the task converges —
    this keeps optimizing at a held task point.  Returns the improved
    configuration. *)
