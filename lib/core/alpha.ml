open Dadu_linalg

let buss ~j ~e ~dtheta_base =
  let jjte = Mat.mul_vec j dtheta_base in
  let jjte3 = Vec3.of_vec jjte in
  let denom = Vec3.norm_sq jjte3 in
  if denom < 1e-30 then 0. else Vec3.dot e jjte3 /. denom

(* J·(Jᵀe): 3 rows × dof columns of multiply-add, then two 3-dots. *)
let flops dof = (6 * dof) + 12
