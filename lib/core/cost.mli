(** Analytic per-iteration operation counts for every solver.

    The platform models (Atom/TX1 timing, Figure 5b's computation load)
    need the floating-point work of each method as a function of DOF.
    Counts follow the implementations in this library operation-for-
    operation; tests cross-check the structural identities (e.g. Quick-IK's
    serial part equals JT-Serial minus its update). *)

type per_iteration = {
  serial_flops : float;
      (** work with sequential dependences — cannot be spread across
          speculative candidates (Jacobian, [Δθ_base], [α_base], ...) *)
  parallel_flops : float;
      (** total work across all speculative candidates; independent per
          candidate, so it divides by the available parallelism *)
}

val total : per_iteration -> float
(** [serial_flops +. parallel_flops]. *)

val fk_flops : dof:int -> float
(** One forward-kinematics position evaluation. *)

val jt_serial : dof:int -> per_iteration
(** Fixed-α original transpose method (no per-iteration α recompute). *)

val jt_buss : dof:int -> per_iteration
(** Transpose method with Eq. 8 recomputed every iteration. *)

val quick_ik : dof:int -> speculations:int -> per_iteration

val pinv_svd : dof:int -> sweeps:float -> per_iteration
(** [sweeps] is the average Jacobi sweeps per iteration, taken from
    measured [Ik.result.svd_sweeps]. *)

val sdls : dof:int -> sweeps:float -> per_iteration

val dls : dof:int -> per_iteration

val ccd : dof:int -> per_iteration
(** One full sweep; our CCD refreshes frames after each joint update, so a
    sweep is O(dof²). *)

val svd_sweep_flops : dof:int -> float
(** One one-sided-Jacobi sweep on the 3-column [Jᵀ]. *)
