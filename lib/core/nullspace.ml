module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

type objective =
  | Joint_centering
  | Reference of Vec.t
  | Custom of (Vec.t -> Vec.t)

let centering_target (joint : Joint.t) =
  if Joint.unbounded joint then 0.
  else (joint.Joint.lower +. joint.Joint.upper) /. 2.

let objective_gradient objective chain theta =
  match objective with
  | Joint_centering ->
    Array.mapi
      (fun i qi -> centering_target (Chain.link chain i).Chain.joint -. qi)
      theta
  | Reference reference ->
    Chain.check_config chain reference;
    Vec.sub reference theta
  | Custom f ->
    let z = f theta in
    Chain.check_config chain z;
    z

let half_span (joint : Joint.t) =
  if Joint.unbounded joint then Float.pi else Joint.span joint /. 2.

let comfort chain theta =
  Chain.check_config chain theta;
  let n = Chain.dof chain in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    let joint = (Chain.link chain i).Chain.joint in
    let d = (theta.(i) -. centering_target joint) /. half_span joint in
    acc := !acc +. (d *. d)
  done;
  !acc /. float_of_int n

(* Solve (JJᵀ + λ²I) y = rhs once per application; shared by the task step
   and the nullspace projection. *)
let damped_gram_solve j lambda rhs =
  let a = Mat.gram j in
  let rows, _ = Mat.dims j in
  let l2 = lambda *. lambda in
  for i = 0 to rows - 1 do
    Mat.set a i i (Mat.get a i i +. l2)
  done;
  Cholesky.solve a rhs

let solve ?(lambda = 0.1) ?(nullspace_gain = 0.1) ~objective ?workspace ?config
    (problem : Ik.problem) =
  let { Ik.chain; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  (* The projection solves allocate; the workspace only carries the shared
     driver state. *)
  let step ws =
    Jacobian.position_jacobian_into ~dst:ws.Ws.jac chain ws.Ws.frames;
    let j = ws.Ws.jac in
    let theta = ws.Ws.theta in
    (* task step: Δθ_task = Jᵀ(JJᵀ + λ²)⁻¹ e *)
    let y = damped_gram_solve j lambda ws.Ws.e in
    let dtheta_task = Mat.mul_transpose_vec j y in
    (* secondary step projected into the nullspace:
       z_proj = z − Jᵀ(JJᵀ + λ²)⁻¹ J z *)
    let z = objective_gradient objective chain theta in
    let jz = Mat.mul_vec j z in
    let y2 = damped_gram_solve j lambda jz in
    let z_proj = Vec.sub z (Mat.mul_transpose_vec j y2) in
    Vec.add_into ~dst:ws.Ws.theta_next theta dtheta_task;
    Vec.add_inplace ws.Ws.theta_next (Vec.scale nullspace_gain z_proj);
    0
  in
  Loop.run ?config ~workspace:ws ~speculations:1 ~step problem

let optimize ?(iterations = 100) ?(gain = 0.05) ?(lambda = 0.05) ~objective chain
    ~target ~theta =
  if iterations < 0 then invalid_arg "Nullspace.optimize: negative iterations";
  let theta = ref (Vec.copy theta) in
  for _ = 1 to iterations do
    let j = Jacobian.position_jacobian chain !theta in
    (* projected secondary step *)
    let z = objective_gradient objective chain !theta in
    let jz = Mat.mul_vec j z in
    let y = damped_gram_solve j lambda jz in
    let z_proj = Vec.sub z (Mat.mul_transpose_vec j y) in
    Vec.add_inplace !theta (Vec.scale gain z_proj);
    (* task re-correction keeps the end effector pinned *)
    let e = Vec3.sub target (Fk.position chain !theta) in
    let j' = Jacobian.position_jacobian chain !theta in
    let y' = damped_gram_solve j' lambda (Vec3.to_vec e) in
    Vec.add_inplace !theta (Mat.mul_transpose_vec j' y')
  done;
  !theta
