open Dadu_linalg

(** Shared iteration driver for all IK solvers.

    Centralizes the termination contract (accuracy check, iteration cap,
    stall detection) so every solver counts iterations identically — the
    precondition for the paper's cross-method iteration comparisons. *)

type step_input = {
  iter : int;  (** 0-based index of the current iteration *)
  theta : Vec.t;  (** current configuration (do not mutate) *)
  frames : Mat4.t array;  (** cumulative transforms at [theta] *)
  e : Vec3.t;  (** position error vector [X_t − f(θ)] *)
  err : float;  (** [‖e‖] *)
}

type step_output = {
  theta' : Vec.t;  (** next configuration *)
  sweeps : int;  (** SVD sweeps consumed by this step (0 if none) *)
}

val run :
  ?config:Ik.config ->
  ?on_iteration:(iter:int -> err:float -> unit) ->
  speculations:int ->
  step:(step_input -> step_output) ->
  Ik.problem ->
  Ik.result
(** Runs [step] until the error at the top of an iteration is below
    [config.accuracy], the cap is hit, or — when [stall_iterations] is set
    — the error has not improved for that many consecutive iterations.
    [Ik.result.iterations] is the number of [step] calls executed.

    [on_iteration] observes the error at the top of every iteration
    (including the final one that terminates the loop) — used by the
    convergence-profile experiment; it must not mutate solver state. *)
