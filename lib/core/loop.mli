(** Shared iteration driver for all IK solvers.

    Centralizes the termination contract (accuracy check, iteration cap,
    stall detection) so every solver counts iterations identically — the
    precondition for the paper's cross-method iteration comparisons.

    The driver owns the per-iteration state through a {!Workspace.t}: at
    the top of each iteration it refreshes [ws.frames] (via the
    workspace's FK scratch), the task-space error [ws.e], and the scalars
    [ws.scalars.err] / [ws.iter]; the step callback reads those, writes
    the next configuration into [ws.theta_next], and returns the SVD
    sweeps it consumed (0 if none).  The driver then pointer-swaps
    [theta]/[theta_next].  A step that keeps the configuration must copy
    [ws.theta] into [ws.theta_next] (e.g. [Vec.blit]).  With a
    well-behaved step the loop allocates nothing per iteration. *)

val run :
  ?config:Ik.config ->
  ?on_iteration:(iter:int -> err:float -> unit) ->
  workspace:Workspace.t ->
  speculations:int ->
  step:(Workspace.t -> int) ->
  Ik.problem ->
  Ik.result
(** Runs [step] until the error at the top of an iteration is below
    [config.accuracy], the cap is hit, or — when [stall_iterations] is set
    — the error has not improved for that many consecutive iterations.
    [Ik.result.iterations] is the number of [step] calls executed.

    When [config.guard] is set the driver additionally aborts with
    {!Ik.Diverged}: immediately on a non-finite error or configuration
    (checked at the top of every iteration, before the accuracy test —
    a NaN error compares false against every threshold, so the unguarded
    loop would otherwise spin the full cap), or once the error has
    exceeded [explode_factor × max initial-error accuracy] for
    [explode_patience] consecutive iterations.  With [guard = None]
    (the default) the guard code is never executed and every trace is
    bit-identical to the historical driver.

    The workspace [dof] must match the problem's chain.  [theta0] is
    copied in, and the result's [theta] is a fresh copy, so callers never
    alias workspace internals.

    [on_iteration] observes the error at the top of every iteration
    (including the final one that terminates the loop) — used by the
    convergence-profile experiment; it must not mutate solver state.
    (The call boxes [err], so allocation-sensitive callers pass [None].) *)
