(** Shared iteration driver for all IK solvers.

    Centralizes the termination contract (accuracy check, iteration cap,
    stall detection) so every solver counts iterations identically — the
    precondition for the paper's cross-method iteration comparisons.

    The driver owns the per-iteration state through a {!Workspace.t}: at
    the top of each iteration it refreshes [ws.frames] (via the
    workspace's FK scratch), the task-space error [ws.e], and the scalars
    [ws.scalars.err] / [ws.iter]; the step callback reads those, writes
    the next configuration into [ws.theta_next], and returns the SVD
    sweeps it consumed (0 if none).  The driver then pointer-swaps
    [theta]/[theta_next].  A step that keeps the configuration must copy
    [ws.theta] into [ws.theta_next] (e.g. [Vec.blit]).  With a
    well-behaved step the loop allocates nothing per iteration.

    The driver is exposed in two forms.  {!run} executes a whole solve.
    The resumable form — {!start} / {!advance} / {!result} — packs one
    solve into a {e lane} and executes it one iteration per {!advance}
    call; {!run} itself is built on it, so interleaving [advance] calls
    across many lanes (the {!Megabatch} lockstep driver) is bit-identical
    per lane to running each solve to completion: there is only one
    per-iteration code path. *)

type state
(** One in-flight solve: the workspace, the step callback, and the loop's
    control state (iteration count, stall/guard bookkeeping, terminal
    status).  A state borrows its workspace exclusively until {!result}
    has been read. *)

val start :
  ?config:Ik.config ->
  workspace:Workspace.t ->
  speculations:int ->
  step:(Workspace.t -> int) ->
  Ik.problem ->
  state
(** Packs [problem] into a fresh lane: copies [theta0] into the
    workspace and resets the driver scalars.  The workspace [dof] must
    match the problem's chain (raises [Invalid_argument] otherwise).
    Allocates only the state record — nothing per subsequent
    iteration. *)

val advance : ?on_iteration:(iter:int -> err:float -> unit) -> state -> unit
(** Executes exactly one iteration: refreshes FK/error, applies the
    termination contract, and (when not terminal) runs the step and
    pointer-swaps θ.  A no-op once the lane has finished.
    [on_iteration] observes the error at the top of the iteration
    (including the terminal one); it must not mutate solver state.  (The
    call boxes [err], so allocation-sensitive callers pass [None].) *)

val finished : state -> bool

val iterations : state -> int
(** Step calls executed so far. *)

val workspace : state -> Workspace.t
(** The workspace the lane was started with ([ws.scalars.err] is the
    error at the top of the last executed iteration — the live per-lane
    progress signal of the mega-batch planes). *)

val result : state -> Ik.result
(** The terminal result; raises [Invalid_argument] while the lane is
    still running.  [theta] is a fresh copy, so callers never alias
    workspace internals (and the workspace may be repacked for another
    lane afterwards). *)

val run :
  ?config:Ik.config ->
  ?on_iteration:(iter:int -> err:float -> unit) ->
  workspace:Workspace.t ->
  speculations:int ->
  step:(Workspace.t -> int) ->
  Ik.problem ->
  Ik.result
(** Runs [step] until the error at the top of an iteration is below
    [config.accuracy], the cap is hit, or — when [stall_iterations] is set
    — the error has not improved for that many consecutive iterations.
    [Ik.result.iterations] is the number of [step] calls executed.

    When [config.guard] is set the driver additionally aborts with
    {!Ik.Diverged}: immediately on a non-finite error or configuration
    (checked at the top of every iteration, before the accuracy test —
    a NaN error compares false against every threshold, so the unguarded
    loop would otherwise spin the full cap), or once the error has
    exceeded [explode_factor × max initial-error accuracy] for
    [explode_patience] consecutive iterations.  With [guard = None]
    (the default) the guard code is never executed and every trace is
    bit-identical to the historical driver.

    The workspace [dof] must match the problem's chain.  [theta0] is
    copied in, and the result's [theta] is a fresh copy, so callers never
    alias workspace internals.

    [on_iteration] observes the error at the top of every iteration
    (including the final one that terminates the loop) — used by the
    convergence-profile experiment; it must not mutate solver state. *)
