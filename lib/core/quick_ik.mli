open Dadu_util

(** Quick-IK: speculative parallel search over the transpose step size
    (paper §4, Algorithm 1).

    Each iteration computes the shared serial part — Jacobian, base update
    [Δθ_base = Jᵀe], base scalar [α_base] (Eq. 8) — then evaluates [Max]
    candidate steps [α_k = (k/Max)·α_base] (Eq. 9), keeping the candidate
    whose FK lands closest to the target.  Candidate evaluation runs on
    the link-major position-only kernel
    ({!Dadu_kinematics.Fk.speculate_range_into}): one backward tool→base
    sweep folds every candidate's end-effector position and squared target
    error, so no candidate ever pays for the full pose product, a θ
    buffer, or a [sqrt].  The candidates are independent, so they
    parallelize across domains (here) or SSUs (in IKAcc). *)

type strategy =
  | Uniform  (** paper Eq. 9: [α_k = (k/Max)·α_base] over [(0, α_base]] *)
  | Log_spaced
      (** ablation: geometric spacing over the same range — denser near
          [α_base], sparser near 0 *)
  | Extended of float
      (** ablation: uniform over [(0, factor·α_base]]; [Extended 1.0] is
          {!Uniform}, [Extended 2.0] also speculates overshoot *)

type mode =
  | Sequential
  | Parallel of Domain_pool.t
      (** evaluates candidates on the pool in ~pool-size contiguous chunks
          (one kernel sweep per chunk), falling back to the sequential
          sweep when [dof × Max] is below a measured dispatch-latency
          threshold; results are bit-identical to [Sequential] in either
          case (pure candidate evaluation, deterministic minimum-error
          selection with ties broken toward smaller [k]) *)

val solve :
  ?speculations:int ->
  ?strategy:strategy ->
  ?mode:mode ->
  ?on_iteration:(iter:int -> err:float -> unit) ->
  ?workspace:Workspace.t ->
  Ik.solver
(** [speculations] is the paper's [Max], default 64 (the paper's chosen
    operating point, Figure 4); must be positive.  [strategy] defaults to
    [Uniform], [mode] to [Sequential]. *)

val prepare_step :
  ?speculations:int ->
  ?strategy:strategy ->
  ?mode:mode ->
  ?workspace:Workspace.t ->
  Ik.problem ->
  Workspace.t * (Workspace.t -> int)
(** The workspace and per-iteration step closure {!solve} would run
    through {!Loop.run}: candidate pools ensured, the Log-spaced ladder
    hoisted, the chain precompiled into the FK scratch.  {!Megabatch}
    packs the pair into a {!Loop.start} lane and advances it in lockstep
    with other lanes; a lane's θ trace, iteration count and status are
    bit-identical to [solve] on the same problem because both execute
    this exact closure under the one {!Loop} iteration body. *)
