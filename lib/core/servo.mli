open Dadu_linalg
open Dadu_kinematics

(** Trajectory tracking: repeated IK along a workspace path with warm
    starts — the control-loop usage behind the paper's "real-time IK
    solver" framing.

    Each waypoint's solve starts from the previous waypoint's solution, so
    after the first (cold) solve the per-waypoint cost collapses to a
    couple of iterations. *)

type waypoint = {
  index : int;
  target : Vec3.t;
  result : Ik.result;
}

type report = {
  waypoints : waypoint array;  (** in path order *)
  converged : int;
  cold_start_iterations : int;  (** iterations of the first waypoint *)
  warm_mean_iterations : float;
      (** mean over the remaining waypoints (0 for a 1-point path) *)
  max_error : float;  (** worst final error across the path *)
}

val track :
  solver:(Ik.problem -> Ik.result) ->
  chain:Chain.t ->
  theta0:Vec.t ->
  Vec3.t array ->
  report
(** [track ~solver ~chain ~theta0 path] solves every waypoint in order.
    A waypoint that fails to converge still hands its (best-effort) final
    configuration to the next one, as a controller would.  Raises
    [Invalid_argument] on an empty path. *)
