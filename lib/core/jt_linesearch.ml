module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

let golden = (sqrt 5. -. 1.) /. 2.

(* All-float (flat) golden-section search state: the loop below exchanges
   the probe argument [q] and its error [r] through record fields instead
   of a float-returning closure, which would box on every evaluation. *)
type search = {
  mutable a : float;
  mutable b : float;
  mutable x1 : float;
  mutable x2 : float;
  mutable f1 : float;
  mutable f2 : float;
  mutable q : float;
  mutable r : float;
}

let solve ?(evaluations = 20) ?(range = 1.0) ?on_iteration ?workspace ?config
    (problem : Ik.problem) =
  if evaluations < 2 then
    invalid_arg "Jt_linesearch.solve: need at least 2 evaluations";
  if range <= 0. then invalid_arg "Jt_linesearch.solve: range must be positive";
  let { Ik.chain; target; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
  let s = { a = 0.; b = 0.; x1 = 0.; x2 = 0.; f1 = 0.; f2 = 0.; q = 0.; r = 0. } in
  (* Allocated once per solve (a per-iteration closure would allocate);
     [theta]/[theta_next] are re-read from the workspace at call time
     because the driver pointer-swaps them.  theta_next doubles as the
     probe configuration buffer: it is rewritten with the accepted step
     (or the unchanged theta) before the step returns. *)
  let eval () =
    let th = ws.Ws.theta and nx = ws.Ws.theta_next and dt = ws.Ws.dtheta in
    let alpha = s.q in
    for i = 0 to dof - 1 do
      Array.unsafe_set nx i
        ((alpha *. Array.unsafe_get dt i) +. Array.unsafe_get th i)
    done;
    Fk.run ~scratch:ws.Ws.fk chain nx;
    let m = Fk.end_transform ws.Ws.fk in
    let dx = tx -. m.(3) and dy = ty -. m.(7) and dz = tz -. m.(11) in
    s.r <- sqrt (((dx *. dx) +. (dy *. dy)) +. (dz *. dz))
  in
  let step ws =
    Jacobian.position_jacobian_into ~dst:ws.Ws.jac chain ws.Ws.frames;
    Mat.gemv_t_into ~dst:ws.Ws.dtheta ws.Ws.jac ws.Ws.e;
    Mat.gemv_into ~dst:ws.Ws.tmp3 ws.Ws.jac ws.Ws.dtheta;
    let jx = ws.Ws.tmp3.(0) and jy = ws.Ws.tmp3.(1) and jz = ws.Ws.tmp3.(2) in
    let denom = (jx *. jx) +. (jy *. jy) +. (jz *. jz) in
    let alpha_base =
      if denom < 1e-30 then 0.
      else
        ((ws.Ws.e.(0) *. jx) +. (ws.Ws.e.(1) *. jy) +. (ws.Ws.e.(2) *. jz))
        /. denom
    in
    if alpha_base = 0. then begin
      Vec.blit ws.Ws.theta ws.Ws.theta_next;
      0
    end
    else begin
      s.a <- 0.;
      s.b <- range *. alpha_base;
      s.x1 <- s.b -. (golden *. (s.b -. s.a));
      s.x2 <- s.a +. (golden *. (s.b -. s.a));
      s.q <- s.x1;
      eval ();
      s.f1 <- s.r;
      s.q <- s.x2;
      eval ();
      s.f2 <- s.r;
      let remaining = ref (evaluations - 2) in
      while !remaining > 0 do
        if s.f1 < s.f2 then begin
          s.b <- s.x2;
          s.x2 <- s.x1;
          s.f2 <- s.f1;
          s.x1 <- s.b -. (golden *. (s.b -. s.a));
          s.q <- s.x1;
          eval ();
          s.f1 <- s.r
        end
        else begin
          s.a <- s.x1;
          s.x1 <- s.x2;
          s.f1 <- s.f2;
          s.x2 <- s.a +. (golden *. (s.b -. s.a));
          s.q <- s.x2;
          eval ();
          s.f2 <- s.r
        end;
        decr remaining
      done;
      let best_alpha = if s.f1 < s.f2 then s.x1 else s.x2 in
      let best_err = if s.f1 < s.f2 then s.f1 else s.f2 in
      let th = ws.Ws.theta and nx = ws.Ws.theta_next and dt = ws.Ws.dtheta in
      (* never regress: α = 0 keeps the current error *)
      if best_err < ws.Ws.scalars.Ws.err then
        for i = 0 to dof - 1 do
          Array.unsafe_set nx i
            ((best_alpha *. Array.unsafe_get dt i) +. Array.unsafe_get th i)
        done
      else Vec.blit th nx;
      0
    end
  in
  Loop.run ?config ?on_iteration ~workspace:ws ~speculations:evaluations ~step
    problem
