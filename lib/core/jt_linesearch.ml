open Dadu_linalg
open Dadu_kinematics

let golden = (sqrt 5. -. 1.) /. 2.

(* Golden-section minimization of f over [0, hi] with a fixed evaluation
   budget; returns the best argument probed. *)
let golden_section ~budget f hi =
  let a = ref 0. and b = ref hi in
  let x1 = ref (!b -. (golden *. (!b -. !a))) in
  let x2 = ref (!a +. (golden *. (!b -. !a))) in
  let f1 = ref (f !x1) and f2 = ref (f !x2) in
  let remaining = ref (budget - 2) in
  while !remaining > 0 do
    if !f1 < !f2 then begin
      b := !x2;
      x2 := !x1;
      f2 := !f1;
      x1 := !b -. (golden *. (!b -. !a));
      f1 := f !x1
    end
    else begin
      a := !x1;
      x1 := !x2;
      f1 := !f2;
      x2 := !a +. (golden *. (!b -. !a));
      f2 := f !x2
    end;
    decr remaining
  done;
  if !f1 < !f2 then (!x1, !f1) else (!x2, !f2)

let solve ?(evaluations = 20) ?(range = 1.0) ?on_iteration ?config (problem : Ik.problem) =
  if evaluations < 2 then
    invalid_arg "Jt_linesearch.solve: need at least 2 evaluations";
  if range <= 0. then invalid_arg "Jt_linesearch.solve: range must be positive";
  let { Ik.chain; target; _ } = problem in
  let scratch = Fk.make_scratch () in
  let step { Loop.theta; frames; e; err; _ } =
    let j = Jacobian.position_jacobian_of_frames chain frames in
    let dtheta_base = Mat.mul_transpose_vec j (Vec3.to_vec e) in
    let alpha_base = Alpha.buss ~j ~e ~dtheta_base in
    if alpha_base = 0. then { Loop.theta' = theta; sweeps = 0 }
    else begin
      let error_at alpha =
        let cand = Vec.axpy alpha dtheta_base theta in
        Vec3.dist target (Fk.position ~scratch chain cand)
      in
      let best_alpha, best_err =
        golden_section ~budget:evaluations error_at (range *. alpha_base)
      in
      (* never regress: α = 0 keeps the current error *)
      if best_err < err then { Loop.theta' = Vec.axpy best_alpha dtheta_base theta; sweeps = 0 }
      else { Loop.theta' = theta; sweeps = 0 }
    end
  in
  Loop.run ?config ?on_iteration ~speculations:evaluations ~step problem
