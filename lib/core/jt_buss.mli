(** Jacobian transpose with Buss' adaptive scalar (Eq. 8) — ablation.

    Equivalent to Quick-IK with a single speculation fixed at [k = Max]:
    every iteration steps by [α_base·Jᵀ·e].  Isolates how much of
    Quick-IK's gain comes from the adaptive base scalar alone versus the
    speculative search around it (see the ablation bench and
    EXPERIMENTS.md). *)

val solve :
  ?on_iteration:(iter:int -> err:float -> unit) ->
  ?workspace:Workspace.t ->
  Ik.solver
