(** Random-restart wrapper.

    IK from a random start can land in a local minimum (CCD is especially
    prone; the transpose family stalls near singular folds).  The paper's
    protocol draws one random start per target; this wrapper retries with
    fresh starts until a solve converges, which is how a production solver
    wraps any of the methods here. *)

type outcome = {
  result : Ik.result;
  attempts : int;  (** starts consumed, 1..max_attempts *)
  total_iterations : int;  (** summed over every attempt (honest cost) *)
}

val solve :
  Dadu_util.Rng.t ->
  ?max_attempts:int ->
  solver:(Ik.problem -> Ik.result) ->
  Ik.problem ->
  outcome
(** [solve rng ~solver problem] tries [problem] as given, then up to
    [max_attempts − 1] (default 5 total) more times with freshly sampled
    start configurations (the target never changes).  Returns the first
    converged outcome, or — if none converge — the attempt with the
    smallest final error. *)
