open Dadu_linalg
open Dadu_kinematics

let solve ?on_iteration ?config (problem : Ik.problem) =
  let step { Loop.theta; frames; e; _ } =
    let j = Jacobian.position_jacobian_of_frames problem.Ik.chain frames in
    let dtheta_base = Mat.mul_transpose_vec j (Vec3.to_vec e) in
    let alpha = Alpha.buss ~j ~e ~dtheta_base in
    { Loop.theta' = Vec.axpy alpha dtheta_base theta; sweeps = 0 }
  in
  Loop.run ?config ?on_iteration ~speculations:1 ~step problem
