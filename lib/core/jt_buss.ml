module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

let solve ?on_iteration ?workspace ?config (problem : Ik.problem) =
  let { Ik.chain; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  (* α_base = ⟨e, J·Jᵀe⟩ / ‖J·Jᵀe‖² (Eq. 8), computed inline in the step
     body so every float stays in an unboxed local — same association
     order as [Alpha.buss], so results are bit-identical. *)
  let step ws =
    Jacobian.position_jacobian_into ~dst:ws.Ws.jac chain ws.Ws.frames;
    Mat.gemv_t_into ~dst:ws.Ws.dtheta ws.Ws.jac ws.Ws.e;
    Mat.gemv_into ~dst:ws.Ws.tmp3 ws.Ws.jac ws.Ws.dtheta;
    let jx = ws.Ws.tmp3.(0) and jy = ws.Ws.tmp3.(1) and jz = ws.Ws.tmp3.(2) in
    let denom = (jx *. jx) +. (jy *. jy) +. (jz *. jz) in
    let alpha =
      if denom < 1e-30 then 0.
      else
        ((ws.Ws.e.(0) *. jx) +. (ws.Ws.e.(1) *. jy) +. (ws.Ws.e.(2) *. jz))
        /. denom
    in
    let th = ws.Ws.theta and nx = ws.Ws.theta_next and dt = ws.Ws.dtheta in
    for i = 0 to dof - 1 do
      Array.unsafe_set nx i
        ((alpha *. Array.unsafe_get dt i) +. Array.unsafe_get th i)
    done;
    0
  in
  Loop.run ?config ?on_iteration ~workspace:ws ~speculations:1 ~step problem
