module Ws = Workspace
open Dadu_linalg
open Dadu_kinematics

(* r_i = sum of link extents distal to joint i; a revolute column's norm
   ‖z × (p_end − p_i)‖ never exceeds it, and a prismatic column has unit
   norm, also bounded when links are at least that long.  Then
   λ_max(JJᵀ) ≤ tr(JJᵀ) = Σ‖J_i‖² ≤ Σ r_i². *)
let stability_bound chain =
  let links = Chain.links chain in
  let n = Array.length links in
  let bound = ref 0. in
  let distal = ref 0. in
  for i = n - 1 downto 0 do
    let { Chain.joint; dh; _ } = links.(i) in
    let travel =
      match joint.Joint.kind with
      | Joint.Revolute -> 0.
      | Joint.Prismatic ->
        if Joint.unbounded joint then 1.
        else Float.max (Float.abs joint.Joint.lower) (Float.abs joint.Joint.upper)
    in
    distal := !distal +. Float.abs dh.Dh.a +. Float.abs dh.Dh.d +. travel;
    let column_bound =
      match joint.Joint.kind with Joint.Revolute -> !distal | Joint.Prismatic -> 1.
    in
    bound := !bound +. (column_bound *. column_bound)
  done;
  !bound

let solve ?alpha ?(gain = 1.0) ?on_iteration ?workspace ?config
    (problem : Ik.problem) =
  let { Ik.chain; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  let alpha =
    match alpha with
    | Some a -> a
    | None ->
      let bound = stability_bound chain in
      if bound < 1e-12 then gain else gain /. bound
  in
  (* Δθ = α·Jᵀe.  The axpy is inlined so [alpha] (boxed once in the
     closure) never re-crosses a call boundary: zero allocation per
     iteration. *)
  let step ws =
    Jacobian.position_jacobian_into ~dst:ws.Ws.jac chain ws.Ws.frames;
    Mat.gemv_t_into ~dst:ws.Ws.dtheta ws.Ws.jac ws.Ws.e;
    let th = ws.Ws.theta and nx = ws.Ws.theta_next and dt = ws.Ws.dtheta in
    for i = 0 to dof - 1 do
      Array.unsafe_set nx i
        ((alpha *. Array.unsafe_get dt i) +. Array.unsafe_get th i)
    done;
    0
  in
  Loop.run ?config ?on_iteration ~workspace:ws ~speculations:1 ~step problem
