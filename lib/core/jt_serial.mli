(** The original Jacobian-transpose IK method — the paper's "JT-Serial"
    baseline (§3, Eq. 7; Wolovich & Elliott 1984).

    Steps by [Δθ = α·Jᵀ·e] with a *fixed* scalar [α].  Gradient descent on
    [‖e‖²] is stable only for [α < 2/λ_max(J·Jᵀ)], and a fixed scalar must
    satisfy that bound at {e every pose the solve visits}, so it has to be
    chosen against the workspace-wide worst case.  That worst-case bound
    grows cubically with DOF for a serial chain — which is exactly why the
    original method needs the enormous, DOF-exploding iteration counts the
    paper sets out to eliminate (Figure 5a's JT-Serial bars saturating at
    the 10 k cap). *)

val stability_bound : Dadu_kinematics.Chain.t -> float
(** Workspace-wide upper bound on [λ_max(J·Jᵀ)]:
    [Σᵢ rᵢ²] where [rᵢ] is the maximum distance from joint [i]'s axis to
    the end effector (sum of distal link extents).  [λ_max ≤ tr(JJᵀ) =
    Σᵢ‖Jᵢ‖² ≤ Σᵢ rᵢ²] at every configuration. *)

val solve :
  ?alpha:float ->
  ?gain:float ->
  ?on_iteration:(iter:int -> err:float -> unit) ->
  ?workspace:Workspace.t ->
  Ik.solver
(** If [alpha] is given it is used verbatim.  Otherwise
    [α = gain / stability_bound chain]; any [gain < 2] is provably stable
    everywhere, and the default [gain = 1.0] keeps a ×2 margin. *)
