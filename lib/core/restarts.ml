open Dadu_kinematics

type outcome = { result : Ik.result; attempts : int; total_iterations : int }

let solve rng ?(max_attempts = 5) ~solver (problem : Ik.problem) =
  if max_attempts <= 0 then invalid_arg "Restarts.solve: max_attempts must be positive";
  let rec go attempt total_iterations best =
    let problem =
      if attempt = 1 then problem
      else { problem with Ik.theta0 = Target.random_config rng problem.Ik.chain }
    in
    let result = solver problem in
    let total_iterations = total_iterations + result.Ik.iterations in
    let best =
      match best with
      | Some (prev : Ik.result) when prev.Ik.error <= result.Ik.error -> Some prev
      | Some _ | None -> Some result
    in
    match result.Ik.status with
    | Ik.Converged -> { result; attempts = attempt; total_iterations }
    | Ik.Max_iterations | Ik.Stalled | Ik.Diverged ->
      if attempt >= max_attempts then begin
        match best with
        | Some result -> { result; attempts = attempt; total_iterations }
        | None -> assert false
      end
      else go (attempt + 1) total_iterations best
  in
  go 1 0 None
