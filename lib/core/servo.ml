open Dadu_linalg
open Dadu_kinematics

type waypoint = { index : int; target : Vec3.t; result : Ik.result }

type report = {
  waypoints : waypoint array;
  converged : int;
  cold_start_iterations : int;
  warm_mean_iterations : float;
  max_error : float;
}

let track ~solver ~chain ~theta0 path =
  if Array.length path = 0 then invalid_arg "Servo.track: empty path";
  Chain.check_config chain theta0;
  let theta = ref (Vec.copy theta0) in
  let waypoints =
    Array.mapi
      (fun index target ->
        let problem = Ik.problem ~chain ~target ~theta0:!theta in
        let result = solver problem in
        theta := result.Ik.theta;
        { index; target; result })
      path
  in
  let converged =
    Array.fold_left
      (fun acc w ->
        match w.result.Ik.status with
        | Ik.Converged -> acc + 1
        | Ik.Max_iterations | Ik.Stalled | Ik.Diverged -> acc)
      0 waypoints
  in
  let warm = Array.length waypoints - 1 in
  let warm_total =
    Array.fold_left
      (fun acc w -> if w.index = 0 then acc else acc + w.result.Ik.iterations)
      0 waypoints
  in
  {
    waypoints;
    converged;
    cold_start_iterations = waypoints.(0).result.Ik.iterations;
    warm_mean_iterations =
      (if warm = 0 then 0. else float_of_int warm_total /. float_of_int warm);
    max_error =
      Array.fold_left (fun acc w -> Float.max acc w.result.Ik.error) 0. waypoints;
  }
