module Ws = Workspace
open Dadu_util
open Dadu_linalg
open Dadu_kinematics

type strategy = Uniform | Log_spaced | Extended of float

type mode = Sequential | Parallel of Domain_pool.t

let solve ?(speculations = 64) ?(strategy = Uniform) ?(mode = Sequential)
    ?on_iteration ?workspace ?config (problem : Ik.problem) =
  if speculations <= 0 then invalid_arg "Quick_ik.solve: speculations must be positive";
  let { Ik.chain; target; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  (* Per-candidate buffers live in the workspace and are reused across
     iterations (and solves); each candidate owns its FK scratch so
     parallel evaluation never shares mutable state. *)
  Ws.ensure_candidates ws speculations;
  let cand_theta = ws.Ws.cand_theta in
  let cand_err = ws.Ws.cand_err in
  let cand_fk = ws.Ws.cand_fk in
  let coeffs = ws.Ws.coeffs in
  let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
  (* Allocated once per solve (defining it inside [step] would allocate a
     closure every iteration); [theta] and [dtheta] are re-read from the
     workspace at call time because the driver pointer-swaps them. *)
  let evaluate k =
    let th = ws.Ws.theta and dt = ws.Ws.dtheta in
    let alpha = coeffs.(k) in
    let dst = cand_theta.(k) in
    for i = 0 to dof - 1 do
      Array.unsafe_set dst i
        ((alpha *. Array.unsafe_get dt i) +. Array.unsafe_get th i)
    done;
    let scratch = cand_fk.(k) in
    Fk.run ~scratch chain dst;
    let m = Fk.end_transform scratch in
    let dx = tx -. m.(3) and dy = ty -. m.(7) and dz = tz -. m.(11) in
    cand_err.(k) <- sqrt (((dx *. dx) +. (dy *. dy)) +. (dz *. dz))
  in
  let step ws =
    Jacobian.position_jacobian_into ~dst:ws.Ws.jac chain ws.Ws.frames;
    Mat.gemv_t_into ~dst:ws.Ws.dtheta ws.Ws.jac ws.Ws.e;
    (* α_base (Eq. 8) inline, same association order as [Alpha.buss]. *)
    Mat.gemv_into ~dst:ws.Ws.tmp3 ws.Ws.jac ws.Ws.dtheta;
    let jx = ws.Ws.tmp3.(0) and jy = ws.Ws.tmp3.(1) and jz = ws.Ws.tmp3.(2) in
    let denom = (jx *. jx) +. (jy *. jy) +. (jz *. jz) in
    let alpha_base =
      if denom < 1e-30 then 0.
      else
        ((ws.Ws.e.(0) *. jx) +. (ws.Ws.e.(1) *. jy) +. (ws.Ws.e.(2) *. jz))
        /. denom
    in
    if alpha_base = 0. then begin
      Vec.blit ws.Ws.theta ws.Ws.theta_next;
      0
    end
    else begin
      (* The step-size ladder (Eq. 9), written into the coeffs buffer so
         no float crosses a call boundary.  Uniform: α_k = (k/Max)·α_base;
         Extended scales the interval; Log_spaced is a geometric ladder
         with the same endpoints (α_min = α_base/Max, α_max = α_base). *)
      let max = float_of_int speculations in
      (match strategy with
      | Uniform ->
        for k = 0 to speculations - 1 do
          coeffs.(k) <- float_of_int (k + 1) /. max *. alpha_base
        done
      | Extended factor ->
        for k = 0 to speculations - 1 do
          coeffs.(k) <- float_of_int (k + 1) /. max *. factor *. alpha_base
        done
      | Log_spaced ->
        if speculations = 1 then coeffs.(0) <- alpha_base
        else begin
          let ratio = (1. /. max) ** (1. /. (max -. 1.)) in
          for k = 0 to speculations - 1 do
            coeffs.(k) <- alpha_base *. (ratio ** (max -. float_of_int (k + 1)))
          done
        end);
      (match mode with
      | Sequential ->
        for k = 0 to speculations - 1 do
          evaluate k
        done
      | Parallel pool -> Domain_pool.parallel_for pool speculations evaluate);
      (* Algorithm 1 line 16: minimum error, ties toward smaller k. *)
      let best = ref 0 in
      for k = 1 to speculations - 1 do
        if cand_err.(k) < cand_err.(!best) then best := k
      done;
      Vec.blit cand_theta.(!best) ws.Ws.theta_next;
      0
    end
  in
  Loop.run ?config ?on_iteration ~workspace:ws ~speculations ~step problem
