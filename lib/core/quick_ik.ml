module Ws = Workspace
open Dadu_util
open Dadu_linalg
open Dadu_kinematics

type strategy = Uniform | Log_spaced | Extended of float

type mode = Sequential | Parallel of Domain_pool.t

(* Below this many candidate·link folds the link-major kernel finishes
   before a sleeping worker even wakes from the pool's broadcast: the
   sweep runs ~12 ns per candidate·link (tools/cutover_probe on the
   reference container), so 4096 folds ≈ 50 µs of work — roughly 10× a
   multi-core pool's wake-up latency, leaving headroom for faster hosts.
   See the chunking cost model in DESIGN.md §9; rerun the probe when
   retuning this for new hardware. *)
let parallel_cutover = 4096

(* Builds the workspace and the per-iteration step closure of one solve.
   [solve] runs it through [Loop.run]; the lockstep [Megabatch] driver
   runs the same closure through [Loop.start]/[Loop.advance] — a lane is
   bit-identical to the serial solve because both execute this exact
   code. *)
let prepare_step ?(speculations = 64) ?(strategy = Uniform) ?(mode = Sequential)
    ?workspace (problem : Ik.problem) =
  if speculations <= 0 then invalid_arg "Quick_ik.solve: speculations must be positive";
  let { Ik.chain; target; _ } = problem in
  let dof = Chain.dof chain in
  let ws = match workspace with Some w -> w | None -> Ws.create ~dof in
  (* Candidate state lives in the workspace as flat SoA planes and is
     reused across iterations (and solves); no per-candidate θ vectors or
     FK scratches exist — the kernel forms θ + α_k·Δθ on the fly. *)
  Ws.ensure_candidates ws speculations;
  let cand_pos = ws.Ws.cand_pos in
  let cand_err2 = ws.Ws.cand_err2 in
  let coeffs = ws.Ws.coeffs in
  let stride = Array.length cand_err2 in
  (* Log_spaced hoist: the geometric ladder ratio^(Max-1-k) depends only on
     Max, so the per-candidate [**] of the historical closed form is paid
     once per (workspace, Max) pairing instead of once per candidate per
     iteration; the per-iteration work is one multiply per candidate.  The
     powers are kept in closed form (not a running product), so the
     coefficients match the historical ones bit for bit. *)
  (match strategy with
  | Log_spaced when speculations > 1 && ws.Ws.ladder_for <> speculations ->
    if Array.length ws.Ws.ladder < speculations then
      ws.Ws.ladder <- Array.make speculations 0.;
    let ladder = ws.Ws.ladder in
    let max = float_of_int speculations in
    let ratio = (1. /. max) ** (1. /. (max -. 1.)) in
    for k = 0 to speculations - 1 do
      ladder.(k) <- ratio ** (max -. float_of_int (k + 1))
    done;
    ws.Ws.ladder_for <- speculations
  | Uniform | Extended _ | Log_spaced -> ());
  let ladder = ws.Ws.ladder in
  let tx = target.Vec3.x and ty = target.Vec3.y and tz = target.Vec3.z in
  (* Compile the chain constants into the workspace FK scratch up front:
     Parallel chunks then share the scratch strictly read-only. *)
  Fk.precompile ws.Ws.fk chain;
  (* Allocated once per solve; [theta] and [dtheta] are re-read from the
     workspace at call time because the driver pointer-swaps them. *)
  let eval_range lo hi =
    Fk.speculate_range_into ~scratch:ws.Ws.fk ~pos:cand_pos ~err2:cand_err2
      ~tx ~ty ~tz chain ~theta:ws.Ws.theta ~dtheta:ws.Ws.dtheta ~coeffs
      ~stride ~lo ~hi
  in
  let step ws =
    Jacobian.position_jacobian_into ~dst:ws.Ws.jac chain ws.Ws.frames;
    Mat.gemv_t_into ~dst:ws.Ws.dtheta ws.Ws.jac ws.Ws.e;
    (* α_base (Eq. 8) inline, same association order as [Alpha.buss]. *)
    Mat.gemv_into ~dst:ws.Ws.tmp3 ws.Ws.jac ws.Ws.dtheta;
    let jx = ws.Ws.tmp3.(0) and jy = ws.Ws.tmp3.(1) and jz = ws.Ws.tmp3.(2) in
    let denom = (jx *. jx) +. (jy *. jy) +. (jz *. jz) in
    let alpha_base =
      if denom < 1e-30 then 0.
      else
        ((ws.Ws.e.(0) *. jx) +. (ws.Ws.e.(1) *. jy) +. (ws.Ws.e.(2) *. jz))
        /. denom
    in
    if alpha_base = 0. then begin
      Vec.blit ws.Ws.theta ws.Ws.theta_next;
      0
    end
    else begin
      (* The step-size ladder (Eq. 9), written into the coeffs buffer so
         no float crosses a call boundary.  Uniform: α_k = (k/Max)·α_base;
         Extended scales the interval; Log_spaced is a geometric ladder
         with the same endpoints (α_min = α_base/Max, α_max = α_base),
         read from the hoisted power table. *)
      let max = float_of_int speculations in
      (match strategy with
      | Uniform ->
        for k = 0 to speculations - 1 do
          coeffs.(k) <- float_of_int (k + 1) /. max *. alpha_base
        done
      | Extended factor ->
        for k = 0 to speculations - 1 do
          coeffs.(k) <- float_of_int (k + 1) /. max *. factor *. alpha_base
        done
      | Log_spaced ->
        if speculations = 1 then coeffs.(0) <- alpha_base
        else
          for k = 0 to speculations - 1 do
            coeffs.(k) <- alpha_base *. Array.unsafe_get ladder k
          done);
      (* Speculation: one link-major sweep over all candidates.  Parallel
         mode splits [0, Max) into ~pool-size contiguous chunks (one
         kernel call each — candidates are independent, so any partition
         is bit-identical to the full sweep), unless the whole sweep is
         cheaper than waking the pool. *)
      (match mode with
      | Sequential -> eval_range 0 speculations
      | Parallel pool ->
        if dof * speculations < parallel_cutover then eval_range 0 speculations
        else begin
          let size = Domain_pool.size pool in
          let grain = (speculations + size - 1) / size in
          Domain_pool.parallel_for_chunks pool ~grain speculations eval_range
        end);
      (* Algorithm 1 line 16: minimum error, ties toward smaller k — on
         squared errors, which order exactly as the distances do. *)
      let best = ref 0 in
      for k = 1 to speculations - 1 do
        if cand_err2.(k) < cand_err2.(!best) then best := k
      done;
      (* Rebuild the winner's configuration with the same expression the
         kernel used, bit-identical to the θ-candidate the pose path
         materialized. *)
      let alpha = coeffs.(!best) in
      let th = ws.Ws.theta and dt = ws.Ws.dtheta and nx = ws.Ws.theta_next in
      for i = 0 to dof - 1 do
        Array.unsafe_set nx i
          ((alpha *. Array.unsafe_get dt i) +. Array.unsafe_get th i)
      done;
      0
    end
  in
  (ws, step)

let solve ?speculations ?strategy ?mode ?on_iteration ?workspace ?config
    (problem : Ik.problem) =
  let speculations = match speculations with Some s -> s | None -> 64 in
  let workspace, step =
    prepare_step ~speculations ?strategy ?mode ?workspace problem
  in
  Loop.run ?config ?on_iteration ~workspace ~speculations ~step problem
