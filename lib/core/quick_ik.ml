open Dadu_util
open Dadu_linalg
open Dadu_kinematics

type strategy = Uniform | Log_spaced | Extended of float

type mode = Sequential | Parallel of Domain_pool.t

let candidate_alpha strategy ~speculations ~alpha_base k =
  let max = float_of_int speculations in
  let kf = float_of_int (k + 1) in
  match strategy with
  | Uniform -> kf /. max *. alpha_base
  | Extended factor -> kf /. max *. factor *. alpha_base
  | Log_spaced ->
    if speculations = 1 then alpha_base
    else begin
      (* Geometric ladder with the same endpoints as Uniform:
         α_min = α_base/Max, α_max = α_base. *)
      let ratio = (1. /. max) ** (1. /. (max -. 1.)) in
      alpha_base *. (ratio ** (max -. kf))
    end

let solve ?(speculations = 64) ?(strategy = Uniform) ?(mode = Sequential) ?on_iteration ?config
    (problem : Ik.problem) =
  if speculations <= 0 then invalid_arg "Quick_ik.solve: speculations must be positive";
  let { Ik.chain; target; _ } = problem in
  let dof = Chain.dof chain in
  (* Per-candidate buffers, reused across iterations; each candidate owns
     its FK scratch so parallel evaluation never shares mutable state. *)
  let cand_theta = Array.init speculations (fun _ -> Vec.create dof) in
  let cand_err = Array.make speculations infinity in
  let scratches = Array.init speculations (fun _ -> Fk.make_scratch ()) in
  let step { Loop.theta; frames; e; _ } =
    let j = Jacobian.position_jacobian_of_frames chain frames in
    let dtheta_base = Mat.mul_transpose_vec j (Vec3.to_vec e) in
    let alpha_base = Alpha.buss ~j ~e ~dtheta_base in
    if alpha_base = 0. then { Loop.theta' = theta; sweeps = 0 }
    else begin
      let evaluate k =
        let alpha = candidate_alpha strategy ~speculations ~alpha_base k in
        Vec.axpy_into ~dst:cand_theta.(k) alpha dtheta_base theta;
        let x = Fk.position ~scratch:scratches.(k) chain cand_theta.(k) in
        cand_err.(k) <- Vec3.dist target x
      in
      (match mode with
      | Sequential ->
        for k = 0 to speculations - 1 do
          evaluate k
        done
      | Parallel pool -> Domain_pool.parallel_for pool speculations evaluate);
      (* Algorithm 1 line 16: minimum error, ties toward smaller k. *)
      let best = ref 0 in
      for k = 1 to speculations - 1 do
        if cand_err.(k) < cand_err.(!best) then best := k
      done;
      { Loop.theta' = Vec.copy cand_theta.(!best); sweeps = 0 }
    end
  in
  Loop.run ?config ?on_iteration ~speculations ~step problem
