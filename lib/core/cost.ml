open Dadu_kinematics

type per_iteration = { serial_flops : float; parallel_flops : float }

let total c = c.serial_flops +. c.parallel_flops

let serial_only serial_flops = { serial_flops; parallel_flops = 0. }

let fk_flops ~dof = float_of_int (Fk.flops_per_position dof)

let frames_flops ~dof = fk_flops ~dof

let jacobian_from_frames_flops ~dof = float_of_int (12 * dof)

let jt_e_flops ~dof = float_of_int (6 * dof)

let alpha_flops ~dof = float_of_int (Alpha.flops dof)

let update_flops ~dof = float_of_int (2 * dof)

let error_flops = 8.

(* Shared serial prologue of every Jacobian-transpose iteration: FK frames,
   error norm, Jacobian, Δθ_base = Jᵀe, α_base. *)
let jt_prologue ~dof =
  frames_flops ~dof +. error_flops
  +. jacobian_from_frames_flops ~dof
  +. jt_e_flops ~dof +. alpha_flops ~dof

let jt_buss ~dof = serial_only (jt_prologue ~dof +. update_flops ~dof)

let jt_serial ~dof =
  serial_only (jt_prologue ~dof -. alpha_flops ~dof +. update_flops ~dof)

let quick_ik ~dof ~speculations =
  let per_candidate = update_flops ~dof +. fk_flops ~dof +. error_flops in
  {
    serial_flops = jt_prologue ~dof;
    parallel_flops = float_of_int speculations *. per_candidate;
  }

(* One sweep over the 3 column pairs of the N×3 matrix: per pair three
   length-N dots (6N), the column rotation (4N), and the 3×3 V rotation. *)
let svd_sweep_flops ~dof = 3. *. ((10. *. float_of_int dof) +. 12.)

let apply_pinv_flops ~dof = float_of_int ((12 * dof) + 9)

let pinv_svd ~dof ~sweeps =
  serial_only
    (frames_flops ~dof +. error_flops
    +. jacobian_from_frames_flops ~dof
    +. (sweeps *. svd_sweep_flops ~dof)
    +. apply_pinv_flops ~dof +. update_flops ~dof)

let sdls ~dof ~sweeps =
  (* Pseudoinverse application plus per-direction damping bookkeeping:
     column norms (2N per column ≈ 6N) and three clamped accumulations. *)
  let damping = float_of_int ((6 * dof) + (3 * ((4 * dof) + 6))) in
  serial_only
    (frames_flops ~dof +. error_flops
    +. jacobian_from_frames_flops ~dof
    +. (sweeps *. svd_sweep_flops ~dof)
    +. damping +. update_flops ~dof)

let dls ~dof =
  let gram = float_of_int (12 * dof) in
  let solve3 = 60. in
  serial_only
    (frames_flops ~dof +. error_flops
    +. jacobian_from_frames_flops ~dof
    +. gram +. solve3 +. jt_e_flops ~dof +. update_flops ~dof)

let ccd ~dof =
  (* Each joint update recomputes frames and does a constant amount of
     projection work (two projections, two norms, one atan2 ≈ 40). *)
  let per_joint = frames_flops ~dof +. 40. in
  serial_only ((float_of_int dof *. per_joint) +. frames_flops ~dof +. error_flops)
