(** Batch solving: many independent IK problems at once.

    The paper's workload is 1 000 targets per configuration; a robot farm
    or an animation pipeline has the same shape.  Problems are independent,
    so they parallelize across domains at the *problem* level — coarser and
    more efficient than Quick-IK's per-iteration candidate parallelism. *)

type summary = {
  results : Ik.result array;  (** one per problem, in input order *)
  converged : int;
  mean_iterations : float;
  mean_error : float;
  wall_clock_s : float;
}

val solve :
  ?pool:Dadu_util.Domain_pool.t ->
  solver:(Ik.problem -> Ik.result) ->
  Ik.problem array ->
  summary
(** With [pool], problems are distributed over the pool's domains; the
    [solver] closure is then called concurrently, which every solver in
    this library supports (each solve owns its workspace) as long as the
    closure does not itself use [Quick_ik.Parallel] on the same pool.
    Results are positionally deterministic either way. *)
