open Dadu_linalg
open Dadu_kinematics

(** Shared inverse-kinematics types: problems, configuration, results.

    All solvers in this library share the same termination contract so
    their iteration counts are comparable (the paper's Figures 4–5 compare
    iteration counts across methods): stop when the end-effector position
    error drops below [accuracy], when [max_iterations] is reached, or —
    optionally — when no candidate has improved the error for
    [stall_iterations] consecutive iterations. *)

type problem = {
  chain : Chain.t;
  target : Vec3.t;
  theta0 : Vec.t;  (** initial joint configuration *)
}

val problem : chain:Chain.t -> target:Vec3.t -> theta0:Vec.t -> problem
(** Validates that [theta0] matches the chain's DOF. *)

val random_problem : Dadu_util.Rng.t -> Chain.t -> problem
(** Reachable target and random initial configuration, both drawn from the
    generator — the paper's per-target setup (Algorithm 1 line 1). *)

type invalid =
  | Dof_mismatch of { expected : int; got : int }
      (** [theta0] length differs from the chain's DOF *)
  | Nonfinite_target  (** NaN or infinite target coordinate *)
  | Nonfinite_theta0  (** NaN or infinite initial joint value *)

val validate : problem -> (unit, invalid) result
(** Typed pre-flight check for serving layers: a malformed problem is a
    client error to report, not an exception to let escape a worker
    domain.  The record type is concrete, so problems built by hand can
    bypass the {!problem} constructor's DOF check — [validate] re-checks
    everything. *)

val pp_invalid : Format.formatter -> invalid -> unit

type guard = {
  explode_factor : float;
      (** abort once the error exceeds this multiple of the initial
          error (floored at [accuracy], so a lucky near-zero start does
          not make the threshold impossible) … *)
  explode_patience : int;
      (** … for this many {e consecutive} iterations — one bad
          linesearch overshoot is forgiven, a trend is not *)
}

val default_guard : guard
(** [{explode_factor = 1e3; explode_patience = 10}] — generous enough
    that no healthy solver run in the test suite ever trips it. *)

type config = {
  accuracy : float;  (** position tolerance in meters; paper: 1e-2 *)
  max_iterations : int;  (** iteration cap; paper: 10_000 *)
  stall_iterations : int option;
      (** early stop after this many non-improving iterations; [None]
          reproduces the paper exactly *)
  guard : guard option;
      (** divergence guard: abort with {!Diverged} on a non-finite θ or
          error, or on the error-explosion rule above, instead of
          burning the remaining iteration budget.  [None] (the default)
          leaves every trace bit-identical to the unguarded driver —
          paper experiments never set it. *)
}

val default_config : config
(** [{accuracy = 1e-2; max_iterations = 10_000; stall_iterations = None;
    guard = None}] — the paper's §6.1 accuracy constraint. *)

type status =
  | Converged
  | Max_iterations
  | Stalled
  | Diverged
      (** the divergence guard fired: a non-finite configuration/error,
          or the error stayed exploded past the guard's threshold for
          its full patience.  Only produced when [config.guard] is set. *)

type result = {
  theta : Vec.t;  (** final joint configuration *)
  error : float;  (** final [‖X_t − f(θ)‖] *)
  iterations : int;  (** outer iterations executed *)
  speculations : int;  (** candidates evaluated per iteration (1 = serial) *)
  status : status;
  svd_sweeps : int;  (** total Jacobi sweeps (pseudoinverse methods only) *)
}

val work : result -> int
(** [speculations × iterations] — the paper's Figure 5(b) computation-load
    metric. *)

val error_of : Chain.t -> Vec3.t -> Vec.t -> float
(** [‖target − f(θ)‖]. *)

val pp_status : Format.formatter -> status -> unit

val pp_result : Format.formatter -> result -> unit

type solver = ?config:config -> problem -> result
(** Common solver shape; every module in this library exports one. *)
