open Dadu_linalg
open Dadu_kinematics

(** Full-pose (position + orientation) inverse kinematics — the extension
    of the paper's position-only task to the 6-DOF end-effector poses real
    manipulation needs.

    The task error is a weighted 6-vector twist: translation error stacked
    on [rotation_weight ×] the axis-angle vector of [R_target·R(θ)ᵀ].  All
    three solvers share the same termination contract (both error
    components under their tolerances), so iteration counts are
    comparable, mirroring the position-only suite. *)

type target = { position : Vec3.t; orientation : Rot.t }

val target_of_mat4 : Mat4.t -> target

type problem = { chain : Chain.t; target : target; theta0 : Vec.t }

val problem : chain:Chain.t -> target:target -> theta0:Vec.t -> problem

val random_problem : Dadu_util.Rng.t -> Chain.t -> problem
(** Target drawn as the FK pose of a random configuration (guaranteed
    feasible), start configuration random. *)

type config = {
  position_accuracy : float;  (** meters; default 1e-2 *)
  orientation_accuracy : float;  (** radians; default 1e-2 *)
  rotation_weight : float;
      (** meters-per-radian exchange rate in the stacked error; default
          0.5 (a 1-rad orientation error counts like 0.5 m) *)
  max_iterations : int;  (** default 10_000 *)
}

val default_config : config

type status = Converged | Max_iterations

type result = {
  theta : Vec.t;
  position_error : float;  (** final translation error, meters *)
  orientation_error : float;  (** final geodesic rotation error, radians *)
  iterations : int;
  speculations : int;
  status : status;
}

val error_twist : rotation_weight:float -> Chain.t -> target -> Vec.t -> Vec.t
(** The 6-dimensional weighted task error at a configuration
    ([e_pos ; w·e_rot]). *)

val solve_dls : ?lambda:float -> ?config:config -> problem -> result
(** Damped least squares on the full 6×N Jacobian ([lambda] default
    0.1). *)

val solve_jt : ?config:config -> problem -> result
(** Jacobian transpose with the Buss scalar generalized to the weighted
    6-D error. *)

val solve_quick : ?speculations:int -> ?config:config -> problem -> result
(** Quick-IK on the pose task: speculative search over the transpose step
    scalar, candidates ranked by the weighted 6-D error of their actual
    FK pose.  [speculations] default 64. *)

val pp_result : Format.formatter -> result -> unit
