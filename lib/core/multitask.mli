open Dadu_linalg
open Dadu_kinematics

(** Multi-point position tasks: several control points on one chain.

    The paper's related work dismisses CCD because it handles "only one
    end-effector"; the Jacobian family generalizes naturally — stack one
    3-row position Jacobian per control point and solve the joint system.
    This is the core of whole-body control: e.g. a snake robot holding its
    midpoint over a support while the tip reaches a goal. *)

type point_task = {
  link : int;
      (** control point = origin of the frame after this many links
          ([link = dof] is the end effector, [link = dof/2] mid-chain);
          must be in [\[1, dof\]] *)
  target : Vec3.t;
  weight : float;  (** relative importance; must be positive *)
}

type problem = {
  chain : Chain.t;
  tasks : point_task list;  (** at least one *)
  theta0 : Vec.t;
}

val problem : chain:Chain.t -> tasks:point_task list -> theta0:Vec.t -> problem
(** Validates link indices, weights, and the start configuration. *)

type result = {
  theta : Vec.t;
  errors : float list;  (** final per-task position errors, task order *)
  iterations : int;
  converged : bool;  (** every task within [accuracy] *)
}

val point_position : Chain.t -> Vec.t -> link:int -> Vec3.t
(** Position of a control point at a configuration. *)

val stacked_jacobian : Chain.t -> Vec.t -> tasks:point_task list -> Mat.t
(** The [3k×N] weighted task Jacobian (rows of task [t] scaled by its
    weight); joints distal to a control point get zero columns in its
    block. *)

val solve :
  ?accuracy:float -> ?max_iterations:int -> ?lambda:float -> problem -> result
(** Damped least squares on the stacked system.  [accuracy] defaults to
    1e-2 m (per task), [max_iterations] to 10 000, [lambda] to 0.1. *)
