open Dadu_linalg
open Dadu_kinematics

(* All-float record: stays flat, so field writes never allocate.  Hot
   scalars the iteration driver and solver steps exchange live here
   instead of crossing call boundaries as (boxed) float arguments. *)
type scalars = { mutable err : float; mutable best_err : float }

type t = {
  dof : int;
  fk : Fk.scratch;
  frames : Mat4.t array;
  jac : Mat.t;
  e : Vec.t;
  tmp3 : Vec.t;
  dtheta : Vec.t;
  mutable theta : Vec.t;
  mutable theta_next : Vec.t;
  a33 : Mat.t;
  l33 : Mat.t;
  y3 : Vec.t;
  scalars : scalars;
  mutable iter : int;
  mutable cand_theta : Vec.t array;
  mutable cand_err : float array;
  mutable cand_fk : Fk.scratch array;
  mutable coeffs : float array;
}

let create ~dof =
  if dof <= 0 then invalid_arg "Workspace.create: dof must be positive";
  {
    dof;
    fk = Fk.make_scratch ~dof ();
    frames = Array.init (dof + 1) (fun _ -> Array.make 16 0.);
    jac = Mat.create 3 dof;
    e = Vec.create 3;
    tmp3 = Vec.create 3;
    dtheta = Vec.create dof;
    theta = Vec.create dof;
    theta_next = Vec.create dof;
    a33 = Mat.create 3 3;
    l33 = Mat.create 3 3;
    y3 = Vec.create 3;
    scalars = { err = infinity; best_err = infinity };
    iter = 0;
    cand_theta = [||];
    cand_err = [||];
    cand_fk = [||];
    coeffs = [||];
  }

let dof t = t.dof

(* Speculative solvers grow the candidate pools on first use and keep them
   across iterations (and across solves when the workspace is reused). *)
let ensure_candidates t n =
  if Array.length t.cand_theta < n then begin
    t.cand_theta <- Array.init n (fun _ -> Vec.create t.dof);
    t.cand_err <- Array.make n infinity;
    t.cand_fk <- Array.init n (fun _ -> Fk.make_scratch ());
    t.coeffs <- Array.make n 0.
  end

(* One workspace per (domain, dof): solver fan-out via Domain_pool runs one
   solve at a time per domain, so reusing the cached workspace is safe as
   long as solves do not nest within a domain. *)
let pool_key : (int, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

let local ~dof =
  let tbl = Domain.DLS.get pool_key in
  match Hashtbl.find_opt tbl dof with
  | Some ws -> ws
  | None ->
    let ws = create ~dof in
    Hashtbl.add tbl dof ws;
    ws
