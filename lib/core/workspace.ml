open Dadu_linalg
open Dadu_kinematics

(* All-float record: stays flat, so field writes never allocate.  Hot
   scalars the iteration driver and solver steps exchange live here
   instead of crossing call boundaries as (boxed) float arguments. *)
type scalars = { mutable err : float; mutable best_err : float }

type t = {
  dof : int;
  fk : Fk.scratch;
  frames : Mat4.t array;
  jac : Mat.t;
  e : Vec.t;
  tmp3 : Vec.t;
  dtheta : Vec.t;
  mutable theta : Vec.t;
  mutable theta_next : Vec.t;
  a33 : Mat.t;
  l33 : Mat.t;
  y3 : Vec.t;
  scalars : scalars;
  mutable iter : int;
  mutable cand_pos : Vec.t;
  mutable cand_err2 : float array;
  mutable coeffs : float array;
  mutable ladder : float array;
  mutable ladder_for : int;
}

let create ~dof =
  if dof <= 0 then invalid_arg "Workspace.create: dof must be positive";
  {
    dof;
    fk = Fk.make_scratch ~dof ();
    frames = Array.init (dof + 1) (fun _ -> Array.make 16 0.);
    jac = Mat.create 3 dof;
    e = Vec.create 3;
    tmp3 = Vec.create 3;
    dtheta = Vec.create dof;
    theta = Vec.create dof;
    theta_next = Vec.create dof;
    a33 = Mat.create 3 3;
    l33 = Mat.create 3 3;
    y3 = Vec.create 3;
    scalars = { err = infinity; best_err = infinity };
    iter = 0;
    cand_pos = [||];
    cand_err2 = [||];
    coeffs = [||];
    ladder = [||];
    ladder_for = 0;
  }

let dof t = t.dof

(* Speculative solvers grow the candidate pools on first use and keep them
   across iterations (and across solves when the workspace is reused).
   The pools grow together, so [Array.length cand_err2] is the SoA plane
   stride of [cand_pos] even when a reused workspace is wider than the
   current speculation count. *)
let ensure_candidates t n =
  if Array.length t.cand_err2 < n then begin
    t.cand_pos <- Array.make (3 * n) 0.;
    t.cand_err2 <- Array.make n infinity;
    t.coeffs <- Array.make n 0.
  end

(* One workspace per (domain, dof): solver fan-out via Domain_pool runs one
   solve at a time per domain, so reusing the cached workspace is safe as
   long as solves do not nest within a domain. *)
let pool_key : (int, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

(* Process-global accounting across every domain's cache, split by the
   scheduler phase current when [local] ran.  Observability only (the
   serve bench reports them); int Atomics, so bumping them in [local]
   stays allocation-free.  The phase flag is set by the orchestrating
   domain at phase boundaries — phases never overlap, so one global flag
   attributes every domain's [local] calls correctly; code running
   outside a scheduler wave (direct solver calls, benches) counts as
   [Work], the historical behaviour. *)
type phase = Prepare | Work

let phase_flag = Atomic.make 0 (* 0 = Work (default), 1 = Prepare *)

let set_phase = function
  | Prepare -> Atomic.set phase_flag 1
  | Work -> Atomic.set phase_flag 0

let created_prepare = Atomic.make 0
let created_work = Atomic.make 0
let reused_prepare = Atomic.make 0
let reused_work = Atomic.make 0

type pool_stats = { created : int; reused : int }

let phase_stats = function
  | Prepare ->
    { created = Atomic.get created_prepare; reused = Atomic.get reused_prepare }
  | Work ->
    { created = Atomic.get created_work; reused = Atomic.get reused_work }

let local_stats () =
  {
    created = Atomic.get created_prepare + Atomic.get created_work;
    reused = Atomic.get reused_prepare + Atomic.get reused_work;
  }

let local_count () = Hashtbl.length (Domain.DLS.get pool_key)

let local ~dof =
  let prepare = Atomic.get phase_flag = 1 in
  let tbl = Domain.DLS.get pool_key in
  match Hashtbl.find_opt tbl dof with
  | Some ws ->
    Atomic.incr (if prepare then reused_prepare else reused_work);
    ws
  | None ->
    let ws = create ~dof in
    Hashtbl.add tbl dof ws;
    Atomic.incr (if prepare then created_prepare else created_work);
    ws
