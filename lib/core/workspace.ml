open Dadu_linalg
open Dadu_kinematics

(* All-float record: stays flat, so field writes never allocate.  Hot
   scalars the iteration driver and solver steps exchange live here
   instead of crossing call boundaries as (boxed) float arguments. *)
type scalars = { mutable err : float; mutable best_err : float }

type t = {
  dof : int;
  fk : Fk.scratch;
  frames : Mat4.t array;
  jac : Mat.t;
  e : Vec.t;
  tmp3 : Vec.t;
  dtheta : Vec.t;
  mutable theta : Vec.t;
  mutable theta_next : Vec.t;
  a33 : Mat.t;
  l33 : Mat.t;
  y3 : Vec.t;
  scalars : scalars;
  mutable iter : int;
  mutable cand_pos : Vec.t;
  mutable cand_err2 : float array;
  mutable coeffs : float array;
  mutable ladder : float array;
  mutable ladder_for : int;
}

let create ~dof =
  if dof <= 0 then invalid_arg "Workspace.create: dof must be positive";
  {
    dof;
    fk = Fk.make_scratch ~dof ();
    frames = Array.init (dof + 1) (fun _ -> Array.make 16 0.);
    jac = Mat.create 3 dof;
    e = Vec.create 3;
    tmp3 = Vec.create 3;
    dtheta = Vec.create dof;
    theta = Vec.create dof;
    theta_next = Vec.create dof;
    a33 = Mat.create 3 3;
    l33 = Mat.create 3 3;
    y3 = Vec.create 3;
    scalars = { err = infinity; best_err = infinity };
    iter = 0;
    cand_pos = [||];
    cand_err2 = [||];
    coeffs = [||];
    ladder = [||];
    ladder_for = 0;
  }

let dof t = t.dof

(* Speculative solvers grow the candidate pools on first use and keep them
   across iterations (and across solves when the workspace is reused).
   The pools grow together, so [Array.length cand_err2] is the SoA plane
   stride of [cand_pos] even when a reused workspace is wider than the
   current speculation count. *)
let ensure_candidates t n =
  if Array.length t.cand_err2 < n then begin
    t.cand_pos <- Array.make (3 * n) 0.;
    t.cand_err2 <- Array.make n infinity;
    t.coeffs <- Array.make n 0.
  end

(* One workspace per (domain, dof): solver fan-out via Domain_pool runs one
   solve at a time per domain, so reusing the cached workspace is safe as
   long as solves do not nest within a domain. *)
let pool_key : (int, t) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 8)

(* Process-global accounting across every domain's cache.  Observability
   only (the serve bench reports them); int Atomics, so bumping them in
   [local] stays allocation-free. *)
let created_count = Atomic.make 0
let reused_count = Atomic.make 0

type pool_stats = { created : int; reused : int }

let local_stats () =
  { created = Atomic.get created_count; reused = Atomic.get reused_count }

let local_count () = Hashtbl.length (Domain.DLS.get pool_key)

let local ~dof =
  let tbl = Domain.DLS.get pool_key in
  match Hashtbl.find_opt tbl dof with
  | Some ws ->
    Atomic.incr reused_count;
    ws
  | None ->
    let ws = create ~dof in
    Hashtbl.add tbl dof ws;
    Atomic.incr created_count;
    ws
