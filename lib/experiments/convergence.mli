(** Convergence profiles: error vs iteration for the three §6.2 methods.

    Not a figure in the paper, but the mechanism behind Figure 5a made
    visible: the transpose method's error decays geometrically with a
    DOF-dependent rate, Quick-IK steepens that decay by picking the best
    speculative step each iteration, and the pseudoinverse is Newton-like.
    Mean error over a target batch, sampled at logarithmic iteration
    checkpoints; runs that have already terminated hold their final
    error. *)

type profile = {
  name : string;
  checkpoints : (int * float) list;  (** (iteration, mean error) ascending *)
}

val checkpoints : int list
(** [0; 1; 2; 5; 10; ...; 10000] — logarithmic sampling grid. *)

val run : ?dof:int -> Runner.scale -> profile list
(** Profiles for JT-Serial, J⁻¹-SVD, and Quick-IK at [dof] (default 25). *)

val to_table : profile list -> Dadu_util.Table.t

val to_chart : profile list -> string
(** Log-scale bars of mean error at each checkpoint, grouped by method. *)
