(** Experiment scaling knobs.

    The paper runs 1 000 targets per configuration with a 10 000-iteration
    cap — hours of CPU for the full grid.  The default scale keeps every
    experiment faithful (same chains, same accuracy, same cap) but samples
    fewer targets so the whole bench suite finishes in minutes.  Environment
    variables raise it to full fidelity:

    - [DADU_TARGETS]   targets per configuration (default 25; paper 1000)
    - [DADU_MAX_ITERS] iteration cap (default 10000, the paper's value)
    - [DADU_SEED]      master seed (default 42)
    - [DADU_SPECS]     Quick-IK speculation count (default 64, the paper's) *)

type scale = {
  targets : int;
  max_iterations : int;
  speculations : int;
  seed : int;
}

val default_scale : unit -> scale
(** Reads the environment variables at call time. *)

val paper_scale : scale
(** 1 000 targets, 10 000-iteration cap — the full-fidelity setting. *)

val ik_config : scale -> Dadu_core.Ik.config
(** Paper termination contract at this scale's iteration cap. *)

val pp_scale : Format.formatter -> scale -> unit
