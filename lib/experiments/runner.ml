type scale = {
  targets : int;
  max_iterations : int;
  speculations : int;
  seed : int;
}

let env_int name default =
  match Sys.getenv_opt name with
  | None -> default
  | Some s ->
    (match int_of_string_opt (String.trim s) with
    | Some v when v > 0 -> v
    | Some _ | None ->
      invalid_arg (Printf.sprintf "%s must be a positive integer (got %S)" name s))

let default_scale () =
  {
    targets = env_int "DADU_TARGETS" 25;
    max_iterations = env_int "DADU_MAX_ITERS" 10_000;
    speculations = env_int "DADU_SPECS" 64;
    seed = env_int "DADU_SEED" 42;
  }

let paper_scale = { targets = 1_000; max_iterations = 10_000; speculations = 64; seed = 42 }

let ik_config scale =
  { Dadu_core.Ik.default_config with max_iterations = scale.max_iterations }

let pp_scale ppf s =
  Format.fprintf ppf "%d targets/config, cap %d iters, %d speculations, seed %d"
    s.targets s.max_iterations s.speculations s.seed
