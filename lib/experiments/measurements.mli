(** The shared measurement grid behind Figure 5 and Tables 2–3.

    One pass over the paper's DOF sweep running the three §6.2 methods —
    JT-Serial, J⁻¹-SVD, and Quick-IK (JT-Speculation) — on identical
    problem batches.  Figure 5a/5b and Tables 2/3 are all views of this
    grid, so collecting it once keeps the bench suite fast and the views
    mutually consistent. *)

type per_dof = {
  dof : int;
  jt_serial : Workload.aggregate;
  pinv_svd : Workload.aggregate;
  quick_ik : Workload.aggregate;
}

type t = {
  scale : Runner.scale;
  per_dof : per_dof list;  (** ascending DOF, the paper's {12,25,50,75,100} *)
}

val collect : ?dofs:int list -> Runner.scale -> t
(** [dofs] defaults to {!Dadu_kinematics.Robots.eval_dofs}. *)

val reduction_vs_jt : per_dof -> float
(** Fraction of JT-Serial iterations eliminated by Quick-IK (the paper's
    headline 97 %). *)
