module Table = Dadu_util.Table
module Stats = Dadu_util.Stats
module Platform = Dadu_platforms.Platform
module Accel = Dadu_accel

let platform_table () =
  let table =
    Table.create ~title:"Table 3: the details of various hardware platforms"
      [
        ("Platform", Table.Left);
        ("Technology", Table.Left);
        ("Frequency", Table.Left);
        ("Average Power", Table.Left);
        ("Area", Table.Left);
      ]
  in
  Table.add_row table [ "Intel Atom"; "32nm"; "1.86GHz"; "10W"; "-" ];
  Table.add_row table [ "Nvidia TX1"; "20nm"; "up to 1.9GHz"; "4.8W"; "-" ];
  Table.add_row table [ "IKAcc"; "65nm 1.1V"; "1GHz"; "158.6mW"; "2.27mm2" ];
  table

type row = {
  dof : int;
  jt_serial_atom_j : float;
  pinv_svd_atom_j : float;
  quick_atom_j : float;
  quick_tx1_j : float;
  quick_ikacc_j : float;
  ikacc_avg_power_w : float;
}

let compute ?(accel_config = Accel.Config.default) (t : Measurements.t)
    (table2_rows : Table2.row list) =
  let specs = t.Measurements.scale.Runner.speculations in
  List.map2
    (fun (m : Measurements.per_dof) (t2 : Table2.row) ->
      let dof = m.Measurements.dof in
      let iterations =
        int_of_float (Float.round m.Measurements.quick_ik.Workload.mean_iterations)
        |> Stdlib.max 1
      in
      let cycles_per_iter =
        Accel.Scheduler.iteration_cycles accel_config ~dof ~speculations:specs
      in
      let spu_busy = iterations * Accel.Spu.iteration_cycles accel_config ~dof in
      let ssu_busy =
        iterations * Accel.Scheduler.ssu_busy_cycles accel_config ~dof ~speculations:specs
      in
      let energy =
        Accel.Energy.of_activity accel_config
          ~total_cycles:(iterations * cycles_per_iter)
          ~spu_busy_cycles:spu_busy ~ssu_busy_cycles:ssu_busy
      in
      let s_of_ms ms = ms /. 1e3 in
      {
        dof;
        jt_serial_atom_j =
          Platform.energy Platform.atom ~time_s:(s_of_ms t2.Table2.jt_serial_atom_ms);
        pinv_svd_atom_j =
          Platform.energy Platform.atom ~time_s:(s_of_ms t2.Table2.pinv_svd_atom_ms);
        quick_atom_j =
          Platform.energy Platform.atom ~time_s:(s_of_ms t2.Table2.quick_atom_ms);
        quick_tx1_j =
          Platform.energy Platform.tx1 ~time_s:(s_of_ms t2.Table2.quick_tx1_ms);
        quick_ikacc_j = energy.Accel.Energy.total_j;
        ikacc_avg_power_w = energy.Accel.Energy.avg_power_w;
      })
    t.Measurements.per_dof table2_rows

let to_table rows =
  let table =
    Table.create ~title:"Energy per solve (J); IKAcc column from the activity model"
      [
        ("DOF", Table.Right);
        ("JT-Serial@Atom", Table.Right);
        ("J-1-SVD@Atom", Table.Right);
        ("Quick-IK@Atom", Table.Right);
        ("Quick-IK@TX1", Table.Right);
        ("Quick-IK@IKAcc", Table.Right);
        ("IKAcc avg power", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.dof;
          Table.fmt_sig ~digits:3 r.jt_serial_atom_j;
          Table.fmt_sig ~digits:3 r.pinv_svd_atom_j;
          Table.fmt_sig ~digits:3 r.quick_atom_j;
          Table.fmt_sig ~digits:3 r.quick_tx1_j;
          Printf.sprintf "%.3g mJ" (r.quick_ikacc_j *. 1e3);
          Printf.sprintf "%.1f mW" (r.ikacc_avg_power_w *. 1e3);
        ])
    rows;
  table

let efficiency_vs_tx1 rows =
  Stats.geomean (Array.of_list (List.map (fun r -> r.quick_tx1_j /. r.quick_ikacc_j) rows))

let csv_header =
  [
    "dof";
    "jt_serial_atom_j";
    "pinv_svd_atom_j";
    "quick_atom_j";
    "quick_tx1_j";
    "quick_ikacc_j";
    "ikacc_avg_power_w";
  ]

let to_csv_rows rows =
  List.map
    (fun r ->
      [
        string_of_int r.dof;
        Printf.sprintf "%.5g" r.jt_serial_atom_j;
        Printf.sprintf "%.5g" r.pinv_svd_atom_j;
        Printf.sprintf "%.5g" r.quick_atom_j;
        Printf.sprintf "%.5g" r.quick_tx1_j;
        Printf.sprintf "%.5g" r.quick_ikacc_j;
        Printf.sprintf "%.5g" r.ikacc_avg_power_w;
      ])
    rows
