(** Table 2: average solve time (ms) per method and platform.

    CPU/GPU columns come from the platform cost models driven by measured
    iteration counts; the IKAcc column comes from the accelerator cycle
    model.  The shapes to check against the paper: JT-IKAcc fastest at
    every DOF by orders of magnitude; JT-TX1 well ahead of the Atom
    columns but only a few × ahead of J⁻¹-SVD; times grow with DOF. *)

type row = {
  dof : int;
  jt_serial_atom_ms : float;
  pinv_svd_atom_ms : float;
  quick_atom_ms : float;
  quick_tx1_ms : float;
  quick_ikacc_ms : float;
}

val compute : ?accel_config:Dadu_accel.Config.t -> Measurements.t -> row list

val to_table : row list -> Dadu_util.Table.t

type speedups = {
  ikacc_vs_jt_serial_atom : float;  (** paper: ~1700× (mean across DOF) *)
  ikacc_vs_tx1 : float;  (** paper: ~30× *)
  ikacc_vs_pinv_atom : float;
  tx1_vs_quick_atom : float;  (** paper: ~40× *)
}

val speedups : row list -> speedups
(** Geometric means across the DOF sweep. *)

val speedup_table : row list -> Dadu_util.Table.t

val csv_header : string list

val to_csv_rows : row list -> string list list
