module Table = Dadu_util.Table

let to_table () =
  let table =
    Table.create ~title:"Table 1: the methods in evaluations"
      [
        ("Method", Table.Left);
        ("Intel Atom", Table.Left);
        ("Nvidia TX1", Table.Left);
        ("IKAcc", Table.Left);
      ]
  in
  Table.add_row table [ "Original transpose method"; "JT-Serial"; "-"; "-" ];
  Table.add_row table [ "Pseudoinverse method"; "J-1-SVD"; "-"; "-" ];
  Table.add_row table [ "Quick-IK"; "JT-Speculation"; "JT-TX1"; "JT-IKAcc" ];
  table
