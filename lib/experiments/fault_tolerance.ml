open Dadu_core
open Dadu_kinematics
module Table = Dadu_util.Table
module Fault = Dadu_util.Fault
module Json = Dadu_util.Json
module Rng = Dadu_util.Rng
module Sim = Dadu_accel.Sim

type cell = {
  dof : int;
  reverify : bool;
  targets : int;
  faulted_runs : int;
  faults_injected : int;
  converged : int;
  absorbed : int;
  corrupted : int;
  recoveries : int;
  mean_recovery_overhead : float;
  mean_iterations : float;
}

let default_plan ~prob ~bit =
  [
    {
      Fault.site = "ssu-flip";
      trigger = Fault.Prob prob;
      arg = float_of_int bit;
    };
  ]

let run ?(dofs = [ 12; 30; 100 ]) ?(prob = 0.02) ?(bit = 40) ?plan
    (scale : Runner.scale) =
  let plan = match plan with Some p -> p | None -> default_plan ~prob ~bit in
  let ik_config = Runner.ik_config scale in
  List.concat_map
    (fun dof ->
      let chain = Robots.eval_chain ~dof in
      (* same problems and the same injection streams for both arms: the
         workload seed convention matches Workload.run, and each problem
         takes a fork keyed by its index so the flip sequence hitting
         problem [i] is identical with and without re-verification *)
      let rng = Rng.create (scale.Runner.seed + (1_000_003 * dof)) in
      let problems =
        Array.init scale.Runner.targets (fun _ -> Ik.random_problem rng chain)
      in
      List.map
        (fun reverify ->
          let registry = Fault.arm ~seed:scale.Runner.seed plan in
          let reports =
            Array.mapi
              (fun i p ->
                Sim.run ~ik_config ~speculations:scale.Runner.speculations
                  ~fault:(Fault.fork registry i) ~reverify p)
              problems
          in
          let sum f = Array.fold_left (fun acc r -> acc + f r) 0 reports in
          let fold_faulted f =
            Array.fold_left
              (fun acc r ->
                if r.Sim.faults_injected > 0 then acc + f r else acc)
              0 reports
          in
          let base_cycles =
            sum (fun r -> r.Sim.total_cycles - r.Sim.recovery_cycles)
          in
          {
            dof;
            reverify;
            targets = scale.Runner.targets;
            faulted_runs = fold_faulted (fun _ -> 1);
            faults_injected = sum (fun r -> r.Sim.faults_injected);
            converged = sum (fun r -> if r.Sim.converged then 1 else 0);
            absorbed = fold_faulted (fun r -> if r.Sim.converged then 1 else 0);
            corrupted =
              fold_faulted (fun r -> if r.Sim.converged then 0 else 1);
            recoveries = sum (fun r -> r.Sim.recoveries);
            mean_recovery_overhead =
              (if base_cycles = 0 then 0.
               else
                 float_of_int (sum (fun r -> r.Sim.recovery_cycles))
                 /. float_of_int base_cycles);
            mean_iterations =
              (if Array.length reports = 0 then 0.
               else
                 float_of_int (sum (fun r -> r.Sim.iterations))
                 /. float_of_int (Array.length reports));
          })
        [ false; true ])
    dofs

let to_table cells =
  let table =
    Table.create
      ~title:"Fault tolerance: SSU bit-flips absorbed vs. corrupted"
      [
        ("DOF", Table.Right);
        ("reverify", Table.Left);
        ("targets", Table.Right);
        ("faulted", Table.Right);
        ("flips", Table.Right);
        ("converged", Table.Right);
        ("absorbed", Table.Right);
        ("corrupted", Table.Right);
        ("recoveries", Table.Right);
        ("recovery ovh", Table.Right);
        ("mean iters", Table.Right);
      ]
  in
  List.iter
    (fun c ->
      Table.add_row table
        [
          string_of_int c.dof;
          (if c.reverify then "on" else "off");
          string_of_int c.targets;
          string_of_int c.faulted_runs;
          string_of_int c.faults_injected;
          string_of_int c.converged;
          string_of_int c.absorbed;
          string_of_int c.corrupted;
          string_of_int c.recoveries;
          Printf.sprintf "%.2f%%" (100. *. c.mean_recovery_overhead);
          Table.fmt_float ~decimals:1 c.mean_iterations;
        ])
    cells;
  table

let to_json cells =
  Json.List
    (List.map
       (fun c ->
         Json.Obj
           [
             ("dof", Json.Num (float_of_int c.dof));
             ("reverify", Json.Bool c.reverify);
             ("targets", Json.Num (float_of_int c.targets));
             ("faulted_runs", Json.Num (float_of_int c.faulted_runs));
             ("faults_injected", Json.Num (float_of_int c.faults_injected));
             ("converged", Json.Num (float_of_int c.converged));
             ("absorbed", Json.Num (float_of_int c.absorbed));
             ("corrupted", Json.Num (float_of_int c.corrupted));
             ("recoveries", Json.Num (float_of_int c.recoveries));
             ("recovery_overhead", Json.num c.mean_recovery_overhead);
             ("mean_iterations", Json.num c.mean_iterations);
           ])
       cells)
