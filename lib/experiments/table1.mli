(** Table 1: the method ↔ platform naming matrix (paper §6.1).

    Static — it documents which implementation runs where and the labels
    used by every other table. *)

val to_table : unit -> Dadu_util.Table.t
