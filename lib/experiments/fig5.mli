(** Figure 5: iteration counts (a) and computation load (b) across DOF.

    Rendered from the shared {!Measurements.t} grid.  The shapes to check
    against the paper: (a) Quick-IK cuts JT-Serial's iterations by ~97 %
    down to the pseudoinverse method's order of magnitude; (b) Quick-IK's
    *total* computation load (speculations × iterations) stays on JT-Serial's
    level — the win is parallelizability, not fewer operations. *)

val table_iterations : Measurements.t -> Dadu_util.Table.t
(** Figure 5(a): mean iterations per method per DOF, plus the reduction of
    Quick-IK vs JT-Serial. *)

val table_work : Measurements.t -> Dadu_util.Table.t
(** Figure 5(b): mean speculations × iterations per method per DOF. *)

val chart_iterations : Measurements.t -> string
(** Figure 5(a) as log-scale ASCII bars, like the paper's axis. *)

val chart_work : Measurements.t -> string
(** Figure 5(b) as log-scale ASCII bars. *)

val csv_header : string list

val to_csv_rows : Measurements.t -> string list list
(** [dof, method, mean_iterations, mean_work, converged, targets]. *)
