open Dadu_core
open Dadu_kinematics
module Table = Dadu_util.Table

type profile = { name : string; checkpoints : (int * float) list }

let checkpoints = [ 0; 1; 2; 5; 10; 20; 50; 100; 200; 500; 1_000; 2_000; 5_000; 10_000 ]

(* Record the error trace of one solve; the trace always has at least one
   entry (iteration 0). *)
let trace_of solve problem =
  let errors = ref [] in
  let on_iteration ~iter:_ ~err = errors := err :: !errors in
  ignore (solve ~on_iteration problem);
  Array.of_list (List.rev !errors)

let sample_trace trace iteration =
  let n = Array.length trace in
  trace.(Stdlib.min iteration (n - 1))

let profile_of (scale : Runner.scale) ~chain ~name ~solve =
  let rng = Dadu_util.Rng.create (scale.Runner.seed + 7_777) in
  let problems =
    Array.init scale.Runner.targets (fun _ -> Ik.random_problem rng chain)
  in
  let traces = Array.map (trace_of solve) problems in
  let cap = scale.Runner.max_iterations in
  let checkpoints =
    List.filter_map
      (fun c ->
        if c > cap then None
        else begin
          let mean =
            Array.fold_left (fun acc t -> acc +. sample_trace t c) 0. traces
            /. float_of_int (Array.length traces)
          in
          Some (c, mean)
        end)
      checkpoints
  in
  { name; checkpoints }

let run ?(dof = 25) (scale : Runner.scale) =
  let chain = Robots.eval_chain ~dof in
  let config = Runner.ik_config scale in
  [
    profile_of scale ~chain ~name:"JT-Serial" ~solve:(fun ~on_iteration p ->
        Jt_serial.solve ~on_iteration ~config p);
    profile_of scale ~chain ~name:"J-1-SVD" ~solve:(fun ~on_iteration p ->
        Pinv_svd.solve ~on_iteration ~config p);
    profile_of scale ~chain ~name:"JT-Speculation" ~solve:(fun ~on_iteration p ->
        Quick_ik.solve ~speculations:scale.Runner.speculations ~on_iteration ~config p);
  ]

let to_table profiles =
  let columns =
    ("iteration", Table.Right)
    :: List.map (fun p -> (p.name, Table.Right)) profiles
  in
  let table =
    Table.create ~title:"Convergence profiles: mean position error (m) vs iteration"
      columns
  in
  let iteration_grid =
    match profiles with [] -> [] | p :: _ -> List.map fst p.checkpoints
  in
  List.iter
    (fun iteration ->
      let row =
        string_of_int iteration
        :: List.map
             (fun p -> Table.fmt_sig ~digits:3 (List.assoc iteration p.checkpoints))
             profiles
      in
      Table.add_row table row)
    iteration_grid;
  table

let to_chart profiles =
  let groups =
    List.map
      (fun p ->
        {
          Dadu_util.Chart.label = p.name;
          bars =
            List.map
              (fun (iteration, err) -> (Printf.sprintf "iter %5d" iteration, err))
              p.checkpoints;
        })
      profiles
  in
  Dadu_util.Chart.render ~log:true groups
