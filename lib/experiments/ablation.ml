open Dadu_core
open Dadu_kinematics
module Table = Dadu_util.Table
module Accel = Dadu_accel

type strategy_cell = { label : string; aggregate : Workload.aggregate }

type strategy_row = { dof : int; cells : strategy_cell list }

let strategies =
  [
    ( "uniform (Eq. 9)",
      fun ~speculations ?config p ->
        Quick_ik.solve ~speculations ~strategy:Quick_ik.Uniform ?config p );
    ( "log-spaced",
      fun ~speculations ?config p ->
        Quick_ik.solve ~speculations ~strategy:Quick_ik.Log_spaced ?config p );
    ( "extended x2",
      fun ~speculations ?config p ->
        Quick_ik.solve ~speculations ~strategy:(Quick_ik.Extended 2.0) ?config p );
    ("buss-alpha only", fun ~speculations:_ ?config p -> Jt_buss.solve ?config p);
    ( "serial line search",
      fun ~speculations:_ ?config p -> Jt_linesearch.solve ~evaluations:20 ?config p );
  ]

let run_strategies ?(dofs = [ 12; 50; 100 ]) (scale : Runner.scale) =
  List.map
    (fun dof ->
      let chain = Robots.eval_chain ~dof in
      let cells =
        List.map
          (fun (label, make) ->
            let solver config p =
              make ~speculations:scale.Runner.speculations ?config:(Some config) p
            in
            { label; aggregate = Workload.run scale ~name:label ~chain ~solver })
          strategies
      in
      { dof; cells })
    dofs

let strategy_table rows =
  let labels =
    match rows with
    | [] -> List.map fst strategies
    | { cells; _ } :: _ -> List.map (fun c -> c.label) cells
  in
  let columns = ("DOF", Table.Right) :: List.map (fun l -> (l, Table.Right)) labels in
  let table =
    Table.create ~title:"Ablation A1: mean Quick-IK iterations by speculation strategy"
      columns
  in
  List.iter
    (fun { dof; cells } ->
      Table.add_row table
        (string_of_int dof
        :: List.map
             (fun c -> Table.fmt_float ~decimals:1 c.aggregate.Workload.mean_iterations)
             cells))
    rows;
  table

type ssu_row = {
  num_ssus : int;
  schedules : int;
  time_ms : float;
  utilization : float;
  avg_power_w : float;
}

let run_ssus ?(ssus = [ 8; 16; 32; 64; 128 ]) ~dof (t : Measurements.t) =
  let m =
    match
      List.find_opt (fun (m : Measurements.per_dof) -> m.Measurements.dof = dof)
        t.Measurements.per_dof
    with
    | Some m -> m
    | None -> raise Not_found
  in
  let speculations = t.Measurements.scale.Runner.speculations in
  let iterations =
    Stdlib.max 1
      (int_of_float (Float.round m.Measurements.quick_ik.Workload.mean_iterations))
  in
  List.map
    (fun num_ssus ->
      let config = Accel.Config.with_ssus num_ssus Accel.Config.default in
      let plan = Accel.Scheduler.plan config ~speculations in
      let cycles_per_iter = Accel.Scheduler.iteration_cycles config ~dof ~speculations in
      let total_cycles = iterations * cycles_per_iter in
      let spu_busy = iterations * Accel.Spu.iteration_cycles config ~dof in
      let ssu_busy =
        iterations * Accel.Scheduler.ssu_busy_cycles config ~dof ~speculations
      in
      let energy =
        Accel.Energy.of_activity config ~total_cycles ~spu_busy_cycles:spu_busy
          ~ssu_busy_cycles:ssu_busy
      in
      {
        num_ssus;
        schedules = plan.Accel.Scheduler.schedules;
        time_ms = float_of_int total_cycles /. config.Accel.Config.frequency_hz *. 1e3;
        utilization =
          float_of_int ssu_busy /. float_of_int (num_ssus * total_cycles);
        avg_power_w = energy.Accel.Energy.avg_power_w;
      })
    ssus

let ssu_table ~dof rows =
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Ablation A2: IKAcc size vs latency at %d DOF (64 software speculations)" dof)
      [
        ("SSUs", Table.Right);
        ("schedules/iter", Table.Right);
        ("solve time (ms)", Table.Right);
        ("SSU utilization", Table.Right);
        ("avg power", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.num_ssus;
          string_of_int r.schedules;
          Table.fmt_float ~decimals:4 r.time_ms;
          Printf.sprintf "%.0f%%" (100. *. r.utilization);
          Printf.sprintf "%.1f mW" (r.avg_power_w *. 1e3);
        ])
    rows;
  table

type fixed_row = {
  format : Accel.Fixed.format;
  reports : (int * Accel.Fixed.report) list;
}

let default_formats =
  List.map
    (fun frac_bits -> { Accel.Fixed.integer_bits = 8; frac_bits })
    [ 8; 12; 16; 20; 24 ]

let run_fixed ?(formats = default_formats) ?(dofs = [ 12; 100 ]) ?(samples = 40)
    (scale : Runner.scale) =
  List.map
    (fun format ->
      let reports =
        List.map
          (fun dof ->
            let rng = Dadu_util.Rng.create (scale.Runner.seed + dof) in
            let chain = Robots.eval_chain ~dof in
            (dof, Accel.Fixed.evaluate ~samples rng format chain))
          dofs
      in
      { format; reports })
    formats

let fixed_table rows =
  let dofs =
    match rows with [] -> [] | { reports; _ } :: _ -> List.map fst reports
  in
  let columns =
    ("FKU format", Table.Left) :: ("word bits", Table.Right)
    :: List.concat_map
         (fun dof ->
           [
             (Printf.sprintf "max err @%d DOF" dof, Table.Right);
             (Printf.sprintf "ok @%d DOF" dof, Table.Right);
           ])
         dofs
  in
  let table =
    Table.create
      ~title:
        "Ablation A3: fixed-point FKU datapath width vs end-effector error \
         (ok = cannot disturb selection at 1e-2 m accuracy)"
      columns
  in
  List.iter
    (fun { format; reports } ->
      let cells =
        List.concat_map
          (fun (_, (r : Accel.Fixed.report)) ->
            [
              Printf.sprintf "%.2e m" r.Accel.Fixed.max_error;
              (if Accel.Fixed.sufficient r ~accuracy:1e-2 then "yes" else "no");
            ])
          reports
      in
      Table.add_row table
        (Printf.sprintf "Q%d.%d" format.Accel.Fixed.integer_bits
           format.Accel.Fixed.frac_bits
        :: string_of_int (Accel.Fixed.word_width format)
        :: cells))
    rows;
  table
