open Dadu_core
open Dadu_kinematics

type per_dof = {
  dof : int;
  jt_serial : Workload.aggregate;
  pinv_svd : Workload.aggregate;
  quick_ik : Workload.aggregate;
}

type t = { scale : Runner.scale; per_dof : per_dof list }

let collect ?(dofs = Robots.eval_dofs) (scale : Runner.scale) =
  let per_dof =
    List.map
      (fun dof ->
        let chain = Robots.eval_chain ~dof in
        let run name solver = Workload.run scale ~name ~chain ~solver in
        {
          dof;
          jt_serial = run "JT-Serial" (fun config p -> Jt_serial.solve ~config p);
          pinv_svd = run "J-1-SVD" (fun config p -> Pinv_svd.solve ~config p);
          quick_ik =
            run "JT-Speculation"
              (fun config p ->
                Quick_ik.solve ~speculations:scale.Runner.speculations ~config p);
        })
      dofs
  in
  { scale; per_dof }

let reduction_vs_jt { jt_serial; quick_ik; _ } =
  if jt_serial.Workload.mean_iterations <= 0. then 0.
  else 1. -. (quick_ik.Workload.mean_iterations /. jt_serial.Workload.mean_iterations)
