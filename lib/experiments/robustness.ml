open Dadu_core
open Dadu_kinematics
module Table = Dadu_util.Table

type cell = {
  dof : int;
  jt_mean_iterations : float;
  quick_mean_iterations : float;
  reduction : float;
}

type row = { seed : int; cells : cell list }

let run ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(dofs = [ 12; 100 ]) (scale : Runner.scale) =
  List.map
    (fun seed ->
      let scale = { scale with Runner.seed } in
      let cells =
        List.map
          (fun dof ->
            let chain = Robots.eval_chain ~dof in
            let jt =
              Workload.run scale ~name:"JT-Serial" ~chain ~solver:(fun config p ->
                  Jt_serial.solve ~config p)
            in
            let quick =
              Workload.run scale ~name:"Quick-IK" ~chain ~solver:(fun config p ->
                  Quick_ik.solve ~speculations:scale.Runner.speculations ~config p)
            in
            {
              dof;
              jt_mean_iterations = jt.Workload.mean_iterations;
              quick_mean_iterations = quick.Workload.mean_iterations;
              reduction =
                (if jt.Workload.mean_iterations <= 0. then 0.
                 else 1. -. (quick.Workload.mean_iterations /. jt.Workload.mean_iterations));
            })
          dofs
      in
      { seed; cells })
    seeds

let to_table rows =
  let dofs = match rows with [] -> [] | r :: _ -> List.map (fun c -> c.dof) r.cells in
  let columns =
    ("seed", Table.Right)
    :: List.concat_map
         (fun dof ->
           [
             (Printf.sprintf "JT @%d" dof, Table.Right);
             (Printf.sprintf "Quick @%d" dof, Table.Right);
             (Printf.sprintf "reduction @%d" dof, Table.Right);
           ])
         dofs
  in
  let table =
    Table.create ~title:"Seed robustness of the iteration reduction" columns
  in
  List.iter
    (fun { seed; cells } ->
      let cells_rendered =
        List.concat_map
          (fun c ->
            [
              Table.fmt_float ~decimals:0 c.jt_mean_iterations;
              Table.fmt_float ~decimals:1 c.quick_mean_iterations;
              Printf.sprintf "%.1f%%" (100. *. c.reduction);
            ])
          cells
      in
      Table.add_row table (string_of_int seed :: cells_rendered))
    rows;
  table

let reduction_range rows ~dof =
  let reductions =
    List.filter_map
      (fun { cells; _ } ->
        List.find_opt (fun c -> c.dof = dof) cells |> Option.map (fun c -> c.reduction))
      rows
  in
  match reductions with
  | [] -> raise Not_found
  | first :: rest ->
    List.fold_left
      (fun (lo, hi) r -> (Float.min lo r, Float.max hi r))
      (first, first) rest
