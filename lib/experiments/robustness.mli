(** Seed-robustness of the headline claim.

    The 97 % iteration reduction is a statistic over randomly drawn
    targets and starts; this experiment re-draws the whole workload under
    several master seeds and reports the reduction's spread — showing the
    result is a property of the method, not of seed 42. *)

type cell = {
  dof : int;
  jt_mean_iterations : float;
  quick_mean_iterations : float;
  reduction : float;  (** fraction of JT-Serial iterations eliminated *)
}

type row = { seed : int; cells : cell list }

val run : ?seeds:int list -> ?dofs:int list -> Runner.scale -> row list
(** [seeds] defaults to [[1; 2; 3; 4; 5]], [dofs] to [[12; 100]].  The
    scale's own seed is ignored; everything else (targets per
    configuration, caps, speculations) applies. *)

val to_table : row list -> Dadu_util.Table.t

val reduction_range : row list -> dof:int -> float * float
(** (min, max) reduction across seeds at one DOF; raises [Not_found] if
    the DOF is absent. *)
