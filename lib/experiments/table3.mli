(** Table 3: platform details, plus the energy-per-solve companion the
    paper reports in §6.3.2 prose (IKAcc ≈ 1.92 mJ at 100 DOF; TX1 ≈
    1.49 J; Atom pseudoinverse ≈ 1 J at 12 DOF; ~776× energy efficiency
    over TX1). *)

val platform_table : unit -> Dadu_util.Table.t
(** The literal Table 3: technology, frequency, average power, area. *)

type row = {
  dof : int;
  jt_serial_atom_j : float;
  pinv_svd_atom_j : float;
  quick_atom_j : float;
  quick_tx1_j : float;
  quick_ikacc_j : float;
  ikacc_avg_power_w : float;  (** from the activity model, per DOF *)
}

val compute :
  ?accel_config:Dadu_accel.Config.t -> Measurements.t -> Table2.row list -> row list
(** Energies are Table 2 times × platform average power for CPU/GPU, and
    the activity-based {!Dadu_accel.Energy} model for IKAcc. *)

val to_table : row list -> Dadu_util.Table.t

val efficiency_vs_tx1 : row list -> float
(** Geomean of TX1 energy / IKAcc energy — the paper's 776×. *)

val csv_header : string list

val to_csv_rows : row list -> string list list
