open Dadu_core
open Dadu_kinematics
module Table = Dadu_util.Table

type cell = { speculations : int; aggregate : Workload.aggregate }

type row = { dof : int; cells : cell list }

let speculation_counts = [ 16; 32; 64; 128 ]

let run ?(dofs = Robots.eval_dofs) ?(counts = speculation_counts) scale =
  List.map
    (fun dof ->
      let chain = Robots.eval_chain ~dof in
      let cells =
        List.map
          (fun speculations ->
            let aggregate =
              Workload.run scale
                ~name:(Printf.sprintf "Quick-IK/%d" speculations)
                ~chain
                ~solver:(fun config p -> Quick_ik.solve ~speculations ~config p)
            in
            { speculations; aggregate })
          counts
      in
      { dof; cells })
    dofs

let to_table rows =
  let counts =
    match rows with [] -> speculation_counts | { cells; _ } :: _ -> List.map (fun c -> c.speculations) cells
  in
  let columns =
    ("DOF", Table.Right)
    :: List.map (fun c -> (Printf.sprintf "%d specs" c, Table.Right)) counts
  in
  let table =
    Table.create ~title:"Figure 4: mean Quick-IK iterations vs number of speculations" columns
  in
  List.iter
    (fun { dof; cells } ->
      let row =
        string_of_int dof
        :: List.map
             (fun { aggregate; _ } -> Table.fmt_float ~decimals:1 aggregate.Workload.mean_iterations)
             cells
      in
      Table.add_row table row)
    rows;
  table

let to_chart rows =
  let groups =
    List.map
      (fun { dof; cells } ->
        {
          Dadu_util.Chart.label = Printf.sprintf "%d DOF" dof;
          bars =
            List.map
              (fun { speculations; aggregate } ->
                ( Printf.sprintf "%3d specs" speculations,
                  aggregate.Workload.mean_iterations ))
              cells;
        })
      rows
  in
  Dadu_util.Chart.render groups

let csv_header = [ "dof"; "speculations"; "mean_iterations"; "converged"; "targets" ]

let to_csv_rows rows =
  List.concat_map
    (fun { dof; cells } ->
      List.map
        (fun { speculations; aggregate } ->
          [
            string_of_int dof;
            string_of_int speculations;
            Printf.sprintf "%.3f" aggregate.Workload.mean_iterations;
            string_of_int aggregate.Workload.converged;
            string_of_int aggregate.Workload.targets;
          ])
        cells)
    rows
