open Dadu_core

(** Running one solver over a batch of random targets and aggregating the
    statistics the paper reports. *)

type aggregate = {
  name : string;  (** solver label, e.g. "JT-Serial" *)
  dof : int;
  targets : int;
  converged : int;  (** solves that met the accuracy threshold *)
  mean_iterations : float;
  median_iterations : float;
  max_iterations_observed : int;
  mean_error : float;  (** final error, converged or not *)
  mean_work : float;  (** mean speculations × iterations (Figure 5b) *)
  speculations : int;  (** per-iteration candidates (1 for serial methods) *)
  mean_sweeps_per_iteration : float;  (** SVD methods; 0 otherwise *)
  wall_clock_s : float;  (** host time actually spent running the batch *)
}

val run :
  Runner.scale ->
  name:string ->
  chain:Dadu_kinematics.Chain.t ->
  solver:(Ik.config -> Ik.problem -> Ik.result) ->
  aggregate
(** Draws [scale.targets] problems (reachable target + random start) from a
    generator seeded by [scale.seed] and the chain's DOF, solves each, and
    aggregates.  The same scale and chain always produce the same problem
    batch, so different solvers see identical workloads. *)

val convergence_rate : aggregate -> float

val pp : Format.formatter -> aggregate -> unit
