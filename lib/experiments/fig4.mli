(** Figure 4: Quick-IK iterations vs number of speculations.

    For each evaluation DOF and each speculation count in {16, 32, 64, 128},
    solve the target batch and report mean iterations.  The paper's
    conclusion — iterations fall with speculation count but 128 buys little
    over 64 — is what the bench output should show. *)

type cell = { speculations : int; aggregate : Workload.aggregate }

type row = { dof : int; cells : cell list }

val speculation_counts : int list
(** [[16; 32; 64; 128]], the paper's sweep. *)

val run : ?dofs:int list -> ?counts:int list -> Runner.scale -> row list

val to_table : row list -> Dadu_util.Table.t

val to_chart : row list -> string
(** ASCII bar rendering of the same data (one group per DOF). *)

val to_csv_rows : row list -> string list list
(** [dof, speculations, mean_iterations, converged, targets] per line. *)

val csv_header : string list
