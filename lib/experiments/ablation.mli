(** Ablations for the design choices DESIGN.md calls out.

    A1 — speculation strategy (paper §4 "Speculation strategy"): the paper
    speculates uniformly over [(0, α_base]] (Eq. 9).  We compare that
    against geometric spacing, an extended range that also overshoots
    [α_base], and the no-speculation limit (Buss' α alone), to show where
    the speculative search actually earns its keep.

    A2 — SSU count (paper §5.1): fewer SSUs mean more schedules per
    iteration; more SSUs than speculations idle.  Sweeps the hardware size
    against solve latency at fixed software speculations.

    A3 — FKU datapath width: the paper's HLS design leaves the arithmetic
    format unstated; this sweep measures the end-effector error of a
    fixed-point FKU across fractional widths and DOF, identifying the
    narrowest datapath that cannot disturb candidate selection at the
    paper's 1e-2 m accuracy. *)

type strategy_cell = { label : string; aggregate : Workload.aggregate }

type strategy_row = { dof : int; cells : strategy_cell list }

val strategies : (string * (speculations:int -> Dadu_core.Ik.solver)) list
(** Labelled solver constructors: uniform, log-spaced, extended ×2,
    Buss-α-only, and a sequential golden-section line search (the serial
    competitor to parallel speculation). *)

val run_strategies : ?dofs:int list -> Runner.scale -> strategy_row list

val strategy_table : strategy_row list -> Dadu_util.Table.t

type ssu_row = {
  num_ssus : int;
  schedules : int;
  time_ms : float;  (** per solve at the measured iteration count *)
  utilization : float;
  avg_power_w : float;
}

val run_ssus :
  ?ssus:int list -> dof:int -> Measurements.t -> ssu_row list
(** Uses the Quick-IK iteration count measured at [dof] in the grid;
    raises [Not_found] if that DOF is absent. *)

val ssu_table : dof:int -> ssu_row list -> Dadu_util.Table.t

type fixed_row = {
  format : Dadu_accel.Fixed.format;
  reports : (int * Dadu_accel.Fixed.report) list;  (** per DOF *)
}

val run_fixed :
  ?formats:Dadu_accel.Fixed.format list ->
  ?dofs:int list ->
  ?samples:int ->
  Runner.scale ->
  fixed_row list
(** Defaults: Q8.{8,12,16,20,24}; DOFs {12, 100}; 40 samples. *)

val fixed_table : fixed_row list -> Dadu_util.Table.t
