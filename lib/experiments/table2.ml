open Dadu_core
module Table = Dadu_util.Table
module Stats = Dadu_util.Stats

type row = {
  dof : int;
  jt_serial_atom_ms : float;
  pinv_svd_atom_ms : float;
  quick_atom_ms : float;
  quick_tx1_ms : float;
  quick_ikacc_ms : float;
}

let compute ?(accel_config = Dadu_accel.Config.default) (t : Measurements.t) =
  let specs = t.Measurements.scale.Runner.speculations in
  let ms x = x *. 1e3 in
  List.map
    (fun (m : Measurements.per_dof) ->
      let dof = m.Measurements.dof in
      let jt = m.Measurements.jt_serial in
      let pinv = m.Measurements.pinv_svd in
      let quick = m.Measurements.quick_ik in
      let quick_cost = Cost.quick_ik ~dof ~speculations:specs in
      let ikacc_cycles_per_iter =
        Dadu_accel.Scheduler.iteration_cycles accel_config ~dof ~speculations:specs
      in
      let ikacc_s =
        quick.Workload.mean_iterations
        *. float_of_int ikacc_cycles_per_iter
        /. accel_config.Dadu_accel.Config.frequency_hz
      in
      {
        dof;
        jt_serial_atom_ms =
          ms
            (Dadu_platforms.Atom.time_s ~cost:(Cost.jt_serial ~dof)
               ~iterations:jt.Workload.mean_iterations ());
        pinv_svd_atom_ms =
          ms
            (Dadu_platforms.Atom.time_s
               ~cost:(Cost.pinv_svd ~dof ~sweeps:pinv.Workload.mean_sweeps_per_iteration)
               ~iterations:pinv.Workload.mean_iterations ());
        quick_atom_ms =
          ms
            (Dadu_platforms.Atom.time_s ~cost:quick_cost
               ~iterations:quick.Workload.mean_iterations ());
        quick_tx1_ms =
          ms
            (Dadu_platforms.Tx1.time_s ~cost:quick_cost
               ~iterations:quick.Workload.mean_iterations ());
        quick_ikacc_ms = ms ikacc_s;
      })
    t.Measurements.per_dof

let to_table rows =
  let table =
    Table.create
      ~title:
        "Table 2: average solve time (ms); JT-Serial/J-1-SVD/JT-Speculation on Atom, \
         JT-TX1 on TX1, JT-IKAcc on IKAcc"
      [
        ("DOF", Table.Right);
        ("JT-Serial", Table.Right);
        ("J-1-SVD", Table.Right);
        ("JT-Speculation", Table.Right);
        ("JT-TX1", Table.Right);
        ("JT-IKAcc", Table.Right);
      ]
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.dof;
          Table.fmt_float ~decimals:2 r.jt_serial_atom_ms;
          Table.fmt_float ~decimals:2 r.pinv_svd_atom_ms;
          Table.fmt_float ~decimals:2 r.quick_atom_ms;
          Table.fmt_float ~decimals:2 r.quick_tx1_ms;
          Table.fmt_float ~decimals:4 r.quick_ikacc_ms;
        ])
    rows;
  table

type speedups = {
  ikacc_vs_jt_serial_atom : float;
  ikacc_vs_tx1 : float;
  ikacc_vs_pinv_atom : float;
  tx1_vs_quick_atom : float;
}

let speedups rows =
  let gm f = Stats.geomean (Array.of_list (List.map f rows)) in
  {
    ikacc_vs_jt_serial_atom = gm (fun r -> r.jt_serial_atom_ms /. r.quick_ikacc_ms);
    ikacc_vs_tx1 = gm (fun r -> r.quick_tx1_ms /. r.quick_ikacc_ms);
    ikacc_vs_pinv_atom = gm (fun r -> r.pinv_svd_atom_ms /. r.quick_ikacc_ms);
    tx1_vs_quick_atom = gm (fun r -> r.quick_atom_ms /. r.quick_tx1_ms);
  }

let speedup_table rows =
  let s = speedups rows in
  let table =
    Table.create ~title:"Table 2 headline speedups (geomean across DOF sweep)"
      [ ("Comparison", Table.Left); ("This repo", Table.Right); ("Paper", Table.Right) ]
  in
  Table.add_row table
    [ "IKAcc vs JT-Serial (Atom)"; Printf.sprintf "%.0fx" s.ikacc_vs_jt_serial_atom; "~1700x" ];
  Table.add_row table
    [ "IKAcc vs Quick-IK (TX1)"; Printf.sprintf "%.0fx" s.ikacc_vs_tx1; "~30x" ];
  Table.add_row table
    [ "IKAcc vs J-1-SVD (Atom)"; Printf.sprintf "%.0fx" s.ikacc_vs_pinv_atom; "~100x" ];
  Table.add_row table
    [ "TX1 vs Quick-IK (Atom)"; Printf.sprintf "%.0fx" s.tx1_vs_quick_atom; "~40x" ];
  table

let csv_header =
  [ "dof"; "jt_serial_atom_ms"; "pinv_svd_atom_ms"; "quick_atom_ms"; "quick_tx1_ms"; "quick_ikacc_ms" ]

let to_csv_rows rows =
  List.map
    (fun r ->
      [
        string_of_int r.dof;
        Printf.sprintf "%.4f" r.jt_serial_atom_ms;
        Printf.sprintf "%.4f" r.pinv_svd_atom_ms;
        Printf.sprintf "%.4f" r.quick_atom_ms;
        Printf.sprintf "%.4f" r.quick_tx1_ms;
        Printf.sprintf "%.6f" r.quick_ikacc_ms;
      ])
    rows
