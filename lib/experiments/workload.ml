open Dadu_core
module Rng = Dadu_util.Rng
module Stats = Dadu_util.Stats

type aggregate = {
  name : string;
  dof : int;
  targets : int;
  converged : int;
  mean_iterations : float;
  median_iterations : float;
  max_iterations_observed : int;
  mean_error : float;
  mean_work : float;
  speculations : int;
  mean_sweeps_per_iteration : float;
  wall_clock_s : float;
}

let run (scale : Runner.scale) ~name ~chain ~solver =
  let dof = Dadu_kinematics.Chain.dof chain in
  (* Seed depends on scale.seed and dof only: every solver at a given DOF
     sees the identical batch of problems. *)
  let rng = Rng.create (scale.Runner.seed + (1_000_003 * dof)) in
  let problems = Array.init scale.Runner.targets (fun _ -> Ik.random_problem rng chain) in
  let config = Runner.ik_config scale in
  let t0 = Sys.time () in
  let results = Array.map (solver config) problems in
  let wall_clock_s = Sys.time () -. t0 in
  let iterations = Array.map (fun r -> float_of_int r.Ik.iterations) results in
  let total_iters = Array.fold_left (fun acc r -> acc + r.Ik.iterations) 0 results in
  let total_sweeps = Array.fold_left (fun acc r -> acc + r.Ik.svd_sweeps) 0 results in
  {
    name;
    dof;
    targets = scale.Runner.targets;
    converged =
      Array.fold_left
        (fun acc r -> match r.Ik.status with Ik.Converged -> acc + 1 | Ik.Max_iterations | Ik.Stalled | Ik.Diverged -> acc)
        0 results;
    mean_iterations = Stats.mean iterations;
    median_iterations = Stats.median iterations;
    max_iterations_observed =
      Array.fold_left (fun acc r -> Stdlib.max acc r.Ik.iterations) 0 results;
    mean_error =
      Stats.mean (Array.map (fun r -> r.Ik.error) results);
    mean_work =
      Stats.mean (Array.map (fun r -> float_of_int (Ik.work r)) results);
    speculations = (if Array.length results = 0 then 1 else results.(0).Ik.speculations);
    mean_sweeps_per_iteration =
      (if total_iters = 0 then 0. else float_of_int total_sweeps /. float_of_int total_iters);
    wall_clock_s;
  }

let convergence_rate a =
  if a.targets = 0 then 0. else float_of_int a.converged /. float_of_int a.targets

let pp ppf a =
  Format.fprintf ppf
    "%s @ %d DOF: %.1f mean iters (median %.0f), %d/%d converged, work %.3g"
    a.name a.dof a.mean_iterations a.median_iterations a.converged a.targets a.mean_work
