(** Fault-tolerance experiment: how many injected SSU bit-flips the
    accelerator absorbs, and at what recovery cost.

    For each DOF, the same random workload runs twice through the
    execution-based {!Dadu_accel.Sim} under an identical seeded fault
    plan (default: an ["ssu-flip"] rule flipping one exponent-region bit
    of a candidate's squared error with per-candidate probability
    [prob]): once with the plain selector and once with the re-verifying
    selector.  Because each problem forks the registry by its index, the
    flip sequence hitting problem [i] is the same in both arms — the only
    variable is the recovery mechanism.

    A faulted run is {e absorbed} when it still converges (to the honest
    SPU error, which injection never touches) and {e corrupted} when it
    does not.  [mean_recovery_overhead] is recovery cycles as a fraction
    of base iteration cycles — the price of re-verification. *)

type cell = {
  dof : int;
  reverify : bool;
  targets : int;
  faulted_runs : int;  (** runs where at least one fault applied *)
  faults_injected : int;  (** total corruptions across the workload *)
  converged : int;
  absorbed : int;  (** faulted runs that still converged *)
  corrupted : int;  (** faulted runs that missed the accuracy *)
  recoveries : int;  (** re-verification mismatches detected *)
  mean_recovery_overhead : float;  (** recovery / base cycles *)
  mean_iterations : float;
}

val default_plan : prob:float -> bit:int -> Dadu_util.Fault.plan

val run :
  ?dofs:int list ->
  ?prob:float ->
  ?bit:int ->
  ?plan:Dadu_util.Fault.plan ->
  Runner.scale ->
  cell list
(** Defaults: DOF 12/30/100, flip probability 0.02 per candidate, bit 40
    (low exponent — large enough to reroute selection, the interesting
    regime).  [plan] overrides the built-in single-rule plan. *)

val to_table : cell list -> Dadu_util.Table.t

val to_json : cell list -> Dadu_util.Json.t
