module Table = Dadu_util.Table
module Stats = Dadu_util.Stats

type verdict = Pass | Partial | Fail

type claim = {
  id : string;
  description : string;
  paper : string;
  measured : string;
  verdict : verdict;
}

(* ratio-band judgement for calibrated quantities: Pass within [band]×,
   Partial within [band²]× (right order of magnitude), Fail beyond *)
let ratio_verdict ~band ~paper ~measured =
  if paper <= 0. || measured <= 0. then Fail
  else begin
    let r = Float.max (measured /. paper) (paper /. measured) in
    if r <= band then Pass else if r <= band *. band then Partial else Fail
  end

let evaluate (m : Measurements.t) =
  let grid = m.Measurements.per_dof in
  let quick (p : Measurements.per_dof) = p.Measurements.quick_ik in
  let jt (p : Measurements.per_dof) = p.Measurements.jt_serial in
  let t2 = Table2.compute m in
  let t3 = Table3.compute m t2 in
  let claims = ref [] in
  let add id description ~paper ~measured verdict =
    claims := { id; description; paper; measured; verdict } :: !claims
  in

  (* Fig 5a: ≥97 % reduction *)
  let reductions = List.map Measurements.reduction_vs_jt grid in
  let min_reduction = List.fold_left Float.min 1. reductions in
  add "fig5a-reduction" "Quick-IK cuts JT-Serial iterations by ~97%" ~paper:"97%"
    ~measured:(Printf.sprintf "%.1f%%..%.1f%%" (100. *. min_reduction)
                 (100. *. List.fold_left Float.max 0. reductions))
    (if min_reduction >= 0.95 then Pass
     else if min_reduction >= 0.85 then Partial
     else Fail);

  (* Fig 5a: JT-Serial grows with DOF toward the cap *)
  let jt_iters = List.map (fun p -> (jt p).Workload.mean_iterations) grid in
  (* "explodes with DOF toward the cap": thousands at the low end already,
     non-decreasing, and the high end saturating near the cap *)
  let first = List.hd jt_iters and last = List.hd (List.rev jt_iters) in
  let thousands = first > 1_000. in
  let non_decreasing = last >= first in
  let saturating = last > 5_000. in
  add "fig5a-jt-growth" "JT-Serial iterations explode with DOF toward the 10k cap"
    ~paper:"thousands, saturating"
    ~measured:(Printf.sprintf "%.0f -> %.0f" first last)
    (if thousands && non_decreasing && saturating then Pass
     else if non_decreasing then Partial
     else Fail);

  (* Fig 5b: Quick-IK load within an order of magnitude of JT-Serial *)
  let load_ratios =
    List.map
      (fun p -> (quick p).Workload.mean_work /. (jt p).Workload.mean_work)
      grid
  in
  let load_ok = List.for_all (fun r -> r > 0.1 && r < 10.) load_ratios in
  add "fig5b-load" "Quick-IK total load stays on JT-Serial's level"
    ~paper:"comparable (parallelizable)"
    ~measured:(Printf.sprintf "ratio %.2f..%.2f"
                 (List.fold_left Float.min infinity load_ratios)
                 (List.fold_left Float.max 0. load_ratios))
    (if load_ok then Pass else Partial);

  (* Table 2: platform ordering at every DOF *)
  let ordering_ok =
    List.for_all
      (fun (r : Table2.row) ->
        r.Table2.quick_ikacc_ms < r.Table2.quick_tx1_ms
        && r.Table2.quick_tx1_ms < r.Table2.quick_atom_ms
        && r.Table2.quick_atom_ms < 100. *. r.Table2.jt_serial_atom_ms)
      t2
  in
  add "table2-ordering" "IKAcc < TX1 < Atom at every DOF" ~paper:"strict ordering"
    ~measured:(if ordering_ok then "holds at every DOF" else "violated")
    (if ordering_ok then Pass else Fail);

  let s = Table2.speedups t2 in
  add "table2-vs-tx1" "IKAcc ~30x faster than the TX1 GPU port" ~paper:"~30x"
    ~measured:(Printf.sprintf "%.0fx" s.Table2.ikacc_vs_tx1)
    (ratio_verdict ~band:2. ~paper:30. ~measured:s.Table2.ikacc_vs_tx1);
  add "table2-vs-cpu" "IKAcc ~1700x faster than CPU JT-Serial" ~paper:"~1700x"
    ~measured:(Printf.sprintf "%.0fx" s.Table2.ikacc_vs_jt_serial_atom)
    (ratio_verdict ~band:3. ~paper:1700. ~measured:s.Table2.ikacc_vs_jt_serial_atom);
  add "table2-tx1-vs-atom" "GPU port ~40x faster than CPU Quick-IK" ~paper:"~40x"
    ~measured:(Printf.sprintf "%.0fx" s.Table2.tx1_vs_quick_atom)
    (ratio_verdict ~band:2. ~paper:40. ~measured:s.Table2.tx1_vs_quick_atom);

  (* Table 3: IKAcc average power and energy efficiency *)
  let powers = List.map (fun (r : Table3.row) -> r.Table3.ikacc_avg_power_w) t3 in
  let power_mean = Stats.mean (Array.of_list powers) in
  add "table3-power" "IKAcc averages 158.6 mW" ~paper:"158.6 mW"
    ~measured:(Printf.sprintf "%.1f mW" (power_mean *. 1e3))
    (ratio_verdict ~band:1.15 ~paper:0.1586 ~measured:power_mean);
  let eff = Table3.efficiency_vs_tx1 t3 in
  add "table3-efficiency" "~776x energy efficiency vs TX1" ~paper:"~776x"
    ~measured:(Printf.sprintf "%.0fx" eff)
    (ratio_verdict ~band:2. ~paper:776. ~measured:eff);

  (* abstract: 100-DOF real-time *)
  (match
     List.find_opt (fun (r : Table2.row) -> r.Table2.dof = 100) t2
   with
  | Some r ->
    add "abstract-realtime" "100-DOF IK solved within 12 ms on IKAcc" ~paper:"12 ms"
      ~measured:(Printf.sprintf "%.2f ms" r.Table2.quick_ikacc_ms)
      (if r.Table2.quick_ikacc_ms <= 12. then Pass else Fail)
  | None -> ());

  List.rev !claims

let verdict_string = function Pass -> "PASS" | Partial -> "partial" | Fail -> "FAIL"

let to_table claims =
  let table =
    Table.create ~title:"Reproduction scorecard (paper claim vs this repository)"
      [
        ("claim", Table.Left);
        ("paper", Table.Right);
        ("measured", Table.Right);
        ("verdict", Table.Left);
      ]
  in
  List.iter
    (fun c ->
      Table.add_row table [ c.description; c.paper; c.measured; verdict_string c.verdict ])
    claims;
  table

let all_pass ?(allow_partial = true) claims =
  List.for_all
    (fun c ->
      match c.verdict with
      | Pass -> true
      | Partial -> allow_partial
      | Fail -> false)
    claims
