(** The reproduction scorecard: every checkable claim of the paper's
    evaluation, judged automatically against the measured grid.

    Each claim carries the paper's published value, the tolerance band we
    consider a successful reproduction (ratios within a small factor for
    calibrated quantities, qualitative orderings exact), and the measured
    value.  `bench/main.exe -- scorecard` prints the table; the test suite
    asserts that the core claims PASS at the default scale. *)

type verdict =
  | Pass
  | Partial  (** right shape/ordering, magnitude off beyond the band *)
  | Fail

type claim = {
  id : string;  (** e.g. "fig5a-reduction" *)
  description : string;
  paper : string;  (** the published value, rendered *)
  measured : string;
  verdict : verdict;
}

val evaluate : Measurements.t -> claim list
(** Judges, in order: the 97 % reduction (Fig 5a), JT-Serial growth with
    DOF and cap saturation (Fig 5a), Quick-IK-vs-JT load parity (Fig 5b),
    platform ordering at every DOF (Table 2), the 30× GPU and 1700× CPU
    speedups (Table 2), the 40× TX1-vs-Atom factor, IKAcc average power
    (Table 3), the 776× energy efficiency (Table 3), and 100-DOF
    real-time solving (abstract). *)

val to_table : claim list -> Dadu_util.Table.t

val all_pass : ?allow_partial:bool -> claim list -> bool
(** With [allow_partial] (default true), [Partial] verdicts don't fail. *)
