module Table = Dadu_util.Table

let methods (m : Measurements.per_dof) =
  [ m.Measurements.jt_serial; m.Measurements.pinv_svd; m.Measurements.quick_ik ]

let table_iterations (t : Measurements.t) =
  let table =
    Table.create ~title:"Figure 5(a): mean iterations under various DOF manipulators"
      [
        ("DOF", Table.Right);
        ("JT-Serial", Table.Right);
        ("J-1-SVD", Table.Right);
        ("JT-Speculation", Table.Right);
        ("reduction vs JT", Table.Right);
      ]
  in
  List.iter
    (fun (m : Measurements.per_dof) ->
      Table.add_row table
        [
          string_of_int m.Measurements.dof;
          Table.fmt_float ~decimals:1 m.Measurements.jt_serial.Workload.mean_iterations;
          Table.fmt_float ~decimals:1 m.Measurements.pinv_svd.Workload.mean_iterations;
          Table.fmt_float ~decimals:1 m.Measurements.quick_ik.Workload.mean_iterations;
          Printf.sprintf "%.1f%%" (100. *. Measurements.reduction_vs_jt m);
        ])
    t.Measurements.per_dof;
  table

let table_work (t : Measurements.t) =
  let table =
    Table.create
      ~title:"Figure 5(b): computation load (speculations x iterations) under various DOF"
      [
        ("DOF", Table.Right);
        ("JT-Serial", Table.Right);
        ("J-1-SVD", Table.Right);
        ("JT-Speculation", Table.Right);
      ]
  in
  List.iter
    (fun (m : Measurements.per_dof) ->
      let work (a : Workload.aggregate) = Table.fmt_sig ~digits:4 a.Workload.mean_work in
      Table.add_row table
        [
          string_of_int m.Measurements.dof;
          work m.Measurements.jt_serial;
          work m.Measurements.pinv_svd;
          work m.Measurements.quick_ik;
        ])
    t.Measurements.per_dof;
  table

let chart_of (t : Measurements.t) value =
  let groups =
    List.map
      (fun (m : Measurements.per_dof) ->
        {
          Dadu_util.Chart.label = Printf.sprintf "%d DOF" m.Measurements.dof;
          bars = List.map (fun (a : Workload.aggregate) -> (a.Workload.name, value a)) (methods m);
        })
      t.Measurements.per_dof
  in
  Dadu_util.Chart.render ~log:true groups

let chart_iterations t = chart_of t (fun a -> a.Workload.mean_iterations)

let chart_work t = chart_of t (fun a -> a.Workload.mean_work)

let csv_header = [ "dof"; "method"; "mean_iterations"; "mean_work"; "converged"; "targets" ]

let to_csv_rows (t : Measurements.t) =
  List.concat_map
    (fun (m : Measurements.per_dof) ->
      List.map
        (fun (a : Workload.aggregate) ->
          [
            string_of_int m.Measurements.dof;
            a.Workload.name;
            Printf.sprintf "%.3f" a.Workload.mean_iterations;
            Printf.sprintf "%.3f" a.Workload.mean_work;
            string_of_int a.Workload.converged;
            string_of_int a.Workload.targets;
          ])
        (methods m))
    t.Measurements.per_dof
