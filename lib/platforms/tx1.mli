(** Jetson TX1 timing model (paper's "JT-TX1" column).

    The paper's GPU port runs the speculative searches on the TX1's GPU and
    the serial prologue on its A57 host, exchanging data every iteration —
    and observes that this exchange dominates ("GPU needs to exchange data
    with CPU at each iteration", §6.3.1).  The model charges, per
    iteration:

    - a fixed launch/synchronization overhead,
    - the serial prologue on the host at a scalar effective throughput,
    - the speculation work on the GPU at a low effective throughput
      (64 candidates × a ~100-deep sequential FK chain is a tiny,
      latency-bound kernel; nowhere near peak).

    Defaults are calibrated to the paper's Table 2 JT-TX1 column at 12 and
    100 DOF; see DESIGN.md §6. *)

type params = {
  per_iteration_overhead_s : float;  (** launch + host↔device sync; 150 µs *)
  host_flops : float;  (** A57 scalar effective throughput; 2e8 *)
  gpu_flops : float;  (** small-kernel effective throughput; 2.7e9 *)
}

val default_params : params

val time_s :
  ?params:params -> cost:Dadu_core.Cost.per_iteration -> iterations:float -> unit -> float

val energy_j : time_s:float -> float
(** At the platform's 4.8 W average. *)
