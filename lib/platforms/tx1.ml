type params = {
  per_iteration_overhead_s : float;
  host_flops : float;
  gpu_flops : float;
}

let default_params =
  { per_iteration_overhead_s = 150e-6; host_flops = 2e8; gpu_flops = 2.7e9 }

let time_s ?(params = default_params) ~cost ~iterations () =
  if iterations < 0. then invalid_arg "Tx1.time_s: negative iterations";
  let per_iteration =
    params.per_iteration_overhead_s
    +. (cost.Dadu_core.Cost.serial_flops /. params.host_flops)
    +. (cost.Dadu_core.Cost.parallel_flops /. params.gpu_flops)
  in
  iterations *. per_iteration

let energy_j ~time_s = Platform.energy Platform.tx1 ~time_s
