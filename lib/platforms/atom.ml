let default_effective_flops = 2.5e7

let time_s ?(effective_flops = default_effective_flops) ~cost ~iterations () =
  if iterations < 0. then invalid_arg "Atom.time_s: negative iterations";
  iterations *. Dadu_core.Cost.total cost /. effective_flops

let energy_j ~time_s = Platform.energy Platform.atom ~time_s
