(** Platform descriptions (the rows of the paper's Table 3).

    We cannot execute on the paper's Atom D2500 / Jetson TX1 testbed, so
    Tables 2–3 are regenerated from analytic models: measured iteration
    counts (from running our solvers) × modeled per-iteration time on each
    platform.  Frequencies, powers, technology nodes are the paper's
    reported values, used as given. *)

type t = {
  name : string;
  technology : string;
  frequency_hz : float;
  avg_power_w : float;
}

val atom : t
(** Intel Atom D2500: 32 nm, 1.86 GHz, 10 W (paper Table 3). *)

val tx1 : t
(** NVIDIA Jetson TX1: 20 nm, up to 1.9 GHz, 4.8 W average (paper
    Table 3). *)

val ikacc : t
(** IKAcc: 65 nm @ 1 V, 1 GHz, 158.6 mW (paper Table 3).  The detailed
    activity-based model lives in {!Dadu_accel.Energy}; this row carries
    the headline average for table rendering. *)

val energy : t -> time_s:float -> float
(** [avg_power_w × time_s] — how the paper computes Table 3 energies for
    the CPU/GPU rows. *)

val pp : Format.formatter -> t -> unit
