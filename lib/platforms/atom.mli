(** Mobile-CPU timing model (paper's "Intel Atom" columns).

    A scalar in-order CPU runs every solver serially, so solve time is
    simply total floating-point work divided by an effective throughput.
    The default throughput is calibrated to the paper's Table 2 anchor
    (JT-Serial, 100 DOF ≈ 13 s) given our measured iteration counts; it is
    deliberately far below the chip's peak because it absorbs the ROS/KDL
    software stack the paper actually ran (allocation, virtual dispatch,
    scalar trig).  See DESIGN.md §6. *)

val default_effective_flops : float
(** 2.5e7 flop/s. *)

val time_s :
  ?effective_flops:float -> cost:Dadu_core.Cost.per_iteration -> iterations:float -> unit -> float
(** Mean solve time: [iterations × (serial + parallel flops) / throughput]
    — a CPU executes the "parallel" speculation work serially. *)

val energy_j : time_s:float -> float
(** At the platform's 10 W average. *)
