type t = {
  name : string;
  technology : string;
  frequency_hz : float;
  avg_power_w : float;
}

let atom =
  { name = "Intel Atom"; technology = "32nm"; frequency_hz = 1.86e9; avg_power_w = 10.0 }

let tx1 =
  { name = "Nvidia TX1"; technology = "20nm"; frequency_hz = 1.9e9; avg_power_w = 4.8 }

let ikacc =
  { name = "IKAcc"; technology = "65nm 1.1V"; frequency_hz = 1e9; avg_power_w = 0.1586 }

let energy t ~time_s = t.avg_power_w *. time_s

let pp ppf t =
  Format.fprintf ppf "%s (%s, %.2g GHz, %g W)" t.name t.technology
    (t.frequency_hz /. 1e9) t.avg_power_w
