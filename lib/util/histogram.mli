(** Sample-buffer histograms for service metrics.

    A growable buffer of float samples with percentile summaries computed
    through {!Stats}.  The serving layer records one latency and one
    iteration-count sample per request; percentiles are exact (computed
    from the retained samples), which is the right trade at the scale a
    single process serves between snapshots.  Not thread-safe: callers
    serialize access (the service records from its commit phase). *)

type t

val create : ?initial_capacity:int -> unit -> t
(** Empty histogram.  [initial_capacity] sizes the first buffer
    (default 64); the buffer doubles as needed. *)

val add : t -> float -> unit
(** Record one sample.  Non-finite samples raise [Invalid_argument] —
    a NaN would silently poison every percentile. *)

val count : t -> int

val clear : t -> unit
(** Forgets all samples (keeps the buffer). *)

val to_array : t -> float array
(** Copy of the samples in insertion order. *)

val percentile : t -> float -> float
(** [percentile t p] for [p] in [\[0, 100\]]; raises [Invalid_argument]
    when empty (see {!Stats.percentile}). *)

type summary = {
  n : int;
  mean : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

val summarize : t -> summary option
(** [None] when no samples have been recorded. *)

val pp_summary : Format.formatter -> summary -> unit
