(** Per-request span tracing for the serving layer.

    A trace collects timed spans — one per (request, phase) — from any
    domain, behind a mutex, and exports them as JSON lines so throughput
    and tail latency become observable end to end without attaching a
    profiler.  The clock is monotone by construction: {!now_s} reads
    [CLOCK_MONOTONIC] (immune to wall-clock steps, so deadline expiry
    and span durations survive an NTP slew or manual reset), then clamps
    through a process-wide CAS maximum as a second layer, so no caller
    on any domain ever observes time running backwards.

    Recording allocates (spans are heap values); tracing is for the
    serving layer's request granularity, not for solver inner loops. *)

type t

val create : unit -> t
(** A fresh trace whose epoch is the creation instant; span start times
    are exported relative to it. *)

val now_s : unit -> float
(** Seconds on the process-wide monotone clock ([CLOCK_MONOTONIC], CAS
    clamped).  Successive calls never decrease, across all domains.  The
    origin is arbitrary (typically boot time) — use differences, never
    compare against wall-clock readings. *)

type span = {
  request : int;  (** batch index of the request the span belongs to *)
  phase : string;  (** e.g. ["prepare"], ["solve"], ["fallback-tier"], ["commit"] *)
  start_s : float;  (** offset from the trace epoch *)
  dur_s : float;  (** non-negative duration *)
  attrs : (string * string) list;  (** free-form labels, e.g. solver name *)
}

val record :
  t ->
  request:int ->
  phase:string ->
  ?attrs:(string * string) list ->
  start_s:float ->
  dur_s:float ->
  unit ->
  unit
(** [start_s] is a {!now_s} reading (absolute); it is stored relative to
    the trace epoch.  Thread-safe: workers may record concurrently. *)

val span : t option -> request:int -> phase:string -> (unit -> 'a) -> 'a
(** [span trace ~request ~phase f] runs [f] and, when [trace] is
    [Some _], records its duration under [phase].  [None] is a disabled
    trace: [f] runs untimed with no overhead. *)

val length : t -> int
(** Spans recorded so far. *)

val spans : t -> span list
(** Stable view sorted by [(request, start_s, phase)], so exports do not
    depend on which domain recorded first. *)

val to_jsonl : t -> string
(** One compact JSON object per line, in {!spans} order, with fields
    [request], [phase], [start_s], [dur_s] and one string field per
    attribute.  Times are rounded to the nanosecond so the output stays
    locale- and precision-stable; a non-finite time (a poisoned span)
    is exported as [null] rather than losing the whole file to
    {!Json.to_string}'s NaN check. *)

val write_jsonl : t -> string -> unit
(** Writes {!to_jsonl} to a file.  Raises [Sys_error] like [open_out]. *)
