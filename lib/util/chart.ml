type group = { label : string; bars : (string * float) list }

let render ?(width = 50) ?(log = false) groups =
  if groups = [] then ""
  else begin
    let transform v = if log then log10 (1. +. Float.max 0. v) else Float.max 0. v in
    let max_value =
      List.fold_left
        (fun acc { bars; _ } ->
          List.fold_left (fun acc (_, v) -> Float.max acc (transform v)) acc bars)
        0. groups
    in
    let label_width =
      List.fold_left
        (fun acc { label; bars } ->
          List.fold_left
            (fun acc (series, _) -> Stdlib.max acc (String.length series))
            (Stdlib.max acc (String.length label))
            bars)
        0 groups
    in
    let buf = Buffer.create 1024 in
    List.iter
      (fun { label; bars } ->
        Buffer.add_string buf (Printf.sprintf "%s\n" label);
        List.iter
          (fun (series, value) ->
            let len =
              if max_value <= 0. then 0
              else
                int_of_float
                  (Float.round (transform value /. max_value *. float_of_int width))
            in
            Buffer.add_string buf
              (Printf.sprintf "  %-*s |%s %g\n" label_width series
                 (String.make len '#') value))
          bars;
        Buffer.add_char buf '\n')
      groups;
    if log then Buffer.add_string buf "(bar lengths on a log10 scale)\n";
    Buffer.contents buf
  end
