type trigger =
  | Always
  | At_iteration of int
  | From_iteration of int
  | Every of int
  | First of int
  | Prob of float

type rule = { site : string; trigger : trigger; arg : float }

type plan = rule list

(* ---- plan syntax ---- *)

let trigger_to_string = function
  | Always -> None
  | At_iteration n -> Some (Printf.sprintf "iter=%d" n)
  | From_iteration n -> Some (Printf.sprintf "from=%d" n)
  | Every n -> Some (Printf.sprintf "every=%d" n)
  | First n -> Some (Printf.sprintf "first=%d" n)
  | Prob p -> Some (Printf.sprintf "prob=%g" p)

let rule_to_string r =
  String.concat ","
    ((r.site :: Option.to_list (trigger_to_string r.trigger))
    @ if r.arg = 0. then [] else [ Printf.sprintf "arg=%g" r.arg ])

let plan_to_string plan = String.concat ";" (List.map rule_to_string plan)

let parse_rule text =
  match
    String.split_on_char ',' text
    |> List.map String.trim
    |> List.filter (fun f -> f <> "")
  with
  | [] -> Error "empty fault rule"
  | site :: fields ->
    let parse acc field =
      match acc with
      | Error _ as e -> e
      | Ok (trigger, arg) ->
        (match String.index_opt field '=' with
        | None ->
          if field = "always" then Ok (Some Always, arg)
          else Error (Printf.sprintf "bad fault field %S (expected key=value)" field)
        | Some i ->
          let key = String.sub field 0 i in
          let v = String.sub field (i + 1) (String.length field - i - 1) in
          let int_trigger make =
            match int_of_string_opt v with
            | Some n when n >= 0 -> Ok (Some (make n), arg)
            | Some _ | None ->
              Error (Printf.sprintf "bad fault field %S (expected %s=<nat>)" field key)
          in
          (match key with
          | "iter" -> int_trigger (fun n -> At_iteration n)
          | "from" -> int_trigger (fun n -> From_iteration n)
          | "every" ->
            (match int_of_string_opt v with
            | Some n when n > 0 -> Ok (Some (Every n), arg)
            | Some _ | None -> Error (Printf.sprintf "bad fault field %S (every needs a positive count)" field))
          | "first" -> int_trigger (fun n -> First n)
          | "prob" ->
            (match float_of_string_opt v with
            | Some p when p >= 0. && p <= 1. -> Ok (Some (Prob p), arg)
            | Some _ | None ->
              Error (Printf.sprintf "bad fault field %S (prob needs 0..1)" field))
          | "arg" | "bit" ->
            (match float_of_string_opt v with
            | Some x when Float.is_finite x -> Ok (trigger, x)
            | Some _ | None ->
              Error (Printf.sprintf "bad fault field %S (finite number expected)" field))
          | _ -> Error (Printf.sprintf "unknown fault field %S" key)))
    in
    (match List.fold_left parse (Ok (None, 0.)) fields with
    | Error _ as e -> e
    | Ok (trigger, arg) ->
      Ok { site; trigger = Option.value trigger ~default:Always; arg })

let parse_plan text =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | part :: rest ->
      (match parse_rule part with
      | Ok r -> go (r :: acc) rest
      | Error _ as e -> e)
  in
  match
    String.split_on_char ';' text
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  with
  | [] -> Error "empty fault plan"
  | parts -> go [] parts

(* ---- runtime registry ---- *)

type armed_rule = {
  rule : rule;
  mutable hits : int;  (* consultations of this rule's site, so far *)
  rng : Rng.t;  (* private stream for Prob triggers *)
}

type registry = { seed : int; plan : rule array; rules : armed_rule array }

type t = Disabled | Armed of registry

let disabled = Disabled

let enabled = function Disabled -> false | Armed _ -> true

(* Hashtbl.hash is deterministic for int/string tuples across runs, which
   is all the seeding needs: distinct, reproducible streams per
   (seed, fork, rule, site). *)
let rule_seed ~seed ~fork_index ~rule_index site =
  Hashtbl.hash (seed, fork_index, rule_index, site)

let arm_registry ~seed ~fork_index plan =
  let plan = Array.of_list plan in
  let rules =
    Array.mapi
      (fun i rule ->
        {
          rule;
          hits = 0;
          rng = Rng.create (rule_seed ~seed ~fork_index ~rule_index:i rule.site);
        })
      plan
  in
  Armed { seed; plan = Array.copy plan; rules }

let arm ?(seed = 0) plan =
  if plan = [] then Disabled else arm_registry ~seed ~fork_index:0 plan

let fork t index =
  match t with
  | Disabled -> Disabled
  | Armed { seed; plan; _ } ->
    arm_registry ~seed ~fork_index:index (Array.to_list plan)

let triggers ar ~iteration =
  match ar.rule.trigger with
  | Always -> true
  | At_iteration n -> iteration = n
  | From_iteration n -> iteration >= n
  | Every n -> ar.hits mod n = 0
  | First n -> ar.hits < n
  | Prob p -> Rng.float ar.rng 1.0 < p

let fires t ~site ?(iteration = 0) () =
  match t with
  | Disabled -> None
  | Armed { rules; _ } ->
    (* consult every matching rule so counters and random streams advance
       independently of which rule (if any) fires first *)
    let fired = ref None in
    Array.iter
      (fun ar ->
        if String.equal ar.rule.site site then begin
          let hit = triggers ar ~iteration in
          ar.hits <- ar.hits + 1;
          if hit && !fired = None then fired := Some ar.rule.arg
        end)
      rules;
    !fired

let consultations t ~site =
  match t with
  | Disabled -> 0
  | Armed { rules; _ } ->
    Array.fold_left
      (fun acc ar -> if String.equal ar.rule.site site then Stdlib.max acc ar.hits else acc)
      0 rules

(* ---- well-known network sites ------------------------------------------

   The wire-level chaos sites consulted by the streaming server's frame
   writer (Dadu_service.Problem_file.write_frame_injected) and the
   resilient client.  Kept here so injectors and consumers agree on the
   spelling. *)

let net_cut = "net-cut"
let net_stall = "net-stall"
let net_garble = "net-garble"
let net_short_frame = "net-short-frame"
