(** Minimal JSON reader/writer for the benchmark-regression harness.

    The repo has no third-party JSON dependency; this module covers the
    subset the harness needs — objects, arrays, strings, finite numbers,
    booleans and null.  Emission is compact (no whitespace); numbers that
    are mathematically integers print without a fractional part, all other
    finite doubles use a round-trippable [%.17g] form. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val num : float -> t
(** [Num x] for finite [x], [Null] otherwise.  Emitters that may carry a
    poisoned statistic (a NaN latency, an infinite error) should build
    numbers through this so one bad float costs a [null] field, not the
    whole export at the end of the run ({!to_string} raises on a raw
    non-finite [Num]). *)

val to_string : t -> string
(** Compact serialization.  @raise Invalid_argument on NaN or infinity. *)

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error] carries a message with the
    byte offset of the failure. *)

val member : string -> t -> t option
(** [member key json] is the value bound to [key] if [json] is an object
    that has it. *)

val to_float : t -> float option

val to_list : t -> t list option

val to_str : t -> string option

val write_file : string -> t -> unit
(** Serialize to a file, followed by a trailing newline. *)

val read_file : string -> (t, string) result
