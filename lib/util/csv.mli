(** Minimal CSV emission for experiment results. *)

val escape : string -> string
(** Quotes a field if it contains a comma, quote, or newline. *)

val row_to_string : string list -> string
(** One CSV line without trailing newline. *)

val write : string -> header:string list -> string list list -> unit
(** [write path ~header rows] writes a CSV file, creating parent output as
    needed under the current directory. *)
