let check_nonempty name xs =
  if Array.length xs = 0 then invalid_arg (name ^ ": empty sample")

let mean xs =
  check_nonempty "Stats.mean" xs;
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let stddev xs =
  check_nonempty "Stats.stddev" xs;
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.)) 0. xs in
    sqrt (ss /. float_of_int (n - 1))
  end

let min xs =
  check_nonempty "Stats.min" xs;
  Array.fold_left Float.min xs.(0) xs

let max xs =
  check_nonempty "Stats.max" xs;
  Array.fold_left Float.max xs.(0) xs

let percentile p xs =
  check_nonempty "Stats.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0, 100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let rank = p /. 100. *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let w = rank -. float_of_int lo in
    ((1. -. w) *. sorted.(lo)) +. (w *. sorted.(hi))
  end

let median xs = percentile 50. xs

let geomean xs =
  check_nonempty "Stats.geomean" xs;
  let sum_logs =
    Array.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geomean: non-positive sample";
        acc +. log x)
      0. xs
  in
  exp (sum_logs /. float_of_int (Array.length xs))

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

let summarize xs =
  check_nonempty "Stats.summarize" xs;
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = min xs;
    p50 = median xs;
    p95 = percentile 95. xs;
    max = max xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g"
    s.n s.mean s.stddev s.min s.p50 s.p95 s.max
