(* Minimal JSON support for the benchmark-regression harness.  The repo
   deliberately has no third-party JSON dependency; this covers exactly the
   subset the harness emits and reads back: objects, arrays, strings,
   numbers, booleans and null, UTF-8 passed through untouched. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

let num x = if Float.is_finite x then Num x else Null

(* ---- emission ---- *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Integers print without a fractional part; everything else uses %.17g,
   which round-trips any finite double through [float_of_string]. *)
let number_to_string x =
  if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let rec emit buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num x ->
    if Float.is_nan x || Float.abs x = infinity then
      invalid_arg "Json.to_string: nan/infinity are not representable"
    else Buffer.add_string buf (number_to_string x)
  | Str s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        emit buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        emit buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  emit buf v;
  Buffer.contents buf

(* ---- parsing (recursive descent) ---- *)

exception Parse_error of string

type parser_state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some c' when c' = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string_raw st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char buf '"'; advance st; go ()
      | Some '\\' -> Buffer.add_char buf '\\'; advance st; go ()
      | Some '/' -> Buffer.add_char buf '/'; advance st; go ()
      | Some 'n' -> Buffer.add_char buf '\n'; advance st; go ()
      | Some 'r' -> Buffer.add_char buf '\r'; advance st; go ()
      | Some 't' -> Buffer.add_char buf '\t'; advance st; go ()
      | Some 'b' -> Buffer.add_char buf '\b'; advance st; go ()
      | Some 'f' -> Buffer.add_char buf '\012'; advance st; go ()
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st "bad \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex)
          with _ -> fail st "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        (* encode the code point as UTF-8; surrogate pairs are not needed
           for the harness's ASCII identifiers but basic BMP works *)
        if code < 0x80 then Buffer.add_char buf (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
        end;
        go ()
      | _ -> fail st "bad escape")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  if st.pos = start then fail st "expected number";
  let text = String.sub st.src start (st.pos - start) in
  match float_of_string_opt text with
  | Some x -> Num x
  | None -> fail st (Printf.sprintf "bad number %S" text)

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let key = parse_string_raw st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields ((key, v) :: acc)
        | Some '}' ->
          advance st;
          List.rev ((key, v) :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '"' -> Str (parse_string_raw st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  match parse_value st with
  | v ->
    skip_ws st;
    if st.pos <> String.length s then
      Error (Printf.sprintf "trailing garbage at offset %d" st.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ---- accessors ---- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_float = function Num x -> Some x | _ -> None

let to_list = function List items -> Some items | _ -> None

let to_str = function Str s -> Some s | _ -> None

(* ---- files ---- *)

let write_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string v);
      output_char oc '\n')

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))
  |> of_string
