(** Summary statistics over float samples. *)

val mean : float array -> float
(** Arithmetic mean.  Raises [Invalid_argument] on an empty array. *)

val stddev : float array -> float
(** Sample standard deviation (n−1 denominator); 0 for singletons. *)

val min : float array -> float

val max : float array -> float

val median : float array -> float
(** Median by sorting a copy. *)

val percentile : float -> float array -> float
(** [percentile p xs] for [p] in [\[0, 100\]], linear interpolation between
    closest ranks. *)

val geomean : float array -> float
(** Geometric mean; all samples must be positive. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  p50 : float;
  p95 : float;
  max : float;
}

val summarize : float array -> summary

val pp_summary : Format.formatter -> summary -> unit
