(* Monotone clock, two layers deep.  The source is CLOCK_MONOTONIC (via
   the C stub below — OCaml's bundled Unix library stops at
   gettimeofday), so a wall-clock step (NTP slew, manual reset) can no
   longer expire a batch's deadlines or produce negative span durations.
   The CAS clamp stays as belt and braces: it publishes the newest
   reading so no caller — on any domain, even against a buggy or
   coarse-grained kernel clock — ever observes time running backwards; a
   stale racer simply returns the published maximum, which is still
   ahead of every value it could have observed before. *)
external monotonic_s : unit -> float = "dadu_clock_monotonic_s"

let last = Atomic.make 0.

let rec clamp now =
  let prev = Atomic.get last in
  if now <= prev then prev
  else if Atomic.compare_and_set last prev now then now
  else clamp now

let now_s () = clamp (monotonic_s ())

type span = {
  request : int;
  phase : string;
  start_s : float;
  dur_s : float;
  attrs : (string * string) list;
}

type t = {
  epoch : float;
  lock : Mutex.t;
  mutable recorded : span list; (* newest first *)
  mutable count : int;
}

let create () =
  { epoch = now_s (); lock = Mutex.create (); recorded = []; count = 0 }

let record t ~request ~phase ?(attrs = []) ~start_s ~dur_s () =
  let s =
    {
      request;
      phase;
      start_s = Float.max 0. (start_s -. t.epoch);
      dur_s = Float.max 0. dur_s;
      attrs;
    }
  in
  Mutex.lock t.lock;
  t.recorded <- s :: t.recorded;
  t.count <- t.count + 1;
  Mutex.unlock t.lock

let span trace ~request ~phase f =
  match trace with
  | None -> f ()
  | Some t ->
    let start_s = now_s () in
    Fun.protect
      ~finally:(fun () ->
        record t ~request ~phase ~start_s ~dur_s:(now_s () -. start_s) ())
      f

let length t =
  Mutex.lock t.lock;
  let n = t.count in
  Mutex.unlock t.lock;
  n

let spans t =
  Mutex.lock t.lock;
  let recorded = t.recorded in
  Mutex.unlock t.lock;
  List.stable_sort
    (fun a b ->
      compare (a.request, a.start_s, a.phase) (b.request, b.start_s, b.phase))
    (List.rev recorded)

(* nanosecond rounding keeps the JSON short and byte-stable; nothing in
   the serving layer is faster than a nanosecond anyway *)
let round_ns x = Float.round (x *. 1e9) /. 1e9

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s ->
      let fields =
        [
          ("request", Json.num (float_of_int s.request));
          ("phase", Json.Str s.phase);
          ("start_s", Json.num (round_ns s.start_s));
          ("dur_s", Json.num (round_ns s.dur_s));
        ]
        @ List.map (fun (k, v) -> (k, Json.Str v)) s.attrs
      in
      Buffer.add_string buf (Json.to_string (Json.Obj fields));
      Buffer.add_char buf '\n')
    (spans t);
  Buffer.contents buf

let write_jsonl t path =
  Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_jsonl t))
