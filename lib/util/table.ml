type align = Left | Right

type row = Cells of string list | Sep

type t = {
  title : string option;
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?title columns =
  { title; headers = List.map fst columns; aligns = List.map snd columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render t =
  let rows = List.rev t.rows in
  let widths =
    List.fold_left
      (fun acc row ->
        match row with
        | Sep -> acc
        | Cells cells -> List.map2 (fun w c -> Stdlib.max w (String.length c)) acc cells)
      (List.map String.length t.headers)
      rows
  in
  let buf = Buffer.create 256 in
  let hline () =
    List.iter (fun w -> Buffer.add_string buf ("+" ^ String.make (w + 2) '-')) widths;
    Buffer.add_string buf "+\n"
  in
  let emit cells =
    List.iter2
      (fun (w, a) c -> Buffer.add_string buf (Printf.sprintf "| %s " (pad a w c)))
      (List.combine widths t.aligns)
      cells;
    Buffer.add_string buf "|\n"
  in
  (match t.title with
  | None -> ()
  | Some title -> Buffer.add_string buf (title ^ "\n"));
  hline ();
  emit t.headers;
  hline ();
  List.iter (function Sep -> hline () | Cells cells -> emit cells) rows;
  hline ();
  Buffer.contents buf

let print t = print_string (render t)

let fmt_float ?(decimals = 2) x = Printf.sprintf "%.*f" decimals x

let fmt_sig ?(digits = 4) x = Printf.sprintf "%.*g" digits x
