(** Named operation counters.

    Lightweight accounting used by the accelerator simulator and tests to
    tally events (cycles, multiplies, schedules, ...) by name. *)

type t

val create : unit -> t

val add : t -> string -> int -> unit
(** [add t name n] increments counter [name] by [n], creating it at 0. *)

val incr : t -> string -> unit
(** [incr t name] is [add t name 1]. *)

val get : t -> string -> int
(** Current value; 0 for unknown names. *)

val reset : t -> unit
(** Zeroes every counter. *)

val to_list : t -> (string * int) list
(** All counters, sorted by name. *)
