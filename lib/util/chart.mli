(** ASCII bar charts for the bench output.

    The paper's Figures 4–5 are grouped bar charts (Figure 5 on a log
    axis); this renders the same data as horizontal text bars so the shape
    is visible straight from the terminal, alongside the numeric tables. *)

type group = {
  label : string;  (** e.g. the DOF value *)
  bars : (string * float) list;  (** (series label, value) *)
}

val render : ?width:int -> ?log:bool -> group list -> string
(** Horizontal bars scaled to the global maximum.  [width] is the maximum
    bar length in characters (default 50).  With [log] (default false),
    lengths follow [log10(1 + value)] — matching the paper's log-scale
    axes — while the printed numbers stay linear.  Negative values render
    as empty bars; an empty group list renders as the empty string. *)
