(** Deterministic pseudo-random number generation.

    A small, fast SplitMix64 generator.  Every stochastic component of the
    library (target sampling, initial joint angles, random chains) draws
    from an explicit [t] so that experiments are reproducible from a single
    seed.  The generator is not thread-safe; use {!split} to derive
    independent streams for parallel work. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] duplicates the current state. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val uniform : t -> float -> float -> float
(** [uniform t lo hi] is uniform in [\[lo, hi)]. *)

val gaussian : t -> float
(** Standard normal deviate (Box–Muller). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
