(** Deterministic, site-scoped fault injection.

    A fault {e plan} is a list of rules, each naming an injection {e site}
    (a string agreed between the injector and the component, e.g.
    ["ssu-flip"] in the accelerator simulator or ["solver-lie"] in the
    service fallback chain), a {e trigger} deciding when the rule fires,
    and a float {e payload} the site interprets (a bit index, a stuck-at
    value, …).

    Determinism is the design constraint: every probabilistic trigger
    draws from its own {!Rng} stream derived from [(seed, fork index,
    rule index, site)], and every counter-based trigger counts only its
    own site's consultations — so a registry's firing sequence is a pure
    function of the seed and the sequence of [fires] calls made against
    it, independent of wall clock, scheduling, or any other rule's
    outcome.  Components that run concurrently (e.g. service requests
    fanned across a domain pool) each take a {!fork} keyed by a stable
    index, which makes the injected faults independent of pool size.

    A disabled registry costs one branch per consultation and never
    allocates, so injection points can stay in hot paths unconditionally. *)

type trigger =
  | Always  (** fire on every consultation *)
  | At_iteration of int  (** fire when the consulted [iteration] equals this *)
  | From_iteration of int  (** fire when [iteration] is at least this *)
  | Every of int  (** fire on consultations 0, n, 2n, … of this rule's site *)
  | First of int  (** fire on the first n consultations *)
  | Prob of float  (** seeded Bernoulli per consultation *)

type rule = { site : string; trigger : trigger; arg : float }

type plan = rule list

val parse_plan : string -> (plan, string) result
(** Parses the CLI syntax: rules separated by [';'], each
    [site,field,...] with fields [iter=N | from=N | every=N | first=N |
    prob=P] (trigger, default [always]) and [arg=X] (payload, default 0;
    [bit=X] is an alias).  E.g.
    ["ssu-flip,prob=0.05,bit=40;sched-drop,every=100"]. *)

val plan_to_string : plan -> string
(** Round-trips through {!parse_plan}. *)

type t

val disabled : t
(** The no-op registry: {!fires} always answers [None]. *)

val enabled : t -> bool

val arm : ?seed:int -> plan -> t
(** [arm ~seed plan] builds a live registry ([disabled] when the plan is
    empty).  Equal seeds and plans yield equal firing sequences. *)

val fork : t -> int -> t
(** [fork t i] is a fresh registry with the same plan whose streams and
    counters are derived from [(seed, i)] — give each concurrent consumer
    (request, worker) its own fork keyed by a stable index and the
    injected faults become independent of execution interleaving.
    [fork disabled _ = disabled]. *)

val fires : t -> site:string -> ?iteration:int -> unit -> float option
(** Consults every rule for [site] in plan order (advancing each one's
    counter and random stream regardless of other rules' outcomes) and
    returns the payload of the first rule that triggers.  [iteration]
    (default 0) feeds [At_iteration]/[From_iteration].  [None] means no
    fault here. *)

val consultations : t -> site:string -> int
(** Total consultations recorded against [site] (0 when disabled) —
    lets reports distinguish "no faults planned" from "none triggered". *)

(** {1 Well-known network sites}

    The wire-level chaos sites of the streaming server, consulted on
    the sender side of every frame (see
    [Dadu_service.Problem_file.write_frame_injected]).  Each concurrent
    frame stream takes its own {!fork}, so firings are independent of
    pool size and of other connections' traffic. *)

val net_cut : string
(** ["net-cut"]: abandon the stream without writing — the peer sees a
    hard disconnect. *)

val net_stall : string
(** ["net-stall"]: pause for [arg] seconds between the length line and
    the payload — a mid-frame stall that trips the peer's frame
    deadline when longer than it. *)

val net_garble : string
(** ["net-garble"]: corrupt the frame's length line — the peer's
    framing layer desynchronizes and must drop the connection. *)

val net_short_frame : string
(** ["net-short-frame"]: write only a prefix of the frame, then
    abandon the stream — the half-written frame the read deadline
    regression test guards against. *)
