type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 finalizer (Steele, Lea, Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t = { state = bits64 t }

(* Keep 62 bits so the conversion to OCaml's 63-bit int stays
   non-negative. *)
let int t bound =
  assert (bound > 0);
  let r = Int64.to_int (Int64.shift_right_logical (bits64 t) 2) in
  r mod bound

(* 53 uniform mantissa bits, in [0, 1). *)
let unit_float t =
  let bits = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bits *. 0x1p-53

let float t bound = unit_float t *. bound

let uniform t lo hi = lo +. (unit_float t *. (hi -. lo))

let gaussian t =
  let rec draw () =
    let u = unit_float t in
    if u > 0. then u else draw ()
  in
  let u1 = draw () and u2 = unit_float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
