(** A reusable pool of OCaml 5 domains for data-parallel loops.

    Quick-IK's speculative searches are embarrassingly parallel; this pool
    plays the role of the paper's "multithreads architecture" on the host.
    Domains are spawned once and reused across every {!parallel_for} call,
    because spawning a domain per IK iteration would dominate the runtime.

    The pool serialises concurrent [parallel_for] calls: it is safe to call
    from one orchestrating thread at a time (the normal bench/solver usage).
    Loop bodies must not themselves call into the same pool. *)

type t

val create : int -> t
(** [create n] spawns [max 0 (n-1)] worker domains; the caller participates
    as the [n]-th worker during {!parallel_for}.  [n] must be positive. *)

val size : t -> int
(** Total parallelism (workers + caller). *)

val parallel_for : ?grain:int -> t -> int -> (int -> unit) -> unit
(** [parallel_for ?grain t n body] runs [body i] for each [i] in
    [\[0, n)], work-stealing from a shared counter.  Returns when all are
    done.  [grain] (default 1, must be positive) sets how many contiguous
    items one steal claims: dispatch cost drops from [n] atomic fetches to
    [ceil(n/grain)], at the price of coarser load balancing — the right
    trade when items are small and uniform (e.g. speculative FK
    candidates).  Exceptions raised by [body] are re-raised in the caller
    (first one wins; remaining items may or may not have run). *)

val parallel_for_chunks : t -> grain:int -> int -> (int -> int -> unit) -> unit
(** [parallel_for_chunks t ~grain n body] is the chunk-level view of a
    grained {!parallel_for}: [body lo hi] is called once per stolen chunk
    with [0 <= lo < hi <= n] and [hi - lo <= grain], chunks partitioning
    [\[0, n)] contiguously.  Use it when the caller has a kernel that
    processes a whole range cheaper than per-item calls (Quick-IK's
    link-major candidate sweep). *)

val map : t -> (int -> 'a) -> int -> 'a array
(** [map t f n] is [Array.init n f] computed in parallel — all [n] items
    are dispatched through {!parallel_for} (no item runs serially ahead of
    the workers). *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must not be used afterwards. *)

val recommended_size : unit -> int
(** [Domain.recommended_domain_count], capped to a sane bench value. *)
