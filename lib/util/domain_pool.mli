(** A reusable pool of OCaml 5 domains for data-parallel loops.

    Quick-IK's speculative searches are embarrassingly parallel; this pool
    plays the role of the paper's "multithreads architecture" on the host.
    Domains are spawned once and reused across every {!parallel_for} call,
    because spawning a domain per IK iteration would dominate the runtime.

    The pool serialises concurrent [parallel_for] calls: it is safe to call
    from one orchestrating thread at a time (the normal bench/solver usage).
    Loop bodies must not themselves call into the same pool. *)

type t

val create : int -> t
(** [create n] spawns [max 0 (n-1)] worker domains; the caller participates
    as the [n]-th worker during {!parallel_for}.  [n] must be positive. *)

val size : t -> int
(** Total parallelism (workers + caller). *)

val parallel_for : t -> int -> (int -> unit) -> unit
(** [parallel_for t n body] runs [body i] for each [i] in [\[0, n)], work-
    stealing indices from a shared counter.  Returns when all are done.
    Exceptions raised by [body] are re-raised in the caller (first one
    wins; remaining indices may or may not have run). *)

val map : t -> (int -> 'a) -> int -> 'a array
(** [map t f n] is [Array.init n f] computed in parallel. *)

val shutdown : t -> unit
(** Joins the worker domains.  The pool must not be used afterwards. *)

val recommended_size : unit -> int
(** [Domain.recommended_domain_count], capped to a sane bench value. *)
