type t = {
  total_workers : int; (* including the caller *)
  mutex : Mutex.t;
  ready : Condition.t;
  finished : Condition.t;
  mutable generation : int;
  mutable body : int -> int -> unit; (* contiguous range [lo, hi) *)
  mutable items : int;
  mutable grain : int;
  mutable tasks : int; (* ceil (items / grain) *)
  next : int Atomic.t; (* task (chunk) counter *)
  completed : int Atomic.t; (* finished tasks *)
  mutable failure : exn option;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t list;
}

(* Work-stealing inner loop shared by workers and the caller: grab the next
   chunk until the range is exhausted.  Dispatch is per chunk, not per
   item, so a grained loop over n items costs ceil(n/grain) atomic
   fetches instead of n.  The last finisher signals [finished]. *)
let drain t =
  let rec loop () =
    let c = Atomic.fetch_and_add t.next 1 in
    if c < t.tasks then begin
      let lo = c * t.grain in
      let hi = Stdlib.min t.items (lo + t.grain) in
      (try t.body lo hi
       with exn ->
         Mutex.lock t.mutex;
         if t.failure = None then t.failure <- Some exn;
         Mutex.unlock t.mutex);
      let done_count = 1 + Atomic.fetch_and_add t.completed 1 in
      if done_count = t.tasks then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker t =
  let my_generation = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while t.generation = !my_generation && not t.shutting_down do
      Condition.wait t.ready t.mutex
    done;
    if t.shutting_down then Mutex.unlock t.mutex
    else begin
      my_generation := t.generation;
      Mutex.unlock t.mutex;
      drain t;
      loop ()
    end
  in
  loop ()

let create n =
  if n <= 0 then invalid_arg "Domain_pool.create: size must be positive";
  let t =
    {
      total_workers = n;
      mutex = Mutex.create ();
      ready = Condition.create ();
      finished = Condition.create ();
      generation = 0;
      body = (fun _ _ -> ());
      items = 0;
      grain = 1;
      tasks = 0;
      next = Atomic.make 0;
      completed = Atomic.make 0;
      failure = None;
      shutting_down = false;
      domains = [];
    }
  in
  t.domains <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.total_workers

let run_chunks name t ~grain n body =
  if n < 0 then invalid_arg (name ^ ": negative count");
  if grain <= 0 then invalid_arg (name ^ ": grain must be positive");
  if n > 0 then begin
    Mutex.lock t.mutex;
    t.body <- body;
    t.items <- n;
    t.grain <- grain;
    (* ceil(n/grain) without the [n + grain - 1] sum, which wraps negative
       for grain near [max_int] and silently turned the whole dispatch into
       a no-op (tasks < 0 → drain grabs nothing, wait exits instantly). *)
    t.tasks <- 1 + ((n - 1) / grain);
    t.failure <- None;
    Atomic.set t.next 0;
    Atomic.set t.completed 0;
    t.generation <- t.generation + 1;
    Condition.broadcast t.ready;
    Mutex.unlock t.mutex;
    drain t;
    Mutex.lock t.mutex;
    while Atomic.get t.completed < t.tasks do
      Condition.wait t.finished t.mutex
    done;
    let failure = t.failure in
    t.body <- (fun _ _ -> ());
    Mutex.unlock t.mutex;
    match failure with None -> () | Some exn -> raise exn
  end

let parallel_for_chunks t ~grain n body =
  run_chunks "Domain_pool.parallel_for_chunks" t ~grain n body

let parallel_for ?(grain = 1) t n body =
  run_chunks "Domain_pool.parallel_for" t ~grain n (fun lo hi ->
      for i = lo to hi - 1 do
        body i
      done)

(* All [n] items go through [parallel_for]; item 0 is not special-cased on
   the caller thread (doing so serialized the first item ahead of the
   workers and skewed parallel timings).  The option buffer exists because
   ['a] has no default element; [map] is not a steady-state kernel, so the
   per-item [Some] box is fine. *)
let map t f n =
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for t n (fun i -> results.(i) <- Some (f i));
    Array.map
      (fun r -> match r with Some v -> v | None -> assert false)
      results
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let recommended_size () = Stdlib.min 8 (Stdlib.max 1 (Domain.recommended_domain_count ()))
