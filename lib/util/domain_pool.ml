type t = {
  total_workers : int; (* including the caller *)
  mutex : Mutex.t;
  ready : Condition.t;
  finished : Condition.t;
  mutable generation : int;
  mutable body : int -> unit;
  mutable total : int;
  next : int Atomic.t;
  completed : int Atomic.t;
  mutable failure : exn option;
  mutable shutting_down : bool;
  mutable domains : unit Domain.t list;
}

(* Work-stealing inner loop shared by workers and the caller: grab the next
   index until the range is exhausted.  The last finisher signals
   [finished]. *)
let drain t =
  let rec loop () =
    let i = Atomic.fetch_and_add t.next 1 in
    if i < t.total then begin
      (try t.body i
       with exn ->
         Mutex.lock t.mutex;
         if t.failure = None then t.failure <- Some exn;
         Mutex.unlock t.mutex);
      let done_count = 1 + Atomic.fetch_and_add t.completed 1 in
      if done_count = t.total then begin
        Mutex.lock t.mutex;
        Condition.broadcast t.finished;
        Mutex.unlock t.mutex
      end;
      loop ()
    end
  in
  loop ()

let worker t =
  let my_generation = ref 0 in
  let rec loop () =
    Mutex.lock t.mutex;
    while t.generation = !my_generation && not t.shutting_down do
      Condition.wait t.ready t.mutex
    done;
    if t.shutting_down then Mutex.unlock t.mutex
    else begin
      my_generation := t.generation;
      Mutex.unlock t.mutex;
      drain t;
      loop ()
    end
  in
  loop ()

let create n =
  if n <= 0 then invalid_arg "Domain_pool.create: size must be positive";
  let t =
    {
      total_workers = n;
      mutex = Mutex.create ();
      ready = Condition.create ();
      finished = Condition.create ();
      generation = 0;
      body = ignore;
      total = 0;
      next = Atomic.make 0;
      completed = Atomic.make 0;
      failure = None;
      shutting_down = false;
      domains = [];
    }
  in
  t.domains <- List.init (n - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let size t = t.total_workers

let parallel_for t n body =
  if n < 0 then invalid_arg "Domain_pool.parallel_for: negative count";
  if n > 0 then begin
    Mutex.lock t.mutex;
    t.body <- body;
    t.total <- n;
    t.failure <- None;
    Atomic.set t.next 0;
    Atomic.set t.completed 0;
    t.generation <- t.generation + 1;
    Condition.broadcast t.ready;
    Mutex.unlock t.mutex;
    drain t;
    Mutex.lock t.mutex;
    while Atomic.get t.completed < t.total do
      Condition.wait t.finished t.mutex
    done;
    let failure = t.failure in
    t.body <- ignore;
    Mutex.unlock t.mutex;
    match failure with None -> () | Some exn -> raise exn
  end

let map t f n =
  if n = 0 then [||]
  else begin
    let first = f 0 in
    let results = Array.make n first in
    parallel_for t (n - 1) (fun i -> results.(i + 1) <- f (i + 1));
    results
  end

let shutdown t =
  Mutex.lock t.mutex;
  t.shutting_down <- true;
  Condition.broadcast t.ready;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let recommended_size () = Stdlib.min 8 (Stdlib.max 1 (Domain.recommended_domain_count ()))
