(** Aligned text tables for experiment output.

    Benches print paper-style tables; this module does the column layout.
    Cells are strings; numeric helpers format floats consistently. *)

type align = Left | Right

type t

val create : ?title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header cells and
    per-column alignment. *)

val add_row : t -> string list -> unit
(** Appends a row.  Raises [Invalid_argument] if the arity differs from the
    header. *)

val add_sep : t -> unit
(** Appends a horizontal separator row. *)

val render : t -> string
(** Renders with unicode-free ASCII borders, suitable for logs. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point float formatting used across benches. *)

val fmt_sig : ?digits:int -> float -> string
(** Significant-digit formatting ([%.*g]). *)
