type t = { mutable data : float array; mutable len : int }

let create ?(initial_capacity = 64) () =
  if initial_capacity <= 0 then
    invalid_arg "Histogram.create: initial_capacity must be positive";
  { data = Array.make initial_capacity 0.; len = 0 }

let add t x =
  if not (Float.is_finite x) then invalid_arg "Histogram.add: non-finite sample";
  if t.len = Array.length t.data then begin
    let bigger = Array.make (2 * t.len) 0. in
    Array.blit t.data 0 bigger 0 t.len;
    t.data <- bigger
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let count t = t.len

let clear t = t.len <- 0

let to_array t = Array.sub t.data 0 t.len

let percentile t p = Stats.percentile p (to_array t)

type summary = {
  n : int;
  mean : float;
  min : float;
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
}

let summarize t =
  if t.len = 0 then None
  else begin
    let xs = to_array t in
    Array.sort compare xs;
    (* [xs] is sorted, so Stats' sort-a-copy percentiles could be avoided;
       the summary is computed once per snapshot, so clarity wins. *)
    Some
      {
        n = t.len;
        mean = Stats.mean xs;
        min = xs.(0);
        p50 = Stats.percentile 50. xs;
        p95 = Stats.percentile 95. xs;
        p99 = Stats.percentile 99. xs;
        max = xs.(t.len - 1);
      }
  end

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.4g p50=%.4g p95=%.4g p99=%.4g max=%.4g" s.n
    s.mean s.p50 s.p95 s.p99 s.max
