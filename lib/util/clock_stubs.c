/* CLOCK_MONOTONIC for Dadu_util.Trace: OCaml's bundled Unix library
   exposes only gettimeofday, which steps with NTP/manual wall-clock
   adjustments — a stepped clock silently expires every deadline in a
   batch or records negative span durations.  One stub, no dependency. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#ifdef _WIN32
#include <windows.h>

CAMLprim value dadu_clock_monotonic_s(value unit)
{
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0) QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return caml_copy_double((double)now.QuadPart / (double)freq.QuadPart);
}

#else
#include <time.h>

CAMLprim value dadu_clock_monotonic_s(value unit)
{
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  (void)unit;
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
}
#endif
