type t = float array

let identity () =
  [| 1.; 0.; 0.; 0.; 0.; 1.; 0.; 0.; 0.; 0.; 1.; 0.; 0.; 0.; 0.; 1. |]

let copy = Array.copy

let blit src dst = Array.blit src 0 dst 0 16

let identity_into dst =
  Array.fill dst 0 16 0.;
  dst.(0) <- 1.;
  dst.(5) <- 1.;
  dst.(10) <- 1.;
  dst.(15) <- 1.

let get t i j = t.((i * 4) + j)

let set t i j x = t.((i * 4) + j) <- x

(* The multiply kernels run with unchecked indexing: they are the FKU inner
   loop and the bounds are pinned by the explicit length guard. *)
let check16 name m = if Array.length m <> 16 then invalid_arg (name ^ ": not a 4x4")

let mul_into ~dst a b =
  assert (dst != a && dst != b);
  check16 "Mat4.mul_into" dst;
  check16 "Mat4.mul_into" a;
  check16 "Mat4.mul_into" b;
  for i = 0 to 3 do
    let base = i * 4 in
    for j = 0 to 3 do
      Array.unsafe_set dst (base + j)
        ((Array.unsafe_get a base *. Array.unsafe_get b j)
        +. (Array.unsafe_get a (base + 1) *. Array.unsafe_get b (4 + j))
        +. (Array.unsafe_get a (base + 2) *. Array.unsafe_get b (8 + j))
        +. (Array.unsafe_get a (base + 3) *. Array.unsafe_get b (12 + j)))
    done
  done

let mul a b =
  let dst = Array.make 16 0. in
  mul_into ~dst a b;
  dst

(* Affine fast path: both operands must have bottom row [0 0 0 1], which
   holds for every rigid/DH transform in a chain.  Skipping the known-zero
   products is what takes one 4x4 composition from 64 to 36 multiplies; the
   surviving terms are summed in the same order as {!mul_into}, so results
   differ from the general kernel by at most the sign of a zero. *)
let mul_affine_into ~dst a b =
  assert (dst != a && dst != b);
  check16 "Mat4.mul_affine_into" dst;
  check16 "Mat4.mul_affine_into" a;
  check16 "Mat4.mul_affine_into" b;
  for i = 0 to 2 do
    let base = i * 4 in
    let a0 = Array.unsafe_get a base
    and a1 = Array.unsafe_get a (base + 1)
    and a2 = Array.unsafe_get a (base + 2) in
    Array.unsafe_set dst base
      ((a0 *. Array.unsafe_get b 0)
      +. (a1 *. Array.unsafe_get b 4)
      +. (a2 *. Array.unsafe_get b 8));
    Array.unsafe_set dst (base + 1)
      ((a0 *. Array.unsafe_get b 1)
      +. (a1 *. Array.unsafe_get b 5)
      +. (a2 *. Array.unsafe_get b 9));
    Array.unsafe_set dst (base + 2)
      ((a0 *. Array.unsafe_get b 2)
      +. (a1 *. Array.unsafe_get b 6)
      +. (a2 *. Array.unsafe_get b 10));
    Array.unsafe_set dst (base + 3)
      ((a0 *. Array.unsafe_get b 3)
      +. (a1 *. Array.unsafe_get b 7)
      +. (a2 *. Array.unsafe_get b 11)
      +. Array.unsafe_get a (base + 3))
  done;
  dst.(12) <- 0.;
  dst.(13) <- 0.;
  dst.(14) <- 0.;
  dst.(15) <- 1.

let is_affine t =
  t.(12) = 0. && t.(13) = 0. && t.(14) = 0. && t.(15) = 1.

let transform_point t (v : Vec3.t) =
  Vec3.make
    ((t.(0) *. v.x) +. (t.(1) *. v.y) +. (t.(2) *. v.z) +. t.(3))
    ((t.(4) *. v.x) +. (t.(5) *. v.y) +. (t.(6) *. v.z) +. t.(7))
    ((t.(8) *. v.x) +. (t.(9) *. v.y) +. (t.(10) *. v.z) +. t.(11))

let transform_dir t (v : Vec3.t) =
  Vec3.make
    ((t.(0) *. v.x) +. (t.(1) *. v.y) +. (t.(2) *. v.z))
    ((t.(4) *. v.x) +. (t.(5) *. v.y) +. (t.(6) *. v.z))
    ((t.(8) *. v.x) +. (t.(9) *. v.y) +. (t.(10) *. v.z))

let position t = Vec3.make t.(3) t.(7) t.(11)

let x_axis t = Vec3.make t.(0) t.(4) t.(8)
let y_axis t = Vec3.make t.(1) t.(5) t.(9)
let z_axis t = Vec3.make t.(2) t.(6) t.(10)

let translation (v : Vec3.t) =
  [| 1.; 0.; 0.; v.x; 0.; 1.; 0.; v.y; 0.; 0.; 1.; v.z; 0.; 0.; 0.; 1. |]

let of_rot_trans (r : Rot.t) (p : Vec3.t) =
  [|
    r.(0); r.(1); r.(2); p.x;
    r.(3); r.(4); r.(5); p.y;
    r.(6); r.(7); r.(8); p.z;
    0.; 0.; 0.; 1.;
  |]
[@@ocamlformat "disable"]

let rot_x a = of_rot_trans (Rot.rot_x a) Vec3.zero
let rot_y a = of_rot_trans (Rot.rot_y a) Vec3.zero
let rot_z a = of_rot_trans (Rot.rot_z a) Vec3.zero

let rotation t =
  [| t.(0); t.(1); t.(2); t.(4); t.(5); t.(6); t.(8); t.(9); t.(10) |]

let inverse_rigid t =
  let r = rotation t in
  let rt = Rot.transpose r in
  let p = position t in
  let p' = Vec3.neg (Rot.apply rt p) in
  of_rot_trans rt p'

let approx_equal ?(tol = 1e-9) a b =
  let rec loop k = k >= 16 || (Float.abs (a.(k) -. b.(k)) <= tol && loop (k + 1)) in
  loop 0

let is_rigid ?(tol = 1e-9) t =
  Rot.is_orthonormal ~tol (rotation t)
  && Float.abs t.(12) <= tol
  && Float.abs t.(13) <= tol
  && Float.abs t.(14) <= tol
  && Float.abs (t.(15) -. 1.) <= tol

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  for i = 0 to 3 do
    Format.fprintf ppf "[%8.4g, %8.4g, %8.4g, %8.4g]" (get t i 0) (get t i 1)
      (get t i 2) (get t i 3);
    if i < 3 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
