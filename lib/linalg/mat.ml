type t = { rows : int; cols : int; data : float array }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Array.make (rows * cols) 0. }

let init rows cols f =
  if rows < 0 || cols < 0 then invalid_arg "Mat.init: negative dimension";
  let data = Array.make (rows * cols) 0. in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      data.((i * cols) + j) <- f i j
    done
  done;
  { rows; cols; data }

let identity n = init n n (fun i j -> if i = j then 1. else 0.)

let of_arrays a =
  let rows = Array.length a in
  if rows = 0 then invalid_arg "Mat.of_arrays: empty";
  let cols = Array.length a.(0) in
  if cols = 0 then invalid_arg "Mat.of_arrays: empty row";
  Array.iter
    (fun r -> if Array.length r <> cols then invalid_arg "Mat.of_arrays: ragged rows")
    a;
  init rows cols (fun i j -> a.(i).(j))

let to_arrays m = Array.init m.rows (fun i -> Array.sub m.data (i * m.cols) m.cols)

let copy m = { m with data = Array.copy m.data }

let get m i j =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.get: out of bounds";
  m.data.((i * m.cols) + j)

let set m i j x =
  if i < 0 || i >= m.rows || j < 0 || j >= m.cols then invalid_arg "Mat.set: out of bounds";
  m.data.((i * m.cols) + j) <- x

let dims m = (m.rows, m.cols)

let row m i =
  if i < 0 || i >= m.rows then invalid_arg "Mat.row: out of bounds";
  Array.sub m.data (i * m.cols) m.cols

let col m j =
  if j < 0 || j >= m.cols then invalid_arg "Mat.col: out of bounds";
  Array.init m.rows (fun i -> m.data.((i * m.cols) + j))

let set_col m j v =
  if j < 0 || j >= m.cols then invalid_arg "Mat.set_col: out of bounds";
  if Array.length v <> m.rows then invalid_arg "Mat.set_col: dimension mismatch";
  for i = 0 to m.rows - 1 do
    m.data.((i * m.cols) + j) <- v.(i)
  done

let transpose m = init m.cols m.rows (fun i j -> m.data.((j * m.cols) + i))

let check_same_dims name a b =
  if a.rows <> b.rows || a.cols <> b.cols then invalid_arg (name ^ ": dimension mismatch")

let add a b =
  check_same_dims "Mat.add" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) +. b.data.(k)) }

let sub a b =
  check_same_dims "Mat.sub" a b;
  { a with data = Array.init (Array.length a.data) (fun k -> a.data.(k) -. b.data.(k)) }

let scale s a = { a with data = Array.map (fun x -> s *. x) a.data }

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let c = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = a.data.((i * a.cols) + k) in
      if aik <> 0. then
        for j = 0 to b.cols - 1 do
          c.data.((i * c.cols) + j) <-
            c.data.((i * c.cols) + j) +. (aik *. b.data.((k * b.cols) + j))
        done
    done
  done;
  c

let mul_vec a x =
  if a.cols <> Array.length x then invalid_arg "Mat.mul_vec: dimension mismatch";
  let y = Array.make a.rows 0. in
  for i = 0 to a.rows - 1 do
    let acc = ref 0. in
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (a.data.(base + j) *. x.(j))
    done;
    y.(i) <- !acc
  done;
  y

let mul_transpose_vec a x =
  if a.rows <> Array.length x then invalid_arg "Mat.mul_transpose_vec: dimension mismatch";
  let y = Array.make a.cols 0. in
  for i = 0 to a.rows - 1 do
    let xi = x.(i) in
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      y.(j) <- y.(j) +. (a.data.(base + j) *. xi)
    done
  done;
  y

(* In-place matrix-vector kernels for the solver workspaces.  They take and
   return nothing float-typed (buffers only), so a steady-state caller pays
   zero minor-heap words; the accumulation order is identical to the
   allocating variants above, making results bit-identical. *)

let gemv_into ~dst a x =
  if a.cols <> Array.length x then invalid_arg "Mat.gemv_into: dimension mismatch";
  if a.rows <> Array.length dst then invalid_arg "Mat.gemv_into: bad dst";
  let data = a.data in
  for i = 0 to a.rows - 1 do
    let acc = ref 0. in
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      acc := !acc +. (Array.unsafe_get data (base + j) *. Array.unsafe_get x j)
    done;
    Array.unsafe_set dst i !acc
  done

let gemv_t_into ~dst a x =
  if a.rows <> Array.length x then
    invalid_arg "Mat.gemv_t_into: dimension mismatch";
  if a.cols <> Array.length dst then invalid_arg "Mat.gemv_t_into: bad dst";
  Array.fill dst 0 a.cols 0.;
  let data = a.data in
  for i = 0 to a.rows - 1 do
    let xi = Array.unsafe_get x i in
    let base = i * a.cols in
    for j = 0 to a.cols - 1 do
      Array.unsafe_set dst j
        (Array.unsafe_get dst j +. (Array.unsafe_get data (base + j) *. xi))
    done
  done

let gram_into ~dst a =
  if dst.rows <> a.rows || dst.cols <> a.rows then
    invalid_arg "Mat.gram_into: bad dst";
  let data = a.data and g = dst.data in
  for i = 0 to a.rows - 1 do
    for j = i to a.rows - 1 do
      let acc = ref 0. in
      for k = 0 to a.cols - 1 do
        acc :=
          !acc
          +. (Array.unsafe_get data ((i * a.cols) + k)
             *. Array.unsafe_get data ((j * a.cols) + k))
      done;
      Array.unsafe_set g ((i * dst.cols) + j) !acc;
      Array.unsafe_set g ((j * dst.cols) + i) !acc
    done
  done

let gram a =
  let g = create a.rows a.rows in
  for i = 0 to a.rows - 1 do
    for j = i to a.rows - 1 do
      let acc = ref 0. in
      for k = 0 to a.cols - 1 do
        acc := !acc +. (a.data.((i * a.cols) + k) *. a.data.((j * a.cols) + k))
      done;
      g.data.((i * g.cols) + j) <- !acc;
      g.data.((j * g.cols) + i) <- !acc
    done
  done;
  g

let frobenius m = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0. m.data)

let max_abs m = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. m.data

let approx_equal ?(tol = 1e-9) a b =
  a.rows = b.rows && a.cols = b.cols
  &&
  let rec loop k =
    k >= Array.length a.data
    || (Float.abs (a.data.(k) -. b.data.(k)) <= tol && loop (k + 1))
  in
  loop 0

let pp ppf m =
  Format.fprintf ppf "@[<v>";
  for i = 0 to m.rows - 1 do
    Format.fprintf ppf "[";
    for j = 0 to m.cols - 1 do
      if j > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "%8.4g" m.data.((i * m.cols) + j)
    done;
    Format.fprintf ppf "]";
    if i < m.rows - 1 then Format.fprintf ppf "@,"
  done;
  Format.fprintf ppf "@]"
