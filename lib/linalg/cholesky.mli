(** Cholesky factorization and SPD solves.

    The damped-least-squares solver needs [(J·Jᵀ + λ²I)⁻¹·e] where the
    system is a small (3×3 or 6×6) symmetric positive-definite matrix. *)

exception Not_positive_definite

val factorize : Mat.t -> Mat.t
(** Lower-triangular [L] with [A = L·Lᵀ].  Raises
    {!Not_positive_definite} if a pivot is non-positive, and
    [Invalid_argument] if the input is not square. *)

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves [A·x = b] for SPD [A] (factorizes internally). *)

val solve_into : l:Mat.t -> y:Vec.t -> dst:Vec.t -> Mat.t -> Vec.t -> unit
(** [solve_into ~l ~y ~dst a b] solves [A·x = b] into [dst] without
    allocating: [l] (n×n) receives the factor and [y] (length n) is the
    forward-substitution scratch.  Bit-identical to {!solve}.  [dst] must
    not alias [b]. *)

val solve_factored : Mat.t -> Vec.t -> Vec.t
(** [solve_factored l b] with [l] from {!factorize}: forward then back
    substitution. *)

val inverse : Mat.t -> Mat.t
(** SPD inverse via n solves. *)
