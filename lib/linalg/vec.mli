(** Dense n-dimensional float vectors.

    Joint-angle vectors [θ] in the IK solvers are [Vec.t] of length DOF.
    Operations allocate fresh vectors unless suffixed [_into] or named
    imperatively ([axpy_into], [add_inplace], ...). *)

type t = float array
(** Exposed representation: plain float arrays, so chains of hot loops can
    index directly.  All functions treat inputs as immutable unless
    documented otherwise. *)

val create : int -> t
(** Zero vector of the given dimension. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val of_list : float list -> t

val to_list : t -> float list

val fill : t -> float -> unit

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

val add_inplace : t -> t -> unit
(** [add_inplace x y] sets [x.(i) <- x.(i) +. y.(i)]. *)

val blit : t -> t -> unit
(** [blit src dst] copies [src] into [dst]; dimensions must match. *)

val sub_into : dst:t -> t -> t -> unit
(** [sub_into ~dst x y] writes [x - y] into [dst] ([dst] may alias either
    operand). *)

val add_into : dst:t -> t -> t -> unit
(** [add_into ~dst x y] writes [x + y] into [dst]. *)

val neg_into : dst:t -> t -> unit

val scale_into : dst:t -> float -> t -> unit
(** [scale_into ~dst a x] writes [a*x] into [dst].  The scalar crosses a
    call boundary and therefore boxes (2 minor words); strict
    zero-allocation loops inline the multiply instead. *)

val axpy : float -> t -> t -> t
(** [axpy a x y] is [a*x + y]. *)

val axpy_into : dst:t -> float -> t -> t -> unit
(** [axpy_into ~dst a x y] writes [a*x + y] into [dst] (which may alias
    [y], but not [x] unless [a = 1.]). *)

val dot : t -> t -> float

val norm : t -> float
(** Euclidean norm. *)

val norm_sq : t -> float

val dist : t -> t -> float

val map : (float -> float) -> t -> t

val mapi : (int -> float -> float) -> t -> t

val max_abs : t -> float
(** Infinity norm; 0 for the empty vector. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Component-wise comparison within absolute tolerance (default 1e-9). *)

val pp : Format.formatter -> t -> unit
