(** Symmetric eigendecomposition by the classical Jacobi method.

    Used for manipulability ellipsoids ([J·Jᵀ]'s eigenstructure) and as a
    second opinion on the SVD (singular values of [A] are the square roots
    of [AᵀA]'s eigenvalues — a cross-check the tests exploit). *)

type t = {
  values : Vec.t;  (** eigenvalues, descending *)
  vectors : Mat.t;  (** column [k] is the unit eigenvector of [values.(k)] *)
  sweeps : int;
}

val decompose : ?max_sweeps:int -> ?tol:float -> Mat.t -> t
(** Input must be square and symmetric (validated to [tol]; default 1e-9
    relative).  [max_sweeps] defaults to 60.  Raises [Invalid_argument]
    on non-square or asymmetric input. *)

val reconstruct : t -> Mat.t
(** [V·diag(λ)·Vᵀ]. *)
