type t = { values : Vec.t; vectors : Mat.t; sweeps : int }

let check_symmetric tol a =
  let n, n' = Mat.dims a in
  if n <> n' then invalid_arg "Eigen.decompose: not square";
  let scale = Float.max 1. (Mat.max_abs a) in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if Float.abs (Mat.get a i j -. Mat.get a j i) > tol *. scale then
        invalid_arg "Eigen.decompose: not symmetric"
    done
  done

(* Classical Jacobi: repeatedly zero the largest off-diagonal entry with a
   Givens rotation, accumulating the rotations into V. *)
let decompose ?(max_sweeps = 60) ?(tol = 1e-9) a =
  check_symmetric tol a;
  let n, _ = Mat.dims a in
  let m = Mat.copy a in
  let v = Mat.identity n in
  let off_diagonal_norm () =
    let acc = ref 0. in
    for i = 0 to n - 1 do
      for j = i + 1 to n - 1 do
        acc := !acc +. (2. *. Mat.get m i j *. Mat.get m i j)
      done
    done;
    sqrt !acc
  in
  let rotate p q =
    let apq = Mat.get m p q in
    if Float.abs apq > 1e-300 then begin
      let app = Mat.get m p p and aqq = Mat.get m q q in
      let theta = (aqq -. app) /. (2. *. apq) in
      let t =
        Float.copy_sign 1. theta /. (Float.abs theta +. sqrt (1. +. (theta *. theta)))
      in
      let c = 1. /. sqrt (1. +. (t *. t)) in
      let s = c *. t in
      for k = 0 to n - 1 do
        let mkp = Mat.get m k p and mkq = Mat.get m k q in
        Mat.set m k p ((c *. mkp) -. (s *. mkq));
        Mat.set m k q ((s *. mkp) +. (c *. mkq))
      done;
      for k = 0 to n - 1 do
        let mpk = Mat.get m p k and mqk = Mat.get m q k in
        Mat.set m p k ((c *. mpk) -. (s *. mqk));
        Mat.set m q k ((s *. mpk) +. (c *. mqk))
      done;
      for k = 0 to n - 1 do
        let vkp = Mat.get v k p and vkq = Mat.get v k q in
        Mat.set v k p ((c *. vkp) -. (s *. vkq));
        Mat.set v k q ((s *. vkp) +. (c *. vkq))
      done
    end
  in
  let scale = Float.max 1e-300 (Mat.max_abs a) in
  let sweeps = ref 0 in
  while off_diagonal_norm () > 1e-12 *. scale && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate p q
      done
    done
  done;
  (* sort descending, permuting the eigenvector columns alongside *)
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare (Mat.get m j j) (Mat.get m i i)) order;
  let values = Array.map (fun i -> Mat.get m i i) order in
  let vectors = Mat.init n n (fun r c -> Mat.get v r order.(c)) in
  { values; vectors; sweeps = !sweeps }

let reconstruct { values; vectors; _ } =
  let n, _ = Mat.dims vectors in
  Mat.init n n (fun i j ->
      let acc = ref 0. in
      for k = 0 to n - 1 do
        acc := !acc +. (Mat.get vectors i k *. values.(k) *. Mat.get vectors j k)
      done;
      !acc)
