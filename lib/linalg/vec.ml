type t = float array

let create n = Array.make n 0.

let init = Array.init

let copy = Array.copy

let dim = Array.length

let of_list = Array.of_list

let to_list = Array.to_list

let fill v x = Array.fill v 0 (Array.length v) x

let check_same_dim name x y =
  if Array.length x <> Array.length y then invalid_arg (name ^ ": dimension mismatch")

let add x y =
  check_same_dim "Vec.add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_same_dim "Vec.sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun xi -> a *. xi) x

let neg x = Array.map (fun xi -> -.xi) x

let blit src dst =
  check_same_dim "Vec.blit" src dst;
  Array.blit src 0 dst 0 (Array.length src)

let sub_into ~dst x y =
  check_same_dim "Vec.sub_into" x y;
  check_same_dim "Vec.sub_into" x dst;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set dst i (Array.unsafe_get x i -. Array.unsafe_get y i)
  done

let add_into ~dst x y =
  check_same_dim "Vec.add_into" x y;
  check_same_dim "Vec.add_into" x dst;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set dst i (Array.unsafe_get x i +. Array.unsafe_get y i)
  done

let neg_into ~dst x =
  check_same_dim "Vec.neg_into" x dst;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set dst i (-.Array.unsafe_get x i)
  done

(* [a] crosses a call boundary, so this boxes its scalar (2 minor words per
   call); strict zero-allocation loops inline the multiply instead. *)
let scale_into ~dst a x =
  check_same_dim "Vec.scale_into" x dst;
  for i = 0 to Array.length x - 1 do
    Array.unsafe_set dst i (a *. Array.unsafe_get x i)
  done

let add_inplace x y =
  check_same_dim "Vec.add_inplace" x y;
  for i = 0 to Array.length x - 1 do
    x.(i) <- x.(i) +. y.(i)
  done

let axpy a x y =
  check_same_dim "Vec.axpy" x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let axpy_into ~dst a x y =
  check_same_dim "Vec.axpy_into" x y;
  check_same_dim "Vec.axpy_into" x dst;
  for i = 0 to Array.length x - 1 do
    dst.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot x y =
  check_same_dim "Vec.dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let norm_sq x = dot x x

let norm x = sqrt (norm_sq x)

let dist x y =
  check_same_dim "Vec.dist" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    let d = x.(i) -. y.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt !acc

let map = Array.map

let mapi = Array.mapi

let max_abs x = Array.fold_left (fun acc xi -> Float.max acc (Float.abs xi)) 0. x

let approx_equal ?(tol = 1e-9) x y =
  Array.length x = Array.length y
  &&
  let rec loop i =
    i >= Array.length x || (Float.abs (x.(i) -. y.(i)) <= tol && loop (i + 1))
  in
  loop 0

let pp ppf v =
  Format.fprintf ppf "[@[%a@]]"
    (Format.pp_print_array
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
       (fun ppf x -> Format.fprintf ppf "%g" x))
    v
