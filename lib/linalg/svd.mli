(** Singular value decomposition by one-sided Jacobi rotations.

    This is the substrate the paper's pseudoinverse baseline (KDL-style
    [J⁻¹-SVD]) stands on.  One-sided Jacobi orthogonalizes the columns of
    the input by plane rotations; it is simple, unconditionally stable for
    the small ranks IK needs ([J] is 3×N or 6×N), and — the property the
    paper leans on — inherently *serial* across sweeps, which is why the
    pseudoinverse method resists hardware parallelization. *)

type t = {
  u : Mat.t;  (** m×r, orthonormal columns for non-zero singular values *)
  sigma : Vec.t;  (** r singular values, descending, r = min(m,n) *)
  v : Mat.t;  (** n×r, orthonormal columns *)
  sweeps : int;  (** Jacobi sweeps until convergence (cost accounting) *)
}

val decompose : ?max_sweeps:int -> ?tol:float -> Mat.t -> t
(** [decompose a] computes the thin SVD [a = u·diag(sigma)·vᵀ].
    [max_sweeps] defaults to 60, [tol] to 1e-12 (relative column-pair
    orthogonality).  Works for any shape: if the input is wide, the
    transpose is decomposed and the factors swapped. *)

val reconstruct : t -> Mat.t
(** [u·diag(sigma)·vᵀ]; for testing. *)

val rank : ?rcond:float -> t -> int
(** Number of singular values above [rcond·σ_max] (default [rcond] =
    1e-12). *)

val apply_pinv : ?rcond:float -> t -> Vec.t -> Vec.t
(** [apply_pinv svd e] is [A⁺·e = V·Σ⁺·Uᵀ·e] without materializing [A⁺].
    Singular values below [rcond·σ_max] are treated as zero. *)

val apply_damped : lambda:float -> t -> Vec.t -> Vec.t
(** Damped least squares through the factors: [V·diag(σᵢ/(σᵢ²+λ²))·Uᵀ·e]. *)

val pinv : ?rcond:float -> Mat.t -> Mat.t
(** Materialized Moore–Penrose pseudoinverse (n×m). *)
