(** Dense row-major m×n float matrices.

    Jacobians are [3×N] (or [6×N]) matrices of this type.  Storage is a
    single flat array; [get]/[set] do the index arithmetic, and hot kernels
    (e.g. {!mul}, {!mul_vec}) run over the flat buffer directly. *)

type t = { rows : int; cols : int; data : float array }

val create : int -> int -> t
(** Zero matrix. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val of_arrays : float array array -> t
(** Rows must be non-empty and of equal length. *)

val to_arrays : t -> float array array

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val dims : t -> int * int

val row : t -> int -> Vec.t
(** Fresh copy of a row. *)

val col : t -> int -> Vec.t
(** Fresh copy of a column. *)

val set_col : t -> int -> Vec.t -> unit

val transpose : t -> t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t

val mul : t -> t -> t
(** Matrix product; dimensions must agree. *)

val mul_vec : t -> Vec.t -> Vec.t
(** [mul_vec a x] is [a·x]. *)

val mul_transpose_vec : t -> Vec.t -> Vec.t
(** [mul_transpose_vec a x] is [aᵀ·x] without materializing [aᵀ]. *)

val gram : t -> t
(** [gram a] is [a·aᵀ] (size rows×rows); the [JJᵀ] of Eq. 8. *)

val gemv_into : dst:Vec.t -> t -> Vec.t -> unit
(** [gemv_into ~dst a x] writes [a·x] into [dst] (length [rows]); the
    zero-allocation twin of {!mul_vec}, bit-identical results. *)

val gemv_t_into : dst:Vec.t -> t -> Vec.t -> unit
(** [gemv_t_into ~dst a x] writes [aᵀ·x] into [dst] (length [cols]);
    bit-identical to {!mul_transpose_vec}. *)

val gram_into : dst:t -> t -> unit
(** [gram_into ~dst a] writes [a·aᵀ] into [dst] (rows×rows); bit-identical
    to {!gram}. *)

val frobenius : t -> float

val max_abs : t -> float

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
