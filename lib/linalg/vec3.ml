type t = { x : float; y : float; z : float }

let zero = { x = 0.; y = 0.; z = 0. }

let make x y z = { x; y; z }

let ex = make 1. 0. 0.
let ey = make 0. 1. 0.
let ez = make 0. 0. 1.

let add a b = { x = a.x +. b.x; y = a.y +. b.y; z = a.z +. b.z }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y; z = a.z -. b.z }

let scale s a = { x = s *. a.x; y = s *. a.y; z = s *. a.z }

let neg a = { x = -.a.x; y = -.a.y; z = -.a.z }

let dot a b = (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z)

let cross a b =
  {
    x = (a.y *. b.z) -. (a.z *. b.y);
    y = (a.z *. b.x) -. (a.x *. b.z);
    z = (a.x *. b.y) -. (a.y *. b.x);
  }

let norm_sq a = dot a a

let norm a = sqrt (norm_sq a)

let dist a b = norm (sub a b)

let normalize a =
  let n = norm a in
  if n = 0. then invalid_arg "Vec3.normalize: zero vector";
  scale (1. /. n) a

let lerp a b t = add a (scale t (sub b a))

let of_vec v =
  if Array.length v <> 3 then invalid_arg "Vec3.of_vec: expected length 3";
  { x = v.(0); y = v.(1); z = v.(2) }

let to_vec a = [| a.x; a.y; a.z |]

let approx_equal ?(tol = 1e-9) a b =
  Float.abs (a.x -. b.x) <= tol
  && Float.abs (a.y -. b.y) <= tol
  && Float.abs (a.z -. b.z) <= tol

let pp ppf a = Format.fprintf ppf "(%g, %g, %g)" a.x a.y a.z
