(** 3×3 rotation matrices.

    Used for transform decomposition, orientation tasks (6-DOF extension),
    and tests.  Row-major length-9 arrays. *)

type t = float array
(** Length-9 row-major array. *)

val identity : unit -> t

val get : t -> int -> int -> float

val mul : t -> t -> t

val transpose : t -> t

val apply : t -> Vec3.t -> Vec3.t

val rot_x : float -> t
val rot_y : float -> t
val rot_z : float -> t

val rpy : roll:float -> pitch:float -> yaw:float -> t
(** Roll-pitch-yaw (XYZ extrinsic / ZYX intrinsic):
    [Rz(yaw)·Ry(pitch)·Rx(roll)] — the convention pose targets are usually
    specified in. *)

val to_rpy : t -> float * float * float
(** Inverse of {!rpy} with pitch in [\[−π/2, π/2\]]; at gimbal lock
    ([|pitch| = π/2]) roll is set to 0 and yaw absorbs the remaining
    rotation. *)

val of_axis_angle : Vec3.t -> float -> t
(** Rodrigues' formula; the axis is normalized internally.  Raises
    [Invalid_argument] on a zero axis. *)

val to_axis_angle : t -> Vec3.t * float
(** Inverse of {!of_axis_angle}; angle in [\[0, π\]].  For the identity the
    axis is arbitrary (unit x). *)

val angle_between : t -> t -> float
(** Geodesic distance on SO(3): the rotation angle of [aᵀ·b]. *)

val is_orthonormal : ?tol:float -> t -> bool

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
