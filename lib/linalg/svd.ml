type t = { u : Mat.t; sigma : Vec.t; v : Mat.t; sweeps : int }

(* One-sided Jacobi on a tall (m >= n) matrix held as n column vectors of
   length m.  Each rotation orthogonalizes one column pair and accumulates
   the same rotation into v. *)
let jacobi_tall ~max_sweeps ~tol ~m ~n (cols : float array array) =
  let v = Array.init n (fun j -> Array.init n (fun i -> if i = j then 1. else 0.)) in
  let rotate p q c s =
    let cp = cols.(p) and cq = cols.(q) in
    for i = 0 to m - 1 do
      let xp = cp.(i) and xq = cq.(i) in
      cp.(i) <- (c *. xp) -. (s *. xq);
      cq.(i) <- (s *. xp) +. (c *. xq)
    done;
    let vp = v.(p) and vq = v.(q) in
    for i = 0 to n - 1 do
      let xp = vp.(i) and xq = vq.(i) in
      vp.(i) <- (c *. xp) -. (s *. xq);
      vq.(i) <- (s *. xp) +. (c *. xq)
    done
  in
  let col_dot a b =
    let acc = ref 0. in
    for i = 0 to m - 1 do
      acc := !acc +. (a.(i) *. b.(i))
    done;
    !acc
  in
  let sweeps = ref 0 in
  let converged = ref false in
  while (not !converged) && !sweeps < max_sweeps do
    incr sweeps;
    converged := true;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        let alpha = col_dot cols.(p) cols.(p) in
        let beta = col_dot cols.(q) cols.(q) in
        let gamma = col_dot cols.(p) cols.(q) in
        if Float.abs gamma > tol *. sqrt (alpha *. beta) && gamma <> 0. then begin
          converged := false;
          let zeta = (beta -. alpha) /. (2. *. gamma) in
          let t =
            Float.copy_sign 1. zeta /. (Float.abs zeta +. sqrt (1. +. (zeta *. zeta)))
          in
          let c = 1. /. sqrt (1. +. (t *. t)) in
          let s = c *. t in
          rotate p q c s
        end
      done
    done
  done;
  (v, !sweeps)

let decompose_tall ~max_sweeps ~tol (a : Mat.t) =
  let m, n = Mat.dims a in
  assert (m >= n);
  let cols = Array.init n (fun j -> Mat.col a j) in
  let v_cols, sweeps = jacobi_tall ~max_sweeps ~tol ~m ~n cols in
  let sigma = Array.init n (fun j -> Vec.norm cols.(j)) in
  (* Sort singular values descending, permuting u/v columns alongside. *)
  let order = Array.init n Fun.id in
  Array.sort (fun i j -> Float.compare sigma.(j) sigma.(i)) order;
  let u = Mat.create m n in
  let v = Mat.create n n in
  Array.iteri
    (fun dst src ->
      let s = sigma.(src) in
      if s > 0. then
        for i = 0 to m - 1 do
          Mat.set u i dst (cols.(src).(i) /. s)
        done;
      for i = 0 to n - 1 do
        Mat.set v i dst v_cols.(src).(i)
      done)
    order;
  let sigma_sorted = Array.map (fun i -> sigma.(i)) order in
  { u; sigma = sigma_sorted; v; sweeps }

let decompose ?(max_sweeps = 60) ?(tol = 1e-12) a =
  let m, n = Mat.dims a in
  if m >= n then decompose_tall ~max_sweeps ~tol a
  else begin
    let t = decompose_tall ~max_sweeps ~tol (Mat.transpose a) in
    { t with u = t.v; v = t.u }
  end

let reconstruct { u; sigma; v; _ } =
  let m, r = Mat.dims u in
  let n, _ = Mat.dims v in
  Mat.init m n (fun i j ->
      let acc = ref 0. in
      for k = 0 to r - 1 do
        acc := !acc +. (Mat.get u i k *. sigma.(k) *. Mat.get v j k)
      done;
      !acc)

let rank ?(rcond = 1e-12) t =
  if Array.length t.sigma = 0 then 0
  else begin
    let cutoff = rcond *. t.sigma.(0) in
    Array.fold_left (fun acc s -> if s > cutoff then acc + 1 else acc) 0 t.sigma
  end

(* y = V · diag(g σ) · Uᵀ · e for a per-singular-value gain function. *)
let apply_gains t gains e =
  let ut_e = Mat.mul_transpose_vec t.u e in
  let r = Array.length t.sigma in
  let scaled = Array.init r (fun k -> gains.(k) *. ut_e.(k)) in
  Mat.mul_vec t.v scaled

let apply_pinv ?(rcond = 1e-12) t e =
  let smax = if Array.length t.sigma = 0 then 0. else t.sigma.(0) in
  let cutoff = rcond *. smax in
  let gains = Array.map (fun s -> if s > cutoff then 1. /. s else 0.) t.sigma in
  apply_gains t gains e

let apply_damped ~lambda t e =
  let l2 = lambda *. lambda in
  let gains = Array.map (fun s -> s /. ((s *. s) +. l2)) t.sigma in
  apply_gains t gains e

let pinv ?rcond a =
  let t = decompose a in
  let m, _ = Mat.dims a in
  let n = (Mat.dims t.v |> fst) in
  let result = Mat.create n m in
  (* Column j of A⁺ is A⁺·e_j. *)
  for j = 0 to m - 1 do
    let e = Array.init m (fun i -> if i = j then 1. else 0.) in
    let cj = apply_pinv ?rcond t e in
    Mat.set_col result j cj
  done;
  result
