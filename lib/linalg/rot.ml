type t = float array

let identity () = [| 1.; 0.; 0.; 0.; 1.; 0.; 0.; 0.; 1. |]

let get r i j = r.((i * 3) + j)

let mul a b =
  let c = Array.make 9 0. in
  for i = 0 to 2 do
    for j = 0 to 2 do
      let acc = ref 0. in
      for k = 0 to 2 do
        acc := !acc +. (a.((i * 3) + k) *. b.((k * 3) + j))
      done;
      c.((i * 3) + j) <- !acc
    done
  done;
  c

let transpose a =
  [| a.(0); a.(3); a.(6); a.(1); a.(4); a.(7); a.(2); a.(5); a.(8) |]

let apply r (v : Vec3.t) =
  Vec3.make
    ((r.(0) *. v.x) +. (r.(1) *. v.y) +. (r.(2) *. v.z))
    ((r.(3) *. v.x) +. (r.(4) *. v.y) +. (r.(5) *. v.z))
    ((r.(6) *. v.x) +. (r.(7) *. v.y) +. (r.(8) *. v.z))

let rot_x a =
  let c = cos a and s = sin a in
  [| 1.; 0.; 0.; 0.; c; -.s; 0.; s; c |]

let rot_y a =
  let c = cos a and s = sin a in
  [| c; 0.; s; 0.; 1.; 0.; -.s; 0.; c |]

let rot_z a =
  let c = cos a and s = sin a in
  [| c; -.s; 0.; s; c; 0.; 0.; 0.; 1. |]

let rpy ~roll ~pitch ~yaw = mul (rot_z yaw) (mul (rot_y pitch) (rot_x roll))

let to_rpy r =
  (* r20 = −sin(pitch) *)
  let sp = -.r.(6) in
  if Float.abs sp > 1. -. 1e-12 then begin
    (* gimbal lock: pitch = ±π/2; put all the remaining rotation in yaw *)
    let pitch = Float.copy_sign (Float.pi /. 2.) sp in
    let yaw = Float.atan2 (-.r.(1)) r.(4) in
    (0., pitch, yaw)
  end
  else begin
    let pitch = Float.asin sp in
    let roll = Float.atan2 r.(7) r.(8) in
    let yaw = Float.atan2 r.(3) r.(0) in
    (roll, pitch, yaw)
  end

(* Rodrigues: R = I + sin(t)·K + (1−cos t)·K², K the skew matrix of the
   unit axis. *)
let of_axis_angle axis angle =
  let u = Vec3.normalize axis in
  let c = cos angle and s = sin angle in
  let v = 1. -. c in
  let { Vec3.x; y; z } = u in
  [|
    c +. (x *. x *. v);
    (x *. y *. v) -. (z *. s);
    (x *. z *. v) +. (y *. s);
    (y *. x *. v) +. (z *. s);
    c +. (y *. y *. v);
    (y *. z *. v) -. (x *. s);
    (z *. x *. v) -. (y *. s);
    (z *. y *. v) +. (x *. s);
    c +. (z *. z *. v);
  |]

let clamp lo hi x = Float.min hi (Float.max lo x)

let to_axis_angle r =
  let trace = r.(0) +. r.(4) +. r.(8) in
  let angle = Float.acos (clamp (-1.) 1. ((trace -. 1.) /. 2.)) in
  if angle < 1e-12 then (Vec3.ex, 0.)
  else if Float.abs (angle -. Float.pi) < 1e-6 then begin
    (* Near π the antisymmetric part vanishes; recover the axis from the
       diagonal of (R + I)/2 = uuᵀ, signs from the off-diagonals. *)
    let xx = Float.max 0. ((r.(0) +. 1.) /. 2.) in
    let yy = Float.max 0. ((r.(4) +. 1.) /. 2.) in
    let zz = Float.max 0. ((r.(8) +. 1.) /. 2.) in
    let x = sqrt xx in
    let y = Float.copy_sign (sqrt yy) (r.(1) +. r.(3)) in
    let y = if x < 1e-9 then sqrt yy else y in
    let z =
      if x >= 1e-9 then Float.copy_sign (sqrt zz) (r.(2) +. r.(6))
      else if y >= 1e-9 then Float.copy_sign (sqrt zz) (r.(5) +. r.(7))
      else sqrt zz
    in
    (Vec3.normalize (Vec3.make x y z), angle)
  end
  else begin
    let s = 2. *. sin angle in
    let axis =
      Vec3.make ((r.(7) -. r.(5)) /. s) ((r.(2) -. r.(6)) /. s) ((r.(3) -. r.(1)) /. s)
    in
    (Vec3.normalize axis, angle)
  end

let angle_between a b =
  let _, angle = to_axis_angle (mul (transpose a) b) in
  angle

let is_orthonormal ?(tol = 1e-9) r =
  let t = transpose r in
  let p = mul t r in
  let id = identity () in
  let ok = ref true in
  Array.iteri (fun k x -> if Float.abs (x -. id.(k)) > tol then ok := false) p;
  !ok

let approx_equal ?(tol = 1e-9) a b =
  let rec loop k = k >= 9 || (Float.abs (a.(k) -. b.(k)) <= tol && loop (k + 1)) in
  loop 0

let pp ppf r =
  Format.fprintf ppf "@[<v>[%g, %g, %g]@,[%g, %g, %g]@,[%g, %g, %g]@]" r.(0) r.(1)
    r.(2) r.(3) r.(4) r.(5) r.(6) r.(7) r.(8)
