type t = { w : float; x : float; y : float; z : float }

let identity = { w = 1.; x = 0.; y = 0.; z = 0. }

let make w x y z = { w; x; y; z }

let norm q = sqrt ((q.w *. q.w) +. (q.x *. q.x) +. (q.y *. q.y) +. (q.z *. q.z))

let normalize q =
  let n = norm q in
  if n = 0. then invalid_arg "Quat.normalize: zero quaternion";
  { w = q.w /. n; x = q.x /. n; y = q.y /. n; z = q.z /. n }

let conjugate q = { q with x = -.q.x; y = -.q.y; z = -.q.z }

let mul a b =
  {
    w = (a.w *. b.w) -. (a.x *. b.x) -. (a.y *. b.y) -. (a.z *. b.z);
    x = (a.w *. b.x) +. (a.x *. b.w) +. (a.y *. b.z) -. (a.z *. b.y);
    y = (a.w *. b.y) -. (a.x *. b.z) +. (a.y *. b.w) +. (a.z *. b.x);
    z = (a.w *. b.z) +. (a.x *. b.y) -. (a.y *. b.x) +. (a.z *. b.w);
  }

let of_axis_angle axis angle =
  let u = Vec3.normalize axis in
  let h = angle /. 2. in
  let s = sin h in
  { w = cos h; x = u.x *. s; y = u.y *. s; z = u.z *. s }

let clamp lo hi v = Float.min hi (Float.max lo v)

let to_axis_angle q =
  let q = if q.w < 0. then { w = -.q.w; x = -.q.x; y = -.q.y; z = -.q.z } else q in
  let s = sqrt ((q.x *. q.x) +. (q.y *. q.y) +. (q.z *. q.z)) in
  if s < 1e-12 then (Vec3.ex, 0.)
  else begin
    let angle = 2. *. Float.atan2 s q.w in
    (Vec3.make (q.x /. s) (q.y /. s) (q.z /. s), angle)
  end

(* Shepperd's method: pick the largest of w², x², y², z² from the trace
   pattern to avoid catastrophic cancellation. *)
let of_rot r =
  let m00 = r.(0) and m01 = r.(1) and m02 = r.(2) in
  let m10 = r.(3) and m11 = r.(4) and m12 = r.(5) in
  let m20 = r.(6) and m21 = r.(7) and m22 = r.(8) in
  let trace = m00 +. m11 +. m22 in
  let q =
    if trace > 0. then begin
      let s = sqrt (trace +. 1.) *. 2. in
      make (0.25 *. s) ((m21 -. m12) /. s) ((m02 -. m20) /. s) ((m10 -. m01) /. s)
    end
    else if m00 > m11 && m00 > m22 then begin
      let s = sqrt (1. +. m00 -. m11 -. m22) *. 2. in
      make ((m21 -. m12) /. s) (0.25 *. s) ((m01 +. m10) /. s) ((m02 +. m20) /. s)
    end
    else if m11 > m22 then begin
      let s = sqrt (1. +. m11 -. m00 -. m22) *. 2. in
      make ((m02 -. m20) /. s) ((m01 +. m10) /. s) (0.25 *. s) ((m12 +. m21) /. s)
    end
    else begin
      let s = sqrt (1. +. m22 -. m00 -. m11) *. 2. in
      make ((m10 -. m01) /. s) ((m02 +. m20) /. s) ((m12 +. m21) /. s) (0.25 *. s)
    end
  in
  normalize q

let to_rot q =
  let { w; x; y; z } = normalize q in
  [|
    1. -. (2. *. ((y *. y) +. (z *. z)));
    2. *. ((x *. y) -. (w *. z));
    2. *. ((x *. z) +. (w *. y));
    2. *. ((x *. y) +. (w *. z));
    1. -. (2. *. ((x *. x) +. (z *. z)));
    2. *. ((y *. z) -. (w *. x));
    2. *. ((x *. z) -. (w *. y));
    2. *. ((y *. z) +. (w *. x));
    1. -. (2. *. ((x *. x) +. (y *. y)));
  |]

let rotate q v = Rot.apply (to_rot q) v

let slerp a b t =
  let a = normalize a and b = normalize b in
  let d = (a.w *. b.w) +. (a.x *. b.x) +. (a.y *. b.y) +. (a.z *. b.z) in
  let b, d =
    if d < 0. then ({ w = -.b.w; x = -.b.x; y = -.b.y; z = -.b.z }, -.d) else (b, d)
  in
  if d > 0.9995 then
    normalize
      {
        w = a.w +. (t *. (b.w -. a.w));
        x = a.x +. (t *. (b.x -. a.x));
        y = a.y +. (t *. (b.y -. a.y));
        z = a.z +. (t *. (b.z -. a.z));
      }
  else begin
    let theta = Float.acos (clamp (-1.) 1. d) in
    let s = sin theta in
    let wa = sin ((1. -. t) *. theta) /. s in
    let wb = sin (t *. theta) /. s in
    {
      w = (wa *. a.w) +. (wb *. b.w);
      x = (wa *. a.x) +. (wb *. b.x);
      y = (wa *. a.y) +. (wb *. b.y);
      z = (wa *. a.z) +. (wb *. b.z);
    }
  end

let approx_equal ?(tol = 1e-9) a b =
  let eq a b =
    Float.abs (a.w -. b.w) <= tol
    && Float.abs (a.x -. b.x) <= tol
    && Float.abs (a.y -. b.y) <= tol
    && Float.abs (a.z -. b.z) <= tol
  in
  eq a b || eq a { w = -.b.w; x = -.b.x; y = -.b.y; z = -.b.z }

let pp ppf q = Format.fprintf ppf "(%g; %g, %g, %g)" q.w q.x q.y q.z
