(** Unit quaternions for orientation interpolation.

    Used by the trajectory example and the 6-DOF pose-task extension to
    interpolate end-effector orientations without gimbal issues. *)

type t = { w : float; x : float; y : float; z : float }

val identity : t

val make : float -> float -> float -> float -> t

val norm : t -> float

val normalize : t -> t
(** Raises [Invalid_argument] on the zero quaternion. *)

val conjugate : t -> t

val mul : t -> t -> t

val of_axis_angle : Vec3.t -> float -> t

val to_axis_angle : t -> Vec3.t * float
(** Angle in [\[0, π\]]; unit-x axis for the identity. *)

val of_rot : Rot.t -> t
(** Shepperd's method; input must be a rotation matrix. *)

val to_rot : t -> Rot.t

val rotate : t -> Vec3.t -> Vec3.t

val slerp : t -> t -> float -> t
(** Spherical linear interpolation along the shorter arc. *)

val approx_equal : ?tol:float -> t -> t -> bool
(** Equality up to sign (q and −q are the same rotation). *)

val pp : Format.formatter -> t -> unit
