exception Not_positive_definite

let factorize a =
  let n, n' = Mat.dims a in
  if n <> n' then invalid_arg "Cholesky.factorize: not square";
  let l = Mat.create n n in
  for j = 0 to n - 1 do
    let sum = ref (Mat.get a j j) in
    for k = 0 to j - 1 do
      let ljk = Mat.get l j k in
      sum := !sum -. (ljk *. ljk)
    done;
    if !sum <= 0. then raise Not_positive_definite;
    let ljj = sqrt !sum in
    Mat.set l j j ljj;
    for i = j + 1 to n - 1 do
      let sum = ref (Mat.get a i j) in
      for k = 0 to j - 1 do
        sum := !sum -. (Mat.get l i k *. Mat.get l j k)
      done;
      Mat.set l i j (!sum /. ljj)
    done
  done;
  l

let solve_factored l b =
  let n, _ = Mat.dims l in
  if Array.length b <> n then invalid_arg "Cholesky.solve_factored: dimension mismatch";
  (* forward: L·y = b *)
  let y = Array.make n 0. in
  for i = 0 to n - 1 do
    let sum = ref b.(i) in
    for k = 0 to i - 1 do
      sum := !sum -. (Mat.get l i k *. y.(k))
    done;
    y.(i) <- !sum /. Mat.get l i i
  done;
  (* backward: Lᵀ·x = y *)
  let x = Array.make n 0. in
  for i = n - 1 downto 0 do
    let sum = ref y.(i) in
    for k = i + 1 to n - 1 do
      sum := !sum -. (Mat.get l k i *. x.(k))
    done;
    x.(i) <- !sum /. Mat.get l i i
  done;
  x

let solve a b = solve_factored (factorize a) b

(* Zero-allocation variant for the solver workspaces: factorization and
   both substitutions run over caller-provided buffers with the exact
   arithmetic of [factorize]/[solve_factored], so results are
   bit-identical.  All float state stays in local (unboxed) accumulators
   and float arrays. *)
let solve_into ~l ~y ~dst a b =
  (* field reads, not Mat.dims, which would allocate its result tuple *)
  let n = a.Mat.rows in
  if a.Mat.cols <> n then invalid_arg "Cholesky.solve_into: not square";
  if l.Mat.rows <> n || l.Mat.cols <> n then
    invalid_arg "Cholesky.solve_into: bad l";
  if Array.length b <> n || Array.length y <> n || Array.length dst <> n then
    invalid_arg "Cholesky.solve_into: dimension mismatch";
  let ad = a.Mat.data and ld = l.Mat.data in
  Array.fill ld 0 (n * n) 0.;
  for j = 0 to n - 1 do
    let sum = ref ad.((j * n) + j) in
    for k = 0 to j - 1 do
      let ljk = ld.((j * n) + k) in
      sum := !sum -. (ljk *. ljk)
    done;
    if !sum <= 0. then raise Not_positive_definite;
    let ljj = sqrt !sum in
    ld.((j * n) + j) <- ljj;
    for i = j + 1 to n - 1 do
      let sum = ref ad.((i * n) + j) in
      for k = 0 to j - 1 do
        sum := !sum -. (ld.((i * n) + k) *. ld.((j * n) + k))
      done;
      ld.((i * n) + j) <- !sum /. ljj
    done
  done;
  (* forward: L·y = b *)
  for i = 0 to n - 1 do
    let sum = ref b.(i) in
    for k = 0 to i - 1 do
      sum := !sum -. (ld.((i * n) + k) *. y.(k))
    done;
    y.(i) <- !sum /. ld.((i * n) + i)
  done;
  (* backward: Lᵀ·x = y *)
  for i = n - 1 downto 0 do
    let sum = ref y.(i) in
    for k = i + 1 to n - 1 do
      sum := !sum -. (ld.((k * n) + i) *. dst.(k))
    done;
    dst.(i) <- !sum /. ld.((i * n) + i)
  done

let inverse a =
  let n, _ = Mat.dims a in
  let l = factorize a in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Array.init n (fun i -> if i = j then 1. else 0.) in
    Mat.set_col inv j (solve_factored l e)
  done;
  inv
