(** 4×4 homogeneous transformation matrices.

    These are the [ⁱ⁻¹Tᵢ] of the paper (Eq. 10): the unit of work of the
    accelerator's Forward Kinematics Unit.  Row-major flat storage; the
    bottom row is kept explicitly so a [Mat4.t] is exactly what the FKU's
    4×4 multiplier consumes. *)

type t = float array
(** Length-16 row-major array.  Treated as immutable unless the function is
    suffixed [_into]. *)

val identity : unit -> t

val copy : t -> t

val blit : t -> t -> unit
(** [blit src dst] copies all 16 entries; no allocation. *)

val identity_into : t -> unit

val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit

val mul : t -> t -> t
(** [mul a b] composes transforms ([a] then applies to [b]-frame points). *)

val mul_into : dst:t -> t -> t -> unit
(** [mul_into ~dst a b] writes [a·b] into [dst].  [dst] must not alias [a]
    or [b]. *)

val mul_affine_into : dst:t -> t -> t -> unit
(** Like {!mul_into} but assumes both operands are affine (bottom row
    [0 0 0 1]) and forces [dst]'s bottom row to exactly that.  This is the
    FK hot-loop kernel: 36 multiplies instead of 64.  Results are identical
    to {!mul_into} up to the sign of zero terms (≤ 1 ulp). *)

val is_affine : t -> bool
(** Bottom row is exactly [0 0 0 1]; the precondition of
    {!mul_affine_into}. *)

val transform_point : t -> Vec3.t -> Vec3.t
(** Applies rotation and translation. *)

val transform_dir : t -> Vec3.t -> Vec3.t
(** Applies rotation only. *)

val position : t -> Vec3.t
(** Translation column ([.P] in the paper's notation). *)

val x_axis : t -> Vec3.t
val y_axis : t -> Vec3.t
val z_axis : t -> Vec3.t
(** Rotation columns; [z_axis] is the joint axis used by the geometric
    Jacobian. *)

val translation : Vec3.t -> t

val rot_x : float -> t
val rot_y : float -> t
val rot_z : float -> t

val of_rot_trans : Rot.t -> Vec3.t -> t

val rotation : t -> Rot.t
(** Upper-left 3×3 block. *)

val inverse_rigid : t -> t
(** Inverse assuming the transform is rigid (orthonormal rotation):
    [R⁻¹ = Rᵀ], [p⁻¹ = −Rᵀp]. *)

val approx_equal : ?tol:float -> t -> t -> bool

val is_rigid : ?tol:float -> t -> bool
(** Checks the rotation block is orthonormal, the bottom row is
    [0 0 0 1]. *)

val pp : Format.formatter -> t -> unit
