(** 3-dimensional vectors: end-effector positions and joint axes.

    Unboxed record representation — positions flow through the innermost
    solver loops, so this type avoids the bounds checks and indirection of
    a general {!Vec.t}. *)

type t = { x : float; y : float; z : float }

val zero : t
val make : float -> float -> float -> t
val ex : t
val ey : t
val ez : t

val add : t -> t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val neg : t -> t

val dot : t -> t -> float
val cross : t -> t -> t

val norm : t -> float
val norm_sq : t -> float
val dist : t -> t -> float

val normalize : t -> t
(** Unit vector in the same direction.  Raises [Invalid_argument] on the
    zero vector. *)

val lerp : t -> t -> float -> t
(** [lerp a b t] is [a + t*(b-a)]. *)

val of_vec : Vec.t -> t
(** From a length-3 {!Vec.t}. *)

val to_vec : t -> Vec.t

val approx_equal : ?tol:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
