(* Tests for the crash-safe session journal: encode/decode round-trips,
   typed recovery from torn tails, bit-flipped checksums and bad magic,
   and the open_-truncates-then-extends contract.  The QCheck property
   cuts a valid journal at every possible byte offset and checks that
   recovery always yields the longest valid record prefix plus a typed
   defect — never a crash, never a phantom record. *)

open Dadu_service
module J = Journal

let qcheck = QCheck_alcotest.to_alcotest

(* ---- helpers ---- *)

let with_tmp f =
  let path = Filename.temp_file "dadu_journal" ".wal" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let write_records path records =
  Sys.remove path;
  match J.open_ path with
  | Error e -> Alcotest.fail (Format.asprintf "open_: %a" J.pp_load_error e)
  | Ok (t, replayed, defect) ->
    Alcotest.(check int) "fresh journal is empty" 0 (List.length replayed);
    Alcotest.(check bool) "fresh journal has no defect" true (defect = None);
    List.iter (J.append t) records;
    Alcotest.(check int) "appended count" (List.length records) (J.appended t);
    J.close t

let read_file path = In_channel.with_open_bin path In_channel.input_all

let write_file path bytes =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc bytes)

let sample_records =
  [
    J.Opened { session = "s1"; robot = "eval:12"; chain_fp = 0x1234; dof = 12 };
    J.Committed
      {
        session = "s1";
        ordinal = 0;
        theta = Some [| 0.1; -0.25; 1e-300; Float.pi |];
        reply = "{\"reply\":\"solved\",\"id\":1,\"ordinal\":0}";
      };
    J.Committed
      { session = "s1"; ordinal = 1; theta = None; reply = "{\"id\":2}" };
    J.Opened { session = "s2"; robot = "arm7"; chain_fp = -77; dof = 7 };
    J.Committed
      {
        session = "s2";
        ordinal = 0;
        theta = Some (Array.init 7 (fun i -> float_of_int i /. 7.));
        reply = String.make 300 'x';
      };
    J.Closed { session = "s1" };
  ]

let check_records name expect got =
  Alcotest.(check bool)
    name true
    (List.length expect = List.length got && List.for_all2 ( = ) expect got)

(* ---- round-trip ---- *)

let test_roundtrip () =
  with_tmp @@ fun path ->
  write_records path sample_records;
  match J.load path with
  | Error e -> Alcotest.fail (Format.asprintf "load: %a" J.pp_load_error e)
  | Ok (records, defect) ->
    Alcotest.(check bool) "no defect" true (defect = None);
    check_records "records round-trip" sample_records records

(* ---- torn tail ---- *)

let test_truncated_tail () =
  with_tmp @@ fun path ->
  write_records path sample_records;
  let bytes = read_file path in
  (* cut the last 5 bytes: the final record's checksum is torn *)
  write_file path (String.sub bytes 0 (String.length bytes - 5));
  match J.load path with
  | Error e -> Alcotest.fail (Format.asprintf "load: %a" J.pp_load_error e)
  | Ok (records, defect) ->
    Alcotest.(check bool) "typed Truncated" true (defect = Some J.Truncated);
    check_records "valid prefix recovered"
      (List.filteri (fun i _ -> i < List.length sample_records - 1)
         sample_records)
      records

let test_checksum_flip () =
  with_tmp @@ fun path ->
  write_records path sample_records;
  let bytes = Bytes.of_string (read_file path) in
  (* flip one bit in the last record's payload *)
  let off = Bytes.length bytes - 12 in
  Bytes.set bytes off (Char.chr (Char.code (Bytes.get bytes off) lxor 0x10));
  write_file path (Bytes.to_string bytes);
  match J.load path with
  | Error e -> Alcotest.fail (Format.asprintf "load: %a" J.pp_load_error e)
  | Ok (records, defect) ->
    Alcotest.(check bool) "typed Checksum_mismatch" true
      (defect = Some J.Checksum_mismatch);
    Alcotest.(check int) "prefix stops before the flipped record"
      (List.length sample_records - 1)
      (List.length records)

let test_bad_magic () =
  with_tmp @@ fun path ->
  write_records path sample_records;
  let bytes = Bytes.of_string (read_file path) in
  Bytes.set bytes 0 'X';
  write_file path (Bytes.to_string bytes);
  match J.load path with
  | Error J.Bad_magic -> ()
  | Error e ->
    Alcotest.fail (Format.asprintf "expected Bad_magic, got %a" J.pp_load_error e)
  | Ok _ -> Alcotest.fail "expected Bad_magic, got Ok"

(* ---- open_ truncates the tail and extends cleanly ---- *)

let test_open_truncates_and_extends () =
  with_tmp @@ fun path ->
  write_records path sample_records;
  let bytes = read_file path in
  write_file path (String.sub bytes 0 (String.length bytes - 3));
  (match J.open_ path with
  | Error e -> Alcotest.fail (Format.asprintf "open_: %a" J.pp_load_error e)
  | Ok (t, records, defect) ->
    Alcotest.(check bool) "defect surfaced" true (defect = Some J.Truncated);
    Alcotest.(check int) "prefix replayed"
      (List.length sample_records - 1)
      (List.length records);
    (* the torn tail was cut off: a fresh append must leave a journal
       that loads clean end to end *)
    J.append t (J.Closed { session = "s2" });
    J.close t);
  match J.load path with
  | Error e -> Alcotest.fail (Format.asprintf "reload: %a" J.pp_load_error e)
  | Ok (records, defect) ->
    Alcotest.(check bool) "clean after repair + append" true (defect = None);
    check_records "repaired journal holds prefix + new record"
      (List.filteri (fun i _ -> i < List.length sample_records - 1)
         sample_records
      @ [ J.Closed { session = "s2" } ])
      records

(* ---- property: any byte-level cut recovers a typed valid prefix ---- *)

let record_gen =
  let open QCheck.Gen in
  let session = oneofl [ "a"; "bb"; "sess-3" ] in
  let str = string_size ~gen:printable (int_range 0 40) in
  oneof
    [
      (let* s = session and* r = oneofl [ "eval:12"; "arm7"; "scara" ]
       and* fp = int and* dof = int_range 0 64 in
       return (J.Opened { session = s; robot = r; chain_fp = fp; dof }));
      (let* s = session and* ordinal = int_range 0 1000 and* reply = str
       and* theta =
         oneof
           [
             return None;
             (let* n = int_range 0 12 in
              let* xs = list_repeat n (float_range (-4.) 4.) in
              return (Some (Array.of_list xs)));
           ]
       in
       return (J.Committed { session = s; ordinal; theta; reply }));
      (let* s = session in
       return (J.Closed { session = s }));
    ]

let arbitrary_cut =
  QCheck.Test.make ~name:"every byte-level cut yields a typed valid prefix"
    ~count:200
    QCheck.(
      make
        Gen.(
          let* records = list_size (int_range 1 8) record_gen in
          let* cut_frac = float_range 0. 1. in
          return (records, cut_frac)))
    (fun (records, cut_frac) ->
      with_tmp @@ fun path ->
      write_records path records;
      let bytes = read_file path in
      let cut =
        int_of_float (cut_frac *. float_of_int (String.length bytes))
      in
      write_file path (String.sub bytes 0 cut);
      match J.load path with
      | Error (J.Io _ | J.Bad_magic | J.Unsupported_version _ | J.Truncated) ->
        (* cuts inside the header are file-level defects *)
        cut < 12
      | Error (J.Checksum_mismatch | J.Malformed _) -> false
      | Ok (prefix, defect) ->
        let n = List.length prefix in
        n <= List.length records
        && List.for_all2 ( = ) prefix
             (List.filteri (fun i _ -> i < n) records)
        (* an uncut journal must decode fully and cleanly; a cut one may
           end exactly on a record boundary (defect None, short prefix)
           or inside a record (typed defect) — phantom records never *)
        && (cut < String.length bytes
           || (defect = None && n = List.length records)))

let () =
  Alcotest.run "dadu_journal"
    [
      ( "roundtrip",
        [ Alcotest.test_case "encode -> load is identical" `Quick test_roundtrip ]
      );
      ( "recovery",
        [
          Alcotest.test_case "torn tail" `Quick test_truncated_tail;
          Alcotest.test_case "bit-flipped checksum" `Quick test_checksum_flip;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "open_ truncates and extends" `Quick
            test_open_truncates_and_extends;
          qcheck arbitrary_cut;
        ] );
    ]
