Snapshot-prepare: freeze the wave's serial state into an immutable
snapshot and score all seed candidates through the wave-fused SoA
kernel.  Replies must be byte-identical to the per-request serial
prepare whatever the pool size — every invocation here is
deterministic, so reply files compare exactly.

Build a posture bank and a mixed-deadline workload (one request carries
deadline=0, so it expires at prepare time in every mode):

  $ dadu posture-build -r eval:12 -k 64 --seed 42 -o eval12.plib
  Posture library: eval-12dof, 64 postures (12 DOF), cell 1.500 m -> eval12.plib
  $ cat > snap.problems <<'EOF'
  > robot eval:12
  > target 6.0,2.0,1.0
  > random 5 seed=9
  > target 6.0,2.0,1.0 deadline=0
  > target 6.0,2.0,1.0
  > EOF

The serial-prepare reference run, 5 seed candidates per request:

  $ dadu serve-batch snap.problems -j 1 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --seed-library eval12.plib --seed-candidates 5 \
  >   --replies serial.replies > serial.out; echo "exit $?"
  exit 1
  $ grep Pool serial.out
  Pool     : 1 domain, chunk 4

--snapshot-prepare commits the same bits, and says so in the header:

  $ dadu serve-batch snap.problems -j 1 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --seed-library eval12.plib --seed-candidates 5 \
  >   --snapshot-prepare --replies snap1.replies > snap1.out; echo "exit $?"
  exit 1
  $ grep Pool snap1.out
  Pool     : 1 domain, chunk 4, snapshot-prepare
  $ cmp serial.replies snap1.replies && echo identical
  identical

Pool sizes 2 and 4 sweep the same candidate planes in chunks but commit
argmins serially in ordinal order — the reply bytes cannot move:

  $ dadu serve-batch snap.problems -j 2 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --seed-library eval12.plib --seed-candidates 5 \
  >   --snapshot-prepare --replies snap2.replies > /dev/null; echo "exit $?"
  exit 1
  $ cmp serial.replies snap2.replies && echo identical
  identical
  $ dadu serve-batch snap.problems -j 4 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --seed-library eval12.plib --seed-candidates 5 \
  >   --snapshot-prepare --replies snap4.replies > /dev/null; echo "exit $?"
  exit 1
  $ cmp serial.replies snap4.replies && echo identical
  identical

Snapshot-prepare stacks with lockstep mega-batch work — still the same
bytes:

  $ dadu serve-batch snap.problems -j 2 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --seed-library eval12.plib --seed-candidates 5 \
  >   --snapshot-prepare --lockstep --replies snapls.replies > /dev/null; echo "exit $?"
  exit 1
  $ cmp serial.replies snapls.replies && echo identical
  identical

The deadline=0 request expires inside the frozen snapshot (the deadline
clock is read in ordinal order before any pool work), so it is tagged
identically in both modes:

  $ grep -c '"deadline_exceeded":true' serial.replies
  1
  $ grep -c '"deadline_exceeded":true' snap1.replies
  1

The metrics table breaks the batch into wave phases; all three phases
account time and the serial fraction is reported:

  $ grep -E "phase (prepare|work|commit)|serial fraction" snap1.out | \
  >   sed -E 's/[0-9]+\.[0-9]+ ms/_ ms/; s/[0-9]+\.[0-9]+%/_%/' | tr -s ' '
  | phase prepare | _ ms |
  | phase work | _ ms |
  | phase commit | _ ms |
  | serial fraction | _% |
