Crash safety end to end: a trajectory session interrupted by SIGKILL
resumes from the session journal with byte-identical replies.  The
trajectory is split into two legs; the reference runs both against one
uninterrupted (journal-less) server, the crash run kills the server
with -9 between the legs and restarts it from the journal.  Every
solve reply — ordinals, warm-start provenance, theta bytes — must
compare equal with cmp.

  $ SOCKDIR=$(mktemp -d /tmp/dadu-crash-XXXXXX)
  $ trap 'rm -rf "$SOCKDIR"' EXIT

  $ cat > legA.script <<'EOF'
  > hello acme
  > open t1 eval:30
  > waypoint t1 4.0,1.00,2.0
  > waypoint t1 4.0,1.02,2.0
  > waypoint t1 4.0,1.04,2.0
  > EOF
  $ cat > legB.script <<'EOF'
  > hello acme
  > open t1 eval:30
  > waypoint t1 4.0,1.06,2.0
  > waypoint t1 4.0,1.08,2.0
  > waypoint t1 4.0,1.10,2.0
  > close t1
  > EOF

Reference: both legs against one server that never dies:

  $ dadu serve --listen "unix:$SOCKDIR/ref.sock" -j 2 --chunk 8 \
  >   > /dev/null 2>&1 &
  $ REF=$!
  $ dadu client --connect "unix:$SOCKDIR/ref.sock" --dump refA.dump legA.script
  {"reply":"hello","tenant":"acme"}
  {"reply":"opened","id":1,"session":"t1","dof":30,"resumed":false,"waypoints":0}
  solve replies: 3
  $ dadu client --connect "unix:$SOCKDIR/ref.sock" --dump refB.dump legB.script
  {"reply":"hello","tenant":"acme"}
  {"reply":"opened","id":1,"session":"t1","dof":30,"resumed":true,"waypoints":3}
  {"reply":"closed","id":5,"session":"t1","waypoints":6}
  solve replies: 3
  $ kill -TERM $REF && wait $REF

Crash run: same legs, but the server is SIGKILLed after leg A — no
drain, no flush beyond the journal's own write-ahead appends — and a
fresh process restarts from the journal before leg B:

  $ dadu serve --listen "unix:$SOCKDIR/crash.sock" --journal "$SOCKDIR/t.wal" \
  >   -j 2 --chunk 8 > /dev/null 2>&1 &
  $ SRV=$!
  $ dadu client --connect "unix:$SOCKDIR/crash.sock" --dump crashA.dump \
  >   legA.script
  {"reply":"hello","tenant":"acme"}
  {"reply":"opened","id":1,"session":"t1","dof":30,"resumed":false,"waypoints":0}
  solve replies: 3
  $ kill -9 $SRV
  $ wait $SRV
  Killed
  [137]
  $ dadu serve --listen "unix:$SOCKDIR/crash.sock" --journal "$SOCKDIR/t.wal" \
  >   -j 2 --chunk 8 > /dev/null 2> restart.log &
  $ SRV2=$!
  $ dadu client --connect "unix:$SOCKDIR/crash.sock" --dump crashB.dump \
  >   legB.script
  {"reply":"hello","tenant":"acme"}
  {"reply":"opened","id":1,"session":"t1","dof":30,"resumed":true,"waypoints":3}
  {"reply":"closed","id":5,"session":"t1","waypoints":6}
  solve replies: 3

The journal replayed clean (no defect notice), and the resumed run is
byte-identical to the uninterrupted one — including the first
post-restart waypoint warm-starting from the journal-restored seed:

  $ grep -c "journal" restart.log
  0
  [1]
  $ cmp crashA.dump refA.dump && cmp crashB.dump refB.dump && echo identical
  identical
  $ grep -c '"session_hit":true' crashB.dump
  3

A torn tail — the crash window where the process dies mid-append —
is recovered, not fatal: garbage after the last good record yields a
defect notice naming the valid-prefix replay, and the server still
serves.  The prefix includes leg B's close, so re-opening the name
starts a fresh trajectory:

  $ kill -TERM $SRV2 && wait $SRV2
  $ printf 'torn!' >> "$SOCKDIR/t.wal"
  $ dadu serve --listen "unix:$SOCKDIR/crash.sock" --journal "$SOCKDIR/t.wal" \
  >   -j 2 --chunk 8 > /dev/null 2> torn.log &
  $ SRV3=$!
  $ cat > reopen.script <<'EOF'
  > hello acme
  > open t1 eval:30
  > close t1
  > EOF
  $ dadu client --connect "unix:$SOCKDIR/crash.sock" reopen.script
  {"reply":"hello","tenant":"acme"}
  {"reply":"opened","id":1,"session":"t1","dof":30,"resumed":false,"waypoints":0}
  {"reply":"closed","id":2,"session":"t1","waypoints":0}
  solve replies: 0
  $ grep -c "replayed the valid prefix" torn.log
  1
  $ kill -TERM $SRV3 && wait $SRV3
