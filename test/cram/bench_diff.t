The bench_diff regression gate's exit-code contract (documented in
tools/bench_diff.ml): 0 for ok/GOOD/new, 1 for regressions or missing
baseline entries, 2 for usage and input errors.

  $ cat > base.json <<'EOF'
  > {"schema":1,"benchmarks":[
  >   {"name":"kernel-a","dof":12,"ns_per_iter":100.0,"words_per_iter":10.0}]}
  > EOF

Within the noise band, exit 0:

  $ cat > same.json <<'EOF'
  > {"schema":1,"benchmarks":[
  >   {"name":"kernel-a","dof":12,"ns_per_iter":105.0,"words_per_iter":10.0}]}
  > EOF
  $ ../../tools/bench_diff.exe base.json same.json
  ok   kernel-a                 ns_per_iter          100.00 ->       105.00  (+5.0%)
  ok   kernel-a                 words_per_iter        10.00 ->        10.00  (+0.0%)
  no regressions (threshold 15%)

An improvement beyond the threshold is reported GOOD and still exits 0 —
the gate nags to refresh the stale baseline, it does not fail the build:

  $ cat > faster.json <<'EOF'
  > {"schema":1,"benchmarks":[
  >   {"name":"kernel-a","dof":12,"ns_per_iter":50.0,"words_per_iter":10.0}]}
  > EOF
  $ ../../tools/bench_diff.exe base.json faster.json
  GOOD kernel-a                 ns_per_iter          100.00 ->        50.00  (-50.0%)
  ok   kernel-a                 words_per_iter        10.00 ->        10.00  (+0.0%)
  1 improvement(s) beyond 15% — refresh the baseline (make bench-json) to lock them in
  no regressions (threshold 15%)

A benchmark only in NEW is ungated (it gains a gate once the baseline is
refreshed) and exits 0:

  $ cat > extra.json <<'EOF'
  > {"schema":1,"benchmarks":[
  >   {"name":"kernel-a","dof":12,"ns_per_iter":100.0,"words_per_iter":10.0},
  >   {"name":"kernel-b","dof":30,"ns_per_iter":7.0,"words_per_iter":0.0}]}
  > EOF
  $ ../../tools/bench_diff.exe base.json extra.json
  ok   kernel-a                 ns_per_iter          100.00 ->       100.00  (+0.0%)
  ok   kernel-a                 words_per_iter        10.00 ->        10.00  (+0.0%)
  new  kernel-b                 not in base.json (ungated)
  no regressions (threshold 15%)

A regression past the threshold exits 1:

  $ cat > slower.json <<'EOF'
  > {"schema":1,"benchmarks":[
  >   {"name":"kernel-a","dof":12,"ns_per_iter":300.0,"words_per_iter":10.0}]}
  > EOF
  $ ../../tools/bench_diff.exe base.json slower.json
  FAIL kernel-a                 ns_per_iter          100.00 ->       300.00  (+200.0%, limit 115.00)
  ok   kernel-a                 words_per_iter        10.00 ->        10.00  (+0.0%)
  1 regression(s) beyond 15% threshold
  [1]

--words-only ignores the wall-clock regression but still gates the
allocation count (the cross-machine CI mode):

  $ ../../tools/bench_diff.exe --words-only base.json slower.json
  ok   kernel-a                 words_per_iter        10.00 ->        10.00  (+0.0%)
  no regressions (threshold 15%)
  $ cat > leaky.json <<'EOF'
  > {"schema":1,"benchmarks":[
  >   {"name":"kernel-a","dof":12,"ns_per_iter":100.0,"words_per_iter":40.0}]}
  > EOF
  $ ../../tools/bench_diff.exe --words-only base.json leaky.json
  FAIL kernel-a                 words_per_iter        10.00 ->        40.00  (+300.0%, limit 19.50)
  1 regression(s) beyond 15% threshold
  [1]

A baseline benchmark missing from NEW is a failure, not a silent skip:

  $ cat > renamed.json <<'EOF'
  > {"schema":1,"benchmarks":[
  >   {"name":"kernel-a-v2","dof":12,"ns_per_iter":100.0,"words_per_iter":10.0}]}
  > EOF
  $ ../../tools/bench_diff.exe base.json renamed.json
  FAIL kernel-a                 missing from renamed.json
  new  kernel-a-v2              not in base.json (ungated)
  1 regression(s) beyond 15% threshold
  [1]

Usage and input errors exit 2:

  $ ../../tools/bench_diff.exe base.json
  usage: bench_diff [--words-only] [--threshold PCT] OLD.json NEW.json
  [2]
  $ printf 'not json\n' > broken.json
  $ ../../tools/bench_diff.exe base.json broken.json
  broken.json: expected null at offset 0
  [2]
  $ printf '{"schema":2,"benchmarks":[]}\n' > schema2.json
  $ ../../tools/bench_diff.exe base.json schema2.json
  schema2.json: unsupported or missing schema (want 1)
  [2]
