The dadu CLI end to end.  Every invocation here is deterministic (fixed
seeds, fixed robots), so the outputs are exact.

List the built-in robots:

  $ dadu robots
  arm6       arm-6dof: 6 DOF, reach 1.42 m
  arm7       arm-7dof: 7 DOF, reach 1.02 m
  scara      scara: 4 DOF, reach 0.64 m
  snake:30   snake-30dof: 30 DOF, reach 1.00 m
  eval:12    eval-12dof: 12 DOF, reach 12.00 m
  eval:100   eval-100dof: 100 DOF, reach 100.00 m
  planar:6   planar-6dof: 6 DOF, reach 6.00 m

A robot description round-trips through describe and --robot-file:

  $ dadu describe -r scara > scara.robot
  $ dadu describe -f scara.robot
  chain scara
  joint shoulder revolute a=0.25 limits=-2.2689280275926285,2.2689280275926285
  joint elbow revolute a=0.20999999999999999 alpha=3.1415926535897931 limits=-2.5307274153917776,2.5307274153917776
  joint quill prismatic limits=0,0.17999999999999999
  joint wrist revolute limits=-3.1415926535897931,3.1415926535897931

Unknown robots and malformed files fail with a clear message:

  $ dadu solve -r hexapod
  dadu: option '-r': unknown robot "hexapod" (expected arm6 | arm7 | scara |
        snake:<dof> | eval:<dof> | planar:<dof>)
  Usage: dadu solve [OPTION]…
  Try 'dadu solve --help' or 'dadu --help' for more information.
  [124]

  $ printf 'joint j floppy a=1\n' > bad.robot
  $ dadu solve -f bad.robot
  dadu: bad.robot: line 1: unknown joint kind "floppy" (revolute | prismatic)
  [124]

Solving against a robot file (exit code 0 = converged):

  $ cat > demo.robot <<'EOF'
  > chain demo-arm
  > base translate 0 0 0.2
  > joint shoulder revolute a=0.5 alpha=90deg limits=-170deg,170deg
  > joint elbow revolute a=0.4 limits=-150deg,150deg
  > joint wrist revolute a=0.25 alpha=-90deg limits=-170deg,170deg
  > tool translate 0 0 0.05
  > EOF
  $ dadu solve -f demo.robot -m quick-ik --seed 7 > solve.out; echo "exit $?"
  exit 0
  $ grep -c "Result: converged" solve.out
  1

The accelerator model reports schedules and utilization:

  $ dadu accel -r eval:12 --ssus 16 -s 64 --seed 3 | grep -o "4 schedules/iter"
  4 schedules/iter

Motion planning around an obstacle (deterministic under a fixed seed):

  $ dadu plan -r planar:4 -o 1.55,0.35,0,0.4 -t 1.55,-0.9,0 --seed 2025
  Planned 52 waypoints (10.20 rad), shortcut to 3 (6.96 rad); 337 nodes, 1961 collision checks

The bench harness renders Table 1 deterministically:

  $ ../../bench/main.exe table1 | grep -c "JT-Speculation"
  1

Batched serving: repeated targets in a later wave warm-start from the seed
cache, and the metrics table reports the full counter breakdown.  Latency
rows are host-dependent, so only the deterministic counters are matched:

  $ cat > demo.problems <<'EOF'
  > robot eval:12
  > target 6.0,2.0,1.0
  > random 6 seed=9
  > target 6.0,2.0,1.0   # revisit: warm-started from the cache
  > EOF
  $ dadu serve-batch demo.problems -j 2 --chunk 4 > serve.out; echo "exit $?"
  exit 0
  $ grep -E "requests|converged|cache hits" serve.out | tr -s ' '
  | requests | 8 |
  | converged | 8 |
  | cache hits | 1 (12.5%) |
  | retry converged | 0 |
  $ grep -c "latency p95" serve.out
  1

An unreachable target exhausts the whole solver chain and the batch exits
non-zero, while the reachable problems still solve:

  $ cat > hard.problems <<'EOF'
  > robot eval:12
  > target 6.0,2.0,1.0
  > target 40,40,40
  > EOF
  $ dadu serve-batch hard.problems --max-iters 300 > hard.out; echo "exit $?"
  exit 1
  $ grep -E "converged|failed|fallback used" hard.out | tr -s ' '
  | converged | 1 |
  | failed | 1 |
  | fallback used | 2 |
  | retry converged | 0 |

A malformed problem file is a diagnostic on stderr and exit 3 — never a
backtrace:

  $ printf 'target 1,2,3\n' > bad.problems
  $ dadu serve-batch bad.problems
  dadu: bad.problems: line 1: target before any robot declaration
  [3]

A zero batch budget expires every request at prepare time: each one is
served by the cheapest tier alone (no fallbacks) and tagged, but still
produces a result — here all of them converge, so the batch exits 0:

  $ dadu serve-batch demo.problems --budget 0 > expired.out; echo "exit $?"
  exit 0
  $ grep -E "requests|converged|fallback used|deadline exceeded" expired.out | tr -s ' '
  | requests | 8 |
  | converged | 8 |
  | fallback used | 0 |
  | deadline exceeded | 8 |
  | retry converged | 0 |

Mixed deadlines: a deadline=0 on one line expires only that request;
--deadline fills the rest, and a generous default changes nothing:

  $ cat > mixed.problems <<'EOF'
  > robot eval:12
  > target 6.0,2.0,1.0
  > target 6.0,2.0,1.0 deadline=0
  > random 3 seed=5
  > EOF
  $ dadu serve-batch mixed.problems --deadline 3600 > mixed.out; echo "exit $?"
  exit 0
  $ grep -E "requests|converged|deadline exceeded" mixed.out | tr -s ' '
  | requests | 5 |
  | converged | 5 |
  | deadline exceeded | 1 |
  | retry converged | 0 |

A malformed deadline is a parse error, not a silent drop:

  $ printf 'robot eval:12\ntarget 6,2,1 deadline=-1\n' > baddl.problems
  $ dadu serve-batch baddl.problems
  dadu: baddl.problems: line 2: deadline must be a non-negative number (got "-1")
  [3]

--trace writes one JSON line per span: every request contributes prepare,
solve and commit spans plus one fallback-tier span per solver attempt, and
each scheduler wave adds one phase:prepare/phase:work/phase:commit span
under the sentinel request -1 — 8 requests (one wave) converging on the
first attempt means exactly 32 + 3 = 35 spans:

  $ dadu serve-batch demo.problems --trace trace.jsonl | grep Trace
  Trace    : trace.jsonl (35 spans)
  $ wc -l < trace.jsonl
  35
  $ grep -c '"phase":"prepare"' trace.jsonl
  8
  $ grep -c '"phase":"solve"' trace.jsonl
  8
  $ grep -c '"phase":"fallback-tier"' trace.jsonl
  8
  $ grep -c '"phase":"commit"' trace.jsonl
  8
  $ grep -c '"phase":"phase:' trace.jsonl
  3
  $ grep '"phase":"phase:' trace.jsonl | grep -c '"request":-1'
  3
  $ grep -c '"solver":"quick-ik"' trace.jsonl
  16

An unwritable trace path is a diagnostic and exit 3, after the batch ran:

  $ dadu serve-batch demo.problems --trace /nonexistent/dir/t.jsonl > /dev/null
  dadu: cannot write trace: /nonexistent/dir/t.jsonl: No such file or directory
  [3]

Lockstep mega-batch serving: --lockstep solves each wave's Quick-IK head
tier as one lockstep sweep instead of per-request solves.  Replies — full
θ vectors printed to 17 significant digits — are byte-identical to the
per-request path whatever the pool size, and a deadline=0 lane expires at
prepare time and is tagged the same way in both modes:

  $ cat > lock.problems <<'EOF'
  > robot eval:30
  > target 10.0,4.0,2.0
  > random 4 seed=11
  > target 10.0,4.0,2.0 deadline=0
  > robot eval:12
  > target 6.0,2.0,1.0
  > random 3 seed=7
  > EOF
  $ dadu serve-batch lock.problems -j 1 --chunk 4 --replies serial.replies > serial.out; echo "exit $?"
  exit 0
  $ grep Pool serial.out
  Pool     : 1 domain, chunk 4
  $ dadu serve-batch lock.problems -j 1 --chunk 4 --lockstep --replies lockstep.replies > lockstep.out; echo "exit $?"
  exit 0
  $ grep Pool lockstep.out
  Pool     : 1 domain, chunk 4, lockstep
  $ cmp serial.replies lockstep.replies && echo identical
  identical

Every request of the batch rode a lockstep lane (the expired one still
has a Quick-IK head tier, so it stays eligible):

  $ grep -E "requests|lockstep lanes" lockstep.out | tr -s ' '
  | requests | 10 |
  | lockstep lanes | 10 |

A 4-domain pool sweeps lanes in parallel but commits the same bits:

  $ dadu serve-batch lock.problems -j 4 --chunk 4 --lockstep --replies lockstep4.replies > /dev/null; echo "exit $?"
  exit 0
  $ cmp serial.replies lockstep4.replies && echo identical
  identical

The deadline=0 request is the only tagged lane, and every request left a
reply line:

  $ grep -c '"deadline_exceeded":true' lockstep.replies
  1
  $ wc -l < lockstep.replies
  10
