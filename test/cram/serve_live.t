Persistent streaming server, exercised end to end over Unix sockets.
Each scenario runs its own server on a private socket under /tmp (cram
sandbox paths can exceed the 108-byte sun_path limit).  Fixed robots
and fixed scripts make every reply deterministic, so control output is
matched exactly and solve dumps are byte-compared.

  $ SOCKDIR=$(mktemp -d /tmp/dadu-live-XXXXXX)
  $ trap 'rm -rf "$SOCKDIR"' EXIT

Happy path: open a 30-DOF trajectory session, stream five waypoints
2 cm apart, close.  The first waypoint solves cold; the other four
warm-start from their predecessor's solution through the session seed
slot (session_hit), never touching the shared seed cache:

  $ cat > traj.script <<'EOF'
  > hello acme
  > open s1 eval:30
  > waypoint s1 4.0,1.00,2.0
  > waypoint s1 4.0,1.02,2.0
  > waypoint s1 4.0,1.04,2.0
  > waypoint s1 4.0,1.06,2.0
  > waypoint s1 4.0,1.08,2.0
  > close s1
  > EOF
  $ dadu serve --listen "unix:$SOCKDIR/happy.sock" -j 2 --chunk 8 \
  >   > happy.tenants 2> happy.log &
  $ HAPPY=$!
  $ dadu client --connect "unix:$SOCKDIR/happy.sock" --dump pool2.dump traj.script
  {"reply":"hello","tenant":"acme"}
  {"reply":"opened","id":1,"session":"s1","dof":30,"resumed":false,"waypoints":0}
  {"reply":"closed","id":7,"session":"s1","waypoints":5}
  solve replies: 5
  $ grep -c '"status":"converged"' pool2.dump
  5
  $ grep -c '"session_hit":true' pool2.dump
  4
  $ grep -c '"cache_hit":true' pool2.dump
  0
  [1]

SIGTERM drains gracefully: exit 0, and the tenant summary the server
prints on the way out accounts for the five session requests:

  $ kill -TERM $HAPPY
  $ wait $HAPPY; echo "server exit $?"
  server exit 0
  $ grep -c "acme" happy.tenants
  1

Replies are byte-identical across pool sizes and execution modes for
the same script: the session seed slot, stable per-session ordinals and
the wave cut make each reply a pure function of session history, not of
scheduling.  pool2.dump (from the -j 2 server above) is the reference:

  $ run_mode () {
  >   name=$1; shift
  >   dadu serve --listen "unix:$SOCKDIR/$name.sock" "$@" > /dev/null 2>&1 &
  >   pid=$!
  >   dadu client --connect "unix:$SOCKDIR/$name.sock" --dump "$name.dump" \
  >     traj.script > /dev/null
  >   kill -TERM $pid && wait $pid
  > }
  $ run_mode pool1 -j 1 --chunk 8
  $ run_mode pool4 -j 4 --chunk 8
  $ run_mode lockstep1 -j 1 --chunk 8 --lockstep --snapshot-prepare
  $ run_mode lockstep4 -j 4 --chunk 8 --lockstep --snapshot-prepare
  $ cmp pool2.dump pool1.dump && cmp pool2.dump pool4.dump && echo identical
  identical
  $ cmp pool2.dump lockstep1.dump && cmp pool2.dump lockstep4.dump && echo identical
  identical

Malformed frames get a typed error reply, not a disconnect: an
unparseable payload, an unknown op and a waypoint for a session that
was never opened each produce an error, and the connection still
answers the ping that follows:

  $ cat > malformed.script <<'EOF'
  > hello acme
  > raw {"op":nonsense}
  > raw {"op":"warp"}
  > waypoint ghost 1,2,3
  > ping
  > EOF
  $ dadu serve --listen "unix:$SOCKDIR/mal.sock" -j 1 > /dev/null 2>&1 &
  $ MAL=$!
  $ dadu client --connect "unix:$SOCKDIR/mal.sock" malformed.script
  {"reply":"hello","tenant":"acme"}
  {"reply":"error","message":"malformed payload: expected null at offset 6"}
  {"reply":"error","message":"unknown op \"warp\""}
  {"reply":"error","id":3,"message":"unknown session \"ghost\""}
  {"reply":"pong"}
  solve replies: 0
  $ kill -TERM $MAL && wait $MAL

A full queue sheds load with typed overloaded replies instead of
stalling or disconnecting: with --queue 0 every solve is shed, the
shed replies carry a retry_after_ms back-off hint, the per-tenant
counters record the sheds, no request reaches a solver, and the client
reports the degraded run with exit status 5:

  $ cat > flood.script <<'EOF'
  > hello burst
  > robot eval:12
  > solve 1.0,1.0,1.0
  > solve 1.0,1.0,1.1
  > stats
  > EOF
  $ dadu serve --listen "unix:$SOCKDIR/flood.sock" --queue 0 -j 1 \
  >   > /dev/null 2>&1 &
  $ FLOOD=$!
  $ dadu client --connect "unix:$SOCKDIR/flood.sock" --dump flood.dump \
  >   flood.script
  {"reply":"hello","tenant":"burst"}
  {"reply":"stats","tenant":"burst","requests":0,"converged":0,"failed":0,"rejected":0,"faulted":0,"cache_hits":0,"cache_misses":0,"session_requests":0,"session_warm":0,"overloaded":2,"timeouts":0,"disconnects":0,"journal_appends":0,"journal_replays":0,"retry_after_sheds":0,"busy":0}
  solve replies: 2
  [5]
  $ cat flood.dump
  {"reply":"overloaded","id":1,"retry_after_ms":50}
  {"reply":"overloaded","id":2,"retry_after_ms":50}
  $ kill -TERM $FLOOD && wait $FLOOD

A session survives its client disconnecting without close: reconnecting
and re-opening the same name resumes it (resumed true, accepted count
carried over), the next waypoint gets the next ordinal and warm-starts
from the solution streamed on the first connection, and re-opening with
a different robot is refused:

  $ dadu serve --listen "unix:$SOCKDIR/resume.sock" -j 2 > /dev/null 2>&1 &
  $ RESUME=$!
  $ cat > legA.script <<'EOF'
  > hello acme
  > open r1 eval:12
  > waypoint r1 2.0,1.00,0.5
  > waypoint r1 2.0,1.05,0.5
  > EOF
  $ dadu client --connect "unix:$SOCKDIR/resume.sock" --dump legA.dump \
  >   legA.script
  {"reply":"hello","tenant":"acme"}
  {"reply":"opened","id":1,"session":"r1","dof":12,"resumed":false,"waypoints":0}
  solve replies: 2
  $ cat > legB.script <<'EOF'
  > hello acme
  > open r1 eval:12
  > waypoint r1 2.0,1.10,0.5
  > open r1 eval:30
  > close r1
  > EOF
  $ dadu client --connect "unix:$SOCKDIR/resume.sock" --dump legB.dump \
  >   legB.script
  {"reply":"hello","tenant":"acme"}
  {"reply":"opened","id":1,"session":"r1","dof":12,"resumed":true,"waypoints":2}
  {"reply":"error","id":3,"message":"session exists with a different robot"}
  {"reply":"closed","id":4,"session":"r1","waypoints":3}
  solve replies: 1
  $ grep -c '"ordinal":2' legB.dump
  1
  $ grep -c '"session_hit":true' legB.dump
  1
  $ kill -TERM $RESUME && wait $RESUME
