Posture libraries and multi-seed speculative starts, end to end.  Every
invocation is deterministic (fixed seeds, fixed robots), so outputs,
reply files and counters are exact.

Build a posture bank for the 12-DOF evaluation chain (cell defaults to
reach/8 = 1.5 m):

  $ dadu posture-build -r eval:12 -k 64 --seed 42 -o eval12.plib
  Posture library: eval-12dof, 64 postures (12 DOF), cell 1.500 m -> eval12.plib

A nonsensical build request fails cleanly:

  $ dadu posture-build -r eval:12 -k 0 -o nope.plib
  dadu: Posture_library.build: count must be positive
  [3]

A workload where cold starts struggle: a single Quick-IK tier with a
tight iteration cap.  Cold-start converges 1 of 8; the same batch seeded
from the library converges 4 of 8 (both runs exit 1 because some
requests still fail — the point is the seeded path rescues requests the
cold path cannot):

  $ cat > seeded.problems <<'EOF'
  > robot eval:12
  > target 6.0,2.0,1.0
  > random 6 seed=9
  > target 6.0,2.0,1.0
  > EOF
  $ dadu serve-batch seeded.problems -j 1 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --replies cold.replies > cold.out; echo "exit $?"
  exit 1
  $ dadu serve-batch seeded.problems -j 1 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --seed-library eval12.plib --seed-candidates 4 \
  >   --replies seeded.replies > seeded.out; echo "exit $?"
  exit 1
  $ grep -c '"status":"converged"' cold.replies
  1
  $ grep -c '"status":"converged"' seeded.replies
  4

The metrics table accounts for every request's seed provenance — all 8
were offered a library candidate, and the wins partition the batch:

  $ grep -E "library hits|seed wins" seeded.out | tr -s ' '
  | library hits | 8 |
  | seed wins (theta0) | 0 |
  | seed wins (session) | 0 |
  | seed wins (cache) | 0 |
  | seed wins (library) | 5 |
  | seed wins (zero) | 0 |
  | seed wins (perturbed) | 3 |

Seed selection runs in the scheduler's serial prepare phase, so replies
are byte-identical whatever the pool size and in lockstep mode:

  $ dadu serve-batch seeded.problems -j 4 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --seed-library eval12.plib --seed-candidates 4 \
  >   --replies seeded4.replies > /dev/null; echo "exit $?"
  exit 1
  $ cmp seeded.replies seeded4.replies && echo identical
  identical
  $ dadu serve-batch seeded.problems -j 2 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --lockstep --seed-library eval12.plib \
  >   --seed-candidates 4 --replies seededls.replies > /dev/null; echo "exit $?"
  exit 1
  $ cmp seeded.replies seededls.replies && echo identical
  identical

--seed-candidates 1 with a library configured is the classic path: the
reply file is byte-identical to the unseeded run:

  $ dadu serve-batch seeded.problems -j 1 --chunk 4 --max-iters 40 \
  >   --solvers quick-ik --seed-library eval12.plib --seed-candidates 1 \
  >   --replies classic.replies > /dev/null; echo "exit $?"
  exit 1
  $ cmp cold.replies classic.replies && echo identical
  identical

A damaged library file is rejected with a typed error, never silently
ignored:

  $ head -c 100 eval12.plib > broken.plib
  $ dadu serve-batch seeded.problems --seed-library broken.plib
  dadu: broken.plib: truncated posture library
  [3]

And the candidate count is validated up front:

  $ dadu serve-batch seeded.problems --seed-candidates 0
  dadu: --seed-candidates must be at least 1
  [3]
