(* Tests for the persistent streaming server: wire framing, client
   scripts, listen-address parsing, and live-socket behaviour (sessions,
   typed error replies, load shedding, resume, graceful drain). *)

open Dadu_service
module Json = Dadu_util.Json

let qcheck = QCheck_alcotest.to_alcotest

(* ---- listen addresses ---- *)

let test_listen_of_string () =
  let check name expect got =
    Alcotest.(check bool) name true (got = expect)
  in
  check "unix:" (Ok (Server.Unix_sock "/tmp/x.sock"))
    (Server.listen_of_string "unix:/tmp/x.sock");
  check "bare path" (Ok (Server.Unix_sock "/tmp/y.sock"))
    (Server.listen_of_string "/tmp/y.sock");
  check "tcp" (Ok (Server.Tcp ("localhost", 7001)))
    (Server.listen_of_string "tcp:localhost:7001");
  check "tcp empty host" (Ok (Server.Tcp ("127.0.0.1", 7001)))
    (Server.listen_of_string "tcp::7001");
  Alcotest.(check bool) "tcp bad port errors" true
    (Result.is_error (Server.listen_of_string "tcp:host:notaport"));
  Alcotest.(check bool) "tcp port 0 errors" true
    (Result.is_error (Server.listen_of_string "tcp:host:0"));
  Alcotest.(check bool) "empty errors" true
    (Result.is_error (Server.listen_of_string ""))

(* ---- wire framing ---- *)

let with_frames_file payloads f =
  let path = Filename.temp_file "dadu_frames" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          List.iter (Problem_file.write_frame oc) payloads);
      In_channel.with_open_bin path f)

let test_framing_roundtrip () =
  let payloads = [ "{}"; ""; String.make 4096 'x'; "{\"a\":[1,2,3]}" ] in
  with_frames_file payloads (fun ic ->
      List.iter
        (fun expect ->
          match Problem_file.read_frame ic with
          | Ok (Some got) ->
            Alcotest.(check string) "payload round-trips" expect got
          | Ok None -> Alcotest.fail "unexpected EOF"
          | Error msg -> Alcotest.fail msg)
        payloads;
      Alcotest.(check bool) "clean EOF after the last frame" true
        (Problem_file.read_frame ic = Ok None))

let read_error text =
  let path = Filename.temp_file "dadu_frames" ".bin" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc text);
      In_channel.with_open_bin path Problem_file.read_frame)

let test_framing_errors () =
  (match read_error "nonsense\n{}" with
  | Error msg ->
    Alcotest.(check bool) "malformed length line named" true
      (Astring.String.is_infix ~affix:"malformed frame length" msg)
  | Ok _ -> Alcotest.fail "expected an error");
  (match read_error "10\n{}" with
  | Error "truncated frame payload" -> ()
  | r ->
    Alcotest.fail
      (Printf.sprintf "expected truncated-payload error, got %s"
         (match r with
         | Ok _ -> "Ok"
         | Error m -> m)));
  (match read_error "2\n{}X" with
  | Error "missing frame terminator" -> ()
  | _ -> Alcotest.fail "expected missing-terminator error");
  match read_error (Printf.sprintf "%d\n" (Problem_file.max_frame_bytes + 1)) with
  | Error msg ->
    Alcotest.(check bool) "oversized length rejected before allocation" true
      (Astring.String.is_infix ~affix:"out of range" msg)
  | Ok _ -> Alcotest.fail "expected an out-of-range error"

let test_framing_property =
  QCheck.Test.make ~name:"arbitrary payloads frame and unframe" ~count:50
    QCheck.(string_of_size (Gen.int_range 0 2000))
    (fun payload ->
      let path = Filename.temp_file "dadu_frames" ".bin" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Out_channel.with_open_bin path (fun oc ->
              Problem_file.write_frame oc payload);
          In_channel.with_open_bin path (fun ic ->
              Problem_file.read_frame ic = Ok (Some payload))))

(* ---- client scripts ---- *)

let test_script_parses () =
  let text =
    "# trajectory demo\n\
     hello acme\n\
     open s1 eval:30\n\
     waypoint s1 4.0,1.0,2.0  # first\n\
     close s1\n\
     robot eval:12\n\
     solve 3.0,1.0,1.0 deadline=0.5\n\
     solve 3.0,1.0,1.0 theta0=0.1,0.2\n\
     ping\n\
     stats\n\
     raw {\"op\":\"nonsense\"\n"
  in
  match Problem_file.parse_script text with
  | Error msg -> Alcotest.fail msg
  | Ok ops ->
    Alcotest.(check int) "op count" 9 (Array.length ops);
    (match ops.(0) with
    | Problem_file.Hello { tenant = "acme" } -> ()
    | _ -> Alcotest.fail "expected hello acme");
    (match ops.(2) with
    | Problem_file.Waypoint { session = "s1"; x; _ } ->
      Alcotest.(check (float 0.)) "waypoint x" 4.0 x
    | _ -> Alcotest.fail "expected waypoint");
    (match ops.(4) with
    | Problem_file.Solve { robot = "eval:12"; deadline_s = Some d; theta0 = None; _ }
      ->
      Alcotest.(check (float 0.)) "deadline" 0.5 d
    | _ -> Alcotest.fail "expected solve with deadline");
    (match ops.(5) with
    | Problem_file.Solve { theta0 = Some [ 0.1; 0.2 ]; deadline_s = None; _ } -> ()
    | _ -> Alcotest.fail "expected solve with theta0");
    match ops.(8) with
    | Problem_file.Raw "{\"op\":\"nonsense\"" -> ()
    | _ -> Alcotest.fail "expected raw payload verbatim"

let test_script_errors () =
  (match Problem_file.parse_script "hello a\nsolve 1,2,3\n" with
  | Error msg ->
    Alcotest.(check bool) "solve before robot carries line 2" true
      (Astring.String.is_prefix ~affix:"line 2:" msg)
  | Ok _ -> Alcotest.fail "expected an error");
  match Problem_file.parse_script "waypoint s1 nonsense\n" with
  | Error msg ->
    Alcotest.(check bool) "bad coords carry line 1" true
      (Astring.String.is_prefix ~affix:"line 1:" msg)
  | Ok _ -> Alcotest.fail "expected an error"

(* ---- live server harness ----

   An in-process server on a temp Unix socket, a raw framed client, and
   tiny helpers for JSON replies.  The server runs on its own thread;
   [stop] + join is the graceful-drain path the CI job drives with
   SIGTERM (the handler calls exactly this [Server.stop]). *)

let with_server ?(config = Server.default_config) f =
  let path = Filename.temp_file "dadu_srv" ".sock" in
  Sys.remove path;
  let server = Server.create ~config () in
  let runner =
    Thread.create (fun () -> Server.run server ~listen:(Server.Unix_sock path)) ()
  in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Thread.join runner;
      try Sys.remove path with Sys_error _ -> ())
    (fun () -> f server path)

let connect path =
  let rec go tries =
    let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)
    | exception Unix.Unix_error ((ECONNREFUSED | ENOENT), _, _) when tries < 100
      ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Thread.delay 0.02;
      go (tries + 1)
  in
  go 0

let send oc payload =
  Problem_file.write_frame oc payload;
  flush oc

let recv ic =
  match Problem_file.read_frame ic with
  | Ok (Some payload) ->
    (match Json.of_string payload with
    | Ok json -> (payload, json)
    | Error msg -> Alcotest.fail (Printf.sprintf "bad reply %S: %s" payload msg))
  | Ok None -> Alcotest.fail "unexpected EOF from server"
  | Error msg -> Alcotest.fail msg

let str_member key json =
  Option.bind (Json.member key json) Json.to_str

let bool_member key json =
  match Json.member key json with Some (Json.Bool b) -> Some b | _ -> None

let int_member key json =
  Option.bind (Json.member key json) (fun j ->
      Option.map int_of_float (Json.to_float j))

let reply_kind json =
  match str_member "reply" json with
  | Some k -> k
  | None -> Alcotest.fail "reply without a reply field"

let expect_kind name kind (_, json) =
  Alcotest.(check string) name kind (reply_kind json);
  json

let test_live_session_happy_path () =
  with_server @@ fun _server path ->
  let fd, ic, oc = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  send oc "{\"op\":\"hello\",\"tenant\":\"t1\"}";
  ignore (expect_kind "hello" "hello" (recv ic));
  send oc "{\"op\":\"open\",\"id\":0,\"session\":\"s\",\"robot\":\"eval:30\"}";
  let opened = expect_kind "opened" "opened" (recv ic) in
  Alcotest.(check (option int)) "dof" (Some 30) (int_member "dof" opened);
  Alcotest.(check (option bool)) "fresh" (Some false) (bool_member "resumed" opened);
  for i = 0 to 4 do
    send oc
      (Printf.sprintf
         "{\"op\":\"waypoint\",\"id\":%d,\"session\":\"s\",\"target\":[4.0,%.17g,2.0]}"
         (i + 1)
         (1.0 +. (0.02 *. float_of_int i)))
  done;
  let warm = ref 0 in
  for i = 0 to 4 do
    let solved = expect_kind "solved" "solved" (recv ic) in
    Alcotest.(check (option int))
      (Printf.sprintf "id %d in stream order" (i + 1))
      (Some (i + 1)) (int_member "id" solved);
    Alcotest.(check (option int)) "ordinal" (Some i) (int_member "ordinal" solved);
    Alcotest.(check (option string)) "status" (Some "converged")
      (str_member "status" solved);
    if bool_member "session_hit" solved = Some true then incr warm
  done;
  Alcotest.(check int) "all but the first waypoint warm" 4 !warm;
  send oc "{\"op\":\"close\",\"id\":9,\"session\":\"s\"}";
  let closed = expect_kind "closed" "closed" (recv ic) in
  Alcotest.(check (option int)) "accepted waypoints" (Some 5)
    (int_member "waypoints" closed)

let test_live_malformed_payload_keeps_connection () =
  with_server @@ fun _server path ->
  let fd, ic, oc = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  send oc "{\"op\":\"nonsense\"";
  let err = expect_kind "malformed JSON gets a typed error" "error" (recv ic) in
  Alcotest.(check bool) "message mentions the parse" true
    (match str_member "message" err with
    | Some m -> Astring.String.is_infix ~affix:"malformed payload" m
    | None -> false);
  send oc "{\"op\":\"jump\"}";
  ignore (expect_kind "unknown op gets a typed error" "error" (recv ic));
  send oc "{\"op\":\"waypoint\",\"id\":1,\"session\":\"ghost\",\"target\":[1,1,1]}";
  ignore (expect_kind "unknown session gets a typed error" "error" (recv ic));
  (* the stream stayed synchronized through all three errors *)
  send oc "{\"op\":\"ping\"}";
  ignore (expect_kind "connection still alive" "pong" (recv ic))

let test_live_queue_full_sheds () =
  with_server
    ~config:{ Server.default_config with Server.queue_capacity = 0 }
  @@ fun _server path ->
  let fd, ic, oc = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  send oc
    "{\"op\":\"solve\",\"id\":0,\"robot\":\"eval:12\",\"target\":[3.0,1.0,1.0]}";
  let shed = expect_kind "zero-capacity queue sheds" "overloaded" (recv ic) in
  Alcotest.(check (option int)) "shed reply names the request" (Some 0)
    (int_member "id" shed);
  send oc "{\"op\":\"stats\"}";
  let stats = expect_kind "stats" "stats" (recv ic) in
  Alcotest.(check (option int)) "shed counted per tenant" (Some 1)
    (int_member "overloaded" stats);
  Alcotest.(check (option int)) "nothing dispatched" (Some 0)
    (int_member "requests" stats)

let test_live_session_resumes_across_reconnect () =
  with_server @@ fun _server path ->
  let solve_waypoint ic oc i =
    send oc
      (Printf.sprintf
         "{\"op\":\"waypoint\",\"id\":%d,\"session\":\"r\",\"target\":[4.0,%.17g,2.0]}"
         i
         (1.0 +. (0.02 *. float_of_int i)));
    expect_kind "solved" "solved" (recv ic)
  in
  let fd, ic, oc = connect path in
  send oc "{\"op\":\"open\",\"id\":0,\"session\":\"r\",\"robot\":\"eval:30\"}";
  ignore (expect_kind "opened" "opened" (recv ic));
  ignore (solve_waypoint ic oc 1);
  (* drop the connection without closing the session *)
  (try Unix.close fd with Unix.Unix_error _ -> ());
  let fd2, ic2, oc2 = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
  @@ fun () ->
  send oc2 "{\"op\":\"open\",\"id\":0,\"session\":\"r\",\"robot\":\"eval:30\"}";
  let opened = expect_kind "opened" "opened" (recv ic2) in
  Alcotest.(check (option bool)) "session resumed" (Some true)
    (bool_member "resumed" opened);
  let solved = solve_waypoint ic2 oc2 1 in
  Alcotest.(check (option int)) "ordinal continues the trajectory" (Some 1)
    (int_member "ordinal" solved);
  Alcotest.(check (option bool)) "first waypoint after resume is warm"
    (Some true)
    (bool_member "session_hit" solved);
  send oc2 "{\"op\":\"open\",\"id\":2,\"session\":\"r\",\"robot\":\"eval:12\"}";
  ignore (expect_kind "resume with another robot is refused" "error" (recv ic2))

let test_live_drain_flushes_in_flight () =
  let path = Filename.temp_file "dadu_srv" ".sock" in
  Sys.remove path;
  let server = Server.create () in
  let runner =
    Thread.create (fun () -> Server.run server ~listen:(Server.Unix_sock path)) ()
  in
  let fd, ic, oc = connect path in
  let n = 16 in
  send oc "{\"op\":\"open\",\"id\":0,\"session\":\"d\",\"robot\":\"eval:30\"}";
  ignore (expect_kind "opened" "opened" (recv ic));
  for i = 1 to n do
    send oc
      (Printf.sprintf
         "{\"op\":\"waypoint\",\"id\":%d,\"session\":\"d\",\"target\":[4.0,%.17g,2.0]}"
         i
         (1.0 +. (0.01 *. float_of_int i)))
  done;
  (* stop immediately: every admitted waypoint must still be answered *)
  Server.stop server;
  let solved = ref 0 in
  (try
     while !solved < n do
       ignore (expect_kind "solved" "solved" (recv ic));
       incr solved
     done
   with _ -> ());
  Alcotest.(check int) "drain answered every admitted waypoint" n !solved;
  Alcotest.(check bool) "then EOF" true (Problem_file.read_frame ic = Ok None);
  Thread.join runner;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  (try Sys.remove path with Sys_error _ -> ());
  Alcotest.(check bool) "summary renders after drain" true
    (String.length (Server.render_tenants server) > 0)

(* The determinism gate in miniature: the same waypoint stream against
   pools 1/2/4 x lockstep x snapshot-prepare produces byte-identical
   solve replies (CI runs the same comparison with cmp on dump files). *)
let test_live_replies_byte_identical_across_modes () =
  let stream ~pool_size ~lockstep ~snapshot_prepare =
    let config =
      {
        Server.default_config with
        Server.service =
          {
            Service.default_config with
            Service.lockstep;
            snapshot_prepare;
            chunk = 8;
          };
      }
    in
    let path = Filename.temp_file "dadu_srv" ".sock" in
    Sys.remove path;
    let pool =
      if pool_size > 1 then Some (Dadu_util.Domain_pool.create pool_size)
      else None
    in
    let server = Server.create ?pool ~config () in
    let runner =
      Thread.create
        (fun () -> Server.run server ~listen:(Server.Unix_sock path))
        ()
    in
    Fun.protect
      ~finally:(fun () ->
        Server.stop server;
        Thread.join runner;
        Option.iter Dadu_util.Domain_pool.shutdown pool;
        try Sys.remove path with Sys_error _ -> ())
      (fun () ->
        let fd, ic, oc = connect path in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            send oc "{\"op\":\"open\",\"id\":0,\"session\":\"m\",\"robot\":\"eval:30\"}";
            ignore (recv ic);
            for i = 1 to 6 do
              send oc
                (Printf.sprintf
                   "{\"op\":\"waypoint\",\"id\":%d,\"session\":\"m\",\"target\":[4.0,%.17g,2.0]}"
                   i
                   (1.0 +. (0.02 *. float_of_int i)))
            done;
            List.init 6 (fun _ -> fst (recv ic))))
  in
  let reference = stream ~pool_size:1 ~lockstep:false ~snapshot_prepare:false in
  List.iter
    (fun (pool_size, lockstep, snapshot_prepare) ->
      let got = stream ~pool_size ~lockstep ~snapshot_prepare in
      Alcotest.(check (list string))
        (Printf.sprintf "pool %d lockstep %b snapshot %b" pool_size lockstep
           snapshot_prepare)
        reference got)
    [ (2, false, false); (4, false, false); (1, true, true); (4, true, true) ]

(* Regression: a half-written frame (length line sent, payload never
   completed) used to park the blocking reader forever, wedging the
   connection slot.  With a frame deadline armed the connection is
   reaped, the timeout is counted, and the listener keeps serving. *)
let test_live_half_written_frame_reaped () =
  with_server
    ~config:{ Server.default_config with Server.frame_timeout_s = Some 0.2 }
  @@ fun _server path ->
  let fd, ic, oc = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  output_string oc "64\n{\"op\":\"pi";
  flush oc;
  let err = expect_kind "stalled frame gets a typed error" "error" (recv ic) in
  Alcotest.(check (option string)) "error names the frame deadline"
    (Some "read timeout: frame incomplete")
    (str_member "message" err);
  Alcotest.(check bool) "then the connection is reaped" true
    (Problem_file.read_frame ic = Ok None);
  let fd2, ic2, oc2 = connect path in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd2 with Unix.Unix_error _ -> ())
  @@ fun () ->
  send oc2 "{\"op\":\"ping\"}";
  ignore (expect_kind "listener still serving" "pong" (recv ic2));
  send oc2 "{\"op\":\"stats\"}";
  let stats = expect_kind "stats" "stats" (recv ic2) in
  Alcotest.(check bool) "timeout counted" true
    (match int_member "timeouts" stats with Some n -> n >= 1 | None -> false)

(* slow-loris defense: a connection that opens and then says nothing is
   closed once the idle deadline passes *)
let test_live_idle_timeout () =
  with_server
    ~config:{ Server.default_config with Server.idle_timeout_s = Some 0.15 }
  @@ fun _server path ->
  let fd, ic, _oc = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let err = expect_kind "idle connection gets a typed error" "error" (recv ic) in
  Alcotest.(check (option string)) "error names the idle deadline"
    (Some "idle timeout")
    (str_member "message" err);
  Alcotest.(check bool) "then the connection is closed" true
    (Problem_file.read_frame ic = Ok None);
  Alcotest.(check bool) "closed by the deadline, not by test teardown" true
    (Unix.gettimeofday () -. t0 < 5.0)

(* the connection cap refuses with a typed busy reply (plus back-off
   hint) instead of hanging the dialer, and the slot frees on close *)
let test_live_connection_cap_busy () =
  with_server
    ~config:{ Server.default_config with Server.max_connections = 1 }
  @@ fun _server path ->
  let fd1, ic1, oc1 = connect path in
  send oc1 "{\"op\":\"ping\"}";
  ignore (expect_kind "first connection admitted" "pong" (recv ic1));
  let fd2, ic2, _oc2 = connect path in
  let busy = expect_kind "over the cap refuses" "busy" (recv ic2) in
  Alcotest.(check (option int)) "busy carries a back-off hint" (Some 50)
    (int_member "retry_after_ms" busy);
  Alcotest.(check bool) "refused connection is closed" true
    (Problem_file.read_frame ic2 = Ok None);
  (try Unix.close fd2 with Unix.Unix_error _ -> ());
  send oc1 "{\"op\":\"stats\"}";
  let stats = expect_kind "stats" "stats" (recv ic1) in
  Alcotest.(check bool) "refusal counted" true
    (match int_member "busy" stats with Some n -> n >= 1 | None -> false);
  (try Unix.close fd1 with Unix.Unix_error _ -> ());
  (* the slot frees once the reader notices the close; retry until the
     next dialer gets a pong instead of busy *)
  let rec admitted tries =
    let fd3, ic3, oc3 = connect path in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd3 with Unix.Unix_error _ -> ())
    @@ fun () ->
    send oc3 "{\"op\":\"ping\"}";
    match recv ic3 with
    | _, json when reply_kind json = "pong" -> true
    | _ when tries < 100 ->
      Thread.delay 0.02;
      admitted (tries + 1)
    | _ -> false
  in
  Alcotest.(check bool) "slot freed after close" true (admitted 0)

(* deadline-aware shedding: with a per-job cost estimate configured, a
   solve whose deadline cannot be met even at the queue head is shed
   up front with retry_after, while a feasible deadline is admitted *)
let test_live_deadline_shed () =
  with_server
    ~config:{ Server.default_config with Server.est_job_ms = 10_000. }
  @@ fun _server path ->
  let fd, ic, oc = connect path in
  Fun.protect ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
  @@ fun () ->
  send oc
    "{\"op\":\"solve\",\"id\":7,\"robot\":\"eval:12\",\"target\":[3.0,1.0,1.0],\"deadline\":0.001}";
  let shed = expect_kind "infeasible deadline shed up front" "overloaded" (recv ic) in
  Alcotest.(check (option int)) "shed names the request" (Some 7)
    (int_member "id" shed);
  Alcotest.(check (option int)) "shed carries retry_after" (Some 50)
    (int_member "retry_after_ms" shed);
  send oc
    "{\"op\":\"solve\",\"id\":8,\"robot\":\"eval:12\",\"target\":[3.0,1.0,1.0],\"deadline\":60.0}";
  ignore (expect_kind "feasible deadline admitted" "solved" (recv ic));
  send oc "{\"op\":\"stats\"}";
  let stats = expect_kind "stats" "stats" (recv ic) in
  Alcotest.(check (option int)) "deadline shed counted" (Some 1)
    (int_member "retry_after_sheds" stats);
  Alcotest.(check (option int)) "also visible as overloaded" (Some 1)
    (int_member "overloaded" stats)

(* The crash-safety gate in miniature (CI runs the same comparison with
   kill -9 and cmp): a trajectory interrupted mid-stream, with the
   server restarted from its journal, produces — resends and all —
   exactly the reply bytes of an uninterrupted run.  Resent committed
   waypoints are answered from the journal-fed reply ring; the next
   fresh waypoint warm-starts from the journal-restored seed. *)
let test_live_journal_restart_byte_identical () =
  let journal = Filename.temp_file "dadu_jrnl" ".wal" in
  Sys.remove journal;
  Fun.protect
    ~finally:(fun () -> try Sys.remove journal with Sys_error _ -> ())
  @@ fun () ->
  let wp oc i seq =
    send oc
      (Printf.sprintf
         "{\"op\":\"waypoint\",\"id\":%d,\"session\":\"j\",\"seq\":%d,\"target\":[4.0,%.17g,2.0]}"
         i seq
         (1.0 +. (0.02 *. float_of_int i)))
  in
  let open_session ic oc =
    send oc "{\"op\":\"open\",\"id\":0,\"session\":\"j\",\"robot\":\"eval:30\"}";
    expect_kind "opened" "opened" (recv ic)
  in
  (* uninterrupted reference: no journal, four waypoints straight through *)
  let reference =
    with_server @@ fun _server path ->
    let fd, ic, oc = connect path in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    ignore (open_session ic oc);
    List.init 4 (fun i ->
        wp oc (i + 1) i;
        fst (recv ic))
  in
  let config = { Server.default_config with Server.journal = Some journal } in
  (* leg A: two waypoints commit, then the connection (and server) dies *)
  let legA =
    with_server ~config @@ fun _server path ->
    let fd, ic, oc = connect path in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let opened = open_session ic oc in
    Alcotest.(check (option bool)) "fresh open" (Some false)
      (bool_member "resumed" opened);
    List.init 2 (fun i ->
        wp oc (i + 1) i;
        fst (recv ic))
  in
  (* leg B: a fresh server replays the journal; the client re-opens,
     resends both committed waypoints, then continues the trajectory *)
  let legB =
    with_server ~config @@ fun server path ->
    Alcotest.(check bool) "journal replayed clean" true
      (Server.journal_recovery server = None);
    let fd, ic, oc = connect path in
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    @@ fun () ->
    let opened = open_session ic oc in
    Alcotest.(check (option bool)) "restart resumes the session" (Some true)
      (bool_member "resumed" opened);
    Alcotest.(check (option int)) "committed count carried over" (Some 2)
      (int_member "waypoints" opened);
    let replies =
      List.init 4 (fun i ->
          wp oc (i + 1) i;
          fst (recv ic))
    in
    (match Json.of_string (List.nth replies 2) with
    | Ok j ->
      Alcotest.(check (option bool)) "first fresh waypoint is warm"
        (Some true) (bool_member "session_hit" j)
    | Error msg -> Alcotest.fail msg);
    send oc "{\"op\":\"stats\"}";
    let stats = expect_kind "stats" "stats" (recv ic) in
    Alcotest.(check bool) "replays counted" true
      (match int_member "journal_replays" stats with
      | Some n -> n >= 1
      | None -> false);
    replies
  in
  Alcotest.(check (list string)) "leg A matches the reference prefix"
    (List.filteri (fun i _ -> i < 2) reference)
    legA;
  Alcotest.(check (list string))
    "resumed run byte-identical to the uninterrupted run" reference legB

let () =
  Alcotest.run "dadu_server"
    [
      ( "listen",
        [ Alcotest.test_case "listen_of_string" `Quick test_listen_of_string ] );
      ( "framing",
        [
          Alcotest.test_case "round-trip" `Quick test_framing_roundtrip;
          Alcotest.test_case "errors" `Quick test_framing_errors;
          qcheck test_framing_property;
        ] );
      ( "script",
        [
          Alcotest.test_case "parses" `Quick test_script_parses;
          Alcotest.test_case "errors carry line numbers" `Quick test_script_errors;
        ] );
      ( "live",
        [
          Alcotest.test_case "session happy path" `Slow test_live_session_happy_path;
          Alcotest.test_case "malformed payload keeps connection" `Slow
            test_live_malformed_payload_keeps_connection;
          Alcotest.test_case "queue full sheds" `Slow test_live_queue_full_sheds;
          Alcotest.test_case "session resumes across reconnect" `Slow
            test_live_session_resumes_across_reconnect;
          Alcotest.test_case "drain flushes in-flight replies" `Slow
            test_live_drain_flushes_in_flight;
          Alcotest.test_case "replies byte-identical across modes" `Slow
            test_live_replies_byte_identical_across_modes;
          Alcotest.test_case "half-written frame reaped" `Slow
            test_live_half_written_frame_reaped;
          Alcotest.test_case "idle timeout" `Slow test_live_idle_timeout;
          Alcotest.test_case "connection cap busy refusal" `Slow
            test_live_connection_cap_busy;
          Alcotest.test_case "deadline-aware shed" `Slow test_live_deadline_shed;
          Alcotest.test_case "journal restart byte-identical" `Slow
            test_live_journal_restart_byte_identical;
        ] );
    ]
