(* Tests for the recursive Newton-Euler dynamics: analytic pendulum cases,
   energy balance, and structural properties. *)

open Dadu_linalg
open Dadu_kinematics
module Rng = Dadu_util.Rng

let g = 9.81

(* a single 1 m link rotating about the world z-axis, gravity along −y so
   the rotation plane is vertical: the classic pendulum with a horizontal
   hinge *)
let pendulum_chain =
  Chain.make ~name:"pendulum"
    [| { Chain.name = "hinge"; joint = Joint.revolute (); dh = Dh.make ~a:1. () } |]

let pendulum_model ~mass =
  Dynamics.model ~gravity:(Vec3.make 0. (-.g) 0.) pendulum_chain
    [| Dynamics.rod ~mass ~length:1. |]

let test_pendulum_gravity_torque () =
  (* holding torque of a uniform rod pendulum: τ = m·g·(l/2)·cos θ *)
  let mass = 2.0 in
  let m = pendulum_model ~mass in
  List.iter
    (fun theta ->
      let tau = Dynamics.gravity_torques m [| theta |] in
      let expected = mass *. g *. 0.5 *. cos theta in
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "tau at %.2f rad" theta)
        expected tau.(0))
    [ 0.; 0.4; Float.pi /. 2.; -0.9; 2.5 ]

let test_pendulum_inertia_torque () =
  (* at the hanging-straight-down-in-plane... at θ=−π/2 the rod is along
     −y (aligned with gravity): zero gravity torque, so τ = I₀·q̈ with
     I₀ = m·l²/3 about the hinge *)
  let mass = 3.0 in
  let m = pendulum_model ~mass in
  let qdd = 2.5 in
  let tau =
    Dynamics.inverse_dynamics m ~q:[| -.Float.pi /. 2. |] ~qd:[| 0. |] ~qdd:[| qdd |]
  in
  Alcotest.(check (float 1e-9)) "tau = (m l^2 / 3) qdd" (mass /. 3. *. qdd) tau.(0)

let test_pendulum_centrifugal_free () =
  (* pure spin about the hinge produces no torque about the hinge axis *)
  let m = pendulum_model ~mass:1.5 in
  let tau_static = Dynamics.gravity_torques m [| 0.7 |] in
  let tau_spinning =
    Dynamics.inverse_dynamics m ~q:[| 0.7 |] ~qd:[| 3.0 |] ~qdd:[| 0. |]
  in
  Alcotest.(check (float 1e-9)) "qd does not change hinge torque" tau_static.(0)
    tau_spinning.(0)

let test_two_link_gravity_analytic () =
  (* planar 2R with 1 m uniform rods, gravity −y:
     τ2 = m2 g (l2/2) c12
     τ1 = (m1 (l1/2) + m2 l1) g c1 + m2 g (l2/2) c12 *)
  let chain = Robots.planar ~dof:2 ~reach:2. () in
  let m1 = 1.2 and m2 = 0.8 in
  let m =
    Dynamics.model ~gravity:(Vec3.make 0. (-.g) 0.) chain
      [| Dynamics.rod ~mass:m1 ~length:1.; Dynamics.rod ~mass:m2 ~length:1. |]
  in
  let q = [| 0.3; 0.9 |] in
  let c1 = cos q.(0) and c12 = cos (q.(0) +. q.(1)) in
  let tau = Dynamics.gravity_torques m q in
  let tau2_expected = m2 *. g *. 0.5 *. c12 in
  let tau1_expected = (((m1 *. 0.5) +. m2) *. g *. c1) +. tau2_expected in
  Alcotest.(check (float 1e-9)) "tau2" tau2_expected tau.(1);
  Alcotest.(check (float 1e-9)) "tau1" tau1_expected tau.(0)

let test_zero_gravity_statics () =
  let chain = Robots.eval_chain ~dof:8 in
  let m = Dynamics.uniform_rods ~gravity:Vec3.zero chain in
  let rng = Rng.create 11 in
  let q = Target.random_config rng chain in
  let tau = Dynamics.gravity_torques m q in
  Alcotest.(check bool) "no gravity, no static torque" true (Vec.max_abs tau < 1e-12)

let test_prismatic_gravity () =
  (* a vertical prismatic joint lifting a mass against gravity needs
     force m·g *)
  let chain =
    Chain.make
      [|
        {
          Chain.name = "lift";
          joint = Joint.prismatic ~lower:0. ~upper:1. ();
          dh = Dh.make ();
        };
      |]
  in
  let mass = 4.0 in
  let m = Dynamics.model chain [| Dynamics.point_mass mass Vec3.zero |] in
  let tau = Dynamics.gravity_torques m [| 0.3 |] in
  Alcotest.(check (float 1e-9)) "holding force = m g" (mass *. g) tau.(0)

let test_uniform_rods_mass () =
  let chain = Robots.eval_chain ~dof:10 in
  let m = Dynamics.uniform_rods ~total_mass:25. chain in
  let total = Array.fold_left (fun acc b -> acc +. b.Dynamics.mass) 0. m.Dynamics.bodies in
  Alcotest.(check (float 1e-9)) "masses sum" 25. total

let test_model_validation () =
  Alcotest.(check bool) "body count mismatch" true
    (try
       ignore (Dynamics.model pendulum_chain [||]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative mass" true
    (try
       ignore (Dynamics.rod ~mass:(-1.) ~length:1.);
       false
     with Invalid_argument _ -> true)

let test_potential_energy_pendulum () =
  let mass = 2.0 in
  let m = pendulum_model ~mass in
  (* COM height above the hinge is (l/2)·sin θ in the gravity (−y)
     direction *)
  let v0 = Dynamics.potential_energy m [| 0. |] in
  let v90 = Dynamics.potential_energy m [| Float.pi /. 2. |] in
  Alcotest.(check (float 1e-9)) "level at horizontal" 0. v0;
  Alcotest.(check (float 1e-9)) "raised by l/2" (mass *. g *. 0.5) v90

let test_kinetic_energy_pendulum () =
  let mass = 3.0 in
  let m = pendulum_model ~mass in
  let qd = 2.0 in
  (* T = 1/2 I₀ q̇², I₀ = m l²/3 about the hinge *)
  Alcotest.(check (float 1e-9)) "rod kinetic energy"
    (0.5 *. (mass /. 3.) *. qd *. qd)
    (Dynamics.kinetic_energy m ~q:[| 0.4 |] ~qd:[| qd |])

(* The definitive whole-algorithm check: along any trajectory,
   mechanical power balances: τ·q̇ = d/dt (T + V). *)
let test_energy_balance =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"power balance: tau . qd = dE/dt" ~count:60
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let rng = Rng.create seed in
         let dof = 2 + Rng.int rng 6 in
         let chain = Robots.random rng ~dof ~reach:2.0 () in
         let m = Dynamics.uniform_rods chain in
         let q = Target.random_config rng chain in
         let qd = Array.init dof (fun _ -> Rng.uniform rng (-1.) 1.) in
         let qdd = Array.init dof (fun _ -> Rng.uniform rng (-1.) 1.) in
         let tau = Dynamics.inverse_dynamics m ~q ~qd ~qdd in
         let power = Vec.dot tau qd in
         (* central finite difference of the total energy along the
            trajectory q(t) with q(0)=q, q̇(0)=qd, q̈(0)=qdd *)
         let eps = 1e-6 in
         let state s =
           let qs = Array.init dof (fun i -> q.(i) +. (s *. qd.(i)) +. (0.5 *. s *. s *. qdd.(i))) in
           let qds = Array.init dof (fun i -> qd.(i) +. (s *. qdd.(i))) in
           Dynamics.kinetic_energy m ~q:qs ~qd:qds +. Dynamics.potential_energy m qs
         in
         let de_dt = (state eps -. state (-.eps)) /. (2. *. eps) in
         let scale = Float.max 1. (Float.abs power) in
         Float.abs (power -. de_dt) < 1e-4 *. scale))

let test_gravity_effort_positive () =
  let chain = Robots.eval_chain ~dof:6 in
  let m = Dynamics.uniform_rods chain in
  let rng = Rng.create 12 in
  let q = Target.random_config rng chain in
  Alcotest.(check bool) "effort non-negative" true (Dynamics.gravity_effort m q >= 0.);
  Alcotest.(check (float 1e-12)) "effort = |tau|^2"
    (Vec.norm_sq (Dynamics.gravity_torques m q))
    (Dynamics.gravity_effort m q)

(* ---- Forward dynamics / simulation ---- *)

let test_mass_matrix_spd =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"mass matrix symmetric positive definite" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let rng = Rng.create seed in
         let dof = 2 + Rng.int rng 5 in
         let chain = Robots.random rng ~dof ~reach:1.5 () in
         let m = Dynamics.uniform_rods chain in
         let q = Target.random_config rng chain in
         let mm = Dynamics.mass_matrix m q in
         Mat.approx_equal ~tol:1e-8 mm (Mat.transpose mm)
         &&
         try
           ignore (Cholesky.factorize mm);
           true
         with Cholesky.Not_positive_definite -> false))

let test_forward_inverse_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"FD(ID(qdd)) = qdd" ~count:40
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let rng = Rng.create seed in
         let dof = 2 + Rng.int rng 5 in
         let chain = Robots.random rng ~dof ~reach:1.5 () in
         let m = Dynamics.uniform_rods chain in
         let q = Target.random_config rng chain in
         let qd = Array.init dof (fun _ -> Rng.uniform rng (-1.) 1.) in
         let qdd = Array.init dof (fun _ -> Rng.uniform rng (-2.) 2.) in
         let tau = Dynamics.inverse_dynamics m ~q ~qd ~qdd in
         let back = Dynamics.forward_dynamics m ~q ~qd ~tau in
         Vec.approx_equal ~tol:1e-6 back qdd))

let test_free_pendulum_conserves_energy () =
  let m = pendulum_model ~mass:1.0 in
  let initial = { Simulation.time = 0.; q = [| 0.2 |]; qd = [| 0. |] } in
  let states = Simulation.simulate m Simulation.zero_torque ~dt:1e-3 ~duration:2.0 initial in
  let e0 = Simulation.total_energy m initial in
  Array.iter
    (fun s ->
      Alcotest.(check bool)
        (Printf.sprintf "energy at t=%.2f" s.Simulation.time)
        true
        (Float.abs (Simulation.total_energy m s -. e0) < 1e-5 *. Float.max 1. (Float.abs e0)))
    states

let test_pendulum_small_oscillation_frequency () =
  (* linearized about the stable equilibrium θ = −π/2 (rod hanging along
     −y): ω² = m g (l/2) / I₀ = 3g/(2l) *)
  let m = pendulum_model ~mass:1.0 in
  let eq = -.Float.pi /. 2. in
  let amplitude = 0.02 in
  let initial = { Simulation.time = 0.; q = [| eq +. amplitude |]; qd = [| 0. |] } in
  let dt = 1e-3 in
  let states = Simulation.simulate m Simulation.zero_torque ~dt ~duration:3.0 initial in
  (* find the first time the pendulum swings back through a positive-going
     crossing of the equilibrium offset: a quarter period after start it
     crosses zero offset *)
  let crossing = ref None in
  Array.iter
    (fun s ->
      if !crossing = None && s.Simulation.q.(0) -. eq < 0. then
        crossing := Some s.Simulation.time)
    states;
  (match !crossing with
  | None -> Alcotest.fail "pendulum never crossed equilibrium"
  | Some t_quarter ->
    let omega = Float.pi /. 2. /. t_quarter in
    let expected = sqrt (3. *. 9.81 /. 2.) in
    Alcotest.(check bool)
      (Printf.sprintf "omega %.3f vs %.3f" omega expected)
      true
      (Float.abs (omega -. expected) < 0.05 *. expected))

let test_computed_torque_tracks () =
  (* PD with exact gravity compensation holds a setpoint with tiny error;
     plain PD sags under gravity *)
  let chain = Robots.planar ~dof:3 ~reach:1.5 () in
  let m =
    Dynamics.model ~gravity:(Vec3.make 0. (-9.81) 0.) chain
      (Array.init 3 (fun _ -> Dynamics.rod ~mass:1. ~length:0.5))
  in
  let setpoint = [| 0.4; -0.3; 0.6 |] in
  let initial = { Simulation.time = 0.; q = Array.copy setpoint; qd = [| 0.; 0.; 0. |] } in
  let run controller =
    let states = Simulation.simulate m controller ~dt:1e-3 ~duration:1.5 initial in
    let final = states.(Array.length states - 1) in
    Vec.dist final.Simulation.q setpoint
  in
  let plain =
    run (Simulation.pd ~kp:60. ~kd:12. ~target:(fun _ -> setpoint) ())
  in
  let compensated =
    run
      (Simulation.pd ~gravity_compensation:m ~kp:60. ~kd:12.
         ~target:(fun _ -> setpoint) ())
  in
  Alcotest.(check bool)
    (Printf.sprintf "compensated (%.2e) << plain (%.2e)" compensated plain)
    true
    (compensated < 1e-6 && plain > 10. *. compensated)

let test_simulate_shapes () =
  let m = pendulum_model ~mass:1.0 in
  let initial = { Simulation.time = 0.; q = [| 0. |]; qd = [| 0. |] } in
  let states = Simulation.simulate m Simulation.zero_torque ~dt:0.1 ~duration:1.0 initial in
  Alcotest.(check int) "tick count" 11 (Array.length states);
  Alcotest.(check (float 1e-9)) "last time" 1.0 states.(10).Simulation.time

let test_passive_energy_drift_random_chains =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"passive RK4 conserves energy on random chains" ~count:10
       QCheck.(int_range 0 100_000)
       (fun seed ->
         let rng = Rng.create seed in
         let dof = 2 + Rng.int rng 2 in
         let chain = Robots.random rng ~dof ~reach:1.0 () in
         let m = Dynamics.uniform_rods ~total_mass:2. chain in
         let q = Target.random_config rng chain in
         let initial = { Simulation.time = 0.; q; qd = Vec.create dof } in
         let states =
           Simulation.simulate m Simulation.zero_torque ~dt:1e-3 ~duration:0.5 initial
         in
         let e0 = Simulation.total_energy m initial in
         Array.for_all
           (fun s ->
             Float.abs (Simulation.total_energy m s -. e0)
             < 1e-4 *. Float.max 1. (Float.abs e0))
           states))

let () =
  Alcotest.run "dadu_dynamics"
    [
      ( "pendulum",
        [
          Alcotest.test_case "gravity torque" `Quick test_pendulum_gravity_torque;
          Alcotest.test_case "inertia torque" `Quick test_pendulum_inertia_torque;
          Alcotest.test_case "centrifugal-free hinge" `Quick test_pendulum_centrifugal_free;
          Alcotest.test_case "potential energy" `Quick test_potential_energy_pendulum;
          Alcotest.test_case "kinetic energy" `Quick test_kinetic_energy_pendulum;
        ] );
      ( "chains",
        [
          Alcotest.test_case "two-link analytic" `Quick test_two_link_gravity_analytic;
          Alcotest.test_case "zero gravity" `Quick test_zero_gravity_statics;
          Alcotest.test_case "prismatic lift" `Quick test_prismatic_gravity;
          Alcotest.test_case "uniform rods mass" `Quick test_uniform_rods_mass;
          Alcotest.test_case "validation" `Quick test_model_validation;
          Alcotest.test_case "gravity effort" `Quick test_gravity_effort_positive;
          test_energy_balance;
        ] );
      ( "forward-dynamics",
        [
          test_mass_matrix_spd;
          test_forward_inverse_roundtrip;
          Alcotest.test_case "free pendulum conserves energy" `Slow
            test_free_pendulum_conserves_energy;
          Alcotest.test_case "small-oscillation frequency" `Slow
            test_pendulum_small_oscillation_frequency;
          Alcotest.test_case "computed-torque control" `Slow test_computed_torque_tracks;
          Alcotest.test_case "simulate shapes" `Quick test_simulate_shapes;
          test_passive_energy_drift_random_chains;
        ] );
    ]
