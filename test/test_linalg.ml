(* Unit and property tests for Dadu_linalg: Vec, Vec3, Mat, Rot, Quat,
   Mat4, Svd, Cholesky. *)

open Dadu_linalg
module Rng = Dadu_util.Rng

let check_float = Alcotest.(check (float 1e-9))
let qcheck = QCheck_alcotest.to_alcotest

let small_float = QCheck.float_range (-10.) 10.

let vec_gen n = QCheck.(array_of_size (QCheck.Gen.return n) small_float)

let vec3_gen =
  QCheck.map
    (fun (x, y, z) -> Vec3.make x y z)
    QCheck.(triple small_float small_float small_float)

let nonzero_vec3_gen =
  QCheck.map
    (fun v ->
      if Vec3.norm v < 1e-6 then Vec3.make 1. 0.5 (-0.25) else v)
    vec3_gen

(* ---- Vec ---- *)

let test_vec_create () =
  let v = Vec.create 4 in
  Alcotest.(check int) "dim" 4 (Vec.dim v);
  check_float "zeros" 0. (Vec.norm v)

let test_vec_arith () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  Alcotest.(check (array (float 1e-12))) "add" [| 5.; 7.; 9. |] (Vec.add x y);
  Alcotest.(check (array (float 1e-12))) "sub" [| -3.; -3.; -3. |] (Vec.sub x y);
  Alcotest.(check (array (float 1e-12))) "scale" [| 2.; 4.; 6. |] (Vec.scale 2. x);
  Alcotest.(check (array (float 1e-12))) "neg" [| -1.; -2.; -3. |] (Vec.neg x);
  check_float "dot" 32. (Vec.dot x y);
  check_float "norm" (sqrt 14.) (Vec.norm x);
  check_float "dist" (sqrt 27.) (Vec.dist x y)

let test_vec_mismatch () =
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vec.add: dimension mismatch")
    (fun () -> ignore (Vec.add [| 1. |] [| 1.; 2. |]))

let test_vec_axpy_into () =
  let dst = Vec.create 3 in
  Vec.axpy_into ~dst 2. [| 1.; 1.; 1. |] [| 3.; 4.; 5. |];
  Alcotest.(check (array (float 1e-12))) "axpy_into" [| 5.; 6.; 7. |] dst

let test_vec_add_inplace () =
  let x = [| 1.; 2. |] in
  Vec.add_inplace x [| 10.; 20. |];
  Alcotest.(check (array (float 1e-12))) "in place" [| 11.; 22. |] x

let test_vec_max_abs () =
  check_float "max abs" 7. (Vec.max_abs [| -7.; 3.; 5. |]);
  check_float "empty" 0. (Vec.max_abs [||])

let test_vec_axpy_consistent =
  QCheck.Test.make ~name:"axpy a x y = a*x + y" ~count:200
    QCheck.(triple small_float (vec_gen 5) (vec_gen 5))
    (fun (a, x, y) ->
      Vec.approx_equal ~tol:1e-9 (Vec.axpy a x y) (Vec.add (Vec.scale a x) y))

let test_vec_cauchy_schwarz =
  QCheck.Test.make ~name:"Cauchy-Schwarz" ~count:200
    QCheck.(pair (vec_gen 6) (vec_gen 6))
    (fun (x, y) -> Float.abs (Vec.dot x y) <= (Vec.norm x *. Vec.norm y) +. 1e-6)

let test_vec_triangle =
  QCheck.Test.make ~name:"triangle inequality" ~count:200
    QCheck.(pair (vec_gen 6) (vec_gen 6))
    (fun (x, y) -> Vec.norm (Vec.add x y) <= Vec.norm x +. Vec.norm y +. 1e-6)

(* ---- Vec3 ---- *)

let test_vec3_cross_basis () =
  Alcotest.(check bool) "ex x ey = ez" true
    (Vec3.approx_equal (Vec3.cross Vec3.ex Vec3.ey) Vec3.ez)

let test_vec3_normalize () =
  let v = Vec3.normalize (Vec3.make 3. 4. 0.) in
  check_float "unit" 1. (Vec3.norm v);
  Alcotest.check_raises "zero vector" (Invalid_argument "Vec3.normalize: zero vector")
    (fun () -> ignore (Vec3.normalize Vec3.zero))

let test_vec3_lerp () =
  let a = Vec3.make 0. 0. 0. and b = Vec3.make 2. 4. 6. in
  Alcotest.(check bool) "t=0" true (Vec3.approx_equal (Vec3.lerp a b 0.) a);
  Alcotest.(check bool) "t=1" true (Vec3.approx_equal (Vec3.lerp a b 1.) b);
  Alcotest.(check bool) "t=.5" true
    (Vec3.approx_equal (Vec3.lerp a b 0.5) (Vec3.make 1. 2. 3.))

let test_vec3_of_vec () =
  Alcotest.(check bool) "round trip" true
    (Vec3.approx_equal (Vec3.of_vec [| 1.; 2.; 3. |]) (Vec3.make 1. 2. 3.));
  Alcotest.check_raises "wrong length" (Invalid_argument "Vec3.of_vec: expected length 3")
    (fun () -> ignore (Vec3.of_vec [| 1. |]))

let test_vec3_cross_antisym =
  QCheck.Test.make ~name:"cross anti-commutes" ~count:200 (QCheck.pair vec3_gen vec3_gen)
    (fun (a, b) ->
      Vec3.approx_equal ~tol:1e-9 (Vec3.cross a b) (Vec3.neg (Vec3.cross b a)))

let test_vec3_cross_orthogonal =
  QCheck.Test.make ~name:"cross orthogonal to both" ~count:200
    (QCheck.pair vec3_gen vec3_gen) (fun (a, b) ->
      let c = Vec3.cross a b in
      Float.abs (Vec3.dot c a) < 1e-6 && Float.abs (Vec3.dot c b) < 1e-6)

(* ---- Mat ---- *)

let mat_of l = Mat.of_arrays (Array.of_list (List.map Array.of_list l))

let test_mat_identity_mul () =
  let a = mat_of [ [ 1.; 2. ]; [ 3.; 4. ]; [ 5.; 6. ] ] in
  Alcotest.(check bool) "I*A = A" true (Mat.approx_equal (Mat.mul (Mat.identity 3) a) a);
  Alcotest.(check bool) "A*I = A" true (Mat.approx_equal (Mat.mul a (Mat.identity 2)) a)

let test_mat_mul_known () =
  let a = mat_of [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  let b = mat_of [ [ 5.; 6. ]; [ 7.; 8. ] ] in
  let expected = mat_of [ [ 19.; 22. ]; [ 43.; 50. ] ] in
  Alcotest.(check bool) "2x2 product" true (Mat.approx_equal (Mat.mul a b) expected)

let test_mat_transpose_involution () =
  let a = mat_of [ [ 1.; 2.; 3. ]; [ 4.; 5.; 6. ] ] in
  Alcotest.(check bool) "(A^T)^T = A" true
    (Mat.approx_equal (Mat.transpose (Mat.transpose a)) a)

let test_mat_mul_vec () =
  let a = mat_of [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  Alcotest.(check (array (float 1e-12))) "A x" [| 5.; 11. |] (Mat.mul_vec a [| 1.; 2. |])

let test_mat_mul_transpose_vec () =
  let a = mat_of [ [ 1.; 2. ]; [ 3.; 4. ]; [ 5.; 6. ] ] in
  let x = [| 1.; 1.; 1. |] in
  Alcotest.(check (array (float 1e-12))) "A^T x" (Mat.mul_vec (Mat.transpose a) x)
    (Mat.mul_transpose_vec a x)

let test_mat_gram () =
  let a = mat_of [ [ 1.; 0.; 2. ]; [ 0.; 3.; 4. ] ] in
  let g = Mat.gram a in
  Alcotest.(check bool) "gram = A A^T" true
    (Mat.approx_equal g (Mat.mul a (Mat.transpose a)))

let test_mat_row_col () =
  let a = mat_of [ [ 1.; 2. ]; [ 3.; 4. ] ] in
  Alcotest.(check (array (float 1e-12))) "row" [| 3.; 4. |] (Mat.row a 1);
  Alcotest.(check (array (float 1e-12))) "col" [| 2.; 4. |] (Mat.col a 1);
  Mat.set_col a 0 [| 9.; 8. |];
  Alcotest.(check (array (float 1e-12))) "set_col" [| 9.; 8. |] (Mat.col a 0)

let test_mat_dims_mismatch () =
  Alcotest.check_raises "mul mismatch" (Invalid_argument "Mat.mul: dimension mismatch")
    (fun () -> ignore (Mat.mul (Mat.create 2 3) (Mat.create 2 3)))

let test_mat_frobenius () =
  check_float "frobenius" (sqrt 30.) (Mat.frobenius (mat_of [ [ 1.; 2. ]; [ 3.; 4. ] ]))

let random_mat rng rows cols =
  Mat.init rows cols (fun _ _ -> Rng.uniform rng (-5.) 5.)

let test_mat_mul_assoc () =
  let rng = Rng.create 42 in
  for _ = 1 to 20 do
    let a = random_mat rng 3 4 and b = random_mat rng 4 2 and c = random_mat rng 2 5 in
    Alcotest.(check bool) "(AB)C = A(BC)" true
      (Mat.approx_equal ~tol:1e-8 (Mat.mul (Mat.mul a b) c) (Mat.mul a (Mat.mul b c)))
  done

(* ---- Rot ---- *)

let angle_gen = QCheck.float_range (-3.1) 3.1

let test_rot_axes_orthonormal () =
  List.iter
    (fun r -> Alcotest.(check bool) "orthonormal" true (Rot.is_orthonormal ~tol:1e-9 r))
    [ Rot.rot_x 0.3; Rot.rot_y (-1.2); Rot.rot_z 2.5 ]

let test_rot_rodrigues_matches_rot_z () =
  let angle = 0.7 in
  Alcotest.(check bool) "axis-angle about z = rot_z" true
    (Rot.approx_equal ~tol:1e-12 (Rot.of_axis_angle Vec3.ez angle) (Rot.rot_z angle))

let test_rot_apply_preserves_norm =
  QCheck.Test.make ~name:"rotation preserves norm" ~count:200
    (QCheck.pair angle_gen vec3_gen) (fun (a, v) ->
      let r = Rot.of_axis_angle (Vec3.make 1. 2. 3.) a in
      Float.abs (Vec3.norm (Rot.apply r v) -. Vec3.norm v) < 1e-7)

let test_rot_axis_angle_roundtrip =
  QCheck.Test.make ~name:"axis-angle round trip" ~count:200
    (QCheck.pair nonzero_vec3_gen (QCheck.float_range 0.05 3.0)) (fun (axis, angle) ->
      let r = Rot.of_axis_angle axis angle in
      let axis', angle' = Rot.to_axis_angle r in
      let r' = Rot.of_axis_angle axis' angle' in
      Rot.approx_equal ~tol:1e-6 r r')

let test_rot_identity_axis_angle () =
  let _, angle = Rot.to_axis_angle (Rot.identity ()) in
  check_float "identity angle" 0. angle

let test_rot_near_pi () =
  let axis = Vec3.normalize (Vec3.make 1. 1. 0.) in
  let r = Rot.of_axis_angle axis Float.pi in
  let axis', angle' = Rot.to_axis_angle r in
  Alcotest.(check (float 1e-4)) "angle pi" Float.pi angle';
  let same = Vec3.approx_equal ~tol:1e-4 axis' axis in
  let flipped = Vec3.approx_equal ~tol:1e-4 axis' (Vec3.neg axis) in
  Alcotest.(check bool) "axis recovered up to sign" true (same || flipped)

let test_rot_angle_between () =
  let a = Rot.rot_z 0.4 and b = Rot.rot_z 1.0 in
  Alcotest.(check (float 1e-9)) "geodesic" 0.6 (Rot.angle_between a b)

let test_rot_rpy_roundtrip =
  QCheck.Test.make ~name:"rpy round trip (away from gimbal lock)" ~count:200
    QCheck.(
      triple (float_range (-3.) 3.) (float_range (-1.4) 1.4) (float_range (-3.) 3.))
    (fun (roll, pitch, yaw) ->
      let r = Rot.rpy ~roll ~pitch ~yaw in
      let roll', pitch', yaw' = Rot.to_rpy r in
      Rot.approx_equal ~tol:1e-9 r (Rot.rpy ~roll:roll' ~pitch:pitch' ~yaw:yaw'))

let test_rot_rpy_axes () =
  Alcotest.(check bool) "pure yaw = rot_z" true
    (Rot.approx_equal ~tol:1e-12 (Rot.rpy ~roll:0. ~pitch:0. ~yaw:0.7) (Rot.rot_z 0.7));
  Alcotest.(check bool) "pure roll = rot_x" true
    (Rot.approx_equal ~tol:1e-12 (Rot.rpy ~roll:0.4 ~pitch:0. ~yaw:0.) (Rot.rot_x 0.4))

let test_rot_rpy_gimbal () =
  let r = Rot.rpy ~roll:0.3 ~pitch:(Float.pi /. 2.) ~yaw:0.5 in
  let roll', pitch', yaw' = Rot.to_rpy r in
  Alcotest.(check bool) "reconstructs at lock" true
    (Rot.approx_equal ~tol:1e-9 r (Rot.rpy ~roll:roll' ~pitch:pitch' ~yaw:yaw'))

(* ---- Quat ---- *)

let quat_gen =
  QCheck.map
    (fun (axis, angle) -> Quat.of_axis_angle axis angle)
    (QCheck.pair nonzero_vec3_gen (QCheck.float_range 0.05 3.0))

let test_quat_identity () =
  Alcotest.(check bool) "q * 1 = q" true
    (Quat.approx_equal (Quat.mul (Quat.of_axis_angle Vec3.ex 0.5) Quat.identity)
       (Quat.of_axis_angle Vec3.ex 0.5))

let test_quat_conjugate_inverse =
  QCheck.Test.make ~name:"q * conj q = identity" ~count:200 quat_gen (fun q ->
      Quat.approx_equal ~tol:1e-9 (Quat.mul q (Quat.conjugate q)) Quat.identity)

let test_quat_rot_roundtrip =
  QCheck.Test.make ~name:"of_rot (to_rot q) = ±q" ~count:200 quat_gen (fun q ->
      Quat.approx_equal ~tol:1e-6 (Quat.of_rot (Quat.to_rot q)) q)

let test_quat_rotate_matches_matrix =
  QCheck.Test.make ~name:"quat rotate = matrix apply" ~count:200
    (QCheck.pair quat_gen vec3_gen) (fun (q, v) ->
      Vec3.approx_equal ~tol:1e-7 (Quat.rotate q v) (Rot.apply (Quat.to_rot q) v))

let test_quat_slerp_endpoints () =
  let a = Quat.of_axis_angle Vec3.ez 0.2 and b = Quat.of_axis_angle Vec3.ez 1.4 in
  Alcotest.(check bool) "t=0" true (Quat.approx_equal ~tol:1e-9 (Quat.slerp a b 0.) a);
  Alcotest.(check bool) "t=1" true (Quat.approx_equal ~tol:1e-9 (Quat.slerp a b 1.) b)

let test_quat_slerp_halfway () =
  let a = Quat.of_axis_angle Vec3.ez 0. and b = Quat.of_axis_angle Vec3.ez 1.0 in
  let mid = Quat.slerp a b 0.5 in
  Alcotest.(check bool) "halfway angle" true
    (Quat.approx_equal ~tol:1e-9 mid (Quat.of_axis_angle Vec3.ez 0.5))

(* ---- Mat4 ---- *)

let rigid_gen =
  QCheck.map
    (fun (q, p) -> Mat4.of_rot_trans (Quat.to_rot q) p)
    (QCheck.pair quat_gen vec3_gen)

let test_mat4_identity_point () =
  let p = Vec3.make 1. 2. 3. in
  Alcotest.(check bool) "identity transform" true
    (Vec3.approx_equal (Mat4.transform_point (Mat4.identity ()) p) p)

let test_mat4_translation () =
  let t = Mat4.translation (Vec3.make 1. 0. (-2.)) in
  Alcotest.(check bool) "translated" true
    (Vec3.approx_equal (Mat4.transform_point t (Vec3.make 0. 1. 0.)) (Vec3.make 1. 1. (-2.)))

let test_mat4_compose =
  QCheck.Test.make ~name:"(A·B) p = A (B p)" ~count:200
    (QCheck.triple rigid_gen rigid_gen vec3_gen) (fun (a, b, p) ->
      Vec3.approx_equal ~tol:1e-6
        (Mat4.transform_point (Mat4.mul a b) p)
        (Mat4.transform_point a (Mat4.transform_point b p)))

let test_mat4_inverse_rigid =
  QCheck.Test.make ~name:"T · T⁻¹ = identity" ~count:200 rigid_gen (fun t ->
      Mat4.approx_equal ~tol:1e-7 (Mat4.mul t (Mat4.inverse_rigid t)) (Mat4.identity ()))

let test_mat4_is_rigid =
  QCheck.Test.make ~name:"rigid transforms detected" ~count:200 rigid_gen (fun t ->
      Mat4.is_rigid ~tol:1e-7 t)

let test_mat4_not_rigid () =
  let t = Mat4.identity () in
  Mat4.set t 0 0 2.;
  Alcotest.(check bool) "scaled not rigid" false (Mat4.is_rigid t)

let test_mat4_axes () =
  let t = Mat4.rot_z (Float.pi /. 2.) in
  Alcotest.(check bool) "x-axis rotated to y" true
    (Vec3.approx_equal ~tol:1e-12 (Mat4.x_axis t) Vec3.ey);
  Alcotest.(check bool) "z-axis unchanged" true
    (Vec3.approx_equal ~tol:1e-12 (Mat4.z_axis t) Vec3.ez)

let test_mat4_position () =
  let t = Mat4.translation (Vec3.make 4. 5. 6.) in
  Alcotest.(check bool) "position column" true
    (Vec3.approx_equal (Mat4.position t) (Vec3.make 4. 5. 6.))

let test_mat4_transform_dir () =
  let t = Mat4.mul (Mat4.translation (Vec3.make 9. 9. 9.)) (Mat4.rot_z (Float.pi /. 2.)) in
  Alcotest.(check bool) "direction ignores translation" true
    (Vec3.approx_equal ~tol:1e-12 (Mat4.transform_dir t Vec3.ex) Vec3.ey)

(* ---- Svd ---- *)

let random_mat_gen rows cols =
  QCheck.map
    (fun seed ->
      let rng = Rng.create seed in
      random_mat rng rows cols)
    QCheck.(int_range 0 100_000)

let svd_reconstructs name rows cols =
  QCheck.Test.make ~name ~count:100 (random_mat_gen rows cols) (fun a ->
      let svd = Svd.decompose a in
      Mat.approx_equal ~tol:1e-7 (Svd.reconstruct svd) a)

let test_svd_reconstruct_tall = svd_reconstructs "SVD reconstructs 20x3" 20 3
let test_svd_reconstruct_wide = svd_reconstructs "SVD reconstructs 3x20" 3 20
let test_svd_reconstruct_square = svd_reconstructs "SVD reconstructs 5x5" 5 5

let test_svd_descending =
  QCheck.Test.make ~name:"singular values descending, non-negative" ~count:100
    (random_mat_gen 8 5) (fun a ->
      let { Svd.sigma; _ } = Svd.decompose a in
      let ok = ref (Array.for_all (fun s -> s >= 0.) sigma) in
      for i = 1 to Array.length sigma - 1 do
        if sigma.(i) > sigma.(i - 1) +. 1e-12 then ok := false
      done;
      !ok)

let orthonormal_columns ?(tol = 1e-7) m sigma =
  let _, r = Mat.dims m in
  let ok = ref true in
  for i = 0 to r - 1 do
    for j = 0 to r - 1 do
      if sigma.(i) > 1e-9 && sigma.(j) > 1e-9 then begin
        let d = Vec.dot (Mat.col m i) (Mat.col m j) in
        let expected = if i = j then 1. else 0. in
        if Float.abs (d -. expected) > tol then ok := false
      end
    done
  done;
  !ok

let test_svd_orthonormal =
  QCheck.Test.make ~name:"U and V have orthonormal columns" ~count:100
    (random_mat_gen 10 4) (fun a ->
      let { Svd.u; v; sigma; _ } = Svd.decompose a in
      orthonormal_columns u sigma && orthonormal_columns v sigma)

let test_svd_rank_deficient () =
  (* rank-1: outer product *)
  let a = Mat.init 6 4 (fun i j -> float_of_int ((i + 1) * (j + 1))) in
  let svd = Svd.decompose a in
  Alcotest.(check int) "rank 1" 1 (Svd.rank ~rcond:1e-9 svd)

let test_svd_known_diagonal () =
  let a = mat_of [ [ 3.; 0. ]; [ 0.; 4. ] ] in
  let { Svd.sigma; _ } = Svd.decompose a in
  check_float "largest" 4. sigma.(0);
  check_float "smallest" 3. sigma.(1)

let test_pinv_moore_penrose =
  QCheck.Test.make ~name:"A A⁺ A = A" ~count:60 (random_mat_gen 3 7) (fun a ->
      let ap = Svd.pinv a in
      Mat.approx_equal ~tol:1e-6 (Mat.mul (Mat.mul a ap) a) a)

let test_pinv_second_condition =
  QCheck.Test.make ~name:"A⁺ A A⁺ = A⁺" ~count:60 (random_mat_gen 3 7) (fun a ->
      let ap = Svd.pinv a in
      Mat.approx_equal ~tol:1e-6 (Mat.mul (Mat.mul ap a) ap) ap)

let test_apply_pinv_matches_materialized =
  QCheck.Test.make ~name:"apply_pinv = pinv · e" ~count:60 (random_mat_gen 3 6) (fun a ->
      let svd = Svd.decompose a in
      let e = [| 1.; -2.; 0.5 |] in
      Vec.approx_equal ~tol:1e-7 (Svd.apply_pinv svd e) (Mat.mul_vec (Svd.pinv a) e))

let test_apply_damped_limit =
  QCheck.Test.make ~name:"damped λ→0 approaches pinv" ~count:60 (random_mat_gen 3 5)
    (fun a ->
      let svd = Svd.decompose a in
      let e = [| 0.3; 1.; -0.7 |] in
      Vec.approx_equal ~tol:1e-4
        (Svd.apply_damped ~lambda:1e-9 svd e)
        (Svd.apply_pinv svd e))

let test_svd_sweeps_positive () =
  let rng = Rng.create 77 in
  let a = random_mat rng 10 3 in
  let svd = Svd.decompose a in
  Alcotest.(check bool) "at least one sweep" true (svd.Svd.sweeps >= 1)

let test_svd_transpose_sigma () =
  (* singular values are transpose-invariant *)
  let rng = Rng.create 93 in
  let a = random_mat rng 6 3 in
  let s1 = (Svd.decompose a).Svd.sigma in
  let s2 = (Svd.decompose (Mat.transpose a)).Svd.sigma in
  Array.iteri
    (fun i s -> Alcotest.(check (float 1e-8)) "sigma equal" s s2.(i))
    s1

let test_rot_not_orthonormal () =
  let r = Rot.identity () in
  r.(0) <- 2.;
  Alcotest.(check bool) "scaled matrix rejected" false (Rot.is_orthonormal r)

let test_quat_norm () =
  check_float "unit quaternion" 1. (Quat.norm (Quat.of_axis_angle Vec3.ez 0.7));
  check_float "identity norm" 1. (Quat.norm Quat.identity)

(* ---- Eigen ---- *)

let random_symmetric rng n =
  let b = random_mat rng n n in
  Mat.add b (Mat.transpose b)

let test_eigen_reconstruct =
  QCheck.Test.make ~name:"eigendecomposition reconstructs" ~count:100
    QCheck.(int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 6 in
      let a = random_symmetric rng n in
      let e = Eigen.decompose a in
      Mat.approx_equal ~tol:1e-7 (Eigen.reconstruct e) a)

let test_eigen_pairs =
  QCheck.Test.make ~name:"A v = lambda v for every pair" ~count:100
    QCheck.(int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 5 in
      let a = random_symmetric rng n in
      let e = Eigen.decompose a in
      let ok = ref true in
      for k = 0 to n - 1 do
        let v = Mat.col e.Eigen.vectors k in
        let av = Mat.mul_vec a v in
        let lv = Vec.scale e.Eigen.values.(k) v in
        if not (Vec.approx_equal ~tol:1e-7 av lv) then ok := false
      done;
      !ok)

let test_eigen_descending_and_orthonormal () =
  let rng = Rng.create 91 in
  let a = random_symmetric rng 6 in
  let e = Eigen.decompose a in
  for k = 1 to 5 do
    Alcotest.(check bool) "descending" true
      (e.Eigen.values.(k) <= e.Eigen.values.(k - 1) +. 1e-12)
  done;
  let vtv = Mat.mul (Mat.transpose e.Eigen.vectors) e.Eigen.vectors in
  Alcotest.(check bool) "orthonormal" true
    (Mat.approx_equal ~tol:1e-8 vtv (Mat.identity 6))

let test_eigen_invariants =
  QCheck.Test.make ~name:"trace = sum of eigenvalues" ~count:100
    QCheck.(int_range 0 100_000) (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 5 in
      let a = random_symmetric rng n in
      let e = Eigen.decompose a in
      let trace = ref 0. in
      for i = 0 to n - 1 do
        trace := !trace +. Mat.get a i i
      done;
      Float.abs (!trace -. Array.fold_left ( +. ) 0. e.Eigen.values)
      < 1e-8 *. Float.max 1. (Float.abs !trace))

let test_eigen_matches_svd () =
  (* eigenvalues of AᵀA = squared singular values of A *)
  let rng = Rng.create 92 in
  let a = random_mat rng 7 4 in
  let svd = Svd.decompose a in
  let eig = Eigen.decompose (Mat.mul (Mat.transpose a) a) in
  Array.iteri
    (fun k s ->
      Alcotest.(check bool)
        (Printf.sprintf "sigma_%d^2 = lambda_%d" k k)
        true
        (Float.abs ((s *. s) -. eig.Eigen.values.(k)) < 1e-7 *. Float.max 1. (s *. s)))
    svd.Svd.sigma

let test_eigen_diagonal () =
  let a = mat_of [ [ 3.; 0. ]; [ 0.; 7. ] ] in
  let e = Eigen.decompose a in
  check_float "largest" 7. e.Eigen.values.(0);
  check_float "smallest" 3. e.Eigen.values.(1)

let test_eigen_rejects_asymmetric () =
  Alcotest.(check bool) "asymmetric rejected" true
    (try
       ignore (Eigen.decompose (mat_of [ [ 1.; 2. ]; [ 3.; 4. ] ]));
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "non-square rejected" true
    (try
       ignore (Eigen.decompose (Mat.create 2 3));
       false
     with Invalid_argument _ -> true)

(* ---- Cholesky ---- *)

let random_spd rng n =
  let b = random_mat rng n n in
  let a = Mat.mul (Mat.transpose b) b in
  for i = 0 to n - 1 do
    Mat.set a i i (Mat.get a i i +. 0.5)
  done;
  a

let test_cholesky_reconstruct () =
  let rng = Rng.create 5 in
  for _ = 1 to 30 do
    let a = random_spd rng 5 in
    let l = Cholesky.factorize a in
    Alcotest.(check bool) "L L^T = A" true
      (Mat.approx_equal ~tol:1e-7 (Mat.mul l (Mat.transpose l)) a)
  done

let test_cholesky_lower_triangular () =
  let rng = Rng.create 6 in
  let a = random_spd rng 4 in
  let l = Cholesky.factorize a in
  for i = 0 to 3 do
    for j = i + 1 to 3 do
      check_float "upper part zero" 0. (Mat.get l i j)
    done
  done

let test_cholesky_solve () =
  let rng = Rng.create 7 in
  for _ = 1 to 30 do
    let a = random_spd rng 6 in
    let x_true = Array.init 6 (fun i -> float_of_int i -. 2.5) in
    let b = Mat.mul_vec a x_true in
    let x = Cholesky.solve a b in
    Alcotest.(check bool) "solve recovers x" true (Vec.approx_equal ~tol:1e-6 x x_true)
  done

let test_cholesky_inverse () =
  let rng = Rng.create 8 in
  let a = random_spd rng 4 in
  let inv = Cholesky.inverse a in
  Alcotest.(check bool) "A A⁻¹ = I" true
    (Mat.approx_equal ~tol:1e-7 (Mat.mul a inv) (Mat.identity 4))

let test_cholesky_not_spd () =
  let a = mat_of [ [ 1.; 2. ]; [ 2.; 1. ] ] in
  Alcotest.check_raises "indefinite rejected" Cholesky.Not_positive_definite (fun () ->
      ignore (Cholesky.factorize a))

let test_cholesky_not_square () =
  Alcotest.check_raises "non-square rejected"
    (Invalid_argument "Cholesky.factorize: not square") (fun () ->
      ignore (Cholesky.factorize (Mat.create 2 3)))

(* ---- differential tests: in-place primitives vs allocating twins ----

   The zero-allocation kernels promise results bit-identical to the
   historical allocating paths (same products, same association order).
   These properties pin that promise: each [_into] primitive is compared
   against its allocating twin with [Int64.bits_of_float] equality —
   tolerances would hide an association-order drift that the solver
   equivalence pins downstream depend on. *)

let bits_equal name expected actual =
  let n = Array.length expected in
  if Array.length actual <> n then Alcotest.failf "%s: length mismatch" name;
  Array.iteri
    (fun i e ->
      if Int64.bits_of_float e <> Int64.bits_of_float actual.(i) then
        Alcotest.failf "%s: component %d differs: %h vs %h" name i e actual.(i))
    expected

let mat_gen rows cols =
  QCheck.map
    (fun data -> { Mat.rows; cols; data })
    (vec_gen (rows * cols))

let test_vec_into_differential =
  QCheck.Test.make ~name:"Vec *_into = allocating twins (bits)" ~count:200
    QCheck.(triple small_float (vec_gen 7) (vec_gen 7))
    (fun (a, x, y) ->
      let dst = Vec.create 7 in
      Vec.sub_into ~dst x y;
      bits_equal "sub_into" (Vec.sub x y) dst;
      Vec.add_into ~dst x y;
      bits_equal "add_into" (Vec.add x y) dst;
      Vec.neg_into ~dst x;
      bits_equal "neg_into" (Vec.neg x) dst;
      Vec.scale_into ~dst a x;
      bits_equal "scale_into" (Vec.scale a x) dst;
      Vec.axpy_into ~dst a x y;
      bits_equal "axpy_into" (Vec.axpy a x y) dst;
      Vec.blit x dst;
      bits_equal "blit" x dst;
      true)

let test_mat_into_differential =
  QCheck.Test.make ~name:"Mat gemv/gram _into = allocating twins (bits)"
    ~count:200
    QCheck.(triple (mat_gen 3 9) (vec_gen 9) (vec_gen 3))
    (fun (m, x, z) ->
      let dst_r = Vec.create 3 in
      Mat.gemv_into ~dst:dst_r m x;
      bits_equal "gemv_into" (Mat.mul_vec m x) dst_r;
      let dst_c = Vec.create 9 in
      Mat.gemv_t_into ~dst:dst_c m z;
      bits_equal "gemv_t_into" (Mat.mul_transpose_vec m z) dst_c;
      let dst_g = Mat.create 3 3 in
      Mat.gram_into ~dst:dst_g m;
      bits_equal "gram_into" (Mat.gram m).Mat.data dst_g.Mat.data;
      true)

let affine_gen =
  (* random affine 4x4: arbitrary upper 3x4, fixed [0 0 0 1] bottom row *)
  QCheck.map
    (fun top ->
      let m = Array.make 16 0. in
      Array.blit top 0 m 0 12;
      m.(15) <- 1.;
      m)
    (vec_gen 12)

let test_mat4_mul_into_differential =
  QCheck.Test.make ~name:"Mat4 mul_into = mul (bits)" ~count:200
    QCheck.(pair (vec_gen 16) (vec_gen 16))
    (fun (a, b) ->
      let dst = Mat4.identity () in
      Mat4.mul_into ~dst a b;
      bits_equal "mul_into" (Mat4.mul a b) dst;
      true)

(* The affine fast path skips products against the structural zeros of the
   bottom row, so components can differ from the general product only in
   the sign of a zero: plain float equality ([=]) treats +0. and -0. as
   equal, which is exactly the intended tolerance. *)
let test_mat4_mul_affine_differential =
  QCheck.Test.make ~name:"Mat4 mul_affine_into = mul on affine inputs"
    ~count:200
    QCheck.(pair affine_gen affine_gen)
    (fun (a, b) ->
      let dst = Mat4.identity () in
      Mat4.mul_affine_into ~dst a b;
      let expected = Mat4.mul a b in
      Array.iteri
        (fun i e ->
          if not (e = dst.(i)) then
            Alcotest.failf "mul_affine_into: component %d differs: %h vs %h" i e
              dst.(i))
        expected;
      true)

let test_mat4_identity_into () =
  let m = Array.init 16 (fun i -> float_of_int i) in
  Mat4.identity_into m;
  bits_equal "identity_into" (Mat4.identity ()) m;
  let dst = Array.make 16 nan in
  Mat4.blit m dst;
  bits_equal "Mat4.blit" m dst

let spd_gen =
  (* J·Jᵀ + I is symmetric positive definite for any 3×9 J *)
  QCheck.map
    (fun j ->
      let g = Mat.gram j in
      for i = 0 to 2 do
        Mat.set g i i (Mat.get g i i +. 1.)
      done;
      g)
    (mat_gen 3 9)

let test_cholesky_solve_into_differential =
  QCheck.Test.make ~name:"Cholesky solve_into = solve (bits)" ~count:200
    QCheck.(pair spd_gen (vec_gen 3))
    (fun (a, b) ->
      let l = Mat.create 3 3 and y = Vec.create 3 and dst = Vec.create 3 in
      Cholesky.solve_into ~l ~y ~dst a b;
      bits_equal "solve_into" (Cholesky.solve a b) dst;
      (* reusing the same factorization buffers must not change results *)
      let dst2 = Vec.create 3 in
      Cholesky.solve_into ~l ~y ~dst:dst2 a b;
      bits_equal "solve_into reuse" dst dst2;
      true)

let () =
  Alcotest.run "dadu_linalg"
    [
      ( "into-differential",
        [
          qcheck test_vec_into_differential;
          qcheck test_mat_into_differential;
          qcheck test_mat4_mul_into_differential;
          qcheck test_mat4_mul_affine_differential;
          Alcotest.test_case "identity_into/blit" `Quick test_mat4_identity_into;
          qcheck test_cholesky_solve_into_differential;
        ] );
      ( "vec",
        [
          Alcotest.test_case "create" `Quick test_vec_create;
          Alcotest.test_case "arithmetic" `Quick test_vec_arith;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_mismatch;
          Alcotest.test_case "axpy_into" `Quick test_vec_axpy_into;
          Alcotest.test_case "add_inplace" `Quick test_vec_add_inplace;
          Alcotest.test_case "max_abs" `Quick test_vec_max_abs;
          qcheck test_vec_axpy_consistent;
          qcheck test_vec_cauchy_schwarz;
          qcheck test_vec_triangle;
        ] );
      ( "vec3",
        [
          Alcotest.test_case "cross basis" `Quick test_vec3_cross_basis;
          Alcotest.test_case "normalize" `Quick test_vec3_normalize;
          Alcotest.test_case "lerp" `Quick test_vec3_lerp;
          Alcotest.test_case "of_vec" `Quick test_vec3_of_vec;
          qcheck test_vec3_cross_antisym;
          qcheck test_vec3_cross_orthogonal;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity mul" `Quick test_mat_identity_mul;
          Alcotest.test_case "known product" `Quick test_mat_mul_known;
          Alcotest.test_case "transpose involution" `Quick test_mat_transpose_involution;
          Alcotest.test_case "mul_vec" `Quick test_mat_mul_vec;
          Alcotest.test_case "mul_transpose_vec" `Quick test_mat_mul_transpose_vec;
          Alcotest.test_case "gram" `Quick test_mat_gram;
          Alcotest.test_case "row/col/set_col" `Quick test_mat_row_col;
          Alcotest.test_case "dims mismatch" `Quick test_mat_dims_mismatch;
          Alcotest.test_case "frobenius" `Quick test_mat_frobenius;
          Alcotest.test_case "mul associativity" `Quick test_mat_mul_assoc;
        ] );
      ( "rot",
        [
          Alcotest.test_case "axes orthonormal" `Quick test_rot_axes_orthonormal;
          Alcotest.test_case "rodrigues = rot_z" `Quick test_rot_rodrigues_matches_rot_z;
          Alcotest.test_case "identity axis-angle" `Quick test_rot_identity_axis_angle;
          Alcotest.test_case "near-pi recovery" `Quick test_rot_near_pi;
          Alcotest.test_case "angle_between" `Quick test_rot_angle_between;
          qcheck test_rot_apply_preserves_norm;
          qcheck test_rot_axis_angle_roundtrip;
          qcheck test_rot_rpy_roundtrip;
          Alcotest.test_case "rpy axes" `Quick test_rot_rpy_axes;
          Alcotest.test_case "rpy gimbal lock" `Quick test_rot_rpy_gimbal;
          Alcotest.test_case "not orthonormal" `Quick test_rot_not_orthonormal;
        ] );
      ( "quat",
        [
          Alcotest.test_case "identity" `Quick test_quat_identity;
          Alcotest.test_case "slerp endpoints" `Quick test_quat_slerp_endpoints;
          Alcotest.test_case "slerp halfway" `Quick test_quat_slerp_halfway;
          qcheck test_quat_conjugate_inverse;
          qcheck test_quat_rot_roundtrip;
          qcheck test_quat_rotate_matches_matrix;
          Alcotest.test_case "norms" `Quick test_quat_norm;
        ] );
      ( "mat4",
        [
          Alcotest.test_case "identity point" `Quick test_mat4_identity_point;
          Alcotest.test_case "translation" `Quick test_mat4_translation;
          Alcotest.test_case "not rigid" `Quick test_mat4_not_rigid;
          Alcotest.test_case "axes" `Quick test_mat4_axes;
          Alcotest.test_case "position" `Quick test_mat4_position;
          Alcotest.test_case "transform_dir" `Quick test_mat4_transform_dir;
          qcheck test_mat4_compose;
          qcheck test_mat4_inverse_rigid;
          qcheck test_mat4_is_rigid;
        ] );
      ( "svd",
        [
          qcheck test_svd_reconstruct_tall;
          qcheck test_svd_reconstruct_wide;
          qcheck test_svd_reconstruct_square;
          qcheck test_svd_descending;
          qcheck test_svd_orthonormal;
          Alcotest.test_case "rank deficient" `Quick test_svd_rank_deficient;
          Alcotest.test_case "known diagonal" `Quick test_svd_known_diagonal;
          qcheck test_pinv_moore_penrose;
          qcheck test_pinv_second_condition;
          qcheck test_apply_pinv_matches_materialized;
          qcheck test_apply_damped_limit;
          Alcotest.test_case "sweeps recorded" `Quick test_svd_sweeps_positive;
          Alcotest.test_case "transpose-invariant sigma" `Quick test_svd_transpose_sigma;
        ] );
      ( "eigen",
        [
          qcheck test_eigen_reconstruct;
          qcheck test_eigen_pairs;
          Alcotest.test_case "descending + orthonormal" `Quick
            test_eigen_descending_and_orthonormal;
          qcheck test_eigen_invariants;
          Alcotest.test_case "matches SVD" `Quick test_eigen_matches_svd;
          Alcotest.test_case "diagonal" `Quick test_eigen_diagonal;
          Alcotest.test_case "rejects bad input" `Quick test_eigen_rejects_asymmetric;
        ] );
      ( "cholesky",
        [
          Alcotest.test_case "reconstruct" `Quick test_cholesky_reconstruct;
          Alcotest.test_case "lower triangular" `Quick test_cholesky_lower_triangular;
          Alcotest.test_case "solve" `Quick test_cholesky_solve;
          Alcotest.test_case "inverse" `Quick test_cholesky_inverse;
          Alcotest.test_case "not SPD" `Quick test_cholesky_not_spd;
          Alcotest.test_case "not square" `Quick test_cholesky_not_square;
        ] );
    ]
